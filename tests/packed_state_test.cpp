//===- packed_state_test.cpp - Packed vs reference state differential -----===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The representation-differential property harness for the packed SWAR
/// cache states (docs/PERFORMANCE.md, "Packed age lanes"). It drives the
/// packed CacheAbsState and the retained AgedBlock-vector reference
/// implementation (domain/RefCacheState.h) through identical randomized
/// operation scripts — transfers (known, unknown-index, call effects),
/// joins, widenings, containment queries — and asserts op-by-op that both
/// compute the same abstract state, for every replacement policy and a
/// geometry matrix that crosses the nibble/byte lane-width cutover.
/// Failing scripts are shrunk to a minimal failing op sequence before
/// reporting.
///
/// A second battery checks the lattice laws machine-checkable at this
/// level (docs/DOMAINS.md): join commutativity/associativity/idempotence,
/// x ⊑ x ⊔ y, the containment partial order (reflexive, antisymmetric on
/// the MUST projection, transitive), monotonicity of the known-block
/// transfer, and stabilization of widening chains.
///
//===----------------------------------------------------------------------===//

#include "domain/CacheState.h"
#include "domain/RefCacheState.h"
#include "memory/MemoryModel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

using namespace specai;

namespace {

/// Deterministic splitmix64 RNG: the harness must replay byte-identically
/// from a seed, so failures shrink and reproduce.
struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed) {}
  uint64_t next() {
    X += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
};

/// One differential operation over a two-register (packed, reference)
/// machine. Join/widen act across the registers, everything else on one.
struct Op {
  enum Kind : uint8_t {
    AccessKnown,   // R[Reg].accessBlock(block A)
    AccessUnknown, // R[Reg].accessUnknown(var A, instance B)
    CallEffect,    // R[Reg].applyCallEffect(derived from seed A)
    Join,          // R[Reg] ⊔= R[1-Reg]
    Widen,         // R[Reg].widenFrom(R[1-Reg])
    Reset,         // R[Reg] = empty or bottom (A & 1)
  };
  Kind K;
  uint8_t Reg;
  uint64_t A = 0, B = 0;
};

const char *opName(Op::Kind K) {
  switch (K) {
  case Op::AccessKnown:
    return "access";
  case Op::AccessUnknown:
    return "unknown";
  case Op::CallEffect:
    return "call";
  case Op::Join:
    return "join";
  case Op::Widen:
    return "widen";
  case Op::Reset:
    return "reset";
  }
  return "?";
}

std::string renderScript(const std::vector<Op> &Script) {
  std::ostringstream OS;
  for (const Op &O : Script)
    OS << "  " << opName(O.K) << " reg=" << unsigned(O.Reg) << " A=" << O.A
       << " B=" << O.B << "\n";
  return OS.str();
}

/// Test fixture: a program with a few scalars and arrays over one cache
/// geometry, plus the op interpreter and comparators.
struct DiffHarness {
  Program P;
  CacheConfig Config;
  std::unique_ptr<MemoryModel> MM;
  bool UseShadow;
  uint64_t Checks = 0;

  DiffHarness(CacheConfig Config, bool UseShadow)
      : Config(Config), UseShadow(UseShadow) {
    // A handful of multi-line arrays and scalars so known accesses,
    // unknown-index accesses, and call effects all have blocks to touch.
    for (unsigned I = 0; I != 6; ++I) {
      MemVar Var;
      Var.Name = "a" + std::to_string(I);
      Var.ElemSize = 8;
      Var.NumElements = (I % 3) + 1; // 1..3 elements (1 line each at 8B).
      P.Vars.push_back(Var);
    }
    BasicBlock BB;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    BB.Insts.push_back(Ret);
    P.Blocks.push_back(BB);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  BlockAddr randomBlock(uint64_t Seed) const {
    Rng R(Seed);
    VarId V = static_cast<VarId>(R.below(P.Vars.size()));
    uint64_t Elem = R.below(P.Vars[V].NumElements);
    return MM->blockOf(V, Elem);
  }

  /// Compares the packed and reference states structurally; counts one
  /// differential check per comparison site.
  bool agree(const CacheAbsState &S, const RefCacheState &R,
             std::string *Why = nullptr) {
    ++Checks;
    if (S.isBottom() != R.isBottom()) {
      if (Why)
        *Why = "bottom flag";
      return false;
    }
    if (S.mustEntries() != R.mustEntries()) {
      if (Why)
        *Why = "mustEntries";
      return false;
    }
    if (S.mayEntries() != R.mayEntries()) {
      if (Why)
        *Why = "mayEntries";
      return false;
    }
    // Spot-check the point queries over every tracked and one untracked
    // block — they decode straight from the packed words.
    uint32_t Assoc = Config.Associativity;
    for (const AgedBlock &E : R.mustEntries()) {
      ++Checks;
      if (S.mustAge(E.Block, Assoc) != R.mustAge(E.Block, Assoc) ||
          S.isMustCached(E.Block) != R.isMustCached(E.Block)) {
        if (Why)
          *Why = "mustAge";
        return false;
      }
    }
    for (const AgedBlock &E : R.mayEntries()) {
      ++Checks;
      if (S.mayAge(E.Block, Assoc) != R.mayAge(E.Block, Assoc)) {
        if (Why)
          *Why = "mayAge";
        return false;
      }
    }
    ++Checks;
    BlockAddr Absent = MM->blockOf(0, 0) + 100000;
    if (S.mustAge(Absent, Assoc) != R.mustAge(Absent, Assoc)) {
      if (Why)
        *Why = "absent block age";
      return false;
    }
    return true;
  }

  /// Derives a deterministic call effect from a seed.
  void callEffectOf(uint64_t Seed, std::vector<uint32_t> &SetPressure,
                    std::vector<AgedBlock> &ExitMust,
                    std::vector<BlockAddr> &MayBlocks, bool &InsertExitMust,
                    bool &ApplyPressure) const {
    Rng R(Seed * 0x9E3779B97F4A7C15ULL + 1);
    SetPressure.assign(Config.numSets(), 0);
    for (uint32_t &K : SetPressure)
      K = static_cast<uint32_t>(R.below(3));
    unsigned NExit = static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I != NExit; ++I)
      ExitMust.push_back(
          AgedBlock{randomBlock(R.next()),
                    static_cast<uint16_t>(1 + R.below(Config.mustAgeCap()))});
    std::sort(ExitMust.begin(), ExitMust.end(),
              [](const AgedBlock &A, const AgedBlock &B) {
                return A.Block < B.Block;
              });
    unsigned NMay = static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I != NMay; ++I)
      MayBlocks.push_back(randomBlock(R.next()));
    // The pipeline's callee summaries list every line the callee may
    // touch, which covers its exit-MUST blocks; keeping that invariant
    // (must ⊆ may) here matters because the FIFO transfer's definite-miss
    // refinement is only monotone on may-consistent states.
    for (const AgedBlock &E : ExitMust)
      MayBlocks.push_back(E.Block);
    std::sort(MayBlocks.begin(), MayBlocks.end());
    MayBlocks.erase(std::unique(MayBlocks.begin(), MayBlocks.end()),
                    MayBlocks.end());
    InsertExitMust = R.below(2) != 0;
    ApplyPressure = R.below(2) != 0;
  }

  /// Applies one op to both representations of both registers.
  void apply(const Op &O, CacheAbsState S[2], RefCacheState R[2]) const {
    unsigned Reg = O.Reg & 1, Other = Reg ^ 1;
    switch (O.K) {
    case Op::AccessKnown: {
      BlockAddr B = randomBlock(O.A);
      S[Reg].accessBlock(B, *MM, UseShadow);
      R[Reg].accessBlock(B, *MM, UseShadow);
      return;
    }
    case Op::AccessUnknown: {
      VarId V = static_cast<VarId>(O.A % P.Vars.size());
      S[Reg].accessUnknown(V, O.B, *MM, UseShadow);
      R[Reg].accessUnknown(V, O.B, *MM, UseShadow);
      return;
    }
    case Op::CallEffect: {
      std::vector<uint32_t> SetPressure;
      std::vector<AgedBlock> ExitMust;
      std::vector<BlockAddr> MayBlocks;
      bool InsertExitMust, ApplyPressure;
      callEffectOf(O.A, SetPressure, ExitMust, MayBlocks, InsertExitMust,
                   ApplyPressure);
      S[Reg].applyCallEffect(SetPressure, ExitMust, MayBlocks, *MM,
                             UseShadow, InsertExitMust, ApplyPressure);
      R[Reg].applyCallEffect(SetPressure, ExitMust, MayBlocks, *MM,
                             UseShadow, InsertExitMust, ApplyPressure);
      return;
    }
    case Op::Join:
      S[Reg].joinInto(S[Other], UseShadow);
      R[Reg].joinInto(R[Other], UseShadow);
      return;
    case Op::Widen:
      S[Reg].widenFrom(S[Other], Config.Associativity);
      R[Reg].widenFrom(R[Other], Config.Associativity);
      return;
    case Op::Reset:
      S[Reg] = (O.A & 1) ? CacheAbsState::bottom() : CacheAbsState::empty();
      R[Reg] = (O.A & 1) ? RefCacheState::bottom() : RefCacheState::empty();
      return;
    }
  }

  /// Runs a script from scratch; returns false (and the failing op index
  /// plus reason) on the first disagreement — including a containment
  /// differential between the two registers after every op.
  bool runScript(const std::vector<Op> &Script, size_t *FailAt = nullptr,
                 std::string *Why = nullptr) {
    CacheAbsState S[2] = {CacheAbsState::empty(), CacheAbsState::empty()};
    RefCacheState R[2] = {RefCacheState::empty(), RefCacheState::empty()};
    for (size_t I = 0; I != Script.size(); ++I) {
      apply(Script[I], S, R);
      for (unsigned Reg = 0; Reg != 2; ++Reg)
        if (!agree(S[Reg], R[Reg], Why)) {
          if (FailAt)
            *FailAt = I;
          return false;
        }
      // Containment must agree between representations in all four
      // directions (it is the fixpoint-termination predicate).
      ++Checks;
      uint32_t Assoc = Config.Associativity;
      if (S[0].leq(S[1], Assoc) != R[0].leq(R[1], Assoc) ||
          S[1].leq(S[0], Assoc) != R[1].leq(R[0], Assoc)) {
        if (FailAt)
          *FailAt = I;
        if (Why)
          *Why = "leq differential";
        return false;
      }
    }
    return true;
  }

  /// Greedy delta-debugging: drop ops one at a time while the script
  /// still fails, yielding a minimal (1-minimal) failing sequence.
  std::vector<Op> shrink(std::vector<Op> Script) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t I = 0; I < Script.size(); ++I) {
        std::vector<Op> Candidate = Script;
        Candidate.erase(Candidate.begin() + static_cast<ptrdiff_t>(I));
        if (!runScript(Candidate)) {
          Script = std::move(Candidate);
          Progress = true;
          break;
        }
      }
    }
    return Script;
  }

  Op randomOp(Rng &R) const {
    // Weighted: transfers dominate real workloads.
    static constexpr Op::Kind Kinds[] = {
        Op::AccessKnown, Op::AccessKnown, Op::AccessKnown,
        Op::AccessUnknown, Op::CallEffect, Op::Join,
        Op::Join,        Op::Widen,       Op::Reset};
    Op O;
    O.K = Kinds[R.below(sizeof(Kinds) / sizeof(Kinds[0]))];
    O.Reg = static_cast<uint8_t>(R.below(2));
    O.A = R.next();
    O.B = R.below(4); // Instance ordinals stay small and collide often.
    return O;
  }

  /// Builds a random state in register 0 by running a fresh random script
  /// (both representations), for the lattice-law batteries.
  void randomState(Rng &R, unsigned Len, CacheAbsState &SOut,
                   RefCacheState &ROut) {
    CacheAbsState S[2] = {CacheAbsState::empty(), CacheAbsState::empty()};
    RefCacheState Ref[2] = {RefCacheState::empty(), RefCacheState::empty()};
    for (unsigned I = 0; I != Len; ++I) {
      Op O = randomOp(R);
      if (O.K == Op::Reset)
        O.K = Op::AccessKnown; // Keep law states non-trivial.
      apply(O, S, Ref);
    }
    SOut = S[0];
    ROut = Ref[0];
  }
};

struct GeomCase {
  CacheConfig Config;
  const char *Name;
};

std::vector<GeomCase> geometriesFor(ReplacementPolicy Policy) {
  std::vector<GeomCase> Out;
  auto Add = [&](CacheConfig C, const char *Name) {
    C.Policy = Policy;
    if (C.isValid())
      Out.push_back({C, Name});
  };
  // Nibble lanes (cap <= 14), the assoc=16 byte cutover, and a set-
  // associative shape with several partitions. 8-byte lines make every
  // element its own block.
  Add(CacheConfig::fullyAssociative(8, 8), "fa8");
  Add(CacheConfig::setAssociative(16, 4, 8), "sa16w4");
  Add(CacheConfig::fullyAssociative(16, 8), "fa16");
  Add(CacheConfig::setAssociative(32, 16, 8), "sa32w16");
  return Out;
}

class PackedStateDiff
    : public ::testing::TestWithParam<std::tuple<ReplacementPolicy, bool>> {};

TEST_P(PackedStateDiff, RandomScriptsAgreeOpByOp) {
  auto [Policy, Shadow] = GetParam();
  uint64_t TotalChecks = 0;
  for (const GeomCase &G : geometriesFor(Policy)) {
    DiffHarness H(G.Config, Shadow);
    Rng Seeds(0xC0FFEE0 + static_cast<uint64_t>(Policy) * 7919 + Shadow);
    // Scripts per geometry x ops per script x checks per op lands the
    // differential well past the 10k-per-policy floor.
    for (unsigned Script = 0; Script != 160; ++Script) {
      Rng R(Seeds.next());
      std::vector<Op> Ops;
      unsigned Len = 6 + static_cast<unsigned>(R.below(18));
      for (unsigned I = 0; I != Len; ++I)
        Ops.push_back(H.randomOp(R));
      size_t FailAt = 0;
      std::string Why;
      if (!H.runScript(Ops, &FailAt, &Why)) {
        std::vector<Op> Minimal = H.shrink(Ops);
        FAIL() << "packed/reference disagreement (" << Why << ") under "
               << G.Name << " policy=" << replacementPolicyName(Policy)
               << " shadow=" << Shadow << " at op " << FailAt
               << "\nminimal failing script (" << Minimal.size()
               << " ops):\n"
               << renderScript(Minimal);
      }
    }
    TotalChecks += H.Checks;
  }
  // The ISSUE's floor: >= 10k differential checks per policy, zero
  // disagreements (a failure above would have aborted already).
  EXPECT_GE(TotalChecks, 10000u);
}

TEST_P(PackedStateDiff, LatticeLaws) {
  auto [Policy, Shadow] = GetParam();
  for (const GeomCase &G : geometriesFor(Policy)) {
    DiffHarness H(G.Config, Shadow);
    uint32_t Assoc = G.Config.Associativity;
    Rng R(0xAB5EED + static_cast<uint64_t>(Policy) * 131 + Shadow);
    for (unsigned Round = 0; Round != 60; ++Round) {
      CacheAbsState A, B, C;
      RefCacheState Ra, Rb, Rc;
      H.randomState(R, 8, A, Ra);
      H.randomState(R, 8, B, Rb);
      H.randomState(R, 8, C, Rc);

      // Join idempotence: A ⊔ A == A.
      CacheAbsState AA = A;
      AA.joinInto(A, Shadow);
      EXPECT_EQ(AA.mustEntries(), A.mustEntries());
      EXPECT_EQ(AA.mayEntries(), A.mayEntries());

      // Commutativity: A ⊔ B == B ⊔ A.
      CacheAbsState AB = A, BA = B;
      AB.joinInto(B, Shadow);
      BA.joinInto(A, Shadow);
      EXPECT_EQ(AB.mustEntries(), BA.mustEntries());
      EXPECT_EQ(AB.mayEntries(), BA.mayEntries());

      // Associativity: (A ⊔ B) ⊔ C == A ⊔ (B ⊔ C).
      CacheAbsState L = AB, BC = B, Rj = A;
      L.joinInto(C, Shadow);
      BC.joinInto(C, Shadow);
      Rj.joinInto(BC, Shadow);
      EXPECT_EQ(L.mustEntries(), Rj.mustEntries());
      EXPECT_EQ(L.mayEntries(), Rj.mayEntries());

      // x ⊑ x ⊔ y, and ⊑ is reflexive.
      EXPECT_TRUE(A.leq(AB, Assoc));
      EXPECT_TRUE(B.leq(AB, Assoc));
      EXPECT_TRUE(A.leq(A, Assoc));

      // Antisymmetry on the MUST projection ⊑ orders.
      if (A.leq(B, Assoc) && B.leq(A, Assoc)) {
        EXPECT_EQ(A.mustEntries(), B.mustEntries());
      }

      // Transitivity.
      if (A.leq(B, Assoc) && B.leq(C, Assoc)) {
        EXPECT_TRUE(A.leq(C, Assoc));
      }

      // Monotone known-block transfer: A ⊑ A ⊔ B is preserved by
      // accessing the same block on both sides.
      CacheAbsState TA = A, TAB = AB;
      BlockAddr Blk = H.randomBlock(R.next());
      TA.accessBlock(Blk, *H.MM, Shadow);
      TAB.accessBlock(Blk, *H.MM, Shadow);
      EXPECT_TRUE(TA.leq(TAB, Assoc))
          << "transfer not monotone under " << G.Name << " policy="
          << replacementPolicyName(Policy) << " shadow=" << Shadow;

      // Widening stabilizes: the widened ascending chain A, A⊔B, ...
      // reaches a fixpoint in bounded steps.
      CacheAbsState W = A;
      unsigned Steps = 0;
      for (; Steps != 64; ++Steps) {
        CacheAbsState Prev = W;
        bool Changed = W.joinInto(B, Shadow);
        if (Changed)
          W.widenFrom(Prev, Assoc);
        CacheAbsState Again = W;
        if (!Again.joinInto(B, Shadow))
          break;
      }
      EXPECT_LT(Steps, 64u) << "widening chain failed to stabilize";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PackedStateDiff,
    ::testing::Combine(::testing::Values(ReplacementPolicy::Lru,
                                         ReplacementPolicy::Fifo,
                                         ReplacementPolicy::Plru),
                       ::testing::Bool()),
    [](const auto &Info) {
      std::string Name =
          replacementPolicyName(std::get<0>(Info.param));
      Name += std::get<1>(Info.param) ? "_shadow" : "_noshadow";
      return Name;
    });

/// The arena must be transparent: running under a CacheStateArenaScope
/// recycles payloads but cannot change any value the harness observes.
TEST(PackedStateArena, ScriptsAgreeUnderArenaScope) {
  CacheConfig Config = CacheConfig::setAssociative(16, 4, 8);
  DiffHarness H(Config, /*UseShadow=*/true);
  CacheStateArenaScope Arena;
  Rng Seeds(0xA5E11A);
  for (unsigned Script = 0; Script != 40; ++Script) {
    Rng R(Seeds.next());
    std::vector<Op> Ops;
    for (unsigned I = 0; I != 12; ++I)
      Ops.push_back(H.randomOp(R));
    size_t FailAt = 0;
    std::string Why;
    ASSERT_TRUE(H.runScript(Ops, &FailAt, &Why))
        << Why << " at op " << FailAt << "\n"
        << renderScript(Ops);
  }
}

/// packedLaneBits picks the narrowest lane that fits cap+1 (the eviction
/// sentinel): nibble through cap 14, byte through 254, u16 beyond.
TEST(PackedStateLanes, WidthCutovers) {
  EXPECT_EQ(CacheAbsState::packedLaneBits(1), 4u);
  EXPECT_EQ(CacheAbsState::packedLaneBits(14), 4u);
  EXPECT_EQ(CacheAbsState::packedLaneBits(15), 8u);
  EXPECT_EQ(CacheAbsState::packedLaneBits(16), 8u);
  EXPECT_EQ(CacheAbsState::packedLaneBits(254), 8u);
  EXPECT_EQ(CacheAbsState::packedLaneBits(255), 16u);
  EXPECT_EQ(CacheAbsState::packedLaneBits(65534), 16u);
}

} // namespace
