//===- fuzz_regression_test.cpp - Pinned-seed fuzz corpus -----------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// A pinned corpus of 20 generated programs with golden digests over both
/// the generated source and the full per-node analysis results (states,
/// classification, counters) for two far-apart configurations:
/// just-in-time/dynamic (the paper's default) and no-merge/fixed (the
/// finest/most expensive corner). Any drift — generator, frontend,
/// lowering, engine, domain — fails deterministically here with the seed
/// that moved.
///
/// When a change is *intended* to move these values (e.g. an engine
/// precision or soundness fix), regenerate the table: build the tree, then
/// compile the snippet in the comment at the bottom of this file against
/// libspecai and paste its output. Always rerun `specai-fuzz --seed 1
/// --programs 200` first: drift may be a soundness regression, and the
/// differential oracle is the authority on that.
///
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"
#include "analysis/Wcet.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/StateDigest.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

struct GoldenEntry {
  uint64_t Seed;
  uint64_t SourceDigest;
  uint64_t JitDynamicDigest; // just-in-time / dynamic bounding
  uint64_t NoMergeFixedDigest;
};

// Regenerate with the snippet at the bottom of this file.
const GoldenEntry Corpus[] = {
    {1, 0x5f8d2dd8132abe74ULL, 0xe15db37ae82bae0fULL, 0xfe96c7b8ff727d1fULL},
    {2, 0x2d6af89846d90999ULL, 0x2ba970b2d8ed8fb0ULL, 0x2ba970b2d8ed8fb0ULL},
    {3, 0xba3da4bad5cd2c84ULL, 0xcd8f54a432eeb65dULL, 0xb544658f5d666683ULL},
    {4, 0x95e19d83083d5fd6ULL, 0xac855f3ffffb286aULL, 0x4cceaeda736cb0cbULL},
    {5, 0xb5c8f5a8274c94daULL, 0xaebb8f393a79124cULL, 0xaebb8f393a79124cULL},
    {6, 0xf14ffd4121cecba4ULL, 0x5eb2a816f8c10fb7ULL, 0x5eb2a816f8c10fb7ULL},
    {7, 0x5e4db2883f479b8aULL, 0x8577868a56da74f7ULL, 0x6ac1d32ab0e9b42aULL},
    {8, 0x09bba24e52137dc7ULL, 0x9ba8a31aa33c3892ULL, 0x97e3fd0827e3eb73ULL},
    {9, 0xf63132e6f673920eULL, 0xbb322f1e7ad79164ULL, 0x992d2d2cba09147bULL},
    {10, 0x070f67c20285537bULL, 0x99c18a39f15f02f1ULL, 0x7e89e4da41b4290aULL},
    {11, 0x9950fce3a3febabbULL, 0x3f229b1e8e7eaa1eULL, 0x5c0ffcd6a260008dULL},
    {12, 0xa8a1528a09a62264ULL, 0xf92048f99702b119ULL, 0xa7469c3ea7b17eb7ULL},
    {13, 0x32cf317175565ccfULL, 0x8657376811d20147ULL, 0x60ceea82a93696c5ULL},
    {14, 0x04d4a5dd622eba20ULL, 0x64844046232f8b63ULL, 0x424f0f6b97d47cc1ULL},
    {15, 0xc6cd40368a8d860cULL, 0x52876b510013dbb9ULL, 0xe20be0b489e38e87ULL},
    {16, 0x2126a954c0f4a31cULL, 0xaa00bec29da90d3aULL, 0x5e262544d5c74565ULL},
    {17, 0x3e6f40a57c94a894ULL, 0x8f6e816b2e69a3c6ULL, 0x6f15cef399a3b92eULL},
    {18, 0x4ebdd13dcd224fc3ULL, 0x3cc9fc306d55caadULL, 0x337797c3d81f15acULL},
    {19, 0x483e95c438620380ULL, 0x376cc4aaa0bcdba8ULL, 0x34f6d1c7fd3662e9ULL},
    {20, 0xf54a7f3b297e3c73ULL, 0x155cb35042d4a1d9ULL, 0x3543b7ad115f481fULL},
};

class FuzzRegressionTest : public ::testing::TestWithParam<GoldenEntry> {};

} // namespace

TEST_P(FuzzRegressionTest, PinnedDigestsAreStable) {
  const GoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  EXPECT_EQ(fnv1a(G.source()), E.SourceDigest)
      << "generator drift at seed " << E.Seed
      << "; actual source:\n" << G.source();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  MustHitOptions Jit;
  Jit.Cache = CacheConfig::fullyAssociative(8);
  Jit.DepthMiss = 24;
  Jit.DepthHit = 6;
  Jit.Strategy = MergeStrategy::JustInTime;
  Jit.Bounding = BoundingMode::Dynamic;
  MustHitReport RJ = runMustHitAnalysis(*CP, Jit);
  ASSERT_TRUE(RJ.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, RJ), E.JitDynamicDigest)
      << "analysis drift (just-in-time/dynamic) at seed " << E.Seed;

  MustHitOptions Nm = Jit;
  Nm.Strategy = MergeStrategy::NoMerge;
  Nm.Bounding = BoundingMode::Fixed;
  MustHitReport RN = runMustHitAnalysis(*CP, Nm);
  ASSERT_TRUE(RN.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, RN), E.NoMergeFixedDigest)
      << "analysis drift (no-merge/fixed) at seed " << E.Seed;
}

INSTANTIATE_TEST_SUITE_P(PinnedCorpus, FuzzRegressionTest,
                         ::testing::ValuesIn(Corpus),
                         [](const ::testing::TestParamInfo<GoldenEntry> &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Per-policy corpus: the same 20 programs analyzed under the FIFO and
// tree-PLRU lattices (docs/DOMAINS.md), just-in-time/dynamic. Pins that
// the policy generalization holds still — and, because the LRU table
// above is untouched, that adding the policy dimension never moved an LRU
// result. Regenerate with the snippet at the bottom of this file, with
// Jit.Cache switched per policy via withPolicy().
//===----------------------------------------------------------------------===//

namespace {

struct PolicyGoldenEntry {
  uint64_t Seed;
  uint64_t FifoDigest; // fifo, just-in-time / dynamic
  uint64_t PlruDigest; // plru, just-in-time / dynamic
};

const PolicyGoldenEntry PolicyCorpus[] = {
    {1, 0xd55a467b31de7ab7ULL, 0x93a4fc0de65d0a47ULL},
    {2, 0xee707c3e33805f14ULL, 0xe157e68f2fff0c89ULL},
    {3, 0xd2561a3a4aa2cd28ULL, 0x3be45bd618260aecULL},
    {4, 0xe0817b7fd37b71dfULL, 0x73d29d8ce1512936ULL},
    {5, 0x2044ce7c3897a30bULL, 0x66ad5df620f347dbULL},
    {6, 0xd16400a33e782057ULL, 0x305709f5965f4743ULL},
    {7, 0xdf1271ca67f0e841ULL, 0x533bf57fa024d3d7ULL},
    {8, 0x3020aa66b79f5e66ULL, 0x3014620f2c3edc66ULL},
    {9, 0x1cb22d7470d825a9ULL, 0x2769a4ec4b3aeb75ULL},
    {10, 0x905b744f62cb4596ULL, 0x95207b29cacb61d7ULL},
    {11, 0xff9e52b076b1d130ULL, 0xe2eda4afe2c3e91aULL},
    {12, 0x29160cfb0ec6c301ULL, 0xd68d88ba6ec462caULL},
    {13, 0x82b914b4306d0368ULL, 0x07c78ee0b5fa11c0ULL},
    {14, 0x2d3e72d297a6d1feULL, 0xa65b4753b466c163ULL},
    {15, 0x2066bcaa2121f5caULL, 0xbab55b739d0bc617ULL},
    {16, 0x1f16851a6c607c9dULL, 0x81a735e979f0eb7eULL},
    {17, 0xf6b52dbf57ae7a0bULL, 0xbdda2b8ffc28abb2ULL},
    {18, 0xd54074dbc0120e0fULL, 0x9e3d5575db7459a5ULL},
    {19, 0xe48a90f428e2456cULL, 0x2b1095516c6fb96bULL},
    {20, 0x07535d25b22f660eULL, 0x6d5c3e494b1e8548ULL},
};

class PolicyRegressionTest
    : public ::testing::TestWithParam<PolicyGoldenEntry> {};

} // namespace

TEST_P(PolicyRegressionTest, PinnedPolicyDigestsAreStable) {
  const PolicyGoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  MustHitOptions Jit;
  Jit.Cache = CacheConfig::fullyAssociative(8);
  Jit.DepthMiss = 24;
  Jit.DepthHit = 6;
  Jit.Strategy = MergeStrategy::JustInTime;
  Jit.Bounding = BoundingMode::Dynamic;

  MustHitOptions Fifo = Jit;
  Fifo.Cache = Jit.Cache.withPolicy(ReplacementPolicy::Fifo);
  MustHitReport RF = runMustHitAnalysis(*CP, Fifo);
  ASSERT_TRUE(RF.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, RF), E.FifoDigest)
      << "analysis drift (fifo, just-in-time/dynamic) at seed " << E.Seed;

  MustHitOptions Plru = Jit;
  Plru.Cache = Jit.Cache.withPolicy(ReplacementPolicy::Plru);
  MustHitReport RP = runMustHitAnalysis(*CP, Plru);
  ASSERT_TRUE(RP.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, RP), E.PlruDigest)
      << "analysis drift (plru, just-in-time/dynamic) at seed " << E.Seed;
}

INSTANTIATE_TEST_SUITE_P(PinnedPolicyCorpus, PolicyRegressionTest,
                         ::testing::ValuesIn(PolicyCorpus),
                         [](const ::testing::TestParamInfo<PolicyGoldenEntry>
                                &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Verdict corpus: the same 20 programs, digested at the *verdict* level —
// the user-facing deliverables the fuzzer's wcet/leak oracles validate —
// per replacement policy, under just-in-time/dynamic at the fuzz geometry.
// The cache-state digests above would already move on any engine drift;
// these pin the layer on top (estimateWcet, detectLeaks,
// annotateSpeculationOnly), so a verdict regression that preserves cache
// states — a longest-path change, a classification consumer bug — is
// bit-level pinned too. Regenerate with the snippet at the bottom.
//===----------------------------------------------------------------------===//

namespace {

/// Canonical serialization of everything the verdict layer reports for
/// one policy: WCET counters and cycle bounds (speculative and baseline,
/// default WcetOptions) and the annotated leak report (site node ids,
/// SpeculationOnly flags, proven-leak-free counts for both analyses).
uint64_t verdictDigest(const CompiledProgram &CP, ReplacementPolicy Policy) {
  MustHitOptions Jit;
  Jit.Cache = CacheConfig::fullyAssociative(8).withPolicy(Policy);
  Jit.DepthMiss = 24;
  Jit.DepthHit = 6;
  Jit.Strategy = MergeStrategy::JustInTime;
  Jit.Bounding = BoundingMode::Dynamic;
  MustHitReport Spec = runMustHitAnalysis(CP, Jit);
  MustHitOptions NonSpecOpts = Jit;
  NonSpecOpts.Speculative = false;
  MustHitReport NonSpec = runMustHitAnalysis(CP, NonSpecOpts);

  WcetReport W = estimateWcet(CP, Spec);
  WcetReport WNs = estimateWcet(CP, NonSpec);
  SideChannelReport SC = detectLeaks(CP, Spec);
  SideChannelReport NS = detectLeaks(CP, NonSpec);
  annotateSpeculationOnly(SC, NS);

  std::string S;
  S += "wcet=" + std::to_string(W.WorstCaseCycles) +
       ",miss=" + std::to_string(W.PossibleMissNodes) +
       ",hit=" + std::to_string(W.MustHitNodes) +
       ",spmiss=" + std::to_string(W.SpeculativeMissNodes);
  S += ";nswcet=" + std::to_string(WNs.WorstCaseCycles) +
       ",nsmiss=" + std::to_string(WNs.PossibleMissNodes);
  S += ";free=" + std::to_string(SC.ProvenLeakFree) +
       ",nsfree=" + std::to_string(NS.ProvenLeakFree);
  for (const LeakSite &L : SC.Leaks)
    S += ";leak=" + std::to_string(L.Node) +
         (L.SpeculationOnly ? ":sponly" : ":arch");
  for (NodeId N : SC.LeakFreeSites)
    S += ";lf=" + std::to_string(N);
  return fnv1a(S);
}

struct VerdictGoldenEntry {
  uint64_t Seed;
  uint64_t LruDigest;
  uint64_t FifoDigest;
  uint64_t PlruDigest;
};

// Regenerate with the snippet at the bottom of this file.
const VerdictGoldenEntry VerdictCorpus[] = {
    {1, 0x14821f7107f66a19ULL, 0x66b707c83e2db037ULL, 0x63cde261de2e9390ULL},
    {2, 0x057be1499266e129ULL, 0x057be1499266e129ULL, 0x686233a42f2f63d0ULL},
    {3, 0xfca8217d23cbe4bfULL, 0xcda516bc8168a5a7ULL, 0x3ec1121bd919184aULL},
    {4, 0xa8fb315666b9e534ULL, 0xf8a2a55f4d2dd4feULL, 0xc7a7a4d273745746ULL},
    {5, 0x50ebab4fd3fcededULL, 0x514c72181af0e32bULL, 0xce5b19b7338816f9ULL},
    {6, 0xb6e98bf24cd15f9aULL, 0xb6e98bf24cd15f9aULL, 0xb6e98bf24cd15f9aULL},
    {7, 0xb1ec2c242c54f441ULL, 0x2b5e040dbc95e21aULL, 0x2b74b6727756baeaULL},
    {8, 0x98749d8f0a7f5f7bULL, 0xabbd6d81e737245aULL, 0x5e66dd7f51dd4dd8ULL},
    {9, 0x405cb04901cf7575ULL, 0x34c6e6bccb75ba88ULL, 0x323b3e5de4ca1ac9ULL},
    {10, 0xab03465bb641ef25ULL, 0xae280df0efc71073ULL, 0x1069cea9271cb89eULL},
    {11, 0xd4487dd8f23aa4d6ULL, 0x6340981ee3b9bb01ULL, 0x1d38ef6cf4d984dcULL},
    {12, 0xc177444714a880cdULL, 0xc29fe94a961a395fULL, 0x3c7c3b76e1a4f8b3ULL},
    {13, 0x843777d1cd56862dULL, 0x843777d1cd56862dULL, 0x843777d1cd56862dULL},
    {14, 0x6f3a9b85a0b71852ULL, 0x001d8d1298a5fc84ULL, 0xc4e396ddf2793a59ULL},
    {15, 0x290c6e9f4066f34dULL, 0x3fd43d517fa62ce1ULL, 0xbc57b1346e43de81ULL},
    {16, 0xe22074383fefc3eaULL, 0x82929abd212689ccULL, 0x516b2f5926b3de43ULL},
    {17, 0x4b9c21298c118a29ULL, 0x77bf00eb7707fbe8ULL, 0xaa403d65f4bc5019ULL},
    {18, 0x6f24453b3a2af3d8ULL, 0xe263368f0befd62dULL, 0x297221a91ed78248ULL},
    {19, 0xe3dc883271786375ULL, 0xd62cdb8401d7f7a9ULL, 0xfa1e903253fd59e1ULL},
    {20, 0x27d89b6847358febULL, 0x4e580a04f0e022fdULL, 0x8baf6170ad9e1f9aULL},
};

class VerdictRegressionTest
    : public ::testing::TestWithParam<VerdictGoldenEntry> {};

} // namespace

TEST_P(VerdictRegressionTest, PinnedVerdictDigestsAreStable) {
  const VerdictGoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  EXPECT_EQ(verdictDigest(*CP, ReplacementPolicy::Lru), E.LruDigest)
      << "verdict drift (lru) at seed " << E.Seed;
  EXPECT_EQ(verdictDigest(*CP, ReplacementPolicy::Fifo), E.FifoDigest)
      << "verdict drift (fifo) at seed " << E.Seed;
  EXPECT_EQ(verdictDigest(*CP, ReplacementPolicy::Plru), E.PlruDigest)
      << "verdict drift (plru) at seed " << E.Seed;
}

INSTANTIATE_TEST_SUITE_P(PinnedVerdictCorpus, VerdictRegressionTest,
                         ::testing::ValuesIn(VerdictCorpus),
                         [](const ::testing::TestParamInfo<
                             VerdictGoldenEntry> &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Golden regeneration snippet (compile against libspecai and paste):
//
//   #include "specai/SpecAI.h"
//   #include <cstdio>
//   using namespace specai;
//   int main() {
//     for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
//       ProgramGen Gen(Seed);
//       GeneratedProgram G = Gen.generate();
//       DiagnosticEngine Diags;
//       auto CP = compileSource(G.source(), Diags);
//       MustHitOptions Jit;
//       Jit.Cache = CacheConfig::fullyAssociative(8);
//       Jit.DepthMiss = 24; Jit.DepthHit = 6;
//       Jit.Strategy = MergeStrategy::JustInTime;
//       Jit.Bounding = BoundingMode::Dynamic;
//       MustHitReport RJ = runMustHitAnalysis(*CP, Jit);
//       MustHitOptions Nm = Jit;
//       Nm.Strategy = MergeStrategy::NoMerge;
//       Nm.Bounding = BoundingMode::Fixed;
//       MustHitReport RN = runMustHitAnalysis(*CP, Nm);
//       std::printf("    {%llu, 0x%016llxULL, 0x%016llxULL, 0x%016llxULL},\n",
//                   (unsigned long long)Seed,
//                   (unsigned long long)fnv1a(G.source()),
//                   (unsigned long long)digestMustHitReport(*CP, RJ),
//                   (unsigned long long)digestMustHitReport(*CP, RN));
//     }
//   }
//
// The verdict corpus regenerates the same way: copy the verdictDigest
// helper above into the snippet and print, per seed, its value for
// ReplacementPolicy::Lru / Fifo / Plru.
//===----------------------------------------------------------------------===//
