//===- fuzz_regression_test.cpp - Pinned-seed fuzz corpus -----------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// A pinned corpus of 20 generated programs with golden digests over both
/// the generated source and the full per-node analysis results (states,
/// classification, counters) for two far-apart configurations:
/// just-in-time/dynamic (the paper's default) and no-merge/fixed (the
/// finest/most expensive corner). Any drift — generator, frontend,
/// lowering, engine, domain — fails deterministically here with the seed
/// that moved. Three more corpora ride on the same seeds: per-policy
/// cache-state digests (FIFO/PLRU), per-policy verdict-level digests
/// (WCET + leak reports), and a Summarize-lowering module corpus over
/// deep-mode programs (helper functions + rolled widened loops), digested
/// across the entry report, every callee report, and every call summary.
///
/// Each (corpus, policy, seed) is its own CTest case: one analysis per
/// case keeps every case a few milliseconds, so the suite parallelizes
/// and the `unit` label's wall clock stays flat as corpora accumulate.
///
/// When a change is *intended* to move these values (e.g. an engine
/// precision or soundness fix), regenerate the table: build the tree, then
/// compile the snippet in the comment at the bottom of this file against
/// libspecai and paste its output. Always rerun `specai-fuzz --seed 1
/// --programs 200` first: drift may be a soundness regression, and the
/// differential oracle is the authority on that.
///
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"
#include "analysis/Wcet.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/StateDigest.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

const char *policyTag(ReplacementPolicy P) {
  switch (P) {
  case ReplacementPolicy::Lru:
    return "lru";
  case ReplacementPolicy::Fifo:
    return "fifo";
  case ReplacementPolicy::Plru:
    return "plru";
  }
  return "?";
}

struct GoldenEntry {
  uint64_t Seed;
  uint64_t SourceDigest;
  uint64_t JitDynamicDigest; // just-in-time / dynamic bounding
  uint64_t NoMergeFixedDigest;
};

// Regenerate with the snippet at the bottom of this file.
const GoldenEntry Corpus[] = {
    {1, 0x5f8d2dd8132abe74ULL, 0xe15db37ae82bae0fULL, 0xfe96c7b8ff727d1fULL},
    {2, 0x2d6af89846d90999ULL, 0x2ba970b2d8ed8fb0ULL, 0x2ba970b2d8ed8fb0ULL},
    {3, 0xba3da4bad5cd2c84ULL, 0xcd8f54a432eeb65dULL, 0xb544658f5d666683ULL},
    {4, 0x95e19d83083d5fd6ULL, 0xac855f3ffffb286aULL, 0x4cceaeda736cb0cbULL},
    {5, 0xb5c8f5a8274c94daULL, 0xaebb8f393a79124cULL, 0xaebb8f393a79124cULL},
    {6, 0xf14ffd4121cecba4ULL, 0x5eb2a816f8c10fb7ULL, 0x5eb2a816f8c10fb7ULL},
    {7, 0x5e4db2883f479b8aULL, 0x8577868a56da74f7ULL, 0x6ac1d32ab0e9b42aULL},
    {8, 0x09bba24e52137dc7ULL, 0x9ba8a31aa33c3892ULL, 0x97e3fd0827e3eb73ULL},
    {9, 0xf63132e6f673920eULL, 0xbb322f1e7ad79164ULL, 0x992d2d2cba09147bULL},
    {10, 0x070f67c20285537bULL, 0x99c18a39f15f02f1ULL, 0x7e89e4da41b4290aULL},
    {11, 0x9950fce3a3febabbULL, 0x3f229b1e8e7eaa1eULL, 0x5c0ffcd6a260008dULL},
    {12, 0xa8a1528a09a62264ULL, 0xf92048f99702b119ULL, 0xa7469c3ea7b17eb7ULL},
    {13, 0x32cf317175565ccfULL, 0x8657376811d20147ULL, 0x60ceea82a93696c5ULL},
    {14, 0x04d4a5dd622eba20ULL, 0x64844046232f8b63ULL, 0x424f0f6b97d47cc1ULL},
    {15, 0xc6cd40368a8d860cULL, 0x52876b510013dbb9ULL, 0xe20be0b489e38e87ULL},
    {16, 0x2126a954c0f4a31cULL, 0xaa00bec29da90d3aULL, 0x5e262544d5c74565ULL},
    {17, 0x3e6f40a57c94a894ULL, 0x8f6e816b2e69a3c6ULL, 0x6f15cef399a3b92eULL},
    {18, 0x4ebdd13dcd224fc3ULL, 0x3cc9fc306d55caadULL, 0x337797c3d81f15acULL},
    {19, 0x483e95c438620380ULL, 0x376cc4aaa0bcdba8ULL, 0x34f6d1c7fd3662e9ULL},
    {20, 0xf54a7f3b297e3c73ULL, 0x155cb35042d4a1d9ULL, 0x3543b7ad115f481fULL},
};

class FuzzRegressionTest : public ::testing::TestWithParam<GoldenEntry> {};

} // namespace

TEST_P(FuzzRegressionTest, PinnedDigestsAreStable) {
  const GoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  EXPECT_EQ(fnv1a(G.source()), E.SourceDigest)
      << "generator drift at seed " << E.Seed
      << "; actual source:\n" << G.source();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  MustHitOptions Jit;
  Jit.Cache = CacheConfig::fullyAssociative(8);
  Jit.DepthMiss = 24;
  Jit.DepthHit = 6;
  Jit.Strategy = MergeStrategy::JustInTime;
  Jit.Bounding = BoundingMode::Dynamic;
  MustHitReport RJ = runMustHitAnalysis(*CP, Jit);
  ASSERT_TRUE(RJ.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, RJ), E.JitDynamicDigest)
      << "analysis drift (just-in-time/dynamic) at seed " << E.Seed;

  MustHitOptions Nm = Jit;
  Nm.Strategy = MergeStrategy::NoMerge;
  Nm.Bounding = BoundingMode::Fixed;
  MustHitReport RN = runMustHitAnalysis(*CP, Nm);
  ASSERT_TRUE(RN.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, RN), E.NoMergeFixedDigest)
      << "analysis drift (no-merge/fixed) at seed " << E.Seed;
}

/// Satellite: parallel determinism. The intra-analysis pool (`--intra-jobs`,
/// support/Parallel.h) must be bit-invisible: per-color drains batch only
/// *pure* transfer computes and replay them serially, and per-set join
/// partitions are independent, so the same golden digests must come out at
/// every job count. Jobs=1 is the PinnedDigestsAreStable case above; this
/// runs the same 20-seed corpus at 2 and 8 workers against the same goldens.
TEST_P(FuzzRegressionTest, PinnedDigestsAreIntraJobsInvariant) {
  const GoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  for (unsigned Jobs : {2u, 8u}) {
    MustHitOptions Jit;
    Jit.Cache = CacheConfig::fullyAssociative(8);
    Jit.DepthMiss = 24;
    Jit.DepthHit = 6;
    Jit.Strategy = MergeStrategy::JustInTime;
    Jit.Bounding = BoundingMode::Dynamic;
    Jit.IntraJobs = Jobs;
    MustHitReport RJ = runMustHitAnalysis(*CP, Jit);
    ASSERT_TRUE(RJ.Converged);
    EXPECT_EQ(digestMustHitReport(*CP, RJ), E.JitDynamicDigest)
        << "intra-jobs=" << Jobs
        << " changed the analysis result at seed " << E.Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(PinnedCorpus, FuzzRegressionTest,
                         ::testing::ValuesIn(Corpus),
                         [](const ::testing::TestParamInfo<GoldenEntry> &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Per-policy corpus: the same 20 programs analyzed under the FIFO and
// tree-PLRU lattices (docs/DOMAINS.md), just-in-time/dynamic. Pins that
// the policy generalization holds still — and, because the LRU table
// above is untouched, that adding the policy dimension never moved an LRU
// result. One (policy, seed) per CTest case — one analysis each — so the
// corpus stays parallelizable and no case dominates the unit label.
// Regenerate with the snippet at the bottom of this file, with Jit.Cache
// switched per policy via withPolicy().
//===----------------------------------------------------------------------===//

namespace {

struct PolicyGoldenEntry {
  uint64_t Seed;
  ReplacementPolicy Policy;
  uint64_t Digest; // just-in-time / dynamic
};

const PolicyGoldenEntry PolicyCorpus[] = {
    {1, ReplacementPolicy::Fifo, 0xd55a467b31de7ab7ULL},
    {2, ReplacementPolicy::Fifo, 0xee707c3e33805f14ULL},
    {3, ReplacementPolicy::Fifo, 0xd2561a3a4aa2cd28ULL},
    {4, ReplacementPolicy::Fifo, 0xe0817b7fd37b71dfULL},
    {5, ReplacementPolicy::Fifo, 0x2044ce7c3897a30bULL},
    {6, ReplacementPolicy::Fifo, 0xd16400a33e782057ULL},
    {7, ReplacementPolicy::Fifo, 0xdf1271ca67f0e841ULL},
    {8, ReplacementPolicy::Fifo, 0x3020aa66b79f5e66ULL},
    {9, ReplacementPolicy::Fifo, 0x1cb22d7470d825a9ULL},
    {10, ReplacementPolicy::Fifo, 0x905b744f62cb4596ULL},
    {11, ReplacementPolicy::Fifo, 0xff9e52b076b1d130ULL},
    {12, ReplacementPolicy::Fifo, 0x29160cfb0ec6c301ULL},
    {13, ReplacementPolicy::Fifo, 0x82b914b4306d0368ULL},
    {14, ReplacementPolicy::Fifo, 0x2d3e72d297a6d1feULL},
    {15, ReplacementPolicy::Fifo, 0x2066bcaa2121f5caULL},
    {16, ReplacementPolicy::Fifo, 0x1f16851a6c607c9dULL},
    {17, ReplacementPolicy::Fifo, 0xf6b52dbf57ae7a0bULL},
    {18, ReplacementPolicy::Fifo, 0xd54074dbc0120e0fULL},
    {19, ReplacementPolicy::Fifo, 0xe48a90f428e2456cULL},
    {20, ReplacementPolicy::Fifo, 0x07535d25b22f660eULL},
    {1, ReplacementPolicy::Plru, 0x93a4fc0de65d0a47ULL},
    {2, ReplacementPolicy::Plru, 0xe157e68f2fff0c89ULL},
    {3, ReplacementPolicy::Plru, 0x3be45bd618260aecULL},
    {4, ReplacementPolicy::Plru, 0x73d29d8ce1512936ULL},
    {5, ReplacementPolicy::Plru, 0x66ad5df620f347dbULL},
    {6, ReplacementPolicy::Plru, 0x305709f5965f4743ULL},
    {7, ReplacementPolicy::Plru, 0x533bf57fa024d3d7ULL},
    {8, ReplacementPolicy::Plru, 0x3014620f2c3edc66ULL},
    {9, ReplacementPolicy::Plru, 0x2769a4ec4b3aeb75ULL},
    {10, ReplacementPolicy::Plru, 0x95207b29cacb61d7ULL},
    {11, ReplacementPolicy::Plru, 0xe2eda4afe2c3e91aULL},
    {12, ReplacementPolicy::Plru, 0xd68d88ba6ec462caULL},
    {13, ReplacementPolicy::Plru, 0x07c78ee0b5fa11c0ULL},
    {14, ReplacementPolicy::Plru, 0xa65b4753b466c163ULL},
    {15, ReplacementPolicy::Plru, 0xbab55b739d0bc617ULL},
    {16, ReplacementPolicy::Plru, 0x81a735e979f0eb7eULL},
    {17, ReplacementPolicy::Plru, 0xbdda2b8ffc28abb2ULL},
    {18, ReplacementPolicy::Plru, 0x9e3d5575db7459a5ULL},
    {19, ReplacementPolicy::Plru, 0x2b1095516c6fb96bULL},
    {20, ReplacementPolicy::Plru, 0x6d5c3e494b1e8548ULL},
};

class PolicyRegressionTest
    : public ::testing::TestWithParam<PolicyGoldenEntry> {};

} // namespace

TEST_P(PolicyRegressionTest, PinnedPolicyDigestsAreStable) {
  const PolicyGoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8).withPolicy(E.Policy);
  Opts.DepthMiss = 24;
  Opts.DepthHit = 6;
  Opts.Strategy = MergeStrategy::JustInTime;
  Opts.Bounding = BoundingMode::Dynamic;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(digestMustHitReport(*CP, R), E.Digest)
      << "analysis drift (" << policyTag(E.Policy)
      << ", just-in-time/dynamic) at seed " << E.Seed;
}

INSTANTIATE_TEST_SUITE_P(PinnedPolicyCorpus, PolicyRegressionTest,
                         ::testing::ValuesIn(PolicyCorpus),
                         [](const ::testing::TestParamInfo<PolicyGoldenEntry>
                                &I) {
                           return std::string(policyTag(I.param.Policy)) +
                                  "_seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Verdict corpus: the same 20 programs, digested at the *verdict* level —
// the user-facing deliverables the fuzzer's wcet/leak oracles validate —
// per replacement policy, under just-in-time/dynamic at the fuzz geometry.
// The cache-state digests above would already move on any engine drift;
// these pin the layer on top (estimateWcet, detectLeaks,
// annotateSpeculationOnly), so a verdict regression that preserves cache
// states — a longest-path change, a classification consumer bug — is
// bit-level pinned too. One (policy, seed) per CTest case; each runs the
// speculative + non-speculative analyses for exactly one policy.
// Regenerate with the snippet at the bottom.
//===----------------------------------------------------------------------===//

namespace {

/// Canonical serialization of everything the verdict layer reports for
/// one policy: WCET counters and cycle bounds (speculative and baseline,
/// default WcetOptions) and the annotated leak report (site node ids,
/// SpeculationOnly flags, proven-leak-free counts for both analyses).
uint64_t verdictDigest(const CompiledProgram &CP, ReplacementPolicy Policy) {
  MustHitOptions Jit;
  Jit.Cache = CacheConfig::fullyAssociative(8).withPolicy(Policy);
  Jit.DepthMiss = 24;
  Jit.DepthHit = 6;
  Jit.Strategy = MergeStrategy::JustInTime;
  Jit.Bounding = BoundingMode::Dynamic;
  MustHitReport Spec = runMustHitAnalysis(CP, Jit);
  MustHitOptions NonSpecOpts = Jit;
  NonSpecOpts.Speculative = false;
  MustHitReport NonSpec = runMustHitAnalysis(CP, NonSpecOpts);

  WcetReport W = estimateWcet(CP, Spec);
  WcetReport WNs = estimateWcet(CP, NonSpec);
  SideChannelReport SC = detectLeaks(CP, Spec);
  SideChannelReport NS = detectLeaks(CP, NonSpec);
  annotateSpeculationOnly(SC, NS);

  std::string S;
  S += "wcet=" + std::to_string(W.WorstCaseCycles) +
       ",miss=" + std::to_string(W.PossibleMissNodes) +
       ",hit=" + std::to_string(W.MustHitNodes) +
       ",spmiss=" + std::to_string(W.SpeculativeMissNodes);
  S += ";nswcet=" + std::to_string(WNs.WorstCaseCycles) +
       ",nsmiss=" + std::to_string(WNs.PossibleMissNodes);
  S += ";free=" + std::to_string(SC.ProvenLeakFree) +
       ",nsfree=" + std::to_string(NS.ProvenLeakFree);
  for (const LeakSite &L : SC.Leaks)
    S += ";leak=" + std::to_string(L.Node) +
         (L.SpeculationOnly ? ":sponly" : ":arch");
  for (NodeId N : SC.LeakFreeSites)
    S += ";lf=" + std::to_string(N);
  return fnv1a(S);
}

struct VerdictGoldenEntry {
  uint64_t Seed;
  ReplacementPolicy Policy;
  uint64_t Digest;
};

// Regenerate with the snippet at the bottom of this file.
const VerdictGoldenEntry VerdictCorpus[] = {
    {1, ReplacementPolicy::Lru, 0x14821f7107f66a19ULL},
    {2, ReplacementPolicy::Lru, 0x057be1499266e129ULL},
    {3, ReplacementPolicy::Lru, 0xfca8217d23cbe4bfULL},
    {4, ReplacementPolicy::Lru, 0xa8fb315666b9e534ULL},
    {5, ReplacementPolicy::Lru, 0x50ebab4fd3fcededULL},
    {6, ReplacementPolicy::Lru, 0xb6e98bf24cd15f9aULL},
    {7, ReplacementPolicy::Lru, 0xb1ec2c242c54f441ULL},
    {8, ReplacementPolicy::Lru, 0x98749d8f0a7f5f7bULL},
    {9, ReplacementPolicy::Lru, 0x405cb04901cf7575ULL},
    {10, ReplacementPolicy::Lru, 0xab03465bb641ef25ULL},
    {11, ReplacementPolicy::Lru, 0xd4487dd8f23aa4d6ULL},
    {12, ReplacementPolicy::Lru, 0xc177444714a880cdULL},
    {13, ReplacementPolicy::Lru, 0x843777d1cd56862dULL},
    {14, ReplacementPolicy::Lru, 0x6f3a9b85a0b71852ULL},
    {15, ReplacementPolicy::Lru, 0x290c6e9f4066f34dULL},
    {16, ReplacementPolicy::Lru, 0xe22074383fefc3eaULL},
    {17, ReplacementPolicy::Lru, 0x4b9c21298c118a29ULL},
    {18, ReplacementPolicy::Lru, 0x6f24453b3a2af3d8ULL},
    {19, ReplacementPolicy::Lru, 0xe3dc883271786375ULL},
    {20, ReplacementPolicy::Lru, 0x27d89b6847358febULL},
    {1, ReplacementPolicy::Fifo, 0x66b707c83e2db037ULL},
    {2, ReplacementPolicy::Fifo, 0x057be1499266e129ULL},
    {3, ReplacementPolicy::Fifo, 0xcda516bc8168a5a7ULL},
    {4, ReplacementPolicy::Fifo, 0xf8a2a55f4d2dd4feULL},
    {5, ReplacementPolicy::Fifo, 0x514c72181af0e32bULL},
    {6, ReplacementPolicy::Fifo, 0xb6e98bf24cd15f9aULL},
    {7, ReplacementPolicy::Fifo, 0x2b5e040dbc95e21aULL},
    {8, ReplacementPolicy::Fifo, 0xabbd6d81e737245aULL},
    {9, ReplacementPolicy::Fifo, 0x34c6e6bccb75ba88ULL},
    {10, ReplacementPolicy::Fifo, 0xae280df0efc71073ULL},
    {11, ReplacementPolicy::Fifo, 0x6340981ee3b9bb01ULL},
    {12, ReplacementPolicy::Fifo, 0xc29fe94a961a395fULL},
    {13, ReplacementPolicy::Fifo, 0x843777d1cd56862dULL},
    {14, ReplacementPolicy::Fifo, 0x001d8d1298a5fc84ULL},
    {15, ReplacementPolicy::Fifo, 0x3fd43d517fa62ce1ULL},
    {16, ReplacementPolicy::Fifo, 0x82929abd212689ccULL},
    {17, ReplacementPolicy::Fifo, 0x77bf00eb7707fbe8ULL},
    {18, ReplacementPolicy::Fifo, 0xe263368f0befd62dULL},
    {19, ReplacementPolicy::Fifo, 0xd62cdb8401d7f7a9ULL},
    {20, ReplacementPolicy::Fifo, 0x4e580a04f0e022fdULL},
    {1, ReplacementPolicy::Plru, 0x63cde261de2e9390ULL},
    {2, ReplacementPolicy::Plru, 0x686233a42f2f63d0ULL},
    {3, ReplacementPolicy::Plru, 0x3ec1121bd919184aULL},
    {4, ReplacementPolicy::Plru, 0xc7a7a4d273745746ULL},
    {5, ReplacementPolicy::Plru, 0xce5b19b7338816f9ULL},
    {6, ReplacementPolicy::Plru, 0xb6e98bf24cd15f9aULL},
    {7, ReplacementPolicy::Plru, 0x2b74b6727756baeaULL},
    {8, ReplacementPolicy::Plru, 0x5e66dd7f51dd4dd8ULL},
    {9, ReplacementPolicy::Plru, 0x323b3e5de4ca1ac9ULL},
    {10, ReplacementPolicy::Plru, 0x1069cea9271cb89eULL},
    {11, ReplacementPolicy::Plru, 0x1d38ef6cf4d984dcULL},
    {12, ReplacementPolicy::Plru, 0x3c7c3b76e1a4f8b3ULL},
    {13, ReplacementPolicy::Plru, 0x843777d1cd56862dULL},
    {14, ReplacementPolicy::Plru, 0xc4e396ddf2793a59ULL},
    {15, ReplacementPolicy::Plru, 0xbc57b1346e43de81ULL},
    {16, ReplacementPolicy::Plru, 0x516b2f5926b3de43ULL},
    {17, ReplacementPolicy::Plru, 0xaa403d65f4bc5019ULL},
    {18, ReplacementPolicy::Plru, 0x297221a91ed78248ULL},
    {19, ReplacementPolicy::Plru, 0xfa1e903253fd59e1ULL},
    {20, ReplacementPolicy::Plru, 0x8baf6170ad9e1f9aULL},
};

class VerdictRegressionTest
    : public ::testing::TestWithParam<VerdictGoldenEntry> {};

} // namespace

TEST_P(VerdictRegressionTest, PinnedVerdictDigestsAreStable) {
  const VerdictGoldenEntry &E = GetParam();
  ProgramGen Gen(E.Seed);
  GeneratedProgram G = Gen.generate();

  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP) << Diags.str();

  EXPECT_EQ(verdictDigest(*CP, E.Policy), E.Digest)
      << "verdict drift (" << policyTag(E.Policy) << ") at seed " << E.Seed;
}

INSTANTIATE_TEST_SUITE_P(PinnedVerdictCorpus, VerdictRegressionTest,
                         ::testing::ValuesIn(VerdictCorpus),
                         [](const ::testing::TestParamInfo<
                             VerdictGoldenEntry> &I) {
                           return std::string(policyTag(I.param.Policy)) +
                                  "_seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Summarize corpus: 20 deep-mode programs (ProgramGenOptions::Functions —
// helper functions, call statements, rolled widened loops) compiled under
// LoweringMode::Summarize and digested at module granularity: the entry
// report, every callee report, and every call summary (MayBlocks,
// SetPressure, ExitMust) via digestModuleReport. Pins the whole summarize
// pipeline — deep generator, rolled-loop widening fixpoints, bottom-up
// summary construction, call transfers — alongside the InlineUnroll
// corpora above, which this suite must never move (the deep-mode RNG
// draws are gated behind the Functions flag).
//===----------------------------------------------------------------------===//

namespace {

struct SummarizeGoldenEntry {
  uint64_t Seed;
  uint64_t SourceDigest;
  uint64_t JitDynamicDigest;
  uint64_t NoMergeFixedDigest;
};

// Regenerate with the snippet at the bottom of this file.
const SummarizeGoldenEntry SummarizeCorpus[] = {
    {1, 0x0dcf80a8dc8ad15eULL, 0xe977f5cd5927c7d9ULL, 0x9483a7ebd45b2c7aULL},
    {2, 0x61270ea9a311a9ecULL, 0xf81c8e0e010eb2ecULL, 0x6d41efcc8fc882f3ULL},
    {3, 0xf5bc1deacdeb8d6dULL, 0xad87737b23c28892ULL, 0x38303964cff2c438ULL},
    {4, 0x0d21b07f57baa7d0ULL, 0x723e079cd074bbe9ULL, 0xf3369a3d2a33a3f4ULL},
    {5, 0x917324874ba3356fULL, 0x629f1e7cfe39d54eULL, 0x629f1e7cfe39d54eULL},
    {6, 0x12750965066e9f91ULL, 0x263de63ba35fb728ULL, 0x01a20dc50337ce4aULL},
    {7, 0x6107c4f232cfe251ULL, 0xc8e56a1407c13c37ULL, 0x8be72467f9c77bcaULL},
    {8, 0xe01ffa4974ec6747ULL, 0x8026b383e3f4060cULL, 0x96294c3ac0bde945ULL},
    {9, 0x3cfdd57ef980f1edULL, 0x033da256e5e04e8dULL, 0x59fe90637e6659e8ULL},
    {10, 0x9031d9751e7b864aULL, 0xa81051842ce7204dULL, 0x3bc9687f0a0359a8ULL},
    {11, 0x02ebc4c342dc0598ULL, 0xa25ebfd0f08298ebULL, 0xdf395d2239a2f418ULL},
    {12, 0x237b33e200f4f95aULL, 0xc8f3022299b66503ULL, 0xc8f3022299b66503ULL},
    {13, 0xad9252786e232b01ULL, 0xf6a55dd4da6c34cfULL, 0xf6a55dd4da6c34cfULL},
    {14, 0xe0504d9039a12242ULL, 0x9b382e3bb503ee67ULL, 0xfdd2c9bdc51a75bfULL},
    {15, 0x2da71a274fea2af0ULL, 0x4ef1affc33d41e02ULL, 0x642751d6873ac059ULL},
    {16, 0x341bb7611006a363ULL, 0x2e6f7faadd883efaULL, 0x56101f9bf3981271ULL},
    {17, 0xbbb77658b9fd1488ULL, 0x34e30daae187c2f3ULL, 0x8f1d9263d366e496ULL},
    {18, 0xacfbcbd9bf5473c6ULL, 0x5eec1159d11031a4ULL, 0xab3096c8bd27b31cULL},
    {19, 0x1f936395b9dba4a9ULL, 0x9f2f446fa6bed451ULL, 0x562e577b30033a29ULL},
    {20, 0x756201446309677dULL, 0x3f236da4836d223fULL, 0x4240f3ff26117ff2ULL},
};

class SummarizeRegressionTest
    : public ::testing::TestWithParam<SummarizeGoldenEntry> {};

} // namespace

TEST_P(SummarizeRegressionTest, PinnedSummarizeDigestsAreStable) {
  const SummarizeGoldenEntry &E = GetParam();
  ProgramGenOptions GO;
  GO.Functions = true;
  ProgramGen Gen(E.Seed, GO);
  GeneratedProgram G = Gen.generate();

  EXPECT_EQ(fnv1a(G.source()), E.SourceDigest)
      << "deep-mode generator drift at seed " << E.Seed
      << "; actual source:\n" << G.source();

  DiagnosticEngine Diags;
  LoweringOptions LO;
  LO.Mode = LoweringMode::Summarize;
  auto CP = compileSource(G.source(), Diags, LO);
  ASSERT_TRUE(CP) << Diags.str();

  MustHitOptions Jit;
  Jit.Cache = CacheConfig::fullyAssociative(8);
  Jit.DepthMiss = 24;
  Jit.DepthHit = 6;
  Jit.Strategy = MergeStrategy::JustInTime;
  Jit.Bounding = BoundingMode::Dynamic;
  MustHitReport RJ = runMustHitAnalysis(*CP, Jit);
  ASSERT_TRUE(RJ.Converged);
  EXPECT_EQ(digestModuleReport(*CP, RJ), E.JitDynamicDigest)
      << "summarize drift (just-in-time/dynamic) at seed " << E.Seed;

  MustHitOptions Nm = Jit;
  Nm.Strategy = MergeStrategy::NoMerge;
  Nm.Bounding = BoundingMode::Fixed;
  MustHitReport RN = runMustHitAnalysis(*CP, Nm);
  ASSERT_TRUE(RN.Converged);
  EXPECT_EQ(digestModuleReport(*CP, RN), E.NoMergeFixedDigest)
      << "summarize drift (no-merge/fixed) at seed " << E.Seed;
}

INSTANTIATE_TEST_SUITE_P(PinnedSummarizeCorpus, SummarizeRegressionTest,
                         ::testing::ValuesIn(SummarizeCorpus),
                         [](const ::testing::TestParamInfo<
                             SummarizeGoldenEntry> &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

//===----------------------------------------------------------------------===//
// Golden regeneration snippet (compile against libspecai and paste):
//
//   #include "specai/SpecAI.h"
//   #include <cstdio>
//   using namespace specai;
//   int main() {
//     for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
//       ProgramGen Gen(Seed);
//       GeneratedProgram G = Gen.generate();
//       DiagnosticEngine Diags;
//       auto CP = compileSource(G.source(), Diags);
//       MustHitOptions Jit;
//       Jit.Cache = CacheConfig::fullyAssociative(8);
//       Jit.DepthMiss = 24; Jit.DepthHit = 6;
//       Jit.Strategy = MergeStrategy::JustInTime;
//       Jit.Bounding = BoundingMode::Dynamic;
//       MustHitReport RJ = runMustHitAnalysis(*CP, Jit);
//       MustHitOptions Nm = Jit;
//       Nm.Strategy = MergeStrategy::NoMerge;
//       Nm.Bounding = BoundingMode::Fixed;
//       MustHitReport RN = runMustHitAnalysis(*CP, Nm);
//       std::printf("    {%llu, 0x%016llxULL, 0x%016llxULL, 0x%016llxULL},\n",
//                   (unsigned long long)Seed,
//                   (unsigned long long)fnv1a(G.source()),
//                   (unsigned long long)digestMustHitReport(*CP, RJ),
//                   (unsigned long long)digestMustHitReport(*CP, RN));
//     }
//   }
//
// The policy corpus regenerates the same way with Jit.Cache switched via
// withPolicy(); the verdict corpus by printing verdictDigest per policy;
// the summarize corpus with ProgramGenOptions::Functions = true,
// LoweringOptions::Mode = Summarize, and digestModuleReport instead of
// digestMustHitReport.
//===----------------------------------------------------------------------===//
