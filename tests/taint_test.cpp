//===- taint_test.cpp - Secret taint propagation ---------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The taint closure (analysis/Taint.h) is the seeding half of the
/// side-channel detector: SecretIndexedAccesses is exactly the candidate
/// set SideChannel then proves timing-uniform or reports, and the repair
/// synthesizer (docs/MITIGATION.md) hoists and preloads against. These
/// tests pin the propagation rules one opcode at a time — load, store,
/// mov, ALU, and the summarize-mode call rule — plus the secret-source
/// seeding from both `secret` variables and `secret reg` globals, because
/// a dropped rule silently shrinks the detector's candidate set and turns
/// real leaks into "no leaks" verdicts.
///
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"
#include "analysis/AnalysisPipeline.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source,
                                         LoweringMode Mode =
                                             LoweringMode::InlineUnroll) {
  DiagnosticEngine Diags;
  LoweringOptions LO;
  LO.Mode = Mode;
  auto CP = compileSource(Source, Diags, LO);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

/// Joint module closure over the entry and every callee, the way
/// SideChannel invokes it.
std::vector<TaintResult> moduleTaint(const CompiledProgram &CP) {
  std::vector<const FlatCfg *> Gs;
  Gs.push_back(&CP.G);
  for (const std::unique_ptr<CompiledProgram> &Callee : CP.Callees)
    Gs.push_back(&Callee->G);
  return computeModuleTaint(Gs);
}

} // namespace

//===----------------------------------------------------------------------===//
// Secret-source seeding
//===----------------------------------------------------------------------===//

TEST(TaintSeedTest, SecretVariableSeedsItsVarSlot) {
  auto CP = compile("secret int k; int pub; int main() { return k; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("k")));
  EXPECT_FALSE(R.isVarTainted(CP->P->findVar("pub")));
}

TEST(TaintSeedTest, SecretRegGlobalSeedsItsRegister) {
  auto CP = compile("secret reg char key; reg int pub; char t[256]; "
                    "int main() { return t[key & 255] + pub; }");
  TaintResult R = computeTaint(CP->G);
  ASSERT_EQ(CP->P->RegGlobals.size(), 2u);
  for (const RegGlobal &RG : CP->P->RegGlobals)
    EXPECT_EQ(R.isRegTainted(RG.Reg), RG.IsSecret) << RG.Name;
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintSeedTest, NoSecretsMeansNothingTaints) {
  auto CP = compile("int k; char t[256]; int main() { reg int x; x = k; "
                    "return t[x & 255]; }");
  TaintResult R = computeTaint(CP->G);
  for (size_t I = 0; I != R.TaintedRegs.size(); ++I)
    EXPECT_FALSE(R.TaintedRegs[I]) << "r" << I;
  for (size_t I = 0; I != R.TaintedVars.size(); ++I)
    EXPECT_FALSE(R.TaintedVars[I]) << "var " << I;
  EXPECT_TRUE(R.SecretIndexedAccesses.empty());
}

//===----------------------------------------------------------------------===//
// Propagation through loads and stores
//===----------------------------------------------------------------------===//

TEST(TaintFlowTest, LoadFromSecretVarTaintsTheDestination) {
  auto CP = compile("secret int k; char t[256]; int main() { reg int x; "
                    "x = k; return t[x & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintFlowTest, StoresCarryTaintIntoMemoryAndBackOut) {
  // Secret -> register -> public scratch var -> register -> index: two
  // memory round trips, each needing both the Store and the Load rule.
  auto CP = compile("secret int k; int a; int b; char t[256]; "
                    "int main() { reg int x; x = k; a = x; "
                    "reg int y; y = a; b = y; return t[b & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("a")));
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("b")));
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintFlowTest, FlowInsensitivityNeverUntaints) {
  // The public overwrite of `a` comes *after* the tainted store in program
  // order, but the closure is flow-insensitive: once tainted, always
  // tainted, which errs toward reporting — sound for detection.
  auto CP = compile("secret int k; int a; char t[256]; int main() { "
                    "reg int x; x = k; a = x; a = 0; return t[a & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("a")));
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintFlowTest, ArithmeticMixesTaintFromEitherOperand) {
  auto CP = compile("secret int k; int pub; char t[256]; char u[256]; "
                    "int main() { reg int x; x = pub + k; "
                    "reg int y; y = pub * 2; "
                    "return t[x & 255] + u[y & 255]; }");
  TaintResult R = computeTaint(CP->G);
  // Only the k-derived index is flagged; the pure-public one is not.
  ASSERT_EQ(R.SecretIndexedAccesses.size(), 1u);
  const Instruction &I = CP->G.inst(R.SecretIndexedAccesses[0]);
  EXPECT_EQ(CP->P->Vars[I.Var].Name, "t");
}

TEST(TaintFlowTest, SecretDataAtPublicAddressIsNotAnAddressLeak) {
  // The detector flags secret *addresses*, not secret data: loading
  // key[0] moves secret bytes but its cache line is fixed.
  auto CP = compile("secret char key[64]; char t[256]; int main() { "
                    "return key[0] + t[3]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.SecretIndexedAccesses.empty());
  // The loaded *value* is tainted, so indexing with it would be flagged.
  auto CP2 = compile("secret char key[64]; char t[256]; int main() { "
                     "reg int x; x = key[0]; return t[x & 255]; }");
  TaintResult R2 = computeTaint(CP2->G);
  EXPECT_EQ(R2.SecretIndexedAccesses.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Call summaries (summarize lowering)
//===----------------------------------------------------------------------===//

TEST(TaintCallTest, CalleeReturningSecretTaintsTheCallResult) {
  const char *Source = "secret int k; char t[256]; "
                       "int f() { return k; } "
                       "int main() { reg int x; x = f(); "
                       "return t[x & 255]; }";
  auto CP = compile(Source, LoweringMode::Summarize);
  ASSERT_EQ(CP->Callees.size(), 1u);
  std::vector<TaintResult> Taints = moduleTaint(*CP);
  ASSERT_EQ(Taints.size(), 2u);
  // The secret-indexed access sits in the entry, fed by f's return value.
  EXPECT_EQ(Taints[0].SecretIndexedAccesses.size(), 1u);
  EXPECT_TRUE(Taints[1].SecretIndexedAccesses.empty());
}

TEST(TaintCallTest, SecretArgumentFlowsIntoTheCalleeBody) {
  const char *Source = "secret int k; char t[256]; "
                       "int f(int i) { return t[i & 255]; } "
                       "int main() { return f(k); }";
  auto CP = compile(Source, LoweringMode::Summarize);
  ASSERT_EQ(CP->Callees.size(), 1u);
  std::vector<TaintResult> Taints = moduleTaint(*CP);
  ASSERT_EQ(Taints.size(), 2u);
  // Argument passing is ordinary data flow into the shared parameter
  // slots, so the flagged access is *inside* the callee's own CFG.
  EXPECT_TRUE(Taints[0].SecretIndexedAccesses.empty());
  EXPECT_EQ(Taints[1].SecretIndexedAccesses.size(), 1u);
}

TEST(TaintCallTest, PublicCallsStayClean) {
  const char *Source = "secret int k; int pub; char t[256]; "
                       "int f(int i) { return t[i & 255]; } "
                       "int main() { reg int x; x = k; return f(pub) + x; }";
  auto CP = compile(Source, LoweringMode::Summarize);
  std::vector<TaintResult> Taints = moduleTaint(*CP);
  for (const TaintResult &R : Taints)
    EXPECT_TRUE(R.SecretIndexedAccesses.empty());
}

TEST(TaintCallTest, ModuleResultsShareOneRegAndVarTaintSet) {
  const char *Source = "secret int k; char t[256]; "
                       "int f(int i) { return t[i & 255]; } "
                       "int main() { return f(k); }";
  auto CP = compile(Source, LoweringMode::Summarize);
  std::vector<TaintResult> Taints = moduleTaint(*CP);
  ASSERT_EQ(Taints.size(), 2u);
  // One shared layout, one joint closure: every per-CFG result carries
  // the identical reg/var sets, only SecretIndexedAccesses is local.
  EXPECT_EQ(Taints[0].TaintedRegs, Taints[1].TaintedRegs);
  EXPECT_EQ(Taints[0].TaintedVars, Taints[1].TaintedVars);
}

TEST(TaintCallTest, InlineAndSummarizeAgreeOnTheCandidateCount) {
  // The same source, both lowerings: inlining copies the callee's flagged
  // access into the entry, summarize keeps it in the callee — but the
  // total candidate population the detector sees must match.
  const char *Source = "secret int k; char t[256]; "
                       "int f(int i) { return t[i & 255]; } "
                       "int main() { return f(k) + f(3); }";
  auto Inline = compile(Source, LoweringMode::InlineUnroll);
  auto Summ = compile(Source, LoweringMode::Summarize);
  size_t InlineCount = computeTaint(Inline->G).SecretIndexedAccesses.size();
  size_t SummCount = 0;
  for (const TaintResult &R : moduleTaint(*Summ))
    SummCount += R.SecretIndexedAccesses.size();
  // Inline mode: only the f(k) copy's load is secret-indexed. Summarize
  // mode: the shared body's load is tainted once the closure joins both
  // call sites (flow-insensitive over-approximation, never fewer).
  EXPECT_EQ(InlineCount, 2u) << "both inlined copies flag: the parameter "
                                "slot is shared and stays tainted";
  EXPECT_EQ(SummCount, 1u);
  EXPECT_GE(InlineCount, SummCount);
}
