//===- analysis_test.cpp - Taint, side channel, WCET ----------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"
#include "analysis/Taint.h"
#include "analysis/Wcet.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

//===----------------------------------------------------------------------===//
// Taint
//===----------------------------------------------------------------------===//

TEST(TaintTest, SecretVariableSeedsTaint) {
  auto CP = compile("secret int k; char t[256]; int main() { reg int x; "
                    "x = k; return t[x & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("k")));
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintTest, SecretRegGlobalSeedsTaint) {
  auto CP = compile("secret reg char k; char t[256]; int main() { "
                    "return t[k & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintTest, TaintFlowsThroughArithmeticAndMemory) {
  auto CP = compile("secret int k; int tmp; char t[256]; int main() { "
                    "reg int x; x = (k * 3) ^ 5; tmp = x; "
                    "return t[tmp & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("tmp")));
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintTest, PublicIndexIsNotFlagged) {
  auto CP = compile("secret int k; int pub; char t[256]; int main() { "
                    "reg int x; x = k; return t[pub & 255] + x; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.SecretIndexedAccesses.empty());
}

TEST(TaintTest, ConstantIndexedSecretDataIsNotAnAddressLeak) {
  // Loading secret *data* at a public address is not a cache-address leak.
  auto CP = compile("secret char key[64]; int main() { return key[0]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.SecretIndexedAccesses.empty());
}

//===----------------------------------------------------------------------===//
// Side channel detection
//===----------------------------------------------------------------------===//

TEST(SideChannelTest, FullyCachedTableIsLeakFree) {
  auto CP = compile("secret int k; char t[256]; int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "return t[k & 255]; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(16);
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  EXPECT_FALSE(SC.leakDetected());
  EXPECT_EQ(SC.ProvenLeakFree, 1u);
}

TEST(SideChannelTest, PartiallyCachedTableLeaks) {
  auto CP = compile("secret int k; char t[256]; char big[384]; "
                    "int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "for (reg int i = 0; i < 384; i += 64) x = big[i]; "
                    "return t[k & 255]; }");
  // 8-line cache: big's 6 lines push t's oldest two lines out while the
  // youngest two stay — a secret-dependent hit/miss mix.
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  EXPECT_TRUE(SC.leakDetected());
  ASSERT_EQ(SC.Leaks.size(), 1u);
  EXPECT_EQ(SC.Leaks[0].Var, CP->P->findVar("t"));
  EXPECT_NE(SC.Leaks[0].str(*CP->P).find("'t'"), std::string::npos);
}

TEST(SideChannelTest, DefinitelyEvictedTableIsUniformNoLeak) {
  // After a full cache sweep the table is *definitely* out: every access
  // misses regardless of the secret -> uniform -> no leak (this is why
  // the paper's aes with a 32 KB buffer is reported leak free).
  auto CP = compile("secret int k; char t[128]; char big[1024]; "
                    "int main() { reg int x; "
                    "for (reg int i = 0; i < 128; i += 64) x = t[i]; "
                    "for (reg int i = 0; i < 1024; i += 64) x = big[i]; "
                    "return t[k & 127]; }");
  // Cache of 8 lines; big (16 lines) flushes everything deterministically.
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  EXPECT_FALSE(SC.leakDetected());
  EXPECT_EQ(SC.ProvenLeakFree, 1u);
}

TEST(SideChannelTest, SingleLineTableIsAlwaysUniform) {
  // A one-line table cannot leak through the address: any index maps to
  // the same line (the str2key odd_parity table).
  auto CP = compile("secret int k; char t[64]; char big[512]; int main() { "
                    "reg int x; x = t[0]; "
                    "for (reg int i = 0; i < 512; i += 64) x = big[i]; "
                    "return t[k & 63]; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  // Either all-hit or all-miss: one line is uniform by construction.
  EXPECT_FALSE(SC.leakDetected());
}

TEST(SideChannelTest, SpeculationOnlyLeakRequiresSpeculativeAnalysis) {
  // Figure 2's scenario distilled: the branch sides overflow the cache
  // only when both execute (one speculatively).
  std::string Source =
      "secret reg char k; char t[256]; char w1[128]; char w2[128]; int c; "
      "int main() { reg int x; "
      "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
      "if (c) { x = x + w1[0] + w1[64]; } else { x = x + w2[0] + w2[64]; } "
      "return t[k & 255]; }";
  auto CP = compile(Source);
  // 7-line cache: t(4) + c(1) + one side(2) = 7 fits; both sides = 9.
  MustHitOptions NonSpec;
  NonSpec.Cache = CacheConfig::fullyAssociative(7);
  NonSpec.Speculative = false;
  EXPECT_FALSE(
      detectLeaks(*CP, runMustHitAnalysis(*CP, NonSpec)).leakDetected());
  MustHitOptions Spec = NonSpec;
  Spec.Speculative = true;
  EXPECT_TRUE(
      detectLeaks(*CP, runMustHitAnalysis(*CP, Spec)).leakDetected());
}

TEST(SideChannelTest, LeakFreeSitesListsTheProvenNodes) {
  auto CP = compile("secret int k; char t[256]; int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "return t[k & 255]; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(16);
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  ASSERT_EQ(SC.LeakFreeSites.size(), 1u);
  EXPECT_EQ(SC.ProvenLeakFree, SC.LeakFreeSites.size());
  EXPECT_EQ(CP->G.inst(SC.LeakFreeSites[0]).Var, CP->P->findVar("t"));
}

TEST(SideChannelTest, AnnotateSpeculationOnlyFlagsTheDiff) {
  // The Figure-2 shape: leak-free without speculation, leaking with it —
  // the diff must flag the site SpeculationOnly (Table 7's contrast).
  std::string Source =
      "secret reg char k; char t[256]; char w1[128]; char w2[128]; int c; "
      "int main() { reg int x; "
      "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
      "if (c) { x = x + w1[0] + w1[64]; } else { x = x + w2[0] + w2[64]; } "
      "return t[k & 255]; }";
  auto CP = compile(Source);
  MustHitOptions NonSpec;
  NonSpec.Cache = CacheConfig::fullyAssociative(7);
  NonSpec.Speculative = false;
  SideChannelReport NS =
      detectLeaks(*CP, runMustHitAnalysis(*CP, NonSpec));
  ASSERT_FALSE(NS.leakDetected());
  MustHitOptions Spec = NonSpec;
  Spec.Speculative = true;
  SideChannelReport SP = detectLeaks(*CP, runMustHitAnalysis(*CP, Spec));
  ASSERT_TRUE(SP.leakDetected());

  EXPECT_EQ(annotateSpeculationOnly(SP, NS), SP.Leaks.size());
  for (const LeakSite &L : SP.Leaks) {
    EXPECT_TRUE(L.SpeculationOnly);
    EXPECT_NE(L.str(*CP->P).find("[speculation-induced]"),
              std::string::npos);
  }

  // The LeakDropSpecOnly fault (fuzz self-test) suppresses the flag.
  SideChannelOptions Faulty;
  Faulty.Fault = VerdictFault::LeakDropSpecOnly;
  EXPECT_EQ(annotateSpeculationOnly(SP, NS, Faulty), 0u);
  for (const LeakSite &L : SP.Leaks)
    EXPECT_FALSE(L.SpeculationOnly);
}

TEST(SideChannelTest, AnnotateSpeculationOnlySkipsArchitecturalLeaks) {
  // A site leaking even without speculation must *not* be flagged: the
  // attacker needs no transient window there.
  auto CP = compile("secret int k; char t[256]; char big[384]; "
                    "int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "for (reg int i = 0; i < 384; i += 64) x = big[i]; "
                    "return t[k & 255]; }");
  MustHitOptions NonSpec;
  NonSpec.Cache = CacheConfig::fullyAssociative(8);
  NonSpec.Speculative = false;
  SideChannelReport NS =
      detectLeaks(*CP, runMustHitAnalysis(*CP, NonSpec));
  ASSERT_TRUE(NS.leakDetected());
  MustHitOptions Spec = NonSpec;
  Spec.Speculative = true;
  SideChannelReport SP = detectLeaks(*CP, runMustHitAnalysis(*CP, Spec));
  ASSERT_TRUE(SP.leakDetected());
  EXPECT_EQ(annotateSpeculationOnly(SP, NS), 0u);
  for (const LeakSite &L : SP.Leaks)
    EXPECT_FALSE(L.SpeculationOnly);
}

TEST(SideChannelTest, InjectedLeakFaultsSuppressLeaks) {
  // The detector-side self-test faults must actually report a leaking
  // site leak-free; the fuzzer's concrete attacker catches the lie.
  auto CP = compile("secret int k; char t[256]; char big[384]; "
                    "int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "for (reg int i = 0; i < 384; i += 64) x = big[i]; "
                    "return t[k & 255]; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  ASSERT_TRUE(detectLeaks(*CP, R).leakDetected());
  SideChannelOptions Faulty;
  Faulty.Fault = VerdictFault::LeakSkipMixed;
  SideChannelReport SC = detectLeaks(*CP, R, Faulty);
  EXPECT_FALSE(SC.leakDetected());
  EXPECT_EQ(SC.ProvenLeakFree, 1u);
}

//===----------------------------------------------------------------------===//
// WCET estimation
//===----------------------------------------------------------------------===//

TEST(WcetTest, CountsMissAndHitNodes) {
  auto CP = compile("char a[64]; int main() { reg int t; t = a[0]; "
                    "t = t + a[0]; return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetReport W = estimateWcet(*CP, R);
  EXPECT_EQ(W.PossibleMissNodes, 1u);
  EXPECT_EQ(W.MustHitNodes, 1u);
}

TEST(WcetTest, MissesDominateTheCycleBound) {
  auto CP = compile("char a[64]; int main() { reg int t; t = a[0]; "
                    "t = t + a[0]; return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO;
  WcetReport W = estimateWcet(*CP, R, WO);
  EXPECT_GE(W.WorstCaseCycles, WO.Timing.MissLatency);
}

TEST(WcetTest, SpeculativeAnalysisRaisesTheBound) {
  auto CP = compile(fig2Source());
  MustHitOptions NonSpec;
  NonSpec.Speculative = false;
  WcetReport WNs = estimateWcet(*CP, runMustHitAnalysis(*CP, NonSpec));
  MustHitOptions Spec;
  Spec.Speculative = true;
  WcetReport WSp = estimateWcet(*CP, runMustHitAnalysis(*CP, Spec));
  // The missed final access adds a full miss latency (paper §2.1: "it may
  // underestimate the worst-case execution time").
  EXPECT_GT(WSp.WorstCaseCycles, WNs.WorstCaseCycles);
  EXPECT_GT(WSp.PossibleMissNodes, WNs.PossibleMissNodes);
}

TEST(WcetTest, MonotoneInLoopIterationBound) {
  // The fuzzer's WCET oracle checks each run against the estimate for its
  // observed loop-header execution count and relies on monotonicity to
  // cover every larger bound; pin the property directly.
  auto CP = compile("int n; char a[64]; int main() { reg int t; t = 0; "
                    "while (n > 0) { n = n - 1; t = t + a[0]; } "
                    "return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO;
  uint64_t Prev = 0;
  for (uint32_t Bound : {1u, 2u, 5u, 17u, 64u, 200u, 1000u}) {
    WO.LoopIterationBound = Bound;
    uint64_t Cycles = estimateWcet(*CP, R, WO).WorstCaseCycles;
    EXPECT_GE(Cycles, Prev) << "bound " << Bound;
    Prev = Cycles;
  }
}

TEST(WcetTest, MonotoneInMissLatency) {
  auto CP = compile("int n; char a[64]; char b[128]; int main() { "
                    "reg int t; t = 0; t = a[0]; t = t + b[64]; "
                    "while (n > 0) { n = n - 1; t = t + b[0]; } "
                    "return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO;
  uint64_t Prev = 0;
  for (uint32_t Miss : {2u, 10u, 50u, 100u, 400u}) {
    WO.Timing.MissLatency = Miss;
    uint64_t Cycles = estimateWcet(*CP, R, WO).WorstCaseCycles;
    EXPECT_GE(Cycles, Prev) << "miss latency " << Miss;
    Prev = Cycles;
  }
  // With possible misses present the dependence is strict.
  ASSERT_GT(estimateWcet(*CP, R).PossibleMissNodes, 0u);
  WO.Timing.MissLatency = 100;
  uint64_t At100 = estimateWcet(*CP, R, WO).WorstCaseCycles;
  WO.Timing.MissLatency = 101;
  EXPECT_GT(estimateWcet(*CP, R, WO).WorstCaseCycles, At100);
}

TEST(WcetTest, HitLatencyFloorOnStraightLineCode) {
  // On straight-line code the longest path visits every node, so the
  // bound can never fall below charging every must-hit its hit latency.
  auto CP = compile("char a[64]; int main() { reg int t; t = a[0]; "
                    "t = t + a[0]; t = t + a[0]; return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO;
  WcetReport W = estimateWcet(*CP, R, WO);
  EXPECT_EQ(W.MustHitNodes, 2u);
  EXPECT_GE(W.WorstCaseCycles, W.MustHitNodes * WO.Timing.HitLatency);
}

TEST(WcetTest, HandComputedTwoLoopBound) {
  // Two sequential data-bounded loops — the shape whose tail the
  // pre-redirection longest path silently dropped (a back edge dead-ends;
  // everything after the first loop was bounded as if the loop body never
  // ran). Lowered CFG, with h/M/A/Br the hit/miss/ALU/branch latencies
  // and B the loop iteration bound:
  //
  //   bb0 entry:        mov, jmp                     -> 2A
  //   bb1 while.header: load n (miss), gt, br        -> B(M + A + Br)
  //   bb2 while.body:   load n (hit), sub, store n (hit),
  //                     load a[0] (miss), add, mov, jmp
  //                                                  -> B(2h + M + 4A)
  //   bb3 while.end:    jmp                          -> A
  //   bb4/bb5:          same shape for the m loop
  //   bb6:              ret                          -> A
  //
  // The header loads are joins of a not-resident entry path and the
  // resident back edge, so they stay possible misses; the body reloads
  // and stores touch the line the header just loaded (must-hits); a[0]
  // is not resident on the first iteration. Longest path threads both
  // loops (body weight reaches bb3/bb6 via the back-edge redirection):
  //   4A + 2B(2M + 2h + 5A + Br).
  auto CP = compile("int n; int m; char a[64]; int main() { reg int t; "
                    "t = 0; "
                    "while (n > 0) { n = n - 1; t = t + a[0]; } "
                    "while (m > 0) { m = m - 1; t = t + a[0]; } "
                    "return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(16);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO; // h=2, M=100, A=1, Br=10, B=64.
  WcetReport W = estimateWcet(*CP, R, WO);
  EXPECT_EQ(W.MustHitNodes, 4u);
  EXPECT_EQ(W.PossibleMissNodes, 4u);
  const uint64_t H = WO.Timing.HitLatency, M = WO.Timing.MissLatency,
                 A = WO.Timing.AluLatency,
                 Br = WO.Timing.BranchResolveLatency,
                 B = WO.LoopIterationBound;
  EXPECT_EQ(W.WorstCaseCycles, 4 * A + 2 * B * (2 * M + 2 * H + 5 * A + Br));

  // And with a different bound and timing model, to pin the formula
  // rather than one constant (28036 for the defaults).
  WO.LoopIterationBound = 7;
  WO.Timing.MissLatency = 30;
  WO.Timing.BranchResolveLatency = 3;
  W = estimateWcet(*CP, R, WO);
  EXPECT_EQ(W.WorstCaseCycles, 4 * A + 2 * 7 * (2 * 30 + 2 * H + 5 * A + 3));
}

TEST(WcetTest, InjectedVerdictFaultsLowerTheBound) {
  // The self-test faults must actually weaken the verdict, or the fuzz
  // fault matrix would prove nothing.
  auto CP = compile("int n; char a[64]; char b[192]; int main() { "
                    "reg int t; t = 0; t = b[128]; "
                    "while (n > 0) { n = n - 1; t = t + a[0]; } "
                    "return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO;
  uint64_t Healthy = estimateWcet(*CP, R, WO).WorstCaseCycles;
  WO.Fault = VerdictFault::WcetHitForMiss;
  EXPECT_LT(estimateWcet(*CP, R, WO).WorstCaseCycles, Healthy);
  WO.Fault = VerdictFault::WcetDropLoopScale;
  EXPECT_LT(estimateWcet(*CP, R, WO).WorstCaseCycles, Healthy);
}

TEST(WcetTest, LoopBoundScalesLoopBodies) {
  auto CP = compile("int n; char a[64]; int main() { int i; reg int t; "
                    "t = 0; for (i = 0; i < n; i++) { t = t + a[0]; } "
                    "return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions Small;
  Small.LoopIterationBound = 1;
  WcetOptions Large;
  Large.LoopIterationBound = 100;
  EXPECT_GT(estimateWcet(*CP, R, Large).WorstCaseCycles,
            estimateWcet(*CP, R, Small).WorstCaseCycles);
}
