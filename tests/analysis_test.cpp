//===- analysis_test.cpp - Taint, side channel, WCET ----------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"
#include "analysis/Taint.h"
#include "analysis/Wcet.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

//===----------------------------------------------------------------------===//
// Taint
//===----------------------------------------------------------------------===//

TEST(TaintTest, SecretVariableSeedsTaint) {
  auto CP = compile("secret int k; char t[256]; int main() { reg int x; "
                    "x = k; return t[x & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("k")));
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintTest, SecretRegGlobalSeedsTaint) {
  auto CP = compile("secret reg char k; char t[256]; int main() { "
                    "return t[k & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintTest, TaintFlowsThroughArithmeticAndMemory) {
  auto CP = compile("secret int k; int tmp; char t[256]; int main() { "
                    "reg int x; x = (k * 3) ^ 5; tmp = x; "
                    "return t[tmp & 255]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.isVarTainted(CP->P->findVar("tmp")));
  EXPECT_EQ(R.SecretIndexedAccesses.size(), 1u);
}

TEST(TaintTest, PublicIndexIsNotFlagged) {
  auto CP = compile("secret int k; int pub; char t[256]; int main() { "
                    "reg int x; x = k; return t[pub & 255] + x; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.SecretIndexedAccesses.empty());
}

TEST(TaintTest, ConstantIndexedSecretDataIsNotAnAddressLeak) {
  // Loading secret *data* at a public address is not a cache-address leak.
  auto CP = compile("secret char key[64]; int main() { return key[0]; }");
  TaintResult R = computeTaint(CP->G);
  EXPECT_TRUE(R.SecretIndexedAccesses.empty());
}

//===----------------------------------------------------------------------===//
// Side channel detection
//===----------------------------------------------------------------------===//

TEST(SideChannelTest, FullyCachedTableIsLeakFree) {
  auto CP = compile("secret int k; char t[256]; int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "return t[k & 255]; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(16);
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  EXPECT_FALSE(SC.leakDetected());
  EXPECT_EQ(SC.ProvenLeakFree, 1u);
}

TEST(SideChannelTest, PartiallyCachedTableLeaks) {
  auto CP = compile("secret int k; char t[256]; char big[384]; "
                    "int main() { reg int x; "
                    "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
                    "for (reg int i = 0; i < 384; i += 64) x = big[i]; "
                    "return t[k & 255]; }");
  // 8-line cache: big's 6 lines push t's oldest two lines out while the
  // youngest two stay — a secret-dependent hit/miss mix.
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  EXPECT_TRUE(SC.leakDetected());
  ASSERT_EQ(SC.Leaks.size(), 1u);
  EXPECT_EQ(SC.Leaks[0].Var, CP->P->findVar("t"));
  EXPECT_NE(SC.Leaks[0].str(*CP->P).find("'t'"), std::string::npos);
}

TEST(SideChannelTest, DefinitelyEvictedTableIsUniformNoLeak) {
  // After a full cache sweep the table is *definitely* out: every access
  // misses regardless of the secret -> uniform -> no leak (this is why
  // the paper's aes with a 32 KB buffer is reported leak free).
  auto CP = compile("secret int k; char t[128]; char big[1024]; "
                    "int main() { reg int x; "
                    "for (reg int i = 0; i < 128; i += 64) x = t[i]; "
                    "for (reg int i = 0; i < 1024; i += 64) x = big[i]; "
                    "return t[k & 127]; }");
  // Cache of 8 lines; big (16 lines) flushes everything deterministically.
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  EXPECT_FALSE(SC.leakDetected());
  EXPECT_EQ(SC.ProvenLeakFree, 1u);
}

TEST(SideChannelTest, SingleLineTableIsAlwaysUniform) {
  // A one-line table cannot leak through the address: any index maps to
  // the same line (the str2key odd_parity table).
  auto CP = compile("secret int k; char t[64]; char big[512]; int main() { "
                    "reg int x; x = t[0]; "
                    "for (reg int i = 0; i < 512; i += 64) x = big[i]; "
                    "return t[k & 63]; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  // Either all-hit or all-miss: one line is uniform by construction.
  EXPECT_FALSE(SC.leakDetected());
}

TEST(SideChannelTest, SpeculationOnlyLeakRequiresSpeculativeAnalysis) {
  // Figure 2's scenario distilled: the branch sides overflow the cache
  // only when both execute (one speculatively).
  std::string Source =
      "secret reg char k; char t[256]; char w1[128]; char w2[128]; int c; "
      "int main() { reg int x; "
      "for (reg int i = 0; i < 256; i += 64) x = t[i]; "
      "if (c) { x = x + w1[0] + w1[64]; } else { x = x + w2[0] + w2[64]; } "
      "return t[k & 255]; }";
  auto CP = compile(Source);
  // 7-line cache: t(4) + c(1) + one side(2) = 7 fits; both sides = 9.
  MustHitOptions NonSpec;
  NonSpec.Cache = CacheConfig::fullyAssociative(7);
  NonSpec.Speculative = false;
  EXPECT_FALSE(
      detectLeaks(*CP, runMustHitAnalysis(*CP, NonSpec)).leakDetected());
  MustHitOptions Spec = NonSpec;
  Spec.Speculative = true;
  EXPECT_TRUE(
      detectLeaks(*CP, runMustHitAnalysis(*CP, Spec)).leakDetected());
}

//===----------------------------------------------------------------------===//
// WCET estimation
//===----------------------------------------------------------------------===//

TEST(WcetTest, CountsMissAndHitNodes) {
  auto CP = compile("char a[64]; int main() { reg int t; t = a[0]; "
                    "t = t + a[0]; return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetReport W = estimateWcet(*CP, R);
  EXPECT_EQ(W.PossibleMissNodes, 1u);
  EXPECT_EQ(W.MustHitNodes, 1u);
}

TEST(WcetTest, MissesDominateTheCycleBound) {
  auto CP = compile("char a[64]; int main() { reg int t; t = a[0]; "
                    "t = t + a[0]; return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions WO;
  WcetReport W = estimateWcet(*CP, R, WO);
  EXPECT_GE(W.WorstCaseCycles, WO.Timing.MissLatency);
}

TEST(WcetTest, SpeculativeAnalysisRaisesTheBound) {
  auto CP = compile(fig2Source());
  MustHitOptions NonSpec;
  NonSpec.Speculative = false;
  WcetReport WNs = estimateWcet(*CP, runMustHitAnalysis(*CP, NonSpec));
  MustHitOptions Spec;
  Spec.Speculative = true;
  WcetReport WSp = estimateWcet(*CP, runMustHitAnalysis(*CP, Spec));
  // The missed final access adds a full miss latency (paper §2.1: "it may
  // underestimate the worst-case execution time").
  EXPECT_GT(WSp.WorstCaseCycles, WNs.WorstCaseCycles);
  EXPECT_GT(WSp.PossibleMissNodes, WNs.PossibleMissNodes);
}

TEST(WcetTest, LoopBoundScalesLoopBodies) {
  auto CP = compile("int n; char a[64]; int main() { int i; reg int t; "
                    "t = 0; for (i = 0; i < n; i++) { t = t + a[0]; } "
                    "return t; }");
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(8);
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  WcetOptions Small;
  Small.LoopIterationBound = 1;
  WcetOptions Large;
  Large.LoopIterationBound = 100;
  EXPECT_GT(estimateWcet(*CP, R, Large).WorstCaseCycles,
            estimateWcet(*CP, R, Small).WorstCaseCycles);
}
