//===- workloads_test.cpp - Benchmark suite integration tests -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"
#include "ir/Interp.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

TEST(WorkloadsTest, SuitesHaveTheTenPaperNames) {
  ASSERT_EQ(wcetWorkloads().size(), 10u);
  ASSERT_EQ(cryptoWorkloads().size(), 10u);
  EXPECT_EQ(wcetWorkloads().front().Name, "adpcm");
  EXPECT_EQ(cryptoWorkloads().front().Name, "hash");
  EXPECT_EQ(cryptoWorkloads().back().Name, "salsa");
}

//===----------------------------------------------------------------------===//
// Table 3 kernels
//===----------------------------------------------------------------------===//

class WcetWorkloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WcetWorkloadTest, CompilesRunsAndConverges) {
  const Workload &W = wcetWorkloads()[GetParam()];
  auto CP = compile(W.Source);
  ASSERT_TRUE(CP);

  // Functionally executable to completion.
  Machine M(*CP->P);
  uint64_t Steps = M.run(5'000'000);
  EXPECT_TRUE(M.halted()) << W.Name << " after " << Steps << " steps";

  // Both analyses converge; speculation never decreases miss counts.
  MustHitOptions NonSpec;
  NonSpec.Cache = CacheConfig::fullyAssociative(64);
  NonSpec.Speculative = false;
  MustHitReport NS = runMustHitAnalysis(*CP, NonSpec);
  EXPECT_TRUE(NS.Converged);
  MustHitOptions Spec = NonSpec;
  Spec.Speculative = true;
  MustHitReport SP = runMustHitAnalysis(*CP, Spec);
  EXPECT_TRUE(SP.Converged);
  EXPECT_GE(SP.MissCount, NS.MissCount) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WcetWorkloadTest,
                         ::testing::Range<size_t>(0, 10),
                         [](const auto &Info) {
                           return wcetWorkloads()[Info.param].Name;
                         });

TEST(WcetWorkloadsTest, SpeculationAddsMissesOnMostKernels) {
  unsigned Strictly = 0;
  for (const Workload &W : wcetWorkloads()) {
    auto CP = compile(W.Source);
    MustHitOptions NonSpec;
    NonSpec.Cache = CacheConfig::fullyAssociative(64);
    NonSpec.Speculative = false;
    MustHitOptions Spec = NonSpec;
    Spec.Speculative = true;
    if (runMustHitAnalysis(*CP, Spec).MissCount >
        runMustHitAnalysis(*CP, NonSpec).MissCount)
      ++Strictly;
  }
  // The paper's Table 5 shows strictly more misses on 8/10 kernels; our
  // distilled versions must show the same tendency (at least half).
  EXPECT_GE(Strictly, 5u);
}

//===----------------------------------------------------------------------===//
// Table 4 kernels + Figure 10 client
//===----------------------------------------------------------------------===//

class CryptoWorkloadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CryptoWorkloadTest, ClientCompilesAndRuns) {
  const CryptoWorkload &W = cryptoWorkloads()[GetParam()];
  auto CP = compile(makeClientProgram(W, 4096));
  ASSERT_TRUE(CP);
  Machine M(*CP->P);
  M.run(5'000'000);
  EXPECT_TRUE(M.halted()) << W.Name;
}

TEST_P(CryptoWorkloadTest, NonSpeculativeAnalysisFindsNoLeakAtZeroBuffer) {
  const CryptoWorkload &W = cryptoWorkloads()[GetParam()];
  auto CP = compile(makeClientProgram(W, 0));
  MustHitOptions Opts;
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  EXPECT_FALSE(detectLeaks(*CP, R).leakDetected()) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, CryptoWorkloadTest,
                         ::testing::Range<size_t>(0, 10),
                         [](const auto &Info) {
                           return cryptoWorkloads()[Info.param].Name;
                         });

TEST(CryptoWorkloadsTest, DesLeaksSpeculativelyAtZeroBuffer) {
  const CryptoWorkload *Des = nullptr;
  for (const CryptoWorkload &W : cryptoWorkloads())
    if (W.Name == "des")
      Des = &W;
  ASSERT_NE(Des, nullptr);
  auto CP = compile(makeClientProgram(*Des, 0));
  MustHitOptions Spec;
  Spec.Speculative = true;
  EXPECT_TRUE(detectLeaks(*CP, runMustHitAnalysis(*CP, Spec)).leakDetected());
  MustHitOptions NonSpec;
  NonSpec.Speculative = false;
  EXPECT_FALSE(
      detectLeaks(*CP, runMustHitAnalysis(*CP, NonSpec)).leakDetected());
}

TEST(CryptoWorkloadsTest, BranchFreeKernelsStayLeakFreeUnderSpeculation) {
  for (const CryptoWorkload &W : cryptoWorkloads()) {
    if (W.Name != "aes" && W.Name != "str2key" && W.Name != "seed" &&
        W.Name != "camellia" && W.Name != "salsa")
      continue;
    auto CP = compile(makeClientProgram(W, 4096));
    MustHitOptions Spec;
    Spec.Speculative = true;
    EXPECT_FALSE(
        detectLeaks(*CP, runMustHitAnalysis(*CP, Spec)).leakDetected())
        << W.Name;
  }
}

TEST(ClientGeneratorTest, OmitsBufferWhenZero) {
  const CryptoWorkload &W = cryptoWorkloads().front();
  std::string WithBuf = makeClientProgram(W, 1024);
  std::string NoBuf = makeClientProgram(W, 0);
  EXPECT_NE(WithBuf.find("inBuf"), std::string::npos);
  EXPECT_EQ(NoBuf.find("inBuf"), std::string::npos);
}
