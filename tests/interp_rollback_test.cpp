//===- interp_rollback_test.cpp - Rollback-path machine tests -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Direct coverage of the concrete machinery that speculation soundness
/// rests on: store suppression (the store buffer), register/PC checkpoint
/// restore, modulo-wrapped wild speculative indexing, and the
/// SpeculativeCpu-level squash of speculative stores on misprediction.
/// These paths were previously exercised only indirectly through the
/// property tests; the differential fuzzer leans on their exact semantics
/// (the abstract engine's transferSpeculative mirrors the squash), so they
/// are pinned here.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"
#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

TEST(InterpRollbackTest, SuppressedStoresNeverReachMemory) {
  auto CP = compile("int x; int main() { x = 5; return x; }");
  VarId X = CP->P->findVar("x");
  ASSERT_NE(X, InvalidVar);

  Machine M(*CP->P);
  M.setSuppressStores(true);
  M.run(100);
  ASSERT_TRUE(M.halted());
  // The store never commits, and there is no store-to-load forwarding in
  // the substrate: the load after it reads the unmodified memory.
  EXPECT_EQ(M.readMemory(X, 0), 0);
  EXPECT_EQ(M.returnValue(), 0);

  Machine M2(*CP->P);
  M2.run(100);
  EXPECT_EQ(M2.readMemory(X, 0), 5);
  EXPECT_EQ(M2.returnValue(), 5);
}

TEST(InterpRollbackTest, SuppressionIsReversible) {
  auto CP = compile("int x; int main() { x = 1; x = 2; return x; }");
  VarId X = CP->P->findVar("x");

  Machine M(*CP->P);
  // Suppress only the first store: step until one store committed... the
  // lowering emits: store x,1; store x,2; load x; ret. Step instruction by
  // instruction and flip suppression between the stores.
  M.setSuppressStores(true);
  bool FirstStoreDone = false;
  while (!M.halted() && !FirstStoreDone) {
    Machine::StepResult R = M.step();
    if (R.DidAccess && !R.Access.IsLoad)
      FirstStoreDone = true;
  }
  EXPECT_EQ(M.readMemory(X, 0), 0); // First store squashed.
  M.setSuppressStores(false);
  M.run(100);
  ASSERT_TRUE(M.halted());
  EXPECT_EQ(M.readMemory(X, 0), 2); // Second store committed.
  EXPECT_EQ(M.returnValue(), 2);
}

TEST(InterpRollbackTest, WildIndicesWrapModuloLength) {
  // Array loads/stores with out-of-range dynamic indices wrap modulo the
  // element count (total semantics), so wild speculative indexing cannot
  // fault. -1 wraps to the last element, Len + 2 to element 2.
  auto CP = compile("char a[64]; int idx;\n"
                    "int main() { return a[idx]; }");
  VarId A = CP->P->findVar("a");
  VarId Idx = CP->P->findVar("idx");

  auto RunWithIndex = [&](int64_t I) {
    Machine M(*CP->P);
    for (uint64_t E = 0; E != 64; ++E)
      M.setMemory(A, E, static_cast<int64_t>(E) + 100);
    M.setMemory(Idx, 0, I);
    M.run(1000);
    EXPECT_TRUE(M.halted());
    return M.returnValue();
  };

  EXPECT_EQ(RunWithIndex(0), 100);
  EXPECT_EQ(RunWithIndex(63), 163);
  EXPECT_EQ(RunWithIndex(64), 100);  // Wraps to 0.
  EXPECT_EQ(RunWithIndex(66), 102);  // Wraps to 2.
  EXPECT_EQ(RunWithIndex(-1), 163);  // Negative wraps to length - 1.
  EXPECT_EQ(RunWithIndex(-64), 100); // Exactly one length below zero.
  EXPECT_EQ(RunWithIndex(1000000007), RunWithIndex(1000000007 % 64));
}

TEST(InterpRollbackTest, CheckpointRestoresRegistersAndPc) {
  auto CP = compile("int main() { reg int a; reg int b; a = 1; b = 2;\n"
                    "  a = a + b; b = a + b; return a + b; }");
  Machine M(*CP->P);
  M.step();
  M.step();

  Machine::Checkpoint Ckpt = M.checkpoint();
  BlockId Block = M.currentBlock();
  uint32_t Inst = M.currentInst();
  std::vector<int64_t> RegsBefore;
  for (RegId R = 0; R != CP->P->NumRegs; ++R)
    RegsBefore.push_back(M.readReg(R));

  // Run ahead: registers and the PC move.
  M.run(1000);
  ASSERT_TRUE(M.halted());
  int64_t FinalRet = M.returnValue();

  M.restore(Ckpt);
  EXPECT_FALSE(M.halted());
  EXPECT_EQ(M.currentBlock(), Block);
  EXPECT_EQ(M.currentInst(), Inst);
  for (RegId R = 0; R != CP->P->NumRegs; ++R)
    EXPECT_EQ(M.readReg(R), RegsBefore[R]) << "r" << R;

  // Replaying from the checkpoint reproduces the same result.
  M.run(1000);
  EXPECT_TRUE(M.halted());
  EXPECT_EQ(M.returnValue(), FinalRet);
}

TEST(InterpRollbackTest, CheckpointSurvivesWrongPathExecution) {
  // Steer the machine down a wrong path with suppressed stores — the
  // simulator's misprediction protocol — and verify restore() erases every
  // register effect.
  auto CP = compile("int c; int x;\n"
                    "int main() { reg int t; t = 0;\n"
                    "  if (c > 0) { x = 7; t = t + 40; }\n"
                    "  return t + x; }");
  Machine M(*CP->P);
  // Execute up to (and including) the branch; c == 0 so the taken side is
  // architecturally wrong.
  while (!M.halted()) {
    const Instruction &I = M.currentInstruction();
    if (I.Op == Opcode::Br)
      break;
    M.step();
  }
  ASSERT_FALSE(M.halted());
  const Instruction Br = M.currentInstruction();

  Machine::Checkpoint Ckpt = M.checkpoint();
  // Wrong path: jump into the taken side with stores suppressed.
  M.setSuppressStores(true);
  M.jumpTo(Br.TrueTarget);
  for (int Steps = 0; Steps != 4 && !M.halted(); ++Steps)
    M.step();
  M.setSuppressStores(false);
  M.restore(Ckpt);

  // Architectural completion: x keeps its initial 0, t stays 0.
  M.run(1000);
  ASSERT_TRUE(M.halted());
  EXPECT_EQ(M.returnValue(), 0);
  EXPECT_EQ(M.readMemory(CP->P->findVar("x"), 0), 0);
}

TEST(InterpRollbackTest, SpeculativeCpuSquashesWrongPathStores) {
  auto CP = compile("int c; char a[64]; char b[64];\n"
                    "int main() {\n"
                    "  if (c > 0) { a[0] = 1; a[1] = 2; }\n"
                    "  return b[0]; }");
  VarId A = CP->P->findVar("a");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));

  // c == 0: fall-through is correct; predict taken to force the window.
  ScriptedPredictor P({true}, false);
  SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{}, true);
  CpuRunStats Stats = Cpu.run(10000);
  ASSERT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Mispredicts, 1u);
  EXPECT_GE(Stats.SpecAccesses, 2u); // Both wrong-path stores issued...

  // ...but never committed: memory and the cache are untouched by them.
  EXPECT_EQ(Cpu.machine().readMemory(A, 0), 0);
  EXPECT_EQ(Cpu.machine().readMemory(A, 1), 0);
  EXPECT_FALSE(Cpu.cache().contains(MM.blockOf(A, 0)));

  bool SawStore = false;
  for (const SpeculativeCpu::CommittedAccess &E : Cpu.speculativeTrace())
    SawStore |= !E.Access.IsLoad;
  EXPECT_TRUE(SawStore);
}

TEST(InterpRollbackTest, SpeculationWindowZeroDisablesWindow) {
  auto CP = compile("int c; char a[64];\n"
                    "int main() { if (c > 0) { reg int t; t = a[5]; }\n"
                    "  return 0; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  ScriptedPredictor P({true}, false);
  SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{}, true);
  // Zero-length window at the (only) branch: the branch resolves before
  // the front end can fetch past it, so the predictor is never consulted
  // (the script stays unconsumed), no misprediction is possible, and
  // nothing executes speculatively.
  for (NodeId N = 0; N != CP->G.size(); ++N)
    if (CP->G.inst(N).Op == Opcode::Br)
      Cpu.setWindowOverride(CP->G.blockOf(N), CP->G.instIndexOf(N), 0);
  CpuRunStats Stats = Cpu.run(10000);
  ASSERT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Mispredicts, 0u);
  EXPECT_EQ(P.decisionsUsed(), 0u);
  EXPECT_EQ(Stats.SpecAccesses, 0u);
  EXPECT_TRUE(Cpu.speculativeTrace().empty());
}
