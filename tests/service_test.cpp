//===- service_test.cpp - Unit tests for the specaid service layer --------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The service layer's soundness contract (docs/SERVICE.md): the request
/// digest must split every verdict-visible option (a cache that conflates
/// two configurations would serve *wrong verdicts*, the one failure mode a
/// verdict cache must never have), identical requests must hit, the LRU
/// bounds hold, backpressure is an explicit response, and the engine's
/// answers are bit-identical to single-shot runRequest calls.
///
//===----------------------------------------------------------------------===//

#include "service/ServiceEngine.h"

#include "fuzz/ProgramGen.h"
#include "service/Client.h"
#include "service/Json.h"
#include "service/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace specai;

namespace {

const char *testProgram() {
  return R"MC(
char table[256];
char left[64];
int mode;
secret reg char key;

int main() {
  reg int t;
  for (reg int i = 0; i < 256; i += 64)
    t = table[i];
  if (mode == 0) {
    t = t + left[0];
  }
  t = t + table[key & 255];
  return t;
}
)MC";
}

ServiceRequest baseRequest() {
  ServiceRequest Req;
  Req.Source = testProgram();
  Req.Cache = CacheConfig::fullyAssociative(6);
  return Req;
}

//===----------------------------------------------------------------------===//
// JSON layer
//===----------------------------------------------------------------------===//

TEST(ServiceJsonTest, FlatObjectsRoundTrip) {
  JsonWriter W;
  W.field("s", "line1\nline2\t\"quoted\" \\ done");
  W.field("b", true);
  W.field("i", int64_t(-42));
  W.field("u", uint64_t(9000000000000000000ULL));
  W.field("d", 1.5);
  W.hexField("h", 0xdeadbeefcafe1234ULL);
  std::string Text = W.finish();

  JsonObject O;
  std::string Error;
  ASSERT_TRUE(parseJsonObject(Text, O, Error)) << Error;
  EXPECT_EQ(O["s"].asString(""), "line1\nline2\t\"quoted\" \\ done");
  EXPECT_EQ(O["b"].asBool(false), true);
  EXPECT_EQ(O["i"].asInt(0), -42);
  EXPECT_EQ(O["u"].asInt(0), int64_t(9000000000000000000ULL));
  EXPECT_EQ(O["d"].asDouble(0), 1.5);
  uint64_t H = 0;
  ASSERT_TRUE(parseHexU64(O["h"].asString(""), H));
  EXPECT_EQ(H, 0xdeadbeefcafe1234ULL);
}

TEST(ServiceJsonTest, RejectsNestingDuplicatesAndGarbage) {
  JsonObject O;
  std::string Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": {\"b\": 1}}", O, Error));
  EXPECT_FALSE(parseJsonObject("{\"a\": [1, 2]}", O, Error));
  EXPECT_FALSE(parseJsonObject("{\"a\": 1, \"a\": 2}", O, Error));
  EXPECT_FALSE(parseJsonObject("{\"a\": 1} trailing", O, Error));
  EXPECT_FALSE(parseJsonObject("{\"a\": }", O, Error));
  EXPECT_FALSE(parseJsonObject("not json", O, Error));
  EXPECT_TRUE(parseJsonObject("{}", O, Error)) << Error;
  EXPECT_TRUE(O.empty());
}

TEST(ServiceJsonTest, TruncatedEscapesAreRejectedWithOffsets) {
  // A request line cut mid-escape (a client killed mid-write, a torn
  // buffer) must parse to an error, never to a silently mangled string.
  JsonObject O;
  std::string Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": \"x\\", O, Error));
  EXPECT_NE(Error.find("unterminated"), std::string::npos) << Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": \"x\\u00", O, Error));
  EXPECT_NE(Error.find("\\u"), std::string::npos) << Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": \"x\\u00g0\"}", O, Error));
  EXPECT_NE(Error.find("malformed"), std::string::npos) << Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": \"x\\q\"}", O, Error));
  EXPECT_NE(Error.find("unknown escape"), std::string::npos) << Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": \"never closed}", O, Error));
  EXPECT_NE(Error.find("unterminated"), std::string::npos) << Error;
}

TEST(ServiceJsonTest, BracesAndNewlinesInsideStringsAreData) {
  // Program sources carry braces and (escaped) newlines; the flat-object
  // nesting rejection must not fire on brace *characters* inside strings.
  JsonObject O;
  std::string Error;
  ASSERT_TRUE(parseJsonObject(
      "{\"src\": \"int main() { return 0; }\", \"t\": \"a\\nb\\n\"}", O,
      Error))
      << Error;
  EXPECT_EQ(O["src"].asString(""), "int main() { return 0; }");
  EXPECT_EQ(O["t"].asString(""), "a\nb\n");

  // The writer escapes every byte the parser needs escaped, so any source
  // text round-trips — including one that is itself a JSON object.
  JsonWriter W;
  W.field("src", "{\"op\": \"analyze\"}\nline2");
  ASSERT_TRUE(parseJsonObject(W.finish(), O, Error)) << Error;
  EXPECT_EQ(O["src"].asString(""), "{\"op\": \"analyze\"}\nline2");
}

TEST(ServiceJsonTest, DuplicateKeysAreRejectedWhateverTheValueKinds) {
  // Duplicate keys are a first-writer/last-writer ambiguity a cache-key
  // discipline cannot afford; the parser rejects them outright.
  JsonObject O;
  std::string Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": \"x\", \"a\": \"x\"}", O, Error));
  EXPECT_NE(Error.find("duplicate"), std::string::npos) << Error;
  EXPECT_FALSE(parseJsonObject("{\"a\": 1, \"b\": 2, \"a\": \"s\"}", O,
                               Error));
  EXPECT_FALSE(parseJsonObject("{\"a\": true, \"a\": false}", O, Error));
  // And through the request layer: a duplicated option must not pick
  // either value.
  ServiceRequest Req;
  EXPECT_FALSE(ServiceRequest::fromJson(
      "{\"op\": \"ping\", \"id\": 1, \"id\": 2}", Req, Error));
}

TEST(ServiceProtocolTest, RequestsRoundTripThroughJson) {
  ServiceRequest Req = baseRequest();
  Req.Id = 17;
  Req.Priority = -3;
  Req.Mode = LoweringMode::Summarize;
  Req.Strategy = MergeStrategy::MergeAtExit;
  Req.Bounding = BoundingMode::Fixed;
  Req.Cache = CacheConfig::setAssociative(16, 2);
  Req.Cache.Policy = ReplacementPolicy::Fifo;
  Req.Speculative = false;
  Req.UseShadow = false;
  Req.DepthMiss = 123;
  Req.DepthHit = 7;
  Req.Refine = true;
  Req.DetectLeaks = false;

  Req.TimeoutMs = 1500;
  Req.MaxSteps = 2000000;

  ServiceRequest Back;
  std::string Error;
  ASSERT_TRUE(ServiceRequest::fromJson(Req.toJson(), Back, Error)) << Error;
  EXPECT_EQ(Back.Id, Req.Id);
  EXPECT_EQ(Back.Priority, Req.Priority);
  EXPECT_EQ(Back.Source, Req.Source);
  EXPECT_EQ(Back.optionKey(), Req.optionKey());
  EXPECT_EQ(Back.TimeoutMs, Req.TimeoutMs);
  EXPECT_EQ(Back.MaxSteps, Req.MaxSteps);

  ServiceResponse Timeout;
  Timeout.Status = ServiceStatus::Timeout;
  Timeout.Id = 3;
  Timeout.Error = "deadline exceeded";
  ServiceResponse BackR;
  ASSERT_TRUE(ServiceResponse::fromJson(Timeout.toJson(), BackR, Error))
      << Error;
  EXPECT_EQ(BackR.Status, ServiceStatus::Timeout);
  EXPECT_EQ(BackR.Error, "deadline exceeded");
}

TEST(ServiceProtocolTest, MalformedRequestsAreRejectedWithReasons) {
  ServiceRequest Out;
  std::string Error;
  // Unknown keys must be rejected: a typo'd option silently defaulting
  // would make two *different* requests share a cache key.
  EXPECT_FALSE(ServiceRequest::fromJson(
      "{\"op\": \"analyze\", \"source\": \"int main(){return 0;}\", "
      "\"strtegy\": \"no-merge\"}",
      Out, Error));
  EXPECT_NE(Error.find("strtegy"), std::string::npos) << Error;

  EXPECT_FALSE(ServiceRequest::fromJson("{\"op\": \"analyze\"}", Out, Error))
      << "analyze without source must fail";
  EXPECT_FALSE(ServiceRequest::fromJson(
      "{\"op\": \"frob\", \"source\": \"x\"}", Out, Error));
  EXPECT_FALSE(ServiceRequest::fromJson(
      "{\"op\": \"ping\", \"source\": \"int main(){return 0;}\"}", Out,
      Error))
      << "control ops must not smuggle analysis fields";
  EXPECT_FALSE(ServiceRequest::fromJson(
      "{\"op\": \"analyze\", \"source\": \"x\", \"lines\": 0}", Out, Error))
      << "invalid cache geometry must be rejected at parse time";

  EXPECT_TRUE(ServiceRequest::fromJson("{\"op\": \"ping\", \"id\": 3}", Out,
                                       Error))
      << Error;
  EXPECT_EQ(Out.Op, ServiceOp::Ping);
  EXPECT_EQ(Out.Id, 3u);
}

TEST(ServiceProtocolTest, ResponsesRoundTripThroughJson) {
  BatchRow Row;
  Row.AccessNodes = 10;
  Row.MissCount = 7;
  Row.SpMissCount = 6;
  Row.BranchCount = 2;
  Row.Iterations = 29;
  Row.RefinementRounds = 2;
  Row.Converged = true;
  Row.LeaksChecked = true;
  Row.LeakCount = 2;
  Row.ProvenLeakFree = 1;
  Row.LeakSites = {"site one", "site two"};
  Row.Seconds = 0.25;

  ServiceResponse R = ServiceResponse::fromRow(Row);
  R.Id = 5;
  R.RequestDigest = 0x1234;
  ServiceResponse Back;
  std::string Error;
  ASSERT_TRUE(ServiceResponse::fromJson(R.toJson(), Back, Error)) << Error;
  EXPECT_TRUE(Back.sameVerdict(R));
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.RequestDigest, R.RequestDigest);
  EXPECT_EQ(Back.LeakSites, R.LeakSites);

  ServiceResponse Err;
  Err.Status = ServiceStatus::Overloaded;
  Err.Id = 9;
  Err.Error = "queue full";
  ASSERT_TRUE(ServiceResponse::fromJson(Err.toJson(), Back, Error)) << Error;
  EXPECT_EQ(Back.Status, ServiceStatus::Overloaded);
  EXPECT_EQ(Back.Error, "queue full");
}

//===----------------------------------------------------------------------===//
// Digest soundness: every verdict-visible option must split the key
//===----------------------------------------------------------------------===//

TEST(ServiceProtocolTest, RepairRequestsAndResponsesRoundTrip) {
  ServiceRequest Req = baseRequest();
  Req.Op = ServiceOp::Repair;
  Req.Id = 9;
  ServiceRequest Back;
  std::string Error;
  ASSERT_TRUE(ServiceRequest::fromJson(Req.toJson(), Back, Error)) << Error;
  EXPECT_EQ(Back.Op, ServiceOp::Repair);
  EXPECT_EQ(Back.Source, Req.Source);
  // The repair verb gets its own cache-key space; everything else about
  // the key is shared with analyze.
  ServiceRequest Analyze = baseRequest();
  EXPECT_NE(Req.optionKey(), Analyze.optionKey());
  EXPECT_NE(Req.optionKey().find(";op=repair"), std::string::npos);
  EXPECT_EQ(Analyze.optionKey().find(";op=repair"), std::string::npos);

  ServiceResponse R;
  R.Status = ServiceStatus::Ok;
  R.Id = 9;
  R.RepairChecked = true;
  R.Repaired = true;
  R.LeaksBefore = 2;
  R.LeaksAfter = 0;
  R.WcetBefore = 700;
  R.WcetAfter = 650;
  R.Mitigations = {"hoist 'mode' (cost 0)", "fence at bb2 (cost 12)"};
  R.PatchedIr = "program main {\n}\n";
  R.VerdictDigest = repairVerdictDigest(R);
  ServiceResponse BackR;
  ASSERT_TRUE(ServiceResponse::fromJson(R.toJson(), BackR, Error)) << Error;
  EXPECT_TRUE(BackR.RepairChecked);
  EXPECT_TRUE(BackR.Repaired);
  EXPECT_EQ(BackR.LeaksBefore, 2u);
  EXPECT_EQ(BackR.LeaksAfter, 0u);
  EXPECT_EQ(BackR.WcetBefore, 700u);
  EXPECT_EQ(BackR.WcetAfter, 650u);
  EXPECT_EQ(BackR.Mitigations, R.Mitigations);
  EXPECT_EQ(BackR.PatchedIr, R.PatchedIr);
  EXPECT_TRUE(BackR.sameVerdict(R));

  // A non-repair response must not gain a single new wire key: analyze
  // responses are byte-compatible with the pre-repair protocol.
  ServiceResponse Plain;
  Plain.Status = ServiceStatus::Ok;
  EXPECT_EQ(Plain.toJson().find("repair"), std::string::npos);
  EXPECT_EQ(Plain.toJson().find("mitigation"), std::string::npos);
  EXPECT_EQ(Plain.toJson().find("patched"), std::string::npos);
}

TEST(ServiceDigestTest, EveryVerdictVisibleOptionSplitsTheRequestDigest) {
  const uint64_t PD = 0xabcdef0123456789ULL;
  ServiceRequest Base = baseRequest();

  std::vector<ServiceRequest> Variants;
  auto Vary = [&](auto Mutate) {
    ServiceRequest R = Base;
    Mutate(R);
    Variants.push_back(std::move(R));
  };
  Vary([](ServiceRequest &R) { R.Entry = "helper"; });
  Vary([](ServiceRequest &R) { R.Mode = LoweringMode::Summarize; });
  Vary([](ServiceRequest &R) { R.Cache = CacheConfig::fullyAssociative(12); });
  Vary([](ServiceRequest &R) { R.Cache = CacheConfig::setAssociative(6, 2); });
  Vary([](ServiceRequest &R) { R.Cache.Policy = ReplacementPolicy::Fifo; });
  Vary([](ServiceRequest &R) { R.Cache.Policy = ReplacementPolicy::Plru; });
  Vary([](ServiceRequest &R) { R.Speculative = false; });
  Vary([](ServiceRequest &R) { R.UseShadow = false; });
  Vary([](ServiceRequest &R) { R.Strategy = MergeStrategy::NoMerge; });
  Vary([](ServiceRequest &R) { R.Strategy = MergeStrategy::MergeAtExit; });
  Vary([](ServiceRequest &R) { R.Strategy = MergeStrategy::MergeAtRollback; });
  Vary([](ServiceRequest &R) { R.DepthMiss = 100; });
  Vary([](ServiceRequest &R) { R.DepthHit = 10; });
  Vary([](ServiceRequest &R) { R.Bounding = BoundingMode::Fixed; });
  Vary([](ServiceRequest &R) { R.Refine = true; });
  Vary([](ServiceRequest &R) { R.DetectLeaks = false; });

  std::set<uint64_t> Digests{requestDigest(PD, Base)};
  for (const ServiceRequest &V : Variants) {
    uint64_t D = requestDigest(PD, V);
    EXPECT_TRUE(Digests.insert(D).second)
        << "option change did not split the digest: " << V.optionKey();
  }
  // And the same request twice is the same digest.
  EXPECT_EQ(requestDigest(PD, Base), requestDigest(PD, baseRequest()));
  // A different program splits everything.
  EXPECT_NE(requestDigest(PD, Base), requestDigest(PD + 1, Base));
}

TEST(ServiceDigestTest, QueueingMetadataDoesNotSplitTheDigest) {
  const uint64_t PD = 42;
  ServiceRequest A = baseRequest();
  ServiceRequest B = baseRequest();
  B.Id = 999;
  B.Priority = 7;
  // Budgets are queueing metadata too: they bound *whether* an answer
  // arrives, never *what* it is (a budget-tripped run is never cached),
  // so a budgeted and an unbudgeted request must share a cache entry.
  B.TimeoutMs = 5000;
  B.MaxSteps = 1000000;
  EXPECT_EQ(requestDigest(PD, A), requestDigest(PD, B));
  EXPECT_EQ(requestKeyString(PD, A), requestKeyString(PD, B));
}

TEST(ServiceDigestTest, VerdictDigestIsLabelAndTimingIndependent) {
  BatchRow A;
  A.Label = "service";
  A.MissCount = 3;
  A.Seconds = 0.5;
  BatchRow B = A;
  B.Label = "cli";
  B.Seconds = 99;
  EXPECT_EQ(verdictDigest(A), verdictDigest(B));

  B.MissCount = 4;
  EXPECT_NE(verdictDigest(A), verdictDigest(B));
  B = A;
  B.LeakSites = {"leak"};
  EXPECT_NE(verdictDigest(A), verdictDigest(B));
}

//===----------------------------------------------------------------------===//
// ExecBudget: the cooperative cancellation token the engines poll
//===----------------------------------------------------------------------===//

TEST(ExecBudgetTest, StepCapIsExactAndSticky) {
  ExecBudget B(/*TimeoutMs=*/0, /*MaxSteps=*/10);
  for (int I = 0; I != 10; ++I)
    EXPECT_FALSE(B.chargeStep()) << "step " << I << " is within the cap";
  EXPECT_TRUE(B.chargeStep()) << "step 11 must trip the cap";
  EXPECT_EQ(B.trip(), BudgetTrip::StepCap);
  EXPECT_TRUE(B.chargeStep()) << "exhaustion is sticky";
  EXPECT_TRUE(B.exhausted());
}

TEST(ExecBudgetTest, ZeroMeansUnbounded) {
  ExecBudget B(0, 0);
  for (int I = 0; I != 1000; ++I)
    EXPECT_FALSE(B.chargeStep());
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.trip(), BudgetTrip::None);
}

TEST(ExecBudgetTest, DeadlineTripsOnTheAmortizedPoll) {
  ExecBudget B(/*TimeoutMs=*/1, /*MaxSteps=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // chargeStep only polls the clock every 64th step; within 64 steps at
  // least one poll happens.
  bool Tripped = false;
  for (int I = 0; I != 64 && !Tripped; ++I)
    Tripped = B.chargeStep();
  EXPECT_TRUE(Tripped);
  EXPECT_EQ(B.trip(), BudgetTrip::Deadline);
}

TEST(ExecBudgetTest, ExternalCancelFlagWinsImmediately) {
  std::atomic<bool> Cancel{false};
  ExecBudget B(/*TimeoutMs=*/0, /*MaxSteps=*/0, &Cancel);
  EXPECT_FALSE(B.exhausted());
  Cancel = true;
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.trip(), BudgetTrip::Cancelled);
  Cancel = false; // Stickiness: clearing the flag cannot un-trip.
  EXPECT_TRUE(B.exhausted());
}

//===----------------------------------------------------------------------===//
// VerdictCache
//===----------------------------------------------------------------------===//

ServiceResponse payload(uint64_t Tag) {
  ServiceResponse R;
  R.Status = ServiceStatus::Ok;
  R.MissCount = Tag;
  R.VerdictDigest = Tag;
  return R;
}

TEST(VerdictCacheTest, HitsMissesAndCapacityBound) {
  VerdictCache Cache(/*MaxEntries=*/4, /*Shards=*/1);
  ServiceResponse Out;

  EXPECT_FALSE(Cache.lookup(1, "k1", Out));
  Cache.insert(1, "k1", payload(1));
  ASSERT_TRUE(Cache.lookup(1, "k1", Out));
  EXPECT_EQ(Out.MissCount, 1u);

  for (uint64_t D = 2; D <= 5; ++D)
    Cache.insert(D, "k" + std::to_string(D), payload(D));
  VerdictCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 4u) << "capacity must bound the entry count";
  EXPECT_EQ(S.Evictions, 1u);

  // Digest 1 predates the D=2..5 inserts, so it was the LRU victim; the
  // four newest entries remain.
  EXPECT_FALSE(Cache.lookup(1, "k1", Out));
  for (uint64_t D = 2; D <= 5; ++D)
    EXPECT_TRUE(Cache.lookup(D, "k" + std::to_string(D), Out)) << D;
}

TEST(VerdictCacheTest, LruEvictsTheLeastRecentlyUsedEntry) {
  VerdictCache Cache(3, 1);
  ServiceResponse Out;
  Cache.insert(1, "k1", payload(1));
  Cache.insert(2, "k2", payload(2));
  Cache.insert(3, "k3", payload(3));
  // Touch 1 and 3; 2 becomes the LRU victim.
  EXPECT_TRUE(Cache.lookup(1, "k1", Out));
  EXPECT_TRUE(Cache.lookup(3, "k3", Out));
  Cache.insert(4, "k4", payload(4));
  EXPECT_FALSE(Cache.lookup(2, "k2", Out));
  EXPECT_TRUE(Cache.lookup(1, "k1", Out));
  EXPECT_TRUE(Cache.lookup(3, "k3", Out));
  EXPECT_TRUE(Cache.lookup(4, "k4", Out));
}

TEST(VerdictCacheTest, DigestCollisionsDegradeToMissesNeverWrongVerdicts) {
  VerdictCache Cache(8, 1);
  ServiceResponse Out;
  Cache.insert(7, "request A", payload(1));
  // Same digest, different canonical key: must miss, and must not
  // overwrite A's verdict.
  EXPECT_FALSE(Cache.lookup(7, "request B", Out));
  Cache.insert(7, "request B", payload(2));
  ASSERT_TRUE(Cache.lookup(7, "request A", Out));
  EXPECT_EQ(Out.MissCount, 1u) << "collision must not clobber the entry";
  EXPECT_FALSE(Cache.lookup(7, "request B", Out));
}

TEST(VerdictCacheTest, SpilledEntriesComeBackFromDisk) {
  std::string Dir = ::testing::TempDir() + "specai_spill_test";
  std::remove(Dir.c_str());
  ASSERT_EQ(std::system(("mkdir -p '" + Dir + "'").c_str()), 0);

  VerdictCache Cache(/*MaxEntries=*/1, /*Shards=*/1, Dir);
  ServiceResponse Out;
  Cache.insert(1, "k1", payload(11));
  Cache.insert(2, "k2", payload(22)); // Evicts and spills digest 1.
  VerdictCacheStats S = Cache.stats();
  EXPECT_EQ(S.SpillWrites, 1u);

  ASSERT_TRUE(Cache.lookup(1, "k1", Out)) << "must fall through to disk";
  EXPECT_EQ(Out.MissCount, 11u);
  EXPECT_EQ(Cache.stats().SpillHits, 1u);

  // The wrong key must not read the spilled entry either.
  EXPECT_FALSE(Cache.lookup(2, "not-k2", Out));
}

//===----------------------------------------------------------------------===//
// Spill crash matrix: every way a spill file can rot must degrade to a
// counted miss + quarantine, never to a verdict.
//===----------------------------------------------------------------------===//

std::string freshSpillDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "specai_spill_" + Tag;
  EXPECT_EQ(std::system(("rm -rf '" + Dir + "' && mkdir -p '" + Dir + "'")
                            .c_str()),
            0);
  return Dir;
}

std::string spillFile(const std::string &Dir, uint64_t Digest) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "/%016llx.verdict",
                static_cast<unsigned long long>(Digest));
  return Dir + Name;
}

/// Evicts digest 1 (key "k1", payload 11) out of a 1-entry cache so it
/// lands on disk, then destroys the cache — the file is all that remains,
/// exactly the state a daemon restart (or kill -9) leaves behind.
void spillOne(const std::string &Dir, ServiceFault Fault = ServiceFault::None) {
  VerdictCache Cache(/*MaxEntries=*/1, /*Shards=*/1, Dir, Fault);
  Cache.insert(1, "k1", payload(11));
  Cache.insert(2, "k2", payload(22));
  ASSERT_EQ(Cache.stats().SpillWrites, 1u);
}

/// The shared postcondition of every corruption flavor: the lookup misses,
/// the corruption is counted, and the broken file is quarantined as
/// `.corrupt` so the next lookup is a clean (uncounted) miss.
void expectQuarantined(const std::string &Dir) {
  VerdictCache Cache(1, 1, Dir);
  ServiceResponse Out;
  EXPECT_FALSE(Cache.lookup(1, "k1", Out))
      << "a rotten spill entry must never surface as a verdict";
  EXPECT_EQ(Cache.stats().SpillCorrupt, 1u);
  std::ifstream Orig(spillFile(Dir, 1));
  EXPECT_FALSE(Orig.good()) << "the broken file must be moved aside";
  std::ifstream Quarantined(spillFile(Dir, 1) + ".corrupt");
  EXPECT_TRUE(Quarantined.good()) << "the evidence must be kept";
}

TEST(SpillCrashMatrixTest, TruncatedFilesAreQuarantinedMisses) {
  std::string Dir = freshSpillDir("truncate");
  spillOne(Dir);
  // A pre-rename torn write (or a filesystem that lost the tail): keep
  // only the first half of the bytes.
  std::ifstream In(spillFile(Dir, 1));
  std::stringstream Buf;
  Buf << In.rdbuf();
  In.close();
  std::string Bytes = Buf.str();
  std::ofstream(spillFile(Dir, 1), std::ios::trunc)
      << Bytes.substr(0, Bytes.size() / 2);
  expectQuarantined(Dir);
}

TEST(SpillCrashMatrixTest, GarbageFilesAreQuarantinedMisses) {
  std::string Dir = freshSpillDir("garbage");
  spillOne(Dir);
  std::ofstream(spillFile(Dir, 1), std::ios::trunc)
      << "complete garbage, not even close to the format\n";
  expectQuarantined(Dir);
}

TEST(SpillCrashMatrixTest, BitRotFailsTheChecksumAndQuarantines) {
  std::string Dir = freshSpillDir("bitrot");
  spillOne(Dir);
  // Flip one payload byte while keeping the three-line structure intact:
  // only the checksum can catch this one.
  std::ifstream In(spillFile(Dir, 1));
  std::stringstream Buf;
  Buf << In.rdbuf();
  In.close();
  std::string Bytes = Buf.str();
  size_t Mid = Bytes.find('\n') + 5; // Somewhere inside the payload line.
  ASSERT_LT(Mid, Bytes.size());
  Bytes[Mid] = Bytes[Mid] == 'x' ? 'y' : 'x';
  std::ofstream(spillFile(Dir, 1), std::ios::trunc) << Bytes;
  expectQuarantined(Dir);
}

TEST(SpillCrashMatrixTest, WrongKeyedFilesAreQuarantinedMisses) {
  std::string Dir = freshSpillDir("wrongkey");
  spillOne(Dir);
  // A checksum-valid file whose stored key is not the requested one: a
  // stale file from another run sitting at this digest's path. Safe to
  // quarantine — the cost is one recompute, never a wrong verdict.
  VerdictCache Cache(1, 1, Dir);
  ServiceResponse Out;
  EXPECT_FALSE(Cache.lookup(1, "some-other-request", Out));
  EXPECT_EQ(Cache.stats().SpillCorrupt, 1u);
}

TEST(SpillCrashMatrixTest, VanishedFilesArePlainMisses) {
  std::string Dir = freshSpillDir("vanish");
  spillOne(Dir);
  ASSERT_EQ(::unlink(spillFile(Dir, 1).c_str()), 0);
  VerdictCache Cache(1, 1, Dir);
  ServiceResponse Out;
  EXPECT_FALSE(Cache.lookup(1, "k1", Out));
  EXPECT_EQ(Cache.stats().SpillCorrupt, 0u)
      << "an absent file is an ordinary miss, not corruption";
}

TEST(SpillCrashMatrixTest, RestartOverTheSameSpillDirServesOldVerdicts) {
  std::string Dir = freshSpillDir("restart");
  spillOne(Dir);
  // Simulated restart: a brand-new cache over the surviving directory.
  VerdictCache Cache(8, 1, Dir);
  ServiceResponse Out;
  ASSERT_TRUE(Cache.lookup(1, "k1", Out));
  EXPECT_EQ(Out.MissCount, 11u) << "the spilled verdict must be intact";
  EXPECT_EQ(Cache.stats().SpillCorrupt, 0u);
}

TEST(SpillCrashMatrixTest, StartupSweepsOrphanedTempFiles) {
  std::string Dir = freshSpillDir("orphans");
  std::ofstream(Dir + "/0000000000000001.verdict.tmp") << "half a write";
  std::ofstream(Dir + "/keep.verdict") << "not a temp file";
  VerdictCache Cache(8, 1, Dir);
  EXPECT_FALSE(std::ifstream(Dir + "/0000000000000001.verdict.tmp").good())
      << "orphaned temp files must be swept at startup";
  EXPECT_TRUE(std::ifstream(Dir + "/keep.verdict").good());
}

TEST(SpillCrashMatrixTest, InjectedTornAndRottenWritesNeverComeBack) {
  // The SpillTruncate/SpillGarbage fault rungs corrupt every write while
  // keeping the pre-corruption trailer: the read path must reject all of
  // it. This is the end-to-end version of the hand-corrupted cases above.
  for (ServiceFault F :
       {ServiceFault::SpillTruncate, ServiceFault::SpillGarbage}) {
    std::string Dir = freshSpillDir(F == ServiceFault::SpillTruncate
                                        ? "fault_truncate"
                                        : "fault_garbage");
    spillOne(Dir, F);
    VerdictCache Cache(1, 1, Dir);
    ServiceResponse Out;
    EXPECT_FALSE(Cache.lookup(1, "k1", Out))
        << "faulted spill writes must never read back as verdicts";
    EXPECT_EQ(Cache.stats().SpillCorrupt, 1u);
  }
}

//===----------------------------------------------------------------------===//
// AnalysisPool
//===----------------------------------------------------------------------===//

TEST(AnalysisPoolTest, BoundedQueueRejectsInsteadOfGrowing) {
  AnalysisPool Pool(/*Jobs=*/1, /*QueueCapacity=*/2);

  // Block the single worker so enqueued jobs pile up deterministically.
  // No assertion may fire while the gate is closed: a fatal failure
  // would run the pool destructor against a worker stuck in Cv.wait and
  // hang the join forever. Observations are collected first, the gate
  // opens, and only then do the checks run.
  std::mutex Gate;
  std::condition_variable Cv;
  bool Release = false;
  std::atomic<bool> Claimed{false};
  std::atomic<int> Ran{0};
  bool GateQueued = Pool.tryEnqueue(0, [&] {
    Claimed = true;
    std::unique_lock<std::mutex> G(Gate);
    Cv.wait(G, [&] { return Release; });
    ++Ran;
  });
  // Wait until the worker has actually claimed the blocking job — only
  // then are both queue slots known to be free.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Claimed && std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bool SawClaim = Claimed.load();
  bool First = Pool.tryEnqueue(0, [&] { ++Ran; });
  bool Second = Pool.tryEnqueue(0, [&] { ++Ran; });
  bool Third = Pool.tryEnqueue(0, [&] { ++Ran; });
  uint64_t RejectedAtCapacity = Pool.rejectedCount();

  {
    std::lock_guard<std::mutex> G(Gate);
    Release = true;
  }
  Cv.notify_all();
  Pool.shutdown(); // Drains the queue before joining.

  ASSERT_TRUE(GateQueued);
  ASSERT_TRUE(SawClaim) << "worker never claimed the blocking job";
  EXPECT_TRUE(First);
  EXPECT_TRUE(Second);
  EXPECT_FALSE(Third) << "third queued job must be rejected at capacity 2";
  EXPECT_EQ(RejectedAtCapacity, 1u);
  EXPECT_EQ(Ran.load(), 3);
}

TEST(AnalysisPoolTest, HigherPriorityRunsFirstFifoWithin) {
  AnalysisPool Pool(1, 16);
  // Same discipline as above: collect results while the gate is closed,
  // open it, shut down, then assert — a fatal failure with the gate
  // closed would deadlock the worker join.
  std::mutex Gate;
  std::condition_variable Cv;
  bool Release = false;
  std::atomic<bool> Claimed{false};
  std::vector<int> Order;
  std::mutex OrderLock;

  bool GateQueued = Pool.tryEnqueue(0, [&] {
    Claimed = true;
    std::unique_lock<std::mutex> G(Gate);
    Cv.wait(G, [&] { return Release; });
  });
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Claimed && std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bool SawClaim = Claimed.load();
  auto Record = [&](int Tag) {
    return [&, Tag] {
      std::lock_guard<std::mutex> G(OrderLock);
      Order.push_back(Tag);
    };
  };
  // Queued while the worker is blocked: low, high, high, low.
  bool Queued = Pool.tryEnqueue(0, Record(1));
  Queued = Pool.tryEnqueue(5, Record(2)) && Queued;
  Queued = Pool.tryEnqueue(5, Record(3)) && Queued;
  Queued = Pool.tryEnqueue(0, Record(4)) && Queued;
  {
    std::lock_guard<std::mutex> G(Gate);
    Release = true;
  }
  Cv.notify_all();
  Pool.shutdown();

  ASSERT_TRUE(GateQueued);
  ASSERT_TRUE(SawClaim) << "worker never claimed the blocking job";
  ASSERT_TRUE(Queued);
  EXPECT_EQ(Order, (std::vector<int>{2, 3, 1, 4}));
}

TEST(AnalysisPoolTest, ThrowingJobsAreContained) {
  AnalysisPool Pool(2, 8);
  std::atomic<int> After{0};
  ASSERT_TRUE(Pool.tryEnqueue(0, [] { throw std::runtime_error("job"); }));
  ASSERT_TRUE(Pool.tryEnqueue(0, [&] { ++After; }));
  Pool.shutdown();
  EXPECT_EQ(After.load(), 1) << "pool must survive a throwing job";
  EXPECT_EQ(Pool.faultedCount(), 1u);
}

//===----------------------------------------------------------------------===//
// ServiceEngine end to end
//===----------------------------------------------------------------------===//

ServiceEngineOptions smallEngine() {
  ServiceEngineOptions Opts;
  Opts.Jobs = 2;
  Opts.CacheEntries = 64;
  Opts.CacheShards = 2;
  Opts.QueueCapacity = 8;
  return Opts;
}

TEST(ServiceEngineTest, IdenticalRequestsHitAndMatchSingleShotRuns) {
  ServiceEngine Engine(smallEngine());
  ServiceRequest Req = baseRequest();
  Req.Id = 1;

  ServiceResponse First = Engine.handle(Req);
  ASSERT_EQ(First.Status, ServiceStatus::Ok) << First.Error;
  EXPECT_FALSE(First.Cached);

  Req.Id = 2;
  ServiceResponse Second = Engine.handle(Req);
  ASSERT_EQ(Second.Status, ServiceStatus::Ok);
  EXPECT_TRUE(Second.Cached) << "identical request must hit";
  EXPECT_EQ(Second.Id, 2u) << "id echoes the request, not the cache entry";
  EXPECT_TRUE(Second.sameVerdict(First));

  // Bit-identical to the library single-shot path.
  RunOutcome Out = runRequest(Req.toRunRequest());
  ASSERT_TRUE(Out.Ok);
  EXPECT_EQ(First.VerdictDigest, verdictDigest(Out.Row));
  EXPECT_EQ(First.RequestDigest, requestDigest(Out.ProgramDigest, Req));

  ServiceEngineStats S = Engine.stats();
  EXPECT_EQ(S.Requests, 2u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.AnalysesRun, 1u);
}

TEST(ServiceEngineTest, DifferentOptionsNeverShareAVerdict) {
  ServiceEngine Engine(smallEngine());
  ServiceRequest Spec = baseRequest();
  ServiceRequest NoSpec = baseRequest();
  NoSpec.Speculative = false;

  ServiceResponse A = Engine.handle(Spec);
  ServiceResponse B = Engine.handle(NoSpec);
  ASSERT_EQ(A.Status, ServiceStatus::Ok);
  ASSERT_EQ(B.Status, ServiceStatus::Ok);
  EXPECT_FALSE(B.Cached) << "different options must not hit";
  EXPECT_NE(A.RequestDigest, B.RequestDigest);
  // This program's speculative-only misses differ, so the verdicts do too.
  EXPECT_NE(A.VerdictDigest, B.VerdictDigest);
}

TEST(ServiceEngineTest, CompileErrorsAreMemoizedResponsesNotCrashes) {
  ServiceEngine Engine(smallEngine());
  ServiceRequest Req = baseRequest();
  Req.Source = "int main() { return undeclared; }";

  ServiceResponse First = Engine.handle(Req);
  EXPECT_EQ(First.Status, ServiceStatus::Error);
  EXPECT_NE(First.Error.find("undeclared"), std::string::npos) << First.Error;

  ServiceResponse Second = Engine.handle(Req);
  EXPECT_EQ(Second.Status, ServiceStatus::Error);
  EXPECT_TRUE(Second.Cached) << "compile errors memoize too";
  ServiceEngineStats S = Engine.stats();
  EXPECT_EQ(S.AnalysesRun, 1u) << "the broken source must compile only once";
  EXPECT_EQ(S.CompileErrors, 1u);

  // And the engine still serves good requests afterwards.
  ServiceResponse Good = Engine.handle(baseRequest());
  EXPECT_EQ(Good.Status, ServiceStatus::Ok) << Good.Error;
}

TEST(ServiceEngineTest, PingAndGarbageSurvival) {
  ServiceEngine Engine(smallEngine());
  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  Ping.Id = 77;
  ServiceResponse R = Engine.handle(Ping);
  EXPECT_EQ(R.Status, ServiceStatus::Ok);
  EXPECT_EQ(R.Id, 77u);

  // Lexically hostile sources become error responses, not crashes.
  for (const char *Bad : {"", "\x01\x02\x03", "int int int", "}{"}) {
    ServiceRequest Req = baseRequest();
    Req.Source = Bad;
    EXPECT_EQ(Engine.handle(Req).Status, ServiceStatus::Error);
  }
}

TEST(ServiceEngineTest, OverloadIsAnExplicitResponse) {
  // One worker and a one-deep queue, fed from many threads at once: at
  // least one request must be told `overloaded`, and every response must
  // still be either a correct verdict or that rejection.
  ServiceEngineOptions Opts = smallEngine();
  Opts.Jobs = 1;
  Opts.QueueCapacity = 1;
  ServiceEngine Engine(Opts);

  // Distinct programs so requests cannot coalesce or hit.
  std::vector<ServiceRequest> Requests;
  for (uint64_t I = 0; I != 8; ++I) {
    ServiceRequest Req = baseRequest();
    Req.Source = ProgramGen(1000 + I).generate().source();
    Req.Id = I;
    Requests.push_back(std::move(Req));
  }

  std::atomic<int> Ok{0}, Overloaded{0}, Other{0};
  std::vector<std::thread> Threads;
  for (const ServiceRequest &Req : Requests)
    Threads.emplace_back([&Engine, &Req, &Ok, &Overloaded, &Other] {
      ServiceResponse R = Engine.handle(Req);
      if (R.Status == ServiceStatus::Ok)
        ++Ok;
      else if (R.Status == ServiceStatus::Overloaded)
        ++Overloaded;
      else
        ++Other;
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Other.load(), 0);
  EXPECT_EQ(Ok.load() + Overloaded.load(), 8);
  EXPECT_GT(Overloaded.load(), 0)
      << "8 concurrent analyses against a 1-deep queue must overload";
  EXPECT_EQ(Engine.stats().Overloaded,
            static_cast<uint64_t>(Overloaded.load()));

  // Overload is transient: the same requests succeed once the herd is
  // gone.
  for (const ServiceRequest &Req : Requests)
    EXPECT_EQ(Engine.handle(Req).Status, ServiceStatus::Ok);
}

TEST(ServiceEngineTest, ConcurrentDuplicatesCoalesceOntoOneAnalysis) {
  ServiceEngineOptions Opts = smallEngine();
  Opts.Jobs = 1;
  Opts.QueueCapacity = 16;
  ServiceEngine Engine(Opts);

  ServiceRequest Req = baseRequest();
  std::vector<std::thread> Threads;
  std::atomic<int> Ok{0};
  for (int I = 0; I != 6; ++I)
    Threads.emplace_back([&] {
      if (Engine.handle(Req).Status == ServiceStatus::Ok)
        ++Ok;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Ok.load(), 6);
  ServiceEngineStats S = Engine.stats();
  EXPECT_EQ(S.AnalysesRun, 1u)
      << "identical concurrent requests must share one fixpoint";
  EXPECT_EQ(S.CacheHits + S.Coalesced, 5u);
}

/// Overrides the runAnalysis seam to throw, standing in for the real
/// library throws a daemon must survive (requireRow, a rethrown
/// parallelFor worker fault, bad_alloc).
class ThrowingEngine : public ServiceEngine {
public:
  using ServiceEngine::ServiceEngine;
  std::atomic<int> FaultsLeft{0};

protected:
  ServiceResponse runAnalysis(const ServiceRequest &Req, uint64_t SrcKey,
                              ExecBudget &Budget) override {
    if (FaultsLeft.fetch_sub(1) > 0)
      throw std::runtime_error("injected analysis fault");
    return ServiceEngine::runAnalysis(Req, SrcKey, Budget);
  }
};

TEST(ServiceEngineTest, ThrowingAnalysisReleasesEveryWaiterWithAnError) {
  // Regression: a pool job that threw used to skip both the InFlight
  // erasure and set_value, so the submitting thread — and every duplicate
  // coalesced onto the same flight — hung in Fut.get() forever.
  ThrowingEngine Engine(smallEngine());
  Engine.FaultsLeft = 1000; // Every analysis in the herd faults.
  ServiceRequest Req = baseRequest();

  std::vector<std::thread> Threads;
  std::atomic<int> Errors{0};
  for (int I = 0; I != 4; ++I)
    Threads.emplace_back([&] {
      ServiceResponse R = Engine.handle(Req);
      if (R.Status == ServiceStatus::Error &&
          R.Error.find("injected analysis fault") != std::string::npos)
        ++Errors;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Errors.load(), 4)
      << "every waiter on a faulting analysis must get an error response";

  // The flight was cleaned up: once the fault clears, the very same
  // request runs fresh instead of coalescing onto a dead future.
  Engine.FaultsLeft = 0;
  ServiceResponse R = Engine.handle(Req);
  EXPECT_EQ(R.Status, ServiceStatus::Ok) << R.Error;
}

//===----------------------------------------------------------------------===//
// Deadlines, budgets, and the fault matrix
//===----------------------------------------------------------------------===//

TEST(ServiceEngineTest, StepCapAnswersTimeoutAndNeverCaches) {
  ServiceEngine Engine(smallEngine());
  ServiceRequest Req = baseRequest();
  Req.MaxSteps = 1; // No real fixpoint finishes in one worklist pop.

  ServiceResponse R = Engine.handle(Req);
  ASSERT_EQ(R.Status, ServiceStatus::Timeout) << R.Error;
  EXPECT_NE(R.Error.find("step-cap"), std::string::npos) << R.Error;
  EXPECT_EQ(Engine.stats().Timeouts, 1u);

  // The partial run must not have been cached: the same request without
  // a budget runs the full fixpoint and reports a miss.
  Req.MaxSteps = 0;
  ServiceResponse Full = Engine.handle(Req);
  ASSERT_EQ(Full.Status, ServiceStatus::Ok) << Full.Error;
  EXPECT_FALSE(Full.Cached) << "a budget-tripped run must never be cached";

  // And the full run is still bit-identical to a single-shot run — the
  // aborted attempt left no trace in the verdict path.
  RunOutcome Out = runRequest(Req.toRunRequest());
  ASSERT_TRUE(Out.Ok);
  EXPECT_EQ(Full.VerdictDigest, verdictDigest(Out.Row));
}

TEST(ServiceEngineTest, StalledWorkerAnswersTimeoutWithinTwiceTheDeadline) {
  // WorkerStall parks every analysis well past the deadline. The
  // containment claim from docs/SERVICE.md: the budgeted waiter detaches
  // at its own deadline, so the answer arrives within 2x even though the
  // worker is still stalling.
  ServiceEngineOptions Opts = smallEngine();
  Opts.Fault = ServiceFault::WorkerStall;
  ServiceEngine Engine(Opts);

  ServiceRequest Req = baseRequest();
  Req.TimeoutMs = 60;
  auto Start = std::chrono::steady_clock::now();
  ServiceResponse R = Engine.handle(Req);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_EQ(R.Status, ServiceStatus::Timeout) << R.Error;
  EXPECT_LE(ElapsedMs, 2 * 60)
      << "a timed-out request must answer within twice its deadline";
  EXPECT_GE(Engine.stats().Timeouts, 1u);
}

TEST(ServiceEngineTest, TimeoutsDoNotPoisonConcurrentHealthyRequests) {
  // One request times out against the stalled worker while an unbudgeted
  // one rides out the stall: the timeout must not take the healthy
  // request (or the daemon) down with it.
  ServiceEngineOptions Opts = smallEngine();
  Opts.Fault = ServiceFault::WorkerStall;
  Opts.Jobs = 2;
  ServiceEngine Engine(Opts);

  ServiceRequest Budgeted = baseRequest();
  Budgeted.TimeoutMs = 60;
  ServiceRequest Patient = baseRequest();
  Patient.Source = ProgramGen(7).generate().source(); // Distinct flight.

  ServiceResponse BudgetedR, PatientR;
  std::thread A([&] { BudgetedR = Engine.handle(Budgeted); });
  std::thread B([&] { PatientR = Engine.handle(Patient); });
  A.join();
  B.join();
  EXPECT_EQ(BudgetedR.Status, ServiceStatus::Timeout) << BudgetedR.Error;
  EXPECT_EQ(PatientR.Status, ServiceStatus::Ok) << PatientR.Error;
}

TEST(ServiceEngineTest, CoalescedWaitersEachHonorTheirOwnDeadline) {
  // Two identical requests coalesce onto one stalled flight; the one with
  // the short deadline detaches on time, the patient one gets the verdict
  // once the stall ends.
  ServiceEngineOptions Opts = smallEngine();
  Opts.Fault = ServiceFault::WorkerStall;
  Opts.Jobs = 1;
  ServiceEngine Engine(Opts);

  ServiceRequest Short = baseRequest();
  Short.TimeoutMs = 30;
  ServiceRequest Patient = baseRequest(); // Same flight, no deadline.

  ServiceResponse ShortR, PatientR;
  std::thread A([&] { PatientR = Engine.handle(Patient); });
  // Give the patient request time to become the flight owner, so the
  // budgeted one coalesces instead of owning.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread B([&] { ShortR = Engine.handle(Short); });
  B.join();
  A.join();
  EXPECT_EQ(ShortR.Status, ServiceStatus::Timeout) << ShortR.Error;
  // The flight itself is unbudgeted: once the stall ends it completes,
  // and the patient waiter gets a real verdict.
  EXPECT_EQ(PatientR.Status, ServiceStatus::Ok) << PatientR.Error;
}

TEST(ServiceEngineTest, BeginShutdownCancelsAnalysesPromptly) {
  ServiceEngineOptions Opts = smallEngine();
  Opts.Fault = ServiceFault::WorkerStall; // Would stall 100ms if not cut.
  ServiceEngine Engine(Opts);
  Engine.beginShutdown();

  ServiceRequest Req = baseRequest();
  auto Start = std::chrono::steady_clock::now();
  ServiceResponse R = Engine.handle(Req);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_EQ(R.Status, ServiceStatus::Timeout) << R.Error;
  EXPECT_NE(R.Error.find("cancelled"), std::string::npos) << R.Error;
  EXPECT_LT(ElapsedMs, 5000)
      << "shutdown must cancel, not drain at full cost";
}

TEST(ServiceEngineTest, InjectedAnalysisThrowIsContained) {
  ServiceEngineOptions Opts = smallEngine();
  Opts.Fault = ServiceFault::AnalysisThrow;
  ServiceEngine Engine(Opts);

  ServiceResponse R = Engine.handle(baseRequest());
  EXPECT_EQ(R.Status, ServiceStatus::Error);
  EXPECT_NE(R.Error.find("analysis-throw"), std::string::npos) << R.Error;

  // The worker survived its own exception: the engine still answers.
  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  EXPECT_EQ(Engine.handle(Ping).Status, ServiceStatus::Ok);
  EXPECT_EQ(Engine.handle(baseRequest()).Status, ServiceStatus::Error)
      << "the fault is sticky, but every request still gets an answer";
}

TEST(ServiceEngineTest, SourceMemoIsBoundedWithLruEviction) {
  ServiceEngineOptions Opts = smallEngine();
  Opts.MemoEntries = 2;
  ServiceEngine Engine(Opts);

  for (uint64_t Seed = 0; Seed != 3; ++Seed) {
    ServiceRequest Req = baseRequest();
    Req.Source = ProgramGen(100 + Seed).generate().source();
    ASSERT_EQ(Engine.handle(Req).Status, ServiceStatus::Ok);
  }
  ServiceEngineStats S = Engine.stats();
  EXPECT_EQ(S.MemoEntries, 2u) << "the memo must stay at its bound";
  EXPECT_EQ(S.MemoEvictions, 1u);

  // The evicted source still answers correctly — it just recompiles.
  ServiceRequest Req = baseRequest();
  Req.Source = ProgramGen(100).generate().source();
  EXPECT_EQ(Engine.handle(Req).Status, ServiceStatus::Ok);
}

TEST(ServiceEngineTest, StatsJsonParsesAsAnOkResponse) {
  ServiceEngine Engine(smallEngine());
  Engine.handle(baseRequest());
  std::string Line = Engine.statsJson(123);
  ServiceResponse R;
  std::string Error;
  ASSERT_TRUE(ServiceResponse::fromJson(Line, R, Error)) << Error << "\n"
                                                         << Line;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);
  EXPECT_EQ(R.Id, 123u);
  JsonObject O;
  ASSERT_TRUE(parseJsonObject(Line, O, Error));
  EXPECT_EQ(O["requests"].asInt(0), 1);
  EXPECT_EQ(O["analyses_run"].asInt(0), 1);
  EXPECT_EQ(O["timeouts"].asInt(-1), 0);
  EXPECT_EQ(O["memo_entries"].asInt(-1), 1);
  EXPECT_EQ(O["memo_evictions"].asInt(-1), 0);
  EXPECT_EQ(O["cache_spill_corrupt"].asInt(-1), 0);
}

/// baseRequest() shrunk to a 4-line cache, where the test program's
/// secret-indexed `table[key & 255]` can no longer be proven timing-uniform
/// (at 6 lines every table line fits and the detector proves it clean).
ServiceRequest repairRequest() {
  ServiceRequest Req = baseRequest();
  Req.Op = ServiceOp::Repair;
  Req.Cache = CacheConfig::fullyAssociative(4);
  return Req;
}

TEST(ServiceEngineTest, RepairVerbSynthesizesCachesAndDigests) {
  ServiceEngine Engine(smallEngine());
  ServiceRequest Req = repairRequest();
  Req.Id = 1;

  ServiceResponse First = Engine.handle(Req);
  ASSERT_EQ(First.Status, ServiceStatus::Ok) << First.Error;
  EXPECT_FALSE(First.Cached);
  EXPECT_TRUE(First.RepairChecked);
  EXPECT_TRUE(First.Repaired);
  EXPECT_GT(First.LeaksBefore, 0u) << "the test program must start leaky";
  EXPECT_EQ(First.LeaksAfter, 0u);
  EXPECT_FALSE(First.Mitigations.empty());
  EXPECT_FALSE(First.PatchedIr.empty());
  EXPECT_EQ(First.VerdictDigest, repairVerdictDigest(First));

  Req.Id = 2;
  ServiceResponse Second = Engine.handle(Req);
  ASSERT_EQ(Second.Status, ServiceStatus::Ok);
  EXPECT_TRUE(Second.Cached) << "identical repair requests must hit";
  EXPECT_TRUE(Second.sameVerdict(First));

  // Bit-identical to the library single-shot path, like analyze.
  RepairRunOutcome Out = runRepairRequest(Req.toRunRequest());
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_EQ(First.LeaksBefore, Out.Result.LeaksBefore);
  EXPECT_EQ(First.WcetBefore, Out.Result.WcetBefore);
  EXPECT_EQ(First.WcetAfter, Out.Result.WcetAfter);
  EXPECT_EQ(First.PatchedIr, Out.Result.Patched.str());
  EXPECT_EQ(First.Mitigations.size(), Out.Result.Applied.size());
  EXPECT_EQ(First.RequestDigest, requestDigest(Out.ProgramDigest, Req));

  // An analyze request with the identical source and options occupies its
  // own cache line and its response carries none of the repair verdict.
  ServiceRequest AnalyzeReq = repairRequest();
  AnalyzeReq.Op = ServiceOp::Analyze;
  ServiceResponse Plain = Engine.handle(AnalyzeReq);
  ASSERT_EQ(Plain.Status, ServiceStatus::Ok) << Plain.Error;
  EXPECT_FALSE(Plain.Cached) << "repair must not poison the analyze key";
  EXPECT_FALSE(Plain.RepairChecked);
  EXPECT_NE(Plain.RequestDigest, First.RequestDigest);

  ServiceEngineStats S = Engine.stats();
  EXPECT_EQ(S.Requests, 3u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.AnalysesRun, 2u) << "one repair synthesis, one analyze";
}

TEST(ServiceEngineTest, RepairResponsesSurviveTheWireFormat) {
  // The repair verdict a client sees after JSON framing is the verdict the
  // engine computed — mitigations, patched IR, digest and all.
  ServiceEngine Engine(smallEngine());
  ServiceResponse R = Engine.handle(repairRequest());
  ASSERT_EQ(R.Status, ServiceStatus::Ok) << R.Error;
  ServiceResponse Back;
  std::string Error;
  ASSERT_TRUE(ServiceResponse::fromJson(R.toJson(), Back, Error)) << Error;
  EXPECT_TRUE(Back.sameVerdict(R));
  EXPECT_EQ(Back.PatchedIr, R.PatchedIr);
  EXPECT_EQ(Back.VerdictDigest, repairVerdictDigest(Back));
}

//===----------------------------------------------------------------------===//
// ServiceServer over a real socket
//===----------------------------------------------------------------------===//

std::string testSocketPath(const char *Tag) {
  return "/tmp/specaid_test_" + std::string(Tag) + "_" +
         std::to_string(static_cast<unsigned long>(::getpid())) + ".sock";
}

TEST(ServiceServerTest, ShutdownDoesNotWaitForIdleConnections) {
  ServiceEngine Engine(smallEngine());
  ServiceServer Server(Engine);
  std::string Error;
  const std::string Path = testSocketPath("idle");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  // A persistent connection that goes quiet, like an idle editor
  // integration. The ping guarantees the server has accepted it before
  // the shutdown request arrives.
  ServiceClient Idle;
  ASSERT_TRUE(Idle.connect(Path, Error)) << Error;
  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  ServiceResponse R;
  ASSERT_TRUE(Idle.call(Ping, R, Error)) << Error;

  ServiceClient Ctl;
  ASSERT_TRUE(Ctl.connect(Path, Error)) << Error;
  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ASSERT_TRUE(Ctl.call(Down, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);

  // Regression: wait() used to block until every client voluntarily
  // disconnected, because connection threads sat in read() on idle peers.
  std::atomic<bool> Returned{false};
  std::thread Waiter([&] {
    Server.wait();
    Returned = true;
  });
  for (int I = 0; I != 500 && !Returned.load(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(Returned.load())
      << "shutdown must not wait for idle connections to hang up";
  Idle.close(); // Unblocks the server so the test terminates even on fail.
  Waiter.join();
}

TEST(ServiceServerTest, ClientsThatVanishBeforeTheResponseDoNotKillIt) {
  // Regression: the response write to a client that already closed used to
  // raise SIGPIPE, whose default disposition would terminate this whole
  // process — one misbehaving client killing the shared daemon.
  ServiceEngine Engine(smallEngine());
  ServiceServer Server(Engine);
  std::string Error;
  const std::string Path = testSocketPath("vanish");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  const std::string Line = Ping.toJson() + "\n";
  for (int I = 0; I != 8; ++I) {
    // Fire the request and slam the connection without reading the reply:
    // the queued bytes still reach the server, whose write then hits a
    // fully closed peer.
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)),
              0);
    ASSERT_EQ(::write(Fd, Line.data(), Line.size()),
              static_cast<ssize_t>(Line.size()));
    ::close(Fd);
  }

  // The daemon is still alive and serving.
  ServiceClient C;
  ASSERT_TRUE(C.connect(Path, Error)) << Error;
  ServiceRequest Req;
  Req.Op = ServiceOp::Ping;
  Req.Id = 5;
  ServiceResponse R;
  ASSERT_TRUE(C.call(Req, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);

  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ASSERT_TRUE(C.call(Down, R, Error)) << Error;
  Server.wait();
}

TEST(ServiceServerTest, EndlessLinesAreCutOffNotBuffered) {
  // A peer streaming bytes with no newline must be answered and dropped
  // once the framing bound passes, instead of growing the heap forever.
  ServiceEngine Engine(smallEngine());
  ServerOptions SrvOpts;
  SrvOpts.MaxRequestBytes = 256;
  ServiceServer Server(Engine, SrvOpts);
  std::string Error;
  const std::string Path = testSocketPath("endless");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  std::string Endless(4096, 'x'); // 16x the bound, and no newline ever.
  ASSERT_EQ(::write(Fd, Endless.data(), Endless.size()),
            static_cast<ssize_t>(Endless.size()));

  // The server's answer: one error line, then EOF.
  std::string Answer;
  char Chunk[512];
  for (ssize_t N; (N = ::read(Fd, Chunk, sizeof(Chunk))) > 0;)
    Answer.append(Chunk, static_cast<size_t>(N));
  ::close(Fd);
  ServiceResponse R;
  ASSERT_FALSE(Answer.empty()) << "the peer deserves a reason";
  ASSERT_TRUE(ServiceResponse::fromJson(
      Answer.substr(0, Answer.find('\n')), R, Error))
      << Error << "\n" << Answer;
  EXPECT_EQ(R.Status, ServiceStatus::Error);
  EXPECT_NE(R.Error.find("exceeds"), std::string::npos) << R.Error;

  // The daemon is unharmed and still serves well-framed clients.
  ServiceClient C;
  ASSERT_TRUE(C.connect(Path, Error)) << Error;
  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  ASSERT_TRUE(C.call(Ping, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);
  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ASSERT_TRUE(C.call(Down, R, Error)) << Error;
  Server.wait();
}

TEST(ServiceServerTest, OversizedRequestFaultRejectsCompleteLinesToo) {
  // The oversized-request rung shrinks the bound to 128 bytes, so an
  // ordinary analyze request — delivered whole, newline and all — trips
  // the same rejection path as the streaming case above.
  ServiceEngine Engine(smallEngine());
  ServerOptions SrvOpts;
  SrvOpts.Fault = ServiceFault::OversizedRequest;
  ServiceServer Server(Engine, SrvOpts);
  std::string Error;
  const std::string Path = testSocketPath("oversized");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  ServiceClient C;
  ASSERT_TRUE(C.connect(Path, Error)) << Error;
  ServiceResponse R;
  ASSERT_TRUE(C.call(baseRequest(), R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Error);
  EXPECT_NE(R.Error.find("exceeds"), std::string::npos) << R.Error;

  // A request under the shrunken bound still works on a new connection
  // (the oversized one was closed).
  ServiceClient Small;
  ASSERT_TRUE(Small.connect(Path, Error)) << Error;
  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  ASSERT_TRUE(Small.call(Ping, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);
  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ASSERT_TRUE(Small.call(Down, R, Error)) << Error;
  Server.wait();
}

TEST(ServiceServerTest, OversizedRepairRequestsAnswerCleanlyAndMoveOn) {
  // A repair request ships the whole source and gets back mitigations plus
  // a patched program, so it is the verb most likely to brush the framing
  // bound. Over the bound it must be a clean error — not a wedged worker —
  // and the daemon must keep repairing for everyone else.
  ServiceEngine Engine(smallEngine());
  ServerOptions SrvOpts;
  SrvOpts.MaxRequestBytes = 2048;
  ServiceServer Server(Engine, SrvOpts);
  std::string Error;
  const std::string Path = testSocketPath("bigrepair");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  ServiceRequest Big = repairRequest();
  Big.Source = std::string("// ") + std::string(8192, 'x') + "\n" +
               testProgram();
  ServiceClient C;
  ASSERT_TRUE(C.connect(Path, Error)) << Error;
  ServiceResponse R;
  ASSERT_TRUE(C.call(Big, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Error);
  EXPECT_NE(R.Error.find("exceeds"), std::string::npos) << R.Error;

  // A right-sized repair request on a fresh connection still gets the full
  // verdict through the same daemon.
  ServiceClient Fresh;
  ASSERT_TRUE(Fresh.connect(Path, Error)) << Error;
  ASSERT_TRUE(Fresh.call(repairRequest(), R, Error)) << Error;
  ASSERT_EQ(R.Status, ServiceStatus::Ok) << R.Error;
  EXPECT_TRUE(R.RepairChecked);
  EXPECT_TRUE(R.Repaired);
  EXPECT_GT(R.LeaksBefore, 0u);
  EXPECT_FALSE(R.PatchedIr.empty());

  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ASSERT_TRUE(Fresh.call(Down, R, Error)) << Error;
  Server.wait();
}

TEST(ServiceServerTest, SlowClientFaultDribblesButStaysCorrect) {
  // The slow-client rung drips responses out a few bytes at a time. The
  // claim is containment: responses still arrive intact and shutdown
  // still completes — only that connection's latency suffers.
  ServiceEngine Engine(smallEngine());
  ServerOptions SrvOpts;
  SrvOpts.Fault = ServiceFault::SlowClient;
  ServiceServer Server(Engine, SrvOpts);
  std::string Error;
  const std::string Path = testSocketPath("slow");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  ServiceClient C;
  ASSERT_TRUE(C.connect(Path, Error)) << Error;
  ServiceRequest Ping;
  Ping.Op = ServiceOp::Ping;
  Ping.Id = 42;
  ServiceResponse R;
  ASSERT_TRUE(C.call(Ping, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);
  EXPECT_EQ(R.Id, 42u) << "a dribbled response must still parse whole";

  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ASSERT_TRUE(C.call(Down, R, Error)) << Error;
  EXPECT_EQ(R.Status, ServiceStatus::Ok);
  Server.wait();
}

TEST(ServiceServerTest, ShutdownRequestCancelsInFlightAnalyses) {
  // A stalled analysis is in flight when the shutdown request lands: the
  // server must cancel it through the engine's shutdown flag and still
  // drain promptly, answering the stranded waiter with `timeout`.
  ServiceEngineOptions Opts = smallEngine();
  Opts.Fault = ServiceFault::WorkerStall;
  ServiceEngine Engine(Opts);
  ServiceServer Server(Engine);
  std::string Error;
  const std::string Path = testSocketPath("cancel");
  ASSERT_TRUE(Server.start(Path, Error)) << Error;

  ServiceResponse Stalled;
  std::atomic<bool> CallOk{false};
  std::thread Waiter([&] {
    ServiceClient C;
    std::string E;
    if (C.connect(Path, E))
      CallOk = C.call(baseRequest(), Stalled, E);
  });
  // Let the analysis reach the stall, then shut down around it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ServiceClient Ctl;
  ASSERT_TRUE(Ctl.connect(Path, Error)) << Error;
  ServiceRequest Down;
  Down.Op = ServiceOp::Shutdown;
  ServiceResponse R;
  ASSERT_TRUE(Ctl.call(Down, R, Error)) << Error;
  Server.wait();
  Waiter.join();
  // The in-flight request was cancelled (if it had not already finished
  // its stall): either way its waiter got a definitive answer over the
  // half-shut connection, not a hang or a dropped response.
  ASSERT_TRUE(CallOk.load()) << "the stranded waiter never got an answer";
  EXPECT_TRUE(Stalled.Status == ServiceStatus::Timeout ||
              Stalled.Status == ServiceStatus::Ok)
      << Stalled.Error;
}

} // namespace
