//===- engine_test.cpp - Worklist and speculative engine tests ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"
#include "domain/IntervalDomain.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

//===----------------------------------------------------------------------===//
// Speculation planning (virtual control flow)
//===----------------------------------------------------------------------===//

TEST(SpecPlanTest, MemoryDependentBranchesBecomeSites) {
  auto CP = compile("int c; char a[64]; char b[64]; int main() { reg int t; "
                    "if (c) { t = a[0]; } else { t = b[0]; } return t; }");
  EXPECT_EQ(CP->Plan.siteCount(), 1u);
  EXPECT_EQ(CP->Plan.colorCount(), 2u);
  const SpecSite &S = CP->Plan.sites().front();
  EXPECT_EQ(S.CondLoads.size(), 1u);
  EXPECT_NE(S.Ipdom, InvalidNode);
}

TEST(SpecPlanTest, RegisterOnlyBranchesAreSkipped) {
  auto CP = compile("int main(reg int c) { reg int t; "
                    "if (c) { t = 1; } else { t = 2; } return t; }");
  EXPECT_EQ(CP->Plan.siteCount(), 0u);
}

TEST(SpecPlanTest, ColorsPointAtOppositeSides) {
  auto CP = compile("int c; char a[64]; char b[64]; int main() { reg int t; "
                    "if (c) { t = a[0]; } else { t = b[0]; } return t; }");
  const SpecPlan &Plan = CP->Plan;
  ASSERT_EQ(Plan.colorCount(), 2u);
  EXPECT_EQ(Plan.wrongEntry(0), Plan.correctEntry(1));
  EXPECT_EQ(Plan.wrongEntry(1), Plan.correctEntry(0));
}

TEST(SpecPlanTest, MemoryDependenceIsTransitive) {
  auto CP = compile("int c; int main() { reg int x; reg int y; "
                    "x = c; y = x + 1; if (y) { return 1; } return 0; }");
  EXPECT_EQ(CP->Plan.siteCount(), 1u);
}

TEST(SpecPlanTest, CondLoadsFollowTheSlice) {
  auto CP = compile("int c; int d; int main() { reg int x; "
                    "x = c + d; if (x > 3) { return 1; } return 0; }");
  ASSERT_EQ(CP->Plan.siteCount(), 1u);
  EXPECT_EQ(CP->Plan.sites().front().CondLoads.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Baseline vs speculative engine
//===----------------------------------------------------------------------===//

TEST(EngineTest, SpeculationDisabledMatchesBaseline) {
  auto CP = compile(fig2Source());
  MustHitOptions NonSpec;
  NonSpec.Speculative = false;
  MustHitReport Base = runMustHitAnalysis(*CP, NonSpec);

  // Depth 0 disables every window: the speculative engine must agree with
  // Algorithm 1 on every classification.
  MustHitOptions Zero;
  Zero.Speculative = true;
  Zero.DepthMiss = 0;
  Zero.DepthHit = 0;
  Zero.Bounding = BoundingMode::Fixed;
  MustHitReport Spec = runMustHitAnalysis(*CP, Zero);
  EXPECT_EQ(Base.MissCount, Spec.MissCount);
  EXPECT_EQ(Spec.SpMissCount, 0u);
  EXPECT_EQ(Base.MustHit, Spec.MustHit);
}

TEST(EngineTest, SpeculativeNeverClaimsMoreHitsThanBaseline) {
  for (const Workload &W : wcetWorkloads()) {
    auto CP = compile(W.Source);
    MustHitOptions NonSpec;
    NonSpec.Cache = CacheConfig::fullyAssociative(64);
    NonSpec.Speculative = false;
    MustHitReport Base = runMustHitAnalysis(*CP, NonSpec);
    MustHitOptions Spec = NonSpec;
    Spec.Speculative = true;
    MustHitReport SpecR = runMustHitAnalysis(*CP, Spec);
    for (NodeId N = 0; N != CP->G.size(); ++N) {
      if (SpecR.MustHit[N]) {
        EXPECT_TRUE(Base.MustHit[N]) << W.Name << " node " << N;
      }
    }
  }
}

TEST(EngineTest, DepthMonotonicityOfMissCounts) {
  auto CP = compile(wcetWorkloads()[1].Source); // susan
  uint64_t Prev = 0;
  for (uint32_t Depth : {0u, 4u, 16u, 64u, 256u}) {
    MustHitOptions Opts;
    Opts.Cache = CacheConfig::fullyAssociative(64);
    Opts.Speculative = true;
    Opts.DepthMiss = Depth;
    Opts.DepthHit = Depth;
    Opts.Bounding = BoundingMode::Fixed;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    EXPECT_GE(R.MissCount, Prev) << "depth " << Depth;
    Prev = R.MissCount;
  }
}

TEST(EngineTest, StrategiesAreOrderedByPrecision) {
  // no-merge refines just-in-time refines merge-at-rollback: the miss
  // counts must be ordered accordingly on every kernel.
  for (const Workload &W : wcetWorkloads()) {
    auto CP = compile(W.Source);
    auto MissWith = [&](MergeStrategy S) {
      MustHitOptions Opts;
      Opts.Cache = CacheConfig::fullyAssociative(64);
      Opts.Speculative = true;
      Opts.Strategy = S;
      return runMustHitAnalysis(*CP, Opts).MissCount;
    };
    uint64_t NM = MissWith(MergeStrategy::NoMerge);
    uint64_t JIT = MissWith(MergeStrategy::JustInTime);
    uint64_t RB = MissWith(MergeStrategy::MergeAtRollback);
    EXPECT_LE(NM, JIT) << W.Name;
    EXPECT_LE(JIT, RB) << W.Name;
  }
}

TEST(EngineTest, IterativeRefinementIsAtLeastAsPrecise) {
  for (const Workload &W : wcetWorkloads()) {
    auto CP = compile(W.Source);
    MustHitOptions Fixed;
    Fixed.Cache = CacheConfig::fullyAssociative(64);
    Fixed.Speculative = true;
    Fixed.Bounding = BoundingMode::Fixed;
    MustHitReport FixedR = runMustHitAnalysis(*CP, Fixed);

    MustHitOptions Refine = Fixed;
    Refine.IterativeDepthRefinement = true;
    MustHitReport RefineR = runMustHitAnalysis(*CP, Refine);
    EXPECT_LE(RefineR.MissCount, FixedR.MissCount) << W.Name;
  }
}

TEST(EngineTest, DynamicBoundingConvergesAndIsSane) {
  auto CP = compile(fig2Source());
  MustHitOptions Opts;
  Opts.Speculative = true;
  Opts.Bounding = BoundingMode::Dynamic;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  EXPECT_TRUE(R.Converged);
  EXPECT_GE(R.MissCount, 513u);
}

TEST(EngineTest, UnreachableCodeStaysBottom) {
  auto CP = compile("int x; int main() { return 1; x = 2; return x; }");
  MustHitOptions Opts;
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  bool SawUnreachable = false;
  for (NodeId N = 0; N != CP->G.size(); ++N)
    if (!R.Reachable[N])
      SawUnreachable = true;
  EXPECT_TRUE(SawUnreachable);
}

TEST(EngineTest, WideningStillSound) {
  // Widening accelerates loops; must-hit classification under widening
  // must be a subset of the non-widened one.
  auto CP = compile(wcetWorkloads()[0].Source); // adpcm: has a scan loop.
  MustHitOptions Plain;
  Plain.Cache = CacheConfig::fullyAssociative(64);
  Plain.Speculative = true;
  MustHitReport P1 = runMustHitAnalysis(*CP, Plain);
  MustHitOptions Widened = Plain;
  Widened.UseWidening = true;
  Widened.WideningDelay = 2;
  MustHitReport P2 = runMustHitAnalysis(*CP, Widened);
  EXPECT_LE(P2.Iterations, P1.Iterations);
  for (NodeId N = 0; N != CP->G.size(); ++N) {
    if (P2.MustHit[N]) {
      EXPECT_TRUE(P1.MustHit[N]) << "node " << N;
    }
  }
}

//===----------------------------------------------------------------------===//
// Interval domain through the same engines (domain genericity)
//===----------------------------------------------------------------------===//

TEST(IntervalEngineTest, BaselineFixpointBoundsAScalar) {
  auto CP = compile("int x; int main() { x = 3; return x; }");
  IntervalDomain D(CP->G);
  EngineOptions Opts;
  Opts.UseWidening = true;
  FixpointResult<IntervalDomain> R = runFixpoint(D, CP->G, Opts, &CP->LI);
  // At the return, x == 3.
  NodeId Ret = CP->G.exits().front();
  VarId X = CP->P->findVar("x");
  Interval I = R.In[Ret].scalar(X);
  EXPECT_EQ(I.Lo, 3);
  EXPECT_EQ(I.Hi, 3);
}

TEST(IntervalEngineTest, JoinWidensOverBranches) {
  auto CP = compile("int c; int x; int main() { if (c) { x = 1; } else "
                    "{ x = 10; } return x; }");
  IntervalDomain D(CP->G);
  FixpointResult<IntervalDomain> R = runFixpoint(D, CP->G);
  NodeId Ret = CP->G.exits().front();
  Interval I = R.In[Ret].scalar(CP->P->findVar("x"));
  EXPECT_EQ(I.Lo, 1);
  EXPECT_EQ(I.Hi, 10);
}

TEST(IntervalEngineTest, LoopTerminatesWithWidening) {
  auto CP = compile("int n; int main() { int i; i = 0; "
                    "while (i < n) { i = i + 1; } return i; }");
  IntervalDomain D(CP->G);
  EngineOptions Opts;
  Opts.UseWidening = true;
  Opts.WideningDelay = 2;
  Opts.MaxIterations = 100000;
  FixpointResult<IntervalDomain> R = runFixpoint(D, CP->G, Opts, &CP->LI);
  EXPECT_TRUE(R.Converged);
  NodeId Ret = CP->G.exits().front();
  Interval I = R.In[Ret].scalar(CP->P->findVar("main.i"));
  EXPECT_EQ(I.Lo, 0); // i never goes below its initialization.
}

TEST(IntervalEngineTest, SpeculativeEngineRunsOverIntervals) {
  // Domain genericity: Algorithms 2/3 run over the interval domain
  // unchanged (paper §1: "regardless of how the abstract state is
  // defined").
  auto CP = compile("int c; int x; int main() { if (c) { x = 1; } else "
                    "{ x = 2; } return x; }");
  IntervalDomain D(CP->G);
  SpecEngineOptions Opts;
  Opts.UseWidening = true;
  SpecResult<IntervalDomain> R =
      runSpeculativeFixpoint(D, CP->G, CP->Plan, Opts, &CP->LI);
  EXPECT_TRUE(R.Converged);
  NodeId Ret = CP->G.exits().front();
  EXPECT_FALSE(R.Normal[Ret].isBottom());
  Interval I = R.Normal[Ret].scalar(CP->P->findVar("x"));
  EXPECT_LE(I.Lo, 1);
  EXPECT_GE(I.Hi, 2);
}

TEST(IntervalTest, ArithmeticSaturates) {
  Interval Max{Interval::PosInf - 0, Interval::PosInf};
  Interval One = Interval::constant(1);
  Interval Sum = Max.add(One);
  EXPECT_EQ(Sum.Hi, Interval::PosInf);
  Interval Neg = Interval::constant(-1);
  Interval Low{Interval::NegInf, 0};
  EXPECT_EQ(Low.add(Neg).Lo, Interval::NegInf);
}

TEST(IntervalTest, MulConsidersAllCorners) {
  Interval A{-2, 3};
  Interval B{-5, 4};
  Interval M = A.mul(B);
  EXPECT_EQ(M.Lo, -15); // 3 * -5.
  EXPECT_EQ(M.Hi, 12);  // 3 * 4.
}

TEST(IntervalTest, WidenJumpsUnstableBounds) {
  Interval Prev{0, 3};
  Interval Cur{0, 5};
  Interval W = Cur.widen(Prev);
  EXPECT_EQ(W.Lo, 0);
  EXPECT_EQ(W.Hi, Interval::PosInf);
}
