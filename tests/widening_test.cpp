//===- widening_test.cpp - Widening-operator laws --------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Property suite for the widening operators the Summarize lowering leans
/// on (rolled loops converge by widening at LoopInfo headers; DESIGN.md
/// §4): CacheAbsState::widenFrom under all three replacement policies and
/// the interval widening of domain/IntervalDomain. Randomized sweeps pin
/// the lattice laws —
///
///   * upper bound: Prev ⊑ Prev∇Cur and Cur ⊑ Prev∇Cur whenever
///     Prev ⊑ Cur (the engine always widens the joined iterate);
///   * exactness: the cache widen only *evicts* MUST entries whose age
///     grew since Prev — survivors keep their exact age, MAY is untouched;
///   * monotonicity: B ⊑ A implies Prev∇B ⊑ Prev∇A;
///   * termination: a join-then-widen chain with a fixed loop body
///     stabilizes within the per-set MUST age cap (associativity + 1)
///     iterations, and the chain is ascending the whole way.
///
//===----------------------------------------------------------------------===//

#include "domain/CacheState.h"
#include "domain/IntervalDomain.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// A fixture program with N one-line char variables named v0..vN-1 (same
/// shape domain_test.cpp uses).
struct Blocks {
  Program P;
  std::unique_ptr<MemoryModel> MM;

  Blocks(unsigned NumVars, CacheConfig Config) {
    for (unsigned I = 0; I != NumVars; ++I) {
      MemVar V;
      V.Name = "v" + std::to_string(I);
      V.ElemSize = 1;
      V.NumElements = 64;
      P.Vars.push_back(V);
    }
    BasicBlock B;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    B.Insts.push_back(Ret);
    P.Blocks.push_back(B);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  BlockAddr block(unsigned Var) const { return MM->blockOf(Var, 0); }
};

constexpr unsigned NumVars = 10;
constexpr unsigned Assoc = 4;

/// A random abstract state: a random-length random access sequence from
/// the empty state, shadow refinement on so MAY entries participate.
CacheAbsState randomState(Rng &R, const Blocks &F) {
  CacheAbsState S = CacheAbsState::empty();
  unsigned Len = 1 + R.nextBelow(12);
  for (unsigned I = 0; I != Len; ++I)
    S.accessBlock(F.block(R.nextBelow(NumVars)), *F.MM, /*UseShadow=*/true);
  return S;
}

class CacheWideningTest
    : public ::testing::TestWithParam<ReplacementPolicy> {
protected:
  Blocks F{NumVars, CacheConfig::fullyAssociative(Assoc).withPolicy(
                        GetParam())};
};

} // namespace

TEST_P(CacheWideningTest, WidenUpperBoundsJoin) {
  Rng R(7);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    CacheAbsState Prev = randomState(R, F);
    CacheAbsState Cur = Prev;
    Cur.joinInto(randomState(R, F), /*UseShadow=*/true);
    ASSERT_TRUE(Prev.leq(Cur, Assoc)); // join moved up; precondition
    CacheAbsState W = Cur;
    W.widenFrom(Prev, Assoc);
    EXPECT_TRUE(Cur.leq(W, Assoc))
        << "widen is not an upper bound of the joined iterate";
    EXPECT_TRUE(Prev.leq(W, Assoc))
        << "widen is not an upper bound of the previous iterate";
  }
}

TEST_P(CacheWideningTest, WidenOnlyEvictsGrownMustEntries) {
  Rng R(11);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    CacheAbsState Prev = randomState(R, F);
    CacheAbsState Cur = Prev;
    Cur.joinInto(randomState(R, F), /*UseShadow=*/true);
    CacheAbsState W = Cur;
    W.widenFrom(Prev, Assoc);

    // Survivors keep their exact joined age; casualties had grown.
    std::vector<AgedBlock> CurMust = Cur.mustEntries();
    std::vector<AgedBlock> WMust = W.mustEntries();
    for (const AgedBlock &E : WMust) {
      uint32_t JoinedAge = Cur.mustAge(E.Block, Assoc);
      EXPECT_EQ(E.Age, JoinedAge) << "widen mutated a surviving age";
    }
    for (const AgedBlock &E : CurMust) {
      if (W.mustAge(E.Block, Assoc) <= Assoc)
        continue; // survived
      uint32_t PrevAge = Prev.mustAge(E.Block, Assoc);
      EXPECT_TRUE(PrevAge <= Assoc && E.Age > PrevAge)
          << "widen evicted an entry whose age had not grown";
    }
    // MAY is untouched: its ladder is finite and needs no acceleration.
    EXPECT_EQ(W.mayEntries(), Cur.mayEntries());
  }
}

TEST_P(CacheWideningTest, WidenIsMonotone) {
  Rng R(13);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    CacheAbsState Prev = randomState(R, F);
    CacheAbsState B = Prev;
    B.joinInto(randomState(R, F), /*UseShadow=*/true);
    CacheAbsState A = B;
    A.joinInto(randomState(R, F), /*UseShadow=*/true);
    ASSERT_TRUE(B.leq(A, Assoc)); // by join's upper-bound law

    CacheAbsState WB = B, WA = A;
    WB.widenFrom(Prev, Assoc);
    WA.widenFrom(Prev, Assoc);
    EXPECT_TRUE(WB.leq(WA, Assoc))
        << "widen is not monotone in the current iterate";
  }
}

TEST_P(CacheWideningTest, WidenChainStabilizesWithinMustAgeCap) {
  // The engine's loop-header recipe: S_{n+1} = S_n ∇ (S_n ⊔ body(S_n))
  // with a fixed loop body. Per set, each step of a non-stable chain
  // evicts at least one MUST entry and a set holds at most Assoc of
  // them, so the chain must go stable within Assoc + 1 steps (the MUST
  // age cap) — and ascend the whole way.
  Rng R(17);
  for (unsigned Trial = 0; Trial != 50; ++Trial) {
    // Fixed body: an access cycle of 1..6 random blocks.
    std::vector<BlockAddr> Body;
    unsigned Len = 1 + R.nextBelow(6);
    for (unsigned I = 0; I != Len; ++I)
      Body.push_back(F.block(R.nextBelow(NumVars)));

    CacheAbsState S = randomState(R, F);
    unsigned Steps = 0;
    for (; Steps != Assoc + 2; ++Steps) {
      CacheAbsState Next = S;
      for (BlockAddr Block : Body)
        Next.accessBlock(Block, *F.MM, /*UseShadow=*/true);
      Next.joinInto(S, /*UseShadow=*/true);
      Next.widenFrom(S, Assoc);
      EXPECT_TRUE(S.leq(Next, Assoc)) << "widening chain is not ascending";
      if (Next == S)
        break;
      S = std::move(Next);
    }
    EXPECT_LE(Steps, Assoc + 1)
        << "widening chain did not stabilize within the MUST age cap";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheWideningTest,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::Fifo,
                                           ReplacementPolicy::Plru),
                         [](const ::testing::TestParamInfo<ReplacementPolicy>
                                &I) {
                           switch (I.param) {
                           case ReplacementPolicy::Lru:
                             return "lru";
                           case ReplacementPolicy::Fifo:
                             return "fifo";
                           case ReplacementPolicy::Plru:
                             return "plru";
                           }
                           return "unknown";
                         });

//===----------------------------------------------------------------------===//
// Interval widening (domain/IntervalDomain): the loop-counter side of the
// rolled-loop fixpoint.
//===----------------------------------------------------------------------===//

namespace {

Interval randomInterval(Rng &R) {
  int64_t A = R.nextRange(-100, 100);
  int64_t B = R.nextRange(-100, 100);
  return Interval{std::min(A, B), std::max(A, B)};
}

} // namespace

TEST(IntervalWideningTest, WidenUpperBoundsJoin) {
  Rng R(19);
  for (unsigned Trial = 0; Trial != 500; ++Trial) {
    Interval Prev = randomInterval(R);
    Interval Cur = Prev.join(randomInterval(R));
    Interval W = Cur.widen(Prev);
    EXPECT_LE(W.Lo, Cur.Lo);
    EXPECT_GE(W.Hi, Cur.Hi);
    EXPECT_LE(W.Lo, Prev.Lo);
    EXPECT_GE(W.Hi, Prev.Hi);
  }
}

TEST(IntervalWideningTest, UnstableBoundsJumpExactlyToInfinity) {
  Interval Prev{0, 10};
  EXPECT_EQ(Interval({-5, 10}).widen(Prev), Interval({Interval::NegInf, 10}));
  EXPECT_EQ(Interval({0, 12}).widen(Prev), Interval({0, Interval::PosInf}));
  EXPECT_EQ(Interval({0, 10}).widen(Prev), Interval({0, 10})); // stable
}

TEST(IntervalWideningTest, ChainStabilizesWithinTwoJumps) {
  // Each bound jumps to its infinity at most once, so any join-then-widen
  // chain changes at most twice regardless of the perturbation sequence.
  Rng R(23);
  for (unsigned Trial = 0; Trial != 100; ++Trial) {
    Interval I = randomInterval(R);
    unsigned Changes = 0;
    for (unsigned Step = 0; Step != 50; ++Step) {
      Interval Next = I.join(randomInterval(R)).widen(I);
      if (!(Next == I))
        ++Changes;
      I = Next;
    }
    EXPECT_LE(Changes, 2u);
  }
}

TEST(IntervalWideningTest, StateWidenStabilizesPerVariable) {
  // IntervalState chains stabilize once every tracked variable has spent
  // its two bound-jumps: 2 * #vars changes bound the whole chain.
  Rng R(29);
  constexpr unsigned Vars = 3;
  for (unsigned Trial = 0; Trial != 50; ++Trial) {
    IntervalState S = IntervalState::top();
    for (unsigned V = 0; V != Vars; ++V)
      S.setReg(V, randomInterval(R));
    unsigned Changes = 0;
    for (unsigned Step = 0; Step != 40; ++Step) {
      IntervalState X = IntervalState::top();
      for (unsigned V = 0; V != Vars; ++V)
        X.setReg(V, randomInterval(R));
      IntervalState Next = S;
      Next.joinInto(X);
      Next.widenFrom(S);
      // Upper bound of the joined iterate, per variable.
      for (unsigned V = 0; V != Vars; ++V) {
        IntervalState J = S;
        J.joinInto(X);
        EXPECT_LE(Next.reg(V).Lo, J.reg(V).Lo);
        EXPECT_GE(Next.reg(V).Hi, J.reg(V).Hi);
      }
      if (!(Next == S))
        ++Changes;
      S = std::move(Next);
    }
    EXPECT_LE(Changes, 2 * Vars);
  }
}
