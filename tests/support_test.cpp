//===- support_test.cpp - Unit tests for the support library --------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>

using namespace specai;

TEST(SourceLocTest, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocTest, RendersLineColumn) {
  SourceLoc Loc(12, 34);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:34");
}

TEST(DiagnosticsTest, CountsOnlyErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc(1, 1), "a warning");
  Diags.note(SourceLoc(1, 2), "a note");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 1), "an error");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, RendersLlvmStyle) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(3, 14), "unexpected token");
  EXPECT_EQ(Diags.diagnostics().front().str(), "error: 3:14: unexpected token");
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(), "boom");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto Parts = splitString("a,,b", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
}

TEST(StringUtilsTest, TrimBothEnds) {
  EXPECT_EQ(trimString("  hi \t\n"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StringUtilsTest, JoinWithSeparator) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("speculative", "spec"));
  EXPECT_FALSE(startsWith("spec", "speculative"));
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(RngTest, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 4);
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.nextRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u); // All five values should appear.
}

TEST(RngTest, NextBelowBounds) {
  Rng R(9);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(10), 10u);
}

TEST(StatisticsTest, IncrementAndGet) {
  StatisticSet Stats;
  EXPECT_EQ(Stats.get("joins"), 0u);
  Stats.increment("joins");
  Stats.increment("joins", 4);
  EXPECT_EQ(Stats.get("joins"), 5u);
  Stats.set("joins", 1);
  EXPECT_EQ(Stats.get("joins"), 1u);
}

TEST(TableTest, AlignsColumns) {
  TableWriter T({"Name", "Count"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "23"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_EQ(T.rowCount(), 2u);
  // Header separator present.
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TableWriter T({"A", "B", "C"});
  T.addRow({"x"});
  EXPECT_EQ(T.rowCount(), 1u);
  EXPECT_NE(T.str().find('x'), std::string::npos);
}
