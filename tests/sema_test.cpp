//===- sema_test.cpp - Unit tests for mini-C semantic analysis ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// Runs lex+parse+sema; returns true iff all phases succeed.
bool check(const std::string &Source, std::string *Errors = nullptr) {
  DiagnosticEngine Diags;
  AstContext Context;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Context, Diags);
  TranslationUnit Unit = P.parseTranslationUnit();
  if (Diags.hasErrors()) {
    if (Errors)
      *Errors = Diags.str();
    return false;
  }
  Sema S(Diags);
  bool Ok = S.run(Unit);
  if (Errors)
    *Errors = Diags.str();
  return Ok;
}

} // namespace

TEST(SemaTest, ValidProgramPasses) {
  EXPECT_TRUE(check("int a[8]; int f(int x) { return a[x]; } "
                    "int main() { return f(1); }"));
}

TEST(SemaTest, UndeclaredIdentifier) {
  EXPECT_FALSE(check("void f() { x = 1; }"));
}

TEST(SemaTest, RedeclarationInSameScope) {
  EXPECT_FALSE(check("void f() { int x; int x; }"));
}

TEST(SemaTest, ShadowingInNestedScopeIsAllowed) {
  EXPECT_TRUE(check("void f() { int x; { int x; x = 1; } x = 2; }"));
}

TEST(SemaTest, SubscriptOfScalarIsError) {
  EXPECT_FALSE(check("int x; void f() { x[0] = 1; }"));
}

TEST(SemaTest, ArrayUsedAsValueIsError) {
  EXPECT_FALSE(check("int a[4]; void f() { int x; x = a; }"));
}

TEST(SemaTest, AssignToWholeArrayIsError) {
  EXPECT_FALSE(check("int a[4]; void f() { a = 1; }"));
}

TEST(SemaTest, AssignToConstIsError) {
  EXPECT_FALSE(check("const int c = 1; void f() { c = 2; }"));
}

TEST(SemaTest, AssignToConstArrayElementIsError) {
  EXPECT_FALSE(check("const char t[4] = {1}; void f() { t[0] = 2; }"));
}

TEST(SemaTest, BreakOutsideLoopIsError) {
  EXPECT_FALSE(check("void f() { break; }"));
}

TEST(SemaTest, ContinueOutsideLoopIsError) {
  EXPECT_FALSE(check("void f() { continue; }"));
}

TEST(SemaTest, BreakInsideLoopIsFine) {
  EXPECT_TRUE(check("void f() { for (int i = 0; i < 4; i++) { break; } }"));
}

TEST(SemaTest, DirectRecursionIsRejected) {
  EXPECT_FALSE(check("int f(int x) { return f(x); }"));
}

TEST(SemaTest, MutualRecursionIsRejected) {
  // Mini-C resolves calls against the whole unit, so f may call g defined
  // later; the cycle check must still reject the mutual recursion.
  EXPECT_FALSE(check("int f(int x) { return g(x); } "
                     "int g(int x) { return f(x); }"));
}

TEST(SemaTest, WrongArgumentCount) {
  EXPECT_FALSE(check("int f(int a, int b) { return a + b; } "
                     "void g() { f(1); }"));
}

TEST(SemaTest, CallToUndeclaredFunction) {
  EXPECT_FALSE(check("void f() { missing(); }"));
}

TEST(SemaTest, VoidFunctionUsedAsValue) {
  EXPECT_FALSE(check("void f() { } void g() { int x; x = f(); }"));
}

TEST(SemaTest, VoidFunctionAsStatementIsFine) {
  EXPECT_TRUE(check("void f() { } void g() { f(); }"));
}

TEST(SemaTest, ReturnValueFromVoidIsError) {
  EXPECT_FALSE(check("void f() { return 1; }"));
}

TEST(SemaTest, MissingReturnValueIsError) {
  EXPECT_FALSE(check("int f() { return; }"));
}

TEST(SemaTest, ArraySizeMustBePositiveConstant) {
  EXPECT_FALSE(check("int a[0];"));
  EXPECT_FALSE(check("int x; void f() { int a[x]; }"));
  EXPECT_TRUE(check("int a[64*510];")); // Figure 2's size expression.
}

TEST(SemaTest, ArraySizeExpressionIsFolded) {
  DiagnosticEngine Diags;
  AstContext Context;
  Lexer L("char ph[64*510];", Diags);
  Parser P(L.lexAll(), Context, Diags);
  TranslationUnit Unit = P.parseTranslationUnit();
  Sema S(Diags);
  ASSERT_TRUE(S.run(Unit));
  EXPECT_EQ(Unit.Globals[0]->NumElements, 32640u);
}

TEST(SemaTest, RegArrayIsRejected) {
  EXPECT_FALSE(check("reg int a[4];"));
}

TEST(SemaTest, TooManyInitializers) {
  EXPECT_FALSE(check("int a[2] = {1, 2, 3};"));
}

TEST(SemaTest, NonConstantGlobalInitializer) {
  EXPECT_FALSE(check("int x; int y = x;"));
}

TEST(SemaTest, OutOfBoundsConstantIndexWarnsOnly) {
  std::string Errors;
  EXPECT_TRUE(check("int a[4]; void f() { int x; x = a[9]; }", &Errors));
  EXPECT_NE(Errors.find("out of bounds"), std::string::npos);
}

TEST(SemaTest, ConstExprEvaluation) {
  EXPECT_EQ(evaluateConstExpr(nullptr), std::nullopt);
  DiagnosticEngine Diags;
  AstContext Context;
  Lexer L("int a[(1 << 4) + 2*3 - 10/2];", Diags);
  Parser P(L.lexAll(), Context, Diags);
  TranslationUnit Unit = P.parseTranslationUnit();
  Sema S(Diags);
  ASSERT_TRUE(S.run(Unit));
  EXPECT_EQ(Unit.Globals[0]->NumElements, 17u); // 16 + 6 - 5.
}

TEST(SemaTest, ConstExprDivisionByZeroIsNotConstant) {
  EXPECT_FALSE(check("int a[4/0];"));
}

TEST(SemaTest, ShortCircuitConstants) {
  // 0 && (1/0) folds to 0 without evaluating the RHS.
  EXPECT_FALSE(check("int a[0 && (1/0)];")); // Size 0: rejected as size.
  EXPECT_TRUE(check("int a[1 || (1/0)];"));  // Folds to 1.
}
