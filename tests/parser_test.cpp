//===- parser_test.cpp - Unit tests for the mini-C parser -----------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

struct Parsed {
  AstContext Context;
  DiagnosticEngine Diags;
  TranslationUnit Unit;
};

std::unique_ptr<Parsed> parse(const std::string &Source,
                              bool ExpectErrors = false) {
  auto P = std::make_unique<Parsed>();
  Lexer L(Source, P->Diags);
  Parser Par(L.lexAll(), P->Context, P->Diags);
  P->Unit = Par.parseTranslationUnit();
  EXPECT_EQ(P->Diags.hasErrors(), ExpectErrors) << P->Diags.str();
  return P;
}

/// Renders the first statement of a function body for structural checks.
std::string firstStmt(const TranslationUnit &Unit, const char *Fn) {
  FuncDecl *F = Unit.findFunction(Fn);
  EXPECT_NE(F, nullptr);
  auto *Body = static_cast<BlockStmt *>(F->Body);
  EXPECT_FALSE(Body->Body.empty());
  return printStmt(Body->Body.front());
}

} // namespace

TEST(ParserTest, GlobalScalarsAndArrays) {
  auto P = parse("int a; char b[64]; secret reg char k; const int t[4] = "
                 "{1,2,3};");
  ASSERT_EQ(P->Unit.Globals.size(), 4u);
  EXPECT_FALSE(P->Unit.Globals[0]->IsArray);
  EXPECT_TRUE(P->Unit.Globals[1]->IsArray);
  EXPECT_TRUE(P->Unit.Globals[2]->Type.IsSecret);
  EXPECT_TRUE(P->Unit.Globals[2]->Type.IsReg);
  EXPECT_TRUE(P->Unit.Globals[3]->Type.IsConst);
  EXPECT_EQ(P->Unit.Globals[3]->Init.size(), 3u);
}

TEST(ParserTest, CommaSeparatedDeclarators) {
  auto P = parse("int el, delt, tmp;");
  ASSERT_EQ(P->Unit.Globals.size(), 3u);
  EXPECT_EQ(P->Unit.Globals[1]->Name, "delt");
}

TEST(ParserTest, FunctionWithParams) {
  auto P = parse("int f(int a, reg char b) { return a; }");
  FuncDecl *F = P->Unit.findFunction("f");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->Params.size(), 2u);
  EXPECT_TRUE(F->Params[1]->Type.IsReg);
  EXPECT_EQ(F->Params[1]->Type.Kind, TypeKind::Char);
}

TEST(ParserTest, VoidParameterListIsEmpty) {
  auto P = parse("int f(void) { return 0; }");
  FuncDecl *F = P->Unit.findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->Params.empty());
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  auto P = parse("void f() { reg int x; x = 1 + 2 * 3; }");
  FuncDecl *F = P->Unit.findFunction("f");
  auto *Body = static_cast<BlockStmt *>(F->Body);
  auto *Assign = static_cast<AssignStmt *>(Body->Body[1]);
  EXPECT_EQ(printExpr(Assign->Value), "(1 + (2 * 3))");
}

TEST(ParserTest, PrecedenceShiftBelowRelational) {
  auto P = parse("void f() { reg int x; x = 1 < 2 << 3; }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  auto *Assign = static_cast<AssignStmt *>(Body->Body[1]);
  EXPECT_EQ(printExpr(Assign->Value), "(1 < (2 << 3))");
}

TEST(ParserTest, CompoundAssignDesugars) {
  auto P = parse("int x; void f() { x += 5; }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  auto *Assign = static_cast<AssignStmt *>(Body->Body[0]);
  EXPECT_EQ(printExpr(Assign->Value), "(x + 5)");
}

TEST(ParserTest, IncrementDesugars) {
  auto P = parse("int x; void f() { x++; x--; }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  auto *Inc = static_cast<AssignStmt *>(Body->Body[0]);
  auto *Dec = static_cast<AssignStmt *>(Body->Body[1]);
  EXPECT_EQ(printExpr(Inc->Value), "(x + 1)");
  EXPECT_EQ(printExpr(Dec->Value), "(x - 1)");
}

TEST(ParserTest, ArrayElementCompoundAssign) {
  auto P = parse("int a[8]; void f(int i) { a[i] <<= 2; }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  auto *Assign = static_cast<AssignStmt *>(Body->Body[0]);
  ASSERT_EQ(Assign->Target->Kind, ExprKind::Index);
  EXPECT_EQ(printExpr(Assign->Value), "(a[i] << 2)");
}

TEST(ParserTest, TernaryExpression) {
  auto P = parse("void f(int c) { reg int x; x = c ? 1 : 2; }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  auto *Assign = static_cast<AssignStmt *>(Body->Body[1]);
  EXPECT_EQ(Assign->Value->Kind, ExprKind::Ternary);
}

TEST(ParserTest, CStyleCastIsAccepted) {
  // The paper's quantl has `(long)detl`.
  auto P = parse("void f(int d) { reg long x; x = (long)d * 2; }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, ForHeaderVariants) {
  auto P = parse("void f() { for (reg int i = 0; i < 8; i++) { } "
                 "int j; for (j = 0; j < 4; j += 2) { } for (;;) { break; } }");
  EXPECT_FALSE(P->Diags.hasErrors());
}

TEST(ParserTest, DoWhileLoop) {
  auto P = parse("void f(int n) { int i; i = 0; do { i++; } while (i < n); }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  EXPECT_EQ(Body->Body.back()->Kind, StmtKind::DoWhile);
}

TEST(ParserTest, DanglingElseBindsToInner) {
  auto P = parse("void f(int a, int b) { if (a) if (b) a = 1; else a = 2; }");
  auto *Body = static_cast<BlockStmt *>(P->Unit.findFunction("f")->Body);
  auto *Outer = static_cast<IfStmt *>(Body->Body[0]);
  EXPECT_EQ(Outer->Else, nullptr);
  auto *Inner = static_cast<IfStmt *>(Outer->Then);
  EXPECT_NE(Inner->Else, nullptr);
}

TEST(ParserTest, CallStatementAndNestedCalls) {
  auto P = parse("int g(int x) { return x; } void f() { g(g(1) + 2); }");
  auto S = firstStmt(P->Unit, "f");
  EXPECT_NE(S.find("g((g(1) + 2))"), std::string::npos);
}

TEST(ParserTest, MissingSemicolonIsError) {
  parse("void f() { int x x = 1; }", /*ExpectErrors=*/true);
}

TEST(ParserTest, UnbalancedParenIsError) {
  parse("void f() { if (1 { } }", /*ExpectErrors=*/true);
}

TEST(ParserTest, AssignmentToRValueIsError) {
  parse("void f() { 1 = 2; }", /*ExpectErrors=*/true);
}

TEST(ParserTest, ParsesQuantlShape) {
  auto P = parse("int tab[31] = {1,2,3};\n"
                 "int quantl(int el, int detl) {\n"
                 "  int ril, mil;\n"
                 "  long wd, decis;\n"
                 "  for (mil = 0; mil < 30; mil++) {\n"
                 "    decis = (tab[mil] * (long)detl) >> 15;\n"
                 "    if (wd <= decis) break;\n"
                 "  }\n"
                 "  if (el >= 0) { ril = tab[mil]; } else { ril = tab[0]; }\n"
                 "  return ril;\n"
                 "}\n");
  EXPECT_NE(P->Unit.findFunction("quantl"), nullptr);
}
