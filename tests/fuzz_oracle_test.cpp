//===- fuzz_oracle_test.cpp - Differential fuzzing subsystem tests --------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Tests of the src/fuzz subsystem itself: generator determinism and
/// well-formedness, oracle cleanliness on the healthy engine, fault
/// detection (a fuzzer that cannot see a broken engine proves nothing),
/// counterexample minimization/replayability, and jobs-invariance of
/// campaign summaries.
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzCampaign.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/SoundnessOracle.h"
#include "fuzz/StateDigest.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// Small-budget oracle options so a test stays in the tens of
/// milliseconds per program.
SoundnessOracleOptions quickOracle() {
  SoundnessOracleOptions O;
  O.ExhaustiveBits = 3;
  O.SampledScripts = 2;
  O.InputRounds = 1;
  O.ShrunkenWindowRounds = 1;
  O.UseStandardPredictors = false;
  return O;
}

} // namespace

TEST(ProgramGenTest, DeterministicFromSeed) {
  ProgramGen A(42), B(42), C(43);
  EXPECT_EQ(A.generate().source(), B.generate().source());
  EXPECT_NE(A.generate().source(), C.generate().source());
}

TEST(ProgramGenTest, GeneratedProgramsCompile) {
  for (uint64_t Seed = 1; Seed != 40; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP) << "seed " << Seed << ":\n"
                    << G.source() << "\n"
                    << Diags.str();
    // Every advertised input is a real memory variable.
    for (const std::string &S : G.InputScalars)
      EXPECT_NE(CP->P->findVar(S), InvalidVar) << S;
    for (const auto &[Name, Elems] : G.Arrays) {
      VarId V = CP->P->findVar(Name);
      ASSERT_NE(V, InvalidVar) << Name;
      EXPECT_EQ(CP->P->Vars[V].NumElements, Elems) << Name;
    }
  }
}

TEST(ProgramGenTest, GeneratedProgramsTerminate) {
  // The generator's while loops decrement a bound scalar nothing else
  // writes, so every program halts on every input. Spot-check with the
  // adversarial corner (maximum positive scalars).
  for (uint64_t Seed = 1; Seed != 15; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    Machine M(*CP->P);
    for (const std::string &S : G.InputScalars)
      M.setMemory(CP->P->findVar(S), 0, 30);
    uint64_t Steps = M.run(500000);
    EXPECT_TRUE(M.halted()) << "seed " << Seed << " ran " << Steps
                            << " steps without halting";
  }
}

TEST(SoundnessOracleTest, HealthyEngineIsClean) {
  for (uint64_t Seed : {1, 5, 9}) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, quickOracle());
    OracleResult R = Oracle.run(Seed);
    EXPECT_TRUE(R.ok()) << R.Violations.front().str(*CP);
    EXPECT_GT(R.Stats.ConcreteRuns, 0u);
    EXPECT_GT(R.Stats.CommittedChecks, 0u);
  }
}

TEST(SoundnessOracleTest, CatchesSkippedSpecSeed) {
  // Break the engine (no SS seeding) and demand a concrete counterexample
  // within a few programs.
  SoundnessOracleOptions O = quickOracle();
  O.Fault = EngineFault::SkipSpecSeed;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed != 10 && !Caught; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    OracleResult R = Oracle.run(Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}

TEST(SoundnessOracleTest, CatchesSkippedRollback) {
  SoundnessOracleOptions O = quickOracle();
  O.Fault = EngineFault::SkipRollback;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed != 25 && !Caught; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    OracleResult R = Oracle.run(Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}

TEST(VerdictOracleTest, HealthyVerdictsAreClean) {
  // All three oracles together on the healthy stack: no violation, and
  // the verdict-side coverage counters actually move.
  SoundnessOracleOptions O = quickOracle();
  O.Oracles = OracleAll;
  for (uint64_t Seed : {1, 5, 9}) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    OracleResult R = Oracle.run(Seed);
    EXPECT_TRUE(R.ok()) << R.Violations.front().str(*CP);
    EXPECT_GT(R.Stats.WcetChecks, 0u);
    EXPECT_GT(R.Stats.LeakFamilies, 0u);
    EXPECT_GT(R.Stats.LeakRuns, 0u);
  }
}

TEST(VerdictOracleTest, CatchesUnderchargedMissLatency) {
  SoundnessOracleOptions O = quickOracle();
  O.Oracles = OracleWcet;
  O.VFault = VerdictFault::WcetHitForMiss;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed != 12 && !Caught; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    OracleResult R = Oracle.run(Seed);
    if (!R.ok()) {
      EXPECT_EQ(R.Violations.front().Kind,
                ViolationKind::WcetBoundExceeded);
      Caught = true;
    }
  }
  EXPECT_TRUE(Caught);
}

TEST(VerdictOracleTest, CatchesDroppedLoopScaling) {
  SoundnessOracleOptions O = quickOracle();
  O.Oracles = OracleWcet;
  O.VFault = VerdictFault::WcetDropLoopScale;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed != 40 && !Caught; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    Caught = !Oracle.run(Seed).ok();
  }
  EXPECT_TRUE(Caught);
}

TEST(VerdictOracleTest, CatchesSkippedLeakSite) {
  SoundnessOracleOptions O = quickOracle();
  O.Oracles = OracleLeak;
  O.VFault = VerdictFault::LeakSkipMixed;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed != 20 && !Caught; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    OracleResult R = Oracle.run(Seed);
    if (!R.ok()) {
      EXPECT_EQ(R.Violations.front().Kind,
                ViolationKind::LeakFreeSiteVaried);
      EXPECT_FALSE(R.Violations.front().Run.SecretVariants.empty());
      Caught = true;
    }
  }
  EXPECT_TRUE(Caught);
}

TEST(VerdictOracleTest, CatchesDroppedSpecOnlyLabel) {
  SoundnessOracleOptions O = quickOracle();
  O.Oracles = OracleLeak;
  O.VFault = VerdictFault::LeakDropSpecOnly;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed != 40 && !Caught; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP);
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, O);
    OracleResult R = Oracle.run(Seed);
    if (!R.ok()) {
      EXPECT_EQ(R.Violations.front().Kind,
                ViolationKind::SpecOnlyLabelInconsistent);
      Caught = true;
    }
  }
  EXPECT_TRUE(Caught);
}

TEST(VerdictOracleTest, LeakFamilyCounterexampleReplays) {
  // A leak counterexample is a *family* (several secrets, shared
  // publics); checkRun must route it back through the attacker and still
  // fail under the same broken verdict layer.
  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = 8;
  O.Jobs = 2;
  O.Oracle = quickOracle();
  O.Oracle.Oracles = OracleLeak;
  O.Oracle.VFault = VerdictFault::LeakSkipMixed;
  FuzzCampaignResult R = runFuzzCampaign(O);
  ASSERT_FALSE(R.ok());
  const Counterexample &CE = R.Counterexamples.front();
  ASSERT_FALSE(CE.V.Run.SecretVariants.empty());

  DiagnosticEngine Diags;
  auto CP = compileSource(CE.Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();
  SoundnessOracle Oracle(*CP, CE.InputScalars, CE.InputArrays, O.Oracle);
  EXPECT_TRUE(Oracle.checkRun(CE.V.Run).has_value());

  // The .mc rendering carries the oracle tag and the secret variants.
  std::string File = CE.replayFile(O.Oracle);
  EXPECT_NE(File.find("// replay-oracle: leak"), std::string::npos);
  EXPECT_NE(File.find("// replay-secret: v0"), std::string::npos);
  EXPECT_NE(File.find("// replay-verdict-fault: leak-skip-mixed"),
            std::string::npos);
}

TEST(VerdictOracleTest, WcetViolationRunSpecReplays) {
  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = 8;
  O.Jobs = 2;
  O.Oracle = quickOracle();
  O.Oracle.Oracles = OracleWcet;
  O.Oracle.VFault = VerdictFault::WcetHitForMiss;
  FuzzCampaignResult R = runFuzzCampaign(O);
  ASSERT_FALSE(R.ok());
  EXPECT_GT(R.Stats.WcetViolations, 0u);
  EXPECT_EQ(R.Stats.LeakViolations, 0u);
  const Counterexample &CE = R.Counterexamples.front();

  DiagnosticEngine Diags;
  auto CP = compileSource(CE.Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();
  SoundnessOracleOptions Single = O.Oracle;
  Single.Strategies = {CE.V.Strategy};
  Single.Boundings = {CE.V.Bounding};
  SoundnessOracle Oracle(*CP, CE.InputScalars, CE.InputArrays, Single);
  EXPECT_TRUE(Oracle.checkRun(CE.V.Run).has_value());
  EXPECT_NE(CE.replayFile(O.Oracle).find("// replay-oracle: wcet"),
            std::string::npos);
}

TEST(FuzzCampaignTest, MinimizedCounterexampleStillFailsAndReplays) {
  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = 6;
  O.Jobs = 2;
  O.Oracle = quickOracle();
  O.Oracle.Fault = EngineFault::SkipSpecSeed;
  FuzzCampaignResult R = runFuzzCampaign(O);
  ASSERT_FALSE(R.ok());
  const Counterexample &CE = R.Counterexamples.front();
  // Every generated program has >= 4 statements and the injected fault
  // violates on any speculative access, so minimization must strictly
  // shrink here (<= would hold even for a no-op minimizer).
  EXPECT_LT(CE.StmtsAfter, CE.StmtsBefore);
  EXPECT_FALSE(CE.Pretty.empty());

  // The minimized source still compiles and still violates under the same
  // (broken) engine.
  DiagnosticEngine Diags;
  auto CP = compileSource(CE.Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();
  SoundnessOracle Oracle(*CP, CE.InputScalars, CE.InputArrays, O.Oracle);
  EXPECT_TRUE(Oracle.checkRun(CE.V.Run).has_value());

  // The rendered replay file embeds the scenario and the source.
  std::string File = CE.replayFile(O.Oracle);
  EXPECT_NE(File.find("// replay-kind:"), std::string::npos);
  EXPECT_NE(File.find("// replay-windows:"), std::string::npos);
  EXPECT_NE(File.find("int main()"), std::string::npos);
}

TEST(FuzzCampaignTest, SummariesAreJobsInvariant) {
  FuzzCampaignOptions O;
  O.Seed = 3;
  O.Programs = 6;
  O.Oracle = quickOracle();

  O.Jobs = 1;
  FuzzCampaignResult R1 = runFuzzCampaign(O);
  O.Jobs = 4;
  FuzzCampaignResult R4 = runFuzzCampaign(O);

  EXPECT_EQ(R1.Stats.summary(), R4.Stats.summary());
  EXPECT_EQ(R1.Counterexamples.size(), R4.Counterexamples.size());
  EXPECT_TRUE(R1.ok());
}

TEST(StateDigestTest, DigestIsStableAndSensitive) {
  ProgramGen Gen(7);
  GeneratedProgram G = Gen.generate();
  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  ASSERT_TRUE(CP);

  MustHitOptions O;
  O.Cache = CacheConfig::fullyAssociative(8);
  O.DepthMiss = 24;
  O.DepthHit = 6;
  MustHitReport A = runMustHitAnalysis(*CP, O);
  MustHitReport B = runMustHitAnalysis(*CP, O);
  EXPECT_EQ(digestMustHitReport(*CP, A), digestMustHitReport(*CP, B));

  // A different strategy (or a broken engine) moves the digest.
  O.Strategy = MergeStrategy::MergeAtRollback;
  MustHitReport C = runMustHitAnalysis(*CP, O);
  EXPECT_NE(digestMustHitReport(*CP, A), digestMustHitReport(*CP, C));

  O.Strategy = MergeStrategy::JustInTime;
  O.Fault = EngineFault::SkipSpecSeed;
  MustHitReport D = runMustHitAnalysis(*CP, O);
  EXPECT_NE(digestMustHitReport(*CP, A), digestMustHitReport(*CP, D));
}
