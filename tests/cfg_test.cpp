//===- cfg_test.cpp - FlatCfg, dominators, loops ---------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

TEST(FlatCfgTest, StraightLineChain) {
  auto CP = compile("int x; int main() { x = 1; x = 2; return x; }");
  const FlatCfg &G = CP->G;
  // Every non-terminator node has exactly one successor; Ret has none.
  for (NodeId N = 0; N != G.size(); ++N) {
    if (G.inst(N).Op == Opcode::Ret)
      EXPECT_TRUE(G.successors(N).empty());
    else
      EXPECT_EQ(G.successors(N).size(), 1u);
  }
  ASSERT_EQ(G.exits().size(), 1u);
}

TEST(FlatCfgTest, BranchHasTwoSuccessors) {
  auto CP = compile("int c; int main() { if (c) { c = 1; } else { c = 2; } "
                    "return c; }");
  const FlatCfg &G = CP->G;
  unsigned Branches = 0;
  for (NodeId N = 0; N != G.size(); ++N) {
    if (G.inst(N).Op == Opcode::Br) {
      EXPECT_EQ(G.successors(N).size(), 2u);
      ++Branches;
    }
  }
  EXPECT_EQ(Branches, 1u);
}

TEST(FlatCfgTest, PredecessorsMatchSuccessors) {
  auto CP = compile("int c; int main() { int s; s = 0; "
                    "while (c) { s = s + 1; } return s; }");
  const FlatCfg &G = CP->G;
  for (NodeId N = 0; N != G.size(); ++N)
    for (NodeId Succ : G.successors(N)) {
      const auto &Preds = G.predecessors(Succ);
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), N), Preds.end());
    }
}

TEST(FlatCfgTest, RpoVisitsEntryFirstAndAllReachable) {
  auto CP = compile("int c; int main() { if (c) { return 1; } return 2; }");
  auto Rpo = CP->G.reversePostOrder();
  ASSERT_FALSE(Rpo.empty());
  EXPECT_EQ(Rpo.front(), CP->G.entry());
  auto Reach = CP->G.reachable();
  size_t ReachCount = std::count(Reach.begin(), Reach.end(), true);
  EXPECT_EQ(Rpo.size(), ReachCount);
}

TEST(DominatorsTest, DiamondJoinDominatedByBranch) {
  auto CP = compile("int c; int x; int main() { if (c) { x = 1; } else "
                    "{ x = 2; } return x; }");
  const FlatCfg &G = CP->G;
  // Find the branch and the final return.
  NodeId Branch = InvalidNode;
  for (NodeId N = 0; N != G.size(); ++N)
    if (G.inst(N).Op == Opcode::Br)
      Branch = N;
  ASSERT_NE(Branch, InvalidNode);
  NodeId Ret = G.exits().front();
  EXPECT_TRUE(CP->Dom.dominates(Branch, Ret));
  EXPECT_TRUE(CP->Dom.dominates(G.entry(), Branch));
  // Neither arm dominates the return.
  NodeId ThenEntry = G.blockStart(G.inst(Branch).TrueTarget);
  EXPECT_FALSE(CP->Dom.dominates(ThenEntry, Ret));
}

TEST(DominatorsTest, PostDominatorOfBranchIsTheJoin) {
  auto CP = compile("int c; int x; int main() { if (c) { x = 1; } else "
                    "{ x = 2; } return x; }");
  const FlatCfg &G = CP->G;
  NodeId Branch = InvalidNode;
  for (NodeId N = 0; N != G.size(); ++N)
    if (G.inst(N).Op == Opcode::Br)
      Branch = N;
  NodeId Ipdom = CP->Pdom.idom(Branch);
  ASSERT_NE(Ipdom, InvalidNode);
  // The ipdom is reachable from both arms and post-dominates the branch.
  EXPECT_TRUE(CP->Pdom.dominates(Ipdom, Branch));
  // It is the load of x or later (in the join block).
  EXPECT_TRUE(CP->Pdom.dominates(G.exits().front(), Branch));
}

TEST(DominatorsTest, NoPostDominatorWhenBothSidesReturn) {
  auto CP = compile("int c; int main() { if (c) { return 1; } "
                    "else { return 2; } }");
  const FlatCfg &G = CP->G;
  NodeId Branch = InvalidNode;
  for (NodeId N = 0; N != G.size(); ++N)
    if (G.inst(N).Op == Opcode::Br)
      Branch = N;
  ASSERT_NE(Branch, InvalidNode);
  EXPECT_EQ(CP->Pdom.idom(Branch), InvalidNode);
}

TEST(DominatorsTest, SelfDominanceIsReflexive) {
  auto CP = compile("int main() { return 0; }");
  NodeId E = CP->G.entry();
  EXPECT_TRUE(CP->Dom.dominates(E, E));
}

TEST(LoopInfoTest, WhileLoopDetected) {
  auto CP = compile("int c; int main() { int s; s = 0; "
                    "while (s < c) { s = s + 1; } return s; }");
  EXPECT_EQ(CP->LI.loopCount(), 1u);
  const Loop &L = CP->LI.loops().front();
  EXPECT_TRUE(CP->LI.isHeader(L.Header));
  EXPECT_GT(L.Body.size(), 2u);
}

TEST(LoopInfoTest, UnrolledLoopLeavesNoLoops) {
  auto CP = compile("char a[256]; int main() { reg int t; "
                    "for (reg int i = 0; i < 4; i++) t = a[i * 64]; "
                    "return t; }");
  EXPECT_EQ(CP->LI.loopCount(), 0u);
}

TEST(LoopInfoTest, NestedLoopsBothDetected) {
  auto CP = compile("int n; int main() { int i; int j; int s; s = 0; "
                    "for (i = 0; i < n; i++) { "
                    "  for (j = 0; j < n; j++) { s = s + 1; } } "
                    "return s; }");
  EXPECT_EQ(CP->LI.loopCount(), 2u);
}

TEST(LoopInfoTest, LoopNodesAreMarked) {
  auto CP = compile("int c; int main() { int s; s = 0; "
                    "while (s < c) { s = s + 1; } return s; }");
  // The return is outside any loop; the body increment inside.
  NodeId Ret = CP->G.exits().front();
  EXPECT_FALSE(CP->LI.inAnyLoop(Ret));
  const Loop &L = CP->LI.loops().front();
  for (NodeId N : L.Body)
    EXPECT_TRUE(CP->LI.inAnyLoop(N));
}
