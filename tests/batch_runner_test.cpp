//===- batch_runner_test.cpp - Unit tests for the batch driver ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The batch driver's contract: rows come back in variant order, agree
/// with what a serial runMustHitAnalysis produces, and are identical
/// whatever the worker-thread count.
///
//===----------------------------------------------------------------------===//

#include "driver/BatchRunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

using namespace specai;

namespace {

/// The Figure 2 scenario in miniature (same program as the quickstart
/// example): preloaded table, memory-conditioned branch, secret lookup.
const char *testProgram() {
  return R"MC(
char table[256];
char left[64];
char right[64];
int mode;
secret reg char key;

int main() {
  reg int t;
  for (reg int i = 0; i < 256; i += 64)
    t = table[i];
  if (mode == 0) {
    t = t + left[0];
  } else {
    t = t + right[0];
  }
  t = t + table[key & 255];
  return t;
}
)MC";
}

std::unique_ptr<CompiledProgram> compileTestProgram() {
  DiagnosticEngine Diags;
  auto CP = compileSource(testProgram(), Diags);
  EXPECT_NE(CP, nullptr) << Diags.str();
  return CP;
}

MustHitOptions baseOptions() {
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(6);
  return Opts;
}

TEST(BatchRunnerTest, MergeSweepRowsComeBackInVariantOrder) {
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  BatchRunner Runner(2);
  BatchReport R = Runner.run(*CP, BatchRunner::mergeStrategySweep(baseOptions()));
  ASSERT_EQ(R.Rows.size(), 4u);
  EXPECT_EQ(R.Rows[0].Label, "no-merge");
  EXPECT_EQ(R.Rows[1].Label, "merge-at-exit");
  EXPECT_EQ(R.Rows[2].Label, "just-in-time");
  EXPECT_EQ(R.Rows[3].Label, "merge-at-rollback");
  for (const BatchRow &Row : R.Rows) {
    EXPECT_TRUE(Row.Converged);
    EXPECT_GT(Row.AccessNodes, 0u);
  }
  EXPECT_EQ(R.findRow("just-in-time"), &R.Rows[2]);
  EXPECT_EQ(R.findRow("no-such-strategy"), nullptr);
}

TEST(BatchRunnerTest, RowsAgreeWithSerialAnalysis) {
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  std::vector<BatchVariant> Variants =
      BatchRunner::mergeStrategySweep(baseOptions());
  BatchReport R = BatchRunner(4).run(*CP, Variants);
  ASSERT_EQ(R.Rows.size(), Variants.size());
  for (size_t I = 0; I != Variants.size(); ++I) {
    MustHitReport Serial = runMustHitAnalysis(*CP, Variants[I].Options);
    SideChannelReport Leaks = detectLeaks(*CP, Serial);
    EXPECT_EQ(R.Rows[I].MissCount, Serial.MissCount) << Variants[I].Label;
    EXPECT_EQ(R.Rows[I].SpMissCount, Serial.SpMissCount) << Variants[I].Label;
    EXPECT_EQ(R.Rows[I].Iterations, Serial.Iterations) << Variants[I].Label;
    EXPECT_EQ(R.Rows[I].AccessNodes, Serial.AccessNodes) << Variants[I].Label;
    EXPECT_EQ(R.Rows[I].LeakCount, Leaks.Leaks.size()) << Variants[I].Label;
    EXPECT_EQ(R.Rows[I].ProvenLeakFree, Leaks.ProvenLeakFree)
        << Variants[I].Label;
  }
}

TEST(BatchRunnerTest, ResultsIndependentOfThreadCount) {
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  MustHitOptions Base = baseOptions();
  std::vector<BatchVariant> Variants = BatchRunner::crossProductSweep(
      Base,
      {MergeStrategy::NoMerge, MergeStrategy::JustInTime,
       MergeStrategy::MergeAtRollback},
      {CacheConfig::fullyAssociative(6), CacheConfig::fullyAssociative(64)},
      {BoundingMode::Fixed, BoundingMode::Dynamic});
  ASSERT_EQ(Variants.size(), 12u);

  BatchReport Serial = BatchRunner(1).run(*CP, Variants);
  for (unsigned Jobs : {2u, 4u, 8u}) {
    BatchReport Parallel = BatchRunner(Jobs).run(*CP, Variants);
    EXPECT_TRUE(Serial.sameResults(Parallel)) << "jobs=" << Jobs;
  }
}

TEST(BatchRunnerTest, RepeatedRunsAreDeterministic) {
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  std::vector<BatchVariant> Variants =
      BatchRunner::boundingModeSweep(baseOptions());
  BatchReport First = BatchRunner(4).run(*CP, Variants);
  BatchReport Second = BatchRunner(4).run(*CP, Variants);
  EXPECT_TRUE(First.sameResults(Second));
}

TEST(BatchRunnerTest, TableHasOneRowPerVariant) {
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  std::vector<BatchVariant> Variants =
      BatchRunner::mergeStrategySweep(baseOptions());
  BatchReport R = BatchRunner(2).run(*CP, Variants);
  EXPECT_EQ(R.toTable().rowCount(), Variants.size());
}

TEST(BatchRunnerTest, EmptyVariantListYieldsEmptyReport) {
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  BatchReport R = BatchRunner(4).run(*CP, {});
  EXPECT_TRUE(R.Rows.empty());
  EXPECT_EQ(R.toTable().rowCount(), 0u);
}

TEST(BatchRunnerTest, RunSourceReportsCompileErrors) {
  DiagnosticEngine Diags;
  BatchReport R = BatchRunner(2).runSource(
      "int main() { return undeclared; }",
      BatchRunner::mergeStrategySweep(baseOptions()), Diags);
  EXPECT_TRUE(R.Rows.empty());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(BatchRunnerTest, JobCountDefaultsAndClamps) {
  EXPECT_GE(BatchRunner(0).jobCount(), 1u);
  EXPECT_EQ(BatchRunner(3).jobCount(), 3u);

  // More workers than variants: the pool must not over-spawn, and the
  // report says how many it used.
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  std::vector<BatchVariant> Sweep = BatchRunner::mergeStrategySweep(baseOptions());
  std::vector<BatchVariant> One(Sweep.begin(), Sweep.begin() + 1);
  BatchReport R = BatchRunner(16).run(*CP, One);
  EXPECT_EQ(R.JobsUsed, 1u);
}

TEST(BatchRunnerTest, SpeculativeSweepFindsTheFigure2Leak) {
  // The quickstart narrative: non-speculative analysis certifies the
  // secret lookup, every speculative strategy refuses to.
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);

  BatchVariant NonSpec;
  NonSpec.Options = baseOptions();
  NonSpec.Options.Speculative = false;
  NonSpec.Label = "non-speculative";

  std::vector<BatchVariant> Variants{NonSpec};
  for (BatchVariant &V : BatchRunner::mergeStrategySweep(baseOptions()))
    Variants.push_back(std::move(V));

  BatchReport R = BatchRunner(4).run(*CP, Variants);
  ASSERT_EQ(R.Rows.size(), 5u);
  EXPECT_EQ(R.Rows[0].LeakCount, 0u);
  for (size_t I = 1; I != R.Rows.size(); ++I)
    EXPECT_GT(R.Rows[I].LeakCount, 0u) << R.Rows[I].Label;
}

TEST(BatchRunnerTest, RequireRowThrowsOnMissingLabelInsteadOfExiting) {
  // Regression: requireRow used to printf + std::exit(1) from library
  // code, which would kill the whole specaid daemon over one malformed
  // sweep. It must throw so hosts can report and keep serving.
  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  BatchReport R = BatchRunner(2).run(
      *CP, BatchRunner::mergeStrategySweep(baseOptions()));
  EXPECT_NO_THROW(R.requireRow(R.Rows.front().Label));
  EXPECT_THROW(R.requireRow("no-such-variant"), std::out_of_range);
}

TEST(ParallelForTest, WorkerExceptionIsRethrownOnTheCaller) {
  // Regression: an exception escaping Fn used to unwind a std::thread and
  // std::terminate the process. Now the first exception is captured, the
  // pool quiesces, and the caller sees it.
  EXPECT_THROW(
      parallelFor(4, 64,
                  [](size_t I) {
                    if (I == 7)
                      throw std::runtime_error("boom");
                  }),
      std::runtime_error);

  // Inline path (Jobs <= 1) has the same contract.
  EXPECT_THROW(parallelFor(1, 4,
                           [](size_t) { throw std::logic_error("inline"); }),
               std::logic_error);

  // Remaining workers stop claiming new indices after the failure: on a
  // big range, far fewer than Count indices run (the claimed-before-abort
  // tail is bounded by the worker count, not the range).
  std::atomic<size_t> Ran{0};
  try {
    parallelFor(2, 1 << 20, [&](size_t) {
      Ran.fetch_add(1);
      throw std::runtime_error("first");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error &) {
  }
  EXPECT_LT(Ran.load(), size_t(1) << 20);
}

TEST(ParallelForTest, PoolStillProducesEveryIndexWithoutExceptions) {
  std::vector<std::atomic<int>> Seen(257);
  parallelFor(3, Seen.size(), [&](size_t I) { Seen[I].fetch_add(1); });
  for (size_t I = 0; I != Seen.size(); ++I)
    EXPECT_EQ(Seen[I].load(), 1) << I;
}

TEST(ParseJobsFlagTest, ReportsErrorsInsteadOfExiting) {
  // Regression: parseJobsFlag used to printf (to stdout, even) and
  // std::exit(1). It must hand the error back to the caller.
  std::string Error;

  const char *Good[] = {"bench", "--jobs", "3"};
  std::optional<unsigned> Jobs =
      parseJobsFlag(3, const_cast<char **>(Good), Error);
  ASSERT_TRUE(Jobs.has_value()) << Error;
  EXPECT_EQ(*Jobs, 3u);

  const char *Absent[] = {"bench"};
  Jobs = parseJobsFlag(1, const_cast<char **>(Absent), Error);
  ASSERT_TRUE(Jobs.has_value());
  EXPECT_EQ(*Jobs, 0u) << "absent flag means all cores";

  const char *Valueless[] = {"bench", "--jobs"};
  EXPECT_FALSE(parseJobsFlag(2, const_cast<char **>(Valueless), Error));
  EXPECT_FALSE(Error.empty());

  const char *NonNumeric[] = {"bench", "--jobs", "many"};
  EXPECT_FALSE(parseJobsFlag(3, const_cast<char **>(NonNumeric), Error));
  EXPECT_NE(Error.find("many"), std::string::npos);

  const char *Unknown[] = {"bench", "--frobnicate"};
  EXPECT_FALSE(parseJobsFlag(2, const_cast<char **>(Unknown), Error));
  EXPECT_NE(Error.find("--frobnicate"), std::string::npos);
}

TEST(RunRequestTest, MatchesABatchSweepOfTheSameVariant) {
  // The daemon's entry point must be bit-identical to the established
  // sweep machinery on the same options.
  RunRequest Req;
  Req.Source = testProgram();
  Req.Options = baseOptions();
  RunOutcome Out = runRequest(Req);
  ASSERT_TRUE(Out.Ok) << Out.Error;
  EXPECT_NE(Out.ProgramDigest, 0u);

  auto CP = compileTestProgram();
  ASSERT_NE(CP, nullptr);
  BatchVariant V;
  V.Options = Req.Options;
  V.Label = Out.Row.Label;
  BatchReport R = BatchRunner(1).run(*CP, {V});
  ASSERT_EQ(R.Rows.size(), 1u);
  EXPECT_TRUE(Out.Row.sameResults(R.Rows[0]));
}

TEST(RunRequestTest, CompileErrorsComeBackAsOutcomesNotDiagnostics) {
  RunRequest Req;
  Req.Source = "int main() { return undeclared; }";
  RunOutcome Out = runRequest(Req);
  EXPECT_FALSE(Out.Ok);
  EXPECT_NE(Out.Error.find("undeclared"), std::string::npos) << Out.Error;
  EXPECT_EQ(Out.ProgramDigest, 0u);
}

TEST(RunRequestTest, ProgramDigestTracksTheLoweredIrNotTheText) {
  RunRequest A;
  A.Source = testProgram();
  A.Options = baseOptions();
  RunOutcome OutA = runRequest(A);
  ASSERT_TRUE(OutA.Ok);

  // Comment-only changes lower to identical IR: same digest.
  RunRequest B = A;
  B.Source = std::string("// cosmetic\n") + testProgram();
  RunOutcome OutB = runRequest(B);
  ASSERT_TRUE(OutB.Ok);
  EXPECT_EQ(OutA.ProgramDigest, OutB.ProgramDigest);

  // A different lowering mode changes the IR: different digest.
  RunRequest C = A;
  C.Lowering.Mode = LoweringMode::Summarize;
  RunOutcome OutC = runRequest(C);
  ASSERT_TRUE(OutC.Ok);
  EXPECT_NE(OutA.ProgramDigest, OutC.ProgramDigest);
}

} // namespace
