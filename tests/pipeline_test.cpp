//===- pipeline_test.cpp - Branch predictors and speculative CPU ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"
#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"

#include <gtest/gtest.h>

using namespace specai;

//===----------------------------------------------------------------------===//
// Predictors
//===----------------------------------------------------------------------===//

TEST(PredictorTest, StaticPredictorsNeverLearn) {
  StaticPredictor T(true), N(false);
  for (int I = 0; I != 10; ++I) {
    T.update(1, false);
    N.update(1, true);
  }
  EXPECT_TRUE(T.predict(1));
  EXPECT_FALSE(N.predict(1));
}

TEST(PredictorTest, BimodalLearnsABiasedBranch) {
  BimodalPredictor P;
  for (int I = 0; I != 8; ++I)
    P.update(7, true);
  EXPECT_TRUE(P.predict(7));
  for (int I = 0; I != 8; ++I)
    P.update(7, false);
  EXPECT_FALSE(P.predict(7));
}

TEST(PredictorTest, BimodalHysteresis) {
  BimodalPredictor P;
  for (int I = 0; I != 8; ++I)
    P.update(3, true);
  P.update(3, false); // One blip must not flip a saturated counter.
  EXPECT_TRUE(P.predict(3));
}

TEST(PredictorTest, GShareLearnsAlternation) {
  GSharePredictor P;
  // Strict alternation is history-predictable.
  bool Dir = false;
  for (int I = 0; I != 400; ++I) {
    P.update(11, Dir);
    Dir = !Dir;
  }
  int Correct = 0;
  for (int I = 0; I != 100; ++I) {
    if (P.predict(11) == Dir)
      ++Correct;
    P.update(11, Dir);
    Dir = !Dir;
  }
  EXPECT_GT(Correct, 90);
}

TEST(PredictorTest, PerceptronLearnsCorrelation) {
  PerceptronPredictor P;
  // Outcome equals the branch outcome two steps ago.
  std::vector<bool> History{true, false};
  for (int I = 0; I != 600; ++I) {
    bool Out = History[History.size() - 2];
    P.update(5, Out);
    History.push_back(Out);
  }
  int Correct = 0;
  for (int I = 0; I != 100; ++I) {
    bool Out = History[History.size() - 2];
    if (P.predict(5) == Out)
      ++Correct;
    P.update(5, Out);
    History.push_back(Out);
  }
  EXPECT_GT(Correct, 85);
}

TEST(PredictorTest, ResetClearsLearnedState) {
  BimodalPredictor P;
  for (int I = 0; I != 8; ++I)
    P.update(9, true);
  P.reset();
  // Back to the weakly-not-taken initialization.
  EXPECT_FALSE(P.predict(9));
}

TEST(PredictorTest, StandardZooHasFiveModels) {
  auto Zoo = makeStandardPredictors();
  EXPECT_EQ(Zoo.size(), 5u);
  std::set<std::string> Names;
  for (auto &P : Zoo)
    Names.insert(P->name());
  EXPECT_EQ(Names.size(), 5u);
}

//===----------------------------------------------------------------------===//
// Window calibration
//===----------------------------------------------------------------------===//

TEST(CalibrationTest, PaperWindowsFromDefaults) {
  SpeculationWindows W = calibrateWindows(TimingModel{});
  EXPECT_EQ(W.OnHit, 20u);
  EXPECT_EQ(W.OnMiss, 200u);
}

TEST(CalibrationTest, ScalesWithIssueWidth) {
  TimingModel T;
  T.IssueWidth = 4;
  SpeculationWindows W = calibrateWindows(T);
  EXPECT_EQ(W.OnHit, 40u);
  EXPECT_EQ(W.OnMiss, 400u);
}

//===----------------------------------------------------------------------===//
// Speculative CPU
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

TEST(SpeculativeCpuTest, FunctionalResultUnaffectedBySpeculation) {
  auto CP = compile("int c; int x; int main() { x = 0; "
                    "if (c) { x = x + 5; } else { x = x + 9; } return x; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  for (bool Spec : {false, true}) {
    for (int64_t C : {0, 1}) {
      StaticPredictor P(C == 0); // Always mispredicts.
      SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{}, Spec);
      Cpu.machine().setMemory(CP->P->findVar("c"), 0, C);
      CpuRunStats S = Cpu.run();
      ASSERT_TRUE(S.Completed);
      // Speculation is transparent to the architectural result.
      EXPECT_EQ(S.ReturnValue, C ? 5 : 9);
    }
  }
}

TEST(SpeculativeCpuTest, MispredictionPollutesTheCache) {
  auto CP = compile("int c; char a[64]; char b[64]; int main() { reg int t; "
                    "if (c) { t = a[0]; } else { t = b[0]; } return t; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  StaticPredictor Wrong(true); // c == 0: fall-through actual.
  SpeculativeCpu Cpu(*CP->P, MM, Wrong);
  CpuRunStats S = Cpu.run();
  EXPECT_EQ(S.Mispredicts, 1u);
  // Both a (speculative) and b (architectural) are resident afterwards.
  EXPECT_TRUE(Cpu.cache().contains(MM.blockOf(CP->P->findVar("a"), 0)));
  EXPECT_TRUE(Cpu.cache().contains(MM.blockOf(CP->P->findVar("b"), 0)));
  EXPECT_EQ(S.SpecAccesses, 1u);
}

TEST(SpeculativeCpuTest, CorrectPredictionDoesNotSpeculate) {
  auto CP = compile("int c; char a[64]; char b[64]; int main() { reg int t; "
                    "if (c) { t = a[0]; } else { t = b[0]; } return t; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  StaticPredictor Right(false);
  SpeculativeCpu Cpu(*CP->P, MM, Right);
  CpuRunStats S = Cpu.run();
  EXPECT_EQ(S.Mispredicts, 0u);
  EXPECT_EQ(S.SpecAccesses, 0u);
  EXPECT_FALSE(Cpu.cache().contains(MM.blockOf(CP->P->findVar("a"), 0)));
}

TEST(SpeculativeCpuTest, SpeculativeStoresNeverCommit) {
  auto CP = compile("int c; int x; int main() { "
                    "if (c) { x = 42; } return x; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  StaticPredictor Wrong(true); // Speculates the then-side (x = 42).
  SpeculativeCpu Cpu(*CP->P, MM, Wrong);
  CpuRunStats S = Cpu.run();
  ASSERT_EQ(S.Mispredicts, 1u);
  EXPECT_EQ(S.ReturnValue, 0); // The squashed store must not be visible.
}

TEST(SpeculativeCpuTest, WindowBoundsSpeculativeWork) {
  auto CP = compile("int c; char a[640]; int main() { reg int t; t = 0; "
                    "if (c) { for (reg int i = 0; i < 640; i += 64) "
                    "t = t + a[i]; } return t; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(64));
  StaticPredictor Wrong(true);
  SpeculativeCpu Cpu(*CP->P, MM, Wrong);
  Cpu.setWindows({6, 6}); // Covers about two unrolled loads.
  CpuRunStats S = Cpu.run();
  EXPECT_LE(S.SpecAccesses, 3u);
  EXPECT_GE(S.SpecAccesses, 1u);
}

TEST(SpeculativeCpuTest, SpeculationStopConfinesTheWindow) {
  auto CP = compile("int c; char a[64]; char z[64]; int main() { reg int t; "
                    "if (c) { t = a[0]; } else { t = 0; } "
                    "t = t + z[0]; return t; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  // Unconfined: the wrong path runs past the join and touches z.
  {
    StaticPredictor Wrong(true);
    SpeculativeCpu Cpu(*CP->P, MM, Wrong);
    CpuRunStats S = Cpu.run();
    EXPECT_GE(S.SpecAccesses, 2u);
  }
  // Confined at the reconvergence: only the then-side access happens.
  {
    StaticPredictor Wrong(true);
    SpeculativeCpu Cpu(*CP->P, MM, Wrong);
    ASSERT_EQ(CP->Plan.siteCount(), 1u);
    const SpecSite &Site = CP->Plan.sites().front();
    Cpu.setSpeculationStop(CP->G.blockOf(Site.Branch),
                           CP->G.instIndexOf(Site.Branch),
                           CP->G.blockOf(Site.Ipdom));
    CpuRunStats S = Cpu.run();
    EXPECT_EQ(S.SpecAccesses, 1u);
  }
}

TEST(SpeculativeCpuTest, CycleAccountingChargesMisses) {
  auto CP = compile("char a[64]; int main() { reg int t; t = a[0]; "
                    "t = t + a[0]; return t; }");
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));
  StaticPredictor P(false);
  TimingModel TM;
  SpeculativeCpu Cpu(*CP->P, MM, P, TM, false);
  CpuRunStats S = Cpu.run();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  // One miss + one hit + ALU work.
  EXPECT_GE(S.Cycles, TM.MissLatency + TM.HitLatency);
}
