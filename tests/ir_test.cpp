//===- ir_test.cpp - Lowering, verifier, and interpreter tests ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"
#include "ir/Lowering.h"
#include "ir/Verifier.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::optional<Program> lower(const std::string &Source,
                             const std::string &Entry = "main",
                             LoweringOptions Extra = {}) {
  DiagnosticEngine Diags;
  AstContext Context;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Context, Diags);
  TranslationUnit Unit = P.parseTranslationUnit();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Sema S(Diags);
  EXPECT_TRUE(S.run(Unit)) << Diags.str();
  Extra.EntryFunction = Entry;
  auto Prog = lowerProgram(Unit, Extra, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.str();
  if (Prog) {
    EXPECT_TRUE(verifyProgram(*Prog).empty());
  }
  return Prog;
}

/// Runs the program to completion and returns its value.
int64_t runProgram(const Program &P) {
  Machine M(P);
  M.run(10'000'000);
  EXPECT_TRUE(M.halted());
  return M.returnValue();
}

/// Counts instructions of an opcode.
size_t countOps(const Program &P, Opcode Op) {
  size_t N = 0;
  for (const BasicBlock &B : P.Blocks)
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lowering structure
//===----------------------------------------------------------------------===//

TEST(LoweringTest, MemoryScalarsLoadOnUseStoreOnDef) {
  auto P = lower("int x; int main() { x = 1; return x + x; }");
  // One store for the def, two loads for the uses.
  EXPECT_EQ(countOps(*P, Opcode::Store), 1u);
  EXPECT_EQ(countOps(*P, Opcode::Load), 2u);
}

TEST(LoweringTest, RegVariablesAreInvisible) {
  auto P = lower("int main() { reg int x; x = 1; return x + x; }");
  EXPECT_EQ(countOps(*P, Opcode::Load), 0u);
  EXPECT_EQ(countOps(*P, Opcode::Store), 0u);
}

TEST(LoweringTest, CountedRegLoopFullyUnrolls) {
  auto P = lower("char a[640]; int main() { reg int t; "
                 "for (reg int i = 0; i < 640; i += 64) t = a[i]; "
                 "return t; }");
  // Ten unrolled constant-index loads, no branch left.
  EXPECT_EQ(countOps(*P, Opcode::Load), 10u);
  EXPECT_EQ(countOps(*P, Opcode::Br), 0u);
}

TEST(LoweringTest, UnrolledMemoryInductionKeepsStores) {
  auto P = lower("char a[256]; int i; int main() { reg int t; "
                 "for (i = 0; i < 4; i++) t = a[i]; return t; }");
  // Unrolled (no break, constant bounds), but i is memory resident: the
  // per-iteration store is preserved so i's cache footprint stays real:
  // 4 iteration stores + 1 final store.
  EXPECT_EQ(countOps(*P, Opcode::Br), 0u);
  EXPECT_EQ(countOps(*P, Opcode::Store), 5u);
  EXPECT_EQ(countOps(*P, Opcode::Load), 4u);
}

TEST(LoweringTest, LoopWithBreakIsNotUnrolled) {
  auto P = lower("int lev[30]; int x; int main() { int m; "
                 "for (m = 0; m < 30; m++) { if (lev[m] > x) break; } "
                 "return m; }");
  // Still a loop: conditional branches remain.
  EXPECT_GT(countOps(*P, Opcode::Br), 0u);
}

TEST(LoweringTest, DataDependentLoopIsNotUnrolled) {
  auto P = lower("int n; int main() { reg int t; t = 0; "
                 "for (reg int i = 0; i < n; i++) t = t + 1; return t; }");
  EXPECT_GT(countOps(*P, Opcode::Br), 0u);
}

TEST(LoweringTest, UnrollRespectsIterationCap) {
  LoweringOptions Opts;
  Opts.MaxUnrollIterations = 8;
  auto P = lower("char a[2048]; int main() { reg int t; "
                 "for (reg int i = 0; i < 2048; i += 64) t = a[i]; "
                 "return t; }",
                 "main", Opts);
  // 32 iterations exceed the cap of 8: the loop must remain.
  EXPECT_GT(countOps(*P, Opcode::Br), 0u);
}

TEST(LoweringTest, ConstantConditionFoldsAwayBranch) {
  auto P = lower("char a[64]; char b[64]; int main() { reg int t; "
                 "if (1 < 2) { t = a[0]; } else { t = b[0]; } return t; }");
  EXPECT_EQ(countOps(*P, Opcode::Br), 0u);
  EXPECT_EQ(countOps(*P, Opcode::Load), 1u);
  // The untaken side's load must not exist anywhere.
  bool SeesB = false;
  for (const BasicBlock &B : P->Blocks)
    for (const Instruction &I : B.Insts)
      if (I.accessesMemory() && P->Vars[I.Var].Name == "b")
        SeesB = true;
  EXPECT_FALSE(SeesB);
}

TEST(LoweringTest, CallsAreInlined) {
  auto P = lower("int sq(int x) { return x * x; } "
                 "int main() { return sq(3) + sq(4); }");
  // No call instruction exists in the IR at all; correctness via execution.
  EXPECT_EQ(runProgram(*P), 25);
}

TEST(LoweringTest, ShortCircuitSkipsRhsLoadsWhenFolded) {
  auto P = lower("char a[64]; int main() { reg int t; "
                 "t = 0 && a[0]; return t; }");
  EXPECT_EQ(countOps(*P, Opcode::Load), 0u);
}

TEST(LoweringTest, ShortCircuitEmitsBranchWhenDynamic) {
  auto P = lower("int x; char a[64]; int main() { reg int t; "
                 "t = x && a[0]; return t; }");
  EXPECT_GT(countOps(*P, Opcode::Br), 0u);
}

TEST(LoweringTest, RegGlobalsRecorded) {
  auto P = lower("secret reg char k; int main() { return k; }");
  ASSERT_EQ(P->RegGlobals.size(), 1u);
  EXPECT_EQ(P->RegGlobals[0].Name, "k");
  EXPECT_TRUE(P->RegGlobals[0].IsSecret);
}

TEST(LoweringTest, GlobalInitializersMaterialize) {
  auto P = lower("int t[4] = {10, 20, 30}; int main() { return t[1]; }");
  VarId V = P->findVar("t");
  ASSERT_NE(V, InvalidVar);
  EXPECT_TRUE(P->Vars[V].HasInit);
  ASSERT_EQ(P->Vars[V].Init.size(), 3u);
  EXPECT_EQ(P->Vars[V].Init[1], 20);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(VerifierTest, DetectsMissingTerminator) {
  Program P;
  P.NumRegs = 1;
  BasicBlock B;
  Instruction Mov;
  Mov.Op = Opcode::Mov;
  Mov.Dst = 0;
  Mov.A = Operand::imm(1);
  B.Insts.push_back(Mov);
  P.Blocks.push_back(B);
  EXPECT_FALSE(verifyProgram(P).empty());
}

TEST(VerifierTest, DetectsBadBranchTarget) {
  Program P;
  P.NumRegs = 1;
  BasicBlock B;
  Instruction Br;
  Br.Op = Opcode::Br;
  Br.A = Operand::reg(0);
  Br.TrueTarget = 5;
  Br.FalseTarget = 0;
  B.Insts.push_back(Br);
  P.Blocks.push_back(B);
  EXPECT_FALSE(verifyProgram(P).empty());
}

TEST(VerifierTest, DetectsScalarAccessWithIndex) {
  Program P;
  P.NumRegs = 1;
  MemVar V;
  V.Name = "x";
  V.ElemSize = 4;
  V.NumElements = 1;
  P.Vars.push_back(V);
  BasicBlock B;
  Instruction Load;
  Load.Op = Opcode::Load;
  Load.Dst = 0;
  Load.Var = 0;
  Load.Index = Operand::imm(0); // Scalars must not carry an index.
  B.Insts.push_back(Load);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  B.Insts.push_back(Ret);
  P.Blocks.push_back(B);
  EXPECT_FALSE(verifyProgram(P).empty());
}

//===----------------------------------------------------------------------===//
// Interpreter semantics
//===----------------------------------------------------------------------===//

TEST(InterpTest, ArithmeticSemantics) {
  auto P = lower("int main() { reg int x; x = 7; "
                 "return (x * 3 - 1) % 5 + (x << 2) + (x >> 1) + (x & 3) + "
                 "(x | 8) + (x ^ 2); }");
  // 20 % 5 = 0; 28; 3; 3; 15; 5 => 54.
  EXPECT_EQ(runProgram(*P), 54);
}

TEST(InterpTest, DivisionTotalSemantics) {
  EXPECT_EQ(evalIrBinOp(IrBinOp::Div, 5, 0), 0);
  EXPECT_EQ(evalIrBinOp(IrBinOp::Rem, 5, 0), 0);
  EXPECT_EQ(evalIrBinOp(IrBinOp::Div, std::numeric_limits<int64_t>::min(),
                        -1),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(evalIrBinOp(IrBinOp::Shl, 1, 100), 1LL << 36); // Masked to 36.
}

TEST(InterpTest, QuantlComputesPaperValues) {
  DiagnosticEngine Diags;
  AstContext Context;
  std::string Source =
      "int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,53,52,51,50,49,48,"
      "47,46,45,44,43,42,41,40,39,38,37,36,35,34,33,32,32 };\n"
      "int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,25,24,23,22,21,20,"
      "19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,4 };\n"
      "int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,"
      "3376,3784,4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,10712,"
      "11664,12896,14120,15840,17560,20456,23352,32767 };\n"
      "long my_abs(long x) { if (x < 0) { return 0 - x; } return x; }\n"
      "int quantl(int el, int detl) {\n"
      "  int ril, mil; long wd, decis;\n"
      "  wd = my_abs(el);\n"
      "  for (mil = 0; mil < 30; mil++) {\n"
      "    decis = (decis_levl[mil] * (long)detl) >> 15;\n"
      "    if (wd <= decis) break;\n"
      "  }\n"
      "  if (el >= 0) { ril = quant26bt_pos[mil]; }\n"
      "  else { ril = quant26bt_neg[mil]; }\n"
      "  return ril;\n"
      "}\n";
  auto P = lower(Source, "quantl");
  ASSERT_TRUE(P);
  // quantl(0, 32768): wd=0 <= decis at mil=0 => pos[0] = 61.
  Machine M(*P);
  M.setMemory(P->findVar("quantl.el"), 0, 0);
  M.setMemory(P->findVar("quantl.detl"), 0, 32768);
  M.run(1'000'000);
  EXPECT_EQ(M.returnValue(), 61);

  // quantl(-100000, 32768): wd too big for all levels => mil=30, neg[30]=4.
  Machine M2(*P);
  M2.setMemory(P->findVar("quantl.el"), 0, -100000);
  M2.setMemory(P->findVar("quantl.detl"), 0, 32768);
  M2.run(1'000'000);
  EXPECT_EQ(M2.returnValue(), 4);
}

TEST(InterpTest, IndexWrapsModuloLength) {
  auto P = lower("int a[4]; int main(int i) { a[1] = 42; return a[i]; }");
  Machine M(*P);
  M.setMemory(P->findVar("main.i"), 0, 5); // 5 mod 4 == 1.
  M.run(1000);
  EXPECT_EQ(M.returnValue(), 42);
}

TEST(InterpTest, TraceRecordsAccesses) {
  auto P = lower("int x; int main() { x = 1; return x; }");
  Machine M(*P);
  std::vector<AccessEvent> Trace;
  M.run(1000, &Trace);
  ASSERT_EQ(Trace.size(), 2u);
  EXPECT_FALSE(Trace[0].IsLoad);
  EXPECT_TRUE(Trace[1].IsLoad);
}

TEST(InterpTest, SuppressedStoresDoNotCommit) {
  auto P = lower("int x; int main() { x = 5; return x; }");
  Machine M(*P);
  M.setSuppressStores(true);
  M.run(1000);
  EXPECT_EQ(M.returnValue(), 0); // Store was buffered away.
}

TEST(InterpTest, CheckpointRestoresRegistersAndPc) {
  auto P = lower("int main() { reg int x; x = 1; x = 2; return x; }");
  Machine M(*P);
  Machine::Checkpoint C = M.checkpoint();
  M.run(1000);
  EXPECT_TRUE(M.halted());
  M.restore(C);
  EXPECT_FALSE(M.halted());
  M.run(1000);
  EXPECT_EQ(M.returnValue(), 2);
}

TEST(InterpTest, DoWhileExecutesBodyAtLeastOnce) {
  auto P = lower("int main() { reg int i; i = 10; reg int n; n = 0; "
                 "do { n = n + 1; i = i + 1; } while (i < 5); return n; }");
  EXPECT_EQ(runProgram(*P), 1);
}

TEST(InterpTest, TernaryAndShortCircuit) {
  auto P = lower("int x; int main() { x = 3; "
                 "return (x > 2 ? 10 : 20) + (x == 3 && x < 5 ? 1 : 0) + "
                 "(x < 0 || x > 2 ? 100 : 0); }");
  EXPECT_EQ(runProgram(*P), 111);
}
