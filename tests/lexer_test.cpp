//===- lexer_test.cpp - Unit tests for the mini-C lexer -------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::vector<Token> lex(const std::string &Source, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Out;
  for (const Token &T : Tokens)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lex("int foo secret reg register while");
  auto K = kinds(Tokens);
  std::vector<TokenKind> Expected = {
      TokenKind::KwInt,    TokenKind::Identifier, TokenKind::KwSecret,
      TokenKind::KwReg,    TokenKind::KwReg,      TokenKind::KwWhile,
      TokenKind::Eof};
  EXPECT_EQ(K, Expected);
  EXPECT_EQ(Tokens[1].Text, "foo");
}

TEST(LexerTest, DecimalAndHexLiterals) {
  auto Tokens = lex("42 0x2A 0XFF 15L 7u");
  ASSERT_GE(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 255);
  EXPECT_EQ(Tokens[3].IntValue, 15); // L suffix consumed.
  EXPECT_EQ(Tokens[4].IntValue, 7);  // u suffix consumed.
}

TEST(LexerTest, CharacterLiterals) {
  auto Tokens = lex("'a' '\\n' '\\0'");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
}

TEST(LexerTest, CompoundOperators) {
  auto K = kinds(lex("<<= >>= ++ -- <= >= == != && || += -="));
  std::vector<TokenKind> Expected = {
      TokenKind::LessLessEqual, TokenKind::GreaterGreaterEqual,
      TokenKind::PlusPlus,      TokenKind::MinusMinus,
      TokenKind::LessEqual,     TokenKind::GreaterEqual,
      TokenKind::EqualEqual,    TokenKind::BangEqual,
      TokenKind::AmpAmp,        TokenKind::PipePipe,
      TokenKind::PlusEqual,     TokenKind::MinusEqual,
      TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, ShiftVersusRelational) {
  auto K = kinds(lex("a << b < c >> d >"));
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::LessLess,       TokenKind::Identifier,
      TokenKind::Less,       TokenKind::Identifier,     TokenKind::GreaterGreater,
      TokenKind::Identifier, TokenKind::Greater,        TokenKind::Eof};
  EXPECT_EQ(K, Expected);
}

TEST(LexerTest, LineAndBlockComments) {
  auto Tokens = lex("a // comment with int keywords\nb /* multi\nline */ c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(LexerTest, TracksLineNumbers) {
  auto Tokens = lex("a\nb\n  c");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[2].Loc.Line, 3u);
  EXPECT_EQ(Tokens[2].Loc.Col, 3u);
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  lex("a /* never closed", /*ExpectErrors=*/true);
}

TEST(LexerTest, UnexpectedCharacterIsErrorButRecovers) {
  auto Tokens = lex("a @ b", /*ExpectErrors=*/true);
  // '@' skipped, both identifiers survive.
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, LexesFigure2Verbatim) {
  // The paper's Figure 2 style program should lex cleanly.
  auto Tokens = lex("char ph[64*510], l1[64], l2[64], p;\n"
                    "reg char k;\n"
                    "for(reg int i=0;i<64*510; i+=64) t = ph[i];");
  EXPECT_GT(Tokens.size(), 30u);
}
