//===- state_repr_test.cpp - Partitioned/COW state representation ---------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Pins the hot-path state representation introduced with the per-set
/// partitioning rework: structural hashing consistent with equality,
/// copy-on-write aliasing and unshare-on-mutate semantics, canonical
/// (block-sorted) materialized entry views, the StateInterner pool, the
/// engines' Fifo/Rpo worklist equivalence on pure programs, and the
/// baseline engine's deduped-pop accounting. The 20-seed golden digests in
/// fuzz_regression_test.cpp separately pin that none of this moved any
/// analysis result.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/StateDigest.h"
#include "support/Rng.h"
#include "support/StateInterner.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// A fixture program with N variables spanning two cache lines each, over
/// a set-associative cache so states hold several partitions.
struct Blocks {
  Program P;
  std::unique_ptr<MemoryModel> MM;

  Blocks(unsigned NumVars, CacheConfig Config) {
    for (unsigned I = 0; I != NumVars; ++I) {
      MemVar V;
      V.Name = "v" + std::to_string(I);
      V.ElemSize = 1;
      V.NumElements = 128; // Two 64 B lines.
      P.Vars.push_back(V);
    }
    BasicBlock B;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    B.Insts.push_back(Ret);
    P.Blocks.push_back(B);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  BlockAddr block(unsigned Var, uint64_t Elem = 0) const {
    return MM->blockOf(Var, Elem);
  }
};

CacheAbsState randomState(Blocks &F, Rng &R, bool Shadow) {
  CacheAbsState S = CacheAbsState::empty();
  unsigned N = static_cast<unsigned>(R.nextBelow(16));
  for (unsigned I = 0; I != N; ++I)
    S.accessBlock(F.block(R.nextBelow(6), R.chance(1, 2) ? 0 : 64), *F.MM,
                  Shadow);
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hash/equality consistency
//===----------------------------------------------------------------------===//

class StateHashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StateHashTest, HashEqualityMatchesStructuralEquality) {
  // Equal states must hash equal; on randomized samples the 64-bit hash
  // never collides for unequal states, so hash equality and structural
  // equality coincide in both directions.
  Blocks F(6, CacheConfig::setAssociative(64, 8));
  Rng R(GetParam() * 7919 + 3);
  for (int I = 0; I != 60; ++I) {
    bool Shadow = R.chance(1, 2);
    CacheAbsState A = randomState(F, R, Shadow);
    CacheAbsState B = randomState(F, R, Shadow);
    EXPECT_EQ(A == B, A.structuralHash() == B.structuralHash());

    // An independently rebuilt copy (fresh payload, same accesses) is
    // structurally equal and must hash identically.
    CacheAbsState C = A;
    EXPECT_EQ(C.structuralHash(), A.structuralHash());
    EXPECT_EQ(C, A);
  }
}

TEST_P(StateHashTest, HashIsInvalidatedByMutation) {
  Blocks F(6, CacheConfig::setAssociative(64, 8));
  Rng R(GetParam() * 131 + 17);
  CacheAbsState A = randomState(F, R, true);
  uint64_t H0 = A.structuralHash();
  CacheAbsState B = A;
  B.accessBlock(F.block(5, 64), *F.MM, true);
  // The access is idempotent when the block already sat at age 1; hash
  // equality must track structural equality either way.
  EXPECT_EQ(B == A, B.structuralHash() == H0);
  EXPECT_EQ(A.structuralHash(), H0) << "mutating a copy must not disturb "
                                       "the original's cached hash";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateHashTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(StateHashTest, DistinguishedStatesHashApart) {
  EXPECT_NE(CacheAbsState::bottom().structuralHash(),
            CacheAbsState::empty().structuralHash());
  EXPECT_FALSE(CacheAbsState::bottom() == CacheAbsState::empty());
  EXPECT_EQ(CacheAbsState::empty(), CacheAbsState::empty());
}

//===----------------------------------------------------------------------===//
// Copy-on-write aliasing
//===----------------------------------------------------------------------===//

TEST(CowStateTest, CopyAliasesUntilMutation) {
  Blocks F(4, CacheConfig::fullyAssociative(8));
  CacheAbsState A = CacheAbsState::empty();
  A.accessBlock(F.block(0), *F.MM, true);
  A.accessBlock(F.block(1), *F.MM, true);

  CacheAbsState B = A;
  EXPECT_TRUE(B.sharesStorageWith(A)) << "copies must be refcount bumps";
  EXPECT_EQ(A, B);

  // Unshare on mutate: B forks, A keeps its exact contents and storage.
  B.accessBlock(F.block(2), *F.MM, true);
  EXPECT_FALSE(B.sharesStorageWith(A));
  EXPECT_EQ(A.mustAge(F.block(2), 8), 9u) << "original must be untouched";
  EXPECT_EQ(B.mustAge(F.block(2), 8), 1u);
}

TEST(CowStateTest, JoinIntoBottomSharesStorage) {
  // The engines' `slot ⊔= Out` with a bottom slot is the dominant copy
  // path; it must alias, not clone.
  Blocks F(4, CacheConfig::fullyAssociative(8));
  CacheAbsState A = CacheAbsState::empty();
  A.accessBlock(F.block(0), *F.MM, true);
  CacheAbsState Slot = CacheAbsState::bottom();
  EXPECT_TRUE(Slot.joinInto(A, true));
  EXPECT_TRUE(Slot.sharesStorageWith(A));
}

TEST(CowStateTest, SelfJoinAndSharedJoinAreNoChangeFastPaths) {
  Blocks F(4, CacheConfig::fullyAssociative(8));
  CacheAbsState A = CacheAbsState::empty();
  A.accessBlock(F.block(0), *F.MM, true);
  CacheAbsState B = A; // Shared payload.
  EXPECT_FALSE(A.joinInto(B, true));
  EXPECT_FALSE(A.joinInto(A, true));
  EXPECT_TRUE(A.sharesStorageWith(B)) << "no-change join must not unshare";
}

TEST(CowStateTest, EmptyAndBottomNeverReportSharing) {
  CacheAbsState E1 = CacheAbsState::empty(), E2 = CacheAbsState::empty();
  EXPECT_FALSE(E1.sharesStorageWith(E2));
  EXPECT_EQ(E1, E2);
}

//===----------------------------------------------------------------------===//
// Partitioned layout and canonical views
//===----------------------------------------------------------------------===//

TEST(PartitionTest, PartitionsAreCanonicalAndEntriesBlockSorted) {
  Blocks F(6, CacheConfig::setAssociative(64, 8));
  Rng R(42);
  for (int I = 0; I != 40; ++I) {
    CacheAbsState S = randomState(F, R, true);
    uint32_t LastSet = 0;
    bool FirstPart = true;
    size_t PartEntries = 0;
    for (const CacheSetPartition &Part : S.partitions()) {
      EXPECT_TRUE(FirstPart || Part.Set > LastSet)
          << "partitions must be strictly sorted by set";
      EXPECT_FALSE(Part.Must.empty() && Part.May.empty())
          << "canonical form forbids empty partitions";
      for (size_t K = 1; K < Part.Must.size(); ++K)
        EXPECT_LT(Part.Must[K - 1].Block, Part.Must[K].Block);
      for (size_t K = 1; K < Part.May.size(); ++K)
        EXPECT_LT(Part.May[K - 1].Block, Part.May[K].Block);
      for (const AgedBlock &E : Part.Must)
        EXPECT_EQ(F.MM->setOf(E.Block), Part.Set);
      LastSet = Part.Set;
      FirstPart = false;
      PartEntries += Part.Must.size() + Part.May.size();
    }
    // The canonical views agree with the partitions and are block-sorted.
    std::vector<AgedBlock> Must = S.mustEntries(), May = S.mayEntries();
    EXPECT_EQ(Must.size() + May.size(), PartEntries);
    for (size_t K = 1; K < Must.size(); ++K)
      EXPECT_LT(Must[K - 1].Block, Must[K].Block);
    for (const AgedBlock &E : Must)
      EXPECT_EQ(S.mustAge(E.Block, 8), E.Age);
    for (const AgedBlock &E : May)
      EXPECT_EQ(S.mayAge(E.Block, 8), E.Age);
  }
}

TEST(PartitionTest, SetAssociativeAgingIsConfinedToTheAccessedSet) {
  // 8 sets x 2 ways: filling one set must not age blocks of another.
  Blocks F(6, CacheConfig::setAssociative(16, 2));
  CacheAbsState S = CacheAbsState::empty();
  BlockAddr A = F.block(0, 0);
  S.accessBlock(A, *F.MM, false);
  uint32_t SetA = F.MM->setOf(A);
  // Access blocks of every other variable/line; only same-set ones age A.
  uint32_t Expected = 1;
  for (unsigned V = 1; V != 6; ++V)
    for (uint64_t Elem : {uint64_t(0), uint64_t(64)}) {
      BlockAddr B = F.block(V, Elem);
      if (B == A)
        continue;
      S.accessBlock(B, *F.MM, false);
      if (F.MM->setOf(B) == SetA && Expected <= 2)
        ++Expected;
    }
  EXPECT_EQ(S.mustAge(A, 2), std::min(Expected, 3u));
}

//===----------------------------------------------------------------------===//
// StateInterner
//===----------------------------------------------------------------------===//

TEST(StateInternerTest, InterningCanonicalizesEqualStates) {
  Blocks F(4, CacheConfig::fullyAssociative(8));
  StateInterner<CacheAbsState> Pool;

  auto Build = [&] {
    CacheAbsState S = CacheAbsState::empty();
    S.accessBlock(F.block(0), *F.MM, true);
    S.accessBlock(F.block(1), *F.MM, true);
    return S;
  };
  CacheAbsState A = Build();
  CacheAbsState B = Build(); // Equal, but a distinct payload.
  EXPECT_FALSE(A.sharesStorageWith(B));

  CacheAbsState CA = Pool.intern(A);
  CacheAbsState CB = Pool.intern(B);
  EXPECT_TRUE(CA.sharesStorageWith(CB))
      << "interning must collapse equal states onto one payload";
  EXPECT_EQ(CA, A);
  EXPECT_EQ(Pool.size(), 1u);
  EXPECT_EQ(Pool.hits(), 1u);
  EXPECT_EQ(Pool.misses(), 1u);

  CacheAbsState C = Build();
  C.accessBlock(F.block(2), *F.MM, true);
  Pool.intern(C);
  EXPECT_EQ(Pool.size(), 2u);
}

TEST(StateInternerTest, ClearResetsTheHitAndMissCounters) {
  // Regression: clear() used to empty the pool but keep the counters, so
  // a long-lived process (the specaid daemon) reusing one interner across
  // analyses reported totals accumulated over unrelated requests as if
  // they belonged to the current one.
  Blocks F(4, CacheConfig::fullyAssociative(8));
  StateInterner<CacheAbsState> Pool;

  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, true);
  Pool.intern(S);
  Pool.intern(S);
  ASSERT_EQ(Pool.hits(), 1u);
  ASSERT_EQ(Pool.misses(), 1u);

  Pool.clear();
  EXPECT_EQ(Pool.size(), 0u);
  EXPECT_EQ(Pool.hits(), 0u);
  EXPECT_EQ(Pool.misses(), 0u);

  // And the pool still works after the reset.
  CacheAbsState Canon = Pool.intern(S);
  EXPECT_EQ(Canon, S);
  EXPECT_EQ(Pool.misses(), 1u);
  EXPECT_EQ(Pool.hits(), 0u);
}

//===----------------------------------------------------------------------===//
// Worklist orders: same fixpoints, fewer pops
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<CompiledProgram> compileOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Src, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

} // namespace

TEST(WorklistOrderTest, BaselineRpoMatchesFifoOnWorkloadsWithFewerPops) {
  // The acceptance property behind bench_table6_merging's report: on every
  // paper kernel the baseline engine reaches the identical fixpoint under
  // Rpo, never popping more than Fifo and strictly less in aggregate.
  uint64_t FifoPops = 0, RpoPops = 0;
  for (const Workload &W : wcetWorkloads()) {
    auto CP = compileOrDie(W.Source);
    ASSERT_TRUE(CP);
    MustHitOptions O;
    O.Speculative = false;
    O.Cache = CacheConfig::fullyAssociative(64);

    StatisticSet SF, SR;
    O.Order = WorklistOrder::Fifo;
    O.Stats = &SF;
    MustHitReport RF = runMustHitAnalysis(*CP, O);
    O.Order = WorklistOrder::Rpo;
    O.Stats = &SR;
    MustHitReport RR = runMustHitAnalysis(*CP, O);

    EXPECT_EQ(digestMustHitReport(*CP, RF), digestMustHitReport(*CP, RR))
        << "baseline fixpoint drifted between worklist orders on " << W.Name;
    EXPECT_LE(SR.get("worklist.pops"), SF.get("worklist.pops")) << W.Name;
    EXPECT_EQ(SF.get("worklist.pushes.deduped") +
                  SF.get("worklist.pops"),
              SF.get("worklist.pushes"))
        << "every push is either deduped or popped exactly once: " << W.Name;
    FifoPops += SF.get("worklist.pops");
    RpoPops += SR.get("worklist.pops");
  }
  EXPECT_LT(RpoPops, FifoPops)
      << "RPO must strictly reduce aggregate baseline pops";
}

TEST(WorklistOrderTest, SpeculativeOrdersAgreeOnPureTransferPrograms) {
  // Without unknown-index accesses every transfer is a pure function of
  // the state, the fixpoint is unique, and the speculative engine must
  // produce bit-identical reports under either pop order. (With wild
  // indexing the drain order picks different symbolic-instance sequences,
  // which is exactly why the engine defaults to the digest-stable Fifo.)
  ProgramGenOptions GO;
  GO.WildIndexing = false;
  GO.SecretData = false;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    ProgramGen Gen(Seed, GO);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP) << "seed " << Seed << "\n" << Diags.str();

    for (MergeStrategy S :
         {MergeStrategy::JustInTime, MergeStrategy::NoMerge}) {
      MustHitOptions O;
      O.Cache = CacheConfig::fullyAssociative(8);
      O.DepthMiss = 24;
      O.DepthHit = 6;
      O.Strategy = S;
      O.Order = WorklistOrder::Fifo;
      MustHitReport RF = runMustHitAnalysis(*CP, O);
      O.Order = WorklistOrder::Rpo;
      MustHitReport RR = runMustHitAnalysis(*CP, O);
      EXPECT_EQ(digestMustHitReport(*CP, RF), digestMustHitReport(*CP, RR))
          << "seed " << Seed << " strategy " << mergeStrategyName(S);
    }
  }
}

TEST(WorklistOrderTest, SpeculativeEngineReportsMemoAndInternerStats) {
  DiagnosticEngine Diags;
  LoweringOptions LO;
  LO.EntryFunction = "quantl";
  auto CP = compileSource(quantlSource(), Diags, LO);
  ASSERT_TRUE(CP) << Diags.str();
  MustHitOptions O;
  StatisticSet Stats;
  O.Stats = &Stats;
  MustHitReport R = runMustHitAnalysis(*CP, O);
  ASSERT_TRUE(R.Converged);
  EXPECT_GT(Stats.get("spec.worklist.pops"), 0u);
  EXPECT_GT(Stats.get("spec.memo.hits") + Stats.get("spec.memo.misses"), 0u);
  EXPECT_GT(Stats.get("spec.interner.states"), 0u);
}

TEST(WorklistOrderTest, PopAndDrainCountersAreIntraJobsInvariant) {
  // The intra-analysis pool batches only the *pure transfer computes* of a
  // drain (Phase A) and replays slots serially (Phase B), so not just the
  // fixpoint but the whole engine trace — worklist pops/pushes, memo
  // hits/misses, interner population — must be identical at any job
  // count. A counter drifting here means a pool worker took over a
  // decision (memo probe order, FIFO eviction, push dedup) that must stay
  // on the replay thread.
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    ProgramGen Gen(Seed);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    ASSERT_TRUE(CP) << "seed " << Seed << "\n" << Diags.str();

    static const char *Keys[] = {
        "worklist.pops",      "worklist.pushes", "worklist.pushes.deduped",
        "spec.worklist.pops", "spec.worklist.pushes",
        "spec.memo.hits",     "spec.memo.misses",
        "spec.interner.states"};

    uint64_t Baseline[sizeof(Keys) / sizeof(Keys[0])];
    uint64_t BaselineDigest = 0;
    for (unsigned Jobs : {1u, 2u, 8u}) {
      MustHitOptions O;
      O.Cache = CacheConfig::fullyAssociative(8);
      O.DepthMiss = 24;
      O.DepthHit = 6;
      O.IntraJobs = Jobs;
      StatisticSet Stats;
      O.Stats = &Stats;
      MustHitReport R = runMustHitAnalysis(*CP, O);
      ASSERT_TRUE(R.Converged);
      uint64_t Digest = digestMustHitReport(*CP, R);
      if (Jobs == 1) {
        BaselineDigest = Digest;
        for (size_t K = 0; K != sizeof(Keys) / sizeof(Keys[0]); ++K)
          Baseline[K] = Stats.get(Keys[K]);
        continue;
      }
      EXPECT_EQ(Digest, BaselineDigest)
          << "fixpoint drifted at intra-jobs=" << Jobs << " seed " << Seed;
      for (size_t K = 0; K != sizeof(Keys) / sizeof(Keys[0]); ++K)
        EXPECT_EQ(Stats.get(Keys[K]), Baseline[K])
            << Keys[K] << " drifted at intra-jobs=" << Jobs << " seed "
            << Seed;
    }
  }
}

//===----------------------------------------------------------------------===//
// Replacement-policy states reuse the same representation machinery
//===----------------------------------------------------------------------===//

class PolicyReprTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyReprTest, HashEqualityAndCowHoldUnderPolicyTransfers) {
  // The FIFO/PLRU lattices (docs/DOMAINS.md) ride on the identical
  // partitioned COW payloads, so hash<->equality consistency and
  // unshare-on-mutate must hold under their transfer rules too.
  CacheConfig Config =
      CacheConfig::setAssociative(64, 8).withPolicy(GetParam());
  Blocks F(6, Config);
  Rng R(0x9e1ull + static_cast<uint64_t>(GetParam()));
  for (unsigned Trial = 0; Trial != 32; ++Trial) {
    bool Shadow = R.chance(1, 2);
    CacheAbsState A = randomState(F, R, Shadow);
    CacheAbsState B = randomState(F, R, Shadow);
    EXPECT_EQ(A == B, A.structuralHash() == B.structuralHash());

    CacheAbsState Copy = A;
    if (!A.partitions().empty()) {
      EXPECT_TRUE(Copy.sharesStorageWith(A));
    }
    Copy.accessBlock(F.block(0), *F.MM, Shadow);
    if (!(Copy == A)) {
      EXPECT_FALSE(Copy.sharesStorageWith(A));
    }
    EXPECT_EQ(Copy == A, Copy.structuralHash() == A.structuralHash());
  }
}

TEST_P(PolicyReprTest, MaterializedEntryViewsStayBlockSorted) {
  CacheConfig Config =
      CacheConfig::setAssociative(64, 8).withPolicy(GetParam());
  Blocks F(6, Config);
  Rng R(0x77aull + static_cast<uint64_t>(GetParam()));
  CacheAbsState S = randomState(F, R, /*Shadow=*/true);
  auto Sorted = [](const std::vector<AgedBlock> &V) {
    for (size_t I = 1; I < V.size(); ++I)
      if (V[I - 1].Block >= V[I].Block)
        return false;
    return true;
  };
  EXPECT_TRUE(Sorted(S.mustEntries()));
  EXPECT_TRUE(Sorted(S.mayEntries()));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyReprTest,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::Fifo,
                                           ReplacementPolicy::Plru),
                         [](const ::testing::TestParamInfo<ReplacementPolicy>
                                &I) {
                           return replacementPolicyName(I.param);
                         });
