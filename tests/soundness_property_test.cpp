//===- soundness_property_test.cpp - Analysis vs concrete simulation ------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The paper's central claim is soundness: "all possible behaviors must be
/// considered". These property tests generate random mini-C programs and
/// check, against the concrete speculative CPU under every predictor and
/// several inputs:
///
///  - every access the *speculative* analysis classifies as a must-hit
///    hits in every concrete run (speculative windows confined to the
///    mispredicted side, matching the paper's virtual-control-flow model);
///  - the non-speculative analysis is sound for non-speculative runs;
///  - speculation never changes architectural results (simulator sanity).
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"
#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// Generates a random but well-formed mini-C program: a handful of small
/// global arrays and scalars (branch fodder), straight-line arithmetic,
/// nested memory-conditioned branches, and bounded counted loops.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Arrays.clear();
    Scalars.clear();
    Out.clear();
    unsigned NumArrays = 2 + R.nextBelow(3);
    for (unsigned I = 0; I != NumArrays; ++I) {
      unsigned Lines = 1 + R.nextBelow(4);
      Arrays.push_back({"arr" + std::to_string(I), Lines * 64});
      Out += "char " + Arrays.back().first + "[" +
             std::to_string(Arrays.back().second) + "];\n";
    }
    unsigned NumScalars = 2 + R.nextBelow(3);
    for (unsigned I = 0; I != NumScalars; ++I) {
      Scalars.push_back("s" + std::to_string(I));
      Out += "int " + Scalars.back() + ";\n";
    }
    Out += "int main() {\n  reg int t;\n  t = 0;\n";
    unsigned NumStmts = 3 + R.nextBelow(6);
    for (unsigned I = 0; I != NumStmts; ++I)
      emitStmt(2);
    Out += "  return t;\n}\n";
    return Out;
  }

  const std::vector<std::pair<std::string, unsigned>> &arrays() const {
    return Arrays;
  }
  const std::vector<std::string> &scalars() const { return Scalars; }

private:
  std::string randomExpr() {
    switch (R.nextBelow(4)) {
    case 0:
      return std::to_string(R.nextRange(0, 100));
    case 1:
      return Scalars[R.nextBelow(Scalars.size())];
    case 2: {
      const auto &A = Arrays[R.nextBelow(Arrays.size())];
      uint64_t Index = R.nextBelow(A.second);
      return A.first + "[" + std::to_string(Index) + "]";
    }
    default:
      return "(t & 255)";
    }
  }

  void emitStmt(unsigned Depth) {
    switch (R.nextBelow(Depth > 0 ? 5 : 3)) {
    case 0: // Accumulate.
      Out += "  t = t + " + randomExpr() + ";\n";
      return;
    case 1: { // Scalar store.
      Out += "  " + Scalars[R.nextBelow(Scalars.size())] + " = " +
             randomExpr() + ";\n";
      return;
    }
    case 2: { // Array store at a constant index.
      const auto &A = Arrays[R.nextBelow(Arrays.size())];
      Out += "  " + A.first + "[" + std::to_string(R.nextBelow(A.second)) +
             "] = " + randomExpr() + ";\n";
      return;
    }
    case 3: { // Memory-conditioned branch (a speculation site).
      Out += "  if (" + Scalars[R.nextBelow(Scalars.size())] + " > " +
             std::to_string(R.nextRange(-20, 20)) + ") {\n";
      emitStmt(Depth - 1);
      Out += "  } else {\n";
      emitStmt(Depth - 1);
      Out += "  }\n";
      return;
    }
    default: { // Small counted loop over an array (unrolled).
      const auto &A = Arrays[R.nextBelow(Arrays.size())];
      Out += "  for (reg int i" + std::to_string(LoopId) + " = 0; i" +
             std::to_string(LoopId) + " < " + std::to_string(A.second) +
             "; i" + std::to_string(LoopId) + " += 64) t = t + " + A.first +
             "[i" + std::to_string(LoopId) + "];\n";
      ++LoopId;
      return;
    }
    }
  }

  Rng R;
  std::vector<std::pair<std::string, unsigned>> Arrays;
  std::vector<std::string> Scalars;
  std::string Out;
  unsigned LoopId = 0;
};

struct NodeKey {
  BlockId Block;
  uint32_t Inst;
  bool operator<(const NodeKey &RHS) const {
    return Block != RHS.Block ? Block < RHS.Block : Inst < RHS.Inst;
  }
};

} // namespace

class SoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessTest, SpeculativeMustHitsAlwaysHitConcretely) {
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();

  CacheConfig Config = CacheConfig::fullyAssociative(8);
  MustHitOptions Opts;
  Opts.Cache = Config;
  Opts.Speculative = true;
  Opts.DepthMiss = 200;
  Opts.DepthHit = 200; // One windows setting for analysis and simulator.
  Opts.Bounding = BoundingMode::Fixed;
  MustHitReport Report = runMustHitAnalysis(*CP, Opts);
  ASSERT_TRUE(Report.Converged);

  MemoryModel MM(*CP->P, Config);
  Rng InputRng(GetParam() * 7919 + 1);

  for (auto &Predictor : makeStandardPredictors()) {
    for (int Round = 0; Round != 3; ++Round) {
      Predictor->reset();
      SpeculativeCpu Cpu(*CP->P, MM, *Predictor, TimingModel{},
                         /*EnableSpeculation=*/true);
      Cpu.setWindows({200, 200});
      // Confine windows to the mispredicted side, the paper's model.
      for (const SpecSite &Site : CP->Plan.sites()) {
        if (Site.Ipdom == InvalidNode)
          continue;
        Cpu.setSpeculationStop(CP->G.blockOf(Site.Branch),
                               CP->G.instIndexOf(Site.Branch),
                               CP->G.blockOf(Site.Ipdom));
      }
      for (const std::string &S : Gen.scalars()) {
        VarId V = CP->P->findVar(S);
        ASSERT_NE(V, InvalidVar);
        Cpu.machine().setMemory(V, 0, InputRng.nextRange(-30, 30));
      }
      CpuRunStats Stats = Cpu.run(2'000'000);
      ASSERT_TRUE(Stats.Completed);

      // Every committed access at a node the analysis claims must-hit
      // has to be a hit in this run.
      for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace()) {
        NodeId N = CP->G.nodeAt(A.Access.Block, A.Access.InstIndex);
        if (Report.MustHit[N]) {
          EXPECT_TRUE(A.Hit) << "predictor " << Predictor->name()
                             << " node " << N << " var "
                             << CP->P->Vars[A.Access.Var].Name;
        }
      }
    }
  }
}

TEST_P(SoundnessTest, NonSpeculativeAnalysisSoundForInOrderRuns) {
  ProgramGenerator Gen(GetParam() * 13 + 5);
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();

  CacheConfig Config = CacheConfig::fullyAssociative(8);
  MustHitOptions Opts;
  Opts.Cache = Config;
  Opts.Speculative = false;
  MustHitReport Report = runMustHitAnalysis(*CP, Opts);

  MemoryModel MM(*CP->P, Config);
  Rng InputRng(GetParam() * 104729 + 3);
  for (int Round = 0; Round != 5; ++Round) {
    StaticPredictor P(true);
    SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{},
                       /*EnableSpeculation=*/false);
    for (const std::string &S : Gen.scalars())
      Cpu.machine().setMemory(CP->P->findVar(S), 0,
                              InputRng.nextRange(-30, 30));
    CpuRunStats Stats = Cpu.run(2'000'000);
    ASSERT_TRUE(Stats.Completed);
    for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace()) {
      NodeId N = CP->G.nodeAt(A.Access.Block, A.Access.InstIndex);
      if (Report.MustHit[N]) {
        EXPECT_TRUE(A.Hit) << "node " << N;
      }
    }
  }
}

TEST_P(SoundnessTest, SpeculationIsArchitecturallyTransparent) {
  ProgramGenerator Gen(GetParam() * 29 + 11);
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();
  MemoryModel MM(*CP->P, CacheConfig::fullyAssociative(8));

  Rng InputRng(GetParam() + 77);
  std::vector<int64_t> Inputs;
  for (size_t I = 0; I != Gen.scalars().size(); ++I)
    Inputs.push_back(InputRng.nextRange(-30, 30));

  auto RunWith = [&](bool Spec, BranchPredictor &P) {
    SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{}, Spec);
    for (size_t I = 0; I != Gen.scalars().size(); ++I)
      Cpu.machine().setMemory(CP->P->findVar(Gen.scalars()[I]), 0,
                              Inputs[I]);
    CpuRunStats S = Cpu.run(2'000'000);
    EXPECT_TRUE(S.Completed);
    return S.ReturnValue;
  };

  StaticPredictor Ref(false);
  int64_t Expected = RunWith(false, Ref);
  for (auto &P : makeStandardPredictors()) {
    P->reset();
    EXPECT_EQ(RunWith(true, *P), Expected) << P->name();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SoundnessTest,
                         ::testing::Range<uint64_t>(1, 25));

/// The same speculative-soundness check across cache geometries: direct
/// mapped, 2/4-way set associative, and fully associative.
class GeometrySoundnessTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(GeometrySoundnessTest, SpeculativeMustHitsHoldPerGeometry) {
  auto [Seed, Ways] = GetParam();
  ProgramGenerator Gen(Seed * 1009 + Ways);
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  ASSERT_TRUE(CP) << Diags.str();

  CacheConfig Config = CacheConfig::setAssociative(8, Ways);
  MustHitOptions Opts;
  Opts.Cache = Config;
  Opts.Speculative = true;
  Opts.DepthMiss = 200;
  Opts.DepthHit = 200;
  Opts.Bounding = BoundingMode::Fixed;
  MustHitReport Report = runMustHitAnalysis(*CP, Opts);
  ASSERT_TRUE(Report.Converged);

  MemoryModel MM(*CP->P, Config);
  Rng InputRng(Seed * 31 + Ways);
  for (auto &Predictor : makeStandardPredictors()) {
    Predictor->reset();
    SpeculativeCpu Cpu(*CP->P, MM, *Predictor, TimingModel{}, true);
    Cpu.setWindows({200, 200});
    for (const SpecSite &Site : CP->Plan.sites()) {
      if (Site.Ipdom == InvalidNode)
        continue;
      Cpu.setSpeculationStop(CP->G.blockOf(Site.Branch),
                             CP->G.instIndexOf(Site.Branch),
                             CP->G.blockOf(Site.Ipdom));
    }
    for (const std::string &S : Gen.scalars())
      Cpu.machine().setMemory(CP->P->findVar(S), 0,
                              InputRng.nextRange(-30, 30));
    CpuRunStats Stats = Cpu.run(2'000'000);
    ASSERT_TRUE(Stats.Completed);
    for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace()) {
      NodeId N = CP->G.nodeAt(A.Access.Block, A.Access.InstIndex);
      if (Report.MustHit[N]) {
        EXPECT_TRUE(A.Hit) << Predictor->name() << " ways=" << Ways
                           << " node " << N;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySoundnessTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 9),
                       ::testing::Values(1u, 2u, 4u, 8u)));
