//===- repair_test.cpp - Mitigation synthesis on known-minimal fixtures ---===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Hand-built programs whose minimum-cost repair is known by construction
/// (docs/MITIGATION.md), pinning the synthesizer's search: a
/// speculation-only leak whose polluting load sits first in the window
/// (only a fence can kill it), one whose pollution sits deeper (a cost-0
/// depth clamp dominates the fence), and an architectural leak with no
/// speculation sites at all (hoisting the conflicting scalar is the whole
/// menu). Plus the two meta-properties the repair verb's consumers rely
/// on: idempotence — repairing a repaired program is a no-op — and
/// bit-identical results whatever the analysis parallelism.
///
//===----------------------------------------------------------------------===//

#include "repair/MitigationSynth.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

RepairOptions optionsWithLines(uint32_t Lines) {
  RepairOptions RO;
  RO.Analysis.Cache = CacheConfig::fullyAssociative(Lines);
  return RO;
}

/// Speculation-only leak, pollution at window depth 1. With 5 lines the
/// warm loop plus `mode` fill the cache and both architectural paths are
/// uniform (mode == 0 returns before the secret access; mode != 0 finds
/// the table resident). The mispredicted then-path's *first* instruction
/// is `load left[0]`, which evicts a table line — so no depth clamp
/// (floor 1: hardware always fetches something) can stop it. Only the
/// fence, which kills the window outright, repairs this program.
const char *FenceOnly = R"MC(
char table[256];
char left[64];
int mode;
secret reg char key;

int main() {
  reg int t;
  for (reg int i = 0; i < 256; i += 64)
    t = table[i];
  if (mode == 0) {
    return left[0];
  }
  t = table[key & 255];
  return t;
}
)MC";

/// Same shape, but the wrong path burns two register instructions before
/// its polluting load — a depth-1 clamp stops the load without costing a
/// committed cycle, dominating the fence.
const char *ClampBeatsFence = R"MC(
char table[256];
char left[64];
int mode;
reg int pub;
secret reg char key;

int main() {
  reg int t;
  for (reg int i = 0; i < 256; i += 64)
    t = table[i];
  if (mode == 0) {
    reg int y;
    y = pub + 1;
    y = y * 2;
    return left[y & 63];
  }
  t = table[key & 255];
  return t;
}
)MC";

/// No branches, so no speculation sites, so no clamp or fence candidates:
/// the architectural `load mode` evicts a warm table line out of the
/// 4-line cache and the secret-indexed access leaks. Hoisting `mode` to a
/// register global removes the eviction (and a load, so the repair's WCET
/// *drops*).
const char *HoistOnly = R"MC(
char table[256];
int mode;
secret reg char key;

int main() {
  reg int t;
  for (reg int i = 0; i < 256; i += 64)
    t = table[i];
  t = t + mode;
  return t + table[key & 255];
}
)MC";

} // namespace

TEST(RepairTest, SingleFenceIsTheMinimalFix) {
  auto CP = compile(FenceOnly);
  RepairResult Res = synthesizeRepairs(*CP, optionsWithLines(5));
  ASSERT_TRUE(Res.Error.empty()) << Res.Error;
  EXPECT_TRUE(Res.Repaired);
  EXPECT_EQ(Res.LeaksBefore, 1u);
  EXPECT_EQ(Res.LeaksAfter, 0u);
  EXPECT_EQ(Res.SpecOnlyLeaksBefore, 1u);
  ASSERT_EQ(Res.Applied.size(), 1u);
  EXPECT_EQ(Res.Applied[0].Kind, MitigationKind::Fence);
  EXPECT_EQ(Res.totalCost(), 0u);
  EXPECT_TRUE(Res.UsedExactSearch);
  // The fence is really in the emitted program.
  EXPECT_NE(Res.Patched.str().find("fence"), std::string::npos)
      << Res.Patched.str();
  // And no clamp rode along: the fix is purely textual.
  for (uint32_t Clamp : Res.SiteClamps)
    EXPECT_EQ(Clamp, UINT32_MAX);
}

TEST(RepairTest, ClampBeatsFenceWhenPollutionSitsDeeperInTheWindow) {
  auto CP = compile(ClampBeatsFence);
  RepairResult Res = synthesizeRepairs(*CP, optionsWithLines(5));
  ASSERT_TRUE(Res.Error.empty()) << Res.Error;
  EXPECT_TRUE(Res.Repaired);
  EXPECT_EQ(Res.LeaksBefore, 1u);
  EXPECT_EQ(Res.LeaksAfter, 0u);
  ASSERT_EQ(Res.Applied.size(), 1u);
  EXPECT_EQ(Res.Applied[0].Kind, MitigationKind::Clamp);
  EXPECT_EQ(Res.Applied[0].Depth, 1u);
  EXPECT_EQ(Res.totalCost(), 0u);
  // A clamp is pure metadata: the program text must be untouched, and the
  // clamp must be visible in the emitted per-site table instead.
  EXPECT_EQ(Res.Patched.str(), CP->P->str());
  ASSERT_GT(Res.SiteClamps.size(), Res.Applied[0].Site);
  EXPECT_EQ(Res.SiteClamps[Res.Applied[0].Site], 1u);
}

TEST(RepairTest, HoistIsTheWholeMenuWithoutSpeculationSites) {
  auto CP = compile(HoistOnly);
  RepairResult Res = synthesizeRepairs(*CP, optionsWithLines(4));
  ASSERT_TRUE(Res.Error.empty()) << Res.Error;
  EXPECT_TRUE(Res.Repaired);
  EXPECT_EQ(Res.LeaksBefore, 1u);
  EXPECT_EQ(Res.SpecOnlyLeaksBefore, 0u) << "this leak is architectural";
  ASSERT_EQ(Res.Applied.size(), 1u);
  EXPECT_EQ(Res.Applied[0].Kind, MitigationKind::Hoist);
  EXPECT_EQ(CP->P->Vars[Res.Applied[0].Var].Name, "mode");
  // Hoisting removes a memory access outright, so the repaired program's
  // WCET improves — the one menu entry whose "cost" is a saving.
  EXPECT_LT(Res.WcetAfter, Res.WcetBefore);
  // The hoisted scalar now lives in a register global, secrecy preserved
  // (mode is public, so no new secret seed).
  bool Found = false;
  for (const RegGlobal &RG : Res.Patched.RegGlobals)
    if (RG.Name == "mode") {
      Found = true;
      EXPECT_FALSE(RG.IsSecret);
    }
  EXPECT_TRUE(Found) << Res.Patched.str();
}

TEST(RepairTest, CleanProgramsAreVacuouslyRepairedUnchanged) {
  auto CP = compile(HoistOnly);
  // At 6 lines everything fits: no leak, nothing to do.
  RepairResult Res = synthesizeRepairs(*CP, optionsWithLines(6));
  ASSERT_TRUE(Res.Error.empty()) << Res.Error;
  EXPECT_TRUE(Res.Repaired);
  EXPECT_EQ(Res.LeaksBefore, 0u);
  EXPECT_TRUE(Res.Applied.empty());
  EXPECT_EQ(Res.Patched.str(), CP->P->str());
}

TEST(RepairTest, RepairingARepairedProgramIsANoOp) {
  // Textual repairs (fence, hoist) leave a program the synthesizer must
  // find nothing wrong with on a second pass — same analysis options,
  // zero leaks, zero mitigations, bit-identical emitted text.
  struct Fixture {
    const char *Source;
    uint32_t Lines;
  } Fixtures[] = {{FenceOnly, 5}, {HoistOnly, 4}};
  for (const Fixture &F : Fixtures) {
    auto CP = compile(F.Source);
    RepairOptions RO = optionsWithLines(F.Lines);
    RepairResult First = synthesizeRepairs(*CP, RO);
    ASSERT_TRUE(First.Repaired) << F.Source;
    ASSERT_FALSE(First.Applied.empty());

    auto Patched = compileProgram(First.Patched);
    ASSERT_TRUE(Patched);
    RepairResult Second = synthesizeRepairs(*Patched, RO);
    ASSERT_TRUE(Second.Error.empty()) << Second.Error;
    EXPECT_TRUE(Second.Repaired);
    EXPECT_EQ(Second.LeaksBefore, 0u)
        << "the first repair's proof must survive a fresh analysis";
    EXPECT_TRUE(Second.Applied.empty());
    EXPECT_EQ(Second.Patched.str(), First.Patched.str());
    EXPECT_EQ(Second.WcetBefore, First.WcetAfter)
        << "the second pass re-derives the first pass's bound";
  }
}

TEST(RepairTest, ResultsAreIdenticalAcrossAnalysisParallelism) {
  // The service caches repair verdicts by request digest, so a daemon
  // running --intra-jobs 8 must synthesize the byte-identical repair a
  // single-threaded run would (the same determinism contract the analyze
  // verb keeps).
  for (const char *Source : {FenceOnly, ClampBeatsFence, HoistOnly}) {
    auto CP = compile(Source);
    RepairOptions Base = optionsWithLines(5);
    RepairResult Want = synthesizeRepairs(*CP, Base);
    for (unsigned Jobs : {2u, 8u}) {
      RepairOptions RO = Base;
      RO.Analysis.IntraJobs = Jobs;
      RepairResult Got = synthesizeRepairs(*CP, RO);
      EXPECT_EQ(Got.Repaired, Want.Repaired) << Jobs;
      EXPECT_EQ(Got.LeaksBefore, Want.LeaksBefore) << Jobs;
      EXPECT_EQ(Got.LeaksAfter, Want.LeaksAfter) << Jobs;
      EXPECT_EQ(Got.WcetBefore, Want.WcetBefore) << Jobs;
      EXPECT_EQ(Got.WcetAfter, Want.WcetAfter) << Jobs;
      EXPECT_EQ(Got.Reanalyses, Want.Reanalyses) << Jobs;
      EXPECT_EQ(Got.SiteClamps, Want.SiteClamps) << Jobs;
      EXPECT_EQ(Got.Patched.str(), Want.Patched.str()) << Jobs;
      ASSERT_EQ(Got.Applied.size(), Want.Applied.size()) << Jobs;
      for (size_t I = 0; I != Got.Applied.size(); ++I)
        EXPECT_EQ(Got.Applied[I].str(Got.Patched),
                  Want.Applied[I].str(Want.Patched))
            << Jobs;
    }
  }
}
