//===- policy_domain_test.cpp - Replacement-policy lattices ---------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The replacement-policy generalization (docs/DOMAINS.md): the concrete
/// FIFO and tree-PLRU simulators, the per-policy abstract transfer rules
/// (FIFO no-rejuvenation and definite-miss refinement, the PLRU
/// log2(ways)+1 pessimistic bound), policy-generic lattice laws
/// (join commutativity/idempotence, leq), and a randomized differential
/// law: on straight-line access sequences every abstract MUST bound
/// over-approximates the concrete policy age, per policy. The fuzzer
/// (`specai-fuzz --policy`) checks the same containment through branches,
/// loops, and speculative windows; this suite pins the small cases a
/// counterexample would minimize to.
///
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"
#include "domain/CacheState.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// A fixture program of scalar-sized variables (one block each) over a
/// configurable cache, mirroring state_repr_test's Blocks but sized for
/// single-set age arithmetic.
struct Blocks {
  Program P;
  std::unique_ptr<MemoryModel> MM;

  Blocks(unsigned NumVars, CacheConfig Config, unsigned ElemsPerVar = 64) {
    for (unsigned I = 0; I != NumVars; ++I) {
      MemVar V;
      // Built with += (not operator+): GCC 12's -Wrestrict false-fires on
      // the temporary-string insert when this loop is inlined widely.
      V.Name = "v";
      V.Name += std::to_string(I);
      V.ElemSize = 1;
      V.NumElements = ElemsPerVar; // One 64 B line per variable by default.
      P.Vars.push_back(V);
    }
    BasicBlock B;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    B.Insts.push_back(Ret);
    P.Blocks.push_back(B);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  BlockAddr block(unsigned Var) const { return MM->blockOf(Var, 0); }
};

CacheConfig fifoConfig(uint32_t Lines = 8) {
  return CacheConfig::fullyAssociative(Lines).withPolicy(
      ReplacementPolicy::Fifo);
}

CacheConfig plruConfig(uint32_t Lines = 8) {
  return CacheConfig::fullyAssociative(Lines).withPolicy(
      ReplacementPolicy::Plru);
}

} // namespace

//===----------------------------------------------------------------------===//
// Config plumbing
//===----------------------------------------------------------------------===//

TEST(PolicyConfigTest, NamesParseAndPrint) {
  ReplacementPolicy P = ReplacementPolicy::Lru;
  EXPECT_TRUE(parseReplacementPolicy("fifo", P));
  EXPECT_EQ(P, ReplacementPolicy::Fifo);
  EXPECT_TRUE(parseReplacementPolicy("plru", P));
  EXPECT_EQ(P, ReplacementPolicy::Plru);
  EXPECT_TRUE(parseReplacementPolicy("lru", P));
  EXPECT_EQ(P, ReplacementPolicy::Lru);
  EXPECT_FALSE(parseReplacementPolicy("mru", P));
  EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Fifo), "fifo");
  EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Plru), "plru");
}

TEST(PolicyConfigTest, PlruNeedsPowerOfTwoWays) {
  EXPECT_TRUE(plruConfig(8).isValid());
  EXPECT_TRUE(
      CacheConfig::setAssociative(64, 4).withPolicy(ReplacementPolicy::Plru)
          .isValid());
  EXPECT_FALSE(
      CacheConfig::setAssociative(24, 3).withPolicy(ReplacementPolicy::Plru)
          .isValid());
  // The same geometry is fine for the order-based policies.
  EXPECT_TRUE(CacheConfig::setAssociative(24, 3).isValid());
  EXPECT_TRUE(CacheConfig::setAssociative(24, 3)
                  .withPolicy(ReplacementPolicy::Fifo)
                  .isValid());
}

TEST(PolicyConfigTest, MustAgeCapIsAssocExceptPlruTreeBound) {
  EXPECT_EQ(CacheConfig::fullyAssociative(8).mustAgeCap(), 8u);
  EXPECT_EQ(fifoConfig(8).mustAgeCap(), 8u);
  EXPECT_EQ(plruConfig(8).mustAgeCap(), 4u);  // log2(8) + 1
  EXPECT_EQ(plruConfig(512).mustAgeCap(), 10u); // log2(512) + 1
  EXPECT_EQ(
      CacheConfig::setAssociative(8, 1).withPolicy(ReplacementPolicy::Plru)
          .mustAgeCap(),
      1u); // Direct-mapped: log2(1) + 1.
}

//===----------------------------------------------------------------------===//
// Concrete simulators
//===----------------------------------------------------------------------===//

TEST(FifoCacheSimTest, HitsDoNotRejuvenate) {
  CacheSim C(fifoConfig(4));
  // Insertion order a, b, c: a is the oldest.
  EXPECT_FALSE(C.access(10));
  EXPECT_FALSE(C.access(11));
  EXPECT_FALSE(C.access(12));
  EXPECT_EQ(C.ageOf(10), 3u);
  // A FIFO hit must not move the line...
  EXPECT_TRUE(C.access(10));
  EXPECT_EQ(C.ageOf(10), 3u);
  // ...so two more misses push a (not the more recently *used* b/c) out.
  EXPECT_FALSE(C.access(13));
  EXPECT_FALSE(C.access(14));
  EXPECT_FALSE(C.contains(10));
  EXPECT_TRUE(C.contains(11));
  // The identical sequence under LRU keeps the re-used line resident.
  CacheSim L((CacheConfig::fullyAssociative(4)));
  for (BlockAddr B : {10, 11, 12, 10, 13, 14})
    L.access(B);
  EXPECT_TRUE(L.contains(10));
  EXPECT_FALSE(L.contains(11));
}

TEST(FifoCacheSimTest, AgeIsInsertionPosition) {
  CacheSim C(fifoConfig(4));
  C.access(20);
  C.access(21);
  EXPECT_EQ(C.ageOf(21), 1u);
  EXPECT_EQ(C.ageOf(20), 2u);
  EXPECT_EQ(C.ageOf(99), 0u);
  C.access(20); // Hit: both positions unchanged.
  EXPECT_EQ(C.ageOf(21), 1u);
  EXPECT_EQ(C.ageOf(20), 2u);
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(PlruCacheSimTest, FreshAccessIsFullyProtected) {
  CacheSim C(plruConfig(8));
  C.access(1);
  EXPECT_EQ(C.ageOf(1), 1u);
  // Each access to a distinct other block flips at most one root-path bit
  // toward block 1.
  uint32_t Prev = C.ageOf(1);
  for (BlockAddr B : {2, 3, 4, 5, 6, 7}) {
    C.access(B);
    uint32_t Cur = C.ageOf(1);
    EXPECT_LE(Cur, Prev + 1);
    EXPECT_GE(Cur, 1u);
    EXPECT_LE(Cur, 4u); // log2(8) + 1
    Prev = Cur;
  }
  EXPECT_TRUE(C.contains(1));
}

TEST(PlruCacheSimTest, SurvivesLog2WaysAccessesAfterTouch) {
  // The pessimistic tree bound: after touching b, at least log2(ways)
  // further accesses (hit or miss) are needed before b can be evicted.
  // Adversarial schedule: keep touching fresh blocks (all misses).
  for (uint32_t Ways : {2u, 4u, 8u, 16u}) {
    CacheSim C(plruConfig(Ways));
    // Fill the set, touch b last so the fill pattern is arbitrary.
    for (BlockAddr B = 0; B != Ways; ++B)
      C.access(B);
    const BlockAddr Tracked = 0;
    C.access(Tracked);
    uint32_t Log2 = 0;
    while ((1u << Log2) < Ways)
      ++Log2;
    for (uint32_t I = 0; I != Log2; ++I) {
      EXPECT_TRUE(C.contains(Tracked))
          << "evicted after only " << I << " accesses in a " << Ways
          << "-way set";
      C.access(1000 + I); // Fresh block: guaranteed miss.
    }
  }
}

TEST(PlruCacheSimTest, MissFillsEmptyWaysBeforeEvicting) {
  CacheSim C(plruConfig(4));
  C.access(1);
  C.access(2);
  C.access(3);
  EXPECT_EQ(C.residentCount(), 3u);
  C.access(4); // Fills the remaining way; nothing leaves.
  EXPECT_EQ(C.residentCount(), 4u);
  for (BlockAddr B : {1, 2, 3, 4})
    EXPECT_TRUE(C.contains(B));
  C.access(5); // Now a victim must be chosen.
  EXPECT_EQ(C.residentCount(), 4u);
  EXPECT_TRUE(C.contains(5));
}

TEST(PlruCacheSimTest, VictimIsTheFullyExposedWay) {
  CacheSim C(plruConfig(4));
  for (BlockAddr B : {1, 2, 3, 4})
    C.access(B);
  // Touch everything but block 1; with 4 ways and this access order the
  // tree bits all point at 1's way (age log2(4)+1 = 3).
  C.access(2);
  C.access(3);
  C.access(4);
  ASSERT_EQ(C.ageOf(1), 3u);
  C.access(9);
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(9));
}

TEST(PolicyCacheSimTest, FlushAndSetContentsWorkPerPolicy) {
  for (CacheConfig Config : {fifoConfig(4), plruConfig(4),
                             CacheConfig::fullyAssociative(4)}) {
    CacheSim C(Config);
    for (BlockAddr B : {7, 8, 9})
      C.access(B);
    EXPECT_EQ(C.residentCount(), 3u);
    std::vector<BlockAddr> Contents = C.setContents(0);
    ASSERT_EQ(Contents.size(), 3u);
    // Youngest first under every policy's age measure.
    EXPECT_LE(C.ageOf(Contents[0]), C.ageOf(Contents[1]));
    EXPECT_LE(C.ageOf(Contents[1]), C.ageOf(Contents[2]));
    C.flush();
    EXPECT_EQ(C.residentCount(), 0u);
    EXPECT_FALSE(C.contains(7));
  }
}

//===----------------------------------------------------------------------===//
// FIFO abstract lattice
//===----------------------------------------------------------------------===//

TEST(FifoDomainTest, DefiniteHitIsTheIdentityTransfer) {
  Blocks F(4, fifoConfig(8));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, /*UseShadow=*/true); // Definite miss.
  ASSERT_TRUE(S.isMustCached(F.block(0)));

  CacheAbsState Before = S;
  S.accessBlock(F.block(0), *F.MM, /*UseShadow=*/true); // Definite hit.
  EXPECT_EQ(S, Before);
  // The identity path must not even clone the payload.
  EXPECT_TRUE(S.sharesStorageWith(Before));
}

TEST(FifoDomainTest, HitsDoNotRejuvenateTheBound) {
  Blocks F(4, fifoConfig(8));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, true); // v0 at 1 (definite miss).
  S.accessBlock(F.block(1), *F.MM, true); // v1 at 1, v0 ages to 2.
  EXPECT_EQ(S.mustAge(F.block(0), 8), 2u);
  S.accessBlock(F.block(0), *F.MM, true); // Definite hit: nothing moves.
  EXPECT_EQ(S.mustAge(F.block(0), 8), 2u)
      << "a FIFO hit must not refresh the insertion-age bound";
  EXPECT_EQ(S.mustAge(F.block(1), 8), 1u);

  // Contrast: the LRU lattice rejuvenates to age 1 on the same sequence.
  Blocks L(4, CacheConfig::fullyAssociative(8));
  CacheAbsState T = CacheAbsState::empty();
  T.accessBlock(L.block(0), *L.MM, true);
  T.accessBlock(L.block(1), *L.MM, true);
  T.accessBlock(L.block(0), *L.MM, true);
  EXPECT_EQ(T.mustAge(L.block(0), 8), 1u);
}

TEST(FifoDomainTest, ColdRunsAreDefiniteMissesAndStayPrecise) {
  // With shadows, a never-seen block is provably uncached, so its access
  // is a definite miss: inserted at exactly position 1, everything else
  // pushed one deeper — the FIFO lattice is exact on cold straight-line
  // code.
  Blocks F(6, fifoConfig(8));
  CacheAbsState S = CacheAbsState::empty();
  for (unsigned V = 0; V != 5; ++V)
    S.accessBlock(F.block(V), *F.MM, true);
  for (unsigned V = 0; V != 5; ++V)
    EXPECT_EQ(S.mustAge(F.block(V), 8), 5u - V);
}

TEST(FifoDomainTest, PossibleMissWithoutShadowGivesWeakestResidency) {
  // Without the MAY side there is no definite-miss proof: the touched
  // block is resident either way but only at the weakest bound (the hit
  // case leaves it at an unknown position <= associativity).
  Blocks F(4, fifoConfig(8));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, /*UseShadow=*/false);
  EXPECT_TRUE(S.isMustCached(F.block(0)));
  EXPECT_EQ(S.mustAge(F.block(0), 8), 8u);
  // An immediately repeated access is a definite hit (identity) — the
  // "x; x" pattern is a must-hit under FIFO too.
  CacheAbsState Before = S;
  S.accessBlock(F.block(0), *F.MM, false);
  EXPECT_EQ(S, Before);
}

TEST(FifoDomainTest, PossibleMissAgesEveryTrackedBlock) {
  Blocks F(4, fifoConfig(2)); // Two-line cache: quick evictions.
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, true); // v0@1
  S.accessBlock(F.block(1), *F.MM, true); // v1@1 v0@2
  S.accessBlock(F.block(2), *F.MM, true); // v2@1 v1@2, v0 out
  EXPECT_FALSE(S.isMustCached(F.block(0)));
  EXPECT_EQ(S.mustAge(F.block(1), 2), 2u);
  EXPECT_EQ(S.mustAge(F.block(2), 2), 1u);
}

//===----------------------------------------------------------------------===//
// PLRU abstract lattice
//===----------------------------------------------------------------------===//

TEST(PlruDomainTest, BoundIsLog2WaysPlusOne) {
  // 8 ways -> ages live in [1, 4]: a touched block survives the next 3
  // accesses and is dropped from MUST by the 4th.
  Blocks F(8, plruConfig(8));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, true);
  for (unsigned V = 1; V != 4; ++V) {
    S.accessBlock(F.block(V), *F.MM, true);
    EXPECT_TRUE(S.isMustCached(F.block(0)))
        << "dropped after only " << V << " accesses";
  }
  EXPECT_EQ(S.mustAge(F.block(0), 8), 4u);
  S.accessBlock(F.block(4), *F.MM, true);
  EXPECT_FALSE(S.isMustCached(F.block(0)))
      << "the tree bound cannot certify residency past log2(8)+1";
}

TEST(PlruDomainTest, BoundIsTightAgainstTheTreeSimulator) {
  // The abstract drop point is exactly the first moment the concrete tree
  // can evict: after log2(ways) adversarial accesses the next miss may
  // pick the tracked block as victim (VictimIsTheFullyExposedWay above
  // exhibits it), so age log2(ways)+1 must be the last certifiable state.
  CacheSim C(plruConfig(4));
  for (BlockAddr B : {1, 2, 3, 4})
    C.access(B);
  C.access(2);
  C.access(3);
  C.access(4);
  // Concrete age equals the abstract cap: one more miss evicts block 1.
  EXPECT_EQ(C.ageOf(1), plruConfig(4).mustAgeCap());
  C.access(9);
  EXPECT_FALSE(C.contains(1));
}

TEST(PlruDomainTest, EveryAccessAgesOtherBlocks) {
  // Unlike LRU, a PLRU hit to an already-young block still flips tree
  // bits, so the relative-age refinement (only blocks younger than the
  // touched one age) is unsound and must not be applied.
  Blocks F(4, plruConfig(8));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(0), *F.MM, true); // v0@1
  S.accessBlock(F.block(1), *F.MM, true); // v1@1 v0@2
  S.accessBlock(F.block(1), *F.MM, true); // v1 again: v0 must still age.
  EXPECT_EQ(S.mustAge(F.block(0), 8), 3u);

  // LRU on the same sequence: the second v1 access ages nothing (no block
  // is younger than v1).
  Blocks L(4, CacheConfig::fullyAssociative(8));
  CacheAbsState T = CacheAbsState::empty();
  T.accessBlock(L.block(0), *L.MM, true);
  T.accessBlock(L.block(1), *L.MM, true);
  T.accessBlock(L.block(1), *L.MM, true);
  EXPECT_EQ(T.mustAge(L.block(0), 8), 2u);
}

TEST(PlruDomainTest, UnknownIndexAgesCandidatesAndInsertsInstance) {
  CacheConfig Config = plruConfig(8);
  Program P;
  MemVar Arr;
  Arr.Name = "arr";
  Arr.ElemSize = 1;
  Arr.NumElements = 128; // Two lines.
  P.Vars.push_back(Arr);
  MemVar Scalar;
  Scalar.Name = "s";
  Scalar.ElemSize = 1;
  Scalar.NumElements = 64;
  P.Vars.push_back(Scalar);
  BasicBlock B;
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  B.Insts.push_back(Ret);
  P.Blocks.push_back(B);
  MemoryModel MM(P, Config);

  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(MM.blockOf(1, 0), MM, true); // s@1
  S.accessUnknown(0, 0, MM, true);           // arr[?]
  EXPECT_EQ(S.mustAge(MM.blockOf(1, 0), 8), 2u);
  EXPECT_TRUE(S.isMustCached(MM.symbolicBlock(0, 0)));
  EXPECT_EQ(S.mayAge(MM.blockOf(0, 0), 8), 1u);
  EXPECT_EQ(S.mayAge(MM.blockOf(0, 1), 8), 1u);
}

//===----------------------------------------------------------------------===//
// Policy-generic lattice laws
//===----------------------------------------------------------------------===//

namespace {

CacheAbsState randomPolicyState(Blocks &F, Rng &R, bool Shadow) {
  CacheAbsState S = CacheAbsState::empty();
  unsigned N = static_cast<unsigned>(R.nextBelow(12));
  for (unsigned I = 0; I != N; ++I)
    S.accessBlock(F.block(static_cast<unsigned>(R.nextBelow(6))), *F.MM,
                  Shadow);
  return S;
}

} // namespace

class PolicyLatticeTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyLatticeTest, JoinIsCommutativeIdempotentAndAboveBothArgs) {
  CacheConfig Config =
      CacheConfig::fullyAssociative(8).withPolicy(GetParam());
  Blocks F(6, Config);
  Rng R(0x5eedull + static_cast<uint64_t>(GetParam()));
  for (unsigned Trial = 0; Trial != 64; ++Trial) {
    bool Shadow = R.chance(1, 2);
    CacheAbsState A = randomPolicyState(F, R, Shadow);
    CacheAbsState B = randomPolicyState(F, R, Shadow);

    CacheAbsState AB = A;
    AB.joinInto(B, Shadow);
    CacheAbsState BA = B;
    BA.joinInto(A, Shadow);
    EXPECT_EQ(AB, BA);

    CacheAbsState AA = A;
    EXPECT_FALSE(AA.joinInto(A, Shadow));
    EXPECT_EQ(AA, A);

    EXPECT_TRUE(A.leq(AB, 8));
    EXPECT_TRUE(B.leq(AB, 8));
  }
}

TEST_P(PolicyLatticeTest, TransferIsMonotoneAcrossJoin) {
  // Applying the same access to A, B and A⊔B keeps the join above both
  // transformed inputs — the monotonicity the fixpoint engines rely on,
  // per policy.
  CacheConfig Config =
      CacheConfig::fullyAssociative(8).withPolicy(GetParam());
  Blocks F(6, Config);
  Rng R(0xfeedull + static_cast<uint64_t>(GetParam()));
  for (unsigned Trial = 0; Trial != 64; ++Trial) {
    bool Shadow = R.chance(1, 2);
    CacheAbsState A = randomPolicyState(F, R, Shadow);
    CacheAbsState B = randomPolicyState(F, R, Shadow);
    CacheAbsState J = A;
    J.joinInto(B, Shadow);

    BlockAddr Touched = F.block(static_cast<unsigned>(R.nextBelow(6)));
    A.accessBlock(Touched, *F.MM, Shadow);
    B.accessBlock(Touched, *F.MM, Shadow);
    J.accessBlock(Touched, *F.MM, Shadow);

    CacheAbsState JoinOfOut = A;
    JoinOfOut.joinInto(B, Shadow);
    EXPECT_TRUE(JoinOfOut.leq(J, 8))
        << "transfer(A) ⊔ transfer(B) must be below transfer(A ⊔ B)";
  }
}

TEST_P(PolicyLatticeTest, AbstractAgeBoundsConcreteAgeOnRandomRuns) {
  // The per-access containment law the differential oracle checks through
  // the full pipeline, here on straight-line sequences: after any prefix,
  // every MUST entry is resident in the concrete simulator with concrete
  // policy age <= the abstract bound, and every resident block is
  // admitted by the MAY side.
  CacheConfig Config =
      CacheConfig::fullyAssociative(8).withPolicy(GetParam());
  Blocks F(12, Config);
  Rng R(0xabcull + static_cast<uint64_t>(GetParam()));
  for (unsigned Trial = 0; Trial != 32; ++Trial) {
    CacheSim C(Config);
    CacheAbsState S = CacheAbsState::empty();
    for (unsigned Step = 0; Step != 40; ++Step) {
      BlockAddr B = F.block(static_cast<unsigned>(R.nextBelow(12)));
      C.access(B);
      S.accessBlock(B, *F.MM, /*UseShadow=*/true);
      for (const CacheSetPartition &Part : S.partitions()) {
        for (const AgedBlock &E : Part.Must) {
          uint32_t Concrete = C.ageOf(E.Block);
          ASSERT_NE(Concrete, 0u)
              << replacementPolicyName(GetParam()) << ": MUST entry "
              << E.Block << " not resident after step " << Step;
          ASSERT_LE(Concrete, E.Age)
              << replacementPolicyName(GetParam()) << ": bound violated";
        }
      }
      for (BlockAddr Resident : C.setContents(0))
        ASSERT_LE(S.mayAge(Resident, 8), C.ageOf(Resident))
            << replacementPolicyName(GetParam())
            << ": MAY under-approximates resident block " << Resident;
    }
  }
}

TEST_P(PolicyLatticeTest, AbstractAgeBoundsConcreteAgeAcrossLaneWidths) {
  // The same concrete-age containment law, swept across the packed-lane
  // geometry matrix: assoc 8 and 15 pack MUST ages into nibbles under
  // LRU/FIFO (cap <= 14 for 8; 15 is the first byte-lane cap), assoc 16 is
  // the canonical nibble-to-byte cutover, and the set-associative shape
  // exercises multi-partition states. PLRU sizes its MUST lanes from the
  // tree cap log2(ways)+1 instead — nibbles even at 16 ways — and rejects
  // the non-power-of-two 15-way shape outright, which this sweep checks
  // rather than silently skipping.
  ReplacementPolicy Policy = GetParam();
  struct Geom {
    CacheConfig Config;
    bool ValidForPlru;
  };
  const Geom Geoms[] = {
      {CacheConfig::fullyAssociative(8), true},
      {CacheConfig::fullyAssociative(15), false},
      {CacheConfig::fullyAssociative(16), true},
      {CacheConfig::setAssociative(32, 16), true},
  };
  for (const Geom &G : Geoms) {
    CacheConfig Config = G.Config.withPolicy(Policy);
    if (Policy == ReplacementPolicy::Plru && !G.ValidForPlru) {
      EXPECT_FALSE(Config.isValid())
          << "PLRU must reject non-power-of-two associativity "
          << G.Config.Associativity;
      continue;
    }
    ASSERT_TRUE(Config.isValid());
    // The packed lane width follows mustAgeCap: LRU/FIFO cross from
    // nibbles to bytes at assoc 16 (cap 16 > 14); PLRU stays in nibbles
    // (cap log2(16)+1 = 5).
    unsigned Lanes = CacheAbsState::packedLaneBits(Config.mustAgeCap());
    if (Config.Associativity >= 16) {
      EXPECT_EQ(Lanes, Policy == ReplacementPolicy::Plru ? 4u : 8u);
    }

    uint32_t Assoc = Config.Associativity;
    Blocks F(24, Config);
    Rng R(0x1a9e5eedull ^ static_cast<uint64_t>(Policy) * 0x9e37ull ^
          Config.Associativity);
    for (unsigned Trial = 0; Trial != 12; ++Trial) {
      CacheSim C(Config);
      CacheAbsState S = CacheAbsState::empty();
      for (unsigned Step = 0; Step != 48; ++Step) {
        BlockAddr B = F.block(static_cast<unsigned>(R.nextBelow(24)));
        C.access(B);
        S.accessBlock(B, *F.MM, /*UseShadow=*/true);
        for (const CacheSetPartition &Part : S.partitions()) {
          for (const AgedBlock &E : Part.Must) {
            uint32_t Concrete = C.ageOf(E.Block);
            ASSERT_NE(Concrete, 0u)
                << replacementPolicyName(Policy) << " assoc " << Assoc
                << ": MUST entry " << E.Block << " not resident at step "
                << Step;
            ASSERT_LE(Concrete, E.Age)
                << replacementPolicyName(Policy) << " assoc " << Assoc
                << ": bound violated";
          }
        }
        for (uint32_t Set = 0; Set != Config.numSets(); ++Set)
          for (BlockAddr Resident : C.setContents(Set))
            ASSERT_LE(S.mayAge(Resident, Assoc), C.ageOf(Resident))
                << replacementPolicyName(Policy) << " assoc " << Assoc
                << ": MAY under-approximates block " << Resident;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyLatticeTest,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::Fifo,
                                           ReplacementPolicy::Plru),
                         [](const ::testing::TestParamInfo<ReplacementPolicy>
                                &I) {
                           return replacementPolicyName(I.param);
                         });
