//===- cache_memory_test.cpp - Cache simulator and memory model -----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"
#include "memory/MemoryModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>

using namespace specai;

//===----------------------------------------------------------------------===//
// CacheConfig
//===----------------------------------------------------------------------===//

TEST(CacheConfigTest, PaperDefaultIs32KFullyAssociative) {
  CacheConfig C = CacheConfig::paperDefault();
  EXPECT_EQ(C.NumLines, 512u);
  EXPECT_EQ(C.LineSize, 64u);
  EXPECT_EQ(C.numSets(), 1u);
  EXPECT_EQ(C.totalBytes(), 32u * 1024u);
  EXPECT_TRUE(C.isValid());
}

TEST(CacheConfigTest, SetAssociativeGeometry) {
  CacheConfig C = CacheConfig::setAssociative(512, 8);
  EXPECT_EQ(C.numSets(), 64u);
  EXPECT_TRUE(C.isValid());
  EXPECT_EQ(C.setOf(0), 0u);
  EXPECT_EQ(C.setOf(65), 1u);
  EXPECT_EQ(C.setOf(64), 0u);
}

TEST(CacheConfigTest, InvalidGeometriesRejected) {
  CacheConfig NonDividing{64, 512, 7}; // 7 does not divide 512.
  EXPECT_FALSE(NonDividing.isValid());
  CacheConfig TooWide{64, 512, 1024};
  EXPECT_FALSE(TooWide.isValid());
  CacheConfig ZeroLine{0, 512, 512};
  EXPECT_FALSE(ZeroLine.isValid());
}

//===----------------------------------------------------------------------===//
// LruCache
//===----------------------------------------------------------------------===//

TEST(LruCacheTest, MissThenHit) {
  LruCache C(CacheConfig::fullyAssociative(4));
  EXPECT_FALSE(C.access(1));
  EXPECT_TRUE(C.access(1));
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_EQ(C.misses(), 1u);
}

TEST(LruCacheTest, LruEvictionOrder) {
  LruCache C(CacheConfig::fullyAssociative(2));
  C.access(1);
  C.access(2);
  C.access(3); // Evicts 1.
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
}

TEST(LruCacheTest, HitRefreshesRecency) {
  LruCache C(CacheConfig::fullyAssociative(2));
  C.access(1);
  C.access(2);
  C.access(1); // 1 becomes MRU; 2 is now LRU.
  C.access(3); // Evicts 2.
  EXPECT_TRUE(C.contains(1));
  EXPECT_FALSE(C.contains(2));
}

TEST(LruCacheTest, AgeReporting) {
  LruCache C(CacheConfig::fullyAssociative(4));
  C.access(10);
  C.access(20);
  C.access(30);
  EXPECT_EQ(C.ageOf(30), 1u);
  EXPECT_EQ(C.ageOf(20), 2u);
  EXPECT_EQ(C.ageOf(10), 3u);
  EXPECT_EQ(C.ageOf(99), 0u);
}

TEST(LruCacheTest, SetsAreIndependent) {
  // 4 lines, 2 ways => 2 sets; even blocks to set 0, odd to set 1.
  LruCache C(CacheConfig::setAssociative(4, 2));
  C.access(0);
  C.access(2);
  C.access(4); // Evicts 0 within set 0.
  EXPECT_FALSE(C.contains(0));
  C.access(1); // Set 1 untouched by set 0 traffic.
  EXPECT_TRUE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
}

TEST(LruCacheTest, FlushEmptiesEverything) {
  LruCache C(CacheConfig::fullyAssociative(4));
  C.access(1);
  C.access(2);
  C.flush();
  EXPECT_EQ(C.residentCount(), 0u);
  EXPECT_FALSE(C.contains(1));
}

TEST(LruCacheTest, MatchesReferenceModelOnRandomTrace) {
  // Differential test against a simple recency-list reference.
  Rng R(1234);
  LruCache C(CacheConfig::fullyAssociative(8));
  std::vector<BlockAddr> Reference; // Front = MRU.
  for (int I = 0; I != 5000; ++I) {
    BlockAddr B = R.nextBelow(24);
    bool ExpectHit =
        std::find(Reference.begin(), Reference.end(), B) != Reference.end();
    EXPECT_EQ(C.access(B), ExpectHit) << "step " << I;
    Reference.erase(std::remove(Reference.begin(), Reference.end(), B),
                    Reference.end());
    Reference.insert(Reference.begin(), B);
    if (Reference.size() > 8)
      Reference.pop_back();
  }
}

//===----------------------------------------------------------------------===//
// MemoryModel
//===----------------------------------------------------------------------===//

namespace {

Program makeProgram() {
  Program P;
  auto AddVar = [&](const char *Name, uint32_t ElemSize, uint64_t Count) {
    MemVar V;
    V.Name = Name;
    V.ElemSize = ElemSize;
    V.NumElements = Count;
    P.Vars.push_back(V);
  };
  AddVar("p", 1, 1);        // 1 line.
  AddVar("ph", 1, 32640);   // 510 lines.
  AddVar("tab", 4, 30);     // 120 bytes => 2 lines.
  BasicBlock B;
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  B.Insts.push_back(Ret);
  P.Blocks.push_back(B);
  return P;
}

} // namespace

TEST(MemoryModelTest, VariablesStartOnTheirOwnLines) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::paperDefault());
  EXPECT_EQ(MM.baseAddrOf(0) % 64, 0u);
  EXPECT_EQ(MM.baseAddrOf(1) % 64, 0u);
  EXPECT_EQ(MM.numBlocksOf(0), 1u);
  EXPECT_EQ(MM.numBlocksOf(1), 510u);
  EXPECT_EQ(MM.numBlocksOf(2), 2u);
  EXPECT_EQ(MM.numConcreteBlocks(), 513u);
}

TEST(MemoryModelTest, BlockOfMapsElementsToLines) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::paperDefault());
  BlockAddr First = MM.firstBlockOf(1);
  EXPECT_EQ(MM.blockOf(1, 0), First);
  EXPECT_EQ(MM.blockOf(1, 63), First);
  EXPECT_EQ(MM.blockOf(1, 64), First + 1);
  // 4-byte elements: 16 per line.
  EXPECT_EQ(MM.blockOf(2, 15), MM.firstBlockOf(2));
  EXPECT_EQ(MM.blockOf(2, 16), MM.firstBlockOf(2) + 1);
}

TEST(MemoryModelTest, DistinctVariablesNeverShareBlocks) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::paperDefault());
  EXPECT_NE(MM.blockOf(0, 0), MM.blockOf(1, 0));
  EXPECT_NE(MM.blockOf(1, 32639), MM.blockOf(2, 0));
}

TEST(MemoryModelTest, SymbolicInstancesAreDistinctAndSaturate) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::paperDefault());
  BlockAddr S0 = MM.symbolicBlock(2, 0);
  BlockAddr S1 = MM.symbolicBlock(2, 1);
  BlockAddr S9 = MM.symbolicBlock(2, 9); // Saturates at 2 lines - 1.
  EXPECT_NE(S0, S1);
  EXPECT_EQ(S9, S1);
  EXPECT_TRUE(MM.isSymbolic(S0));
  EXPECT_FALSE(MM.isSymbolic(MM.blockOf(2, 0)));
  EXPECT_EQ(MM.varOfBlock(S0), 2u);
}

TEST(MemoryModelTest, BlockNamesMatchPaperStyle) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::paperDefault());
  EXPECT_EQ(MM.blockName(MM.blockOf(0, 0)), "p");
  EXPECT_EQ(MM.blockName(MM.blockOf(1, 64)), "ph[1]");
  EXPECT_EQ(MM.blockName(MM.symbolicBlock(2, 0)), "tab[1*]");
  EXPECT_EQ(MM.blockName(MM.symbolicBlock(2, 1)), "tab[2*]");
}

TEST(MemoryModelTest, SetAssociativeSetsOfSpansArray) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::setAssociative(512, 8));
  // ph spans 510 lines over 64 sets: every set is a candidate.
  EXPECT_EQ(MM.setsOf(1).size(), 64u);
  // p is a single line: exactly one candidate set.
  EXPECT_EQ(MM.setsOf(0).size(), 1u);
}

TEST(MemoryModelTest, SymbolicSetMatchesCorrespondingLine) {
  Program P = makeProgram();
  MemoryModel MM(P, CacheConfig::setAssociative(512, 8));
  BlockAddr Sym = MM.symbolicBlock(2, 1);
  EXPECT_EQ(MM.setOf(Sym), MM.config().setOf(MM.firstBlockOf(2) + 1));
}
