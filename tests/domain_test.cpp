//===- domain_test.cpp - Abstract cache state tests ------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Pins the transfer/join semantics against the paper's worked examples:
/// Figure 4 (LRU transfer), Figure 5 (join at a merge point), Appendix B
/// Example B.2/B.3 (shadow variables), and lattice properties (join
/// monotonicity, idempotence, commutativity; leq consistency) via
/// parameterized random-state sweeps.
///
//===----------------------------------------------------------------------===//

#include "domain/CacheState.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

/// A fixture program with N one-line char variables named v0..vN-1.
struct Blocks {
  Program P;
  std::unique_ptr<MemoryModel> MM;

  Blocks(unsigned NumVars, CacheConfig Config) {
    for (unsigned I = 0; I != NumVars; ++I) {
      MemVar V;
      V.Name = "v" + std::to_string(I);
      V.ElemSize = 1;
      V.NumElements = 64;
      P.Vars.push_back(V);
    }
    BasicBlock B;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    B.Insts.push_back(Ret);
    P.Blocks.push_back(B);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  BlockAddr block(unsigned Var) const { return MM->blockOf(Var, 0); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Figure 4: transfer under LRU
//===----------------------------------------------------------------------===//

TEST(CacheStateTest, Fig4LeftAccessOfUncachedEvictsOldest) {
  // Cache of 4 lines holding u1..u4; accessing v (uncached) evicts u4.
  Blocks F(5, CacheConfig::fullyAssociative(4));
  CacheAbsState S = CacheAbsState::empty();
  // Load u4, u3, u2, u1 in order: ages u1=1 .. u4=4.
  for (int I = 4; I >= 1; --I)
    S.accessBlock(F.block(I), *F.MM, /*UseShadow=*/false);
  EXPECT_EQ(S.mustAge(F.block(4), 4), 4u);
  S.accessBlock(F.block(0), *F.MM, false); // v
  EXPECT_EQ(S.mustAge(F.block(0), 4), 1u);
  EXPECT_EQ(S.mustAge(F.block(1), 4), 2u);
  EXPECT_EQ(S.mustAge(F.block(4), 4), 5u); // Evicted.
}

TEST(CacheStateTest, Fig4RightAccessOfCachedAgesOnlyYounger) {
  // v at age 2: u (age 1) ages, w1/w2 (older) stay.
  Blocks F(4, CacheConfig::fullyAssociative(4));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(3), *F.MM, false); // w2
  S.accessBlock(F.block(2), *F.MM, false); // w1
  S.accessBlock(F.block(0), *F.MM, false); // v
  S.accessBlock(F.block(1), *F.MM, false); // u => u=1 v=2 w1=3 w2=4
  S.accessBlock(F.block(0), *F.MM, false); // access v again
  EXPECT_EQ(S.mustAge(F.block(0), 4), 1u);
  EXPECT_EQ(S.mustAge(F.block(1), 4), 2u); // u aged.
  EXPECT_EQ(S.mustAge(F.block(2), 4), 3u); // w1 unchanged.
  EXPECT_EQ(S.mustAge(F.block(3), 4), 4u); // w2 unchanged.
}

//===----------------------------------------------------------------------===//
// Figure 5: join takes the maximum age, dropping one-sided blocks
//===----------------------------------------------------------------------===//

TEST(CacheStateTest, Fig5JoinMaxAges) {
  // Left: x@1, y@2, z@3, k@4. Right: t@1, z@2, x@3, k@4.
  Blocks F(5, CacheConfig::fullyAssociative(4));
  // Vars: x=0 y=1 z=2 k=3 t=4.
  CacheAbsState L = CacheAbsState::empty();
  L.accessBlock(F.block(3), *F.MM, false);
  L.accessBlock(F.block(2), *F.MM, false);
  L.accessBlock(F.block(1), *F.MM, false);
  L.accessBlock(F.block(0), *F.MM, false); // x=1 y=2 z=3 k=4.
  CacheAbsState R = CacheAbsState::empty();
  R.accessBlock(F.block(3), *F.MM, false);
  R.accessBlock(F.block(0), *F.MM, false);
  R.accessBlock(F.block(2), *F.MM, false);
  R.accessBlock(F.block(4), *F.MM, false); // t=1 z=2 x=3 k=4.

  CacheAbsState J = L;
  EXPECT_TRUE(J.joinInto(R, false));
  EXPECT_EQ(J.mustAge(F.block(0), 4), 3u); // x: max(1,3).
  EXPECT_EQ(J.mustAge(F.block(2), 4), 3u); // z: max(3,2).
  EXPECT_EQ(J.mustAge(F.block(3), 4), 4u); // k: max(4,4).
  EXPECT_EQ(J.mustAge(F.block(1), 4), 5u); // y dropped (right lacks it).
  EXPECT_EQ(J.mustAge(F.block(4), 4), 5u); // t dropped (left lacks it).
}

TEST(CacheStateTest, Fig5JoinShadowKeepsUnion) {
  Blocks F(5, CacheConfig::fullyAssociative(4));
  CacheAbsState L = CacheAbsState::empty();
  L.accessBlock(F.block(1), *F.MM, true); // ∃y@1.
  CacheAbsState R = CacheAbsState::empty();
  R.accessBlock(F.block(4), *F.MM, true); // ∃t@1.
  CacheAbsState J = L;
  J.joinInto(R, true);
  // Shadow (MAY) union survives where MUST intersected away.
  EXPECT_EQ(J.mayAge(F.block(1), 4), 1u);
  EXPECT_EQ(J.mayAge(F.block(4), 4), 1u);
  EXPECT_GT(J.mustAge(F.block(1), 4), 4u);
}

//===----------------------------------------------------------------------===//
// Appendix B: shadow-variable refinement
//===----------------------------------------------------------------------===//

TEST(CacheStateTest, AppendixCRefinedAgingKeepsA) {
  // The S7 -> S8 step of Appendix C: must = [{}, {}, a, _], shadow
  // ∃b,∃c at 1-2 pattern; accessing b must NOT age a because only two
  // shadow blocks are as young as a's age 3.
  Blocks F(3, CacheConfig::fullyAssociative(4)); // a=0 b=1 c=2.
  CacheAbsState S = CacheAbsState::empty();
  // Build S7 by the same access/join sequence as the paper:
  // access a; then one path accesses b, the other c; join; repeat.
  CacheAbsState Init = CacheAbsState::empty();
  Init.accessBlock(F.block(0), *F.MM, true); // a.
  CacheAbsState Cur = Init;
  for (int Round = 0; Round != 2; ++Round) {
    CacheAbsState PB = Cur;
    PB.accessBlock(F.block(1), *F.MM, true);
    CacheAbsState PC = Cur;
    PC.accessBlock(F.block(2), *F.MM, true);
    Cur = PB;
    Cur.joinInto(PC, true);
  }
  // After two rounds, a sits at age 3 (paper S7: [{∃b,∃c}, {∃a}, a, _]).
  EXPECT_EQ(Cur.mustAge(F.block(0), 4), 3u);
  // Third access of b: a must keep age 3 (refined rule, Appendix C.2).
  CacheAbsState S8 = Cur;
  S8.accessBlock(F.block(1), *F.MM, true);
  EXPECT_EQ(S8.mustAge(F.block(0), 4), 3u);
  S = S8;

  // Without shadows the same sequence pushes a to age 4.
  CacheAbsState NoShadow = CacheAbsState::empty();
  NoShadow.accessBlock(F.block(0), *F.MM, false);
  CacheAbsState Cur2 = NoShadow;
  for (int Round = 0; Round != 2; ++Round) {
    CacheAbsState PB = Cur2;
    PB.accessBlock(F.block(1), *F.MM, false);
    CacheAbsState PC = Cur2;
    PC.accessBlock(F.block(2), *F.MM, false);
    Cur2 = PB;
    Cur2.joinInto(PC, false);
  }
  CacheAbsState S8Orig = Cur2;
  S8Orig.accessBlock(F.block(1), *F.MM, false);
  EXPECT_EQ(S8Orig.mustAge(F.block(0), 4), 4u); // Appendix C: [b,{},{},a].
}

TEST(CacheStateTest, ShadowInvariantMayLeqMust) {
  // For every tracked block, the MAY age is a lower bound of the MUST age.
  Blocks F(6, CacheConfig::fullyAssociative(4));
  Rng R(99);
  CacheAbsState S = CacheAbsState::empty();
  for (int I = 0; I != 200; ++I) {
    unsigned V = static_cast<unsigned>(R.nextBelow(6));
    S.accessBlock(F.block(V), *F.MM, true);
    if (R.chance(1, 4)) {
      CacheAbsState Other = CacheAbsState::empty();
      Other.accessBlock(F.block(R.nextBelow(6)), *F.MM, true);
      S.joinInto(Other, true);
    }
    for (const AgedBlock &E : S.mustEntries())
      EXPECT_LE(S.mayAge(E.Block, 4), E.Age);
  }
}

//===----------------------------------------------------------------------===//
// Unknown-index transfer
//===----------------------------------------------------------------------===//

TEST(CacheStateTest, UnknownAccessAgesEverythingWhenNotAllCached) {
  Blocks F(3, CacheConfig::fullyAssociative(4));
  // Give variable 0 two lines by using a bigger array program instead.
  Program P;
  MemVar A;
  A.Name = "arr";
  A.ElemSize = 1;
  A.NumElements = 128; // 2 lines.
  P.Vars.push_back(A);
  MemVar X;
  X.Name = "x";
  X.ElemSize = 4;
  X.NumElements = 1;
  P.Vars.push_back(X);
  BasicBlock B;
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  B.Insts.push_back(Ret);
  P.Blocks.push_back(B);
  MemoryModel MM(P, CacheConfig::fullyAssociative(4));

  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(MM.blockOf(1, 0), MM, false); // x@1.
  S.accessUnknown(0, 0, MM, false);           // arr not all cached.
  EXPECT_EQ(S.mustAge(MM.blockOf(1, 0), 4), 2u); // x aged.
  // Symbolic instance inserted at age 1.
  EXPECT_TRUE(S.isMustCached(MM.symbolicBlock(0, 0)));
}

TEST(CacheStateTest, UnknownAccessOnFullyCachedArrayIsAHit) {
  Program P;
  MemVar A;
  A.Name = "arr";
  A.ElemSize = 1;
  A.NumElements = 128; // 2 lines.
  P.Vars.push_back(A);
  MemVar X;
  X.Name = "x";
  X.ElemSize = 4;
  X.NumElements = 1;
  P.Vars.push_back(X);
  BasicBlock B;
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  B.Insts.push_back(Ret);
  P.Blocks.push_back(B);
  MemoryModel MM(P, CacheConfig::fullyAssociative(4));

  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(MM.blockOf(0, 0), MM, false);
  S.accessBlock(MM.blockOf(0, 64), MM, false);
  S.accessBlock(MM.blockOf(1, 0), MM, false); // x@1, arr@2,3.
  S.accessUnknown(0, 0, MM, false);
  // A guaranteed hit: x (age 1 < maxAge(arr)=3) ages by one but is NOT
  // evicted; no symbolic instance is inserted.
  EXPECT_EQ(S.mustAge(MM.blockOf(1, 0), 4), 2u);
  EXPECT_FALSE(S.isMustCached(MM.symbolicBlock(0, 0)));
  EXPECT_TRUE(S.isMustCached(MM.blockOf(0, 0)));
  EXPECT_TRUE(S.isMustCached(MM.blockOf(0, 64)));
}

//===----------------------------------------------------------------------===//
// Lattice properties (randomized)
//===----------------------------------------------------------------------===//

namespace {

CacheAbsState randomState(Blocks &F, Rng &R, bool Shadow) {
  CacheAbsState S = CacheAbsState::empty();
  unsigned N = static_cast<unsigned>(R.nextBelow(12));
  for (unsigned I = 0; I != N; ++I)
    S.accessBlock(F.block(R.nextBelow(6)), *F.MM, Shadow);
  return S;
}

} // namespace

class CacheLatticeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheLatticeTest, JoinIsCommutativeAssociativeIdempotent) {
  Blocks F(6, CacheConfig::fullyAssociative(4));
  Rng R(GetParam());
  for (int I = 0; I != 50; ++I) {
    bool Shadow = R.chance(1, 2);
    CacheAbsState A = randomState(F, R, Shadow);
    CacheAbsState B = randomState(F, R, Shadow);
    CacheAbsState C = randomState(F, R, Shadow);

    CacheAbsState AB = A;
    AB.joinInto(B, Shadow);
    CacheAbsState BA = B;
    BA.joinInto(A, Shadow);
    EXPECT_EQ(AB, BA);

    CacheAbsState AB_C = AB;
    AB_C.joinInto(C, Shadow);
    CacheAbsState BC = B;
    BC.joinInto(C, Shadow);
    CacheAbsState A_BC = A;
    A_BC.joinInto(BC, Shadow);
    EXPECT_EQ(AB_C, A_BC);

    CacheAbsState AA = A;
    EXPECT_FALSE(AA.joinInto(A, Shadow)); // Idempotent: no change.
    EXPECT_EQ(AA, A);
  }
}

TEST_P(CacheLatticeTest, JoinIsUpperBoundPerLeq) {
  Blocks F(6, CacheConfig::fullyAssociative(4));
  Rng R(GetParam() * 31 + 7);
  for (int I = 0; I != 50; ++I) {
    CacheAbsState A = randomState(F, R, true);
    CacheAbsState B = randomState(F, R, true);
    CacheAbsState J = A;
    J.joinInto(B, true);
    EXPECT_TRUE(A.leq(J, 4));
    EXPECT_TRUE(B.leq(J, 4));
  }
}

TEST_P(CacheLatticeTest, BottomIsJoinIdentity) {
  Blocks F(6, CacheConfig::fullyAssociative(4));
  Rng R(GetParam() * 17 + 3);
  CacheAbsState A = randomState(F, R, true);
  CacheAbsState Bot = CacheAbsState::bottom();
  CacheAbsState A2 = A;
  EXPECT_FALSE(A2.joinInto(Bot, true));
  EXPECT_EQ(A2, A);
  CacheAbsState Bot2 = CacheAbsState::bottom();
  EXPECT_TRUE(Bot2.joinInto(A, true));
  EXPECT_EQ(Bot2, A);
  EXPECT_TRUE(Bot.leq(A, 4));
}

TEST_P(CacheLatticeTest, TransferIsMonotoneInTheState) {
  // If A ⊑ B then transfer(A) ⊑ transfer(B) for known accesses.
  Blocks F(6, CacheConfig::fullyAssociative(4));
  Rng R(GetParam() * 101 + 13);
  for (int I = 0; I != 50; ++I) {
    CacheAbsState A = randomState(F, R, false);
    CacheAbsState B = A;
    B.joinInto(randomState(F, R, false), false); // B ⊒ A by construction.
    ASSERT_TRUE(A.leq(B, 4));
    unsigned V = static_cast<unsigned>(R.nextBelow(6));
    A.accessBlock(F.block(V), *F.MM, false);
    B.accessBlock(F.block(V), *F.MM, false);
    EXPECT_TRUE(A.leq(B, 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheLatticeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Widening
//===----------------------------------------------------------------------===//

TEST(CacheStateTest, WideningEvictsGrowingEntries) {
  Blocks F(4, CacheConfig::fullyAssociative(4));
  CacheAbsState Prev = CacheAbsState::empty();
  Prev.accessBlock(F.block(0), *F.MM, false);
  Prev.accessBlock(F.block(1), *F.MM, false); // v1@1 v0@2.
  CacheAbsState Cur = Prev;
  Cur.accessBlock(F.block(2), *F.MM, false); // v0 grows to 3.
  Cur.widenFrom(Prev, 4);
  EXPECT_FALSE(Cur.isMustCached(F.block(0))); // Grew: widened away.
  EXPECT_TRUE(Cur.isMustCached(F.block(2)));  // New at age 1: kept.
}

TEST(CacheStateTest, StringRenderingSortsByAge) {
  Blocks F(3, CacheConfig::fullyAssociative(4));
  CacheAbsState S = CacheAbsState::empty();
  S.accessBlock(F.block(2), *F.MM, false);
  S.accessBlock(F.block(0), *F.MM, false);
  std::string Out = S.str(*F.MM);
  EXPECT_LT(Out.find("v0[0]@1"), Out.find("v2[0]@2"));
  EXPECT_EQ(CacheAbsState::bottom().str(*F.MM), "⊥");
}
