//===- paper_examples_test.cpp - The paper's worked examples --------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Pins the paper's inline examples end to end: Figure 2/3 (512 misses + 1
/// hit vs 513 observable misses), Figure 7 (just-in-time merging), Figure
/// 11 / Appendix C (shadow variables), and the quantl example of Tables
/// 1-2.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"
#include "analysis/SideChannel.h"
#include "pipeline/SpeculativeCpu.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace specai;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Source,
                                         const std::string &Entry = "main") {
  DiagnosticEngine Diags;
  LoweringOptions Options;
  Options.EntryFunction = Entry;
  auto CP = compileSource(Source, Diags, Options);
  EXPECT_TRUE(CP) << Diags.str();
  return CP;
}

/// Finds the last memory access preceding the reachable Ret (the final
/// "interesting" load of the paper's examples). Block layout order does
/// not follow control flow (else blocks come after join blocks), so this
/// walks the returning block backwards.
NodeId lastAccessNode(const CompiledProgram &CP) {
  std::vector<bool> Reach = CP.G.reachable();
  for (NodeId Ret : CP.G.exits()) {
    if (!Reach[Ret])
      continue;
    BlockId B = CP.G.blockOf(Ret);
    for (int32_t I = static_cast<int32_t>(CP.G.instIndexOf(Ret)); I >= 0;
         --I) {
      NodeId N = CP.G.nodeAt(B, static_cast<uint32_t>(I));
      if (CP.G.inst(N).accessesMemory())
        return N;
    }
  }
  return InvalidNode;
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 2 / Figure 3
//===----------------------------------------------------------------------===//

TEST(Fig2Test, NonSpeculativeFinalLoadIsMustHit) {
  auto CP = compile(fig2Source());
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  NodeId Final = lastAccessNode(*CP);
  ASSERT_NE(Final, InvalidNode);
  // ph[k] is a hit for every k: the whole array is still cached.
  EXPECT_TRUE(R.MustHit[Final]);
  // 510 preload misses + p + one of l1/l2 = 512 possible misses.
  EXPECT_EQ(R.MissCount, 513u); // 510 + p + l1 + l2 access sites.
}

TEST(Fig2Test, SpeculativeFinalLoadMayMiss) {
  auto CP = compile(fig2Source());
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  NodeId Final = lastAccessNode(*CP);
  ASSERT_NE(Final, InvalidNode);
  // Under speculation both l1 and l2 enter the cache; the oldest ph line
  // is evicted, so ph[k] is no longer a guaranteed hit.
  EXPECT_FALSE(R.MustHit[Final]);
  EXPECT_GT(R.MissCount, 513u);
  EXPECT_EQ(R.BranchCount, 1u);
}

TEST(Fig2Test, SpeculativeAnalysisDetectsTheLeak) {
  auto CP = compile(fig2Source());
  ASSERT_TRUE(CP);
  MustHitOptions NonSpec;
  NonSpec.Speculative = false;
  SideChannelReport LeaksBaseline =
      detectLeaks(*CP, runMustHitAnalysis(*CP, NonSpec));
  EXPECT_FALSE(LeaksBaseline.leakDetected());
  EXPECT_EQ(LeaksBaseline.ProvenLeakFree, 1u);

  MustHitOptions Spec;
  Spec.Speculative = true;
  SideChannelReport LeaksSpec =
      detectLeaks(*CP, runMustHitAnalysis(*CP, Spec));
  EXPECT_TRUE(LeaksSpec.leakDetected());
}

TEST(Fig3Test, ConcreteSimulationMatchesThePaperTrace) {
  auto CP = compile(fig2Source());
  ASSERT_TRUE(CP);
  MemoryModel MM(*CP->P, CacheConfig::paperDefault());

  // Non-speculative run (Figure 3 left): 512 misses + 1 hit.
  {
    StaticPredictor Correct(false); // p == 0 false => predicts fall-through.
    SpeculativeCpu Cpu(*CP->P, MM, Correct, TimingModel{},
                       /*EnableSpeculation=*/false);
    Cpu.machine().setMemory(CP->P->findVar("p"), 0, 1); // take else-branch
    CpuRunStats Stats = Cpu.run();
    ASSERT_TRUE(Stats.Completed);
    EXPECT_EQ(Stats.Misses, 512u);
    EXPECT_EQ(Stats.Hits, 1u);
    EXPECT_EQ(Stats.SpecMisses, 0u);
  }

  // Speculative run with a mispredicting branch (Figure 3 right): the
  // then-branch (l1) is executed speculatively, rolled back, then the
  // else-branch (l2) commits; ph[0] now misses: 513 observable misses and
  // one speculative miss masked by the pipeline.
  {
    StaticPredictor Wrong(true); // predicts taken; actual is fall-through.
    SpeculativeCpu Cpu(*CP->P, MM, Wrong, TimingModel{},
                       /*EnableSpeculation=*/true);
    // The paper's Figure 3 trace rolls back right after the speculative
    // l1 load; pin the window accordingly (a longer window would let the
    // wrong path speculatively touch ph[k] too and refresh its LRU slot).
    Cpu.setWindows({3, 3});
    Cpu.machine().setMemory(CP->P->findVar("p"), 0, 1);
    CpuRunStats Stats = Cpu.run();
    ASSERT_TRUE(Stats.Completed);
    EXPECT_EQ(Stats.Misses, 513u);
    EXPECT_EQ(Stats.Hits, 0u);
    EXPECT_EQ(Stats.SpecMisses, 1u);
    EXPECT_EQ(Stats.Mispredicts, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Figure 7: just-in-time merging
//===----------------------------------------------------------------------===//

namespace {

MustHitReport runFig7(const CompiledProgram &CP, bool Speculative,
                      MergeStrategy Strategy) {
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(4);
  Opts.Speculative = Speculative;
  Opts.Strategy = Strategy;
  return runMustHitAnalysis(CP, Opts);
}

} // namespace

TEST(Fig7Test, NonSpeculativeFinalLoadOfAIsMustHit) {
  auto CP = compile(fig7Source());
  ASSERT_TRUE(CP);
  MustHitReport R = runFig7(*CP, false, MergeStrategy::JustInTime);
  NodeId Final = lastAccessNode(*CP);
  EXPECT_TRUE(R.MustHit[Final]);
}

TEST(Fig7Test, SpeculationEvictsA) {
  auto CP = compile(fig7Source());
  ASSERT_TRUE(CP);
  for (MergeStrategy S :
       {MergeStrategy::NoMerge, MergeStrategy::MergeAtExit,
        MergeStrategy::JustInTime, MergeStrategy::MergeAtRollback}) {
    MustHitReport R = runFig7(*CP, true, S);
    NodeId Final = lastAccessNode(*CP);
    EXPECT_FALSE(R.MustHit[Final]) << mergeStrategyName(S);
  }
}

TEST(Fig7Test, BAndCSurviveUnderJustInTime) {
  auto CP = compile(fig7Source());
  ASSERT_TRUE(CP);
  MustHitReport R = runFig7(*CP, true, MergeStrategy::JustInTime);
  NodeId Final = lastAccessNode(*CP);
  // In the observable state before the final access, b and c must still
  // be cached (the paper's bottom-right state of Figure 7).
  CacheDomain D(CP->G, *R.MM, CacheDomainOptions{});
  CacheAbsState Obs = R.States.observable(D, Final);
  ASSERT_FALSE(Obs.isBottom());
  VarId B = CP->P->findVar("b"), C = CP->P->findVar("c");
  ASSERT_NE(B, InvalidVar);
  ASSERT_NE(C, InvalidVar);
  EXPECT_TRUE(Obs.isMustCached(R.MM->blockOf(B, 0)));
  EXPECT_TRUE(Obs.isMustCached(R.MM->blockOf(C, 0)));
  // a is gone.
  VarId A = CP->P->findVar("a");
  EXPECT_FALSE(Obs.isMustCached(R.MM->blockOf(A, 0)));
}

//===----------------------------------------------------------------------===//
// Figure 11 / Appendix C: shadow variables
//===----------------------------------------------------------------------===//

TEST(Fig11Test, WithoutShadowVariablesAIsEvicted) {
  auto CP = compile(fig11Source());
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(4);
  Opts.Speculative = false;
  Opts.UseShadow = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  NodeId Final = lastAccessNode(*CP);
  EXPECT_FALSE(R.MustHit[Final]);
}

TEST(Fig11Test, ShadowVariablesKeepACached) {
  auto CP = compile(fig11Source());
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(4);
  Opts.Speculative = false;
  Opts.UseShadow = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  NodeId Final = lastAccessNode(*CP);
  // Appendix C: with the NYoung refinement, a stays at age 3 and the
  // final load is a guaranteed hit.
  EXPECT_TRUE(R.MustHit[Final]);
}

//===----------------------------------------------------------------------===//
// quantl (Figure 8, Tables 1-2)
//===----------------------------------------------------------------------===//

TEST(QuantlTest, CompilesAndConverges) {
  auto CP = compile(quantlSource(), "quantl");
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Speculative = true;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  EXPECT_TRUE(R.Converged);
  EXPECT_GE(R.BranchCount, 2u); // Loop condition + sign branch at least.
}

TEST(QuantlTest, SymbolicInstancesAppear) {
  auto CP = compile(quantlSource(), "quantl");
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Speculative = false;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  // The decision-level scan uses a statically unknown index, so the fixed
  // point must mention symbolic instances decis_levl[k*]. At loop fixpoint
  // the MUST side may have aged them out (the join intersects across
  // iterations), but the MAY (shadow) side retains them.
  bool FoundInstance = false;
  for (NodeId N = 0; N != CP->G.size(); ++N) {
    const CacheAbsState &S = R.States.Normal[N];
    if (S.isBottom())
      continue;
    auto Scan = [&](const std::vector<AgedBlock> &Entries) {
      for (const AgedBlock &E : Entries)
        if (R.MM->isSymbolic(E.Block) &&
            R.MM->blockName(E.Block).find("decis_levl[") !=
                std::string::npos)
          FoundInstance = true;
    };
    Scan(S.mustEntries());
    Scan(S.mayEntries());
  }
  EXPECT_TRUE(FoundInstance);
}

TEST(QuantlTest, SpeculationAccessesBothQuantTables) {
  auto CP = compile(quantlSource(), "quantl");
  ASSERT_TRUE(CP);
  MustHitOptions Opts;
  Opts.Speculative = true;
  // Keep rollback states apart (Figure 6a): the just-in-time collector
  // would intersect the shallow-rollback states (which have not touched
  // the table yet) with the deep ones, hiding the combined view.
  Opts.Strategy = MergeStrategy::NoMerge;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  // Table 2's point: under speculation a single execution can touch both
  // quant26bt_pos and quant26bt_neg. A post-rollback state (the paper's
  // red rows) must therefore know about both arrays at once. The joined
  // normal states cannot show this (the MUST join intersects the two
  // sides), which is exactly why the engine keeps them separate.
  VarId Pos = CP->P->findVar("quant26bt_pos");
  VarId Neg = CP->P->findVar("quant26bt_neg");
  ASSERT_NE(Pos, InvalidVar);
  ASSERT_NE(Neg, InvalidVar);
  bool SomeStateSeesBoth = false;
  for (NodeId N = 0; N != CP->G.size(); ++N) {
    const CacheAbsState &PR = R.States.PostRollback[N];
    if (PR.isBottom())
      continue;
    bool SeesPos = false, SeesNeg = false;
    // The unknown-index accesses appear through their symbolic instances,
    // exactly like the paper's Table 2 rows (quant26bt_pos[1*], ...). The
    // MAY side is the union over rollback depths, so it witnesses the
    // deep-rollback execution that touched one table speculatively and
    // the other architecturally.
    for (const AgedBlock &E : PR.mayEntries()) {
      VarId V = R.MM->varOfBlock(E.Block);
      SeesPos |= V == Pos;
      SeesNeg |= V == Neg;
    }
    SomeStateSeesBoth |= SeesPos && SeesNeg;
  }
  EXPECT_TRUE(SomeStateSeesBoth);
}
