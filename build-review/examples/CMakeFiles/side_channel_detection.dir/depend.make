# Empty dependencies file for side_channel_detection.
# This may be replaced when dependencies are built.
