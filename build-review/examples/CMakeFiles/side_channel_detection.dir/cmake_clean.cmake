file(REMOVE_RECURSE
  "CMakeFiles/side_channel_detection.dir/side_channel_detection.cpp.o"
  "CMakeFiles/side_channel_detection.dir/side_channel_detection.cpp.o.d"
  "side_channel_detection"
  "side_channel_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/side_channel_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
