# Empty compiler generated dependencies file for wcet_estimation.
# This may be replaced when dependencies are built.
