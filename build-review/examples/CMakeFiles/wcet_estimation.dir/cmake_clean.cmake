file(REMOVE_RECURSE
  "CMakeFiles/wcet_estimation.dir/wcet_estimation.cpp.o"
  "CMakeFiles/wcet_estimation.dir/wcet_estimation.cpp.o.d"
  "wcet_estimation"
  "wcet_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
