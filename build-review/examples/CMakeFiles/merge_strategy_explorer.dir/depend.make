# Empty dependencies file for merge_strategy_explorer.
# This may be replaced when dependencies are built.
