file(REMOVE_RECURSE
  "CMakeFiles/merge_strategy_explorer.dir/merge_strategy_explorer.cpp.o"
  "CMakeFiles/merge_strategy_explorer.dir/merge_strategy_explorer.cpp.o.d"
  "merge_strategy_explorer"
  "merge_strategy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_strategy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
