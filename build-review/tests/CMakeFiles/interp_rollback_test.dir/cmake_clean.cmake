file(REMOVE_RECURSE
  "CMakeFiles/interp_rollback_test.dir/interp_rollback_test.cpp.o"
  "CMakeFiles/interp_rollback_test.dir/interp_rollback_test.cpp.o.d"
  "interp_rollback_test"
  "interp_rollback_test.pdb"
  "interp_rollback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_rollback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
