# Empty compiler generated dependencies file for interp_rollback_test.
# This may be replaced when dependencies are built.
