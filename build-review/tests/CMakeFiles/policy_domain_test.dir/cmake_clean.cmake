file(REMOVE_RECURSE
  "CMakeFiles/policy_domain_test.dir/policy_domain_test.cpp.o"
  "CMakeFiles/policy_domain_test.dir/policy_domain_test.cpp.o.d"
  "policy_domain_test"
  "policy_domain_test.pdb"
  "policy_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
