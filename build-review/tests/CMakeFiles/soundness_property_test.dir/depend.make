# Empty dependencies file for soundness_property_test.
# This may be replaced when dependencies are built.
