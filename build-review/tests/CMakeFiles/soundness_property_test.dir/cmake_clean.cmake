file(REMOVE_RECURSE
  "CMakeFiles/soundness_property_test.dir/soundness_property_test.cpp.o"
  "CMakeFiles/soundness_property_test.dir/soundness_property_test.cpp.o.d"
  "soundness_property_test"
  "soundness_property_test.pdb"
  "soundness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
