file(REMOVE_RECURSE
  "CMakeFiles/fuzz_oracle_test.dir/fuzz_oracle_test.cpp.o"
  "CMakeFiles/fuzz_oracle_test.dir/fuzz_oracle_test.cpp.o.d"
  "fuzz_oracle_test"
  "fuzz_oracle_test.pdb"
  "fuzz_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
