# Empty dependencies file for fuzz_oracle_test.
# This may be replaced when dependencies are built.
