file(REMOVE_RECURSE
  "CMakeFiles/state_repr_test.dir/state_repr_test.cpp.o"
  "CMakeFiles/state_repr_test.dir/state_repr_test.cpp.o.d"
  "state_repr_test"
  "state_repr_test.pdb"
  "state_repr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_repr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
