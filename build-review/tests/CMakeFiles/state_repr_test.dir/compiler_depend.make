# Empty compiler generated dependencies file for state_repr_test.
# This may be replaced when dependencies are built.
