# Empty compiler generated dependencies file for widening_test.
# This may be replaced when dependencies are built.
