file(REMOVE_RECURSE
  "CMakeFiles/widening_test.dir/widening_test.cpp.o"
  "CMakeFiles/widening_test.dir/widening_test.cpp.o.d"
  "widening_test"
  "widening_test.pdb"
  "widening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
