# Empty compiler generated dependencies file for fuzz_regression_test.
# This may be replaced when dependencies are built.
