file(REMOVE_RECURSE
  "CMakeFiles/fuzz_regression_test.dir/fuzz_regression_test.cpp.o"
  "CMakeFiles/fuzz_regression_test.dir/fuzz_regression_test.cpp.o.d"
  "fuzz_regression_test"
  "fuzz_regression_test.pdb"
  "fuzz_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
