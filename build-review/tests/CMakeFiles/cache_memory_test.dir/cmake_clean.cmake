file(REMOVE_RECURSE
  "CMakeFiles/cache_memory_test.dir/cache_memory_test.cpp.o"
  "CMakeFiles/cache_memory_test.dir/cache_memory_test.cpp.o.d"
  "cache_memory_test"
  "cache_memory_test.pdb"
  "cache_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
