# Empty dependencies file for cache_memory_test.
# This may be replaced when dependencies are built.
