# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/analysis_test[1]_include.cmake")
include("/root/repo/build-review/tests/batch_runner_test[1]_include.cmake")
include("/root/repo/build-review/tests/cache_memory_test[1]_include.cmake")
include("/root/repo/build-review/tests/cfg_test[1]_include.cmake")
include("/root/repo/build-review/tests/domain_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/fuzz_oracle_test[1]_include.cmake")
include("/root/repo/build-review/tests/fuzz_regression_test[1]_include.cmake")
include("/root/repo/build-review/tests/interp_rollback_test[1]_include.cmake")
include("/root/repo/build-review/tests/ir_test[1]_include.cmake")
include("/root/repo/build-review/tests/lexer_test[1]_include.cmake")
include("/root/repo/build-review/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build-review/tests/parser_test[1]_include.cmake")
include("/root/repo/build-review/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build-review/tests/policy_domain_test[1]_include.cmake")
include("/root/repo/build-review/tests/sema_test[1]_include.cmake")
include("/root/repo/build-review/tests/service_test[1]_include.cmake")
include("/root/repo/build-review/tests/soundness_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/state_repr_test[1]_include.cmake")
include("/root/repo/build-review/tests/support_test[1]_include.cmake")
include("/root/repo/build-review/tests/widening_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads_test[1]_include.cmake")
