
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ai/SpeculativeEngine.cpp" "src/CMakeFiles/specai.dir/ai/SpeculativeEngine.cpp.o" "gcc" "src/CMakeFiles/specai.dir/ai/SpeculativeEngine.cpp.o.d"
  "/root/repo/src/ai/Vcfg.cpp" "src/CMakeFiles/specai.dir/ai/Vcfg.cpp.o" "gcc" "src/CMakeFiles/specai.dir/ai/Vcfg.cpp.o.d"
  "/root/repo/src/analysis/AnalysisPipeline.cpp" "src/CMakeFiles/specai.dir/analysis/AnalysisPipeline.cpp.o" "gcc" "src/CMakeFiles/specai.dir/analysis/AnalysisPipeline.cpp.o.d"
  "/root/repo/src/analysis/SideChannel.cpp" "src/CMakeFiles/specai.dir/analysis/SideChannel.cpp.o" "gcc" "src/CMakeFiles/specai.dir/analysis/SideChannel.cpp.o.d"
  "/root/repo/src/analysis/Taint.cpp" "src/CMakeFiles/specai.dir/analysis/Taint.cpp.o" "gcc" "src/CMakeFiles/specai.dir/analysis/Taint.cpp.o.d"
  "/root/repo/src/analysis/Wcet.cpp" "src/CMakeFiles/specai.dir/analysis/Wcet.cpp.o" "gcc" "src/CMakeFiles/specai.dir/analysis/Wcet.cpp.o.d"
  "/root/repo/src/cache/CacheSim.cpp" "src/CMakeFiles/specai.dir/cache/CacheSim.cpp.o" "gcc" "src/CMakeFiles/specai.dir/cache/CacheSim.cpp.o.d"
  "/root/repo/src/cfg/Dominators.cpp" "src/CMakeFiles/specai.dir/cfg/Dominators.cpp.o" "gcc" "src/CMakeFiles/specai.dir/cfg/Dominators.cpp.o.d"
  "/root/repo/src/cfg/FlatCfg.cpp" "src/CMakeFiles/specai.dir/cfg/FlatCfg.cpp.o" "gcc" "src/CMakeFiles/specai.dir/cfg/FlatCfg.cpp.o.d"
  "/root/repo/src/cfg/LoopInfo.cpp" "src/CMakeFiles/specai.dir/cfg/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/specai.dir/cfg/LoopInfo.cpp.o.d"
  "/root/repo/src/domain/CacheDomain.cpp" "src/CMakeFiles/specai.dir/domain/CacheDomain.cpp.o" "gcc" "src/CMakeFiles/specai.dir/domain/CacheDomain.cpp.o.d"
  "/root/repo/src/domain/CacheState.cpp" "src/CMakeFiles/specai.dir/domain/CacheState.cpp.o" "gcc" "src/CMakeFiles/specai.dir/domain/CacheState.cpp.o.d"
  "/root/repo/src/domain/IntervalDomain.cpp" "src/CMakeFiles/specai.dir/domain/IntervalDomain.cpp.o" "gcc" "src/CMakeFiles/specai.dir/domain/IntervalDomain.cpp.o.d"
  "/root/repo/src/driver/BatchRunner.cpp" "src/CMakeFiles/specai.dir/driver/BatchRunner.cpp.o" "gcc" "src/CMakeFiles/specai.dir/driver/BatchRunner.cpp.o.d"
  "/root/repo/src/fuzz/FuzzCampaign.cpp" "src/CMakeFiles/specai.dir/fuzz/FuzzCampaign.cpp.o" "gcc" "src/CMakeFiles/specai.dir/fuzz/FuzzCampaign.cpp.o.d"
  "/root/repo/src/fuzz/LoweringOracle.cpp" "src/CMakeFiles/specai.dir/fuzz/LoweringOracle.cpp.o" "gcc" "src/CMakeFiles/specai.dir/fuzz/LoweringOracle.cpp.o.d"
  "/root/repo/src/fuzz/ProgramGen.cpp" "src/CMakeFiles/specai.dir/fuzz/ProgramGen.cpp.o" "gcc" "src/CMakeFiles/specai.dir/fuzz/ProgramGen.cpp.o.d"
  "/root/repo/src/fuzz/SoundnessOracle.cpp" "src/CMakeFiles/specai.dir/fuzz/SoundnessOracle.cpp.o" "gcc" "src/CMakeFiles/specai.dir/fuzz/SoundnessOracle.cpp.o.d"
  "/root/repo/src/fuzz/StateDigest.cpp" "src/CMakeFiles/specai.dir/fuzz/StateDigest.cpp.o" "gcc" "src/CMakeFiles/specai.dir/fuzz/StateDigest.cpp.o.d"
  "/root/repo/src/ir/Interp.cpp" "src/CMakeFiles/specai.dir/ir/Interp.cpp.o" "gcc" "src/CMakeFiles/specai.dir/ir/Interp.cpp.o.d"
  "/root/repo/src/ir/Ir.cpp" "src/CMakeFiles/specai.dir/ir/Ir.cpp.o" "gcc" "src/CMakeFiles/specai.dir/ir/Ir.cpp.o.d"
  "/root/repo/src/ir/Lowering.cpp" "src/CMakeFiles/specai.dir/ir/Lowering.cpp.o" "gcc" "src/CMakeFiles/specai.dir/ir/Lowering.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/specai.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/specai.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/lang/Ast.cpp" "src/CMakeFiles/specai.dir/lang/Ast.cpp.o" "gcc" "src/CMakeFiles/specai.dir/lang/Ast.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/specai.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/specai.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/specai.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/specai.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/lang/Sema.cpp" "src/CMakeFiles/specai.dir/lang/Sema.cpp.o" "gcc" "src/CMakeFiles/specai.dir/lang/Sema.cpp.o.d"
  "/root/repo/src/memory/MemoryModel.cpp" "src/CMakeFiles/specai.dir/memory/MemoryModel.cpp.o" "gcc" "src/CMakeFiles/specai.dir/memory/MemoryModel.cpp.o.d"
  "/root/repo/src/pipeline/BranchPredictor.cpp" "src/CMakeFiles/specai.dir/pipeline/BranchPredictor.cpp.o" "gcc" "src/CMakeFiles/specai.dir/pipeline/BranchPredictor.cpp.o.d"
  "/root/repo/src/pipeline/SpeculativeCpu.cpp" "src/CMakeFiles/specai.dir/pipeline/SpeculativeCpu.cpp.o" "gcc" "src/CMakeFiles/specai.dir/pipeline/SpeculativeCpu.cpp.o.d"
  "/root/repo/src/service/AnalysisPool.cpp" "src/CMakeFiles/specai.dir/service/AnalysisPool.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/AnalysisPool.cpp.o.d"
  "/root/repo/src/service/Client.cpp" "src/CMakeFiles/specai.dir/service/Client.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/Client.cpp.o.d"
  "/root/repo/src/service/Json.cpp" "src/CMakeFiles/specai.dir/service/Json.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/Json.cpp.o.d"
  "/root/repo/src/service/Protocol.cpp" "src/CMakeFiles/specai.dir/service/Protocol.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/Protocol.cpp.o.d"
  "/root/repo/src/service/Server.cpp" "src/CMakeFiles/specai.dir/service/Server.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/Server.cpp.o.d"
  "/root/repo/src/service/ServiceEngine.cpp" "src/CMakeFiles/specai.dir/service/ServiceEngine.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/ServiceEngine.cpp.o.d"
  "/root/repo/src/service/VerdictCache.cpp" "src/CMakeFiles/specai.dir/service/VerdictCache.cpp.o" "gcc" "src/CMakeFiles/specai.dir/service/VerdictCache.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/specai.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/specai.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/specai.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/specai.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/CMakeFiles/specai.dir/support/Statistics.cpp.o" "gcc" "src/CMakeFiles/specai.dir/support/Statistics.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/CMakeFiles/specai.dir/support/StringUtils.cpp.o" "gcc" "src/CMakeFiles/specai.dir/support/StringUtils.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/specai.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/specai.dir/support/Table.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "src/CMakeFiles/specai.dir/support/Timer.cpp.o" "gcc" "src/CMakeFiles/specai.dir/support/Timer.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/specai.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/specai.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
