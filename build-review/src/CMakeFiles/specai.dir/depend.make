# Empty dependencies file for specai.
# This may be replaced when dependencies are built.
