file(REMOVE_RECURSE
  "libspecai.a"
)
