# Empty compiler generated dependencies file for specai.
# This may be replaced when dependencies are built.
