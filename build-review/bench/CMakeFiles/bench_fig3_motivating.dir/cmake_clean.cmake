file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_motivating.dir/bench_fig3_motivating.cpp.o"
  "CMakeFiles/bench_fig3_motivating.dir/bench_fig3_motivating.cpp.o.d"
  "bench_fig3_motivating"
  "bench_fig3_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
