file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_domain.dir/bench_micro_domain.cpp.o"
  "CMakeFiles/bench_micro_domain.dir/bench_micro_domain.cpp.o.d"
  "bench_micro_domain"
  "bench_micro_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
