# Empty dependencies file for bench_micro_domain.
# This may be replaced when dependencies are built.
