# Empty dependencies file for bench_fig7_merge_example.
# This may be replaced when dependencies are built.
