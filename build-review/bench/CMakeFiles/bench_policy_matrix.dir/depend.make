# Empty dependencies file for bench_policy_matrix.
# This may be replaced when dependencies are built.
