file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_matrix.dir/bench_policy_matrix.cpp.o"
  "CMakeFiles/bench_policy_matrix.dir/bench_policy_matrix.cpp.o.d"
  "bench_policy_matrix"
  "bench_policy_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
