file(REMOVE_RECURSE
  "CMakeFiles/bench_lowering_diff.dir/bench_lowering_diff.cpp.o"
  "CMakeFiles/bench_lowering_diff.dir/bench_lowering_diff.cpp.o.d"
  "bench_lowering_diff"
  "bench_lowering_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lowering_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
