# Empty compiler generated dependencies file for bench_fuzz_verdicts.
# This may be replaced when dependencies are built.
