file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzz_verdicts.dir/bench_fuzz_verdicts.cpp.o"
  "CMakeFiles/bench_fuzz_verdicts.dir/bench_fuzz_verdicts.cpp.o.d"
  "bench_fuzz_verdicts"
  "bench_fuzz_verdicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzz_verdicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
