file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_merging.dir/bench_table6_merging.cpp.o"
  "CMakeFiles/bench_table6_merging.dir/bench_table6_merging.cpp.o.d"
  "bench_table6_merging"
  "bench_table6_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
