# Empty dependencies file for bench_table6_merging.
# This may be replaced when dependencies are built.
