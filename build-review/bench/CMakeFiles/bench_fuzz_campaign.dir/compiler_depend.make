# Empty compiler generated dependencies file for bench_fuzz_campaign.
# This may be replaced when dependencies are built.
