file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzz_campaign.dir/bench_fuzz_campaign.cpp.o"
  "CMakeFiles/bench_fuzz_campaign.dir/bench_fuzz_campaign.cpp.o.d"
  "bench_fuzz_campaign"
  "bench_fuzz_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzz_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
