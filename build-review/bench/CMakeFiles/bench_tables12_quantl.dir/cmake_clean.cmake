file(REMOVE_RECURSE
  "CMakeFiles/bench_tables12_quantl.dir/bench_tables12_quantl.cpp.o"
  "CMakeFiles/bench_tables12_quantl.dir/bench_tables12_quantl.cpp.o.d"
  "bench_tables12_quantl"
  "bench_tables12_quantl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables12_quantl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
