# Empty dependencies file for bench_tables12_quantl.
# This may be replaced when dependencies are built.
