file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_wcet.dir/bench_table5_wcet.cpp.o"
  "CMakeFiles/bench_table5_wcet.dir/bench_table5_wcet.cpp.o.d"
  "bench_table5_wcet"
  "bench_table5_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
