# Empty dependencies file for bench_table5_wcet.
# This may be replaced when dependencies are built.
