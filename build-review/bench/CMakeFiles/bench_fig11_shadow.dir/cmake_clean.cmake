file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_shadow.dir/bench_fig11_shadow.cpp.o"
  "CMakeFiles/bench_fig11_shadow.dir/bench_fig11_shadow.cpp.o.d"
  "bench_fig11_shadow"
  "bench_fig11_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
