# Empty dependencies file for bench_fig11_shadow.
# This may be replaced when dependencies are built.
