file(REMOVE_RECURSE
  "CMakeFiles/bench_service_replay.dir/bench_service_replay.cpp.o"
  "CMakeFiles/bench_service_replay.dir/bench_service_replay.cpp.o.d"
  "bench_service_replay"
  "bench_service_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
