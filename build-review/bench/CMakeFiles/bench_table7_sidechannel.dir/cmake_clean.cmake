file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_sidechannel.dir/bench_table7_sidechannel.cpp.o"
  "CMakeFiles/bench_table7_sidechannel.dir/bench_table7_sidechannel.cpp.o.d"
  "bench_table7_sidechannel"
  "bench_table7_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
