# Empty dependencies file for bench_table7_sidechannel.
# This may be replaced when dependencies are built.
