# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[bench_fig3_motivating_smoke]=] "/root/repo/build-review/bench/bench_fig3_motivating")
set_tests_properties([=[bench_fig3_motivating_smoke]=] PROPERTIES  LABELS "bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_fig7_merge_example_smoke]=] "/root/repo/build-review/bench/bench_fig7_merge_example")
set_tests_properties([=[bench_fig7_merge_example_smoke]=] PROPERTIES  LABELS "bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_fig11_shadow_smoke]=] "/root/repo/build-review/bench/bench_fig11_shadow")
set_tests_properties([=[bench_fig11_shadow_smoke]=] PROPERTIES  LABELS "bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_table6_merging_smoke]=] "/root/repo/build-review/bench/bench_table6_merging")
set_tests_properties([=[bench_table6_merging_smoke]=] PROPERTIES  LABELS "bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_policy_matrix_smoke]=] "/root/repo/build-review/bench/bench_policy_matrix")
set_tests_properties([=[bench_policy_matrix_smoke]=] PROPERTIES  LABELS "bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_lowering_diff_smoke]=] "/root/repo/build-review/bench/bench_lowering_diff")
set_tests_properties([=[bench_lowering_diff_smoke]=] PROPERTIES  LABELS "bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
