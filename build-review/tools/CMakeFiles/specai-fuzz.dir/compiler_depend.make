# Empty compiler generated dependencies file for specai-fuzz.
# This may be replaced when dependencies are built.
