file(REMOVE_RECURSE
  "CMakeFiles/specai-fuzz.dir/specai-fuzz.cpp.o"
  "CMakeFiles/specai-fuzz.dir/specai-fuzz.cpp.o.d"
  "specai-fuzz"
  "specai-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specai-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
