file(REMOVE_RECURSE
  "CMakeFiles/specaid.dir/specaid.cpp.o"
  "CMakeFiles/specaid.dir/specaid.cpp.o.d"
  "specaid"
  "specaid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specaid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
