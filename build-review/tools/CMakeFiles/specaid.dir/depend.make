# Empty dependencies file for specaid.
# This may be replaced when dependencies are built.
