# Empty compiler generated dependencies file for specaid-cli.
# This may be replaced when dependencies are built.
