file(REMOVE_RECURSE
  "CMakeFiles/specaid-cli.dir/specaid-cli.cpp.o"
  "CMakeFiles/specaid-cli.dir/specaid-cli.cpp.o.d"
  "specaid-cli"
  "specaid-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specaid-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
