# Empty dependencies file for specai-cli.
# This may be replaced when dependencies are built.
