file(REMOVE_RECURSE
  "CMakeFiles/specai-cli.dir/specai-cli.cpp.o"
  "CMakeFiles/specai-cli.dir/specai-cli.cpp.o.d"
  "specai-cli"
  "specai-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specai-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
