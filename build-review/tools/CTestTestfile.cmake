# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[specai_fuzz_selftest]=] "/root/repo/build-review/tools/specai-fuzz" "--selftest")
set_tests_properties([=[specai_fuzz_selftest]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
