# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[specai_fuzz_selftest_cache]=] "/root/repo/build-review/tools/specai-fuzz" "--selftest" "cache")
set_tests_properties([=[specai_fuzz_selftest_cache]=] PROPERTIES  LABELS "fuzz" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[specai_fuzz_selftest_wcet]=] "/root/repo/build-review/tools/specai-fuzz" "--selftest" "wcet")
set_tests_properties([=[specai_fuzz_selftest_wcet]=] PROPERTIES  LABELS "fuzz" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[specai_fuzz_selftest_leak]=] "/root/repo/build-review/tools/specai-fuzz" "--selftest" "leak")
set_tests_properties([=[specai_fuzz_selftest_leak]=] PROPERTIES  LABELS "fuzz" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[specai_fuzz_selftest_lowering]=] "/root/repo/build-review/tools/specai-fuzz" "--selftest" "lowering")
set_tests_properties([=[specai_fuzz_selftest_lowering]=] PROPERTIES  LABELS "fuzz" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
