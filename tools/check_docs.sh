#!/bin/sh
# Docs link-and-reference checker (CI-gating; see tools/ci.sh and
# .github/workflows/ci.yml):
#
#  1. every relative markdown link in the repo's *.md files must resolve
#     to an existing file (anchors and external URLs are skipped);
#  2. every `docs/<name>.md` or root-level `<NAME>.md` citation — in docs
#     AND in source comments across src/tools/tests/bench/examples — must
#     name a file that exists.
#
# Rationale: source headers cite design documents (DESIGN.md,
# docs/DOMAINS.md, ...) as normative references; a dangling citation is a
# broken promise to the reader and has gone unnoticed before (DESIGN.md
# was cited from three files for several PRs without existing). Exit 1 on
# the first class of failure, with every offender listed.
set -u

REPO=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$REPO" || exit 1

FAIL=0

# --- 1. Relative markdown links inside *.md files --------------------------
# The whole scan runs inside a command substitution (pipelines spawn
# subshells, which could not set FAIL directly); any captured output means
# at least one broken link.
LINK_ERRS=$(
  for md in *.md docs/*.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # Extract ](target) link targets; strip trailing anchors.
    grep -o '](\([^)]*\))' "$md" 2>/dev/null | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
      case "$target" in
      http://*|https://*|mailto:*|\#*|'') continue ;;
      esac
      path="${target%%#*}"
      [ -n "$path" ] || continue
      # Links resolve relative to the file, or (house style for `docs/...`
      # and root-level files) relative to the repo root.
      if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
        echo "check_docs: $md: broken link -> $target"
      fi
    done
  done
)
if [ -n "$LINK_ERRS" ]; then
  printf '%s\n' "$LINK_ERRS"
  FAIL=1
fi

# --- 2. Doc citations in docs and source comments ---------------------------
# docs/<file>.md anywhere, plus bare root documents whose names are all
# uppercase. Generated artifacts (build trees) are not scanned.
refs=$(
  { grep -rEoh 'docs/[A-Za-z0-9_.-]+\.md' \
      src tools tests bench examples docs ./*.md 2>/dev/null
    grep -rEoh '(^|[^/A-Za-z0-9_.-])[A-Z][A-Z_]+\.md' \
      src tools tests bench examples docs ./*.md 2>/dev/null |
      sed 's/^[^A-Z]*//'
  } | sort -u
)
for ref in $refs; do
  # Bare citations resolve at the repo root or (house style inside docs/
  # prose) in docs/ itself.
  if [ ! -f "$ref" ] && [ ! -f "docs/$ref" ]; then
    echo "check_docs: dangling document citation -> $ref, referenced from:"
    grep -rln "$ref" src tools tests bench examples docs ./*.md 2>/dev/null |
      sed 's/^/check_docs:   /'
    FAIL=1
  fi
done

if [ "$FAIL" -ne 0 ]; then
  echo "check_docs: FAIL"
  exit 1
fi
echo "check_docs: OK (markdown links and document citations all resolve)"
