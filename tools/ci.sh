#!/bin/sh
# Local CI: the same configure + build + test sequence as
# .github/workflows/ci.yml. Run from anywhere; builds into <repo>/build-ci.
set -eu

REPO=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="$REPO/build-ci"
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

# Docs hygiene first (cheapest check): every markdown link and every
# document citation in source comments must resolve (tools/check_docs.sh).
"$REPO/tools/check_docs.sh"

# Daemon-safety greps (docs/SERVICE.md, "Daemon-safety ground rules").
# Library code must never kill the process: a std::exit in src/ would be
# fatal inside the long-lived specaid daemon. And error/warning
# diagnostics must go to stderr everywhere — stdout is the protocol,
# report, and JSON channel, so a stray error line corrupts whatever a
# script is parsing. These regressed silently before (requireRow and
# parseJobsFlag both exited; four benches printed errors to stdout).
if grep -rn 'std::exit\|[^_[:alnum:]]exit *(' \
    "$REPO/src" --include='*.cpp' --include='*.h' |
    grep -v '^\([^:]*\):[0-9]*: *\(//\|\*\)'; then
  echo "ci: FAIL - library code under src/ must not call exit()" >&2
  exit 1
fi
if grep -rn 'printf("error\|printf("warning' \
    "$REPO/src" "$REPO/tools" "$REPO/bench" \
    --include='*.cpp' --include='*.h' | grep -v 'fprintf'; then
  echo "ci: FAIL - diagnostics must go to stderr, not stdout" >&2
  exit 1
fi

# Build-tree hygiene: build directories are disposable (.gitignore covers
# build*/) and must never be committed — a tracked CMakeCache.txt once
# pinned another machine's absolute paths for several PRs. Fails if any
# tracked path lives under a build*/ directory.
if git -C "$REPO" ls-files -- 'build*' | grep -q .; then
  git -C "$REPO" ls-files -- 'build*' | head >&2
  echo "ci: FAIL - tracked files under build*/ (git rm -r --cached them)" >&2
  exit 1
fi

cmake -B "$BUILD" -S "$REPO" -DSPECAI_WERROR=ON
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

# Bounded differential-fuzzing smoke: a fixed-seed campaign (~30 s) that
# fails on any containment violation of the speculative analysis. The
# deeper proof that the oracle can catch a broken engine runs as the
# specai_fuzz_selftest CTest case above. The FIFO/PLRU legs cover the
# non-LRU lattices of docs/DOMAINS.md with a smaller program budget (the
# 20-seed golden corpora in fuzz_regression_test pin their exact states).
"$BUILD/tools/specai-fuzz" --seed 1 --programs 25 --jobs "$JOBS" \
  --ce-dir "$BUILD"
for policy in fifo plru; do
  "$BUILD/tools/specai-fuzz" --seed 1 --programs 10 --jobs "$JOBS" \
    --policy "$policy" --ce-dir "$BUILD"
done

# Verdict-oracle smokes (docs/FUZZING.md, "Verdict oracles"): the WCET
# bound vs the cycle-charging concrete executor, and the leak-freedom
# proofs vs the concrete cache-timing attacker. Campaign JSON lands next
# to the build like the perf smoke's (CI uploads them as artifacts).
# (No pipeline here: POSIX sh has no pipefail, and a pipe into tee would
# mask a violation's exit code from set -e.)
for oracle in wcet leak; do
  "$BUILD/tools/specai-fuzz" --seed 1 --programs 10 --jobs "$JOBS" \
    --oracle "$oracle" --ce-dir "$BUILD" --json \
    > "$BUILD/fuzz_${oracle}_smoke.json"
  cat "$BUILD/fuzz_${oracle}_smoke.json"
done

# Repair smoke (docs/MITIGATION.md): a 10-program synthesize-and-
# revalidate campaign — every leaky program gets a mitigation set whose
# re-analysis proves it leak-free, the patched program replays
# architecturally unchanged under secret-variant attacker families, and
# committed cycles never exceed the claimed WCET bound. The JSON carries
# the repair_* counters (leaky/repaired split, re-analyses, replay runs).
"$BUILD/tools/specai-fuzz" --seed 1 --programs 10 --jobs "$JOBS" \
  --oracle repair --ce-dir "$BUILD" --json \
  > "$BUILD/fuzz_repair_smoke.json"
cat "$BUILD/fuzz_repair_smoke.json"

# Differential-lowering smoke (DESIGN.md §4): deep-call/uncounted-loop
# programs compiled under both InlineUnroll and Summarize, cross-checked
# by the lowering oracle (classification conflicts, concrete must-hit
# refutation, concrete WCET undercut). The JSON carries the lowering_*
# precision-delta counters next to the soundness counters.
"$BUILD/tools/specai-fuzz" --seed 1 --programs 10 --jobs "$JOBS" \
  --oracle lowering --gen-deep --ce-dir "$BUILD" --json \
  > "$BUILD/fuzz_lowering_smoke.json"
cat "$BUILD/fuzz_lowering_smoke.json"

# Fixed-coverage perf smoke: the 50-program campaign behind
# BENCH_fuzz.json, with timing JSON written next to the build
# (informational — timings are machine-dependent and never gate; the
# coverage counters inside are deterministic and the run still fails on
# any soundness violation). docs/PERFORMANCE.md explains the trajectory.
"$BUILD/bench/bench_fuzz_campaign" --jobs "$JOBS" \
  --json "$BUILD/bench_fuzz_campaign.json"
echo "perf smoke timing JSON: $BUILD/bench_fuzz_campaign.json"

# Service smoke (docs/SERVICE.md): boot a real specaid daemon on a
# private socket, drive a 100-request/10-unique trace through it, and
# demand (a) cache hits actually happened and (b) every daemon verdict
# is bit-identical to a fresh in-process run (--check recomputes all
# digests locally). Then the single-file path: the daemon's
# verdict-digest line must match specai-cli --digest on the same input.
SOCK="$BUILD/specaid-ci.sock"
rm -f "$SOCK"
"$BUILD/tools/specaid" --socket "$SOCK" --jobs "$JOBS" --cache 256 \
  > "$BUILD/specaid-ci.log" 2>&1 &
SPECAID_PID=$!
trap 'kill "$SPECAID_PID" 2>/dev/null || true' EXIT
for _ in 1 2 3 4 5 6 7 8 9 10; do
  [ -S "$SOCK" ] && break
  sleep 1
done
"$BUILD/tools/specaid-cli" --socket "$SOCK" \
  --trace 100 --unique 10 --seed 1 --check
DAEMON_DIGEST=$("$BUILD/tools/specaid-cli" --socket "$SOCK" \
  "$REPO/examples/quickstart.mc" --lines 6 || [ $? -eq 2 ])
DAEMON_DIGEST=$(printf '%s\n' "$DAEMON_DIGEST" | grep '^verdict-digest:')
LOCAL_DIGEST=$("$BUILD/tools/specai-cli" "$REPO/examples/quickstart.mc" \
  --lines 6 --digest --leaks || [ $? -eq 2 ])
LOCAL_DIGEST=$(printf '%s\n' "$LOCAL_DIGEST" | grep '^verdict-digest:')
if [ -z "$DAEMON_DIGEST" ] || [ "$DAEMON_DIGEST" != "$LOCAL_DIGEST" ]; then
  echo "ci: FAIL - daemon verdict digest ($DAEMON_DIGEST) !=" \
    "single-shot digest ($LOCAL_DIGEST)" >&2
  exit 1
fi
"$BUILD/tools/specaid-cli" --socket "$SOCK" --shutdown
wait "$SPECAID_PID"
trap - EXIT
echo "service smoke: trace checked, daemon digest matches $LOCAL_DIGEST"

# Chaos smoke (docs/SERVICE.md, "Crash tolerance"): boot a spill-backed
# daemon with a cache small enough that the trace evicts onto disk, load
# it, then kill -9 mid-flight — the worst crash the spill tier must
# survive (torn .tmp files, in-flight analyses, connected clients). A
# fresh daemon restarted over the same spill directory must answer a
# --check replay with zero digest mismatches: every verdict either
# survives the crash intact (checksummed spill file) or is quarantined
# and transparently re-analyzed. The client driving the doomed daemon is
# expected to fail; only the post-restart check gates.
SPILL="$BUILD/specaid-chaos-spill"
rm -rf "$SPILL"
mkdir -p "$SPILL"
rm -f "$SOCK"
"$BUILD/tools/specaid" --socket "$SOCK" --jobs 2 --cache 4 \
  --spill "$SPILL" > "$BUILD/specaid-chaos.log" 2>&1 &
SPECAID_PID=$!
trap 'kill -9 "$SPECAID_PID" 2>/dev/null || true' EXIT
for _ in 1 2 3 4 5 6 7 8 9 10; do
  [ -S "$SOCK" ] && break
  sleep 1
done
# Warm load: 12 uniques through a 4-entry cache forces spill writes.
"$BUILD/tools/specaid-cli" --socket "$SOCK" \
  --trace 24 --unique 12 --seed 3
# Crash mid-flight: a second trace runs while the daemon is killed -9.
"$BUILD/tools/specaid-cli" --socket "$SOCK" \
  --trace 50 --unique 25 --seed 4 > /dev/null 2>&1 &
CHAOS_CLIENT=$!
kill -9 "$SPECAID_PID"
wait "$CHAOS_CLIENT" 2>/dev/null || true
wait "$SPECAID_PID" 2>/dev/null || true
trap - EXIT
# Restart over the same spill directory; --check recomputes every
# verdict locally and exits nonzero on any digest mismatch.
rm -f "$SOCK"
"$BUILD/tools/specaid" --socket "$SOCK" --jobs 2 --cache 4 \
  --spill "$SPILL" > "$BUILD/specaid-chaos2.log" 2>&1 &
SPECAID_PID=$!
trap 'kill "$SPECAID_PID" 2>/dev/null || true' EXIT
for _ in 1 2 3 4 5 6 7 8 9 10; do
  [ -S "$SOCK" ] && break
  sleep 1
done
"$BUILD/tools/specaid-cli" --socket "$SOCK" \
  --trace 24 --unique 12 --seed 3 --check
"$BUILD/tools/specaid-cli" --socket "$SOCK" --shutdown
wait "$SPECAID_PID"
trap - EXIT
echo "chaos smoke: kill -9 + restart over $SPILL, replay bit-identical"

# Thread-sanitizer leg (docs/PERFORMANCE.md, "Intra-analysis
# parallelism"): the intra-analysis pool shares packed cache states
# across per-set join partitions and batched pure-transfer drains, so the
# unit suite and a fuzz smoke run once more under TSan with the pool
# forced wide (--intra-jobs 8). Determinism is pinned separately by the
# jobs-invariance golden tests; this leg pins data-race freedom.
TSAN_BUILD="$REPO/build-tsan"
cmake -B "$TSAN_BUILD" -S "$REPO" -DSPECAI_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$TSAN_BUILD" -j "$JOBS"
ctest --test-dir "$TSAN_BUILD" -L unit --output-on-failure -j "$JOBS"
"$TSAN_BUILD/tools/specai-fuzz" --seed 1 --programs 10 --jobs 1 \
  --intra-jobs 8 --ce-dir "$TSAN_BUILD"
# The repair synthesizer fans every re-analysis through the same pool, so
# its search + revalidation loop gets its own TSan pass under the wide
# pool (fewer programs: each one runs dozens of analyses).
"$TSAN_BUILD/tools/specai-fuzz" --seed 1 --programs 5 --jobs 1 \
  --intra-jobs 8 --oracle repair --ce-dir "$TSAN_BUILD"
echo "tsan leg: unit suite + intra-jobs 8 fuzz and repair smokes race-free"
