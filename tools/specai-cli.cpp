//===- specai-cli.cpp - Command line driver --------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Command line front end for the analysis pipeline:
///
///   specai-cli FILE.mc [options]
///
///   --entry NAME        entry function (default: main)
///   --lowering M        inline (default: inline every call, unroll counted
///                       loops) | summarize (keep loops rolled + widen,
///                       apply per-function speculative summaries at call
///                       sites; DESIGN.md §4)
///   --no-spec           non-speculative baseline (Algorithm 1)
///   --lines N           cache lines (default 512)
///   --assoc N           associativity (default: fully associative)
///   --depth-miss N      b_miss window (default 200)
///   --depth-hit N       b_hit window (default 20)
///   --strategy S        no-merge | merge-at-exit | just-in-time |
///                       merge-at-rollback
///   --policy P          replacement policy: lru (default) | fifo | plru
///                       (per-policy abstract lattices: docs/DOMAINS.md)
///   --no-shadow         disable the Appendix-B shadow refinement
///   --refine            iterative depth refinement (§6.2 outer loop)
///   --dump-ir           print the lowered IR
///   --dump-states       print the fixed-point state at every block entry
///   --leaks             run the side-channel detector
///   --wcet              print the WCET report
///   --batch             run the Figure 6 sweep (all four merge strategies)
///                       in parallel and print one aggregated table
///   --jobs N            worker threads for --batch (default: all cores)
///   --intra-jobs N      worker threads *inside* one analysis (0 = all
///                       cores; default 1). Reports are bit-identical at
///                       any value — a performance knob only
///   --digest            print the program and verdict digests instead of
///                       the full report — the same content-addressed
///                       digests the specaid service computes
///                       (docs/SERVICE.md), so scripts can check a daemon
///                       verdict is bit-identical to a single-shot run
///   --repair            synthesize a minimum-cost mitigation set for every
///                       reported leak (docs/MITIGATION.md) and print the
///                       chosen mitigations, the WCET cost, and the patched
///                       program
///
/// Exit code: 0 on success, 1 on compile/analysis error, 2 when --leaks
/// found a leak (so scripts can gate on it) — in batch mode, when any
/// variant found one (each leaking variant's sites are printed first).
/// --repair exits 0 when every leak was repaired (or there was nothing to
/// repair) and 2 when leaks remain beyond the mitigation menu.
/// --batch results are identical whatever --jobs is; only the timing
/// columns vary. The sweep is inherently speculative and covers every
/// strategy, so --no-spec, --strategy, --wcet, and --dump-states are
/// rejected in combination with --batch rather than silently ignored.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace specai;

namespace {

void usage(std::FILE *To) {
  std::fprintf(To,
      "usage: specai-cli FILE.mc [--entry NAME] [--lowering inline|summarize]\n"
      "       [--no-spec] [--lines N]\n"
      "       [--assoc N] [--depth-miss N] [--depth-hit N] [--strategy S]\n"
      "       [--policy lru|fifo|plru] [--no-shadow] [--refine]\n"
      "       [--dump-ir] [--dump-states] [--leaks] [--wcet] [--batch]\n"
      "       [--jobs N] [--intra-jobs N] [--digest] [--repair]\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage(stderr);
    return 1;
  }

  std::string File;
  LoweringOptions Lowering;
  MustHitOptions Opts;
  uint32_t Lines = 512;
  uint32_t Assoc = 0; // 0 = fully associative.
  bool DumpIr = false, DumpStates = false, Leaks = false, Wcet = false;
  bool Batch = false, StrategySet = false, JobsSet = false, Digest = false;
  bool Repair = false;
  ReplacementPolicy Policy = ReplacementPolicy::Lru;
  unsigned Jobs = 0; // 0 = all hardware threads.

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(1);
      }
      return Argv[++I];
    };
    if (Arg == "--entry") {
      Lowering.EntryFunction = Next();
    } else if (Arg == "--lowering") {
      std::string M = Next();
      if (!parseLoweringMode(M, Lowering.Mode)) {
        std::fprintf(stderr, "error: unknown lowering mode '%s' (inline | summarize)\n",
                    M.c_str());
        return 1;
      }
    } else if (Arg == "--no-spec") {
      Opts.Speculative = false;
    } else if (Arg == "--lines") {
      Lines = static_cast<uint32_t>(std::atoi(Next()));
    } else if (Arg == "--assoc") {
      Assoc = static_cast<uint32_t>(std::atoi(Next()));
    } else if (Arg == "--depth-miss") {
      Opts.DepthMiss = static_cast<uint32_t>(std::atoi(Next()));
    } else if (Arg == "--depth-hit") {
      Opts.DepthHit = static_cast<uint32_t>(std::atoi(Next()));
    } else if (Arg == "--strategy") {
      StrategySet = true;
      std::string S = Next();
      if (S == "no-merge")
        Opts.Strategy = MergeStrategy::NoMerge;
      else if (S == "merge-at-exit")
        Opts.Strategy = MergeStrategy::MergeAtExit;
      else if (S == "just-in-time")
        Opts.Strategy = MergeStrategy::JustInTime;
      else if (S == "merge-at-rollback")
        Opts.Strategy = MergeStrategy::MergeAtRollback;
      else {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", S.c_str());
        return 1;
      }
    } else if (Arg == "--policy") {
      std::string P = Next();
      if (!parseReplacementPolicy(P, Policy)) {
        std::fprintf(stderr, "error: unknown policy '%s' (lru | fifo | plru)\n",
                    P.c_str());
        return 1;
      }
    } else if (Arg == "--intra-jobs") {
      const char *Value = Next();
      std::optional<unsigned> Parsed = parseUnsigned(Value);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: --intra-jobs needs a non-negative number, got '%s'\n",
                     Value);
        return 1;
      }
      Opts.IntraJobs = *Parsed;
    } else if (Arg == "--no-shadow") {
      Opts.UseShadow = false;
    } else if (Arg == "--refine") {
      Opts.IterativeDepthRefinement = true;
    } else if (Arg == "--dump-ir") {
      DumpIr = true;
    } else if (Arg == "--dump-states") {
      DumpStates = true;
    } else if (Arg == "--leaks") {
      Leaks = true;
    } else if (Arg == "--wcet") {
      Wcet = true;
    } else if (Arg == "--batch") {
      Batch = true;
    } else if (Arg == "--digest") {
      Digest = true;
    } else if (Arg == "--repair") {
      Repair = true;
    } else if (Arg == "--jobs") {
      const char *Value = Next();
      std::optional<unsigned> Parsed = parseUnsigned(Value);
      if (!Parsed) {
        std::fprintf(stderr, "error: --jobs needs a non-negative number, got '%s'\n",
                    Value);
        return 1;
      }
      Jobs = *Parsed;
      JobsSet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return 1;
    } else {
      File = Arg;
    }
  }

  if (File.empty()) {
    usage(stderr);
    return 1;
  }
  if (JobsSet && !Batch) {
    std::fprintf(stderr, "error: --jobs only applies to --batch\n");
    return 1;
  }
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  auto CP = compileSource(Buffer.str(), Diags, Lowering);
  if (!CP) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (DumpIr) {
    std::printf("%s\n", CP->P->str().c_str());
    for (const std::unique_ptr<CompiledProgram> &Callee : CP->Callees)
      std::printf("%s\n", Callee->P->str().c_str());
  }

  Opts.Cache = Assoc == 0 ? CacheConfig::fullyAssociative(Lines)
                          : CacheConfig::setAssociative(Lines, Assoc);
  Opts.Cache.Policy = Policy;
  if (!Opts.Cache.isValid()) {
    // PLRU needs a power-of-two way count (the direction bits form a
    // complete binary tree); every other failure is plain geometry.
    if (Policy == ReplacementPolicy::Plru &&
        Opts.Cache.withPolicy(ReplacementPolicy::Lru).isValid())
      std::fprintf(stderr, "error: --policy plru needs power-of-two associativity "
                  "(got %u ways)\n",
                  Opts.Cache.Associativity);
    else
      std::fprintf(stderr, "error: invalid cache geometry (%u lines, %u ways)\n",
                  Lines, Assoc);
    return 1;
  }

  if (Repair) {
    // Repair mode (docs/MITIGATION.md): synthesize the minimum-cost
    // mitigation set whose re-analysis proves every reported leak site
    // leak-free, then print what was chosen and the patched program. The
    // detector runs implicitly; sweep/digest modes answer a different
    // question, so combining them is rejected rather than guessed at.
    if (Batch || Digest || Wcet || DumpStates) {
      std::fprintf(stderr, "error: --repair applies to plain single runs; "
                   "drop --batch/--digest/--wcet/--dump-states\n");
      return 1;
    }
    RepairOptions RO;
    RO.Analysis = Opts;
    RepairResult Res = synthesizeRepairs(*CP, RO);
    if (!Res.Error.empty()) {
      std::fprintf(stderr, "error: %s\n", Res.Error.c_str());
      return 1;
    }
    if (Res.LeaksBefore == 0) {
      std::printf("repair: no leaks reported; program unchanged\n");
      return 0;
    }
    std::printf("repair: %llu leaks, %zu mitigations, wcet %llu -> %llu "
                "(%u candidates, %u reanalyses, %s search)\n",
                static_cast<unsigned long long>(Res.LeaksBefore),
                Res.Applied.size(),
                static_cast<unsigned long long>(Res.WcetBefore),
                static_cast<unsigned long long>(Res.WcetAfter),
                Res.Candidates, Res.Reanalyses,
                Res.UsedExactSearch ? "exact" : "greedy");
    for (const Mitigation &M : Res.Applied)
      std::printf("  %s\n", M.str(Res.Patched).c_str());
    if (!Res.Repaired) {
      std::printf("repair: %llu of %llu leaks remain beyond the mitigation "
                  "menu\n",
                  static_cast<unsigned long long>(Res.LeaksAfter),
                  static_cast<unsigned long long>(Res.LeaksBefore));
      return 2;
    }
    std::printf("patched program:\n%s\n", Res.Patched.str().c_str());
    return 0;
  }

  if (Digest) {
    // Digest mode answers "what would the specaid daemon say" — it runs
    // through the same runRequest entry point the service uses, so the
    // verdict digest it prints must match a service response for the same
    // source and options bit for bit.
    if (Batch || Wcet || DumpStates) {
      std::fprintf(stderr, "error: --digest applies to plain single runs; drop "
                   "--batch/--wcet/--dump-states\n");
      return 1;
    }
    RunRequest Req;
    Req.Source = Buffer.str();
    Req.Lowering = Lowering;
    Req.Options = Opts;
    Req.DetectLeaks = Leaks;
    RunOutcome Out = runRequest(Req);
    if (!Out.Ok) {
      std::fprintf(stderr, "%s", Out.Error.c_str());
      return 1;
    }
    std::printf("program-digest: 0x%016llx\n",
                static_cast<unsigned long long>(Out.ProgramDigest));
    std::printf("verdict-digest: 0x%016llx\n",
                static_cast<unsigned long long>(verdictDigest(Out.Row)));
    if (Leaks && Out.Row.LeakCount != 0) {
      for (const std::string &Site : Out.Row.LeakSites)
        std::printf("%s\n", Site.c_str());
      return 2;
    }
    return 0;
  }

  if (Batch) {
    // Figure 6 / Table 6 sweep: the configured cache/depth/bounding under
    // all four merge strategies, fanned out over the worker pool. The
    // sweep only makes sense speculatively and covers every strategy;
    // refuse contradictions and single-run-only flags rather than
    // silently overriding them.
    if (!Opts.Speculative) {
      std::fprintf(stderr, "error: --batch sweeps merge strategies, which only "
                  "exist speculatively; drop --no-spec\n");
      return 1;
    }
    if (StrategySet) {
      std::fprintf(stderr, "error: --batch sweeps all merge strategies; drop "
                  "--strategy\n");
      return 1;
    }
    if (Wcet || DumpStates) {
      std::fprintf(stderr, "error: %s applies to single runs only; drop it or "
                  "--batch\n",
                  Wcet ? "--wcet" : "--dump-states");
      return 1;
    }
    BatchRunner Runner(Jobs);
    std::vector<BatchVariant> Variants = BatchRunner::mergeStrategySweep(Opts);
    // The detector stays opt-in like in single-run mode; without --leaks
    // the table's Leaks column shows "-".
    for (BatchVariant &V : Variants)
      V.DetectLeaks = Leaks;
    BatchReport Report = Runner.run(*CP, Variants);
    std::printf("batch: %zu variants, %u jobs, %.3fs total\n",
                Report.Rows.size(), Report.JobsUsed, Report.TotalSeconds);
    std::printf("%s", Report.toTable().str().c_str());
    if (Leaks) {
      bool AnyLeak = false;
      for (const BatchRow &Row : Report.Rows) {
        if (Row.LeakCount == 0)
          continue;
        AnyLeak = true;
        for (const std::string &Site : Row.LeakSites)
          std::printf("%s: %s\n", Row.Label.c_str(), Site.c_str());
      }
      if (AnyLeak)
        return 2;
    }
    return 0;
  }

  Timer T;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  std::printf("analysis: %s, %s merging, cache %u x %u B (%u-way %s), "
              "depths (%u, %u)\n",
              Opts.Speculative ? "speculative" : "non-speculative",
              mergeStrategyName(Opts.Strategy), Opts.Cache.NumLines,
              Opts.Cache.LineSize, Opts.Cache.Associativity,
              replacementPolicyName(Opts.Cache.Policy), Opts.DepthHit,
              Opts.DepthMiss);
  std::printf("time: %.3fs  iterations: %llu  converged: %s\n", T.seconds(),
              static_cast<unsigned long long>(R.Iterations),
              R.Converged ? "yes" : "NO");
  std::printf("accesses: %llu  possible misses: %llu  speculative-only "
              "misses: %llu  speculatable branches: %llu\n",
              static_cast<unsigned long long>(R.AccessNodes),
              static_cast<unsigned long long>(R.MissCount),
              static_cast<unsigned long long>(R.SpMissCount),
              static_cast<unsigned long long>(R.BranchCount));

  if (DumpStates) {
    for (BlockId B = 0; B != CP->P->Blocks.size(); ++B) {
      NodeId N = CP->G.blockStart(B);
      if (R.States.Normal[N].isBottom())
        continue;
      std::printf("bb%-3u %-14s %s\n", B, CP->P->Blocks[B].Name.c_str(),
                  R.States.Normal[N].str(*R.MM).c_str());
    }
  }

  if (Wcet) {
    WcetReport W = estimateWcet(*CP, R);
    std::printf("wcet: %llu must-hit sites, %llu possible-miss sites, "
                "cycle bound %llu\n",
                static_cast<unsigned long long>(W.MustHitNodes),
                static_cast<unsigned long long>(W.PossibleMissNodes),
                static_cast<unsigned long long>(W.WorstCaseCycles));
  }

  if (Leaks) {
    SideChannelReport SC = detectLeaks(*CP, R);
    if (SC.leakDetected()) {
      for (const LeakSite &L : SC.Leaks)
        std::printf("%s\n", L.str(*CP->P).c_str());
      return 2;
    }
    std::printf("no leaks: %llu secret-indexed accesses proven "
                "timing-uniform\n",
                static_cast<unsigned long long>(SC.ProvenLeakFree));
  }
  return 0;
}
