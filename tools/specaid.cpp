//===- specaid.cpp - The persistent analysis daemon ------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The specaid daemon (docs/SERVICE.md): listens on a Unix-domain socket
/// for newline-delimited JSON analysis requests, serves repeats from a
/// content-addressed verdict cache, and schedules misses on a bounded
/// worker pool. Runs in the foreground until a `shutdown` request
/// arrives; the socket file is removed on exit.
///
///   specaid --socket PATH [options]
///
///   --socket PATH   Unix socket to listen on (required)
///   --jobs N        analysis worker threads (default: all cores)
///   --cache N       verdict-cache capacity in entries (default 4096)
///   --shards N      verdict-cache shards (default 8)
///   --queue N       queued-analysis bound before `overloaded` (default 64)
///   --spill DIR     existing directory for the cache's disk spill tier
///   --memo N        source-memo capacity before LRU eviction (default 4096)
///   --max-request-bytes N
///                   bound on one buffered request line (default 1 MiB)
///   --inject-fault NAME
///                   arm one rung of the fault matrix (docs/SERVICE.md):
///                   spill-truncate, spill-garbage, worker-stall,
///                   analysis-throw, oversized-request, slow-client.
///                   Testing only — a production daemon never passes this.
///
/// Exit code: 0 after a clean shutdown, 1 on startup failure.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace specai;

namespace {

void usage(std::FILE *To) {
  std::fprintf(To, "usage: specaid --socket PATH [--jobs N] [--cache N] "
                   "[--shards N] [--queue N] [--spill DIR] [--memo N]\n"
                   "               [--max-request-bytes N] "
                   "[--inject-fault NAME]\n");
}

} // namespace

int main(int Argc, char **Argv) {
  // Writes race with client disconnects by design (a timed-out client may
  // close before its response lands); they must surface as EPIPE errors on
  // the one connection, never as a process-killing SIGPIPE. The socket
  // writes also pass MSG_NOSIGNAL, but this covers every other fd too.
  std::signal(SIGPIPE, SIG_IGN);

  std::string SocketPath;
  ServiceEngineOptions Opts;
  ServerOptions SrvOpts;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(1);
      }
      return Argv[++I];
    };
    auto NextUnsigned = [&]() -> unsigned {
      const char *Value = Next();
      std::optional<unsigned> Parsed = parseUnsigned(Value);
      if (!Parsed) {
        std::fprintf(stderr, "error: %s needs a non-negative number, got '%s'\n",
                     Arg.c_str(), Value);
        std::exit(1);
      }
      return *Parsed;
    };
    if (Arg == "--socket") {
      SocketPath = Next();
    } else if (Arg == "--jobs") {
      Opts.Jobs = NextUnsigned();
    } else if (Arg == "--cache") {
      Opts.CacheEntries = NextUnsigned();
    } else if (Arg == "--shards") {
      Opts.CacheShards = NextUnsigned();
    } else if (Arg == "--queue") {
      Opts.QueueCapacity = NextUnsigned();
    } else if (Arg == "--spill") {
      Opts.SpillDir = Next();
    } else if (Arg == "--memo") {
      Opts.MemoEntries = NextUnsigned();
    } else if (Arg == "--max-request-bytes") {
      SrvOpts.MaxRequestBytes = NextUnsigned();
    } else if (Arg == "--inject-fault") {
      std::string Name = Next();
      ServiceFault F;
      if (!parseServiceFault(Name, F)) {
        std::fprintf(stderr, "error: unknown fault '%s'\n", Name.c_str());
        return 1;
      }
      // One flag arms both layers; each rung acts in exactly one of them
      // (the spill/analysis rungs in the engine, the transport rungs in
      // the server), so double-arming is harmless.
      Opts.Fault = F;
      SrvOpts.Fault = F;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr, "error: --socket PATH is required\n");
    usage(stderr);
    return 1;
  }
  if (Opts.CacheEntries == 0) {
    std::fprintf(stderr, "error: --cache must be at least 1\n");
    return 1;
  }

  if (SrvOpts.MaxRequestBytes == 0) {
    std::fprintf(stderr, "error: --max-request-bytes must be at least 1\n");
    return 1;
  }
  if (Opts.Fault != ServiceFault::None)
    std::fprintf(stderr, "specaid: warning: fault '%s' armed — this daemon "
                         "is intentionally broken for testing\n",
                 serviceFaultName(Opts.Fault));

  ServiceEngine Engine(Opts);
  ServiceServer Server(Engine, SrvOpts);
  std::string Error;
  if (!Server.start(SocketPath, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("specaid: listening on %s (%u jobs, %llu cache entries, "
              "queue %zu)\n",
              SocketPath.c_str(), Engine.jobCount(),
              static_cast<unsigned long long>(Opts.CacheEntries),
              Opts.QueueCapacity);
  std::fflush(stdout); // Launch scripts wait for this line.

  Server.wait();

  ServiceEngineStats S = Engine.stats();
  std::printf("specaid: served %llu requests (%llu cache hits, %llu "
              "analyses, %llu overloaded) over %llu connections\n",
              static_cast<unsigned long long>(S.Requests),
              static_cast<unsigned long long>(S.CacheHits),
              static_cast<unsigned long long>(S.AnalysesRun),
              static_cast<unsigned long long>(S.Overloaded),
              static_cast<unsigned long long>(Server.connectionCount()));
  return 0;
}
