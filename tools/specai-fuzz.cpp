//===- specai-fuzz.cpp - Differential soundness fuzzing driver ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Command line driver for differential soundness fuzzing:
///
///   specai-fuzz [options]            run a campaign
///   specai-fuzz --selftest [SUITE]   prove the oracles catch a broken
///                                    engine/verdict/lowering/repair layer
///                                    (also CTest cases; SUITE:
///                                    cache|wcet|leak|lowering|repair|all)
///   specai-fuzz --replay FILE.mc     re-check a recorded counterexample
///
///   --seed N            base seed (default 1); program i uses seed N+i
///   --programs N        programs per campaign (default 100)
///   --jobs N            worker threads (default: all cores). Campaign
///                       summaries are identical for any --jobs value.
///   --intra-jobs N      worker threads *inside* each analysis (0 = all
///                       cores; default 1). Summaries and digests are
///                       bit-identical at any value.
///   --oracle K          which differential oracles to run: cache
///                       (default; abstract-state containment) | wcet
///                       (concrete cycles vs estimateWcet bound) | leak
///                       (concrete timing attacker vs leak-freedom
///                       proofs) | lowering (summarize-vs-inline-unroll
///                       diff; src/fuzz/LoweringOracle.h) | repair
///                       (synthesize-and-revalidate mitigation sets;
///                       src/fuzz/RepairOracle.h) | all (= cache, wcet,
///                       leak; lowering and repair stay opt-in so classic
///                       campaign counters stay pinned). Repeatable;
///                       repeats OR together.
///   --gen-deep          generate helper functions (deeper call chains)
///                       plus call statements — the workload the lowering
///                       oracle is for
///   --lines N           cache lines of the oracle geometry (default 8)
///   --assoc N           associativity (default: fully associative)
///   --policy P          replacement policy to validate: lru (default) |
///                       fifo | plru | all (one oracle sweep per policy
///                       and program; lattices in docs/DOMAINS.md)
///   --depth-miss N      b_miss window (default 24)
///   --depth-hit N       b_hit window (default 6)
///   --exhaustive-bits N exhaustive prediction-script DFS depth (default 5)
///   --input-rounds N    input vectors per program (default 2)
///   --leak-secrets N    secret variants per leak-attacker family
///                       (default 3)
///   --leak-rounds N     leak-attacker families per program (default 2)
///   --no-shadow         disable the MAY (shadow) refinement + its checks
///   --no-minimize       keep counterexamples unminimized
///   --ce-dir DIR        where to write counterexample .mc files (default .)
///   --json              print the campaign summary as JSON
///   --inject-fault K    deliberately break the stack under test:
///                       engine faults skip-spec-seed | skip-rollback,
///                       verdict faults wcet-hit-for-miss |
///                       wcet-drop-loop-scale | leak-skip-mixed |
///                       leak-discount-spec | leak-drop-spec-only,
///                       lowering faults drop-widen | stale-summary |
///                       skip-backedge (summarize side only),
///                       repair faults fence-dropped | cost-underreported
///                       | clamp-ignored | unsound-hoist (synthesizer
///                       emission only)
///                       (self-test aid)
///
/// Exit code: 0 sound, 1 usage/compile error, 2 violations found (so CI
/// can gate on it).
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace specai;

namespace {

void usage(std::FILE *To) {
  std::fprintf(To,
      "usage: specai-fuzz [--seed N] [--programs N] [--jobs N] [--lines N]\n"
      "       [--intra-jobs N]\n"
      "       [--oracle cache|wcet|leak|lowering|repair|all] [--assoc N]\n"
      "       [--policy lru|fifo|plru|all] [--depth-miss N]\n"
      "       [--depth-hit N] [--gen-deep]\n"
      "       [--exhaustive-bits N] [--input-rounds N] [--leak-secrets N]\n"
      "       [--leak-rounds N] [--no-shadow]\n"
      "       [--no-minimize] [--ce-dir DIR] [--json]\n"
      "       [--inject-fault skip-spec-seed|skip-rollback|\n"
      "         wcet-hit-for-miss|wcet-drop-loop-scale|leak-skip-mixed|\n"
      "         leak-discount-spec|leak-drop-spec-only|drop-widen|\n"
      "         stale-summary|skip-backedge|fence-dropped|\n"
      "         cost-underreported|clamp-ignored|unsound-hoist]\n"
      "       [--selftest [cache|wcet|leak|lowering|repair|all]]\n"
      "       [--replay FILE.mc]\n");
}

unsigned parseNum(const char *Arg, const char *Value) {
  std::optional<unsigned> N = parseUnsigned(Value);
  if (!N) {
    std::fprintf(stderr, "error: %s needs a non-negative number, got '%s'\n", Arg,
                Value);
    std::exit(1);
  }
  return *N;
}

std::string campaignJson(const FuzzCampaignStats &S) {
  double PerSec = S.Seconds > 0 ? S.Programs / S.Seconds : 0;
  std::string Out = "{";
  auto Field = [&](const char *Key, const std::string &Value, bool Last) {
    Out += "\"";
    Out += Key;
    Out += "\": ";
    Out += Value;
    Out += Last ? "" : ", ";
  };
  Field("programs", std::to_string(S.Programs), false);
  Field("compile_failures", std::to_string(S.CompileFailures), false);
  Field("analyses", std::to_string(S.Oracle.Analyses), false);
  Field("concrete_runs", std::to_string(S.Oracle.ConcreteRuns), false);
  Field("speculative_windows",
        std::to_string(S.Oracle.SpeculativeWindows), false);
  Field("committed_checks", std::to_string(S.Oracle.CommittedChecks), false);
  Field("speculative_checks", std::to_string(S.Oracle.SpeculativeChecks),
        false);
  Field("wcet_checks", std::to_string(S.Oracle.WcetChecks), false);
  Field("leak_families", std::to_string(S.Oracle.LeakFamilies), false);
  Field("leak_runs", std::to_string(S.Oracle.LeakRuns), false);
  Field("leak_site_checks", std::to_string(S.Oracle.LeakSiteChecks), false);
  Field("lowering_diffs", std::to_string(S.Oracle.LoweringDiffs), false);
  Field("lowering_loc_checks", std::to_string(S.Oracle.LoweringLocChecks),
        false);
  Field("lowering_wcet_checks", std::to_string(S.Oracle.LoweringWcetChecks),
        false);
  Field("lowering_concrete_checks",
        std::to_string(S.Oracle.LoweringConcreteChecks), false);
  Field("lowering_sum_only_must_hits",
        std::to_string(S.Oracle.LoweringSumOnlyMustHits), false);
  Field("lowering_unrolled_only_must_hits",
        std::to_string(S.Oracle.LoweringUnrolledOnlyMustHits), false);
  Field("lowering_wcet_tighter",
        std::to_string(S.Oracle.LoweringWcetTighter), false);
  Field("lowering_wcet_looser",
        std::to_string(S.Oracle.LoweringWcetLooser), false);
  Field("lowering_leak_deltas",
        std::to_string(S.Oracle.LoweringLeakDeltas), false);
  // Repair counters only when that oracle ran, so default (non-repair)
  // campaign JSON stays byte-identical to the pre-repair fuzzer's.
  if (S.Oracle.RepairChecks > 0) {
    Field("repair_checks", std::to_string(S.Oracle.RepairChecks), false);
    Field("repair_leaky_programs",
          std::to_string(S.Oracle.RepairLeakyPrograms), false);
    Field("repair_repaired", std::to_string(S.Oracle.RepairRepaired), false);
    Field("repair_mitigations", std::to_string(S.Oracle.RepairMitigations),
          false);
    Field("repair_cost_total", std::to_string(S.Oracle.RepairCostTotal),
          false);
    Field("repair_reanalyses", std::to_string(S.Oracle.RepairReanalyses),
          false);
    Field("repair_replay_runs", std::to_string(S.Oracle.RepairReplayRuns),
          false);
    Field("repair_cost_checks", std::to_string(S.Oracle.RepairCostChecks),
          false);
    Field("repair_violations", std::to_string(S.RepairViolations), false);
  }
  Field("violation_programs", std::to_string(S.ViolationPrograms), false);
  Field("cache_violations", std::to_string(S.CacheViolations), false);
  Field("wcet_violations", std::to_string(S.WcetViolations), false);
  Field("leak_violations", std::to_string(S.LeakViolations), false);
  Field("lowering_violations", std::to_string(S.LoweringViolations), false);
  Field("seconds", formatDouble(S.Seconds, 3), false);
  Field("programs_per_sec", formatDouble(PerSec, 1), true);
  Out += "}";
  return Out;
}

/// Writes every counterexample to CeDir and prints a triage summary.
void reportCounterexamples(const FuzzCampaignResult &R,
                           const SoundnessOracleOptions &Oracle,
                           const std::string &CeDir) {
  for (const Counterexample &CE : R.Counterexamples) {
    std::string Path = CeDir + "/fuzz-ce-seed" +
                       std::to_string(CE.ProgramSeed) + ".mc";
    std::printf("counterexample (seed %llu, %zu -> %zu stmts): %s\n",
                static_cast<unsigned long long>(CE.ProgramSeed),
                CE.StmtsBefore, CE.StmtsAfter, CE.Pretty.c_str());
    std::ofstream Out(Path);
    Out << CE.replayFile(Oracle);
    Out.flush();
    if (Out.good()) {
      std::printf("  written to %s\n", Path.c_str());
    } else {
      // Losing the replayable artifact silently would defeat the whole
      // minimization pipeline; dump it to stderr with the error instead.
      std::fprintf(stderr,
                   "  error: cannot write %s; counterexample follows:\n%s\n",
                   Path.c_str(), CE.replayFile(Oracle).c_str());
    }
  }
}

/// One self-test campaign into \p ResultOut. Lowering suites generate deep
/// programs (helper functions + calls): the stale-summary fault can only
/// fire at a call site, and the other lowering faults want rolled loops in
/// callees too.
void selftestCampaign(EngineFault EF, VerdictFault VF, LoweringFault LF,
                      RepairFault RF, unsigned Oracles, unsigned Programs,
                      FuzzCampaignResult &ResultOut) {
  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = Programs;
  O.Jobs = 0;
  O.Oracle.Fault = EF;
  O.Oracle.VFault = VF;
  O.Oracle.LFault = LF;
  O.Oracle.RFault = RF;
  O.Oracle.Oracles = Oracles;
  O.Gen.Functions = (Oracles & OracleLowering) != 0;
  // Trim per-program effort: the self-test proves detection, not coverage.
  O.Oracle.ExhaustiveBits = 4;
  O.Oracle.SampledScripts = 4;
  O.Oracle.InputRounds = 1;
  ResultOut = runFuzzCampaign(O);
}

/// The fault-injection matrix: every oracle must catch >= 2 deliberate
/// breaks of the layer it validates, each with a minimized, replayable
/// counterexample. `Suites` is an OracleKind mask selecting which rows
/// (and which healthy-campaign oracles) run.
int selftest(unsigned Suites) {
  int Failures = 0;

  FuzzCampaignResult Healthy;
  selftestCampaign(EngineFault::None, VerdictFault::None,
                   LoweringFault::None, RepairFault::None, Suites, 8,
                   Healthy);
  if (Healthy.ok()) {
    std::printf("selftest: healthy engine+verdicts (--oracle %s), 8 "
                "programs ... ok\n",
                oracleKindName(Suites));
  } else {
    std::printf("selftest: healthy engine+verdicts FAILED: %llu violating "
                "programs\n",
                static_cast<unsigned long long>(
                    Healthy.Stats.ViolationPrograms));
    SoundnessOracleOptions HO;
    HO.Oracles = Suites;
    reportCounterexamples(Healthy, HO, ".");
    ++Failures;
  }

  struct FaultCase {
    const char *Name;
    EngineFault EF;
    VerdictFault VF;
    LoweringFault LF;
    RepairFault RF;
    unsigned Oracle; ///< The single oracle expected to catch it.
    unsigned Programs;
    /// Demand a strictly shrinking minimization (only meaningful for
    /// faults that fire on nearly every program, where <= is vacuous).
    bool StrictShrink;
  };
  const FaultCase Matrix[] = {
      {"skip-spec-seed", EngineFault::SkipSpecSeed, VerdictFault::None,
       LoweringFault::None, RepairFault::None, OracleCache, 8, true},
      {"skip-rollback", EngineFault::SkipRollback, VerdictFault::None,
       LoweringFault::None, RepairFault::None, OracleCache, 24, false},
      {"wcet-hit-for-miss", EngineFault::None, VerdictFault::WcetHitForMiss,
       LoweringFault::None, RepairFault::None, OracleWcet, 16, false},
      {"wcet-drop-loop-scale", EngineFault::None,
       VerdictFault::WcetDropLoopScale, LoweringFault::None,
       RepairFault::None, OracleWcet, 32, false},
      {"leak-skip-mixed", EngineFault::None, VerdictFault::LeakSkipMixed,
       LoweringFault::None, RepairFault::None, OracleLeak, 16, false},
      {"leak-discount-spec", EngineFault::None,
       VerdictFault::LeakDiscountSpeculation, LoweringFault::None,
       RepairFault::None, OracleLeak, 32, false},
      {"leak-drop-spec-only", EngineFault::None,
       VerdictFault::LeakDropSpecOnly, LoweringFault::None,
       RepairFault::None, OracleLeak, 32, false},
      {"drop-widen", EngineFault::None, VerdictFault::None,
       LoweringFault::DropWiden, RepairFault::None, OracleLowering, 24,
       false},
      {"stale-summary", EngineFault::None, VerdictFault::None,
       LoweringFault::StaleSummary, RepairFault::None, OracleLowering, 24,
       false},
      {"skip-backedge", EngineFault::None, VerdictFault::None,
       LoweringFault::SkipBackedge, RepairFault::None, OracleLowering, 24,
       false},
      // The repair ladder: each rung corrupts one emitted artifact of the
      // synthesizer, and an independent judge of checkRepair must convict
      // it (re-analysis, cost estimator, or concrete equivalence replay).
      {"fence-dropped", EngineFault::None, VerdictFault::None,
       LoweringFault::None, RepairFault::FenceDropped, OracleRepair, 12,
       false},
      {"cost-underreported", EngineFault::None, VerdictFault::None,
       LoweringFault::None, RepairFault::CostUnderreported, OracleRepair,
       12, false},
      {"clamp-ignored", EngineFault::None, VerdictFault::None,
       LoweringFault::None, RepairFault::ClampIgnored, OracleRepair, 12,
       false},
      {"unsound-hoist", EngineFault::None, VerdictFault::None,
       LoweringFault::None, RepairFault::UnsoundHoist, OracleRepair, 12,
       false},
  };

  for (const FaultCase &C : Matrix) {
    if (!(Suites & C.Oracle))
      continue;
    FuzzCampaignResult Broken;
    selftestCampaign(C.EF, C.VF, C.LF, C.RF, C.Oracle, C.Programs, Broken);
    if (Broken.ok()) {
      std::printf("selftest: %s fault NOT caught in %u programs ... "
                  "FAILED\n",
                  C.Name, C.Programs);
      ++Failures;
      continue;
    }
    const Counterexample &CE = Broken.Counterexamples.front();
    bool Minimized = !C.StrictShrink || CE.StmtsAfter < CE.StmtsBefore ||
                     CE.StmtsBefore <= 1;

    // The counterexample must replay: same broken stack, recorded
    // scenario, still violating — and its .mc rendering must carry the
    // oracle tag --replay keys on.
    SoundnessOracleOptions RO;
    RO.Oracles = C.Oracle;
    RO.Fault = C.EF;
    RO.VFault = C.VF;
    RO.LFault = C.LF;
    RO.RFault = C.RF;
    std::string File = CE.replayFile(RO);
    bool Tagged = File.find("// replay-oracle: ") != std::string::npos;
    bool Reproduced = false;
    if (C.Oracle == OracleRepair) {
      // Repair counterexamples replay through the whole
      // synthesize-and-revalidate pipeline (checkRepair forces Fixed
      // bounding itself), with concrete inputs re-derived from the seed.
      SoundnessOracleOptions Single = RO;
      Single.Strategies = {CE.V.Strategy};
      OracleStats ReplayStats;
      Reproduced = checkRepair(CE.Source, CE.InputScalars, CE.InputArrays,
                               CE.ProgramSeed, Single, ReplayStats)
                       .has_value();
    } else if (C.Oracle == OracleLowering) {
      // Lowering counterexamples replay through the diff itself: same
      // injected fault, just the recorded (strategy, bounding) pair, and
      // concrete inputs re-derived from the recorded seed.
      SoundnessOracleOptions Single = RO;
      Single.Strategies = {CE.V.Strategy};
      Single.Boundings = {CE.V.Bounding};
      OracleStats ReplayStats;
      Reproduced = checkLoweringDiff(CE.Source, CE.InputScalars,
                                     CE.InputArrays, CE.ProgramSeed, Single,
                                     ReplayStats)
                       .has_value();
    } else {
      DiagnosticEngine Diags;
      if (auto CP = compileSource(CE.Source, Diags)) {
        SoundnessOracleOptions Single = RO;
        Single.Strategies = {CE.V.Strategy};
        Single.Boundings = {CE.V.Bounding};
        SoundnessOracle Oracle(*CP, CE.InputScalars, CE.InputArrays,
                               Single);
        Reproduced = Oracle.checkRun(CE.V.Run).has_value();
      }
    }
    bool Ok = Minimized && Tagged && Reproduced;
    std::printf("selftest: %s fault caught (%llu/%u programs, %zu -> %zu "
                "stmts, first: %s) ... %s\n",
                C.Name,
                static_cast<unsigned long long>(
                    Broken.Stats.ViolationPrograms),
                C.Programs, CE.StmtsBefore, CE.StmtsAfter,
                CE.Pretty.c_str(), Ok ? "ok" : "FAILED");
    if (!Ok) {
      if (!Minimized)
        std::printf("  minimizer made no progress\n");
      if (!Tagged)
        std::printf("  replay file lacks the // replay-oracle: header\n");
      if (!Reproduced)
        std::printf("  recorded scenario did not reproduce on replay\n");
      ++Failures;
    }
  }

  std::printf("selftest: %s\n", Failures == 0 ? "PASS" : "FAIL");
  return Failures == 0 ? 0 : 1;
}

/// Parses one "// replay-key: value" header line; returns true and fills
/// Key/Value on match.
bool parseReplayLine(const std::string &Line, std::string &Key,
                     std::string &Value) {
  const std::string Prefix = "// replay-";
  if (Line.rfind(Prefix, 0) != 0)
    return false;
  size_t Colon = Line.find(':', Prefix.size());
  if (Colon == std::string::npos)
    return false;
  Key = Line.substr(Prefix.size(), Colon - Prefix.size());
  Value = Line.substr(Colon + 1);
  while (!Value.empty() && Value.front() == ' ')
    Value.erase(Value.begin());
  return true;
}

int replay(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  SoundnessOracleOptions Opts;
  RunSpec Spec;
  std::vector<std::string> Scalars;
  std::vector<std::pair<std::string, unsigned>> Arrays;
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  BoundingMode Bounding = BoundingMode::Fixed;
  unsigned OracleMask = OracleCache; // Pre-verdict files carry no header.
  uint64_t Seed = 0; // Lowering diffs re-derive inputs from this.

  std::istringstream Lines(Text);
  std::string Line, Key, Value;
  while (std::getline(Lines, Line)) {
    if (!parseReplayLine(Line, Key, Value))
      continue;
    std::istringstream V(Value);
    if (Key == "oracle") {
      if (!parseOracleKind(Value, OracleMask)) {
        std::fprintf(stderr, "error: unknown replay-oracle '%s'\n", Value.c_str());
        return 1;
      }
    } else if (Key == "wcet") {
      unsigned Hit = 2, Miss = 100, Alu = 1, Branch = 10;
      // A partially matched header would silently check under a different
      // timing model and report "did not reproduce"; fail loudly instead.
      if (std::sscanf(Value.c_str(), "hit=%u,miss=%u,alu=%u,branch=%u",
                      &Hit, &Miss, &Alu, &Branch) != 4) {
        std::fprintf(stderr, "error: malformed replay-wcet header '%s'\n",
                    Value.c_str());
        return 1;
      }
      Opts.Wcet.Timing.HitLatency = Hit;
      Opts.Wcet.Timing.MissLatency = Miss;
      Opts.Wcet.Timing.AluLatency = Alu;
      Opts.Wcet.Timing.BranchResolveLatency = Branch;
    } else if (Key == "seed") {
      Seed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Key == "lowering") {
      // The only recorded mode is the summarize diff (the inline-unroll
      // side is the implicit reference); anything else is a corrupt file.
      if (Value != "summarize") {
        std::fprintf(stderr, "error: unknown replay-lowering '%s'\n", Value.c_str());
        return 1;
      }
    } else if (Key == "lowering-fault") {
      // A lowering self-test counterexample; replay against the same
      // deliberately broken summarize lowering.
      if (!parseLoweringFault(Value, Opts.LFault)) {
        std::fprintf(stderr, "error: unknown replay-lowering-fault '%s'\n",
                    Value.c_str());
        return 1;
      }
    } else if (Key == "repair") {
      // The only recorded mode is full synthesis (the revalidation judges
      // are implicit); anything else is a corrupt file.
      if (Value != "synthesize") {
        std::fprintf(stderr, "error: unknown replay-repair '%s'\n",
                    Value.c_str());
        return 1;
      }
    } else if (Key == "repair-fault") {
      // A repair self-test counterexample; replay against the same
      // deliberately corrupted synthesizer emission.
      if (!parseRepairFault(Value, Opts.RFault)) {
        std::fprintf(stderr, "error: unknown replay-repair-fault '%s'\n",
                    Value.c_str());
        return 1;
      }
    } else if (Key == "verdict-fault") {
      // A self-test counterexample; replay against the same deliberately
      // broken verdict layer.
      if (!parseVerdictFault(Value, Opts.VFault)) {
        std::fprintf(stderr, "error: unknown replay-verdict-fault '%s'\n",
                    Value.c_str());
        return 1;
      }
    } else if (Key == "secret") {
      // "v<variant> e0 e1 ...": lines arrive grouped by variant, one per
      // secret array, in the oracle's secret-array order. A malformed tag
      // would silently rebuild the wrong family shape and read as "did
      // not reproduce"; fail loudly like the other replay headers.
      std::string Tag;
      V >> Tag;
      char *TagEnd = nullptr;
      size_t Variant =
          Tag.size() > 1 && Tag[0] == 'v'
              ? std::strtoull(Tag.c_str() + 1, &TagEnd, 10)
              : 0;
      if (Tag.size() < 2 || Tag[0] != 'v' || !TagEnd || *TagEnd != '\0') {
        std::fprintf(stderr, "error: malformed replay-secret variant tag '%s'\n",
                    Tag.c_str());
        return 1;
      }
      if (Spec.SecretVariants.size() <= Variant)
        Spec.SecretVariants.resize(Variant + 1);
      std::vector<int64_t> Values;
      int64_t E;
      while (V >> E)
        Values.push_back(E);
      Spec.SecretVariants[Variant].push_back(std::move(Values));
    } else if (Key == "strategy") {
      if (Value == "no-merge")
        Strategy = MergeStrategy::NoMerge;
      else if (Value == "merge-at-exit")
        Strategy = MergeStrategy::MergeAtExit;
      else if (Value == "just-in-time")
        Strategy = MergeStrategy::JustInTime;
      else if (Value == "merge-at-rollback")
        Strategy = MergeStrategy::MergeAtRollback;
    } else if (Key == "bounding") {
      Bounding = Value == "dynamic" ? BoundingMode::Dynamic
                                    : BoundingMode::Fixed;
    } else if (Key == "cache") {
      unsigned L = 8, A = 0, B = 64;
      std::sscanf(Value.c_str(), "lines=%u,assoc=%u,linesize=%u", &L, &A,
                  &B);
      Opts.Cache = CacheConfig{B, L, A == 0 ? L : A};
    } else if (Key == "depths") {
      unsigned Miss = 24, Hit = 6;
      std::sscanf(Value.c_str(), "miss=%u,hit=%u", &Miss, &Hit);
      Opts.DepthMiss = Miss;
      Opts.DepthHit = Hit;
    } else if (Key == "policy") {
      if (!parseReplacementPolicy(Value, Opts.Cache.Policy)) {
        std::fprintf(stderr, "error: unknown replay-policy '%s'\n", Value.c_str());
        return 1;
      }
    } else if (Key == "shadow") {
      Opts.UseShadow = Value == "on";
    } else if (Key == "fault") {
      // The counterexample came from a fault-injected (self-test) run;
      // replay against the same deliberately broken engine.
      if (Value == "skip-spec-seed")
        Opts.Fault = EngineFault::SkipSpecSeed;
      else if (Value == "skip-rollback")
        Opts.Fault = EngineFault::SkipRollback;
    } else if (Key == "predictor") {
      Spec.PredictorName = Value;
    } else if (Key == "script") {
      std::string Bits, Fallback;
      V >> Bits >> Fallback;
      for (char C : Bits)
        if (C == 'T' || C == 'N') // "-" marks an empty script.
          Spec.Script.push_back(C == 'T');
      Spec.Fallback = Fallback == "fallback=T";
    } else if (Key == "scalars") {
      std::string Pair;
      while (V >> Pair) {
        size_t Eq = Pair.find('=');
        if (Eq == std::string::npos)
          continue;
        Scalars.push_back(Pair.substr(0, Eq));
        Spec.ScalarValues.push_back(std::atoll(Pair.c_str() + Eq + 1));
      }
    } else if (Key == "array") {
      std::string Name;
      V >> Name;
      std::vector<int64_t> Values;
      int64_t E;
      while (V >> E)
        Values.push_back(E);
      Arrays.push_back({Name, static_cast<unsigned>(Values.size())});
      Spec.ArrayValues.push_back(std::move(Values));
    } else if (Key == "windows") {
      uint32_t W;
      while (V >> W)
        Spec.SiteWindows.push_back(W);
    }
  }
  Opts.Strategies = {Strategy};
  Opts.Boundings = {Bounding};
  Opts.Oracles = OracleMask;

  // An unknown predictor name would make the oracle silently skip the run
  // and a real counterexample would read as "did not reproduce" — fail
  // loudly instead.
  if (!Spec.PredictorName.empty()) {
    bool Known = false;
    for (auto &P : makeStandardPredictors())
      Known |= P->name() == Spec.PredictorName;
    if (!Known) {
      std::fprintf(stderr, "error: unknown replay-predictor '%s'\n",
                  Spec.PredictorName.c_str());
      return 1;
    }
  }

  DiagnosticEngine Diags;
  auto CP = compileSource(Text, Diags);
  if (!CP) {
    std::fprintf(stderr, "error: counterexample does not compile:\n%s\n",
                Diags.str().c_str());
    return 1;
  }

  if (OracleMask & OracleRepair) {
    // Repair counterexamples re-run the whole synthesize-and-revalidate
    // pipeline (synthesis, re-analysis of the emitted artifacts, concrete
    // equivalence and secret-variant replays) with inputs re-derived from
    // the recorded seed.
    OracleStats Stats;
    if (std::optional<Violation> V =
            checkRepair(Text, Scalars, Arrays, Seed, Opts, Stats)) {
      std::printf("reproduced: %s\n", V->str(*CP).c_str());
      return 2;
    }
    std::printf(
        "did not reproduce: the recorded repair pipeline is clean under %s\n",
        mergeStrategyName(Strategy));
    return 0;
  }

  if (OracleMask & OracleLowering) {
    // Lowering counterexamples re-run the whole diff (both compiles, the
    // recorded strategy/bounding pair, seed-derived concrete inputs)
    // rather than one recorded scenario.
    OracleStats Stats;
    if (std::optional<Violation> V =
            checkLoweringDiff(Text, Scalars, Arrays, Seed, Opts, Stats)) {
      std::printf("reproduced: %s\n", V->str(*CP).c_str());
      return 2;
    }
    std::printf(
        "did not reproduce: the recorded lowering diff is clean under %s\n",
        mergeStrategyName(Strategy));
    return 0;
  }

  SoundnessOracle Oracle(*CP, Scalars, Arrays, Opts);
  if (std::optional<Violation> V = Oracle.checkRun(Spec)) {
    std::printf("reproduced: %s\n", V->str(*CP).c_str());
    return 2;
  }
  std::printf("did not reproduce: the recorded scenario is clean under %s\n",
              mergeStrategyName(Strategy));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzCampaignOptions O;
  std::string CeDir = ".";
  std::string ReplayPath;
  bool Json = false, SelfTest = false;
  unsigned SelfTestSuites = OracleAll;
  bool OracleExplicit = false;
  uint32_t Lines = 8, Assoc = 0;
  ReplacementPolicy Policy = ReplacementPolicy::Lru;
  bool AllPolicies = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(1);
      }
      return Argv[++I];
    };
    if (Arg == "--seed") {
      O.Seed = parseNum("--seed", Next());
    } else if (Arg == "--programs") {
      O.Programs = parseNum("--programs", Next());
    } else if (Arg == "--jobs") {
      O.Jobs = parseNum("--jobs", Next());
    } else if (Arg == "--intra-jobs") {
      O.Oracle.IntraJobs = parseNum("--intra-jobs", Next());
    } else if (Arg == "--lines") {
      Lines = parseNum("--lines", Next());
    } else if (Arg == "--assoc") {
      Assoc = parseNum("--assoc", Next());
    } else if (Arg == "--policy") {
      std::string P = Next();
      if (P == "all")
        AllPolicies = true;
      else if (!parseReplacementPolicy(P, Policy)) {
        std::fprintf(stderr, "error: unknown policy '%s' (lru | fifo | plru | all)\n",
                    P.c_str());
        return 1;
      }
    } else if (Arg == "--oracle") {
      std::string Kind = Next();
      unsigned Mask = 0;
      if (!parseOracleKind(Kind, Mask)) {
        std::fprintf(stderr, "error: unknown oracle '%s' (cache | wcet | leak | "
                    "lowering | repair | all)\n",
                    Kind.c_str());
        return 1;
      }
      // First --oracle replaces the cache default; repeats OR together.
      O.Oracle.Oracles = OracleExplicit ? O.Oracle.Oracles | Mask : Mask;
      OracleExplicit = true;
    } else if (Arg == "--leak-secrets") {
      O.Oracle.LeakSecrets = parseNum("--leak-secrets", Next());
    } else if (Arg == "--leak-rounds") {
      O.Oracle.LeakRounds = parseNum("--leak-rounds", Next());
    } else if (Arg == "--depth-miss") {
      O.Oracle.DepthMiss = parseNum("--depth-miss", Next());
    } else if (Arg == "--depth-hit") {
      O.Oracle.DepthHit = parseNum("--depth-hit", Next());
    } else if (Arg == "--exhaustive-bits") {
      O.Oracle.ExhaustiveBits = parseNum("--exhaustive-bits", Next());
    } else if (Arg == "--input-rounds") {
      O.Oracle.InputRounds = parseNum("--input-rounds", Next());
    } else if (Arg == "--no-shadow") {
      O.Oracle.UseShadow = false;
    } else if (Arg == "--gen-deep") {
      O.Gen.Functions = true;
    } else if (Arg == "--no-minimize") {
      O.Minimize = false;
    } else if (Arg == "--ce-dir") {
      CeDir = Next();
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--inject-fault") {
      std::string Kind = Next();
      VerdictFault VF = VerdictFault::None;
      LoweringFault LF = LoweringFault::None;
      RepairFault RF = RepairFault::None;
      if (Kind == "skip-spec-seed")
        O.Oracle.Fault = EngineFault::SkipSpecSeed;
      else if (Kind == "skip-rollback")
        O.Oracle.Fault = EngineFault::SkipRollback;
      else if (parseVerdictFault(Kind, VF) && VF != VerdictFault::None)
        O.Oracle.VFault = VF;
      else if (parseLoweringFault(Kind, LF) && LF != LoweringFault::None)
        O.Oracle.LFault = LF;
      else if (parseRepairFault(Kind, RF) && RF != RepairFault::None)
        O.Oracle.RFault = RF;
      else {
        std::fprintf(stderr, "error: unknown fault '%s'\n", Kind.c_str());
        return 1;
      }
    } else if (Arg == "--selftest") {
      SelfTest = true;
      // Optional suite selector (cache | wcet | leak | lowering | repair |
      // all).
      if (I + 1 < Argc && Argv[I + 1][0] != '-') {
        std::string Suite = Argv[++I];
        if (!parseOracleKind(Suite, SelfTestSuites)) {
          std::fprintf(stderr, "error: unknown selftest suite '%s' (cache | wcet | "
                      "leak | lowering | repair | all)\n",
                      Suite.c_str());
          return 1;
        }
      }
    } else if (Arg == "--replay") {
      ReplayPath = Next();
    } else if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      usage(stderr);
      return 1;
    }
  }

  // A verdict fault targets one specific oracle; force that oracle on, or
  // the injection would no-op under the cache default and a deliberately
  // broken verdict layer would be reported "sound".
  if (O.Oracle.VFault != VerdictFault::None) {
    bool IsWcet = O.Oracle.VFault == VerdictFault::WcetHitForMiss ||
                  O.Oracle.VFault == VerdictFault::WcetDropLoopScale;
    O.Oracle.Oracles |= IsWcet ? OracleWcet : OracleLeak;
  }
  // Likewise a lowering fault only breaks the summarize side of the
  // lowering diff; nothing else would notice it.
  if (O.Oracle.LFault != LoweringFault::None)
    O.Oracle.Oracles |= OracleLowering;
  // And a repair fault only corrupts the synthesizer's emission, which
  // only the repair oracle's revalidation judges inspect.
  if (O.Oracle.RFault != RepairFault::None)
    O.Oracle.Oracles |= OracleRepair;

  if (SelfTest)
    return selftest(SelfTestSuites);
  if (!ReplayPath.empty())
    return replay(ReplayPath);

  O.Oracle.Cache = CacheConfig{64, Lines, Assoc == 0 ? Lines : Assoc};
  // Geometry first (policy-independent), then the policy-specific
  // constraint, so a PLRU request over a valid-but-odd geometry gets the
  // tailored message instead of a generic one.
  if (!O.Oracle.Cache.isValid()) {
    std::fprintf(stderr, "error: invalid cache geometry (%u lines, %u-way)\n", Lines,
                Assoc);
    return 1;
  }
  if (!AllPolicies && !O.Oracle.Cache.withPolicy(Policy).isValid()) {
    std::fprintf(stderr, "error: --policy %s needs power-of-two associativity "
                "(got %u-way)\n",
                replacementPolicyName(Policy),
                O.Oracle.Cache.Associativity);
    return 1;
  }
  if (AllPolicies)
    O.Policies = {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
                  ReplacementPolicy::Plru};
  else
    O.Policies = {Policy};
  O.Oracle.Cache.Policy = O.Policies.front();

  FuzzCampaignResult R = runFuzzCampaign(O);
  if (Json) {
    std::printf("%s\n", campaignJson(R.Stats).c_str());
  } else {
    // parallelFor resolves 0 to the hardware concurrency; report what the
    // campaign actually used so throughput figures stay attributable.
    unsigned JobsUsed =
        O.Jobs ? O.Jobs : std::max(1u, std::thread::hardware_concurrency());
    std::printf("%s", R.Stats.summary().c_str());
    std::printf("wall time:           %ss (%s programs/s, %u jobs)\n",
                formatDouble(R.Stats.Seconds, 2).c_str(),
                formatDouble(R.Stats.Seconds > 0
                                 ? R.Stats.Programs / R.Stats.Seconds
                                 : 0,
                             1)
                    .c_str(),
                JobsUsed);
  }
  reportCounterexamples(R, O.Oracle, CeDir);
  if (R.Stats.CompileFailures > 0)
    return 1;
  return R.ok() ? 0 : 2;
}
