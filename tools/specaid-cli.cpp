//===- specaid-cli.cpp - Client and load generator for specaid -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Thin client for a running specaid daemon (docs/SERVICE.md).
///
///   specaid-cli --socket PATH FILE.mc [options]   analyze one file
///   specaid-cli --socket PATH FILE.mc --repair    synthesize mitigations
///   specaid-cli --socket PATH --ping              liveness probe
///   specaid-cli --socket PATH --stats             print daemon counters
///   specaid-cli --socket PATH --shutdown          stop the daemon
///   specaid-cli --socket PATH --trace N --unique U --seed S [--check]
///                                                 replay a generated trace
///
/// Analysis options mirror specai-cli: --entry NAME, --lowering M,
/// --lines N, --assoc N, --policy P, --strategy S, --depth-miss N,
/// --depth-hit N, --no-spec, --no-shadow, --refine, --no-leaks, plus
/// --priority N for the daemon's queue ordering.
///
/// Budget options: --timeout-ms N bounds each request's wall clock (the
/// daemon answers `status: timeout` past it), --max-iterations N caps its
/// fixpoint steps.
///
/// Retry options: `overloaded` responses and broken-pipe transport errors
/// retry with capped exponential backoff and deterministic jitter —
/// --retries N attempts (default 4) starting at --backoff-ms N (default
/// 50), never retrying past a request's own --timeout-ms deadline.
///
/// Trace mode generates U unique seeded programs, replays an N-request
/// trace drawing uniformly from them over one connection, and reports the
/// daemon's hit count. With --check every response's verdict digest is
/// compared against a local single-shot run of the same request — the
/// bit-identical-verdicts assertion the CI smoke leg relies on — and, when
/// N > U, at least one cache hit is required.
///
/// With --repair the file is sent under the daemon's `repair` verb
/// (docs/MITIGATION.md): the response carries the mitigation set, the
/// before/after leak and WCET counts, and the patched program, and is
/// cached under its own verdict-cache key like any analyze verdict.
///
/// Exit code: 0 on success, 1 on any transport/daemon/check failure, 2
/// when a file-mode analysis found leaks (matching specai-cli) or a
/// --repair run left leaks beyond the mitigation menu.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace specai;

namespace {

void usage(std::FILE *To) {
  std::fprintf(To,
      "usage: specaid-cli --socket PATH [FILE.mc | --ping | --stats | "
      "--shutdown |\n"
      "       --trace N --unique U --seed S [--check]]\n"
      "       [--entry NAME] [--lowering inline|summarize] [--lines N]\n"
      "       [--assoc N] [--policy lru|fifo|plru] [--strategy S]\n"
      "       [--depth-miss N] [--depth-hit N] [--no-spec] [--no-shadow]\n"
      "       [--refine] [--no-leaks] [--repair] [--priority N]\n"
      "       [--timeout-ms N] [--max-iterations N]\n"
      "       [--retries N] [--backoff-ms N]\n");
}

bool parseStrategyName(const std::string &Name, MergeStrategy &Out) {
  for (MergeStrategy S :
       {MergeStrategy::NoMerge, MergeStrategy::MergeAtExit,
        MergeStrategy::JustInTime, MergeStrategy::MergeAtRollback})
    if (Name == mergeStrategyName(S)) {
      Out = S;
      return true;
    }
  return false;
}

/// Sends \p Req and fails hard on transport errors (the load generator
/// and file mode both want that).
bool mustCall(ServiceClient &Client, const ServiceRequest &Req,
              ServiceResponse &Resp) {
  std::string Error;
  if (!Client.call(Req, Resp, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  return true;
}

/// How analyze calls recover from a daemon that pushes back or drops the
/// connection. Jitter is deterministic (a fixed-seed Rng) so a given
/// invocation always sleeps the same schedule — runs stay reproducible.
struct RetryPolicy {
  std::string SocketPath;
  uint64_t Retries = 4;
  uint64_t BackoffMs = 50;
  Rng Jitter{0x7261657472792121ULL};
  /// Attempts that had to back off (overloaded or transport), for the
  /// trace-mode report.
  uint64_t Backoffs = 0;
};

/// Sends \p Req, retrying `overloaded` responses and transport failures
/// (a daemon mid-restart, EPIPE from a connection it shed) with capped
/// exponential backoff: wait BackoffMs << attempt, plus jitter of up to
/// half that so a herd of retrying clients spreads out, capped at 2s per
/// wait. A request carrying --timeout-ms never retries past its own
/// deadline — the caller asked for a bounded wait, and a late retry would
/// outlive it. Transport retries reconnect before resending. Returns
/// false (with the error already printed) only when transport attempts
/// are exhausted; an `overloaded` verdict that outlasts every retry is
/// handed back in \p Resp for the caller to report.
bool callBackoff(ServiceClient &Client, RetryPolicy &Policy,
                 const ServiceRequest &Req, ServiceResponse &Resp) {
  Timer T;
  for (uint64_t Attempt = 0;; ++Attempt) {
    std::string Error = "not connected";
    bool Sent = Client.connected() && Client.call(Req, Resp, Error);
    if (Sent && Resp.Status != ServiceStatus::Overloaded)
      return true;

    uint64_t Shift = Attempt < 6 ? Attempt : 6;
    uint64_t Delay = Policy.BackoffMs << Shift;
    if (Delay > 2000)
      Delay = 2000;
    Delay += Policy.Jitter.nextBelow(Delay / 2 + 1);
    uint64_t ElapsedMs = static_cast<uint64_t>(T.seconds() * 1000.0);
    bool PastDeadline =
        Req.TimeoutMs != 0 && ElapsedMs + Delay > Req.TimeoutMs;
    if (Attempt == Policy.Retries || PastDeadline) {
      if (!Sent) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return false;
      }
      return true; // Still overloaded: the caller sees the status.
    }

    ++Policy.Backoffs;
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    if (!Sent) {
      Client.close();
      std::string ConnError;
      // A failed reconnect leaves the client closed; the next attempt
      // fails fast and backs off again.
      Client.connect(Policy.SocketPath, ConnError);
    }
  }
}

int runTrace(ServiceClient &Client, RetryPolicy &Policy,
             const ServiceRequest &Base, uint64_t Trace, uint64_t Unique,
             uint64_t Seed, bool Check) {
  if (Unique == 0 || Trace == 0) {
    std::fprintf(stderr, "error: --trace and --unique must be positive\n");
    return 1;
  }
  // Deterministic unique programs: the same (seed, unique) pair always
  // replays the same trace, so runs are comparable across daemons.
  std::vector<std::string> Sources;
  Sources.reserve(Unique);
  for (uint64_t I = 0; I != Unique; ++I)
    Sources.push_back(ProgramGen(Seed + I).generate().source());

  // Local reference digests, one single-shot run per unique program.
  std::vector<uint64_t> WantDigest(Unique, 0);
  if (Check) {
    for (uint64_t I = 0; I != Unique; ++I) {
      ServiceRequest Req = Base;
      Req.Source = Sources[I];
      RunOutcome Out = runRequest(Req.toRunRequest());
      if (!Out.Ok) {
        std::fprintf(stderr, "error: local run of unique %llu failed: %s\n",
                     static_cast<unsigned long long>(I), Out.Error.c_str());
        return 1;
      }
      WantDigest[I] = verdictDigest(Out.Row);
    }
  }

  Rng Pick(Seed ^ 0x9e3779b97f4a7c15ULL);
  uint64_t Hits = 0;
  Timer T;
  for (uint64_t I = 0; I != Trace; ++I) {
    // Walk the uniques in order first so every program enters the cache,
    // then draw uniformly — the steady-state phase is all duplicates.
    uint64_t U = I < Unique ? I : Pick.nextBelow(Unique);
    ServiceRequest Req = Base;
    Req.Id = I;
    Req.Source = Sources[U];
    ServiceResponse Resp;
    // Backoff absorbs transient pushback; a persistent overload (or a
    // daemon that stays gone) falls through and fails the run.
    if (!callBackoff(Client, Policy, Req, Resp))
      return 1;
    if (Resp.Status != ServiceStatus::Ok) {
      std::fprintf(stderr, "error: request %llu: %s\n",
                   static_cast<unsigned long long>(I), Resp.Error.c_str());
      return 1;
    }
    if (Resp.Cached)
      ++Hits;
    if (Check && Resp.VerdictDigest != WantDigest[U]) {
      std::fprintf(stderr,
                   "error: request %llu (unique %llu): daemon verdict "
                   "0x%016llx != local 0x%016llx\n",
                   static_cast<unsigned long long>(I),
                   static_cast<unsigned long long>(U),
                   static_cast<unsigned long long>(Resp.VerdictDigest),
                   static_cast<unsigned long long>(WantDigest[U]));
      return 1;
    }
  }
  double Seconds = T.seconds();
  std::printf("trace: %llu requests, %llu unique, %llu hits, %llu "
              "backoffs, %.3fs (%.0f req/s)\n",
              static_cast<unsigned long long>(Trace),
              static_cast<unsigned long long>(Unique),
              static_cast<unsigned long long>(Hits),
              static_cast<unsigned long long>(Policy.Backoffs), Seconds,
              Seconds > 0 ? static_cast<double>(Trace) / Seconds : 0.0);
  if (Check)
    std::printf("check: all %llu verdicts bit-identical to local runs\n",
                static_cast<unsigned long long>(Trace));
  if (Check && Trace > Unique && Hits == 0) {
    std::fprintf(stderr, "error: expected cache hits on a duplicate-heavy "
                         "trace, saw none\n");
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath, File;
  ServiceRequest Req; // Doubles as the trace-mode base request.
  RetryPolicy Policy;
  bool Ping = false, Stats = false, Shutdown = false, Check = false;
  bool Repair = false;
  uint64_t Trace = 0, Unique = 0, Seed = 1;
  uint32_t Lines = 0, Assoc = 0;
  bool GeometrySet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(1);
      }
      return Argv[++I];
    };
    auto NextUnsigned = [&]() -> unsigned {
      const char *Value = Next();
      std::optional<unsigned> Parsed = parseUnsigned(Value);
      if (!Parsed) {
        std::fprintf(stderr, "error: %s needs a non-negative number, got '%s'\n",
                     Arg.c_str(), Value);
        std::exit(1);
      }
      return *Parsed;
    };
    if (Arg == "--socket") {
      SocketPath = Next();
    } else if (Arg == "--ping") {
      Ping = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--shutdown") {
      Shutdown = true;
    } else if (Arg == "--trace") {
      Trace = NextUnsigned();
    } else if (Arg == "--unique") {
      Unique = NextUnsigned();
    } else if (Arg == "--seed") {
      Seed = NextUnsigned();
    } else if (Arg == "--check") {
      Check = true;
    } else if (Arg == "--entry") {
      Req.Entry = Next();
    } else if (Arg == "--lowering") {
      std::string M = Next();
      if (!parseLoweringMode(M, Req.Mode)) {
        std::fprintf(stderr, "error: unknown lowering mode '%s'\n", M.c_str());
        return 1;
      }
    } else if (Arg == "--lines") {
      Lines = NextUnsigned();
      GeometrySet = true;
    } else if (Arg == "--assoc") {
      Assoc = NextUnsigned();
      GeometrySet = true;
    } else if (Arg == "--policy") {
      std::string P = Next();
      if (!parseReplacementPolicy(P, Req.Cache.Policy)) {
        std::fprintf(stderr, "error: unknown policy '%s'\n", P.c_str());
        return 1;
      }
    } else if (Arg == "--strategy") {
      std::string S = Next();
      if (!parseStrategyName(S, Req.Strategy)) {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", S.c_str());
        return 1;
      }
    } else if (Arg == "--depth-miss") {
      Req.DepthMiss = NextUnsigned();
    } else if (Arg == "--depth-hit") {
      Req.DepthHit = NextUnsigned();
    } else if (Arg == "--no-spec") {
      Req.Speculative = false;
    } else if (Arg == "--no-shadow") {
      Req.UseShadow = false;
    } else if (Arg == "--refine") {
      Req.Refine = true;
    } else if (Arg == "--no-leaks") {
      Req.DetectLeaks = false;
    } else if (Arg == "--repair") {
      Repair = true;
    } else if (Arg == "--priority") {
      Req.Priority = static_cast<int64_t>(NextUnsigned());
    } else if (Arg == "--timeout-ms") {
      Req.TimeoutMs = NextUnsigned();
    } else if (Arg == "--max-iterations") {
      Req.MaxSteps = NextUnsigned();
    } else if (Arg == "--retries") {
      Policy.Retries = NextUnsigned();
    } else if (Arg == "--backoff-ms") {
      Policy.BackoffMs = NextUnsigned();
    } else if (Arg == "--help" || Arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return 1;
    } else {
      File = Arg;
    }
  }

  if (SocketPath.empty()) {
    std::fprintf(stderr, "error: --socket PATH is required\n");
    usage(stderr);
    return 1;
  }
  if (GeometrySet) {
    ReplacementPolicy Policy = Req.Cache.Policy;
    if (Lines == 0)
      Lines = 512;
    Req.Cache = Assoc == 0 ? CacheConfig::fullyAssociative(Lines)
                           : CacheConfig::setAssociative(Lines, Assoc);
    Req.Cache.Policy = Policy;
    if (!Req.Cache.isValid()) {
      std::fprintf(stderr, "error: invalid cache geometry (%u lines, %u ways)\n",
                   Lines, Assoc);
      return 1;
    }
  }

  int Modes = (File.empty() ? 0 : 1) + (Ping ? 1 : 0) + (Stats ? 1 : 0) +
              (Shutdown ? 1 : 0) + (Trace != 0 ? 1 : 0);
  if (Modes != 1) {
    std::fprintf(stderr, "error: pick exactly one of FILE.mc, --ping, "
                         "--stats, --shutdown, or --trace\n");
    return 1;
  }
  if (Repair && File.empty()) {
    std::fprintf(stderr, "error: --repair needs a FILE.mc to repair\n");
    return 1;
  }

  ServiceClient Client;
  Policy.SocketPath = SocketPath;
  std::string Error;
  if (!Client.connect(SocketPath, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (Trace != 0)
    return runTrace(Client, Policy, Req, Trace, Unique, Seed, Check);

  if (Ping || Stats || Shutdown) {
    Req.Op = Ping ? ServiceOp::Ping
                  : Stats ? ServiceOp::Stats : ServiceOp::Shutdown;
    ServiceResponse Resp;
    if (!mustCall(Client, Req, Resp))
      return 1;
    if (Resp.Status != ServiceStatus::Ok) {
      std::fprintf(stderr, "error: %s\n", Resp.Error.c_str());
      return 1;
    }
    // Stats responses carry counters beyond the response schema; the raw
    // line is the most faithful rendering.
    std::printf("%s\n", Stats ? Client.lastLine().c_str()
                              : Ping ? "pong" : "shutdown acknowledged");
    return 0;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Req.Source = Buffer.str();
  if (Repair)
    Req.Op = ServiceOp::Repair;

  ServiceResponse Resp;
  if (!callBackoff(Client, Policy, Req, Resp))
    return 1;
  if (Resp.Status == ServiceStatus::Overloaded) {
    std::fprintf(stderr, "error: daemon overloaded after %llu retries: %s\n",
                 static_cast<unsigned long long>(Policy.Retries),
                 Resp.Error.c_str());
    return 1;
  }
  if (Resp.Status == ServiceStatus::Timeout) {
    std::fprintf(stderr, "status: timeout (%s)\n", Resp.Error.c_str());
    return 1;
  }
  if (Resp.Status != ServiceStatus::Ok) {
    std::fprintf(stderr, "%s\n", Resp.Error.c_str());
    return 1;
  }
  std::printf("status: ok%s\n", Resp.Cached ? " (cached)" : "");
  std::printf("request-digest: 0x%016llx\n",
              static_cast<unsigned long long>(Resp.RequestDigest));
  std::printf("verdict-digest: 0x%016llx\n",
              static_cast<unsigned long long>(Resp.VerdictDigest));
  if (Repair) {
    if (!Resp.RepairChecked) {
      std::fprintf(stderr, "error: daemon answered without a repair "
                           "verdict (pre-repair daemon?)\n");
      return 1;
    }
    if (Resp.LeaksBefore == 0) {
      std::printf("repair: no leaks reported; program unchanged\n");
      return 0;
    }
    std::printf("repair: %llu leak%s, %zu mitigation%s, wcet %llu -> %llu\n",
                static_cast<unsigned long long>(Resp.LeaksBefore),
                Resp.LeaksBefore == 1 ? "" : "s", Resp.Mitigations.size(),
                Resp.Mitigations.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(Resp.WcetBefore),
                static_cast<unsigned long long>(Resp.WcetAfter));
    for (const std::string &M : Resp.Mitigations)
      std::printf("  %s\n", M.c_str());
    if (!Resp.Repaired) {
      std::printf("repair: %llu leak%s remain beyond the mitigation menu\n",
                  static_cast<unsigned long long>(Resp.LeaksAfter),
                  Resp.LeaksAfter == 1 ? "" : "s");
      return 2;
    }
    std::printf("patched program:\n%s", Resp.PatchedIr.c_str());
    return 0;
  }
  std::printf("accesses: %llu  possible misses: %llu  speculative-only "
              "misses: %llu  iterations: %llu\n",
              static_cast<unsigned long long>(Resp.AccessNodes),
              static_cast<unsigned long long>(Resp.MissCount),
              static_cast<unsigned long long>(Resp.SpMissCount),
              static_cast<unsigned long long>(Resp.Iterations));
  if (Resp.LeaksChecked) {
    if (Resp.LeakCount != 0) {
      for (const std::string &Site : Resp.LeakSites)
        std::printf("%s\n", Site.c_str());
      return 2;
    }
    std::printf("no leaks: %llu secret-indexed accesses proven "
                "timing-uniform\n",
                static_cast<unsigned long long>(Resp.ProvenLeakFree));
  }
  return 0;
}
