//===- quickstart.cpp - Five-minute tour of the public API ----------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: compile a small program, run the static cache analysis with
/// and without speculative execution modeling, and inspect the per-access
/// classification. The program is the paper's Figure 2 scenario in
/// miniature: a preloaded table, a memory-conditioned branch, and a
/// secret-indexed lookup.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  // 1. A mini-C program. `secret` marks key material, `reg` variables live
  //    in registers (cache invisible), plain globals are inputs.
  const std::string Source = R"MC(
char table[256];           // 4 cache lines
char left[64];             // 1 line
char right[64];            // 1 line
int mode;                  // input: selects a branch side
secret reg char key;       // the secret index

int main() {
  reg int t;
  for (reg int i = 0; i < 256; i += 64)
    t = table[i];          // preload the table
  if (mode == 0) {
    t = t + left[0];
  } else {
    t = t + right[0];
  }
  t = t + table[key & 255];  // secret-indexed lookup
  return t;
}
)MC";

  // 2. Compile: lexer -> parser -> sema -> lowering (inlining + loop
  //    unrolling) -> CFG analyses -> speculation plan.
  DiagnosticEngine Diags;
  std::unique_ptr<CompiledProgram> CP = compileSource(Source, Diags);
  if (!CP) {
    std::printf("compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("compiled: %zu IR instructions, %zu speculation sites\n\n",
              CP->P->instructionCount(), CP->Plan.siteCount());

  // 3. Analyze. The cache here is tiny (6 lines) so one branch side fits
  //    but both sides together do not — the Figure 2 situation.
  for (bool Speculative : {false, true}) {
    MustHitOptions Options;
    Options.Cache = CacheConfig::fullyAssociative(6);
    Options.Speculative = Speculative;
    MustHitReport Report = runMustHitAnalysis(*CP, Options);
    SideChannelReport Leaks = detectLeaks(*CP, Report);

    std::printf("== %s analysis ==\n",
                Speculative ? "speculative (Algorithms 2/3)"
                            : "non-speculative (Algorithm 1)");
    std::printf("  access sites: %llu, possible misses: %llu, "
                "speculative-only misses: %llu\n",
                static_cast<unsigned long long>(Report.AccessNodes),
                static_cast<unsigned long long>(Report.MissCount),
                static_cast<unsigned long long>(Report.SpMissCount));
    std::printf("  side channel: %s\n",
                Leaks.leakDetected() ? "LEAK DETECTED (secret-indexed "
                                       "access may hit or miss)"
                                     : "leak free");

    // 4. Per-node drill-down for the final secret lookup.
    for (NodeId Ret : CP->G.exits()) {
      BlockId B = CP->G.blockOf(Ret);
      for (int32_t I = static_cast<int32_t>(CP->G.instIndexOf(Ret)); I >= 0;
           --I) {
        NodeId N = CP->G.nodeAt(B, static_cast<uint32_t>(I));
        if (!CP->G.inst(N).accessesMemory())
          continue;
        std::printf("  final lookup: %s; state before it: %s\n",
                    Report.MustHit[N] ? "must-hit" : "may-miss",
                    Report.States.Normal[N].str(*Report.MM).c_str());
        break;
      }
    }
    std::printf("\n");
  }

  std::printf("The speculative analysis refuses to certify the lookup —\n"
              "the mispredicted branch side can evict a table line, and\n"
              "whether the victim is the secret's line depends on the key.\n");
  return 0;
}
