//===- merge_strategy_explorer.cpp - Figure 6 strategies hands-on ---------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Explores the four merging strategies of Figure 6 on every WCET kernel:
/// precision (possible-miss counts) and cost (worklist iterations, time).
/// The ordering the paper reports — and the engine guarantees — is
///    no-merge (6a)  ⊑  just-in-time (6c)  ⊑  merge-at-rollback (6d)
/// in precision, with cost moving the other way; just-in-time is the sweet
/// spot the paper settles on (§5.2).
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  const MergeStrategy Strategies[] = {
      MergeStrategy::NoMerge, MergeStrategy::MergeAtExit,
      MergeStrategy::JustInTime, MergeStrategy::MergeAtRollback};

  TableWriter T({"Kernel", "Strategy", "#Miss", "#SpMiss", "#Iteration",
                 "Time(s)"});
  for (const Workload &W : wcetWorkloads()) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP) {
      std::printf("compile error in %s:\n%s", W.Name.c_str(),
                  Diags.str().c_str());
      return 1;
    }
    for (MergeStrategy S : Strategies) {
      MustHitOptions Opts;
      Opts.Cache = CacheConfig::fullyAssociative(64);
      Opts.Speculative = true;
      Opts.Strategy = S;
      Timer Tm;
      MustHitReport R = runMustHitAnalysis(*CP, Opts);
      T.addRow({W.Name, mergeStrategyName(S), std::to_string(R.MissCount),
                std::to_string(R.SpMissCount), std::to_string(R.Iterations),
                formatDouble(Tm.seconds(), 3)});
    }
  }
  std::printf("%s", T.str().c_str());
  return 0;
}
