//===- side_channel_detection.cpp - Figure 10 end to end ------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The paper's §2.2 application, end to end: take a crypto kernel (the
/// hash benchmark), wrap it in the Figure-10 client with an
/// attacker-controlled buffer, and sweep the buffer size. The
/// non-speculative analysis proves the program leak-free everywhere it
/// can; the speculative analysis shows that at the same buffer sizes the
/// mispredicted padding path can evict the secret-indexed table — the
/// Spectre-style cache side channel the paper detects.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  const CryptoWorkload *Hash = nullptr;
  for (const CryptoWorkload &W : cryptoWorkloads())
    if (W.Name == "hash")
      Hash = &W;
  if (!Hash)
    return 1;
  std::printf("kernel: %s (%s)\n\n", Hash->Name.c_str(),
              Hash->Description.c_str());

  TableWriter T({"Buffer(B)", "non-spec", "speculative"});
  for (uint64_t Lines : {384u, 448u, 470u, 478u, 490u}) {
    uint64_t Bytes = Lines * 64;
    DiagnosticEngine Diags;
    auto CP = compileSource(makeClientProgram(*Hash, Bytes), Diags);
    if (!CP) {
      std::printf("compile error:\n%s", Diags.str().c_str());
      return 1;
    }
    auto LeakWith = [&](bool Speculative) {
      MustHitOptions Opts;
      Opts.Cache = CacheConfig::paperDefault();
      Opts.Speculative = Speculative;
      MustHitReport R = runMustHitAnalysis(*CP, Opts);
      SideChannelReport SC = detectLeaks(*CP, R);
      if (!SC.leakDetected())
        return std::string("leak free");
      std::string Out = "LEAK";
      for (const LeakSite &L : SC.Leaks)
        Out += " (" + CP->P->Vars[L.Var].Name + ")";
      return Out;
    };
    T.addRow({std::to_string(Bytes), LeakWith(false), LeakWith(true)});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf(
      "The larger the attacker buffer, the closer the preloaded table\n"
      "sits to eviction; speculation supplies the final push (paper §7.3:\n"
      "\"the larger the buffer size, the easier that the client program\n"
      "triggers the behavioral difference\").\n");
  return 0;
}
