//===- wcet_estimation.cpp - Execution time estimation walkthrough --------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The paper's §2.1 application: bounding worst-case execution time. A
/// static analysis that ignores speculation can certify a deadline the
/// hardware then breaks. This example analyzes the adpcm kernel, derives
/// cycle bounds from both analyses, and validates them against the
/// concrete speculative CPU under every branch predictor.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  const Workload &Kernel = wcetWorkloads().front(); // adpcm.
  std::printf("kernel: %s (%s)\n\n", Kernel.Name.c_str(),
              Kernel.Description.c_str());

  DiagnosticEngine Diags;
  auto CP = compileSource(Kernel.Source, Diags);
  if (!CP) {
    std::printf("compile error:\n%s", Diags.str().c_str());
    return 1;
  }

  CacheConfig Config = CacheConfig::fullyAssociative(64);
  TimingModel Timing;

  // Static bounds.
  WcetOptions WOpts;
  WOpts.Timing = Timing;
  MustHitOptions NonSpec;
  NonSpec.Cache = Config;
  NonSpec.Speculative = false;
  MustHitReport NsReport = runMustHitAnalysis(*CP, NonSpec);
  WcetReport NsWcet = estimateWcet(*CP, NsReport, WOpts);

  MustHitOptions Spec = NonSpec;
  Spec.Speculative = true;
  MustHitReport SpReport = runMustHitAnalysis(*CP, Spec);
  WcetReport SpWcet = estimateWcet(*CP, SpReport, WOpts);

  TableWriter T({"Analysis", "#Miss sites", "#SpMiss", "cycle bound"});
  T.addRow({"non-speculative", std::to_string(NsWcet.PossibleMissNodes), "-",
            std::to_string(NsWcet.WorstCaseCycles)});
  T.addRow({"speculative", std::to_string(SpWcet.PossibleMissNodes),
            std::to_string(SpWcet.SpeculativeMissNodes),
            std::to_string(SpWcet.WorstCaseCycles)});
  std::printf("%s\n", T.str().c_str());

  // Concrete validation: run the kernel under every predictor and a few
  // inputs; observed cycles must stay within the speculative bound.
  MemoryModel MM(*CP->P, Config);
  uint64_t WorstObserved = 0;
  Rng InputRng(42);
  for (auto &Predictor : makeStandardPredictors()) {
    for (int Round = 0; Round != 4; ++Round) {
      Predictor->reset();
      SpeculativeCpu Cpu(*CP->P, MM, *Predictor, Timing, true);
      // Confine speculation to the branch sides, as the analysis models.
      for (const SpecSite &Site : CP->Plan.sites())
        if (Site.Ipdom != InvalidNode)
          Cpu.setSpeculationStop(CP->G.blockOf(Site.Branch),
                                 CP->G.instIndexOf(Site.Branch),
                                 CP->G.blockOf(Site.Ipdom));
      Cpu.machine().setMemory(CP->P->findVar("el"), 0,
                              InputRng.nextRange(0, 30000));
      Cpu.machine().setMemory(CP->P->findVar("detl"), 0,
                              InputRng.nextRange(0, 64));
      CpuRunStats S = Cpu.run();
      if (!S.Completed) {
        std::printf("simulation did not complete\n");
        return 1;
      }
      WorstObserved = std::max(WorstObserved, S.Cycles);
    }
  }
  std::printf("worst observed cycles across predictors/inputs: %llu\n",
              static_cast<unsigned long long>(WorstObserved));
  std::printf("speculative static bound: %llu (%s)\n",
              static_cast<unsigned long long>(SpWcet.WorstCaseCycles),
              SpWcet.WorstCaseCycles >= WorstObserved ? "covers the worst"
                                                      : "VIOLATED");
  return SpWcet.WorstCaseCycles >= WorstObserved ? 0 : 1;
}
