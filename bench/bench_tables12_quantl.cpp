//===- bench_tables12_quantl.cpp - Regenerates paper Tables 1/2 -----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Tables 1 and 2: the quantl fixed point. Table 1 lists per-basic-block
/// cache states of the non-speculative run (with the nondeterministic
/// decis_levl[1*]/[2*] line picks); Table 2 adds the speculative rows
/// where a single execution touches both quant26bt tables. We print the
/// fixed-point state at the entry of every basic block for both runs.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Tables 1/2: quantl cache states (512-line cache) ==\n");
  DiagnosticEngine Diags;
  LoweringOptions LO;
  LO.EntryFunction = "quantl";
  auto CP = compileSource(quantlSource(), Diags, LO);
  if (!CP) {
    std::printf("compile error\n%s", Diags.str().c_str());
    return 1;
  }

  // Table 1: non-speculative fixed point, per block entry.
  {
    MustHitOptions Opts;
    Opts.Speculative = false;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    std::printf("-- Table 1 (non-speculative fixed point; MUST entries, "
                "youngest first) --\n");
    for (BlockId B = 0; B != CP->P->Blocks.size(); ++B) {
      NodeId N = CP->G.blockStart(B);
      if (R.States.Normal[N].isBottom())
        continue;
      std::printf("bb%-2u (%s): %s\n", B, CP->P->Blocks[B].Name.c_str(),
                  R.States.Normal[N].str(*R.MM).c_str());
    }
    std::printf("iterations: %llu\n\n",
                static_cast<unsigned long long>(R.Iterations));
  }

  // Table 2: speculative run; print the post-rollback (red) states.
  {
    MustHitOptions Opts;
    Opts.Speculative = true;
    Opts.Strategy = MergeStrategy::NoMerge;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    std::printf("-- Table 2 (speculative run: post-rollback states at "
                "block entries) --\n");
    for (BlockId B = 0; B != CP->P->Blocks.size(); ++B) {
      NodeId N = CP->G.blockStart(B);
      if (R.States.PostRollback[N].isBottom())
        continue;
      std::printf("bb%-2u (%s): %s\n", B, CP->P->Blocks[B].Name.c_str(),
                  R.States.PostRollback[N].str(*R.MM).c_str());
    }
    std::printf("iterations: %llu  #SpMiss: %llu\n",
                static_cast<unsigned long long>(R.Iterations),
                static_cast<unsigned long long>(R.SpMissCount));
  }
  std::printf("\npaper: the speculative rows show quant26bt_pos[1*] and "
              "quant26bt_neg[1*] reachable in one execution\n");
  return 0;
}
