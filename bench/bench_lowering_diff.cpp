//===- bench_lowering_diff.cpp - Summarize-vs-unrolled lowering diff ------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The headline numbers behind `LoweringMode::Summarize` (DESIGN.md §4),
/// on the workload the inline-and-unroll cliff is about: deep-call /
/// uncounted-loop programs (ProgramGenOptions::Functions). Per replacement
/// policy this bench
///
///  1. runs the differential lowering oracle (fuzz/LoweringOracle.h) over
///     a fixed seed range and reports its precision-delta counters —
///     one-sided must-hit proofs, WCET bound tightenings/loosenings, leak
///     verdict deltas — alongside its soundness checks, which must all
///     pass (any violation fails the bench);
///  2. times `runMustHitAnalysis` on both lowerings of each program
///     (identical analysis options) and reports CFG sizes, worklist
///     iterations, and the wall-clock speedup of summarize over unrolled.
///
/// All counters are deterministic in (seed range, geometry); only the
/// seconds/speedup columns are machine-dependent. `--json FILE` writes the
/// table as JSON — the checked-in BENCH_lowering.json trajectory is
/// regenerated from this.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace specai;

namespace {

constexpr uint64_t SeedBase = 1;
constexpr unsigned Programs = 30;

/// Per-policy aggregates over the seed range.
struct PolicyRow {
  ReplacementPolicy Policy = ReplacementPolicy::Lru;
  OracleStats Stats;
  uint64_t Violations = 0;
  std::string FirstViolation;
  // Structural + timing comparison (one JIT/dynamic analysis per side).
  uint64_t UnrolledNodes = 0;
  uint64_t SummarizeNodes = 0;
  uint64_t UnrolledIterations = 0;
  uint64_t SummarizeIterations = 0;
  double UnrolledSeconds = 0;
  double SummarizeSeconds = 0;

  double speedup() const {
    return SummarizeSeconds > 0 ? UnrolledSeconds / SummarizeSeconds : 0;
  }
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Total CFG nodes of a compiled module: the entry plus (summarize mode)
/// every callee, each analyzed exactly once.
uint64_t moduleNodes(const CompiledProgram &CP) {
  uint64_t N = CP.G.size();
  for (const auto &Callee : CP.Callees)
    N += Callee->G.size();
  return N;
}

PolicyRow runPolicy(ReplacementPolicy Policy) {
  PolicyRow Row;
  Row.Policy = Policy;

  SoundnessOracleOptions Opts;
  Opts.Cache = Opts.Cache.withPolicy(Policy);
  Opts.Oracles = OracleLowering;
  // One representative pair keeps the bench minutes-scale; the 200-program
  // campaigns sweep the full strategy/bounding matrix.
  Opts.Strategies = {MergeStrategy::JustInTime};
  Opts.Boundings = {BoundingMode::Dynamic};

  ProgramGenOptions GO;
  GO.Functions = true;

  for (unsigned I = 0; I != Programs; ++I) {
    uint64_t Seed = SeedBase + I;
    GeneratedProgram Gen = ProgramGen(Seed, GO).generate();
    std::string Source = Gen.source();

    // Leg 1: the differential lowering oracle (soundness + deltas).
    if (auto V = checkLoweringDiff(Source, Gen.InputScalars, Gen.Arrays,
                                   Seed, Opts, Row.Stats)) {
      ++Row.Violations;
      if (Row.FirstViolation.empty())
        Row.FirstViolation = "seed " + std::to_string(Seed) + ": " +
                             violationKindName(V->Kind) + ": " + V->Detail;
      continue;
    }

    // Leg 2: one timed analysis per lowering, same options as the oracle.
    DiagnosticEngine DiagsU, DiagsS;
    LoweringOptions SumLowering;
    SumLowering.Mode = LoweringMode::Summarize;
    auto CPu = compileSource(Source, DiagsU);
    auto CPs = compileSource(Source, DiagsS, SumLowering);
    if (!CPu || !CPs)
      continue; // The oracle would have flagged this as a violation.
    Row.UnrolledNodes += moduleNodes(*CPu);
    Row.SummarizeNodes += moduleNodes(*CPs);

    MustHitOptions MO;
    MO.Cache = Opts.Cache;
    MO.DepthMiss = Opts.DepthMiss;
    MO.DepthHit = Opts.DepthHit;
    MO.Strategy = MergeStrategy::JustInTime;
    MO.Bounding = BoundingMode::Dynamic;

    auto T0 = std::chrono::steady_clock::now();
    MustHitReport Ru = runMustHitAnalysis(*CPu, MO);
    Row.UnrolledSeconds += secondsSince(T0);
    Row.UnrolledIterations += Ru.Iterations;

    T0 = std::chrono::steady_clock::now();
    MustHitReport Rs = runMustHitAnalysis(*CPs, MO);
    Row.SummarizeSeconds += secondsSince(T0);
    Row.SummarizeIterations += Rs.Iterations;
    for (const auto &Callee : Rs.CalleeReports)
      Row.SummarizeIterations += Callee->Iterations;
  }
  return Row;
}

/// Writes all policy rows as JSON; returns false on I/O failure.
bool writeJson(const char *Path, const std::vector<PolicyRow> &Rows) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n"
               "  \"suite\": \"lowering-diff\",\n"
               "  \"workload\": \"deep-call/uncounted-loop (ProgramGen "
               "Functions)\",\n"
               "  \"seed_base\": %llu,\n"
               "  \"programs\": %u,\n"
               "  \"cache\": \"8 lines x 64 B, fully associative\",\n"
               "  \"strategy\": \"jit\",\n"
               "  \"bounding\": \"dynamic\",\n"
               "  \"policies\": [\n",
               static_cast<unsigned long long>(SeedBase), Programs);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const PolicyRow &R = Rows[I];
    std::fprintf(
        F,
        "    {\"policy\": \"%s\", \"violations\": %llu,\n"
        "     \"diff_pairs\": %llu, \"loc_checks\": %llu,\n"
        "     \"concrete_checks\": %llu, \"wcet_checks\": %llu,\n"
        "     \"sum_only_must_hits\": %llu, \"unrolled_only_must_hits\": "
        "%llu,\n"
        "     \"wcet_tighter\": %llu, \"wcet_looser\": %llu, "
        "\"leak_deltas\": %llu,\n"
        "     \"unrolled_nodes\": %llu, \"summarize_nodes\": %llu,\n"
        "     \"unrolled_iterations\": %llu, \"summarize_iterations\": "
        "%llu,\n"
        "     \"unrolled_seconds\": %.3f, \"summarize_seconds\": %.3f, "
        "\"analysis_speedup\": %.2f}%s\n",
        replacementPolicyName(R.Policy),
        static_cast<unsigned long long>(R.Violations),
        static_cast<unsigned long long>(R.Stats.LoweringDiffs),
        static_cast<unsigned long long>(R.Stats.LoweringLocChecks),
        static_cast<unsigned long long>(R.Stats.LoweringConcreteChecks),
        static_cast<unsigned long long>(R.Stats.LoweringWcetChecks),
        static_cast<unsigned long long>(R.Stats.LoweringSumOnlyMustHits),
        static_cast<unsigned long long>(
            R.Stats.LoweringUnrolledOnlyMustHits),
        static_cast<unsigned long long>(R.Stats.LoweringWcetTighter),
        static_cast<unsigned long long>(R.Stats.LoweringWcetLooser),
        static_cast<unsigned long long>(R.Stats.LoweringLeakDeltas),
        static_cast<unsigned long long>(R.UnrolledNodes),
        static_cast<unsigned long long>(R.SummarizeNodes),
        static_cast<unsigned long long>(R.UnrolledIterations),
        static_cast<unsigned long long>(R.SummarizeIterations),
        R.UnrolledSeconds, R.SummarizeSeconds, R.speedup(),
        I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    std::printf("usage: %s [--json FILE]\n", Argv[0]);
    return 2;
  }

  std::printf("== Differential lowering: summarize vs inline-and-unroll "
              "(%u deep programs/policy) ==\n",
              Programs);

  std::vector<PolicyRow> Rows;
  for (ReplacementPolicy P :
       {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
        ReplacementPolicy::Plru})
    Rows.push_back(runPolicy(P));

  TableWriter T({"Policy", "Viol", "LocChecks", "SumOnlyMH", "UnrOnlyMH",
                 "WcetTight", "WcetLoose", "UnrNodes", "SumNodes",
                 "UnrTime(s)", "SumTime(s)", "Speedup"});
  for (const PolicyRow &R : Rows)
    T.addRow({replacementPolicyName(R.Policy), std::to_string(R.Violations),
              std::to_string(R.Stats.LoweringLocChecks),
              std::to_string(R.Stats.LoweringSumOnlyMustHits),
              std::to_string(R.Stats.LoweringUnrolledOnlyMustHits),
              std::to_string(R.Stats.LoweringWcetTighter),
              std::to_string(R.Stats.LoweringWcetLooser),
              std::to_string(R.UnrolledNodes),
              std::to_string(R.SummarizeNodes),
              formatDouble(R.UnrolledSeconds, 2),
              formatDouble(R.SummarizeSeconds, 2),
              formatDouble(R.speedup(), 2)});
  std::printf("%s", T.str().c_str());

  if (JsonPath && !writeJson(JsonPath, Rows)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }

  for (const PolicyRow &R : Rows)
    if (R.Violations) {
      std::printf("UNSOUND (%s): %s\n", replacementPolicyName(R.Policy),
                  R.FirstViolation.c_str());
      return 1;
    }
  std::printf("sound: 0 lowering violations across %llu diff pairs\n",
              static_cast<unsigned long long>(
                  Rows[0].Stats.LoweringDiffs + Rows[1].Stats.LoweringDiffs +
                  Rows[2].Stats.LoweringDiffs));
  return 0;
}
