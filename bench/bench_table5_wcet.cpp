//===- bench_table5_wcet.cpp - Regenerates paper Table 5 ------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Table 5: execution time estimation — non-speculative vs speculative
/// analysis on the ten WCET kernels: analysis time, #Miss, #SpMiss,
/// #Branch, #Iteration. Expected shape (DESIGN.md §1): the speculative
/// analysis detects at least as many misses on every kernel and is slower;
/// absolute values differ from the paper (distilled kernels on a 64-line
/// cache instead of full MiBench programs on 512 lines).
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Table 5: execution time estimation (64-line fully "
              "associative cache, depths hit/miss = 20/200) ==\n");
  TableWriter T({"Name", "NS-Time(s)", "NS-#Miss", "SP-Time(s)", "SP-#Miss",
                 "#SpMiss", "#Branch", "#Iteration"});

  for (const Workload &W : wcetWorkloads()) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP) {
      std::printf("%s: compile error\n%s", W.Name.c_str(),
                  Diags.str().c_str());
      return 1;
    }

    MustHitOptions NonSpec;
    NonSpec.Cache = CacheConfig::fullyAssociative(64);
    NonSpec.Speculative = false;
    Timer NsTimer;
    MustHitReport NsReport = runMustHitAnalysis(*CP, NonSpec);
    double NsTime = NsTimer.seconds();

    MustHitOptions Spec = NonSpec;
    Spec.Speculative = true;
    Timer SpTimer;
    MustHitReport SpReport = runMustHitAnalysis(*CP, Spec);
    double SpTime = SpTimer.seconds();

    T.addRow({W.Name, formatDouble(NsTime, 3),
              std::to_string(NsReport.MissCount), formatDouble(SpTime, 3),
              std::to_string(SpReport.MissCount),
              std::to_string(SpReport.SpMissCount),
              std::to_string(SpReport.BranchCount),
              std::to_string(SpReport.Iterations)});

    if (SpReport.MissCount < NsReport.MissCount) {
      std::printf("ERROR: speculative analysis found fewer misses on %s\n",
                  W.Name.c_str());
      return 1;
    }
  }

  std::printf("%s\n", T.str().c_str());
  std::printf("shape check: SP-#Miss >= NS-#Miss on every kernel: OK\n");
  return 0;
}
