//===- bench_ablation_predictor.cpp - Pipeline substrate calibration ------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The paper derives its speculation windows (20/200) from GEM5 pipeline
/// traces; our substrate derives them from the timing model
/// (window = resolution latency x issue width) and this bench documents
/// the calibration plus the predictor envelope: across every predictor,
/// the concrete observable misses never exceed the speculative analysis'
/// static possible-miss count (soundness of the envelope on these runs),
/// while the non-speculative analysis can undercount — the paper's core
/// claim.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Calibration: speculation windows from the timing model "
              "==\n");
  {
    TableWriter T({"MissLatency", "ResolveLatency", "IssueWidth", "b_hit",
                   "b_miss"});
    for (auto [Miss, Resolve, Width] :
         {std::tuple<uint32_t, uint32_t, uint32_t>{100, 10, 2},
          {50, 10, 2},
          {100, 5, 4},
          {200, 20, 1}}) {
      TimingModel TM;
      TM.MissLatency = Miss;
      TM.BranchResolveLatency = Resolve;
      TM.IssueWidth = Width;
      SpeculationWindows W = calibrateWindows(TM);
      T.addRow({std::to_string(Miss), std::to_string(Resolve),
                std::to_string(Width), std::to_string(W.OnHit),
                std::to_string(W.OnMiss)});
    }
    std::printf("%s", T.str().c_str());
    std::printf("paper setting (20, 200) corresponds to the first row\n\n");
  }

  std::printf("== Predictor envelope on Figure 2 (branch selector swept) "
              "==\n");
  DiagnosticEngine Diags;
  auto CP = compileSource(fig2Source(), Diags);
  if (!CP)
    return 1;
  MemoryModel MM(*CP->P, CacheConfig::paperDefault());

  MustHitOptions SpecOpts;
  SpecOpts.Speculative = true;
  MustHitReport Static = runMustHitAnalysis(*CP, SpecOpts);
  MustHitOptions NsOpts;
  NsOpts.Speculative = false;
  MustHitReport StaticNs = runMustHitAnalysis(*CP, NsOpts);

  TableWriter T({"Predictor", "p", "Misses", "Hits", "SpecMisses",
                 "Mispredicts"});
  uint64_t WorstObserved = 0;
  for (auto &P : makeStandardPredictors()) {
    for (int64_t PVal : {0, 1}) {
      P->reset();
      SpeculativeCpu Cpu(*CP->P, MM, *P, TimingModel{}, true);
      Cpu.setWindows({3, 3});
      Cpu.machine().setMemory(CP->P->findVar("p"), 0, PVal);
      CpuRunStats S = Cpu.run();
      WorstObserved = std::max(WorstObserved, S.Misses);
      T.addRow({P->name(), std::to_string(PVal), std::to_string(S.Misses),
                std::to_string(S.Hits), std::to_string(S.SpecMisses),
                std::to_string(S.Mispredicts)});
    }
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("worst observed misses across predictors: %llu\n",
              static_cast<unsigned long long>(WorstObserved));
  std::printf("static #Miss: speculative analysis %llu (covers the worst "
              "case), non-speculative %llu (%s)\n",
              static_cast<unsigned long long>(Static.MissCount),
              static_cast<unsigned long long>(StaticNs.MissCount),
              StaticNs.MissCount < WorstObserved
                  ? "UNDERCOUNTS under speculation - the paper's point"
                  : "also covers it here");
  return Static.MissCount >= WorstObserved ? 0 : 1;
}
