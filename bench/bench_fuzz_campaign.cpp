//===- bench_fuzz_campaign.cpp - Soundness-campaign throughput ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the differential soundness fuzzer (src/fuzz): a fixed
/// 50-program campaign across all merge strategies and bounding modes,
/// reporting programs/sec and the per-program scenario coverage. This is
/// the perf trajectory behind BENCH_fuzz.json: campaigns are the repo's
/// scenario-discovery machine, so their throughput bounds how much of the
/// input space nightly CI can sweep.
///
/// Coverage counters are deterministic in (seed, programs) and must be
/// identical whatever --jobs is; only the timing moves.
///
/// `--json FILE` additionally writes the counters and timing as a JSON
/// object — the CI perf smoke uploads it as an artifact so the
/// BENCH_fuzz.json trajectory can be extended from CI runs.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <string>

using namespace specai;

namespace {

/// Writes the campaign summary as JSON; returns false on I/O failure.
bool writeJson(const char *Path, const FuzzCampaignOptions &O,
               const FuzzCampaignStats &S, double PerSec, unsigned Jobs) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(
      F,
      "{\n"
      "  \"seed\": %llu,\n"
      "  \"programs\": %llu,\n"
      "  \"jobs\": %u,\n"
      "  \"compile_failures\": %llu,\n"
      "  \"analyses\": %llu,\n"
      "  \"concrete_runs\": %llu,\n"
      "  \"speculative_windows\": %llu,\n"
      "  \"committed_checks\": %llu,\n"
      "  \"speculative_checks\": %llu,\n"
      "  \"violation_programs\": %llu,\n"
      "  \"seconds\": %.3f,\n"
      "  \"programs_per_sec\": %.2f\n"
      "}\n",
      static_cast<unsigned long long>(O.Seed),
      static_cast<unsigned long long>(S.Programs), Jobs,
      static_cast<unsigned long long>(S.CompileFailures),
      static_cast<unsigned long long>(S.Oracle.Analyses),
      static_cast<unsigned long long>(S.Oracle.ConcreteRuns),
      static_cast<unsigned long long>(S.Oracle.SpeculativeWindows),
      static_cast<unsigned long long>(S.Oracle.CommittedChecks),
      static_cast<unsigned long long>(S.Oracle.SpeculativeChecks),
      static_cast<unsigned long long>(S.ViolationPrograms), S.Seconds,
      PerSec);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json FILE before handing the rest to the shared --jobs
  // parser (which rejects flags it does not own).
  const char *JsonPath = nullptr;
  std::vector<char *> Rest{Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    Rest.push_back(Argv[I]);
  }
  std::string JobsError;
  std::optional<unsigned> JobsOpt = parseJobsFlag(
      static_cast<int>(Rest.size()), Rest.data(), JobsError);
  if (!JobsOpt) { // Benches keep the historical fail-fast exit contract.
    std::fprintf(stderr, "%s\n", JobsError.c_str());
    return 1;
  }
  unsigned Jobs = *JobsOpt; // 0 = all hardware threads.

  std::printf("== Differential soundness fuzzing campaign ==\n");

  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = 50;
  O.Jobs = Jobs;
  FuzzCampaignResult R = runFuzzCampaign(O);

  double PerSec =
      R.Stats.Seconds > 0 ? R.Stats.Programs / R.Stats.Seconds : 0;

  if (JsonPath && !writeJson(JsonPath, O, R.Stats, PerSec, Jobs)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  TableWriter T({"Programs", "Runs", "SpecWindows", "CommChecks",
                 "SpecChecks", "Violations", "Time(s)", "Prog/s"});
  T.addRow({std::to_string(R.Stats.Programs),
            std::to_string(R.Stats.Oracle.ConcreteRuns),
            std::to_string(R.Stats.Oracle.SpeculativeWindows),
            std::to_string(R.Stats.Oracle.CommittedChecks),
            std::to_string(R.Stats.Oracle.SpeculativeChecks),
            std::to_string(R.Stats.ViolationPrograms),
            formatDouble(R.Stats.Seconds, 2), formatDouble(PerSec, 2)});
  std::printf("%s", T.str().c_str());

  if (!R.ok()) {
    std::printf("UNSOUND: %s\n", R.Counterexamples.front().Pretty.c_str());
    return 1;
  }
  std::printf("sound: no containment violation in %llu concrete runs\n",
              static_cast<unsigned long long>(R.Stats.Oracle.ConcreteRuns));
  return 0;
}
