//===- bench_fuzz_campaign.cpp - Soundness-campaign throughput ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the differential soundness fuzzer (src/fuzz): a fixed
/// 50-program campaign across all merge strategies and bounding modes,
/// reporting programs/sec and the per-program scenario coverage. This is
/// the perf trajectory behind BENCH_fuzz.json: campaigns are the repo's
/// scenario-discovery machine, so their throughput bounds how much of the
/// input space nightly CI can sweep.
///
/// Coverage counters are deterministic in (seed, programs) and must be
/// identical whatever --jobs is; only the timing moves.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main(int Argc, char **Argv) {
  unsigned Jobs = parseJobsFlag(Argc, Argv); // 0 = all hardware threads.

  std::printf("== Differential soundness fuzzing campaign ==\n");

  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = 50;
  O.Jobs = Jobs;
  FuzzCampaignResult R = runFuzzCampaign(O);

  double PerSec =
      R.Stats.Seconds > 0 ? R.Stats.Programs / R.Stats.Seconds : 0;
  TableWriter T({"Programs", "Runs", "SpecWindows", "CommChecks",
                 "SpecChecks", "Violations", "Time(s)", "Prog/s"});
  T.addRow({std::to_string(R.Stats.Programs),
            std::to_string(R.Stats.Oracle.ConcreteRuns),
            std::to_string(R.Stats.Oracle.SpeculativeWindows),
            std::to_string(R.Stats.Oracle.CommittedChecks),
            std::to_string(R.Stats.Oracle.SpeculativeChecks),
            std::to_string(R.Stats.ViolationPrograms),
            formatDouble(R.Stats.Seconds, 2), formatDouble(PerSec, 2)});
  std::printf("%s", T.str().c_str());

  if (!R.ok()) {
    std::printf("UNSOUND: %s\n", R.Counterexamples.front().Pretty.c_str());
    return 1;
  }
  std::printf("sound: no containment violation in %llu concrete runs\n",
              static_cast<unsigned long long>(R.Stats.Oracle.ConcreteRuns));
  return 0;
}
