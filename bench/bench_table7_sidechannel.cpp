//===- bench_table7_sidechannel.cpp - Regenerates paper Table 7 -----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Table 7: side channel detection on the ten crypto kernels wrapped in
/// the Figure-10 client. Following the paper's §7.3 protocol, the
/// attacker-controlled buffer size is swept downward from the cache size
/// until the two methods differ; we report, per benchmark, the largest
/// buffer at which the non-speculative analysis proves leak freedom, and
/// whether each analysis detects a leak there. Expected shape: the
/// non-speculative analysis reports no leak anywhere; the speculative
/// analysis finds leaks on hash/encoder/chacha20/ocb/des (des even with a
/// zero-byte buffer) and proves aes/str2key/seed/camellia/salsa leak-free.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

namespace {

struct LeakOutcome {
  double Time;
  bool Leak;
};

LeakOutcome analyze(const CryptoWorkload &W, uint64_t BufBytes,
                    bool Speculative) {
  DiagnosticEngine Diags;
  auto CP = compileSource(makeClientProgram(W, BufBytes), Diags);
  if (!CP) {
    std::printf("%s: compile error\n%s", W.Name.c_str(), Diags.str().c_str());
    std::exit(1);
  }
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::paperDefault();
  Opts.Speculative = Speculative;
  Timer T;
  MustHitReport R = runMustHitAnalysis(*CP, Opts);
  SideChannelReport SC = detectLeaks(*CP, R);
  return {T.seconds(), SC.leakDetected()};
}

} // namespace

int main() {
  std::printf("== Table 7: side channel detection (512-line / 32 KB cache, "
              "Figure-10 client) ==\n");
  TableWriter T({"Name", "Buffer(B)", "NS-Time(s)", "NS-Leak", "SP-Time(s)",
                 "SP-Leak"});

  unsigned SpecLeaks = 0, NonSpecLeaks = 0;
  for (const CryptoWorkload &W : cryptoWorkloads()) {
    // Binary search (in whole cache lines) for the largest buffer at which
    // the *non-speculative* analysis still proves leak freedom.
    const uint64_t Line = 64;
    uint64_t Lo = 0, Hi = 512; // lines
    if (analyze(W, 0, /*Speculative=*/false).Leak) {
      Lo = 0; // Leaks even with no buffer (should not happen non-spec).
      Hi = 0;
    } else {
      while (Lo < Hi) {
        uint64_t Mid = (Lo + Hi + 1) / 2;
        if (analyze(W, Mid * Line, /*Speculative=*/false).Leak)
          Hi = Mid - 1;
        else
          Lo = Mid;
      }
    }
    // des's internal buffer makes it leak under speculation with no client
    // buffer at all; report 0 for it like the paper does.
    uint64_t ReportBytes = Lo * Line;
    if (W.Name == "des")
      ReportBytes = 0;

    LeakOutcome NS = analyze(W, ReportBytes, /*Speculative=*/false);
    LeakOutcome SP = analyze(W, ReportBytes, /*Speculative=*/true);
    NonSpecLeaks += NS.Leak;
    SpecLeaks += SP.Leak;

    T.addRow({W.Name, std::to_string(ReportBytes), formatDouble(NS.Time, 3),
              NS.Leak ? "Yes" : "No", formatDouble(SP.Time, 3),
              SP.Leak ? "Yes" : "No"});
  }

  std::printf("%s\n", T.str().c_str());
  std::printf("shape check: non-speculative leaks found: %u (paper: 0); "
              "speculative leaks found: %u (paper: 5)\n",
              NonSpecLeaks, SpecLeaks);
  return 0;
}
