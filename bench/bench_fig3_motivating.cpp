//===- bench_fig3_motivating.cpp - Regenerates paper Figures 2/3 ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Figure 2/3: the motivating example. Concrete pipelined execution:
/// non-speculative = 512 misses + 1 hit, speculative with a mispredicted
/// branch = 513 observable misses plus one speculative miss masked by the
/// pipeline. Static analysis: the non-speculative analysis proves the
/// final ph[k] access a hit (and would thus underestimate the WCET); the
/// speculative analysis reports it as a possible miss and flags the
/// ph[k] side channel.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Figure 2/3: motivating example (512-line cache) ==\n");
  DiagnosticEngine Diags;
  auto CP = compileSource(fig2Source(), Diags);
  if (!CP) {
    std::printf("compile error\n%s", Diags.str().c_str());
    return 1;
  }
  MemoryModel MM(*CP->P, CacheConfig::paperDefault());

  TableWriter Sim({"Execution", "Misses", "Hits", "SpecMisses", "Cycles"});
  {
    StaticPredictor P(false);
    SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{}, false);
    Cpu.machine().setMemory(CP->P->findVar("p"), 0, 1);
    CpuRunStats S = Cpu.run();
    Sim.addRow({"non-speculative", std::to_string(S.Misses),
                std::to_string(S.Hits), std::to_string(S.SpecMisses),
                std::to_string(S.Cycles)});
  }
  {
    StaticPredictor P(true); // Mispredicts the p==0 branch.
    SpeculativeCpu Cpu(*CP->P, MM, P, TimingModel{}, true);
    Cpu.setWindows({3, 3}); // Rolls back right after the l1 load (Fig. 3).
    Cpu.machine().setMemory(CP->P->findVar("p"), 0, 1);
    CpuRunStats S = Cpu.run();
    Sim.addRow({"speculative (mispredict)", std::to_string(S.Misses),
                std::to_string(S.Hits), std::to_string(S.SpecMisses),
                std::to_string(S.Cycles)});
  }
  std::printf("%s\n", Sim.str().c_str());

  TableWriter An({"Analysis", "#Miss", "final ph[k]", "leak detected"});
  for (bool Spec : {false, true}) {
    MustHitOptions Opts;
    Opts.Speculative = Spec;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    SideChannelReport SC = detectLeaks(*CP, R);
    // Find the final access (the ph[k] load right before the return).
    NodeId Final = InvalidNode;
    for (NodeId Ret : CP->G.exits())
      for (int32_t I = static_cast<int32_t>(CP->G.instIndexOf(Ret)); I >= 0;
           --I) {
        NodeId N = CP->G.nodeAt(CP->G.blockOf(Ret), static_cast<uint32_t>(I));
        if (CP->G.inst(N).accessesMemory()) {
          Final = N;
          I = -1;
        }
      }
    An.addRow({Spec ? "speculative" : "non-speculative",
               std::to_string(R.MissCount),
               R.MustHit[Final] ? "must-hit" : "may-miss",
               SC.leakDetected() ? "Yes" : "No"});
  }
  std::printf("%s\n", An.str().c_str());
  std::printf("paper: non-spec 512 misses + 1 hit; spec 513 observable "
              "misses + 1 masked speculative miss; leak only under "
              "speculation\n");
  return 0;
}
