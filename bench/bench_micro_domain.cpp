//===- bench_micro_domain.cpp - Domain/engine microbenchmarks -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks of the abstract-domain primitives
/// (transfer, join, widen) across state sizes, plus end-to-end engine
/// throughput on quantl — the knobs §6's optimizations trade against.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <benchmark/benchmark.h>

using namespace specai;

namespace {

/// Builds a program with one array of \p Lines lines plus that many
/// scalars, and a model over a cache of the same size.
struct DomainFixture {
  Program P;
  CacheConfig Config;
  std::unique_ptr<MemoryModel> MM;

  explicit DomainFixture(uint32_t Lines)
      : Config(CacheConfig::fullyAssociative(Lines)) {
    for (uint32_t I = 0; I != Lines; ++I) {
      MemVar Var;
      Var.Name = "v" + std::to_string(I);
      Var.ElemSize = 8;
      Var.NumElements = 1;
      P.Vars.push_back(Var);
    }
    // One terminating block so the program is structurally valid.
    BasicBlock BB;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    BB.Insts.push_back(Ret);
    P.Blocks.push_back(BB);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  CacheAbsState fullState(bool Shadow) const {
    CacheAbsState S = CacheAbsState::empty();
    for (VarId V = 0; V != P.Vars.size(); ++V)
      S.accessBlock(MM->blockOf(V, 0), *MM, Shadow);
    return S;
  }
};

void BM_TransferKnown(benchmark::State &State) {
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  bool Shadow = State.range(1) != 0;
  CacheAbsState S = F.fullState(Shadow);
  uint64_t V = 0;
  for (auto _ : State) {
    S.accessBlock(F.MM->blockOf(V % F.P.Vars.size(), 0), *F.MM, Shadow);
    ++V;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TransferKnown)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_Join(benchmark::State &State) {
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  bool Shadow = State.range(1) != 0;
  CacheAbsState A = F.fullState(Shadow);
  CacheAbsState B = F.fullState(Shadow);
  B.accessBlock(F.MM->blockOf(0, 0), *F.MM, Shadow);
  for (auto _ : State) {
    CacheAbsState C = A;
    benchmark::DoNotOptimize(C.joinInto(B, Shadow));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Join)->Args({16, 1})->Args({128, 1})->Args({512, 1});

void BM_Widen(benchmark::State &State) {
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  CacheAbsState Prev = F.fullState(true);
  CacheAbsState Cur = Prev;
  Cur.accessBlock(F.MM->blockOf(0, 0), *F.MM, true);
  for (auto _ : State) {
    CacheAbsState W = Cur;
    W.widenFrom(Prev, F.Config.Associativity);
    benchmark::DoNotOptimize(W);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Widen)->Arg(16)->Arg(128)->Arg(512);

void BM_QuantlAnalysis(benchmark::State &State) {
  DiagnosticEngine Diags;
  LoweringOptions LO;
  LO.EntryFunction = "quantl";
  auto CP = compileSource(quantlSource(), Diags, LO);
  bool Speculative = State.range(0) != 0;
  for (auto _ : State) {
    MustHitOptions Opts;
    Opts.Speculative = Speculative;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    benchmark::DoNotOptimize(R.MissCount);
  }
}
BENCHMARK(BM_QuantlAnalysis)->Arg(0)->Arg(1);

void BM_CompileFig2(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto CP = compileSource(fig2Source(), Diags);
    benchmark::DoNotOptimize(CP);
  }
}
BENCHMARK(BM_CompileFig2);

} // namespace
