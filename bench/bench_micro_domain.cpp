//===- bench_micro_domain.cpp - Domain/engine microbenchmarks -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks of the abstract-domain primitives
/// (transfer, join, widen, copy, hash, interning) across state sizes and
/// cache geometries, plus end-to-end engine throughput on quantl — the
/// knobs §6's optimizations trade against. The join/transfer benches run
/// both fully associative (one partition) and 8-way set-associative
/// (realistic per-set partitioning) shapes; BENCH_domain.json tracks the
/// trajectory.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <benchmark/benchmark.h>

using namespace specai;

namespace {

/// Builds a program with one-line variables over \p Config (one per cache
/// line), so fullState() fills every set of the modeled cache.
struct GeomFixture {
  Program P;
  CacheConfig Config;
  std::unique_ptr<MemoryModel> MM;

  explicit GeomFixture(CacheConfig Config) : Config(Config) {
    for (uint32_t I = 0; I != Config.NumLines; ++I) {
      MemVar Var;
      Var.Name = "v" + std::to_string(I);
      Var.ElemSize = 8;
      Var.NumElements = 1;
      P.Vars.push_back(Var);
    }
    // One terminating block so the program is structurally valid.
    BasicBlock BB;
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    BB.Insts.push_back(Ret);
    P.Blocks.push_back(BB);
    MM = std::make_unique<MemoryModel>(P, Config);
  }

  CacheAbsState fullState(bool Shadow) const {
    CacheAbsState S = CacheAbsState::empty();
    for (VarId V = 0; V != P.Vars.size(); ++V)
      S.accessBlock(MM->blockOf(V, 0), *MM, Shadow);
    return S;
  }
};

/// The historical fixture: fully associative with \p Lines lines.
struct DomainFixture : GeomFixture {
  explicit DomainFixture(uint32_t Lines)
      : GeomFixture(CacheConfig::fullyAssociative(Lines)) {}
};

/// Range(1) == 1 selects 8-way set-associative, else fully associative.
CacheConfig geomOf(int64_t Lines, int64_t SetAssoc) {
  return SetAssoc ? CacheConfig::setAssociative(static_cast<uint32_t>(Lines),
                                                8)
                  : CacheConfig::fullyAssociative(
                        static_cast<uint32_t>(Lines));
}

void BM_TransferKnown(benchmark::State &State) {
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  bool Shadow = State.range(1) != 0;
  CacheAbsState S = F.fullState(Shadow);
  uint64_t V = 0;
  for (auto _ : State) {
    S.accessBlock(F.MM->blockOf(V % F.P.Vars.size(), 0), *F.MM, Shadow);
    ++V;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TransferKnown)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_Join(benchmark::State &State) {
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  bool Shadow = State.range(1) != 0;
  CacheAbsState A = F.fullState(Shadow);
  CacheAbsState B = F.fullState(Shadow);
  B.accessBlock(F.MM->blockOf(0, 0), *F.MM, Shadow);
  for (auto _ : State) {
    CacheAbsState C = A;
    benchmark::DoNotOptimize(C.joinInto(B, Shadow));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Join)->Args({16, 1})->Args({128, 1})->Args({512, 1});

void BM_Widen(benchmark::State &State) {
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  CacheAbsState Prev = F.fullState(true);
  CacheAbsState Cur = Prev;
  Cur.accessBlock(F.MM->blockOf(0, 0), *F.MM, true);
  for (auto _ : State) {
    CacheAbsState W = Cur;
    W.widenFrom(Prev, F.Config.Associativity);
    benchmark::DoNotOptimize(W);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Widen)->Arg(16)->Arg(128)->Arg(512);

// ---- Hot-path representation benches (per-set partitioning, COW, hash,
// ---- interning) at realistic geometries: args are (lines, set-assoc?).

void BM_TransferKnownGeom(benchmark::State &State) {
  GeomFixture F(geomOf(State.range(0), State.range(1)));
  // Production analyses always run under a payload arena
  // (AnalysisPipeline installs one); measure that profile.
  CacheStateArenaScope Arena;
  CacheAbsState S = F.fullState(true);
  uint64_t V = 0;
  for (auto _ : State) {
    S.accessBlock(F.MM->blockOf(V % F.P.Vars.size(), 0), *F.MM, true);
    ++V;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TransferKnownGeom)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_JoinGeom(benchmark::State &State) {
  GeomFixture F(geomOf(State.range(0), State.range(1)));
  CacheStateArenaScope Arena;
  CacheAbsState A = F.fullState(true);
  CacheAbsState B = F.fullState(true);
  B.accessBlock(F.MM->blockOf(0, 0), *F.MM, true);
  for (auto _ : State) {
    CacheAbsState C = A;
    benchmark::DoNotOptimize(C.joinInto(B, true));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_JoinGeom)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_JoinNoChangeSharedStorage(benchmark::State &State) {
  // The engines' steady state: joining a state into an identical one that
  // shares its payload must be O(1) (pointer compare), whatever the size.
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  CacheAbsState A = F.fullState(true);
  CacheAbsState B = A; // Copy-on-write alias.
  for (auto _ : State)
    benchmark::DoNotOptimize(A.joinInto(B, true));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_JoinNoChangeSharedStorage)->Arg(16)->Arg(128)->Arg(512);

void BM_JoinNoChangeSubsumed(benchmark::State &State) {
  // From ⊑ Into with distinct payloads: the no-change path walks entries
  // but must not allocate.
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  CacheAbsState Into = F.fullState(true);
  CacheAbsState From = Into;
  From.accessBlock(F.MM->blockOf(0, 0), *F.MM, true);
  Into.joinInto(From, true); // Now From ⊑ Into strictly.
  for (auto _ : State)
    benchmark::DoNotOptimize(Into.joinInto(From, true));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_JoinNoChangeSubsumed)->Arg(16)->Arg(128)->Arg(512);

void BM_CopyState(benchmark::State &State) {
  // `Out = In` in the engines: a refcount bump under COW.
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  CacheAbsState A = F.fullState(true);
  for (auto _ : State) {
    CacheAbsState B = A;
    benchmark::DoNotOptimize(B);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CopyState)->Arg(16)->Arg(512);

void BM_StructuralHash(benchmark::State &State) {
  // Cold hash of a fresh payload each iteration (the cached-hash hit is
  // a load; this measures the computation the cache amortizes).
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  CacheAbsState A = F.fullState(true);
  for (auto _ : State) {
    CacheAbsState B = A;
    B.accessBlock(F.MM->blockOf(1, 0), *F.MM, true); // Invalidate.
    benchmark::DoNotOptimize(B.structuralHash());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StructuralHash)->Arg(16)->Arg(128)->Arg(512);

void BM_Intern(benchmark::State &State) {
  // Steady-state interning: equal states resolve to the pooled payload
  // via one cached-hash lookup plus a shared-storage equality check.
  DomainFixture F(static_cast<uint32_t>(State.range(0)));
  StateInterner<CacheAbsState> Pool;
  CacheAbsState A = F.fullState(true);
  CacheAbsState Canon = Pool.intern(A);
  benchmark::DoNotOptimize(Canon);
  for (auto _ : State)
    benchmark::DoNotOptimize(Pool.intern(A));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_Intern)->Arg(16)->Arg(512);

void BM_QuantlAnalysis(benchmark::State &State) {
  DiagnosticEngine Diags;
  LoweringOptions LO;
  LO.EntryFunction = "quantl";
  auto CP = compileSource(quantlSource(), Diags, LO);
  bool Speculative = State.range(0) != 0;
  for (auto _ : State) {
    MustHitOptions Opts;
    Opts.Speculative = Speculative;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    benchmark::DoNotOptimize(R.MissCount);
  }
}
BENCHMARK(BM_QuantlAnalysis)->Arg(0)->Arg(1);

void BM_CompileFig2(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto CP = compileSource(fig2Source(), Diags);
    benchmark::DoNotOptimize(CP);
  }
}
BENCHMARK(BM_CompileFig2);

} // namespace
