//===- bench_service_replay.cpp - Verdict-cache replay throughput ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The headline measurement behind specaid (docs/SERVICE.md): an analysis
/// trace with realistic duplication replayed through the service engine
/// against the cost of answering every request with a fresh single-shot
/// analysis.
///
/// The trace models a CI fleet re-analyzing mostly unchanged code: a small
/// *head* of expensive deep-call programs (paper-default 512-line
/// geometry) receives nearly all requests — every push re-checks the same
/// hot kernels — while a long *tail* of small one-off programs appears
/// once each. 10000 requests over 1000 unique programs (90% duplicates):
/// 32 head programs soak up all 9000 repeats, 968 tail programs run once.
///
/// Phase 1 measures the cold single-shot cost of every unique program
/// (this is also the oracle: each replayed verdict must be bit-identical
/// to its single-shot digest). The no-daemon trace cost is then the exact
/// sum over the trace of its request's cold cost — what `specai-cli` once
/// per request would pay. Phase 2 replays the full trace through a
/// ServiceEngine and checks verdicts, the hit count, and the throughput
/// ratio. Phase 3 replays again with a different worker count and demands
/// bit-identical digests and identical cache counters — the daemon's
/// answers must not depend on its parallelism.
///
/// Phase 4 is the faulted replay: the same engine with the worker-stall
/// fault armed and per-request deadlines. The availability claim from
/// docs/SERVICE.md is measured directly — every request gets a definitive
/// answer (a verdict or `status: timeout`) within twice its deadline,
/// stalls included — along with the p99 answer latency under fault.
///
/// Exit code: 0 when every assertion holds (including replay throughput
/// >= 100x single-shot), 1 otherwise. `--json FILE` writes the checked-in
/// BENCH_service.json record.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace specai;

namespace {

// Trace shape. 90% duplicates: Trace - Head - Tail = 9000 repeat requests,
// all landing on the Head programs.
constexpr uint64_t TraceLen = 10000;
constexpr uint64_t HeadCount = 32;
constexpr uint64_t TailCount = 968;
constexpr uint64_t UniqueCount = HeadCount + TailCount;
constexpr uint64_t SeedBase = 4200;

/// One unique program of the trace plus its single-shot reference.
struct UniqueProgram {
  ServiceRequest Request;
  uint64_t ColdVerdict = 0;
  double ColdSeconds = 0;
};

/// Head programs: deep-call generated programs (helper functions, loops)
/// under the paper's 512-line geometry — the expensive kind a fleet
/// re-analyzes on every push.
ServiceRequest headRequest(uint64_t Index) {
  ProgramGenOptions Gen;
  Gen.Functions = true;
  Gen.MinFunctions = 3;
  Gen.MaxFunctions = 4;
  Gen.MinStmts = 8;
  Gen.MaxStmts = 12;
  ServiceRequest Req;
  Req.Source = ProgramGen(SeedBase + Index, Gen).generate().source();
  Req.Cache = CacheConfig::paperDefault();
  return Req;
}

/// Tail programs: small one-off sources on a tiny geometry — cheap
/// individually, numerous collectively.
ServiceRequest tailRequest(uint64_t Index) {
  ServiceRequest Req;
  Req.Source =
      ProgramGen(SeedBase + HeadCount + Index).generate().source();
  Req.Cache = CacheConfig::fullyAssociative(8);
  return Req;
}

struct ReplayResult {
  bool Ok = false;
  uint64_t Hits = 0;
  uint64_t AnalysesRun = 0;
  double Seconds = 0;
  std::vector<uint64_t> Digests;
};

ReplayResult replay(const std::vector<UniqueProgram> &Uniques,
                    const std::vector<uint64_t> &Trace, unsigned Jobs) {
  ServiceEngineOptions Opts;
  Opts.Jobs = Jobs;
  Opts.CacheEntries = 4096;
  Opts.QueueCapacity = 64;
  ServiceEngine Engine(Opts);

  ReplayResult Out;
  Out.Digests.reserve(Trace.size());
  Timer T;
  for (size_t I = 0; I != Trace.size(); ++I) {
    ServiceRequest Req = Uniques[Trace[I]].Request;
    Req.Id = I;
    ServiceResponse Resp = Engine.handle(Req);
    if (Resp.Status != ServiceStatus::Ok) {
      std::fprintf(stderr, "error: request %zu (%s): %s\n", I,
                   serviceStatusName(Resp.Status), Resp.Error.c_str());
      return Out;
    }
    if (Resp.Cached)
      ++Out.Hits;
    Out.Digests.push_back(Resp.VerdictDigest);
  }
  Out.Seconds = T.seconds();
  Out.AnalysesRun = Engine.stats().AnalysesRun;
  Out.Ok = true;
  return Out;
}

// Faulted-replay shape: a handful of healthy programs whose generous
// deadline rides out the injected stall, a handful of doomed ones whose
// strict deadline cannot, and a run of duplicate traffic over the healthy
// set once its verdicts are cached.
constexpr uint64_t FaultHealthy = 8;
constexpr uint64_t FaultDoomed = 8;
constexpr uint64_t FaultDuplicates = 48;
constexpr uint64_t FaultTraceLen = FaultHealthy + FaultDoomed + FaultDuplicates;
constexpr uint64_t GenerousDeadlineMs = 400; // Outlives the ~100ms stall.
constexpr uint64_t StrictDeadlineMs = 50;    // Cannot survive the stall.

struct FaultedResult {
  bool Ok = false;
  uint64_t OkCount = 0;
  uint64_t TimeoutCount = 0;
  /// Requests answered (verdict or explicit timeout) within twice their
  /// deadline — the availability the service promises under fault.
  uint64_t OnTime = 0;
  double P99Ms = 0;
};

FaultedResult faultedReplay() {
  ServiceEngineOptions Opts;
  Opts.Jobs = 2;
  Opts.CacheEntries = 4096;
  Opts.QueueCapacity = 64;
  Opts.Fault = ServiceFault::WorkerStall;
  ServiceEngine Engine(Opts);

  // Healthy and doomed programs are disjoint fresh seeds: every doomed
  // request is a cache miss that must ride the stalled worker into its
  // deadline, every healthy one pays the stall once and hits thereafter.
  std::vector<ServiceRequest> Healthy, Doomed;
  for (uint64_t I = 0; I != FaultHealthy; ++I) {
    ServiceRequest Req;
    Req.Source = ProgramGen(SeedBase + 10000 + I).generate().source();
    Req.Cache = CacheConfig::fullyAssociative(8);
    Req.TimeoutMs = GenerousDeadlineMs;
    Healthy.push_back(std::move(Req));
  }
  for (uint64_t I = 0; I != FaultDoomed; ++I) {
    ServiceRequest Req;
    Req.Source = ProgramGen(SeedBase + 20000 + I).generate().source();
    Req.Cache = CacheConfig::fullyAssociative(8);
    Req.TimeoutMs = StrictDeadlineMs;
    Doomed.push_back(std::move(Req));
  }

  FaultedResult Out;
  std::vector<double> LatenciesMs;
  LatenciesMs.reserve(FaultTraceLen);
  Rng Pick(SeedBase + 99);
  for (uint64_t I = 0; I != FaultTraceLen; ++I) {
    // Interleave: healthy misses, doomed misses, then duplicate traffic.
    ServiceRequest Req =
        I < FaultHealthy ? Healthy[I]
        : I < FaultHealthy + FaultDoomed
            ? Doomed[I - FaultHealthy]
            : Healthy[Pick.nextBelow(FaultHealthy)];
    Req.Id = I;
    Timer T;
    ServiceResponse Resp = Engine.handle(Req);
    double Ms = T.seconds() * 1000;
    LatenciesMs.push_back(Ms);
    if (Resp.Status == ServiceStatus::Ok)
      ++Out.OkCount;
    else if (Resp.Status == ServiceStatus::Timeout)
      ++Out.TimeoutCount;
    else {
      std::fprintf(stderr, "error: faulted request %llu: %s\n",
                   static_cast<unsigned long long>(I), Resp.Error.c_str());
      return Out;
    }
    if (Ms <= 2 * static_cast<double>(Req.TimeoutMs))
      ++Out.OnTime;
  }
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  Out.P99Ms = LatenciesMs[(LatenciesMs.size() * 99) / 100];
  Out.Ok = true;
  return Out;
}

bool writeJson(const char *Path, double SingleShotSeconds,
               const ReplayResult &A, const ReplayResult &B, unsigned JobsA,
               unsigned JobsB, double Speedup, const FaultedResult &Faulted) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(
      F,
      "{\n"
      "  \"suite\": \"service-replay\",\n"
      "  \"workload\": \"CI-fleet trace: hot deep-call head, one-off "
      "tail\",\n"
      "  \"trace_requests\": %llu,\n"
      "  \"unique_programs\": %llu,\n"
      "  \"head_programs\": %llu,\n"
      "  \"tail_programs\": %llu,\n"
      "  \"duplicate_share\": %.2f,\n"
      "  \"seed_base\": %llu,\n"
      "  \"single_shot_seconds\": %.3f,\n"
      "  \"single_shot_rps\": %.1f,\n"
      "  \"replay_seconds\": %.3f,\n"
      "  \"replay_rps\": %.1f,\n"
      "  \"speedup\": %.1f,\n"
      "  \"cache_hits\": %llu,\n"
      "  \"analyses_run\": %llu,\n"
      "  \"verdicts_bit_identical_to_single_shot\": true,\n"
      "  \"jobs_compared\": [%u, %u],\n"
      "  \"replay_seconds_alt_jobs\": %.3f,\n"
      "  \"jobs_invariant\": true,\n"
      "  \"faulted_fault\": \"worker-stall\",\n"
      "  \"faulted_requests\": %llu,\n"
      "  \"faulted_deadlines_ms\": [%llu, %llu],\n"
      "  \"faulted_ok\": %llu,\n"
      "  \"faulted_timeouts\": %llu,\n"
      "  \"faulted_availability\": %.4f,\n"
      "  \"faulted_p99_ms\": %.1f\n"
      "}\n",
      static_cast<unsigned long long>(TraceLen),
      static_cast<unsigned long long>(UniqueCount),
      static_cast<unsigned long long>(HeadCount),
      static_cast<unsigned long long>(TailCount),
      static_cast<double>(TraceLen - UniqueCount) /
          static_cast<double>(TraceLen),
      static_cast<unsigned long long>(SeedBase), SingleShotSeconds,
      static_cast<double>(TraceLen) / SingleShotSeconds, A.Seconds,
      static_cast<double>(TraceLen) / A.Seconds, Speedup,
      static_cast<unsigned long long>(A.Hits),
      static_cast<unsigned long long>(A.AnalysesRun), JobsA, JobsB,
      B.Seconds, static_cast<unsigned long long>(FaultTraceLen),
      static_cast<unsigned long long>(StrictDeadlineMs),
      static_cast<unsigned long long>(GenerousDeadlineMs),
      static_cast<unsigned long long>(Faulted.OkCount),
      static_cast<unsigned long long>(Faulted.TimeoutCount),
      static_cast<double>(Faulted.OnTime) /
          static_cast<double>(FaultTraceLen),
      Faulted.P99Ms);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    std::fprintf(stderr, "usage: %s [--json FILE]\n", Argv[0]);
    return 1;
  }

  // Phase 1: cold single-shot reference for every unique program. These
  // digests are the correctness oracle; the per-program seconds feed the
  // no-daemon cost model.
  std::printf("phase 1: %llu unique programs, cold single-shot runs\n",
              static_cast<unsigned long long>(UniqueCount));
  std::vector<UniqueProgram> Uniques(UniqueCount);
  double HeadSeconds = 0, TailSeconds = 0;
  for (uint64_t I = 0; I != UniqueCount; ++I) {
    UniqueProgram &U = Uniques[I];
    U.Request = I < HeadCount ? headRequest(I) : tailRequest(I - HeadCount);
    Timer T;
    RunOutcome Out = runRequest(U.Request.toRunRequest());
    U.ColdSeconds = T.seconds();
    if (!Out.Ok) {
      std::fprintf(stderr, "error: unique %llu failed to analyze: %s\n",
                   static_cast<unsigned long long>(I), Out.Error.c_str());
      return 1;
    }
    U.ColdVerdict = verdictDigest(Out.Row);
    (I < HeadCount ? HeadSeconds : TailSeconds) += U.ColdSeconds;
  }
  std::printf("  head: %llu programs, %.3fs total (%.1f ms mean)\n",
              static_cast<unsigned long long>(HeadCount), HeadSeconds,
              1000 * HeadSeconds / HeadCount);
  std::printf("  tail: %llu programs, %.3fs total (%.2f ms mean)\n",
              static_cast<unsigned long long>(TailCount), TailSeconds,
              1000 * TailSeconds / TailCount);

  // The trace: every unique once (misses), then 9000 repeats drawn from
  // the head. Deterministic from the seed.
  std::vector<uint64_t> Trace;
  Trace.reserve(TraceLen);
  for (uint64_t I = 0; I != UniqueCount; ++I)
    Trace.push_back(I);
  Rng Pick(SeedBase);
  while (Trace.size() != TraceLen)
    Trace.push_back(Pick.nextBelow(HeadCount));

  // What the trace costs with no daemon: its requests at their measured
  // cold price.
  double SingleShotSeconds = 0;
  for (uint64_t U : Trace)
    SingleShotSeconds += Uniques[U].ColdSeconds;
  std::printf("single-shot trace cost: %.1fs extrapolated (%.1f req/s)\n",
              SingleShotSeconds,
              static_cast<double>(TraceLen) / SingleShotSeconds);

  // Phase 2: the same trace through the service engine.
  std::printf("phase 2: replaying %llu requests through the engine\n",
              static_cast<unsigned long long>(TraceLen));
  const unsigned JobsA = 1;
  ReplayResult A = replay(Uniques, Trace, JobsA);
  if (!A.Ok)
    return 1;

  bool Pass = true;
  for (size_t I = 0; I != Trace.size(); ++I)
    if (A.Digests[I] != Uniques[Trace[I]].ColdVerdict) {
      std::fprintf(stderr,
                   "FAIL: request %zu verdict 0x%016llx != single-shot "
                   "0x%016llx\n",
                   I, static_cast<unsigned long long>(A.Digests[I]),
                   static_cast<unsigned long long>(
                       Uniques[Trace[I]].ColdVerdict));
      Pass = false;
      break;
    }
  const uint64_t WantHits = TraceLen - UniqueCount;
  if (A.Hits != WantHits || A.AnalysesRun != UniqueCount) {
    std::fprintf(stderr,
                 "FAIL: expected %llu hits / %llu analyses, got %llu / "
                 "%llu\n",
                 static_cast<unsigned long long>(WantHits),
                 static_cast<unsigned long long>(UniqueCount),
                 static_cast<unsigned long long>(A.Hits),
                 static_cast<unsigned long long>(A.AnalysesRun));
    Pass = false;
  }
  double Speedup = SingleShotSeconds / A.Seconds;
  std::printf("replay: %.3fs (%.0f req/s), %llu hits, speedup %.0fx\n",
              A.Seconds, static_cast<double>(TraceLen) / A.Seconds,
              static_cast<unsigned long long>(A.Hits), Speedup);
  if (Speedup < 100) {
    std::fprintf(stderr, "FAIL: replay speedup %.1fx < 100x\n", Speedup);
    Pass = false;
  }

  // Phase 3: a different worker count must not change a single verdict
  // or counter — only the wall clock.
  const unsigned JobsB = 4;
  std::printf("phase 3: jobs invariance (%u vs %u workers)\n", JobsA, JobsB);
  ReplayResult B = replay(Uniques, Trace, JobsB);
  if (!B.Ok)
    return 1;
  if (B.Digests != A.Digests || B.Hits != A.Hits ||
      B.AnalysesRun != A.AnalysesRun) {
    std::fprintf(stderr, "FAIL: %u-job replay diverged from %u-job replay\n",
                 JobsB, JobsA);
    Pass = false;
  } else {
    std::printf("  identical digests and counters (%.3fs)\n", B.Seconds);
  }

  // Phase 4: the same engine under an injected worker stall, every
  // request budgeted. Availability is the claim: a definitive answer
  // within twice each request's deadline, verdict or timeout.
  std::printf("phase 4: faulted replay (worker-stall, %llu requests)\n",
              static_cast<unsigned long long>(FaultTraceLen));
  FaultedResult F = faultedReplay();
  if (!F.Ok)
    return 1;
  std::printf("  %llu ok, %llu timeouts, availability %.1f%%, p99 %.0fms\n",
              static_cast<unsigned long long>(F.OkCount),
              static_cast<unsigned long long>(F.TimeoutCount),
              100.0 * static_cast<double>(F.OnTime) /
                  static_cast<double>(FaultTraceLen),
              F.P99Ms);
  if (F.OnTime != FaultTraceLen) {
    std::fprintf(stderr,
                 "FAIL: %llu of %llu faulted requests missed their 2x "
                 "deadline bound\n",
                 static_cast<unsigned long long>(FaultTraceLen - F.OnTime),
                 static_cast<unsigned long long>(FaultTraceLen));
    Pass = false;
  }
  if (F.TimeoutCount < FaultDoomed ||
      F.OkCount + F.TimeoutCount != FaultTraceLen) {
    std::fprintf(stderr,
                 "FAIL: faulted replay expected >= %llu timeouts and only "
                 "ok/timeout statuses (got %llu ok, %llu timeouts)\n",
                 static_cast<unsigned long long>(FaultDoomed),
                 static_cast<unsigned long long>(F.OkCount),
                 static_cast<unsigned long long>(F.TimeoutCount));
    Pass = false;
  }

  if (JsonPath && Pass &&
      !writeJson(JsonPath, SingleShotSeconds, A, B, JobsA, JobsB, Speedup,
                 F)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  std::printf("%s\n", Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
