//===- bench_fuzz_verdicts.cpp - Verdict-oracle campaign coverage ---------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Coverage and throughput of the verdict-level differential oracles
/// (`specai-fuzz --oracle all`): per replacement policy, a fixed-seed
/// campaign that validates not just cache-state containment but the
/// user-facing deliverables — WCET bounds against the cycle-charging
/// concrete executor and leak-freedom proofs against a concrete cache-
/// timing attacker (docs/FUZZING.md, "Verdict oracles"). This is the
/// trajectory behind BENCH_verdict.json.
///
/// All counters are deterministic in (seed, programs, policy) and
/// jobs-invariant; only the timing fields move. Any violation fails the
/// run — this bench doubles as a cross-policy verdict soundness smoke.
///
/// `--json FILE` writes the per-policy counters and timings as a JSON
/// object so CI can upload the artifact alongside the perf smoke.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace specai;

namespace {

struct PolicyRow {
  ReplacementPolicy Policy;
  FuzzCampaignStats Stats;
};

/// Writes the per-policy campaign counters as JSON; false on I/O failure.
bool writeJson(const char *Path, const FuzzCampaignOptions &O,
               const std::vector<PolicyRow> &Rows, unsigned Jobs) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n"
               "  \"seed\": %llu,\n"
               "  \"programs_per_policy\": %llu,\n"
               "  \"jobs\": %u,\n"
               "  \"policies\": {\n",
               static_cast<unsigned long long>(O.Seed),
               static_cast<unsigned long long>(O.Programs), Jobs);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const FuzzCampaignStats &S = Rows[I].Stats;
    double PerSec = S.Seconds > 0 ? S.Programs / S.Seconds : 0;
    std::fprintf(
        F,
        "    \"%s\": {\n"
        "      \"concrete_runs\": %llu,\n"
        "      \"speculative_windows\": %llu,\n"
        "      \"committed_checks\": %llu,\n"
        "      \"speculative_checks\": %llu,\n"
        "      \"wcet_checks\": %llu,\n"
        "      \"leak_families\": %llu,\n"
        "      \"leak_runs\": %llu,\n"
        "      \"leak_site_checks\": %llu,\n"
        "      \"violation_programs\": %llu,\n"
        "      \"seconds\": %.3f,\n"
        "      \"programs_per_sec\": %.2f\n"
        "    }%s\n",
        replacementPolicyName(Rows[I].Policy),
        static_cast<unsigned long long>(S.Oracle.ConcreteRuns),
        static_cast<unsigned long long>(S.Oracle.SpeculativeWindows),
        static_cast<unsigned long long>(S.Oracle.CommittedChecks),
        static_cast<unsigned long long>(S.Oracle.SpeculativeChecks),
        static_cast<unsigned long long>(S.Oracle.WcetChecks),
        static_cast<unsigned long long>(S.Oracle.LeakFamilies),
        static_cast<unsigned long long>(S.Oracle.LeakRuns),
        static_cast<unsigned long long>(S.Oracle.LeakSiteChecks),
        static_cast<unsigned long long>(S.ViolationPrograms), S.Seconds,
        PerSec, I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  }\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json FILE before handing the rest to the shared --jobs
  // parser (which rejects flags it does not own).
  const char *JsonPath = nullptr;
  std::vector<char *> Rest{Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    Rest.push_back(Argv[I]);
  }
  std::string JobsError;
  std::optional<unsigned> JobsOpt = parseJobsFlag(
      static_cast<int>(Rest.size()), Rest.data(), JobsError);
  if (!JobsOpt) { // Benches keep the historical fail-fast exit contract.
    std::fprintf(stderr, "%s\n", JobsError.c_str());
    return 1;
  }
  unsigned Jobs = *JobsOpt;

  std::printf("== Verdict-oracle fuzzing campaigns (--oracle all, per "
              "replacement policy) ==\n");

  FuzzCampaignOptions O;
  O.Seed = 1;
  O.Programs = 25;
  O.Jobs = Jobs;
  O.Oracle.Oracles = OracleAll;

  std::vector<PolicyRow> Rows;
  bool Violated = false;
  TableWriter T({"Policy", "Runs", "WcetChecks", "LeakFams", "LeakChecks",
                 "Violations", "Time(s)", "Prog/s"});
  for (ReplacementPolicy P : {ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
                              ReplacementPolicy::Plru}) {
    FuzzCampaignOptions PO = O;
    PO.Policies = {P};
    PO.Oracle.Cache = PO.Oracle.Cache.withPolicy(P);
    FuzzCampaignResult R = runFuzzCampaign(PO);
    double PerSec =
        R.Stats.Seconds > 0 ? R.Stats.Programs / R.Stats.Seconds : 0;
    T.addRow({replacementPolicyName(P),
              std::to_string(R.Stats.Oracle.ConcreteRuns),
              std::to_string(R.Stats.Oracle.WcetChecks),
              std::to_string(R.Stats.Oracle.LeakFamilies),
              std::to_string(R.Stats.Oracle.LeakSiteChecks),
              std::to_string(R.Stats.ViolationPrograms),
              formatDouble(R.Stats.Seconds, 2), formatDouble(PerSec, 2)});
    if (!R.ok()) {
      Violated = true;
      std::printf("UNSOUND under %s: %s\n", replacementPolicyName(P),
                  R.Counterexamples.front().Pretty.c_str());
    }
    Rows.push_back({P, R.Stats});
  }
  std::printf("%s", T.str().c_str());

  if (JsonPath && !writeJson(JsonPath, O, Rows, Jobs)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  if (Violated)
    return 1;
  std::printf("sound: every WCET bound and leak-freedom proof held across "
              "all three policies\n");
  return 0;
}
