//===- bench_policy_matrix.cpp - Replacement-policy precision matrix ------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// The replacement-policy generalization matrix (docs/DOMAINS.md): every
/// WCET kernel analyzed speculatively under each policy lattice — LRU (the
/// paper's domain), FIFO (insertion-age bounds, hits never rejuvenate),
/// and tree-PLRU (the pessimistic log2(ways)+1 tree bound) — via the
/// BatchRunner policy sweep. Reported per policy:
///
///  - precision: summed must-hit counts, #Miss and #SpMiss across the
///    suite (LRU is the tightest lattice, so its must-hit count is the
///    ceiling; FIFO/PLRU trade precision for modeling real x86/embedded
///    replacement);
///  - throughput: summed analysis wall time and worklist iterations.
///
/// Shape checks enforced here (not timings — those are informational):
/// per kernel, every policy's reachable access-node count is identical
/// (reachability is policy-independent), and no policy reports more
/// must-hits than LRU plus the slack the coarser lattices can recover
/// (they cannot: FIFO/PLRU bounds are weaker everywhere, so suite-level
/// must-hits must be <= LRU's).
///
/// `--json FILE` writes the per-policy rows as BENCH_policy.json-style
/// JSON so the checked-in trajectory can be regenerated from CI.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

using namespace specai;

namespace {

struct PolicyTotals {
  ReplacementPolicy Policy = ReplacementPolicy::Lru;
  uint64_t AccessNodes = 0;
  uint64_t MustHits = 0;
  uint64_t MissCount = 0;
  uint64_t SpMissCount = 0;
  uint64_t Iterations = 0;
  double Seconds = 0;
};

bool writeJson(const char *Path, const std::vector<PolicyTotals> &Rows,
               size_t Kernels) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(F, "{\n  \"suite\": \"wcet-kernels\",\n  \"kernels\": %zu,\n"
                  "  \"cache\": \"64Lx64B fully associative\",\n"
                  "  \"policies\": [\n",
               Kernels);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const PolicyTotals &R = Rows[I];
    std::fprintf(
        F,
        "    {\"policy\": \"%s\", \"access_nodes\": %llu, "
        "\"must_hits\": %llu, \"misses\": %llu, \"sp_misses\": %llu, "
        "\"iterations\": %llu, \"seconds\": %.3f}%s\n",
        replacementPolicyName(R.Policy),
        static_cast<unsigned long long>(R.AccessNodes),
        static_cast<unsigned long long>(R.MustHits),
        static_cast<unsigned long long>(R.MissCount),
        static_cast<unsigned long long>(R.SpMissCount),
        static_cast<unsigned long long>(R.Iterations), R.Seconds,
        I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int runBench(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  std::vector<char *> Rest{Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    Rest.push_back(Argv[I]);
  }
  std::string JobsError;
  std::optional<unsigned> JobsOpt = 
      parseJobsFlag(static_cast<int>(Rest.size()), Rest.data(), JobsError);
  if (!JobsOpt) { // Benches keep the historical fail-fast exit contract.
    std::fprintf(stderr, "%s\n", JobsError.c_str());
    return 1;
  }
  unsigned Jobs = *JobsOpt;

  std::printf("== Replacement-policy matrix: WCET kernels x {lru, fifo, "
              "plru} (64-line fully associative cache) ==\n");

  const std::vector<ReplacementPolicy> Policies = {
      ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
      ReplacementPolicy::Plru};
  std::vector<PolicyTotals> Totals;
  for (ReplacementPolicy P : Policies)
    Totals.push_back(PolicyTotals{P, 0, 0, 0, 0, 0, 0});

  MustHitOptions Base;
  Base.Cache = CacheConfig::fullyAssociative(64);

  BatchRunner Runner(Jobs);
  size_t Kernels = 0;
  for (const Workload &W : wcetWorkloads()) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP) {
      std::printf("%s: compile error\n%s", W.Name.c_str(),
                  Diags.str().c_str());
      return 1;
    }
    ++Kernels;

    std::vector<BatchVariant> Variants =
        BatchRunner::policySweep(Base, Policies);
    for (BatchVariant &V : Variants)
      V.DetectLeaks = false;
    BatchReport Report = Runner.run(*CP, Variants);

    const BatchRow &Lru = Report.requireRow("lru");
    for (size_t I = 0; I != Policies.size(); ++I) {
      const BatchRow &Row =
          Report.requireRow(replacementPolicyName(Policies[I]));
      if (Row.AccessNodes != Lru.AccessNodes) {
        std::printf("ERROR: %s reachability differs from lru on %s "
                    "(%llu vs %llu access nodes)\n",
                    Row.Label.c_str(), W.Name.c_str(),
                    static_cast<unsigned long long>(Row.AccessNodes),
                    static_cast<unsigned long long>(Lru.AccessNodes));
        return 1;
      }
      if (Row.MissCount < Lru.MissCount) {
        // A coarser lattice proving strictly more hits than LRU would be
        // a transfer-function bug, not a precision win.
        std::printf("ERROR: %s claims more must-hits than lru on %s\n",
                    Row.Label.c_str(), W.Name.c_str());
        return 1;
      }
      Totals[I].AccessNodes += Row.AccessNodes;
      Totals[I].MustHits += Row.AccessNodes - Row.MissCount;
      Totals[I].MissCount += Row.MissCount;
      Totals[I].SpMissCount += Row.SpMissCount;
      Totals[I].Iterations += Row.Iterations;
      Totals[I].Seconds += Row.Seconds;
    }
  }

  TableWriter T({"Policy", "#Access", "#MustHit", "#Miss", "#SpMiss",
                 "#Ite", "Time(s)"});
  for (const PolicyTotals &R : Totals)
    T.addRow({replacementPolicyName(R.Policy),
              std::to_string(R.AccessNodes), std::to_string(R.MustHits),
              std::to_string(R.MissCount), std::to_string(R.SpMissCount),
              std::to_string(R.Iterations), formatDouble(R.Seconds, 3)});
  std::printf("%s", T.str().c_str());
  std::printf("shape check: reachability policy-independent and "
              "must-hits(policy) <= must-hits(lru) on every kernel: OK\n");

  if (JsonPath && !writeJson(JsonPath, Totals, Kernels)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}

int main(int Argc, char **Argv) {
  // requireRow throws (library code must not exit a host process; see
  // driver/BatchRunner.h); benches keep the historical fail-fast exit.
  try {
    return runBench(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }
}
