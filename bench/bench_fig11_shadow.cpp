//===- bench_fig11_shadow.cpp - Regenerates paper Figures 11/13 -----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Figure 11 / Figure 13 / Appendix C: the loop that alternates b and c on
/// a 4-line cache. The original join eventually evicts a; the
/// shadow-variable refinement (Appendix B) keeps a at age 3 and proves the
/// final access a must-hit, converging in fewer iterations.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Figure 11/13: shadow-variable refinement (4-line cache) "
              "==\n");
  DiagnosticEngine Diags;
  auto CP = compileSource(fig11Source(), Diags);
  if (!CP) {
    std::printf("compile error\n%s", Diags.str().c_str());
    return 1;
  }

  NodeId Final = InvalidNode;
  for (NodeId Ret : CP->G.exits())
    for (int32_t I = static_cast<int32_t>(CP->G.instIndexOf(Ret)); I >= 0;
         --I) {
      NodeId N = CP->G.nodeAt(CP->G.blockOf(Ret), static_cast<uint32_t>(I));
      if (CP->G.inst(N).accessesMemory()) {
        Final = N;
        I = -1;
      }
    }

  TableWriter T({"Analysis", "final load a", "#Iteration",
                 "state before final load"});
  for (bool Shadow : {false, true}) {
    MustHitOptions Opts;
    Opts.Cache = CacheConfig::fullyAssociative(4);
    Opts.Speculative = false;
    Opts.UseShadow = Shadow;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    T.addRow({Shadow ? "with shadow variables" : "original",
              R.MustHit[Final] ? "must-hit" : "may-miss",
              std::to_string(R.Iterations),
              R.States.Normal[Final].str(*R.MM)});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("paper (Appendix C): the original analysis evicts a; the "
              "shadow analysis keeps a at age 3\n");
  return 0;
}
