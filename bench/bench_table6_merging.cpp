//===- bench_table6_merging.cpp - Regenerates paper Table 6 ---------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Table 6: merging strategies for speculative states — merging at the
/// rollback point (Figure 6d) vs just-in-time merging (Figure 6c), with
/// the no-merge (6a) column added as an extension. Reported per kernel:
/// time, #Miss, #SpMiss, #Iterations. Expected shape: just-in-time is
/// usually at least as precise (never more misses than merge-at-rollback
/// would be unsound — both are sound; JIT is *tighter*), and cheaper than
/// no-merge.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

namespace {

struct StrategyResult {
  double Time;
  uint64_t Miss;
  uint64_t SpMiss;
  uint64_t Iterations;
};

StrategyResult runWith(const CompiledProgram &CP, MergeStrategy Strategy) {
  MustHitOptions Opts;
  Opts.Cache = CacheConfig::fullyAssociative(64);
  Opts.Speculative = true;
  Opts.Strategy = Strategy;
  Timer T;
  MustHitReport R = runMustHitAnalysis(CP, Opts);
  return {T.seconds(), R.MissCount, R.SpMissCount, R.Iterations};
}

} // namespace

int main() {
  std::printf("== Table 6: merging strategies for speculative states ==\n");
  TableWriter T({"Name", "Rollback-Time", "RB-#Miss", "RB-#SpMiss", "RB-#Ite",
                 "JIT-Time", "JIT-#Miss", "JIT-#SpMiss", "JIT-#Ite",
                 "NoMerge-Time", "NM-#Miss"});

  uint64_t JitNotWorseThanRollback = 0, Total = 0;
  for (const Workload &W : wcetWorkloads()) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP) {
      std::printf("%s: compile error\n%s", W.Name.c_str(),
                  Diags.str().c_str());
      return 1;
    }
    StrategyResult RB = runWith(*CP, MergeStrategy::MergeAtRollback);
    StrategyResult JIT = runWith(*CP, MergeStrategy::JustInTime);
    StrategyResult NM = runWith(*CP, MergeStrategy::NoMerge);

    T.addRow({W.Name, formatDouble(RB.Time, 3), std::to_string(RB.Miss),
              std::to_string(RB.SpMiss), std::to_string(RB.Iterations),
              formatDouble(JIT.Time, 3), std::to_string(JIT.Miss),
              std::to_string(JIT.SpMiss), std::to_string(JIT.Iterations),
              formatDouble(NM.Time, 3), std::to_string(NM.Miss)});

    ++Total;
    if (JIT.Miss <= RB.Miss)
      ++JitNotWorseThanRollback;
  }

  std::printf("%s\n", T.str().c_str());
  std::printf("shape check: just-in-time at least as precise as "
              "merge-at-rollback on %llu/%llu kernels\n",
              static_cast<unsigned long long>(JitNotWorseThanRollback),
              static_cast<unsigned long long>(Total));
  return 0;
}
