//===- bench_table6_merging.cpp - Regenerates paper Table 6 ---------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Table 6: merging strategies for speculative states — merging at the
/// rollback point (Figure 6d) vs just-in-time merging (Figure 6c), with
/// the no-merge (6a) column added as an extension. Reported per kernel:
/// time, #Miss, #SpMiss, #Iterations. Expected shape: just-in-time is
/// usually at least as precise (never more misses than merge-at-rollback
/// would be unsound — both are sound; JIT is *tighter*), and cheaper than
/// no-merge.
///
/// The three strategies of one kernel run concurrently through the
/// BatchRunner pool; rows come back in strategy order, so the precision
/// columns are identical to the old serial sweep. Per-strategy Time
/// columns are measured under that concurrent load — pass `--jobs 1` for
/// contention-free timings (the shape checks only use the deterministic
/// miss counters either way).
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <exception>

using namespace specai;

namespace {

/// Baseline (Algorithm 1) worklist accounting: runs every kernel under the
/// legacy FIFO order and the RPO priority order, demands bit-identical
/// fixpoints, and reports pop/dedup counters via support/Statistics. This
/// is the perf-regression check behind the RPO worklist rework: RPO must
/// never pop more than FIFO per kernel and strictly less in aggregate.
/// Returns false when a fixpoint drifts or pops regress.
bool reportBaselineWorklist() {
  std::printf("\n== Baseline engine worklist: FIFO vs RPO (Statistics) ==\n");
  TableWriter T({"Name", "FIFO-Pops", "RPO-Pops", "RPO-Deduped", "#Miss",
                 "Fixpoint"});
  uint64_t FifoTotal = 0, RpoTotal = 0;
  bool Ok = true;
  for (const Workload &W : wcetWorkloads()) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP)
      return false;
    MustHitOptions O;
    O.Speculative = false;
    O.Cache = CacheConfig::fullyAssociative(64);

    StatisticSet Fifo, Rpo;
    O.Order = WorklistOrder::Fifo;
    O.Stats = &Fifo;
    MustHitReport RF = runMustHitAnalysis(*CP, O);
    O.Order = WorklistOrder::Rpo;
    O.Stats = &Rpo;
    MustHitReport RR = runMustHitAnalysis(*CP, O);

    bool Same = digestMustHitReport(*CP, RF) == digestMustHitReport(*CP, RR);
    uint64_t FP = Fifo.get("worklist.pops"), RP = Rpo.get("worklist.pops");
    FifoTotal += FP;
    RpoTotal += RP;
    Ok = Ok && Same && RP <= FP;
    T.addRow({W.Name, std::to_string(FP), std::to_string(RP),
              std::to_string(Rpo.get("worklist.pushes.deduped")),
              std::to_string(RR.MissCount), Same ? "identical" : "DRIFT"});
  }
  std::printf("%s", T.str().c_str());
  Ok = Ok && RpoTotal < FifoTotal;
  std::printf("worklist check: RPO pops %llu vs FIFO %llu (%s), fixpoints "
              "%s\n",
              static_cast<unsigned long long>(RpoTotal),
              static_cast<unsigned long long>(FifoTotal),
              RpoTotal < FifoTotal ? "strictly fewer" : "NOT FEWER",
              Ok ? "identical" : "BROKEN");
  return Ok;
}

} // namespace

namespace {

std::vector<BatchVariant> strategyVariants() {
  std::vector<BatchVariant> Variants;
  for (MergeStrategy S : {MergeStrategy::MergeAtRollback,
                          MergeStrategy::JustInTime, MergeStrategy::NoMerge}) {
    BatchVariant V;
    V.Options.Cache = CacheConfig::fullyAssociative(64);
    V.Options.Speculative = true;
    V.Options.Strategy = S;
    V.DetectLeaks = false;
    V.Label = mergeStrategyName(S);
    Variants.push_back(std::move(V));
  }
  return Variants;
}

} // namespace

int runBench(int Argc, char **Argv) {
  std::string JobsError;
  std::optional<unsigned> JobsOpt = parseJobsFlag(Argc, Argv, JobsError);
  if (!JobsOpt) { // Benches keep the historical fail-fast exit contract.
    std::fprintf(stderr, "%s\n", JobsError.c_str());
    return 1;
  }
  unsigned Jobs = *JobsOpt; // 0 = all hardware threads.

  std::printf("== Table 6: merging strategies for speculative states ==\n");
  TableWriter T({"Name", "Rollback-Time", "RB-#Miss", "RB-#SpMiss", "RB-#Ite",
                 "JIT-Time", "JIT-#Miss", "JIT-#SpMiss", "JIT-#Ite",
                 "NoMerge-Time", "NM-#Miss"});

  BatchRunner Runner(Jobs);
  if (Runner.jobCount() > 1)
    std::printf("note: variants timed under %u-way concurrent load; pass "
                "--jobs 1 for contention-free timings\n", Runner.jobCount());
  std::vector<BatchVariant> Variants = strategyVariants();
  uint64_t JitNotWorseThanRollback = 0, Total = 0;
  for (const Workload &W : wcetWorkloads()) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP) {
      std::printf("%s: compile error\n%s", W.Name.c_str(),
                  Diags.str().c_str());
      return 1;
    }
    BatchReport R = Runner.run(*CP, Variants);
    const BatchRow &RB = R.requireRow("merge-at-rollback");
    const BatchRow &JIT = R.requireRow("just-in-time");
    const BatchRow &NM = R.requireRow("no-merge");

    T.addRow({W.Name, formatDouble(RB.Seconds, 3), std::to_string(RB.MissCount),
              std::to_string(RB.SpMissCount), std::to_string(RB.Iterations),
              formatDouble(JIT.Seconds, 3), std::to_string(JIT.MissCount),
              std::to_string(JIT.SpMissCount), std::to_string(JIT.Iterations),
              formatDouble(NM.Seconds, 3), std::to_string(NM.MissCount)});

    ++Total;
    if (JIT.MissCount <= RB.MissCount)
      ++JitNotWorseThanRollback;
  }

  std::printf("%s\n", T.str().c_str());
  std::printf("shape check: just-in-time at least as precise as "
              "merge-at-rollback on %llu/%llu kernels\n",
              static_cast<unsigned long long>(JitNotWorseThanRollback),
              static_cast<unsigned long long>(Total));
  return reportBaselineWorklist() ? 0 : 1;
}

int main(int Argc, char **Argv) {
  // requireRow throws (library code must not exit a host process; see
  // driver/BatchRunner.h); benches keep the historical fail-fast exit.
  try {
    return runBench(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }
}
