//===- bench_fig7_merge_example.cpp - Regenerates paper Figure 7 ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Figure 7: the five-block example on a 4-line cache. Non-speculatively
/// a, b, c survive to the join and the final load of a is a must-hit.
/// Under speculation both d and e enter the cache, a is evicted, and only
/// b and c are guaranteed — the bottom-right state of Figure 7. The table
/// prints the observable state before the final access per strategy.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Figure 7: just-in-time merging example (4-line cache) "
              "==\n");
  DiagnosticEngine Diags;
  auto CP = compileSource(fig7Source(), Diags);
  if (!CP) {
    std::printf("compile error\n%s", Diags.str().c_str());
    return 1;
  }

  NodeId Final = InvalidNode;
  for (NodeId Ret : CP->G.exits())
    for (int32_t I = static_cast<int32_t>(CP->G.instIndexOf(Ret)); I >= 0;
         --I) {
      NodeId N = CP->G.nodeAt(CP->G.blockOf(Ret), static_cast<uint32_t>(I));
      if (CP->G.inst(N).accessesMemory()) {
        Final = N;
        I = -1;
      }
    }

  TableWriter T({"Configuration", "final load a", "state before it"});
  auto Run = [&](bool Spec, MergeStrategy S, const std::string &Label) {
    MustHitOptions Opts;
    Opts.Cache = CacheConfig::fullyAssociative(4);
    Opts.Speculative = Spec;
    Opts.Strategy = S;
    MustHitReport R = runMustHitAnalysis(*CP, Opts);
    CacheDomain D(CP->G, *R.MM, CacheDomainOptions{});
    CacheAbsState Obs = R.States.observable(D, Final);
    T.addRow({Label, R.MustHit[Final] ? "must-hit" : "may-miss",
              Obs.str(*R.MM)});
  };

  Run(false, MergeStrategy::JustInTime, "non-speculative");
  Run(true, MergeStrategy::NoMerge, "spec, no-merge (6a)");
  Run(true, MergeStrategy::MergeAtExit, "spec, merge-at-exit (6b)");
  Run(true, MergeStrategy::JustInTime, "spec, just-in-time (6c)");
  Run(true, MergeStrategy::MergeAtRollback, "spec, merge-at-rollback (6d)");
  std::printf("%s\n", T.str().c_str());
  std::printf("paper: non-speculatively a/b/c survive; under speculation "
              "only b and c are guaranteed\n");
  return 0;
}
