//===- bench_repair.cpp - Mitigation-synthesis throughput and cost --------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Throughput and cost profile of the repair synthesizer
/// (repair/MitigationSynth.h, docs/MITIGATION.md) over the fuzz corpus:
/// the same generator and analysis configuration the repair oracle runs
/// under (fully-associative 8-line cache, depths 24/6, no-merge, fixed
/// bounding), so programs here leak for the same reasons campaign programs
/// do. This is the trajectory behind BENCH_repair.json.
///
/// Reported per corpus: programs synthesized per second, the leaky /
/// repaired split, the mitigation-kind mix, the median and maximum repair
/// cost (WCET-after minus WCET-before), and re-analyses per program. All
/// counters are deterministic in (seed, programs); only timings move. Any
/// leaky-but-unrepaired program whose leaks are all speculative fails the
/// run — that is the synthesizer's own completeness claim.
///
/// `--json FILE` writes the counters as a JSON object so CI can upload the
/// artifact alongside the perf smoke.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace specai;

namespace {

struct CorpusCounters {
  uint64_t Programs = 0;
  uint64_t CompileFailures = 0;
  uint64_t Leaky = 0;
  uint64_t Repaired = 0;
  uint64_t SpecOnlyUnrepaired = 0;
  uint64_t Mitigations = 0;
  uint64_t Clamps = 0;
  uint64_t Fences = 0;
  uint64_t Hoists = 0;
  uint64_t Preloads = 0;
  uint64_t Reanalyses = 0;
  uint64_t ExactSearches = 0;
  std::vector<uint64_t> RepairCosts;
  double Seconds = 0;

  uint64_t medianCost() const {
    if (RepairCosts.empty())
      return 0;
    std::vector<uint64_t> Sorted = RepairCosts;
    std::sort(Sorted.begin(), Sorted.end());
    return Sorted[Sorted.size() / 2];
  }
  uint64_t maxCost() const {
    uint64_t Max = 0;
    for (uint64_t C : RepairCosts)
      Max = std::max(Max, C);
    return Max;
  }
};

bool writeJson(const char *Path, uint64_t Seed, const CorpusCounters &C) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  double PerSec = C.Seconds > 0 ? C.Programs / C.Seconds : 0;
  std::fprintf(
      F,
      "{\n"
      "  \"seed\": %llu,\n"
      "  \"programs\": %llu,\n"
      "  \"compile_failures\": %llu,\n"
      "  \"leaky_programs\": %llu,\n"
      "  \"repaired_programs\": %llu,\n"
      "  \"mitigations\": %llu,\n"
      "  \"clamps\": %llu,\n"
      "  \"fences\": %llu,\n"
      "  \"hoists\": %llu,\n"
      "  \"preloads\": %llu,\n"
      "  \"reanalyses\": %llu,\n"
      "  \"exact_searches\": %llu,\n"
      "  \"median_repair_cost\": %llu,\n"
      "  \"max_repair_cost\": %llu,\n"
      "  \"seconds\": %.3f,\n"
      "  \"programs_per_sec\": %.2f\n"
      "}\n",
      static_cast<unsigned long long>(Seed),
      static_cast<unsigned long long>(C.Programs),
      static_cast<unsigned long long>(C.CompileFailures),
      static_cast<unsigned long long>(C.Leaky),
      static_cast<unsigned long long>(C.Repaired),
      static_cast<unsigned long long>(C.Mitigations),
      static_cast<unsigned long long>(C.Clamps),
      static_cast<unsigned long long>(C.Fences),
      static_cast<unsigned long long>(C.Hoists),
      static_cast<unsigned long long>(C.Preloads),
      static_cast<unsigned long long>(C.Reanalyses),
      static_cast<unsigned long long>(C.ExactSearches),
      static_cast<unsigned long long>(C.medianCost()),
      static_cast<unsigned long long>(C.maxCost()), C.Seconds, PerSec);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json FILE and --programs N before the shared --jobs parser
  // (which rejects flags it does not own).
  const char *JsonPath = nullptr;
  uint64_t Programs = 50;
  std::vector<char *> Rest{Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
      continue;
    }
    if (std::string(Argv[I]) == "--programs" && I + 1 < Argc) {
      std::optional<unsigned> N = parseUnsigned(Argv[++I]);
      if (!N || *N == 0) {
        std::fprintf(stderr, "error: --programs needs a positive number\n");
        return 1;
      }
      Programs = *N;
      continue;
    }
    Rest.push_back(Argv[I]);
  }
  std::string JobsError;
  std::optional<unsigned> JobsOpt =
      parseJobsFlag(static_cast<int>(Rest.size()), Rest.data(), JobsError);
  if (!JobsOpt) { // Benches keep the historical fail-fast exit contract.
    std::fprintf(stderr, "%s\n", JobsError.c_str());
    return 1;
  }
  // Synthesis is serial per program; --jobs is accepted for CI-harness
  // uniformity but the corpus loop itself runs single-threaded so the
  // throughput number means "one synthesizer" everywhere it is quoted.

  const uint64_t Seed = 1;
  std::printf("== Mitigation synthesis over the fuzz corpus (%llu programs, "
              "seed %llu) ==\n",
              static_cast<unsigned long long>(Programs),
              static_cast<unsigned long long>(Seed));

  // The repair oracle's analysis configuration (RepairOracle.cpp):
  // campaign-default geometry, first campaign strategy, fixed bounding.
  RepairOptions RO;
  RO.Analysis.Cache = CacheConfig::fullyAssociative(8);
  RO.Analysis.Strategy = MergeStrategy::NoMerge;
  RO.Analysis.Bounding = BoundingMode::Fixed;
  RO.Analysis.DepthMiss = 24;
  RO.Analysis.DepthHit = 6;

  CorpusCounters C;
  bool IncompletenessSeen = false;
  Timer T;
  for (uint64_t I = 0; I != Programs; ++I) {
    ProgramGen Gen(Seed + I);
    GeneratedProgram G = Gen.generate();
    DiagnosticEngine Diags;
    auto CP = compileSource(G.source(), Diags);
    if (!CP) {
      ++C.CompileFailures;
      continue;
    }
    ++C.Programs;
    RepairResult Res = synthesizeRepairs(*CP, RO);
    C.Reanalyses += Res.Reanalyses;
    if (Res.UsedExactSearch)
      ++C.ExactSearches;
    if (Res.LeaksBefore == 0)
      continue;
    ++C.Leaky;
    if (!Res.Repaired) {
      if (Res.SpecOnlyLeaksBefore == Res.LeaksBefore) {
        // Fencing every wrong-path entry provably removes speculation-only
        // leaks, so an unrepaired program here is a synthesizer bug.
        IncompletenessSeen = true;
        std::printf("INCOMPLETE: seed %llu leaks only speculatively yet "
                    "was not repaired\n",
                    static_cast<unsigned long long>(Seed + I));
      }
      continue;
    }
    ++C.Repaired;
    C.Mitigations += Res.Applied.size();
    C.RepairCosts.push_back(Res.WcetAfter > Res.WcetBefore
                                ? Res.WcetAfter - Res.WcetBefore
                                : 0);
    for (const Mitigation &M : Res.Applied) {
      switch (M.Kind) {
      case MitigationKind::Clamp:
        ++C.Clamps;
        break;
      case MitigationKind::Fence:
        ++C.Fences;
        break;
      case MitigationKind::Hoist:
        ++C.Hoists;
        break;
      case MitigationKind::Preload:
        ++C.Preloads;
        break;
      }
    }
  }
  C.Seconds = T.seconds();

  double PerSec = C.Seconds > 0 ? C.Programs / C.Seconds : 0;
  TableWriter Table({"Programs", "Leaky", "Repaired", "Mitigations",
                     "MedianCost", "MaxCost", "Reanalyses", "Time(s)",
                     "Prog/s"});
  Table.addRow({std::to_string(C.Programs), std::to_string(C.Leaky),
                std::to_string(C.Repaired), std::to_string(C.Mitigations),
                std::to_string(C.medianCost()), std::to_string(C.maxCost()),
                std::to_string(C.Reanalyses), formatDouble(C.Seconds, 2),
                formatDouble(PerSec, 2)});
  std::printf("%s", Table.str().c_str());
  std::printf("mitigation mix: %llu clamps, %llu fences, %llu hoists, "
              "%llu preloads\n",
              static_cast<unsigned long long>(C.Clamps),
              static_cast<unsigned long long>(C.Fences),
              static_cast<unsigned long long>(C.Hoists),
              static_cast<unsigned long long>(C.Preloads));

  if (JsonPath && !writeJson(JsonPath, Seed, C)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  if (IncompletenessSeen)
    return 1;
  std::printf("complete: every speculation-only leaky program was "
              "repaired\n");
  return 0;
}
