//===- bench_ablation_depth.cpp - §6.2 depth bounding ablation ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Ablation for §6.2 (dynamically bounding the speculation depth):
///  1. sweep of the fixed b_miss window — more depth, more (or equal)
///     detected misses and more work, saturating once windows cover the
///     speculated sides;
///  2. bounding modes at the paper's 20/200: fixed vs dynamic vs the
///     iterative outer refinement; dynamic/iterative are at least as
///     precise as fixed, never less sound.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>

using namespace specai;

int main() {
  std::printf("== Ablation: speculation depth bounding (§6.2) ==\n");
  const std::vector<Workload> &Kernels = wcetWorkloads();

  std::printf("-- fixed-depth sweep (kernel: jdmarker) --\n");
  {
    DiagnosticEngine Diags;
    auto CP = compileSource(Kernels[4].Source, Diags); // jdmarker
    if (!CP)
      return 1;
    TableWriter T({"b_miss", "Time(s)", "#Miss", "#SpMiss", "#Iteration"});
    uint64_t PrevMiss = 0;
    bool Monotone = true;
    for (uint32_t Depth : {0u, 5u, 10u, 20u, 50u, 100u, 200u, 400u}) {
      MustHitOptions Opts;
      Opts.Cache = CacheConfig::fullyAssociative(64);
      Opts.Speculative = true;
      Opts.DepthMiss = Depth;
      Opts.DepthHit = Depth;
      Opts.Bounding = BoundingMode::Fixed;
      Timer Tm;
      MustHitReport R = runMustHitAnalysis(*CP, Opts);
      T.addRow({std::to_string(Depth), formatDouble(Tm.seconds(), 3),
                std::to_string(R.MissCount), std::to_string(R.SpMissCount),
                std::to_string(R.Iterations)});
      if (R.MissCount < PrevMiss)
        Monotone = false;
      PrevMiss = R.MissCount;
    }
    std::printf("%s", T.str().c_str());
    std::printf("shape check: #Miss non-decreasing in depth: %s\n\n",
                Monotone ? "OK" : "VIOLATED");
  }

  std::printf("-- bounding modes at (b_hit, b_miss) = (20, 200) --\n");
  TableWriter T({"Name", "Fixed-#Miss", "Fixed-Time", "Dyn-#Miss",
                 "Dyn-Time", "Refine-#Miss", "Refine-Time", "Rounds"});
  for (const Workload &W : Kernels) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP)
      return 1;
    auto Run = [&](BoundingMode Mode, bool Refine) {
      MustHitOptions Opts;
      Opts.Cache = CacheConfig::fullyAssociative(64);
      Opts.Speculative = true;
      Opts.Bounding = Mode;
      Opts.IterativeDepthRefinement = Refine;
      Timer Tm;
      MustHitReport R = runMustHitAnalysis(*CP, Opts);
      return std::tuple<uint64_t, double, unsigned>{R.MissCount, Tm.seconds(),
                                                    R.RefinementRounds};
    };
    auto [FM, FT, FR] = Run(BoundingMode::Fixed, false);
    auto [DM, DT, DR] = Run(BoundingMode::Dynamic, false);
    auto [RM, RT, RR] = Run(BoundingMode::Fixed, true);
    (void)FR;
    (void)DR;
    T.addRow({W.Name, std::to_string(FM), formatDouble(FT, 3),
              std::to_string(DM), formatDouble(DT, 3), std::to_string(RM),
              formatDouble(RT, 3), std::to_string(RR)});
  }
  std::printf("%s\n", T.str().c_str());
  return 0;
}
