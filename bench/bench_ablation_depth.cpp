//===- bench_ablation_depth.cpp - §6.2 depth bounding ablation ------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Ablation for §6.2 (dynamically bounding the speculation depth):
///  1. sweep of the fixed b_miss window — more depth, more (or equal)
///     detected misses and more work, saturating once windows cover the
///     speculated sides;
///  2. bounding modes at the paper's 20/200: fixed vs dynamic vs the
///     iterative outer refinement; dynamic/iterative are at least as
///     precise as fixed, never less sound.
///
/// Both sweeps fan out through the BatchRunner pool; rows come back in
/// variant order, so the shape checks (which use the deterministic miss
/// counters) match the old serial run. Time columns are measured under
/// concurrent load — pass `--jobs 1` for contention-free timings.
///
//===----------------------------------------------------------------------===//

#include "specai/SpecAI.h"

#include <cstdio>
#include <exception>

using namespace specai;

int runBench(int Argc, char **Argv) {
  std::string JobsError;
  std::optional<unsigned> JobsOpt = parseJobsFlag(Argc, Argv, JobsError);
  if (!JobsOpt) { // Benches keep the historical fail-fast exit contract.
    std::fprintf(stderr, "%s\n", JobsError.c_str());
    return 1;
  }
  unsigned Jobs = *JobsOpt; // 0 = all hardware threads.

  std::printf("== Ablation: speculation depth bounding (§6.2) ==\n");
  const std::vector<Workload> &Kernels = wcetWorkloads();
  BatchRunner Runner(Jobs);
  if (Runner.jobCount() > 1)
    std::printf("note: variants timed under %u-way concurrent load; pass "
                "--jobs 1 for contention-free timings\n", Runner.jobCount());

  std::printf("-- fixed-depth sweep (kernel: jdmarker) --\n");
  {
    DiagnosticEngine Diags;
    auto CP = compileSource(Kernels[4].Source, Diags); // jdmarker
    if (!CP)
      return 1;
    std::vector<BatchVariant> Variants;
    for (uint32_t Depth : {0u, 5u, 10u, 20u, 50u, 100u, 200u, 400u}) {
      BatchVariant V;
      V.Options.Cache = CacheConfig::fullyAssociative(64);
      V.Options.Speculative = true;
      V.Options.DepthMiss = Depth;
      V.Options.DepthHit = Depth;
      V.Options.Bounding = BoundingMode::Fixed;
      V.DetectLeaks = false;
      V.Label = std::to_string(Depth);
      Variants.push_back(std::move(V));
    }
    BatchReport R = Runner.run(*CP, Variants);

    TableWriter T({"b_miss", "Time(s)", "#Miss", "#SpMiss", "#Iteration"});
    uint64_t PrevMiss = 0;
    bool Monotone = true;
    for (const BatchRow &Row : R.Rows) {
      T.addRow({Row.Label, formatDouble(Row.Seconds, 3),
                std::to_string(Row.MissCount), std::to_string(Row.SpMissCount),
                std::to_string(Row.Iterations)});
      if (Row.MissCount < PrevMiss)
        Monotone = false;
      PrevMiss = Row.MissCount;
    }
    std::printf("%s", T.str().c_str());
    std::printf("shape check: #Miss non-decreasing in depth: %s\n\n",
                Monotone ? "OK" : "VIOLATED");
  }

  std::printf("-- bounding modes at (b_hit, b_miss) = (20, 200) --\n");
  TableWriter T({"Name", "Fixed-#Miss", "Fixed-Time", "Dyn-#Miss",
                 "Dyn-Time", "Refine-#Miss", "Refine-Time", "Rounds"});
  MustHitOptions Base;
  Base.Cache = CacheConfig::fullyAssociative(64);
  std::vector<BatchVariant> Modes = BatchRunner::boundingModeSweep(Base);
  for (BatchVariant &V : Modes)
    V.DetectLeaks = false;
  for (const Workload &W : Kernels) {
    DiagnosticEngine Diags;
    auto CP = compileSource(W.Source, Diags);
    if (!CP)
      return 1;
    BatchReport R = Runner.run(*CP, Modes);
    const BatchRow &Fixed = R.requireRow("fixed");
    const BatchRow &Dyn = R.requireRow("dynamic");
    const BatchRow &Refine = R.requireRow("refine");
    T.addRow({W.Name, std::to_string(Fixed.MissCount),
              formatDouble(Fixed.Seconds, 3), std::to_string(Dyn.MissCount),
              formatDouble(Dyn.Seconds, 3), std::to_string(Refine.MissCount),
              formatDouble(Refine.Seconds, 3),
              std::to_string(Refine.RefinementRounds)});
  }
  std::printf("%s\n", T.str().c_str());
  return 0;
}

int main(int Argc, char **Argv) {
  // requireRow throws (library code must not exit a host process; see
  // driver/BatchRunner.h); benches keep the historical fail-fast exit.
  try {
    return runBench(Argc, Argv);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 1;
  }
}
