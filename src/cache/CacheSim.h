//===- CacheSim.h - Concrete multi-policy cache simulator -------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete set-associative cache simulator keyed by global line (block)
/// addresses, with pluggable replacement policies:
///
///  - LRU: the paper's policy (Alpha 21264-style data cache). Each set
///    keeps its lines in recency order; a hit promotes to MRU.
///  - FIFO: each set keeps its lines in *insertion* order; a hit changes
///    nothing, a miss inserts at the front and evicts the oldest line.
///  - Tree-PLRU: each set keeps one line per way plus a binary tree of
///    direction bits; every access (hit or fill) points the bits on the
///    accessed way's root path away from it, and a miss in a full set
///    evicts the way the bits lead to. Requires power-of-two
///    associativity.
///
/// The paper's configuration — 512 lines of 64 bytes, fully associative,
/// LRU — is the default. The simulator is the ground truth against which
/// the abstract analysis is validated: every access the MUST analysis
/// calls a hit must hit here, in every execution, speculative windows
/// included. Per-policy abstract lattices are documented in
/// docs/DOMAINS.md; the policy-aware `ageOf` below is the concrete measure
/// the differential oracle compares abstract age bounds against.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_CACHE_CACHESIM_H
#define SPECAI_CACHE_CACHESIM_H

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace specai {

/// A global cache line (block) address: byte address / line size.
using BlockAddr = uint64_t;

/// Replacement policy of the modeled data cache.
enum class ReplacementPolicy : uint8_t {
  Lru,  ///< True least-recently-used (the paper's policy).
  Fifo, ///< First-in first-out: hits do not refresh a line's position.
  Plru, ///< Tree-based pseudo-LRU (power-of-two associativity only).
};

/// Short lowercase policy name: "lru", "fifo", "plru".
const char *replacementPolicyName(ReplacementPolicy Policy);

/// Parses "lru" / "fifo" / "plru"; false on anything else.
bool parseReplacementPolicy(const std::string &Name,
                            ReplacementPolicy &PolicyOut);

/// Geometry of the modeled data cache.
struct CacheConfig {
  /// Bytes per line.
  uint32_t LineSize = 64;
  /// Total number of lines.
  uint32_t NumLines = 512;
  /// Ways per set; NumLines means fully associative.
  uint32_t Associativity = 512;
  /// Replacement policy; LRU is the paper's (and the project's) default.
  ReplacementPolicy Policy = ReplacementPolicy::Lru;

  uint32_t numSets() const {
    return Associativity == 0 ? 1 : NumLines / Associativity;
  }
  uint32_t setOf(BlockAddr Block) const { return Block % numSets(); }
  uint64_t totalBytes() const {
    return static_cast<uint64_t>(LineSize) * NumLines;
  }

  /// Upper bound on the abstract MUST age a block can hold while still
  /// provably resident (docs/DOMAINS.md): the associativity for LRU and
  /// FIFO, and the pessimistic tree bound log2(ways) + 1 for PLRU.
  uint32_t mustAgeCap() const;

  /// The paper's evaluation cache: 512 lines x 64 B, fully associative, LRU
  /// (32 KB).
  static CacheConfig paperDefault() { return CacheConfig{64, 512, 512}; }
  static CacheConfig fullyAssociative(uint32_t Lines, uint32_t LineSize = 64) {
    return CacheConfig{LineSize, Lines, Lines};
  }
  static CacheConfig setAssociative(uint32_t Lines, uint32_t Ways,
                                    uint32_t LineSize = 64) {
    return CacheConfig{LineSize, Lines, Ways};
  }
  /// This geometry under another replacement policy.
  CacheConfig withPolicy(ReplacementPolicy P) const {
    CacheConfig C = *this;
    C.Policy = P;
    return C;
  }

  /// True when the geometry is consistent (associativity divides lines;
  /// tree-PLRU additionally needs power-of-two associativity).
  bool isValid() const {
    if (LineSize == 0 || NumLines == 0 || Associativity == 0 ||
        Associativity > NumLines || NumLines % Associativity != 0)
      return false;
    if (Policy == ReplacementPolicy::Plru &&
        (Associativity & (Associativity - 1)) != 0)
      return false;
    return true;
  }
};

/// Concrete cache simulator, dispatching on CacheConfig::Policy.
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }

  /// Touches \p Block: returns true on hit. On miss the block is inserted
  /// and the policy's victim way of its set is evicted if the set is full.
  bool access(BlockAddr Block);

  /// True if \p Block is currently resident.
  bool contains(BlockAddr Block) const;

  /// Policy age of \p Block within its set, the concrete measure the
  /// abstract MUST bounds over-approximate (docs/DOMAINS.md); 0 if absent.
  ///  - LRU: recency position, 1 = most recently used.
  ///  - FIFO: insertion position, 1 = most recently inserted (hits do not
  ///    move a line).
  ///  - PLRU: 1 + the number of tree bits on the block's root path that
  ///    point toward it; 1 = fully protected (just accessed),
  ///    log2(ways) + 1 = the next miss's victim.
  uint32_t ageOf(BlockAddr Block) const;

  /// Removes every line.
  void flush();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetStats() {
    Hits = 0;
    Misses = 0;
  }

  /// Number of resident lines across all sets.
  size_t residentCount() const;

  /// Resident blocks of one set in age order (youngest first; PLRU ties
  /// broken by block address for determinism).
  std::vector<BlockAddr> setContents(uint32_t Set) const;

private:
  bool accessOrdered(BlockAddr Block, bool PromoteOnHit);
  bool accessPlru(BlockAddr Block);
  uint32_t plruAgeOf(uint32_t Set, uint32_t Way) const;
  /// Points every tree bit on \p Way's root path away from it.
  void plruTouch(uint32_t Set, uint32_t Way);
  /// Way the tree bits currently lead to.
  uint32_t plruVictim(uint32_t Set) const;

  CacheConfig Config;
  /// LRU/FIFO: per set, blocks in recency (LRU) or insertion (FIFO)
  /// order, youngest at front.
  std::vector<std::vector<BlockAddr>> Sets;
  /// PLRU: per set, one slot per way (InvalidWay marks an empty slot) ...
  std::vector<std::vector<BlockAddr>> PlruWays;
  /// ... and Associativity - 1 heap-ordered tree bits (bit 0 = root;
  /// children of node i are 2i+1 / 2i+2; value 0 = victim walk goes left).
  std::vector<std::vector<uint8_t>> PlruBits;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Historical name from when LRU was the only modeled policy.
using LruCache = CacheSim;

} // namespace specai

#endif // SPECAI_CACHE_CACHESIM_H
