//===- CacheSim.h - Concrete LRU cache simulator ----------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete set-associative LRU cache simulator keyed by global line
/// (block) addresses. The paper's configuration — 512 lines of 64 bytes,
/// fully associative, LRU (Alpha 21264-style data cache) — is the default.
/// This simulator is the ground truth against which the abstract analysis
/// is validated: every access the MUST analysis calls a hit must hit here,
/// in every execution, speculative windows included.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_CACHE_CACHESIM_H
#define SPECAI_CACHE_CACHESIM_H

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace specai {

/// A global cache line (block) address: byte address / line size.
using BlockAddr = uint64_t;

/// Geometry of the modeled data cache.
struct CacheConfig {
  /// Bytes per line.
  uint32_t LineSize = 64;
  /// Total number of lines.
  uint32_t NumLines = 512;
  /// Ways per set; NumLines means fully associative.
  uint32_t Associativity = 512;

  uint32_t numSets() const {
    return Associativity == 0 ? 1 : NumLines / Associativity;
  }
  uint32_t setOf(BlockAddr Block) const { return Block % numSets(); }
  uint64_t totalBytes() const {
    return static_cast<uint64_t>(LineSize) * NumLines;
  }

  /// The paper's evaluation cache: 512 lines x 64 B, fully associative, LRU
  /// (32 KB).
  static CacheConfig paperDefault() { return CacheConfig{64, 512, 512}; }
  static CacheConfig fullyAssociative(uint32_t Lines, uint32_t LineSize = 64) {
    return CacheConfig{LineSize, Lines, Lines};
  }
  static CacheConfig setAssociative(uint32_t Lines, uint32_t Ways,
                                    uint32_t LineSize = 64) {
    return CacheConfig{LineSize, Lines, Ways};
  }

  /// True when the geometry is consistent (associativity divides lines,
  /// power framework not required).
  bool isValid() const {
    return LineSize > 0 && NumLines > 0 && Associativity > 0 &&
           Associativity <= NumLines && NumLines % Associativity == 0;
  }
};

/// Concrete LRU cache. Each set keeps its lines in recency order.
class LruCache {
public:
  explicit LruCache(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }

  /// Touches \p Block: returns true on hit. On miss the block is inserted
  /// and the LRU way of its set is evicted if the set is full.
  bool access(BlockAddr Block);

  /// True if \p Block is currently resident.
  bool contains(BlockAddr Block) const;

  /// LRU age of \p Block within its set: 1 = most recently used, ...,
  /// Associativity = least recently used; 0 if absent.
  uint32_t ageOf(BlockAddr Block) const;

  /// Removes every line.
  void flush();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetStats() {
    Hits = 0;
    Misses = 0;
  }

  /// Number of resident lines across all sets.
  size_t residentCount() const;

  /// Resident blocks of one set in recency order (youngest first).
  std::vector<BlockAddr> setContents(uint32_t Set) const;

private:
  CacheConfig Config;
  /// Per set: blocks in recency order, youngest at front.
  std::vector<std::vector<BlockAddr>> Sets;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace specai

#endif // SPECAI_CACHE_CACHESIM_H
