//===- CacheSim.cpp -------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"

#include <algorithm>
#include <cassert>

using namespace specai;

LruCache::LruCache(const CacheConfig &Config) : Config(Config) {
  assert(Config.isValid() && "invalid cache geometry");
  Sets.resize(Config.numSets());
}

bool LruCache::access(BlockAddr Block) {
  auto &Set = Sets[Config.setOf(Block)];
  auto It = std::find(Set.begin(), Set.end(), Block);
  if (It != Set.end()) {
    // Hit: move to the front (most recently used).
    Set.erase(It);
    Set.insert(Set.begin(), Block);
    ++Hits;
    return true;
  }
  // Miss: insert at front, evict the LRU way if the set is over capacity.
  Set.insert(Set.begin(), Block);
  if (Set.size() > Config.Associativity)
    Set.pop_back();
  ++Misses;
  return false;
}

bool LruCache::contains(BlockAddr Block) const {
  const auto &Set = Sets[Config.setOf(Block)];
  return std::find(Set.begin(), Set.end(), Block) != Set.end();
}

uint32_t LruCache::ageOf(BlockAddr Block) const {
  const auto &Set = Sets[Config.setOf(Block)];
  auto It = std::find(Set.begin(), Set.end(), Block);
  if (It == Set.end())
    return 0;
  return static_cast<uint32_t>(It - Set.begin()) + 1;
}

void LruCache::flush() {
  for (auto &Set : Sets)
    Set.clear();
}

size_t LruCache::residentCount() const {
  size_t Count = 0;
  for (const auto &Set : Sets)
    Count += Set.size();
  return Count;
}

std::vector<BlockAddr> LruCache::setContents(uint32_t Set) const {
  assert(Set < Sets.size() && "set index out of range");
  return Sets[Set];
}
