//===- CacheSim.cpp -------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"

#include <algorithm>
#include <cassert>

using namespace specai;

namespace {

/// Empty-slot marker for the PLRU way arrays; real block addresses are
/// byte-address / line-size and never reach this value.
constexpr BlockAddr InvalidWay = ~BlockAddr(0);

uint32_t log2Exact(uint32_t PowerOfTwo) {
  uint32_t L = 0;
  while ((1u << L) < PowerOfTwo)
    ++L;
  return L;
}

} // namespace

const char *specai::replacementPolicyName(ReplacementPolicy Policy) {
  switch (Policy) {
  case ReplacementPolicy::Lru:
    return "lru";
  case ReplacementPolicy::Fifo:
    return "fifo";
  case ReplacementPolicy::Plru:
    return "plru";
  }
  return "?";
}

bool specai::parseReplacementPolicy(const std::string &Name,
                                    ReplacementPolicy &PolicyOut) {
  if (Name == "lru")
    PolicyOut = ReplacementPolicy::Lru;
  else if (Name == "fifo")
    PolicyOut = ReplacementPolicy::Fifo;
  else if (Name == "plru")
    PolicyOut = ReplacementPolicy::Plru;
  else
    return false;
  return true;
}

uint32_t CacheConfig::mustAgeCap() const {
  if (Policy == ReplacementPolicy::Plru)
    return log2Exact(Associativity) + 1;
  return Associativity;
}

CacheSim::CacheSim(const CacheConfig &Config) : Config(Config) {
  assert(Config.isValid() && "invalid cache geometry");
  if (Config.Policy == ReplacementPolicy::Plru) {
    PlruWays.assign(Config.numSets(),
                    std::vector<BlockAddr>(Config.Associativity, InvalidWay));
    PlruBits.assign(Config.numSets(),
                    std::vector<uint8_t>(Config.Associativity - 1, 0));
  } else {
    Sets.resize(Config.numSets());
  }
}

bool CacheSim::accessOrdered(BlockAddr Block, bool PromoteOnHit) {
  auto &Set = Sets[Config.setOf(Block)];
  auto It = std::find(Set.begin(), Set.end(), Block);
  if (It != Set.end()) {
    // LRU promotes a hit to the front (most recently used); FIFO keeps the
    // insertion order untouched.
    if (PromoteOnHit) {
      Set.erase(It);
      Set.insert(Set.begin(), Block);
    }
    ++Hits;
    return true;
  }
  // Miss: insert at front, evict the oldest way if the set is over
  // capacity.
  Set.insert(Set.begin(), Block);
  if (Set.size() > Config.Associativity)
    Set.pop_back();
  ++Misses;
  return false;
}

void CacheSim::plruTouch(uint32_t Set, uint32_t Way) {
  // Walk the root path of leaf Way; at each node, point the bit at the
  // child we did NOT come through, so the victim walk steers away from the
  // just-used way.
  std::vector<uint8_t> &Bits = PlruBits[Set];
  uint32_t Levels = log2Exact(Config.Associativity);
  uint32_t Node = 0;
  for (uint32_t Level = 0; Level != Levels; ++Level) {
    uint32_t Bit = (Way >> (Levels - 1 - Level)) & 1;
    Bits[Node] = static_cast<uint8_t>(1 - Bit); // Point away from Way.
    Node = 2 * Node + 1 + Bit;
  }
}

uint32_t CacheSim::plruVictim(uint32_t Set) const {
  const std::vector<uint8_t> &Bits = PlruBits[Set];
  uint32_t Levels = log2Exact(Config.Associativity);
  uint32_t Node = 0, Way = 0;
  for (uint32_t Level = 0; Level != Levels; ++Level) {
    uint32_t Bit = Bits[Node];
    Way = (Way << 1) | Bit;
    Node = 2 * Node + 1 + Bit;
  }
  return Way;
}

uint32_t CacheSim::plruAgeOf(uint32_t Set, uint32_t Way) const {
  // 1 + the number of root-path bits pointing toward this way. A single
  // access to another way flips at most one of them (the divergence node),
  // which is what lets the abstract domain age PLRU entries by one per
  // access (docs/DOMAINS.md).
  const std::vector<uint8_t> &Bits = PlruBits[Set];
  uint32_t Levels = log2Exact(Config.Associativity);
  uint32_t Node = 0, Toward = 0;
  for (uint32_t Level = 0; Level != Levels; ++Level) {
    uint32_t Bit = (Way >> (Levels - 1 - Level)) & 1;
    if (Bits[Node] == Bit)
      ++Toward;
    Node = 2 * Node + 1 + Bit;
  }
  return Toward + 1;
}

bool CacheSim::accessPlru(BlockAddr Block) {
  uint32_t Set = Config.setOf(Block);
  std::vector<BlockAddr> &Ways = PlruWays[Set];
  auto It = std::find(Ways.begin(), Ways.end(), Block);
  if (It != Ways.end()) {
    plruTouch(Set, static_cast<uint32_t>(It - Ways.begin()));
    ++Hits;
    return true;
  }
  // Miss: fill the lowest empty way first; only a full set consults the
  // tree bits for a victim.
  auto Empty = std::find(Ways.begin(), Ways.end(), InvalidWay);
  uint32_t Way = Empty != Ways.end()
                     ? static_cast<uint32_t>(Empty - Ways.begin())
                     : plruVictim(Set);
  Ways[Way] = Block;
  plruTouch(Set, Way);
  ++Misses;
  return false;
}

bool CacheSim::access(BlockAddr Block) {
  switch (Config.Policy) {
  case ReplacementPolicy::Lru:
    return accessOrdered(Block, /*PromoteOnHit=*/true);
  case ReplacementPolicy::Fifo:
    return accessOrdered(Block, /*PromoteOnHit=*/false);
  case ReplacementPolicy::Plru:
    return accessPlru(Block);
  }
  return false;
}

bool CacheSim::contains(BlockAddr Block) const {
  if (Config.Policy == ReplacementPolicy::Plru) {
    const auto &Ways = PlruWays[Config.setOf(Block)];
    return std::find(Ways.begin(), Ways.end(), Block) != Ways.end();
  }
  const auto &Set = Sets[Config.setOf(Block)];
  return std::find(Set.begin(), Set.end(), Block) != Set.end();
}

uint32_t CacheSim::ageOf(BlockAddr Block) const {
  uint32_t Set = Config.setOf(Block);
  if (Config.Policy == ReplacementPolicy::Plru) {
    const auto &Ways = PlruWays[Set];
    auto It = std::find(Ways.begin(), Ways.end(), Block);
    if (It == Ways.end())
      return 0;
    return plruAgeOf(Set, static_cast<uint32_t>(It - Ways.begin()));
  }
  const auto &Lines = Sets[Set];
  auto It = std::find(Lines.begin(), Lines.end(), Block);
  if (It == Lines.end())
    return 0;
  return static_cast<uint32_t>(It - Lines.begin()) + 1;
}

void CacheSim::flush() {
  for (auto &Set : Sets)
    Set.clear();
  for (auto &Ways : PlruWays)
    std::fill(Ways.begin(), Ways.end(), InvalidWay);
  for (auto &Bits : PlruBits)
    std::fill(Bits.begin(), Bits.end(), 0);
}

size_t CacheSim::residentCount() const {
  size_t Count = 0;
  for (const auto &Set : Sets)
    Count += Set.size();
  for (const auto &Ways : PlruWays)
    Count += static_cast<size_t>(
        std::count_if(Ways.begin(), Ways.end(),
                      [](BlockAddr B) { return B != InvalidWay; }));
  return Count;
}

std::vector<BlockAddr> CacheSim::setContents(uint32_t Set) const {
  if (Config.Policy == ReplacementPolicy::Plru) {
    assert(Set < PlruWays.size() && "set index out of range");
    std::vector<BlockAddr> Out;
    for (BlockAddr B : PlruWays[Set])
      if (B != InvalidWay)
        Out.push_back(B);
    std::sort(Out.begin(), Out.end(), [&](BlockAddr A, BlockAddr B) {
      uint32_t AA = ageOf(A), AB = ageOf(B);
      return AA != AB ? AA < AB : A < B;
    });
    return Out;
  }
  assert(Set < Sets.size() && "set index out of range");
  return Sets[Set];
}
