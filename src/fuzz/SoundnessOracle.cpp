//===- SoundnessOracle.cpp ------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/SoundnessOracle.h"

#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"
#include "support/Rng.h"

#include <algorithm>
#include <deque>

using namespace specai;

const char *specai::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::CompileError:
    return "compile-error";
  case ViolationKind::AnalysisDiverged:
    return "analysis-diverged";
  case ViolationKind::RunStuck:
    return "run-stuck";
  case ViolationKind::UnreachableReached:
    return "unreachable-reached";
  case ViolationKind::MustStateNotContained:
    return "must-state-not-contained";
  case ViolationKind::MayStateUnderApprox:
    return "may-state-under-approx";
  case ViolationKind::MustHitMissed:
    return "must-hit-missed";
  case ViolationKind::MustMissHit:
    return "must-miss-hit";
  case ViolationKind::SpecStateMissing:
    return "spec-state-missing";
  case ViolationKind::SpecStateNotContained:
    return "spec-state-not-contained";
  case ViolationKind::SpecMissUnflagged:
    return "spec-miss-unflagged";
  case ViolationKind::ArchResultDiverged:
    return "arch-result-diverged";
  case ViolationKind::ArchTraceDiverged:
    return "arch-trace-diverged";
  }
  return "?";
}

std::string Violation::str(const CompiledProgram &CP) const {
  std::string Out = violationKindName(Kind);
  if (Node != InvalidNode) {
    Out += " at node " + std::to_string(Node) + " (" +
           CP.P->Blocks[CP.G.blockOf(Node)].Name + "[" +
           std::to_string(CP.G.instIndexOf(Node)) + "])";
  }
  Out += " under ";
  Out += mergeStrategyName(Strategy);
  Out += Bounding == BoundingMode::Fixed ? "/fixed" : "/dynamic";
  if (!Detail.empty())
    Out += ": " + Detail;
  if (!Run.PredictorName.empty()) {
    Out += " [predictor " + Run.PredictorName + "]";
  } else {
    Out += " [script ";
    for (bool B : Run.Script)
      Out += B ? 'T' : 'N';
    Out += Run.Fallback ? "+T]" : "+N]";
  }
  return Out;
}

/// Everything the per-access validator needs from one (strategy, bounding)
/// analysis run, precomputed once per program.
struct SoundnessOracle::ReportCtx {
  MergeStrategy Strategy;
  BoundingMode Bounding;
  MustHitReport R;
  /// Per node: Normal ⊔ PostRollback, the paper's observable state.
  std::vector<CacheAbsState> Obs;
  /// Depth bound the analysis assumed per site (b_miss, or b_hit under
  /// dynamic bounding when the condition loads are must-hits).
  std::vector<uint32_t> SiteDepth;
};

/// Committed access trace of a non-speculative reference run.
struct SoundnessOracle::Reference {
  std::vector<int64_t> ScalarValues;
  std::vector<std::vector<int64_t>> ArrayValues;
  int64_t RetVal = 0;
  bool Completed = false;
  std::vector<AccessEvent> Trace;
};

std::vector<uint32_t>
SoundnessOracle::siteDepths(const CompiledProgram &CP, const MustHitReport &R,
                            const MustHitOptions &O) {
  std::vector<uint32_t> Depths(CP.Plan.siteCount(), O.DepthMiss);
  if (O.Bounding != BoundingMode::Dynamic)
    return Depths;
  // Mirrors the engine's SiteDepth: the final fixpoint's classification
  // decides the bound; the envelope joined the maximum over iterations, so
  // this is always <= what the analysis actually covered.
  for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
    const SpecSite &S = CP.Plan.sites()[Site];
    bool AllHit = !S.CondLoads.empty();
    for (NodeId Load : S.CondLoads)
      if (!R.MustHit[Load]) {
        AllHit = false;
        break;
      }
    if (AllHit)
      Depths[Site] = O.DepthHit;
  }
  return Depths;
}

SoundnessOracle::SoundnessOracle(
    const CompiledProgram &CP, std::vector<std::string> InputScalars,
    std::vector<std::pair<std::string, unsigned>> InputArrays,
    SoundnessOracleOptions Options)
    : CP(CP), InputScalars(std::move(InputScalars)),
      InputArrays(std::move(InputArrays)), Options(std::move(Options)) {
  for (MergeStrategy S : this->Options.Strategies) {
    for (BoundingMode B : this->Options.Boundings) {
      MustHitOptions O;
      O.Cache = this->Options.Cache;
      O.Speculative = true;
      O.UseShadow = this->Options.UseShadow;
      O.Strategy = S;
      O.DepthMiss = this->Options.DepthMiss;
      O.DepthHit = this->Options.DepthHit;
      O.Bounding = B;
      O.Fault = this->Options.Fault;

      ReportCtx Ctx;
      Ctx.Strategy = S;
      Ctx.Bounding = B;
      Ctx.R = runMustHitAnalysis(CP, O);
      Ctx.SiteDepth = siteDepths(CP, Ctx.R, O);
      Ctx.Obs.reserve(CP.G.size());
      for (NodeId N = 0; N != CP.G.size(); ++N) {
        CacheAbsState Obs = Ctx.R.States.Normal[N];
        Obs.joinInto(Ctx.R.States.PostRollback[N], this->Options.UseShadow);
        Ctx.Obs.push_back(std::move(Obs));
      }
      Reports.push_back(std::move(Ctx));
    }
  }

  MinSiteDepths.assign(CP.Plan.siteCount(), this->Options.DepthMiss);
  for (const ReportCtx &RC : Reports)
    for (size_t Site = 0; Site != MinSiteDepths.size(); ++Site)
      MinSiteDepths[Site] = std::min(MinSiteDepths[Site], RC.SiteDepth[Site]);
  for (const ReportCtx &RC : Reports)
    if (std::find(FullWindowMaps.begin(), FullWindowMaps.end(),
                  RC.SiteDepth) == FullWindowMaps.end())
      FullWindowMaps.push_back(RC.SiteDepth);
}

SoundnessOracle::~SoundnessOracle() = default;

const SoundnessOracle::Reference &
SoundnessOracle::referenceFor(const RunSpec &Spec) {
  for (const Reference &Ref : References)
    if (Ref.ScalarValues == Spec.ScalarValues &&
        Ref.ArrayValues == Spec.ArrayValues)
      return Ref;

  Reference Ref;
  Ref.ScalarValues = Spec.ScalarValues;
  Ref.ArrayValues = Spec.ArrayValues;
  MemoryModel MM(*CP.P, Options.Cache);
  StaticPredictor P(false);
  SpeculativeCpu Cpu(*CP.P, MM, P, TimingModel{}, /*EnableSpeculation=*/false);
  for (size_t I = 0; I != InputScalars.size(); ++I)
    Cpu.machine().setMemory(CP.P->findVar(InputScalars[I]), 0,
                            Spec.ScalarValues[I]);
  for (size_t I = 0; I != InputArrays.size(); ++I)
    Cpu.machine().setMemoryAll(CP.P->findVar(InputArrays[I].first),
                               Spec.ArrayValues[I]);
  CpuRunStats Stats = Cpu.run(Options.MaxSteps);
  Ref.Completed = Stats.Completed;
  Ref.RetVal = Stats.ReturnValue;
  for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace())
    Ref.Trace.push_back(A.Access);
  References.push_back(std::move(Ref));
  return References.back();
}

namespace {

bool sameAccess(const AccessEvent &A, const AccessEvent &B) {
  return A.Var == B.Var && A.Element == B.Element && A.IsLoad == B.IsLoad &&
         A.Block == B.Block && A.InstIndex == B.InstIndex;
}

} // namespace

std::optional<Violation>
SoundnessOracle::runScenario(const RunSpec &Spec, OracleStats &Stats,
                             size_t *DecisionsUsed) {
  if (DecisionsUsed)
    *DecisionsUsed = 0;
  // Reports whose speculation envelope covers this scenario's windows: a
  // concrete window never longer than the depth the analysis assumed for
  // the site. (Shorter is fine — the engine models a rollback after every
  // prefix of the window.)
  std::vector<const ReportCtx *> Compat;
  for (const ReportCtx &RC : Reports) {
    bool Ok = true;
    for (size_t Site = 0; Site != Spec.SiteWindows.size(); ++Site)
      if (Spec.SiteWindows[Site] > RC.SiteDepth[Site]) {
        Ok = false;
        break;
      }
    if (Ok)
      Compat.push_back(&RC);
  }
  if (Compat.empty())
    return std::nullopt;

  MemoryModel MM(*CP.P, Options.Cache);
  const uint32_t Assoc = Options.Cache.Associativity;
  const uint32_t NumSets = Options.Cache.numSets();

  std::unique_ptr<BranchPredictor> Zoo;
  std::unique_ptr<ScriptedPredictor> Scripted;
  BranchPredictor *Predictor = nullptr;
  if (!Spec.PredictorName.empty()) {
    for (auto &P : makeStandardPredictors())
      if (P->name() == Spec.PredictorName)
        Zoo = std::move(P);
    if (!Zoo)
      return std::nullopt; // Unknown predictor name; nothing to check.
    Predictor = Zoo.get();
  } else {
    Scripted = std::make_unique<ScriptedPredictor>(Spec.Script, Spec.Fallback);
    Predictor = Scripted.get();
  }

  SpeculativeCpu Cpu(*CP.P, MM, *Predictor, TimingModel{},
                     /*EnableSpeculation=*/true);
  Cpu.setWindows({Options.DepthMiss, Options.DepthMiss});

  // Pin every branch's window: plan sites get exactly the scenario's
  // window (and stop at their reconvergence point, the paper's
  // virtual-control-flow model); branches the plan does not model get
  // window 0.
  for (NodeId N = 0; N != CP.G.size(); ++N)
    if (CP.G.inst(N).Op == Opcode::Br)
      Cpu.setWindowOverride(CP.G.blockOf(N), CP.G.instIndexOf(N), 0);
  for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
    const SpecSite &S = CP.Plan.sites()[Site];
    uint32_t W = Site < Spec.SiteWindows.size() ? Spec.SiteWindows[Site] : 0;
    Cpu.setWindowOverride(CP.G.blockOf(S.Branch), CP.G.instIndexOf(S.Branch),
                          W);
    if (S.Ipdom != InvalidNode)
      Cpu.setSpeculationStop(CP.G.blockOf(S.Branch),
                             CP.G.instIndexOf(S.Branch),
                             CP.G.blockOf(S.Ipdom));
  }

  for (size_t I = 0; I != InputScalars.size(); ++I)
    Cpu.machine().setMemory(CP.P->findVar(InputScalars[I]), 0,
                            Spec.ScalarValues[I]);
  for (size_t I = 0; I != InputArrays.size(); ++I)
    Cpu.machine().setMemoryAll(CP.P->findVar(InputArrays[I].first),
                               Spec.ArrayValues[I]);

  std::optional<Violation> Found;
  auto Report = [&](ViolationKind Kind, const ReportCtx *RC, NodeId Node,
                    std::string Detail) {
    if (Found)
      return;
    Violation V;
    V.Kind = Kind;
    if (RC) {
      V.Strategy = RC->Strategy;
      V.Bounding = RC->Bounding;
    }
    V.Node = Node;
    V.Detail = std::move(Detail);
    V.Run = Spec;
    Found = std::move(V);
  };

  Cpu.setAccessHook([&](const AccessEvent &E, bool Speculative,
                        const CacheSim &Cache) {
    if (Found)
      return;
    NodeId N = CP.G.nodeAt(E.Block, E.InstIndex);
    BlockAddr Touched = MM.blockOf(E.Var, E.Element);
    bool WillHit = Cache.contains(Touched);

    auto CheckMust = [&](const CacheAbsState &S, const ReportCtx *RC,
                         ViolationKind Kind) {
      // Iterates the per-set partitions directly: this runs per containment
      // check (tens of millions per campaign), and the merged mustEntries()
      // view would allocate every time.
      for (const CacheSetPartition &Part : S.partitions()) {
        for (const AgedBlock &Entry : Part.Must) {
          if (MM.isSymbolic(Entry.Block))
            continue; // Symbolic instances have no single concrete line.
          uint32_t Age = Cache.ageOf(Entry.Block);
          if (Age == 0 || Age > Entry.Age) {
            Report(Kind, RC, N,
                   "MUST entry " + MM.blockName(Entry.Block) + " age<=" +
                       std::to_string(Entry.Age) + " but concrete age " +
                       (Age == 0 ? std::string("absent")
                                 : std::to_string(Age)));
            return;
          }
        }
      }
    };

    for (const ReportCtx *RC : Compat) {
      if (Found)
        return;
      if (!Speculative) {
        ++Stats.CommittedChecks;
        const CacheAbsState &Obs = RC->Obs[N];
        if (Obs.isBottom()) {
          Report(ViolationKind::UnreachableReached, RC, N,
                 "committed access at a node the analysis deems "
                 "architecturally unreachable");
          return;
        }
        CheckMust(Obs, RC, ViolationKind::MustStateNotContained);
        if (Found)
          return;
        if (Options.UseShadow) {
          for (uint32_t Set = 0; Set != NumSets && !Found; ++Set) {
            for (BlockAddr B : Cache.setContents(Set)) {
              if (Obs.mayAge(B, Assoc) > Cache.ageOf(B)) {
                Report(ViolationKind::MayStateUnderApprox, RC, N,
                       "resident block " + MM.blockName(B) +
                           " (concrete age " +
                           std::to_string(Cache.ageOf(B)) +
                           ") not admitted by the MAY state");
                break;
              }
            }
          }
          if (Found)
            return;
        }
        CacheDomain::AccessClass Class = RC->R.Classes[N];
        if (Class == CacheDomain::AccessClass::MustHit && !WillHit) {
          Report(ViolationKind::MustHitMissed, RC, N,
                 "MustHit access to " + MM.blockName(Touched) +
                     " missed concretely");
          return;
        }
        if (Class == CacheDomain::AccessClass::MustMiss && WillHit) {
          Report(ViolationKind::MustMissHit, RC, N,
                 "MustMiss access to " + MM.blockName(Touched) +
                     " hit concretely");
          return;
        }
      } else {
        ++Stats.SpeculativeChecks;
        const CacheAbsState &Spec_ = RC->R.States.Speculative[N];
        if (Spec_.isBottom()) {
          Report(ViolationKind::SpecStateMissing, RC, N,
                 "speculative access at a node with bottom speculative "
                 "state");
          return;
        }
        CheckMust(Spec_, RC, ViolationKind::SpecStateNotContained);
        if (Found)
          return;
        if (E.IsLoad && !WillHit && !RC->R.SpecPossibleMiss[N]) {
          // Spec non-bottom and not flagged means the analysis claims
          // every speculative execution of this node hits.
          Report(ViolationKind::SpecMissUnflagged, RC, N,
                 "speculative load of " + MM.blockName(Touched) +
                     " missed but the node is not flagged "
                     "SpecPossibleMiss");
          return;
        }
      }
    }
  });

  CpuRunStats RunStats = Cpu.run(Options.MaxSteps);
  ++Stats.ConcreteRuns;
  Stats.SpeculativeWindows += RunStats.Mispredicts;
  if (DecisionsUsed && Scripted)
    *DecisionsUsed = Scripted->decisionsUsed();
  if (Found)
    return Found;

  if (!RunStats.Completed) {
    Report(ViolationKind::RunStuck, nullptr, InvalidNode,
           "concrete run exceeded " + std::to_string(Options.MaxSteps) +
               " committed instructions");
    return Found;
  }

  // Architectural transparency: speculation must not change the committed
  // behavior (Figure 3's left and right traces commit identically).
  const Reference &Ref = referenceFor(Spec);
  if (!Ref.Completed) {
    Report(ViolationKind::RunStuck, nullptr, InvalidNode,
           "reference run exceeded the step budget");
    return Found;
  }
  if (RunStats.ReturnValue != Ref.RetVal) {
    Report(ViolationKind::ArchResultDiverged, nullptr, InvalidNode,
           "speculative return value " +
               std::to_string(RunStats.ReturnValue) + " != reference " +
               std::to_string(Ref.RetVal));
    return Found;
  }
  const auto &Trace = Cpu.committedTrace();
  bool TraceSame = Trace.size() == Ref.Trace.size();
  for (size_t I = 0; TraceSame && I != Trace.size(); ++I)
    TraceSame = sameAccess(Trace[I].Access, Ref.Trace[I]);
  if (!TraceSame)
    Report(ViolationKind::ArchTraceDiverged, nullptr, InvalidNode,
           "committed access traces differ (speculative run: " +
               std::to_string(Trace.size()) + " accesses, reference: " +
               std::to_string(Ref.Trace.size()) + ")");
  return Found;
}

std::optional<Violation> SoundnessOracle::checkRun(const RunSpec &Spec) {
  OracleStats Stats;
  return runScenario(Spec, Stats);
}

OracleResult SoundnessOracle::run(uint64_t Seed) {
  OracleResult Result;
  Result.Stats.Analyses = Reports.size();

  for (const ReportCtx &RC : Reports) {
    if (!RC.R.Converged) {
      Violation V;
      V.Kind = ViolationKind::AnalysisDiverged;
      V.Strategy = RC.Strategy;
      V.Bounding = RC.Bounding;
      V.Detail = "fixpoint did not converge";
      Result.Violations.push_back(std::move(V));
      return Result;
    }
  }

  Rng R(Seed * 0x2545F4914F6CDD1DULL + 0xDEADBEEF);
  const size_t Sites = CP.Plan.siteCount();

  for (unsigned Round = 0; Round != Options.InputRounds; ++Round) {
    RunSpec Base;
    for (size_t I = 0; I != InputScalars.size(); ++I)
      Base.ScalarValues.push_back(R.nextRange(-30, 30));
    for (const auto &[Name, Elems] : InputArrays) {
      std::vector<int64_t> Values;
      Values.reserve(Elems);
      for (unsigned E = 0; E != Elems; ++E)
        Values.push_back(R.nextRange(0, 127));
      Base.ArrayValues.push_back(std::move(Values));
    }

    // Window assignments: every distinct full-depth map the reports
    // assumed, plus sampled shrunken maps (rollback mid-window).
    std::vector<std::vector<uint32_t>> Maps = FullWindowMaps;
    if (Maps.empty())
      Maps.push_back(std::vector<uint32_t>(Sites, Options.DepthMiss));
    for (unsigned S = 0; S != Options.ShrunkenWindowRounds; ++S) {
      std::vector<uint32_t> Map(Sites, 0);
      for (size_t Site = 0; Site != Sites; ++Site)
        Map[Site] = static_cast<uint32_t>(
            R.nextBelow(MinSiteDepths.empty() ? 1
                                              : MinSiteDepths[Site] + 1));
      Maps.push_back(std::move(Map));
    }

    for (const std::vector<uint32_t> &Map : Maps) {
      RunSpec Spec = Base;
      Spec.SiteWindows = Map;

      // Exhaustive DFS over prediction-decision prefixes. A run that used
      // more decisions than its script is extended one bit both ways; one
      // that did not is a leaf (longer scripts replay identically).
      std::deque<std::vector<bool>> Work;
      Work.push_back({});
      while (!Work.empty()) {
        Spec.Script = std::move(Work.front());
        Work.pop_front();
        Spec.Fallback = false;
        Spec.PredictorName.clear();

        size_t Used = 0;
        if (std::optional<Violation> V =
                runScenario(Spec, Result.Stats, &Used)) {
          Result.Violations.push_back(std::move(*V));
          return Result;
        }
        if (Used > Spec.Script.size() &&
            Spec.Script.size() < Options.ExhaustiveBits) {
          std::vector<bool> Child = Spec.Script;
          Child.push_back(false);
          Work.push_back(Child);
          Child.back() = true;
          Work.push_back(std::move(Child));
        }
      }

      // Random longer scripts beyond the exhaustive prefix depth.
      for (unsigned S = 0; S != Options.SampledScripts; ++S) {
        Spec.Script.clear();
        for (unsigned B = 0; B != Options.SampledScriptLength; ++B)
          Spec.Script.push_back(R.chance(1, 2));
        Spec.Fallback = R.chance(1, 2);
        if (std::optional<Violation> V = runScenario(Spec, Result.Stats)) {
          Result.Violations.push_back(std::move(*V));
          return Result;
        }
      }
    }

    // The trained predictor zoo under the minimal (always-compatible)
    // window map.
    if (Options.UseStandardPredictors) {
      RunSpec Spec = Base;
      Spec.SiteWindows = MinSiteDepths;
      for (auto &P : makeStandardPredictors()) {
        Spec.PredictorName = P->name();
        if (std::optional<Violation> V = runScenario(Spec, Result.Stats)) {
          Result.Violations.push_back(std::move(*V));
          return Result;
        }
      }
    }
  }
  return Result;
}
