//===- SoundnessOracle.cpp ------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/SoundnessOracle.h"

#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"
#include "support/Rng.h"

#include <algorithm>
#include <deque>

using namespace specai;

const char *specai::oracleKindName(unsigned Kind) {
  switch (Kind) {
  case OracleCache:
    return "cache";
  case OracleWcet:
    return "wcet";
  case OracleLeak:
    return "leak";
  case OracleLowering:
    return "lowering";
  case OracleRepair:
    return "repair";
  case OracleAll:
    return "all";
  }
  return "?";
}

bool specai::parseOracleKind(const std::string &Name, unsigned &MaskOut) {
  for (unsigned Kind : {OracleCache, OracleWcet, OracleLeak, OracleLowering,
                        OracleRepair, OracleAll}) {
    if (Name == oracleKindName(Kind)) {
      MaskOut = Kind;
      return true;
    }
  }
  return false;
}

unsigned specai::oracleOfViolation(ViolationKind K) {
  switch (K) {
  case ViolationKind::WcetBoundExceeded:
    return OracleWcet;
  case ViolationKind::LeakFreeSiteVaried:
  case ViolationKind::NonSpecLeakFreeSiteVaried:
  case ViolationKind::SpecOnlyLabelInconsistent:
    return OracleLeak;
  case ViolationKind::LoweringMustHitConflict:
  case ViolationKind::LoweringWcetUndercut:
  case ViolationKind::LoweringConcreteMustHitMissed:
    return OracleLowering;
  case ViolationKind::RepairIncomplete:
  case ViolationKind::RepairLeakRemains:
  case ViolationKind::RepairSemanticsChanged:
  case ViolationKind::RepairReplayLeak:
  case ViolationKind::RepairCostClaim:
  case ViolationKind::RepairCostExceeded:
    return OracleRepair;
  case ViolationKind::CompileError:
  case ViolationKind::AnalysisDiverged:
  case ViolationKind::RunStuck:
    // Infrastructure failures, not an oracle's soundness claim: counting
    // them as "cache" would report cache violations in campaigns where
    // the cache oracle never ran.
    return 0;
  default:
    return OracleCache;
  }
}

const char *specai::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::CompileError:
    return "compile-error";
  case ViolationKind::AnalysisDiverged:
    return "analysis-diverged";
  case ViolationKind::RunStuck:
    return "run-stuck";
  case ViolationKind::UnreachableReached:
    return "unreachable-reached";
  case ViolationKind::MustStateNotContained:
    return "must-state-not-contained";
  case ViolationKind::MayStateUnderApprox:
    return "may-state-under-approx";
  case ViolationKind::MustHitMissed:
    return "must-hit-missed";
  case ViolationKind::MustMissHit:
    return "must-miss-hit";
  case ViolationKind::SpecStateMissing:
    return "spec-state-missing";
  case ViolationKind::SpecStateNotContained:
    return "spec-state-not-contained";
  case ViolationKind::SpecMissUnflagged:
    return "spec-miss-unflagged";
  case ViolationKind::ArchResultDiverged:
    return "arch-result-diverged";
  case ViolationKind::ArchTraceDiverged:
    return "arch-trace-diverged";
  case ViolationKind::WcetBoundExceeded:
    return "wcet-bound-exceeded";
  case ViolationKind::LeakFreeSiteVaried:
    return "leak-free-site-varied";
  case ViolationKind::NonSpecLeakFreeSiteVaried:
    return "nonspec-leak-free-site-varied";
  case ViolationKind::SpecOnlyLabelInconsistent:
    return "spec-only-label-inconsistent";
  case ViolationKind::LoweringMustHitConflict:
    return "lowering-must-hit-conflict";
  case ViolationKind::LoweringWcetUndercut:
    return "lowering-wcet-undercut";
  case ViolationKind::LoweringConcreteMustHitMissed:
    return "lowering-concrete-must-hit-missed";
  case ViolationKind::RepairIncomplete:
    return "repair-incomplete";
  case ViolationKind::RepairLeakRemains:
    return "repair-leak-remains";
  case ViolationKind::RepairSemanticsChanged:
    return "repair-semantics-changed";
  case ViolationKind::RepairReplayLeak:
    return "repair-replay-leak";
  case ViolationKind::RepairCostClaim:
    return "repair-cost-claim";
  case ViolationKind::RepairCostExceeded:
    return "repair-cost-exceeded";
  }
  return "?";
}

std::string Violation::str(const CompiledProgram &CP) const {
  std::string Out = violationKindName(Kind);
  if (Node != InvalidNode) {
    Out += " at node " + std::to_string(Node) + " (" +
           CP.P->Blocks[CP.G.blockOf(Node)].Name + "[" +
           std::to_string(CP.G.instIndexOf(Node)) + "])";
  }
  Out += " under ";
  Out += mergeStrategyName(Strategy);
  Out += Bounding == BoundingMode::Fixed ? "/fixed" : "/dynamic";
  if (!Detail.empty())
    Out += ": " + Detail;
  if (!Run.PredictorName.empty()) {
    Out += " [predictor " + Run.PredictorName + "]";
  } else {
    Out += " [script ";
    for (bool B : Run.Script)
      Out += B ? 'T' : 'N';
    Out += Run.Fallback ? "+T]" : "+N]";
  }
  return Out;
}

/// Everything the per-access validator needs from one (strategy, bounding)
/// analysis run, precomputed once per program.
struct SoundnessOracle::ReportCtx {
  MergeStrategy Strategy;
  BoundingMode Bounding;
  MustHitReport R;
  /// Per node: Normal ⊔ PostRollback, the paper's observable state.
  std::vector<CacheAbsState> Obs;
  /// Depth bound the analysis assumed per site (b_miss, or b_hit under
  /// dynamic bounding when the condition loads are must-hits).
  std::vector<uint32_t> SiteDepth;
  /// Leak verdicts of this report (leak oracle only), SpeculationOnly
  /// already annotated against the non-speculative baseline.
  SideChannelReport Leak;
  /// (loop bound -> WorstCaseCycles) memo for the WCET oracle.
  std::vector<std::pair<uint32_t, uint64_t>> WcetMemo;
};

/// Committed access trace of a non-speculative reference run.
struct SoundnessOracle::Reference {
  std::vector<int64_t> ScalarValues;
  std::vector<std::vector<int64_t>> ArrayValues;
  int64_t RetVal = 0;
  bool Completed = false;
  std::vector<AccessEvent> Trace;
};

std::vector<uint32_t>
SoundnessOracle::siteDepths(const CompiledProgram &CP, const MustHitReport &R,
                            const MustHitOptions &O) {
  std::vector<uint32_t> Depths(CP.Plan.siteCount(), O.DepthMiss);
  // Mirrors the engine's SiteDepth: the final fixpoint's classification
  // decides the bound; the envelope joined the maximum over iterations, so
  // this is always <= what the analysis actually covered.
  if (O.Bounding == BoundingMode::Dynamic) {
    for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
      const SpecSite &S = CP.Plan.sites()[Site];
      bool AllHit = !S.CondLoads.empty();
      for (NodeId Load : S.CondLoads)
        if (!R.MustHit[Load]) {
          AllHit = false;
          break;
        }
      if (AllHit)
        Depths[Site] = O.DepthHit;
    }
  }
  for (size_t Site = 0;
       Site != Depths.size() && Site != O.SiteDepthClamp.size(); ++Site)
    Depths[Site] = std::min(Depths[Site], O.SiteDepthClamp[Site]);
  return Depths;
}

SoundnessOracle::SoundnessOracle(
    const CompiledProgram &CP, std::vector<std::string> InputScalars,
    std::vector<std::pair<std::string, unsigned>> InputArrays,
    SoundnessOracleOptions Options)
    : CP(CP), InputScalars(std::move(InputScalars)),
      InputArrays(std::move(InputArrays)), Options(std::move(Options)) {
  for (MergeStrategy S : this->Options.Strategies) {
    for (BoundingMode B : this->Options.Boundings) {
      MustHitOptions O;
      O.Cache = this->Options.Cache;
      O.Speculative = true;
      O.UseShadow = this->Options.UseShadow;
      O.Strategy = S;
      O.DepthMiss = this->Options.DepthMiss;
      O.DepthHit = this->Options.DepthHit;
      O.Bounding = B;
      O.Fault = this->Options.Fault;
      O.IntraJobs = this->Options.IntraJobs;

      ReportCtx Ctx;
      Ctx.Strategy = S;
      Ctx.Bounding = B;
      Ctx.R = runMustHitAnalysis(CP, O);
      Ctx.SiteDepth = siteDepths(CP, Ctx.R, O);
      Ctx.Obs.reserve(CP.G.size());
      for (NodeId N = 0; N != CP.G.size(); ++N) {
        CacheAbsState Obs = Ctx.R.States.Normal[N];
        Obs.joinInto(Ctx.R.States.PostRollback[N], this->Options.UseShadow);
        Ctx.Obs.push_back(std::move(Obs));
      }
      Reports.push_back(std::move(Ctx));
    }
  }

  MinSiteDepths.assign(CP.Plan.siteCount(), this->Options.DepthMiss);
  for (const ReportCtx &RC : Reports)
    for (size_t Site = 0; Site != MinSiteDepths.size(); ++Site)
      MinSiteDepths[Site] = std::min(MinSiteDepths[Site], RC.SiteDepth[Site]);
  for (const ReportCtx &RC : Reports)
    if (std::find(FullWindowMaps.begin(), FullWindowMaps.end(),
                  RC.SiteDepth) == FullWindowMaps.end())
      FullWindowMaps.push_back(RC.SiteDepth);

  for (size_t I = 0; I != this->InputArrays.size(); ++I) {
    VarId V = CP.P->findVar(this->InputArrays[I].first);
    if (V != InvalidVar && CP.P->Vars[V].IsSecret)
      SecretArrays.push_back(I);
  }

  if (this->Options.Oracles & OracleLeak) {
    // The non-speculative baseline: strategy/bounding do not apply, so a
    // single analysis serves every report's SpeculationOnly diff and the
    // verdict checked against non-speculative attacker runs.
    MustHitOptions NO;
    NO.Cache = this->Options.Cache;
    NO.Speculative = false;
    NO.UseShadow = this->Options.UseShadow;
    NO.IntraJobs = this->Options.IntraJobs;
    NonSpecReport =
        std::make_unique<MustHitReport>(runMustHitAnalysis(CP, NO));
    SideChannelOptions SCO{this->Options.VFault};
    NonSpecLeak = detectLeaks(CP, *NonSpecReport, SCO);
    for (ReportCtx &RC : Reports) {
      RC.Leak = detectLeaks(CP, RC.R, SCO);
      annotateSpeculationOnly(RC.Leak, NonSpecLeak, SCO);
    }
  }
}

SoundnessOracle::~SoundnessOracle() = default;

const SoundnessOracle::Reference &
SoundnessOracle::referenceFor(const RunSpec &Spec) {
  for (const Reference &Ref : References)
    if (Ref.ScalarValues == Spec.ScalarValues &&
        Ref.ArrayValues == Spec.ArrayValues)
      return Ref;

  Reference Ref;
  Ref.ScalarValues = Spec.ScalarValues;
  Ref.ArrayValues = Spec.ArrayValues;
  MemoryModel MM(*CP.P, Options.Cache);
  StaticPredictor P(false);
  SpeculativeCpu Cpu(*CP.P, MM, P, Options.Wcet.Timing,
                     /*EnableSpeculation=*/false);
  for (size_t I = 0; I != InputScalars.size(); ++I)
    Cpu.machine().setMemory(CP.P->findVar(InputScalars[I]), 0,
                            Spec.ScalarValues[I]);
  for (size_t I = 0; I != InputArrays.size(); ++I)
    Cpu.machine().setMemoryAll(CP.P->findVar(InputArrays[I].first),
                               Spec.ArrayValues[I]);
  CpuRunStats Stats = Cpu.run(Options.MaxSteps);
  Ref.Completed = Stats.Completed;
  Ref.RetVal = Stats.ReturnValue;
  for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace())
    Ref.Trace.push_back(A.Access);
  References.push_back(std::move(Ref));
  return References.back();
}

namespace {

bool sameAccess(const AccessEvent &A, const AccessEvent &B) {
  return A.Var == B.Var && A.Element == B.Element && A.IsLoad == B.IsLoad &&
         A.Block == B.Block && A.InstIndex == B.InstIndex;
}

} // namespace

std::vector<SoundnessOracle::ReportCtx *>
SoundnessOracle::compatibleReports(const RunSpec &Spec) {
  std::vector<ReportCtx *> Compat;
  for (ReportCtx &RC : Reports) {
    bool Ok = true;
    for (size_t Site = 0; Site != Spec.SiteWindows.size(); ++Site)
      if (Spec.SiteWindows[Site] > RC.SiteDepth[Site]) {
        Ok = false;
        break;
      }
    if (Ok)
      Compat.push_back(&RC);
  }
  return Compat;
}

void SoundnessOracle::pinWindowsAndInputs(SpeculativeCpu &Cpu,
                                          const RunSpec &Spec) {
  Cpu.setWindows({Options.DepthMiss, Options.DepthMiss});
  for (NodeId N = 0; N != CP.G.size(); ++N)
    if (CP.G.inst(N).Op == Opcode::Br)
      Cpu.setWindowOverride(CP.G.blockOf(N), CP.G.instIndexOf(N), 0);
  for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
    const SpecSite &S = CP.Plan.sites()[Site];
    uint32_t W = Site < Spec.SiteWindows.size() ? Spec.SiteWindows[Site] : 0;
    Cpu.setWindowOverride(CP.G.blockOf(S.Branch), CP.G.instIndexOf(S.Branch),
                          W);
    if (S.Ipdom != InvalidNode)
      Cpu.setSpeculationStop(CP.G.blockOf(S.Branch),
                             CP.G.instIndexOf(S.Branch),
                             CP.G.blockOf(S.Ipdom));
  }
  for (size_t I = 0; I != InputScalars.size(); ++I)
    Cpu.machine().setMemory(CP.P->findVar(InputScalars[I]), 0,
                            Spec.ScalarValues[I]);
  for (size_t I = 0; I != InputArrays.size(); ++I)
    Cpu.machine().setMemoryAll(CP.P->findVar(InputArrays[I].first),
                               Spec.ArrayValues[I]);
}

std::optional<Violation>
SoundnessOracle::runScenario(const RunSpec &Spec, OracleStats &Stats,
                             size_t *DecisionsUsed) {
  if (DecisionsUsed)
    *DecisionsUsed = 0;
  std::vector<ReportCtx *> Compat = compatibleReports(Spec);
  if (Compat.empty())
    return std::nullopt;

  MemoryModel MM(*CP.P, Options.Cache);
  const uint32_t Assoc = Options.Cache.Associativity;
  const uint32_t NumSets = Options.Cache.numSets();

  std::unique_ptr<BranchPredictor> Zoo;
  std::unique_ptr<ScriptedPredictor> Scripted;
  BranchPredictor *Predictor = nullptr;
  if (!Spec.PredictorName.empty()) {
    for (auto &P : makeStandardPredictors())
      if (P->name() == Spec.PredictorName)
        Zoo = std::move(P);
    if (!Zoo)
      return std::nullopt; // Unknown predictor name; nothing to check.
    Predictor = Zoo.get();
  } else {
    Scripted = std::make_unique<ScriptedPredictor>(Spec.Script, Spec.Fallback);
    Predictor = Scripted.get();
  }

  SpeculativeCpu Cpu(*CP.P, MM, *Predictor, Options.Wcet.Timing,
                     /*EnableSpeculation=*/true);
  pinWindowsAndInputs(Cpu, Spec);

  std::optional<Violation> Found;
  auto Report = [&](ViolationKind Kind, const ReportCtx *RC, NodeId Node,
                    std::string Detail) {
    if (Found)
      return;
    Violation V;
    V.Kind = Kind;
    if (RC) {
      V.Strategy = RC->Strategy;
      V.Bounding = RC->Bounding;
    }
    V.Node = Node;
    V.Detail = std::move(Detail);
    V.Run = Spec;
    Found = std::move(V);
  };

  // The cache-containment oracle rides the pre-access hook; the WCET
  // oracle rides the commit hook (per-node execution counts establish
  // which loop bound covers this run). Each attaches only when selected,
  // so `--oracle wcet` pays no containment-walk cost and vice versa.
  const bool CheckCache = (Options.Oracles & OracleCache) != 0;
  const bool CheckWcet = (Options.Oracles & OracleWcet) != 0;
  if (CheckWcet) {
    ExecCounts.assign(CP.G.size(), 0);
    Cpu.setCommitHook(
        [&](const Machine::StepResult &R, uint64_t, uint64_t) {
          ++ExecCounts[CP.G.nodeAt(R.Block, R.InstIndex)];
        });
  }

  Cpu.setAccessHook([&](const AccessEvent &E, bool Speculative,
                        const CacheSim &Cache) {
    if (!CheckCache || Found)
      return;
    NodeId N = CP.G.nodeAt(E.Block, E.InstIndex);
    BlockAddr Touched = MM.blockOf(E.Var, E.Element);
    bool WillHit = Cache.contains(Touched);

    auto CheckMust = [&](const CacheAbsState &S, const ReportCtx *RC,
                         ViolationKind Kind) {
      // Iterates the per-set partitions directly: this runs per containment
      // check (tens of millions per campaign), and the merged mustEntries()
      // view would allocate every time.
      for (const CacheSetPartition &Part : S.partitions()) {
        for (const AgedBlock &Entry : Part.Must) {
          if (MM.isSymbolic(Entry.Block))
            continue; // Symbolic instances have no single concrete line.
          uint32_t Age = Cache.ageOf(Entry.Block);
          if (Age == 0 || Age > Entry.Age) {
            Report(Kind, RC, N,
                   "MUST entry " + MM.blockName(Entry.Block) + " age<=" +
                       std::to_string(Entry.Age) + " but concrete age " +
                       (Age == 0 ? std::string("absent")
                                 : std::to_string(Age)));
            return;
          }
        }
      }
    };

    for (const ReportCtx *RC : Compat) {
      if (Found)
        return;
      if (!Speculative) {
        ++Stats.CommittedChecks;
        const CacheAbsState &Obs = RC->Obs[N];
        if (Obs.isBottom()) {
          Report(ViolationKind::UnreachableReached, RC, N,
                 "committed access at a node the analysis deems "
                 "architecturally unreachable");
          return;
        }
        CheckMust(Obs, RC, ViolationKind::MustStateNotContained);
        if (Found)
          return;
        if (Options.UseShadow) {
          for (uint32_t Set = 0; Set != NumSets && !Found; ++Set) {
            for (BlockAddr B : Cache.setContents(Set)) {
              if (Obs.mayAge(B, Assoc) > Cache.ageOf(B)) {
                Report(ViolationKind::MayStateUnderApprox, RC, N,
                       "resident block " + MM.blockName(B) +
                           " (concrete age " +
                           std::to_string(Cache.ageOf(B)) +
                           ") not admitted by the MAY state");
                break;
              }
            }
          }
          if (Found)
            return;
        }
        CacheDomain::AccessClass Class = RC->R.Classes[N];
        if (Class == CacheDomain::AccessClass::MustHit && !WillHit) {
          Report(ViolationKind::MustHitMissed, RC, N,
                 "MustHit access to " + MM.blockName(Touched) +
                     " missed concretely");
          return;
        }
        if (Class == CacheDomain::AccessClass::MustMiss && WillHit) {
          Report(ViolationKind::MustMissHit, RC, N,
                 "MustMiss access to " + MM.blockName(Touched) +
                     " hit concretely");
          return;
        }
      } else {
        ++Stats.SpeculativeChecks;
        const CacheAbsState &Spec_ = RC->R.States.Speculative[N];
        if (Spec_.isBottom()) {
          Report(ViolationKind::SpecStateMissing, RC, N,
                 "speculative access at a node with bottom speculative "
                 "state");
          return;
        }
        CheckMust(Spec_, RC, ViolationKind::SpecStateNotContained);
        if (Found)
          return;
        if (E.IsLoad && !WillHit && !RC->R.SpecPossibleMiss[N]) {
          // Spec non-bottom and not flagged means the analysis claims
          // every speculative execution of this node hits.
          Report(ViolationKind::SpecMissUnflagged, RC, N,
                 "speculative load of " + MM.blockName(Touched) +
                     " missed but the node is not flagged "
                     "SpecPossibleMiss");
          return;
        }
      }
    }
  });

  CpuRunStats RunStats = Cpu.run(Options.MaxSteps);
  ++Stats.ConcreteRuns;
  Stats.SpeculativeWindows += RunStats.Mispredicts;
  if (DecisionsUsed && Scripted)
    *DecisionsUsed = Scripted->decisionsUsed();
  if (Found)
    return Found;

  if (!RunStats.Completed) {
    Report(ViolationKind::RunStuck, nullptr, InvalidNode,
           "concrete run exceeded " + std::to_string(Options.MaxSteps) +
               " committed instructions");
    return Found;
  }

  if (CheckWcet) {
    // The estimate's loop scaling bounds the *total* header executions of
    // each loop, so the *tightest* sound comparison for this run uses
    // exactly the observed maximum — monotonicity makes that estimate the
    // verdict for precisely those loop-bound options. A fixed floor (the
    // old LoopIterationBound default of 64 against generated loops that
    // iterate at most ~31) would leave 2x slack that masks real
    // underestimation bugs.
    uint64_t MaxHeader = 0;
    for (const Loop &L : CP.LI.loops())
      MaxHeader = std::max(MaxHeader, ExecCounts[L.Header]);
    uint32_t LoopBound =
        static_cast<uint32_t>(std::max<uint64_t>(1, MaxHeader));
    for (ReportCtx *RC : Compat) {
      ++Stats.WcetChecks;
      uint64_t Bound = wcetBoundFor(*RC, LoopBound);
      if (RunStats.Cycles > Bound) {
        Report(ViolationKind::WcetBoundExceeded, RC, InvalidNode,
               "committed " + std::to_string(RunStats.Cycles) +
                   " cycles but estimateWcet bounds the program at " +
                   std::to_string(Bound) + " (loop iteration bound " +
                   std::to_string(LoopBound) + ")");
        return Found;
      }
    }
  }

  if (!CheckCache)
    return Found;

  // Architectural transparency: speculation must not change the committed
  // behavior (Figure 3's left and right traces commit identically).
  const Reference &Ref = referenceFor(Spec);
  if (!Ref.Completed) {
    Report(ViolationKind::RunStuck, nullptr, InvalidNode,
           "reference run exceeded the step budget");
    return Found;
  }
  if (RunStats.ReturnValue != Ref.RetVal) {
    Report(ViolationKind::ArchResultDiverged, nullptr, InvalidNode,
           "speculative return value " +
               std::to_string(RunStats.ReturnValue) + " != reference " +
               std::to_string(Ref.RetVal));
    return Found;
  }
  const auto &Trace = Cpu.committedTrace();
  bool TraceSame = Trace.size() == Ref.Trace.size();
  for (size_t I = 0; TraceSame && I != Trace.size(); ++I)
    TraceSame = sameAccess(Trace[I].Access, Ref.Trace[I]);
  if (!TraceSame)
    Report(ViolationKind::ArchTraceDiverged, nullptr, InvalidNode,
           "committed access traces differ (speculative run: " +
               std::to_string(Trace.size()) + " accesses, reference: " +
               std::to_string(Ref.Trace.size()) + ")");
  return Found;
}

uint64_t SoundnessOracle::wcetBoundFor(ReportCtx &RC, uint32_t LoopBound) {
  for (const auto &[Bound, Cycles] : RC.WcetMemo)
    if (Bound == LoopBound)
      return Cycles;
  WcetOptions WO = Options.Wcet;
  WO.LoopIterationBound = LoopBound;
  WO.Fault = Options.VFault;
  uint64_t Cycles = estimateWcet(CP, RC.R, WO).WorstCaseCycles;
  RC.WcetMemo.push_back({LoopBound, Cycles});
  return Cycles;
}

std::optional<Violation>
SoundnessOracle::runLeakFamily(const RunSpec &Spec, OracleStats &Stats) {
  if (SecretArrays.empty() || Spec.SecretVariants.empty() || !NonSpecReport)
    return std::nullopt;
  // A leak-freedom proof only speaks for executions inside the
  // speculation depths the analysis assumed.
  std::vector<ReportCtx *> Compat = compatibleReports(Spec);

  // Pool the attacker-visible outcome (hit/miss per committed execution)
  // per node: once across the speculative runs, once across the
  // non-speculative ones. A leak-freedom proof is a *uniformity* claim —
  // the access behaves identically in every architectural execution — so
  // seeing both outcomes anywhere in a family (same publics, same script,
  // same windows; only the secret varies) falsifies the verdict.
  enum : uint8_t { SawHit = 1, SawMiss = 2 };
  std::vector<uint8_t> SpecObs(CP.G.size(), 0), NonSpecObs(CP.G.size(), 0);

  for (const std::vector<std::vector<int64_t>> &Variant :
       Spec.SecretVariants) {
    for (bool Speculative : {true, false}) {
      MemoryModel MM(*CP.P, Options.Cache);
      ScriptedPredictor Pred(Spec.Script, Spec.Fallback);
      SpeculativeCpu Cpu(*CP.P, MM, Pred, Options.Wcet.Timing, Speculative);
      pinWindowsAndInputs(Cpu, Spec);
      for (size_t S = 0; S != SecretArrays.size() && S != Variant.size();
           ++S)
        Cpu.machine().setMemoryAll(
            CP.P->findVar(InputArrays[SecretArrays[S]].first), Variant[S]);

      CpuRunStats RunStats = Cpu.run(Options.MaxSteps);
      ++Stats.LeakRuns;
      if (!RunStats.Completed) {
        // Report rather than skip: under a leak-only oracle mask the
        // containment sweep never runs, so a silent skip would validate
        // nothing for this program and still report it sound.
        Violation V;
        V.Kind = ViolationKind::RunStuck;
        V.Detail = "leak-attacker run exceeded " +
                   std::to_string(Options.MaxSteps) +
                   " committed instructions";
        V.Run = Spec;
        return V;
      }
      std::vector<uint8_t> &Obs = Speculative ? SpecObs : NonSpecObs;
      for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace())
        Obs[CP.G.nodeAt(A.Access.Block, A.Access.InstIndex)] |=
            A.Hit ? SawHit : SawMiss;
    }
  }
  ++Stats.LeakFamilies;

  auto Leak = [&](ViolationKind Kind, const ReportCtx *RC, NodeId Node,
                  std::string Detail) {
    Violation V;
    V.Kind = Kind;
    if (RC) {
      V.Strategy = RC->Strategy;
      V.Bounding = RC->Bounding;
    }
    V.Node = Node;
    V.Detail = std::move(Detail);
    V.Run = Spec;
    return V;
  };
  auto SiteName = [&](NodeId Site) {
    VarId Var = CP.G.inst(Site).Var;
    return Var < CP.P->Vars.size() ? CP.P->Vars[Var].Name
                                   : std::string("<unknown>");
  };
  const std::string Across =
      " across " + std::to_string(Spec.SecretVariants.size()) +
      " secret variants with identical public inputs and script";

  for (ReportCtx *RC : Compat) {
    for (NodeId Site : RC->Leak.LeakFreeSites) {
      ++Stats.LeakSiteChecks;
      if (SpecObs[Site] == (SawHit | SawMiss))
        return Leak(ViolationKind::LeakFreeSiteVaried, RC, Site,
                    "the report proves the secret-indexed access to '" +
                        SiteName(Site) +
                        "' leak-free but the attacker saw both hits and "
                        "misses" +
                        Across);
    }
    // SpeculationOnly labeling must match the diff of the two reports: a
    // site leaking even without speculation may not carry the flag, and a
    // spec-only leak must.
    for (const LeakSite &L : RC->Leak.Leaks) {
      bool LeaksWithoutSpeculation = false;
      for (const LeakSite &N : NonSpecLeak.Leaks)
        if (N.Node == L.Node) {
          LeaksWithoutSpeculation = true;
          break;
        }
      if (L.SpeculationOnly == LeaksWithoutSpeculation)
        return Leak(ViolationKind::SpecOnlyLabelInconsistent, RC, L.Node,
                    LeaksWithoutSpeculation
                        ? "leak flagged SpeculationOnly but the "
                          "non-speculative report leaks there too"
                        : "leak absent from the non-speculative report "
                          "but not flagged SpeculationOnly");
    }
  }
  for (NodeId Site : NonSpecLeak.LeakFreeSites) {
    ++Stats.LeakSiteChecks;
    if (NonSpecObs[Site] == (SawHit | SawMiss))
      return Leak(ViolationKind::NonSpecLeakFreeSiteVaried, nullptr, Site,
                  "the non-speculative report proves the secret-indexed "
                  "access to '" +
                      SiteName(Site) +
                      "' leak-free but the non-speculative attacker saw "
                      "both hits and misses" +
                      Across);
  }
  return std::nullopt;
}

std::optional<Violation> SoundnessOracle::checkRun(const RunSpec &Spec) {
  OracleStats Stats;
  if (!Spec.SecretVariants.empty())
    return runLeakFamily(Spec, Stats);
  return runScenario(Spec, Stats);
}

OracleResult SoundnessOracle::run(uint64_t Seed) {
  OracleResult Result;
  Result.Stats.Analyses = Reports.size() + (NonSpecReport ? 1 : 0);

  for (const ReportCtx &RC : Reports) {
    if (!RC.R.Converged) {
      Violation V;
      V.Kind = ViolationKind::AnalysisDiverged;
      V.Strategy = RC.Strategy;
      V.Bounding = RC.Bounding;
      V.Detail = "fixpoint did not converge";
      Result.Violations.push_back(std::move(V));
      return Result;
    }
  }
  if (NonSpecReport && !NonSpecReport->Converged) {
    Violation V;
    V.Kind = ViolationKind::AnalysisDiverged;
    V.Detail = "non-speculative baseline fixpoint did not converge";
    Result.Violations.push_back(std::move(V));
    return Result;
  }

  Rng R(Seed * 0x2545F4914F6CDD1DULL + 0xDEADBEEF);
  const size_t Sites = CP.Plan.siteCount();

  // The scenario sweep serves the cache-containment and WCET oracles; a
  // leak-only invocation skips straight to the attacker families.
  const bool RunSweep =
      (Options.Oracles & (OracleCache | OracleWcet)) != 0;

  for (unsigned Round = 0; RunSweep && Round != Options.InputRounds;
       ++Round) {
    RunSpec Base;
    for (size_t I = 0; I != InputScalars.size(); ++I)
      Base.ScalarValues.push_back(R.nextRange(-30, 30));
    for (const auto &[Name, Elems] : InputArrays) {
      std::vector<int64_t> Values;
      Values.reserve(Elems);
      for (unsigned E = 0; E != Elems; ++E)
        Values.push_back(R.nextRange(0, 127));
      Base.ArrayValues.push_back(std::move(Values));
    }

    // Window assignments: every distinct full-depth map the reports
    // assumed, plus sampled shrunken maps (rollback mid-window).
    std::vector<std::vector<uint32_t>> Maps = FullWindowMaps;
    if (Maps.empty())
      Maps.push_back(std::vector<uint32_t>(Sites, Options.DepthMiss));
    for (unsigned S = 0; S != Options.ShrunkenWindowRounds; ++S) {
      std::vector<uint32_t> Map(Sites, 0);
      for (size_t Site = 0; Site != Sites; ++Site)
        Map[Site] = static_cast<uint32_t>(
            R.nextBelow(MinSiteDepths.empty() ? 1
                                              : MinSiteDepths[Site] + 1));
      Maps.push_back(std::move(Map));
    }

    for (const std::vector<uint32_t> &Map : Maps) {
      RunSpec Spec = Base;
      Spec.SiteWindows = Map;

      // Exhaustive DFS over prediction-decision prefixes. A run that used
      // more decisions than its script is extended one bit both ways; one
      // that did not is a leaf (longer scripts replay identically).
      std::deque<std::vector<bool>> Work;
      Work.push_back({});
      while (!Work.empty()) {
        Spec.Script = std::move(Work.front());
        Work.pop_front();
        Spec.Fallback = false;
        Spec.PredictorName.clear();

        size_t Used = 0;
        if (std::optional<Violation> V =
                runScenario(Spec, Result.Stats, &Used)) {
          Result.Violations.push_back(std::move(*V));
          return Result;
        }
        if (Used > Spec.Script.size() &&
            Spec.Script.size() < Options.ExhaustiveBits) {
          std::vector<bool> Child = Spec.Script;
          Child.push_back(false);
          Work.push_back(Child);
          Child.back() = true;
          Work.push_back(std::move(Child));
        }
      }

      // Random longer scripts beyond the exhaustive prefix depth.
      for (unsigned S = 0; S != Options.SampledScripts; ++S) {
        Spec.Script.clear();
        for (unsigned B = 0; B != Options.SampledScriptLength; ++B)
          Spec.Script.push_back(R.chance(1, 2));
        Spec.Fallback = R.chance(1, 2);
        if (std::optional<Violation> V = runScenario(Spec, Result.Stats)) {
          Result.Violations.push_back(std::move(*V));
          return Result;
        }
      }
    }

    // The trained predictor zoo under the minimal (always-compatible)
    // window map.
    if (Options.UseStandardPredictors) {
      RunSpec Spec = Base;
      Spec.SiteWindows = MinSiteDepths;
      for (auto &P : makeStandardPredictors()) {
        Spec.PredictorName = P->name();
        if (std::optional<Violation> V = runScenario(Spec, Result.Stats)) {
          Result.Violations.push_back(std::move(*V));
          return Result;
        }
      }
    }
  }

  // Leak-attacker families: replay the program on several secrets with
  // identical publics/script/windows and validate every report's
  // leak-freedom proofs (and the SpeculationOnly diff) against the
  // attacker-visible traces. Runs after the containment sweep so the
  // default (cache-only) campaign consumes the Rng stream identically to
  // the pre-verdict fuzzer.
  if ((Options.Oracles & OracleLeak) && !SecretArrays.empty()) {
    for (unsigned Round = 0; Round != Options.LeakRounds; ++Round) {
      RunSpec Spec;
      for (size_t I = 0; I != InputScalars.size(); ++I)
        Spec.ScalarValues.push_back(R.nextRange(-30, 30));
      for (const auto &[Name, Elems] : InputArrays) {
        std::vector<int64_t> Values;
        Values.reserve(Elems);
        for (unsigned E = 0; E != Elems; ++E)
          Values.push_back(R.nextRange(0, 127));
        Spec.ArrayValues.push_back(std::move(Values));
      }
      Spec.SiteWindows = MinSiteDepths;
      // Round 0 plays the all-not-taken script (the deterministic
      // baseline attacker); later rounds sample random scripts so
      // mispredictions land the pollution differently.
      if (Round > 0) {
        for (unsigned B = 0; B != Options.SampledScriptLength; ++B)
          Spec.Script.push_back(R.chance(1, 2));
        Spec.Fallback = R.chance(1, 2);
      }
      for (unsigned V = 0; V != Options.LeakSecrets; ++V) {
        std::vector<std::vector<int64_t>> Variant;
        for (size_t S : SecretArrays) {
          std::vector<int64_t> Values;
          Values.reserve(InputArrays[S].second);
          for (unsigned E = 0; E != InputArrays[S].second; ++E)
            Values.push_back(R.nextRange(0, 255));
          Variant.push_back(std::move(Values));
        }
        Spec.SecretVariants.push_back(std::move(Variant));
      }
      if (std::optional<Violation> V = runLeakFamily(Spec, Result.Stats)) {
        Result.Violations.push_back(std::move(*V));
        return Result;
      }
    }
  }
  return Result;
}
