//===- RepairOracle.cpp ---------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/RepairOracle.h"

#include "cfg/LoopInfo.h"
#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"
#include "support/Rng.h"

#include <algorithm>

using namespace specai;

namespace {

/// The one analysis configuration the repair oracle uses throughout:
/// first requested strategy, Fixed bounding. Fixed is deliberate — under
/// it every unclamped site's assumed depth is exactly DepthMiss, so the
/// concrete replays can pin each site's window to min(DepthMiss, clamp)
/// and stay inside the envelope the re-analysis proved leak-free.
MustHitOptions repairAnalysisOptions(const SoundnessOracleOptions &Opts) {
  MustHitOptions O;
  O.Cache = Opts.Cache;
  O.Speculative = true;
  O.UseShadow = Opts.UseShadow;
  O.Strategy = Opts.Strategies.empty() ? MergeStrategy::JustInTime
                                       : Opts.Strategies.front();
  O.DepthMiss = Opts.DepthMiss;
  O.DepthHit = Opts.DepthHit;
  O.Bounding = BoundingMode::Fixed;
  O.IntraJobs = Opts.IntraJobs;
  return O;
}

/// Per-site concrete windows of the patched program: the clamped depth
/// where a clamp was emitted, DepthMiss elsewhere.
std::vector<uint32_t> patchedWindows(const CompiledProgram &CP,
                                     const std::vector<uint32_t> &Clamps,
                                     uint32_t DepthMiss) {
  std::vector<uint32_t> W(CP.Plan.siteCount(), DepthMiss);
  for (size_t Site = 0; Site != W.size() && Site != Clamps.size(); ++Site)
    W[Site] = std::min(W[Site], Clamps[Site]);
  return W;
}

/// Pins windows exactly like SoundnessOracle::pinWindowsAndInputs:
/// non-plan branches resolve before speculating (window 0), plan sites
/// get their per-site window and stop at their reconvergence point.
void pinWindows(SpeculativeCpu &Cpu, const CompiledProgram &CP,
                const std::vector<uint32_t> &SiteWindows,
                uint32_t DepthMiss) {
  Cpu.setWindows({DepthMiss, DepthMiss});
  for (NodeId N = 0; N != CP.G.size(); ++N)
    if (CP.G.inst(N).Op == Opcode::Br)
      Cpu.setWindowOverride(CP.G.blockOf(N), CP.G.instIndexOf(N), 0);
  for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
    const SpecSite &S = CP.Plan.sites()[Site];
    uint32_t W = Site < SiteWindows.size() ? SiteWindows[Site] : 0;
    Cpu.setWindowOverride(CP.G.blockOf(S.Branch), CP.G.instIndexOf(S.Branch),
                          W);
    if (S.Ipdom != InvalidNode)
      Cpu.setSpeculationStop(CP.G.blockOf(S.Branch),
                             CP.G.instIndexOf(S.Branch),
                             CP.G.blockOf(S.Ipdom));
  }
}

/// Loads one input into \p M. A hoisted input scalar lives in its
/// register global in the patched program (the memory copy is dead), so
/// the register set takes precedence; everything else goes to memory.
void loadScalar(Machine &M, const Program &P, const std::string &Name,
                int64_t Value) {
  if (M.setRegGlobal(Name, Value))
    return;
  VarId V = P.findVar(Name);
  if (V != InvalidVar)
    M.setMemory(V, 0, Value);
}

void loadInputs(Machine &M, const Program &P,
                const std::vector<std::string> &InputScalars,
                const std::vector<std::pair<std::string, unsigned>> &Arrays,
                const std::vector<int64_t> &ScalarValues,
                const std::vector<std::vector<int64_t>> &ArrayValues) {
  for (size_t I = 0; I != InputScalars.size() && I != ScalarValues.size();
       ++I)
    loadScalar(M, P, InputScalars[I], ScalarValues[I]);
  for (size_t I = 0; I != Arrays.size() && I != ArrayValues.size(); ++I) {
    VarId V = P.findVar(Arrays[I].first);
    if (V != InvalidVar)
      M.setMemoryAll(V, ArrayValues[I]);
  }
}

/// The register a hoist moved \p Var into, found by name in the patched
/// program's register globals (the hoist appends one per hoisted var).
RegId hoistRegOf(const Program &Patched, const std::string &Name) {
  for (auto It = Patched.RegGlobals.rbegin();
       It != Patched.RegGlobals.rend(); ++It)
    if (It->Name == Name)
      return It->Reg;
  return InvalidReg;
}

} // namespace

std::optional<Violation> specai::checkRepair(
    const std::string &Source, const std::vector<std::string> &InputScalars,
    const std::vector<std::pair<std::string, unsigned>> &InputArrays,
    uint64_t Seed, const SoundnessOracleOptions &Opts, OracleStats &Stats) {
  DiagnosticEngine Diags;
  auto CP = compileSource(Source, Diags);
  if (!CP) {
    Violation V;
    V.Kind = ViolationKind::CompileError;
    V.Detail = "repair oracle: program failed to compile: " + Diags.str();
    return V;
  }

  MustHitOptions OU = repairAnalysisOptions(Opts);
  auto Make = [&](ViolationKind Kind, NodeId Node, std::string Detail) {
    Violation V;
    V.Kind = Kind;
    V.Strategy = OU.Strategy;
    V.Bounding = OU.Bounding;
    V.Node = Node;
    V.Detail = std::move(Detail);
    return V;
  };

  RepairOptions RO;
  RO.Analysis = OU;
  RO.Wcet = Opts.Wcet;
  RO.Fault = Opts.RFault;
  RepairResult Res = synthesizeRepairs(*CP, RO);
  ++Stats.RepairChecks;
  Stats.RepairReanalyses += Res.Reanalyses;
  Stats.Analyses += Res.Reanalyses;
  if (Res.BudgetExceeded)
    return std::nullopt; // A tripped budget voids the verdict, never fails.
  if (!Res.Error.empty())
    return Make(ViolationKind::RepairIncomplete, InvalidNode,
                "synthesis failed: " + Res.Error);
  if (Res.LeaksBefore == 0)
    return std::nullopt; // Nothing to mitigate; nothing to validate.
  ++Stats.RepairLeakyPrograms;

  if (!Res.Repaired) {
    // Architectural leaks (an uncacheable secret-indexed array, say) can
    // genuinely exceed the menu. Speculation-only leaks cannot: fencing
    // every wrong-path entry removes all speculative pollution, so a
    // failed synthesis there means the search or the menu is broken.
    if (Res.SpecOnlyLeaksBefore == Res.LeaksBefore)
      return Make(ViolationKind::RepairIncomplete, InvalidNode,
                  "all " + std::to_string(Res.LeaksBefore) +
                      " leaks are speculation-only (fences provably remove "
                      "them) but the synthesizer left " +
                      std::to_string(Res.LeaksAfter) + " unmitigated");
    return std::nullopt;
  }
  if (Res.LeaksAfter != 0)
    return Make(ViolationKind::RepairIncomplete, InvalidNode,
                "the synthesizer claims the repair proven but reports " +
                    std::to_string(Res.LeaksAfter) + " remaining leaks");
  ++Stats.RepairRepaired;
  Stats.RepairMitigations += Res.Applied.size();
  Stats.RepairCostTotal +=
      Res.WcetAfter > Res.WcetBefore ? Res.WcetAfter - Res.WcetBefore : 0;

  // (1) Independent re-analysis of the *emitted* artifacts. This is the
  // judge the FenceDropped and ClampIgnored faults cannot fool: it sees
  // only the patched program and the clamps that actually left the
  // synthesizer, not what the search believed it chose.
  auto CP2 = compileProgram(Res.Patched);
  if (!CP2)
    return Make(ViolationKind::RepairIncomplete, InvalidNode,
                "the emitted patched program failed to recompile");
  MustHitOptions O2 = OU;
  O2.SiteDepthClamp = Res.SiteClamps;
  MustHitReport R2 = runMustHitAnalysis(*CP2, O2);
  ++Stats.Analyses;
  if (!R2.Converged)
    return Make(ViolationKind::AnalysisDiverged, InvalidNode,
                "re-analysis of the patched program did not converge");
  if (R2.BudgetExceeded)
    return std::nullopt;
  SideChannelReport L2 = detectLeaks(*CP2, R2);
  if (!L2.Leaks.empty()) {
    const LeakSite &L = L2.Leaks.front();
    std::string Var = L.Var < CP2->P->Vars.size() ? CP2->P->Vars[L.Var].Name
                                                  : "<unknown>";
    return Make(ViolationKind::RepairLeakRemains, InvalidNode,
                "re-analysis of the emitted program still reports " +
                    std::to_string(L2.Leaks.size()) +
                    " leaks (first: secret-indexed access to '" + Var +
                    "' at patched node " + std::to_string(L.Node) + ")");
  }

  // (2) Cost claim: the reported WcetAfter must dominate an independent
  // estimate of the emitted artifacts (CostUnderreported echoes
  // WcetBefore, which any fence or preload on the worst path exceeds).
  ++Stats.RepairCostChecks;
  uint64_t W2 = estimateWcet(*CP2, R2, Opts.Wcet).WorstCaseCycles;
  if (W2 > Res.WcetAfter)
    return Make(ViolationKind::RepairCostClaim, InvalidNode,
                "the synthesizer reports a repaired WCET of " +
                    std::to_string(Res.WcetAfter) +
                    " cycles but the emitted program's independent bound "
                    "is " +
                    std::to_string(W2));

  const std::vector<uint32_t> SiteWindows =
      patchedWindows(*CP2, Res.SiteClamps, Opts.DepthMiss);
  Rng R(Seed * 0x9E3779B97F4A7C15ULL + 0x1BADB002ULL);

  // (3) Concrete revalidation, seed-derived inputs. Per round: a plain
  // architectural-equivalence pair (the repair must not change what the
  // program computes) and a cycle-charged speculative run of the patched
  // program whose committed cycles the reported bound must cover.
  for (unsigned Round = 0; Round != Opts.InputRounds; ++Round) {
    std::vector<int64_t> ScalarValues;
    std::vector<std::vector<int64_t>> ArrayValues;
    for (size_t I = 0; I != InputScalars.size(); ++I)
      ScalarValues.push_back(R.nextRange(-30, 30));
    for (const auto &[Name, Elems] : InputArrays) {
      std::vector<int64_t> Values;
      Values.reserve(Elems);
      for (unsigned E = 0; E != Elems; ++E)
        Values.push_back(R.nextRange(0, 127));
      ArrayValues.push_back(std::move(Values));
    }
    auto Stuck = [&](const char *What) {
      Violation V = Make(ViolationKind::RunStuck, InvalidNode,
                         std::string(What) + " exceeded " +
                             std::to_string(Opts.MaxSteps) +
                             " committed instructions");
      V.Run.ScalarValues = ScalarValues;
      V.Run.ArrayValues = ArrayValues;
      V.Run.SiteWindows = SiteWindows;
      return V;
    };

    Machine MOrig(*CP->P), MPatch(*CP2->P);
    loadInputs(MOrig, *CP->P, InputScalars, InputArrays, ScalarValues,
               ArrayValues);
    loadInputs(MPatch, *CP2->P, InputScalars, InputArrays, ScalarValues,
               ArrayValues);
    MOrig.run(Opts.MaxSteps);
    MPatch.run(Opts.MaxSteps);
    Stats.RepairReplayRuns += 2;
    if (!MOrig.halted() || !MPatch.halted())
      return Stuck("repair equivalence run");

    auto Diverged = [&](std::string Detail) {
      Violation V = Make(ViolationKind::RepairSemanticsChanged, InvalidNode,
                         std::move(Detail));
      V.Run.ScalarValues = ScalarValues;
      V.Run.ArrayValues = ArrayValues;
      V.Run.SiteWindows = SiteWindows;
      return V;
    };
    if (MOrig.returnValue() != MPatch.returnValue())
      return Diverged("the patched program returns " +
                      std::to_string(MPatch.returnValue()) +
                      " where the original returns " +
                      std::to_string(MOrig.returnValue()));
    std::vector<bool> Hoisted(CP->P->Vars.size(), false);
    for (const Mitigation &M : Res.Applied) {
      if (M.Kind != MitigationKind::Hoist || M.Var >= Hoisted.size() ||
          Hoisted[M.Var])
        continue;
      Hoisted[M.Var] = true;
      // A hoisted scalar's final value lives in its register global; the
      // original keeps it in memory. (An unsoundly hoisted *array* has no
      // single register meaning — its divergence surfaces through every
      // value computed from it, checked above and below.)
      if (CP->P->Vars[M.Var].NumElements != 1)
        continue;
      RegId Reg = hoistRegOf(*CP2->P, CP->P->Vars[M.Var].Name);
      if (Reg == InvalidReg)
        return Diverged("hoisted scalar '" + CP->P->Vars[M.Var].Name +
                        "' has no register global in the patched program");
      if (MOrig.readMemory(M.Var, 0) != MPatch.readReg(Reg))
        return Diverged(
            "hoisted scalar '" + CP->P->Vars[M.Var].Name + "' ends at " +
            std::to_string(MPatch.readReg(Reg)) +
            " in the patched register but " +
            std::to_string(MOrig.readMemory(M.Var, 0)) +
            " in the original memory");
    }
    for (VarId V = 0; V != CP->P->Vars.size(); ++V) {
      if (Hoisted[V])
        continue;
      for (uint64_t E = 0; E != CP->P->Vars[V].NumElements; ++E)
        if (MOrig.readMemory(V, E) != MPatch.readMemory(V, E))
          return Diverged("memory of '" + CP->P->Vars[V].Name + "[" +
                          std::to_string(E) + "]' ends at " +
                          std::to_string(MPatch.readMemory(V, E)) +
                          " in the patched program but " +
                          std::to_string(MOrig.readMemory(V, E)) +
                          " in the original");
    }

    // Cycle-charged speculative run of the patched program under the
    // clamped windows: the reported WcetAfter must cover its committed
    // cycles whenever the run's observed loop count is within the bound's
    // iteration assumption (estimateWcet is monotone in the bound).
    MemoryModel MM2(*CP2->P, Opts.Cache);
    StaticPredictor Pred(false);
    SpeculativeCpu Cpu(*CP2->P, MM2, Pred, Opts.Wcet.Timing,
                       /*EnableSpeculation=*/true);
    pinWindows(Cpu, *CP2, SiteWindows, Opts.DepthMiss);
    loadInputs(Cpu.machine(), *CP2->P, InputScalars, InputArrays,
               ScalarValues, ArrayValues);
    std::vector<uint64_t> ExecCounts(CP2->G.size(), 0);
    Cpu.setCommitHook([&](const Machine::StepResult &SR, uint64_t,
                          uint64_t) {
      ++ExecCounts[CP2->G.nodeAt(SR.Block, SR.InstIndex)];
    });
    CpuRunStats RunStats = Cpu.run(Opts.MaxSteps);
    ++Stats.RepairReplayRuns;
    if (!RunStats.Completed)
      return Stuck("repair cost replay");
    uint64_t MaxHeader = 0;
    for (const Loop &L : CP2->LI.loops())
      MaxHeader = std::max(MaxHeader, ExecCounts[L.Header]);
    if (MaxHeader <= Opts.Wcet.LoopIterationBound) {
      ++Stats.RepairCostChecks;
      if (RunStats.Cycles > Res.WcetAfter) {
        Violation V = Make(
            ViolationKind::RepairCostExceeded, InvalidNode,
            "a concrete run of the patched program committed " +
                std::to_string(RunStats.Cycles) +
                " cycles, above the reported repaired bound of " +
                std::to_string(Res.WcetAfter) + " (observed loop bound " +
                std::to_string(MaxHeader) + ")");
        V.Run.ScalarValues = ScalarValues;
        V.Run.ArrayValues = ArrayValues;
        V.Run.SiteWindows = SiteWindows;
        return V;
      }
    }
  }

  // (4) Secret-variant attacker replay on the patched program: with the
  // repair proven, every secret-indexed access is leak-free, so pooled
  // hit/miss outcomes must be uniform across secrets (same publics, same
  // script, same clamped windows).
  std::vector<size_t> SecretArrays;
  for (size_t I = 0; I != InputArrays.size(); ++I) {
    VarId V = CP2->P->findVar(InputArrays[I].first);
    if (V != InvalidVar && CP2->P->Vars[V].IsSecret)
      SecretArrays.push_back(I);
  }
  if (SecretArrays.empty())
    return std::nullopt;
  enum : uint8_t { SawHit = 1, SawMiss = 2 };
  for (unsigned Round = 0; Round != Opts.LeakRounds; ++Round) {
    RunSpec Spec;
    for (size_t I = 0; I != InputScalars.size(); ++I)
      Spec.ScalarValues.push_back(R.nextRange(-30, 30));
    for (const auto &[Name, Elems] : InputArrays) {
      std::vector<int64_t> Values;
      Values.reserve(Elems);
      for (unsigned E = 0; E != Elems; ++E)
        Values.push_back(R.nextRange(0, 127));
      Spec.ArrayValues.push_back(std::move(Values));
    }
    Spec.SiteWindows = SiteWindows;
    if (Round > 0) {
      for (unsigned B = 0; B != Opts.SampledScriptLength; ++B)
        Spec.Script.push_back(R.chance(1, 2));
      Spec.Fallback = R.chance(1, 2);
    }
    for (unsigned V = 0; V != Opts.LeakSecrets; ++V) {
      std::vector<std::vector<int64_t>> Variant;
      for (size_t S : SecretArrays) {
        std::vector<int64_t> Values;
        Values.reserve(InputArrays[S].second);
        for (unsigned E = 0; E != InputArrays[S].second; ++E)
          Values.push_back(R.nextRange(0, 255));
        Variant.push_back(std::move(Values));
      }
      Spec.SecretVariants.push_back(std::move(Variant));
    }

    std::vector<uint8_t> Obs(CP2->G.size(), 0);
    for (const std::vector<std::vector<int64_t>> &Variant :
         Spec.SecretVariants) {
      MemoryModel MM2(*CP2->P, Opts.Cache);
      ScriptedPredictor Pred(Spec.Script, Spec.Fallback);
      SpeculativeCpu Cpu(*CP2->P, MM2, Pred, Opts.Wcet.Timing,
                         /*EnableSpeculation=*/true);
      pinWindows(Cpu, *CP2, SiteWindows, Opts.DepthMiss);
      loadInputs(Cpu.machine(), *CP2->P, InputScalars, InputArrays,
                 Spec.ScalarValues, Spec.ArrayValues);
      for (size_t S = 0; S != SecretArrays.size() && S != Variant.size();
           ++S)
        Cpu.machine().setMemoryAll(
            CP2->P->findVar(InputArrays[SecretArrays[S]].first),
            Variant[S]);
      CpuRunStats RunStats = Cpu.run(Opts.MaxSteps);
      ++Stats.RepairReplayRuns;
      if (!RunStats.Completed) {
        Violation V = Make(ViolationKind::RunStuck, InvalidNode,
                           "repair attacker replay exceeded " +
                               std::to_string(Opts.MaxSteps) +
                               " committed instructions");
        V.Run = Spec;
        return V;
      }
      for (const SpeculativeCpu::CommittedAccess &A : Cpu.committedTrace())
        Obs[CP2->G.nodeAt(A.Access.Block, A.Access.InstIndex)] |=
            A.Hit ? SawHit : SawMiss;
    }
    for (NodeId Site : L2.LeakFreeSites)
      if (Obs[Site] == (SawHit | SawMiss)) {
        VarId Var = CP2->G.inst(Site).Var;
        Violation V = Make(
            ViolationKind::RepairReplayLeak, InvalidNode,
            "the repaired program is proven leak-free at the "
            "secret-indexed access to '" +
                (Var < CP2->P->Vars.size() ? CP2->P->Vars[Var].Name
                                           : std::string("<unknown>")) +
                "' (patched node " + std::to_string(Site) +
                ") but the attacker saw both hits and misses across " +
                std::to_string(Spec.SecretVariants.size()) +
                " secret variants with identical public inputs and script");
        V.Run = Spec;
        return V;
      }
  }
  return std::nullopt;
}
