//===- FuzzCampaign.h - Parallel differential fuzzing campaigns -*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives whole soundness-fuzzing campaigns: generate N programs from a
/// base seed, run the differential oracle on each, minimize any
/// counterexample to a replayable `.mc` file, and aggregate coverage
/// statistics. Programs fan out across the driver layer's work-stealing
/// pool (`parallelFor`, shared with BatchRunner); program i is generated
/// from seed Base+i and validated independently of every other program, so
/// campaign summaries are bit-identical for any `--jobs` value.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_FUZZ_FUZZCAMPAIGN_H
#define SPECAI_FUZZ_FUZZCAMPAIGN_H

#include "fuzz/ProgramGen.h"
#include "fuzz/SoundnessOracle.h"

#include <string>
#include <vector>

namespace specai {

/// Campaign configuration.
struct FuzzCampaignOptions {
  /// Base seed; program i uses Seed + i.
  uint64_t Seed = 1;
  unsigned Programs = 100;
  /// Worker threads (0 = hardware concurrency).
  unsigned Jobs = 0;
  ProgramGenOptions Gen;
  SoundnessOracleOptions Oracle;
  /// Replacement policies to validate each program under; the oracle runs
  /// once per (program, policy) with `Oracle.Cache` switched to the
  /// policy. The default keeps campaigns (and their golden summaries)
  /// bit-identical to the pre-policy fuzzer; `specai-fuzz --policy all`
  /// samples all three lattices of docs/DOMAINS.md. Policies invalid for
  /// the oracle geometry (PLRU over a non-power-of-two associativity) are
  /// skipped.
  std::vector<ReplacementPolicy> Policies = {ReplacementPolicy::Lru};
  /// Delta-debug counterexamples down to a minimal statement set.
  bool Minimize = true;
};

/// A minimized, replayable counterexample.
struct Counterexample {
  uint64_t ProgramSeed = 0;
  /// Replacement policy of the oracle run that found the violation (the
  /// campaign may sweep several per program).
  ReplacementPolicy Policy = ReplacementPolicy::Lru;
  /// Minimized source (equals OriginalSource when minimization is off or
  /// made no progress).
  std::string Source;
  std::string OriginalSource;
  Violation V;
  /// Rendered violation against the minimized program.
  std::string Pretty;
  /// Statements before/after minimization.
  size_t StmtsBefore = 0;
  size_t StmtsAfter = 0;
  /// Input bindings (names parallel to V.Run.ScalarValues/ArrayValues), so
  /// --replay can rebind the recorded values.
  std::vector<std::string> InputScalars;
  std::vector<std::pair<std::string, unsigned>> InputArrays;

  /// Renders a self-contained `.mc` file: `// replay-*` header comments
  /// (scenario, inputs, windows, oracle config) followed by the minimized
  /// source. `specai-fuzz --replay FILE` re-checks it.
  std::string replayFile(const SoundnessOracleOptions &O) const;
};

/// Aggregated campaign counters. Everything except Seconds is
/// deterministic in (Seed, Programs, options) and independent of Jobs.
struct FuzzCampaignStats {
  uint64_t Programs = 0;
  uint64_t CompileFailures = 0;
  uint64_t ViolationPrograms = 0;
  /// ViolationPrograms split by the oracle that fired (the kind of the
  /// first violation per program; see oracleOfViolation).
  uint64_t CacheViolations = 0;
  uint64_t WcetViolations = 0;
  uint64_t LeakViolations = 0;
  uint64_t LoweringViolations = 0;
  uint64_t RepairViolations = 0;
  OracleStats Oracle;
  double Seconds = 0;

  /// Deterministic multi-line summary (no timings).
  std::string summary() const;
};

/// Outcome of one campaign.
struct FuzzCampaignResult {
  FuzzCampaignStats Stats;
  /// In program order (slot-addressed), independent of scheduling.
  std::vector<Counterexample> Counterexamples;

  bool ok() const { return Counterexamples.empty(); }
};

/// Runs a campaign.
FuzzCampaignResult runFuzzCampaign(const FuzzCampaignOptions &Options);

/// Checks one generated program (exposed for tests and --replay):
/// compiles \p G and runs the oracle; on a violation optionally minimizes.
/// Returns nullopt when the program is clean. \p Stats accumulates
/// coverage either way.
std::optional<Counterexample>
checkGeneratedProgram(const GeneratedProgram &G,
                      const SoundnessOracleOptions &Oracle, bool Minimize,
                      OracleStats &Stats, uint64_t &CompileFailures);

} // namespace specai

#endif // SPECAI_FUZZ_FUZZCAMPAIGN_H
