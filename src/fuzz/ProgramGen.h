//===- ProgramGen.h - Random mini-C program generator -----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random generator of well-formed mini-C programs for the
/// differential soundness fuzzer. Programs are biased toward the
/// speculation-window edge cases the paper's soundness argument has to
/// survive:
///
///  - memory-conditioned branches (speculation sites), nested several deep,
///    so mispredictions stack and rollback states interleave;
///  - data-bounded `while` loops whose back-branch is itself a site, so a
///    misprediction can roll back mid-loop;
///  - dense straight-line load runs inside branch bodies, so a bounded
///    window can exhaust exactly at a load;
///  - secret- and data-indexed (statically unknown) array accesses, which
///    exercise the symbolic-instance transfer and wild speculative
///    indexing (indices wrap modulo the array length, total semantics);
///  - array and scalar stores on both branch sides, which exercise the
///    store-buffer asymmetry between committed and squashed stores.
///
/// Generation is deterministic from the seed: the same seed always yields
/// byte-identical source, so every counterexample replays from (seed,
/// config) alone. Statements are kept as separate chunks so the campaign's
/// counterexample minimizer can delta-debug at statement granularity.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_FUZZ_PROGRAMGEN_H
#define SPECAI_FUZZ_PROGRAMGEN_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace specai {

/// Shape knobs of the generator. Defaults produce small programs (tens of
/// IR nodes) that compile and analyze in well under a millisecond, so a
/// campaign gets through hundreds of programs per second.
struct ProgramGenOptions {
  unsigned MinArrays = 2;
  unsigned MaxArrays = 4;
  /// Array sizes are 64 * [1, MaxArrayLines] chars, i.e. whole cache lines.
  unsigned MaxArrayLines = 3;
  unsigned MinScalars = 2;
  unsigned MaxScalars = 4;
  unsigned MinStmts = 4;
  unsigned MaxStmts = 9;
  /// Maximum nesting of if/else and loops.
  unsigned MaxDepth = 3;
  /// Emit a `secret char key[64]` plus secret-indexed table lookups.
  bool SecretData = true;
  /// Emit data-dependent (statically unknown) array indices.
  bool WildIndexing = true;
  /// Emit data-bounded while loops (non-unrollable; their back branch is a
  /// speculation site).
  bool WhileLoops = true;
  /// Emit counted reg-for loops (fully unrolled by the lowering).
  bool CountedLoops = true;
  /// Deep mode: emit helper functions `int fN(int p)` before main — each
  /// may load globals, run counted and data-bounded loops, branch on
  /// memory, and call *earlier* helpers (so chains nest up to the helper
  /// count) — plus call statements in main. This is the workload the
  /// differential lowering oracle needs: calls inline under the default
  /// lowering but become per-function summaries under
  /// `LoweringMode::Summarize`. Off by default, and all deep-mode RNG
  /// draws are gated so existing seeds keep producing byte-identical
  /// programs (the golden-digest corpora depend on that).
  bool Functions = false;
  /// Helper-function count range (deep mode only).
  unsigned MinFunctions = 2;
  unsigned MaxFunctions = 4;
};

/// One generated program, decomposed for minimization and replay.
struct GeneratedProgram {
  uint64_t Seed = 0;
  /// Global declarations (arrays, scalars, secret data).
  std::string Decls;
  /// Top-level statements of main's body, each a complete (possibly
  /// multi-line) chunk. The minimizer removes chunks wholesale.
  std::vector<std::string> Stmts;
  /// Names of the memory scalars the oracle randomizes as program inputs.
  std::vector<std::string> InputScalars;
  /// Names and element counts of the char arrays (inputs too).
  std::vector<std::pair<std::string, unsigned>> Arrays;

  /// Assembles the full translation unit.
  std::string source() const;
};

/// The seeded generator. One instance produces one program; campaigns make
/// a fresh instance per (campaign seed + program index) so program i is
/// independent of how many programs ran before it on this worker.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed, ProgramGenOptions Options = {});

  GeneratedProgram generate();

private:
  std::string randomExpr(unsigned Depth);
  std::string randomCond();
  std::string randomIndex(const std::pair<std::string, unsigned> &Array);
  void emitStmt(std::vector<std::string> &Out, unsigned Depth,
                std::string Indent);
  std::string stmtBlock(unsigned Count, unsigned Depth, std::string Indent);
  std::string helperExpr();
  void emitHelpers();

  uint64_t Seed;
  ProgramGenOptions Options;
  Rng R;
  GeneratedProgram P;
  unsigned LoopId = 0;
  /// Helpers emitted so far (deep mode); main's call statements and later
  /// helpers may target f0..f(NumHelpers-1).
  unsigned NumHelpers = 0;
  /// Scalars currently serving as a while-loop bound; stores to them inside
  /// the loop body are forbidden so every generated loop provably
  /// terminates.
  std::vector<std::string> LoopBoundScalars;
};

} // namespace specai

#endif // SPECAI_FUZZ_PROGRAMGEN_H
