//===- FuzzCampaign.cpp ---------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzCampaign.h"

#include "driver/BatchRunner.h"
#include "fuzz/LoweringOracle.h"
#include "fuzz/RepairOracle.h"
#include "support/Timer.h"

#include <algorithm>

using namespace specai;

namespace {

const char *boundingName(BoundingMode B) {
  return B == BoundingMode::Fixed ? "fixed" : "dynamic";
}

/// Runs the oracle over \p G's source; returns the first violation.
std::optional<Violation> oracleCheck(const GeneratedProgram &G,
                                     const SoundnessOracleOptions &Opts,
                                     OracleStats &Stats, bool &CompiledOk) {
  DiagnosticEngine Diags;
  auto CP = compileSource(G.source(), Diags);
  CompiledOk = CP != nullptr;
  if (!CP) {
    Violation V;
    V.Kind = ViolationKind::CompileError;
    V.Detail = Diags.str();
    return V;
  }
  // The classic differential oracles (cache / wcet / leak) share one
  // SoundnessOracle sweep; skip constructing it entirely when only the
  // lowering diff is selected (it compiles its own program pair).
  if (Opts.Oracles & OracleAll) {
    SoundnessOracle Oracle(*CP, G.InputScalars, G.Arrays, Opts);
    OracleResult R = Oracle.run(G.Seed);
    Stats += R.Stats;
    if (!R.Violations.empty())
      return R.Violations.front();
  }
  if (Opts.Oracles & OracleLowering)
    if (std::optional<Violation> V = checkLoweringDiff(
            G.source(), G.InputScalars, G.Arrays, G.Seed, Opts, Stats))
      return V;
  if (Opts.Oracles & OracleRepair)
    return checkRepair(G.source(), G.InputScalars, G.Arrays, G.Seed, Opts,
                       Stats);
  return std::nullopt;
}

/// Greedy statement-level delta debugging: repeatedly drop any top-level
/// statement chunk whose removal preserves *some* oracle violation. The
/// result still compiles and still fails, typically with 1-3 statements
/// left — small enough to read the abstract states by hand.
GeneratedProgram minimize(const GeneratedProgram &G,
                          const SoundnessOracleOptions &Opts,
                          OracleStats &Stats) {
  GeneratedProgram Cur = G;
  bool Progress = true;
  while (Progress && Cur.Stmts.size() > 1) {
    Progress = false;
    for (size_t I = 0; I != Cur.Stmts.size(); ++I) {
      GeneratedProgram Cand = Cur;
      Cand.Stmts.erase(Cand.Stmts.begin() + static_cast<ptrdiff_t>(I));
      bool CompiledOk = false;
      if (oracleCheck(Cand, Opts, Stats, CompiledOk) && CompiledOk) {
        Cur = std::move(Cand);
        Progress = true;
        break;
      }
    }
  }
  return Cur;
}

} // namespace

std::optional<Counterexample>
specai::checkGeneratedProgram(const GeneratedProgram &G,
                              const SoundnessOracleOptions &Oracle,
                              bool Minimize, OracleStats &Stats,
                              uint64_t &CompileFailures) {
  bool CompiledOk = false;
  std::optional<Violation> V = oracleCheck(G, Oracle, Stats, CompiledOk);
  if (!CompiledOk)
    ++CompileFailures;
  if (!V)
    return std::nullopt;

  Counterexample CE;
  CE.ProgramSeed = G.Seed;
  CE.Policy = Oracle.Cache.Policy;
  CE.OriginalSource = G.source();
  CE.StmtsBefore = G.Stmts.size();

  GeneratedProgram Min = G;
  if (Minimize && CompiledOk)
    Min = minimize(G, Oracle, Stats);
  CE.StmtsAfter = Min.Stmts.size();
  CE.Source = Min.source();
  CE.InputScalars = Min.InputScalars;
  CE.InputArrays = Min.Arrays;
  CE.V = *V;

  // When minimization shrank the program, re-derive the violation against
  // it so node ids and the recorded scenario match the source we ship; an
  // unshrunk program keeps the original violation (no duplicate sweep).
  if (Min.Stmts.size() != G.Stmts.size()) {
    bool MinCompiledOk = false;
    if (std::optional<Violation> MinV =
            oracleCheck(Min, Oracle, Stats, MinCompiledOk);
        MinV && MinCompiledOk)
      CE.V = *MinV;
  }
  if (CompiledOk) {
    DiagnosticEngine Diags;
    if (auto CP = compileSource(CE.Source, Diags))
      CE.Pretty = CE.V.str(*CP);
  }
  if (CE.Pretty.empty())
    CE.Pretty = violationKindName(CE.V.Kind);
  return CE;
}

FuzzCampaignResult specai::runFuzzCampaign(const FuzzCampaignOptions &Options) {
  FuzzCampaignResult Result;
  Result.Stats.Programs = Options.Programs;

  struct Slot {
    OracleStats Stats;
    uint64_t CompileFailures = 0;
    std::optional<Counterexample> CE;
  };
  std::vector<Slot> Slots(Options.Programs);

  Timer Total;
  parallelFor(Options.Jobs, Options.Programs, [&](size_t I) {
    ProgramGen Gen(Options.Seed + I, Options.Gen);
    GeneratedProgram G = Gen.generate();
    // One oracle sweep per requested replacement policy, stopping at the
    // first counterexample (each policy has its own abstract lattice but
    // the program and inputs are shared). A compile failure is
    // policy-independent, so it is counted once and ends the loop.
    for (ReplacementPolicy P : Options.Policies) {
      SoundnessOracleOptions Oracle = Options.Oracle;
      Oracle.Cache = Oracle.Cache.withPolicy(P);
      if (!Oracle.Cache.isValid())
        continue;
      Slots[I].CE =
          checkGeneratedProgram(G, Oracle, Options.Minimize, Slots[I].Stats,
                                Slots[I].CompileFailures);
      if (Slots[I].CE || Slots[I].CompileFailures > 0)
        break;
    }
  });
  Result.Stats.Seconds = Total.seconds();

  // Slot-ordered aggregation: identical whatever the job count.
  for (Slot &S : Slots) {
    Result.Stats.Oracle += S.Stats;
    Result.Stats.CompileFailures += S.CompileFailures;
    if (S.CE) {
      ++Result.Stats.ViolationPrograms;
      switch (oracleOfViolation(S.CE->V.Kind)) {
      case OracleCache:
        ++Result.Stats.CacheViolations;
        break;
      case OracleWcet:
        ++Result.Stats.WcetViolations;
        break;
      case OracleLeak:
        ++Result.Stats.LeakViolations;
        break;
      case OracleLowering:
        ++Result.Stats.LoweringViolations;
        break;
      case OracleRepair:
        ++Result.Stats.RepairViolations;
        break;
      default: // Infrastructure kinds count toward the total only.
        break;
      }
      Result.Counterexamples.push_back(std::move(*S.CE));
    }
  }
  return Result;
}

std::string FuzzCampaignStats::summary() const {
  std::string Out;
  Out += "programs:            " + std::to_string(Programs) + "\n";
  Out += "compile failures:    " + std::to_string(CompileFailures) + "\n";
  Out += "analyses:            " + std::to_string(Oracle.Analyses) + "\n";
  Out += "concrete runs:       " + std::to_string(Oracle.ConcreteRuns) + "\n";
  Out += "speculative windows: " + std::to_string(Oracle.SpeculativeWindows) +
         "\n";
  Out += "committed checks:    " + std::to_string(Oracle.CommittedChecks) +
         "\n";
  Out += "speculative checks:  " + std::to_string(Oracle.SpeculativeChecks) +
         "\n";
  Out += "wcet checks:         " + std::to_string(Oracle.WcetChecks) + "\n";
  Out += "leak families:       " + std::to_string(Oracle.LeakFamilies) +
         "\n";
  Out += "leak runs:           " + std::to_string(Oracle.LeakRuns) + "\n";
  Out += "leak site checks:    " + std::to_string(Oracle.LeakSiteChecks) +
         "\n";
  // Lowering-diff lines appear only when that oracle actually ran, so
  // classic campaign summaries (and the pinned golden artifacts diffed
  // against them) stay byte-identical.
  if (Oracle.LoweringDiffs > 0) {
    Out += "lowering diffs:      " + std::to_string(Oracle.LoweringDiffs) +
           "\n";
    Out += "lowering loc checks: " + std::to_string(Oracle.LoweringLocChecks) +
           "\n";
    Out += "lowering wcet checks: " +
           std::to_string(Oracle.LoweringWcetChecks) + "\n";
    Out += "lowering concrete checks: " +
           std::to_string(Oracle.LoweringConcreteChecks) + "\n";
    Out += "lowering precision deltas: must-hit sum-only " +
           std::to_string(Oracle.LoweringSumOnlyMustHits) +
           " / unrolled-only " +
           std::to_string(Oracle.LoweringUnrolledOnlyMustHits) +
           ", wcet tighter " + std::to_string(Oracle.LoweringWcetTighter) +
           " / looser " + std::to_string(Oracle.LoweringWcetLooser) +
           ", leak " + std::to_string(Oracle.LoweringLeakDeltas) + "\n";
  }
  // Repair-oracle lines are gated the same way: classic campaign
  // summaries stay byte-identical unless `--oracle repair` actually ran.
  if (Oracle.RepairChecks > 0) {
    Out += "repair checks:       " + std::to_string(Oracle.RepairChecks) +
           "\n";
    Out += "repair leaky/repaired: " +
           std::to_string(Oracle.RepairLeakyPrograms) + "/" +
           std::to_string(Oracle.RepairRepaired) + "\n";
    Out += "repair mitigations:  " +
           std::to_string(Oracle.RepairMitigations) + " (total cost " +
           std::to_string(Oracle.RepairCostTotal) + ")\n";
    Out += "repair reanalyses:   " +
           std::to_string(Oracle.RepairReanalyses) + "\n";
    Out += "repair replay runs:  " +
           std::to_string(Oracle.RepairReplayRuns) + "\n";
    Out += "repair cost checks:  " +
           std::to_string(Oracle.RepairCostChecks) + "\n";
  }
  Out += "violations:          " + std::to_string(ViolationPrograms) +
         " (cache " + std::to_string(CacheViolations) + ", wcet " +
         std::to_string(WcetViolations) + ", leak " +
         std::to_string(LeakViolations);
  if (Oracle.LoweringDiffs > 0)
    Out += ", lowering " + std::to_string(LoweringViolations);
  if (Oracle.RepairChecks > 0)
    Out += ", repair " + std::to_string(RepairViolations);
  Out += ")\n";
  return Out;
}

std::string
Counterexample::replayFile(const SoundnessOracleOptions &O) const {
  std::string Out;
  Out += "// specai-fuzz counterexample (replay with: specai-fuzz --replay "
         "FILE)\n";
  Out += "// replay-kind: ";
  Out += violationKindName(V.Kind);
  // Which differential oracle produced this counterexample; --replay
  // re-enables exactly that oracle. Infrastructure kinds (stuck runs,
  // divergence) map to no oracle: tag them by the scenario shape — a
  // recorded secret family needs the leak oracle on replay (the oracle
  // only builds its non-speculative baseline, which runLeakFamily
  // requires, under that mask), anything else re-checks under cache.
  unsigned Oracle = oracleOfViolation(V.Kind);
  if (Oracle == 0) {
    if ((O.Oracles & OracleAll) == 0 && (O.Oracles & OracleLowering))
      Oracle = OracleLowering;
    else if ((O.Oracles & OracleAll) == 0 && (O.Oracles & OracleRepair))
      Oracle = OracleRepair;
    else
      Oracle = V.Run.SecretVariants.empty() ? OracleCache : OracleLeak;
  }
  Out += "\n// replay-oracle: ";
  Out += oracleKindName(Oracle);
  Out += "\n// replay-seed: ";
  Out += std::to_string(ProgramSeed);
  Out += "\n// replay-strategy: ";
  Out += mergeStrategyName(V.Strategy);
  Out += "\n// replay-bounding: ";
  Out += boundingName(V.Bounding);
  Out += "\n";
  Out += "// replay-cache: lines=" + std::to_string(O.Cache.NumLines) +
         ",assoc=" + std::to_string(O.Cache.Associativity) +
         ",linesize=" + std::to_string(O.Cache.LineSize) + "\n";
  // Pre-policy replay files carry no policy line; emit one only for
  // non-LRU runs so LRU artifacts stay byte-identical.
  if (Policy != ReplacementPolicy::Lru) {
    Out += "// replay-policy: ";
    Out += replacementPolicyName(Policy);
    Out += "\n";
  }
  Out += "// replay-depths: miss=" + std::to_string(O.DepthMiss) +
         ",hit=" + std::to_string(O.DepthHit) + "\n";
  Out += "// replay-shadow: ";
  Out += O.UseShadow ? "on" : "off";
  Out += "\n";
  if (Oracle & OracleLowering) {
    // Lowering diffs re-derive their concrete inputs from replay-seed;
    // these lines pin the summarize mode (vs. the implicit inline-unroll
    // reference) and any injected fault so --replay rebuilds the exact
    // diff that produced this counterexample.
    Out += "// replay-lowering: summarize\n";
    if (O.LFault != LoweringFault::None) {
      Out += "// replay-lowering-fault: ";
      Out += loweringFaultName(O.LFault);
      Out += "\n";
    }
  }
  if (Oracle & OracleRepair) {
    // The repair oracle likewise re-derives everything from replay-seed;
    // these lines pin the synthesize-and-revalidate mode and any injected
    // synthesizer fault.
    Out += "// replay-repair: synthesize\n";
    if (O.RFault != RepairFault::None) {
      Out += "// replay-repair-fault: ";
      Out += repairFaultName(O.RFault);
      Out += "\n";
    }
  }
  if (Oracle == OracleWcet) {
    // The WCET verdict depends on the timing model; pin it so the
    // replayed comparison is the recorded one. (No loop bound here: the
    // oracle always checks against the run's observed loop-header
    // executions.)
    Out += "// replay-wcet: hit=" + std::to_string(O.Wcet.Timing.HitLatency) +
           ",miss=" + std::to_string(O.Wcet.Timing.MissLatency) +
           ",alu=" + std::to_string(O.Wcet.Timing.AluLatency) +
           ",branch=" + std::to_string(O.Wcet.Timing.BranchResolveLatency) +
           "\n";
  }
  if (O.Fault != EngineFault::None) {
    Out += "// replay-fault: ";
    Out += O.Fault == EngineFault::SkipSpecSeed ? "skip-spec-seed"
                                                : "skip-rollback";
    Out += "\n";
  }
  if (O.VFault != VerdictFault::None) {
    // The counterexample came from a verdict-fault-injected (self-test)
    // run; replay against the same deliberately broken verdict layer.
    Out += "// replay-verdict-fault: ";
    Out += verdictFaultName(O.VFault);
    Out += "\n";
  }
  if (!V.Run.PredictorName.empty()) {
    Out += "// replay-predictor: " + V.Run.PredictorName + "\n";
  } else {
    Out += "// replay-script: ";
    if (V.Run.Script.empty())
      Out += "-"; // Placeholder so the parser's tokens stay aligned.
    for (bool B : V.Run.Script)
      Out += B ? 'T' : 'N';
    Out += V.Run.Fallback ? " fallback=T" : " fallback=N";
    Out += "\n";
  }
  Out += "// replay-scalars:";
  for (size_t I = 0; I != V.Run.ScalarValues.size(); ++I) {
    Out += " ";
    Out += I < InputScalars.size() ? InputScalars[I] : "?";
    Out += "=";
    Out += std::to_string(V.Run.ScalarValues[I]);
  }
  Out += "\n";
  for (size_t I = 0; I != V.Run.ArrayValues.size(); ++I) {
    Out += "// replay-array: ";
    Out += I < InputArrays.size() ? InputArrays[I].first : "?";
    for (int64_t E : V.Run.ArrayValues[I]) {
      Out += " ";
      Out += std::to_string(E);
    }
    Out += "\n";
  }
  Out += "// replay-windows:";
  for (uint32_t W : V.Run.SiteWindows) {
    Out += " ";
    Out += std::to_string(W);
  }
  Out += "\n";
  // Leak-attacker families: one line per (variant, secret array), in the
  // oracle's secret-array order (InputArrays order filtered to `secret`
  // variables, which is deterministic); --replay rebuilds SecretVariants
  // by grouping lines on the v<index> tag.
  for (size_t Variant = 0; Variant != V.Run.SecretVariants.size();
       ++Variant) {
    for (size_t S = 0; S != V.Run.SecretVariants[Variant].size(); ++S) {
      Out += "// replay-secret: v" + std::to_string(Variant);
      for (int64_t E : V.Run.SecretVariants[Variant][S]) {
        Out += " ";
        Out += std::to_string(E);
      }
      Out += "\n";
    }
  }
  Out += "// replay-detail: " + Pretty + "\n";
  Out += Source;
  return Out;
}
