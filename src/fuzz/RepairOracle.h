//===- RepairOracle.h - Differential repair-synthesis oracle ----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind `specai-fuzz --oracle repair`: pushes a
/// generated program through the mitigation synthesizer
/// (repair/MitigationSynth.h) and validates the *emitted* artifacts — the
/// patched program and its per-site clamps — against judges the
/// synthesizer does not control:
///
///  1. an independent re-analysis of the emitted program under the
///     emitted clamps must report zero leaks whenever the synthesizer
///     claims the repair proven (RepairLeakRemains otherwise);
///  2. concrete architectural equivalence: the patched program must
///     compute the original's return value and final memory (hoisted
///     scalars compared register-against-memory) on seed-derived inputs
///     (RepairSemanticsChanged);
///  3. secret-variant attacker families replayed on the patched program
///     under the concrete SpeculativeCpu — windows pinned to the clamped
///     depths the re-analysis assumed — must observe uniform hit/miss
///     outcomes at every proven-leak-free site (RepairReplayLeak);
///  4. the reported WcetAfter must dominate both an independent
///     estimateWcet of the emitted artifacts (RepairCostClaim) and the
///     committed cycles of every concrete replay whose observed loop
///     count the bound covers (RepairCostExceeded).
///
/// Programs whose every leak is speculation-only must be repairable —
/// fencing each wrong-path entry provably removes speculative pollution —
/// so a failed synthesis there is itself a violation (RepairIncomplete).
///
/// Like the lowering oracle, all concrete inputs derive from the program
/// seed alone, so `--replay` rebuilds the exact runs from the recorded
/// `// replay-seed` header.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_FUZZ_REPAIRORACLE_H
#define SPECAI_FUZZ_REPAIRORACLE_H

#include "fuzz/SoundnessOracle.h"
#include "repair/MitigationSynth.h"

#include <optional>
#include <string>
#include <vector>

namespace specai {

/// Synthesizes a repair for \p Source and revalidates the emitted
/// artifacts; returns the first violation. The analysis runs under
/// \p Opts' first merge strategy with Fixed bounding (so every unclamped
/// site's assumed depth is exactly DepthMiss, the depth the concrete
/// replays pin), and the synthesizer inherits Opts.RFault for the
/// self-test ladder. Deterministic in (Source, inputs, Seed, Opts).
std::optional<Violation> checkRepair(
    const std::string &Source, const std::vector<std::string> &InputScalars,
    const std::vector<std::pair<std::string, unsigned>> &InputArrays,
    uint64_t Seed, const SoundnessOracleOptions &Opts, OracleStats &Stats);

} // namespace specai

#endif // SPECAI_FUZZ_REPAIRORACLE_H
