//===- LoweringOracle.cpp -------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/LoweringOracle.h"

#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"
#include "support/Rng.h"

#include <algorithm>
#include <map>

using namespace specai;

namespace {

/// Source locations key the diff: the one rolled/summarized instance of an
/// access and its N unrolled/inlined copies share exactly their SourceLoc.
uint64_t locKey(SourceLoc Loc) {
  return (static_cast<uint64_t>(Loc.Line) << 32) | Loc.Col;
}

SourceLoc locOf(uint64_t Key) {
  return SourceLoc(static_cast<uint32_t>(Key >> 32),
                   static_cast<uint32_t>(Key));
}

/// Per-location aggregate over one lowering's reachable access instances.
/// A location counts as must-hit (resp. must-miss) only when *every*
/// instance at it is: a line with two accesses, one mixed, proves nothing.
struct LocAgg {
  bool AllMustHit = true;
  bool AllMustMiss = true;
  NodeId Rep = InvalidNode; // first instance, for violation rendering
};

void scanAccesses(const FlatCfg &G, const MustHitReport &R,
                  std::map<uint64_t, LocAgg> &Out) {
  for (NodeId N = 0; N != G.size(); ++N) {
    const Instruction &I = G.inst(N);
    if (!I.accessesMemory() || !I.Loc.isValid() || !R.Reachable[N])
      continue;
    LocAgg &A = Out[locKey(I.Loc)];
    if (A.Rep == InvalidNode)
      A.Rep = N;
    if (!R.MustHit[N])
      A.AllMustHit = false;
    if (N >= R.Classes.size() ||
        R.Classes[N] != CacheDomain::AccessClass::MustMiss)
      A.AllMustMiss = false;
  }
}

/// Proven-leak-free locations of one side-channel report: advertised
/// leak-free locations minus any location that also hosts a leak site.
std::vector<uint64_t> leakFreeLocs(const SideChannelReport &L) {
  std::vector<uint64_t> Free;
  for (SourceLoc Loc : L.LeakFreeLocs)
    if (Loc.isValid())
      Free.push_back(locKey(Loc));
  std::sort(Free.begin(), Free.end());
  Free.erase(std::unique(Free.begin(), Free.end()), Free.end());
  for (const LeakSite &S : L.Leaks)
    if (S.Loc.isValid()) {
      auto It =
          std::lower_bound(Free.begin(), Free.end(), locKey(S.Loc));
      if (It != Free.end() && *It == locKey(S.Loc))
        Free.erase(It);
    }
  return Free;
}

std::vector<uint64_t> leakLocs(const SideChannelReport &L) {
  std::vector<uint64_t> Out;
  for (const LeakSite &S : L.Leaks)
    if (S.Loc.isValid())
      Out.push_back(locKey(S.Loc));
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

/// One (strategy, bounding) analysis pair, kept whole through the concrete
/// phase: the summarize must-hit claims drive the concrete containment
/// check, and both reports price per-run WCET bounds (memoized per
/// observed loop bound, as in SoundnessOracle::wcetBoundFor).
struct PairData {
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  BoundingMode Bounding = BoundingMode::Fixed;
  MustHitReport Ru, Rs;
  std::vector<uint64_t> SumMustHitLocs; // sorted
  std::vector<std::pair<uint32_t, uint64_t>> WcetMemoU, WcetMemoS;
};

uint64_t wcetBoundFor(const CompiledProgram &CP, const MustHitReport &R,
                      std::vector<std::pair<uint32_t, uint64_t>> &Memo,
                      uint32_t LoopBound, const WcetOptions &Base) {
  for (const auto &[Bound, Cycles] : Memo)
    if (Bound == LoopBound)
      return Cycles;
  WcetOptions WO = Base;
  WO.LoopIterationBound = LoopBound;
  uint64_t Cycles = estimateWcet(CP, R, WO).WorstCaseCycles;
  Memo.push_back({LoopBound, Cycles});
  return Cycles;
}

} // namespace

std::optional<Violation> specai::checkLoweringDiff(
    const std::string &Source, const std::vector<std::string> &InputScalars,
    const std::vector<std::pair<std::string, unsigned>> &InputArrays,
    uint64_t Seed, const SoundnessOracleOptions &Opts, OracleStats &Stats) {
  DiagnosticEngine DiagsU, DiagsS;
  auto CPu = compileSource(Source, DiagsU);
  LoweringOptions SumLowering;
  SumLowering.Mode = LoweringMode::Summarize;
  auto CPs = compileSource(Source, DiagsS, SumLowering);
  if (!CPu || !CPs) {
    // One lowering accepting a program the other rejects is itself a
    // lowering bug; surface it instead of silently skipping the program.
    Violation V;
    V.Kind = ViolationKind::CompileError;
    V.Detail = std::string("lowering diff: ") +
               (!CPu ? "inline-unroll" : "summarize") +
               " lowering failed to compile: " +
               (!CPu ? DiagsU : DiagsS).str();
    return V;
  }

  auto Make = [](ViolationKind Kind, MergeStrategy S, BoundingMode B,
                 NodeId Node, std::string Detail) {
    Violation V;
    V.Kind = Kind;
    V.Strategy = S;
    V.Bounding = B;
    V.Node = Node;
    V.Detail = std::move(Detail);
    return V;
  };

  std::vector<PairData> Pairs;
  for (MergeStrategy S : Opts.Strategies) {
    for (BoundingMode B : Opts.Boundings) {
      MustHitOptions OU;
      OU.Cache = Opts.Cache;
      OU.Speculative = true;
      OU.UseShadow = Opts.UseShadow;
      OU.Strategy = S;
      OU.DepthMiss = Opts.DepthMiss;
      OU.DepthHit = Opts.DepthHit;
      OU.Bounding = B;
      OU.IntraJobs = Opts.IntraJobs;
      MustHitOptions OS = OU;
      // The injected fault breaks the summarize side only; the unrolled
      // side stays the healthy reference the diff measures against.
      OS.LFault = Opts.LFault;

      PairData P;
      P.Strategy = S;
      P.Bounding = B;
      P.Ru = runMustHitAnalysis(*CPu, OU);
      P.Rs = runMustHitAnalysis(*CPs, OS);
      Stats.Analyses += 2;
      ++Stats.LoweringDiffs;
      if (!P.Ru.Converged || !P.Rs.Converged)
        return Make(ViolationKind::AnalysisDiverged, S, B, InvalidNode,
                    std::string("lowering diff: the ") +
                        (!P.Ru.Converged ? "unrolled" : "summarize") +
                        " fixpoint did not converge");

      // (1) Classification conflict. Per location, both lowerings verdict
      // the same committed accesses; all-instances must-hit on one side
      // against all-instances must-miss on the other is a contradiction.
      // One-sided must-hits are precision deltas, counted for the bench
      // harness: summaries legitimately out-prove inline flows through
      // rolled loops in speculative windows (idempotent call pressure vs
      // per-lap MUST re-aging), and unrolling legitimately out-proves
      // rolled loops on constant-folded counted indices.
      std::map<uint64_t, LocAgg> SumLocs, UnrLocs;
      scanAccesses(CPs->G, P.Rs, SumLocs);
      for (size_t C = 0;
           C != CPs->Callees.size() && C != P.Rs.CalleeReports.size(); ++C)
        scanAccesses(CPs->Callees[C]->G, *P.Rs.CalleeReports[C], SumLocs);
      scanAccesses(CPu->G, P.Ru, UnrLocs);

      for (const auto &[Key, SA] : SumLocs) {
        if (SA.AllMustHit)
          P.SumMustHitLocs.push_back(Key);
        auto It = UnrLocs.find(Key);
        if (It == UnrLocs.end())
          continue; // e.g. a zero-trip counted-loop body, deleted by
                    // unrolling: no shared instance to compare.
        const LocAgg &UA = It->second;
        ++Stats.LoweringLocChecks;
        if (SA.AllMustHit && UA.AllMustMiss)
          return Make(ViolationKind::LoweringMustHitConflict, S, B, UA.Rep,
                      "summarize proves the access at line " +
                          locOf(Key).str() +
                          " must-hit, but inline-unroll proves every "
                          "instance must-miss");
        if (SA.AllMustMiss && UA.AllMustHit)
          return Make(ViolationKind::LoweringMustHitConflict, S, B, UA.Rep,
                      "inline-unroll proves the access at line " +
                          locOf(Key).str() +
                          " must-hit, but summarize proves every "
                          "instance must-miss");
        if (SA.AllMustHit && !UA.AllMustHit)
          ++Stats.LoweringSumOnlyMustHits;
        else if (UA.AllMustHit && !SA.AllMustHit)
          ++Stats.LoweringUnrolledOnlyMustHits;
      }

      // (2) Abstract WCET bounds, recorded as precision deltas only. The
      // real soundness claim — each bound dominates every concrete run —
      // is checked cycle-for-cycle in the concrete phase below.
      WcetOptions WO = Opts.Wcet;
      uint64_t Wu = estimateWcet(*CPu, P.Ru, WO).WorstCaseCycles;
      uint64_t Ws = estimateWcet(*CPs, P.Rs, WO).WorstCaseCycles;
      ++Stats.LoweringWcetChecks;
      if (Ws < Wu)
        ++Stats.LoweringWcetTighter;
      else if (Ws > Wu)
        ++Stats.LoweringWcetLooser;

      // (3) Leak-verdict deltas (counted, not flagged): must-hit precision
      // flows straight into which accesses are Mixed and hence leakable,
      // so the leak sets inherit the two-sided precision asymmetry.
      SideChannelReport LeakU = detectLeaks(*CPu, P.Ru);
      SideChannelReport LeakS = detectLeaks(*CPs, P.Rs);
      std::vector<uint64_t> FreeU = leakFreeLocs(LeakU);
      std::vector<uint64_t> FreeS = leakFreeLocs(LeakS);
      std::vector<uint64_t> LocsU = leakLocs(LeakU);
      std::vector<uint64_t> LocsS = leakLocs(LeakS);
      Stats.LoweringLocChecks += FreeU.size() + FreeS.size();
      for (uint64_t Key : FreeS)
        if (std::binary_search(LocsU.begin(), LocsU.end(), Key))
          ++Stats.LoweringLeakDeltas;
      for (uint64_t Key : FreeU)
        if (std::binary_search(LocsS.begin(), LocsS.end(), Key))
          ++Stats.LoweringLeakDeltas;

      std::sort(P.SumMustHitLocs.begin(), P.SumMustHitLocs.end());
      Pairs.push_back(std::move(P));
    }
  }

  // Concrete ground truth over the unrolled program (the executable
  // semantics both lowerings share): (a) committed runs must hit wherever
  // the summarize analysis claims must-hit, and (b) each run's committed
  // cycles must respect both lowerings' estimateWcet bounds at the run's
  // observed loop bound. Inputs derive from the seed alone, so `--replay`
  // reproduces them from the recorded `// replay-seed` header.
  Rng R(Seed * 0x9E3779B97F4A7C15ULL + 0x5EEDF00DULL);
  for (unsigned Round = 0; Round != Opts.InputRounds; ++Round) {
    MemoryModel MM(*CPu->P, Opts.Cache);
    StaticPredictor Pred(false);
    SpeculativeCpu Cpu(*CPu->P, MM, Pred, Opts.Wcet.Timing,
                       /*EnableSpeculation=*/false);
    std::vector<int64_t> ScalarValues;
    std::vector<std::vector<int64_t>> ArrayValues;
    for (size_t I = 0; I != InputScalars.size(); ++I) {
      ScalarValues.push_back(R.nextRange(-30, 30));
      Cpu.machine().setMemory(CPu->P->findVar(InputScalars[I]), 0,
                              ScalarValues.back());
    }
    for (const auto &[Name, Elems] : InputArrays) {
      std::vector<int64_t> Values;
      Values.reserve(Elems);
      for (unsigned E = 0; E != Elems; ++E)
        Values.push_back(R.nextRange(0, 127));
      Cpu.machine().setMemoryAll(CPu->P->findVar(Name), Values);
      ArrayValues.push_back(std::move(Values));
    }

    std::vector<uint64_t> ExecCounts(CPu->G.size(), 0);
    Cpu.setCommitHook(
        [&](const Machine::StepResult &SR, uint64_t, uint64_t) {
          ++ExecCounts[CPu->G.nodeAt(SR.Block, SR.InstIndex)];
        });

    std::optional<Violation> Found;
    Cpu.setAccessHook([&](const AccessEvent &E, bool Speculative,
                          const CacheSim &Cache) {
      if (Found || Speculative)
        return;
      NodeId N = CPu->G.nodeAt(E.Block, E.InstIndex);
      SourceLoc Loc = CPu->G.inst(N).Loc;
      if (!Loc.isValid())
        return;
      uint64_t Key = locKey(Loc);
      const PairData *Claimed = nullptr;
      for (const PairData &P : Pairs)
        if (std::binary_search(P.SumMustHitLocs.begin(),
                               P.SumMustHitLocs.end(), Key)) {
          Claimed = &P;
          break;
        }
      if (!Claimed)
        return;
      ++Stats.LoweringConcreteChecks;
      if (!Cache.contains(MM.blockOf(E.Var, E.Element))) {
        Violation V = Make(ViolationKind::LoweringConcreteMustHitMissed,
                           Claimed->Strategy, Claimed->Bounding, N,
                           "summarize claims the access at line " +
                               locOf(Key).str() +
                               " must-hit, but a committed unrolled run "
                               "missed there");
        V.Run.ScalarValues = ScalarValues;
        V.Run.ArrayValues = ArrayValues;
        Found = std::move(V);
      }
    });

    CpuRunStats RunStats = Cpu.run(Opts.MaxSteps);
    ++Stats.ConcreteRuns;
    if (Found)
      return Found;
    if (!RunStats.Completed) {
      Violation V;
      V.Kind = ViolationKind::RunStuck;
      V.Detail = "lowering-diff concrete run exceeded " +
                 std::to_string(Opts.MaxSteps) + " committed instructions";
      V.Run.ScalarValues = std::move(ScalarValues);
      V.Run.ArrayValues = std::move(ArrayValues);
      return V;
    }

    // (b) Per-run WCET undercut, against both lowerings. The bound uses
    // the run's own worst header-execution count, exactly like the
    // single-lowering WCET oracle: estimateWcet is monotone in
    // LoopIterationBound, so this is the tightest verdict the options
    // cover. The unrolled program's headers also bound the summarize
    // side's: unrolling deletes counted loops (summarize prices those by
    // their exact recorded trips, not LoopIterationBound), and each
    // remaining uncounted loop's per-invocation executions — what the
    // per-call summary bound needs — show up as one inlined copy's header
    // count here.
    uint64_t MaxHeader = 0;
    for (const Loop &L : CPu->LI.loops())
      MaxHeader = std::max(MaxHeader, ExecCounts[L.Header]);
    uint32_t LoopBound =
        static_cast<uint32_t>(std::max<uint64_t>(1, MaxHeader));
    for (PairData &P : Pairs) {
      struct Side {
        const char *Name;
        const CompiledProgram *CP;
        const MustHitReport *R;
        std::vector<std::pair<uint32_t, uint64_t>> *Memo;
      } Sides[2] = {{"inline-unroll", &*CPu, &P.Ru, &P.WcetMemoU},
                    {"summarize", &*CPs, &P.Rs, &P.WcetMemoS}};
      for (const Side &Sd : Sides) {
        ++Stats.LoweringWcetChecks;
        uint64_t Bound =
            wcetBoundFor(*Sd.CP, *Sd.R, *Sd.Memo, LoopBound, Opts.Wcet);
        if (RunStats.Cycles > Bound) {
          Violation V = Make(
              ViolationKind::LoweringWcetUndercut, P.Strategy, P.Bounding,
              InvalidNode,
              "committed " + std::to_string(RunStats.Cycles) +
                  " cycles but the " + Sd.Name +
                  " estimateWcet bounds the program at " +
                  std::to_string(Bound) + " (loop iteration bound " +
                  std::to_string(LoopBound) + ")");
          V.Run.ScalarValues = std::move(ScalarValues);
          V.Run.ArrayValues = std::move(ArrayValues);
          return V;
        }
      }
    }
  }
  return std::nullopt;
}
