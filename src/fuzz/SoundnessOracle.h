//===- SoundnessOracle.h - Differential soundness oracle --------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind `specai-fuzz`: checks that every cache
/// state reachable by the *concrete* speculative CPU — under every sampled
/// combination of branch-prediction decisions, program inputs, and
/// rollback points — is over-approximated by the abstract engine's
/// S/SS/PR states, for every merge strategy (Figure 6) and bounding mode
/// (§6.2).
///
/// Per generated program the oracle:
///
///  1. runs the abstract analysis once per (strategy x bounding) pair and
///     derives, per speculation site, the depth bound the analysis assumed
///     (b_miss, or b_hit when the §6.2 dynamic bounding applies);
///  2. drives `SpeculativeCpu` across an exhaustive DFS over
///     branch-prediction decision prefixes (a `ScriptedPredictor` is the
///     strongest adversarial "strategy" of the paper's §3.2), plus random
///     longer scripts and the trained predictor zoo, over several input
///     vectors and several speculation-window assignments (full-depth and
///     shrunken, so rollback can land mid-window, mid-loop, or exactly at
///     a load);
///  3. at every concrete access, compares the pre-access concrete cache
///     against the abstract input states of the corresponding node:
///       - committed accesses against Normal ⊔ PostRollback (the paper's
///         observable states): every non-symbolic MUST entry must be
///         resident within its age bound, every concretely resident block
///         must be admitted by the MAY (shadow) side, a MustHit
///         classification must hit, and a MustMiss must miss;
///       - in-window accesses against the joined speculative states: the
///         node must have been speculatively reached by the analysis, its
///         MUST entries must hold, and a concrete speculative load miss
///         must be flagged SpecPossibleMiss;
///  4. checks speculation is architecturally transparent: the committed
///     access trace and return value must equal a non-speculative
///     reference run's.
///
/// Windows are pinned per branch: each site's concrete window is exactly
/// (or a sampled prefix of) the depth bound the analysis used for it, and
/// branches the plan does not model (register-only conditions, which
/// resolve before a speculative access can issue) get window 0 — the
/// oracle validates the engine against the paper's machine model, not the
/// b_hit/b_miss resolution-latency proxy.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_FUZZ_SOUNDNESSORACLE_H
#define SPECAI_FUZZ_SOUNDNESSORACLE_H

#include "analysis/AnalysisPipeline.h"
#include "analysis/SideChannel.h"
#include "analysis/Wcet.h"
#include "repair/MitigationSynth.h"

#include <optional>
#include <string>
#include <vector>

namespace specai {

/// Which differential oracles a run validates (a bitmask; the CLI's
/// `--oracle cache|wcet|leak|all`). Cache is the PR 2 abstract-state
/// containment oracle; Wcet and Leak are *verdict-level* oracles that
/// cross-check the user-facing deliverables — worst-case cycle bounds
/// (§2.1/§7.2) and leak-freedom proofs (§2.2/§7.3) — against the concrete
/// cycle-charging executor and a concrete cache-timing attacker.
enum OracleKind : unsigned {
  OracleCache = 1u << 0,
  OracleWcet = 1u << 1,
  OracleLeak = 1u << 2,
  /// The differential *lowering* oracle (fuzz/LoweringOracle.h): compiles
  /// every program under both LoweringMode::InlineUnroll and ::Summarize
  /// and asserts the widened/summarized results never claim more than the
  /// unrolled ones (and that concrete runs agree). Deliberately NOT part
  /// of OracleAll: `--oracle all` campaign counters are pinned golden
  /// artifacts; select it explicitly (`--oracle lowering`, repeatable
  /// alongside the others).
  OracleLowering = 1u << 3,
  /// The differential *repair* oracle (fuzz/RepairOracle.h): synthesizes a
  /// minimum-cost mitigation set for every leaky program
  /// (repair/MitigationSynth.h), independently re-analyzes the emitted
  /// patched artifacts, and revalidates them on the concrete pipeline —
  /// secret-variant attacker replay, architectural equivalence, and
  /// cycle-for-cycle WCET-claim cross-checks. Like OracleLowering it is
  /// deliberately NOT part of OracleAll: `--oracle all` campaign counters
  /// are pinned golden artifacts; select it explicitly (`--oracle
  /// repair`).
  OracleRepair = 1u << 4,
  OracleAll = OracleCache | OracleWcet | OracleLeak,
};

/// Printable name of a single oracle bit ("cache" / "wcet" / "leak" /
/// "lowering" / "repair").
const char *oracleKindName(unsigned Kind);
/// Parses one oracle selector (including "all"); false on unknown names.
bool parseOracleKind(const std::string &Name, unsigned &MaskOut);

/// Oracle configuration. The defaults trade per-program coverage against
/// campaign throughput: a small cache (so evictions actually happen) and
/// short windows (so depth exhaustion lands inside interesting code).
struct SoundnessOracleOptions {
  CacheConfig Cache = CacheConfig::fullyAssociative(8);
  uint32_t DepthMiss = 24;
  uint32_t DepthHit = 6;
  std::vector<MergeStrategy> Strategies = {
      MergeStrategy::NoMerge, MergeStrategy::MergeAtExit,
      MergeStrategy::JustInTime, MergeStrategy::MergeAtRollback};
  std::vector<BoundingMode> Boundings = {BoundingMode::Fixed,
                                         BoundingMode::Dynamic};
  bool UseShadow = true;
  /// Exhaustive DFS over prediction-decision prefixes up to this length;
  /// beyond it the script falls back to not-taken.
  unsigned ExhaustiveBits = 5;
  /// Additional random scripts per (input, window) round.
  unsigned SampledScripts = 8;
  unsigned SampledScriptLength = 48;
  /// Random input vectors per program.
  unsigned InputRounds = 2;
  /// Extra rounds with per-site windows sampled in [0, bound] — rollback
  /// points land mid-window instead of only at exhaustion.
  unsigned ShrunkenWindowRounds = 1;
  /// Also run the trained predictor zoo (bimodal/gshare/perceptron/...).
  bool UseStandardPredictors = true;
  uint64_t MaxSteps = 500000;
  /// Which oracles to run. The default (cache only) keeps campaign
  /// summaries bit-identical to the pre-verdict fuzzer.
  unsigned Oracles = OracleCache;
  /// WCET verdict options. `Wcet.Timing` is also the concrete CPU's
  /// timing model, so the bound and the cycle accumulator always agree on
  /// latencies. `Wcet.LoopIterationBound` is ignored: each run is checked
  /// against the estimate for its *observed* maximum loop-header
  /// execution count, the tightest bound whose assumptions the run
  /// satisfies (the estimate is monotone in the bound, so any larger one
  /// follows).
  WcetOptions Wcet;
  /// Secret variants per leak-attacker family: each family replays the
  /// program on this many secrets with identical public inputs, identical
  /// prediction script, and identical windows.
  unsigned LeakSecrets = 3;
  /// Leak-attacker families (public-input rounds) per program.
  unsigned LeakRounds = 2;
  /// Deliberate engine fault to inject (fuzzer self-test only).
  EngineFault Fault = EngineFault::None;
  /// Deliberate verdict-layer fault to inject (fuzzer self-test only);
  /// applied to both estimateWcet and detectLeaks/annotateSpeculationOnly.
  VerdictFault VFault = VerdictFault::None;
  /// Deliberate Summarize-lowering fault to inject (lowering-oracle
  /// self-test only); applied to the summarize side of the differential
  /// lowering diff, never to the unrolled reference side.
  LoweringFault LFault = LoweringFault::None;
  /// Deliberate repair-synthesizer fault to inject (repair-oracle
  /// self-test only); applied to the synthesis the oracle validates,
  /// never to its independent re-analysis or concrete replays.
  RepairFault RFault = RepairFault::None;
  /// Intra-analysis worker threads (`--intra-jobs`), forwarded to every
  /// analysis this oracle runs. Campaign summaries and digests are
  /// bit-identical at any value (jobs-invariance tests).
  unsigned IntraJobs = 1;
};

/// What went wrong, from most fundamental to most derived.
enum class ViolationKind : uint8_t {
  CompileError,         ///< The generator emitted a program the frontend
                        ///< rejects (a generator bug; campaign-level).
  AnalysisDiverged,     ///< A fixpoint failed to converge.
  RunStuck,             ///< A concrete run exceeded MaxSteps.
  UnreachableReached,   ///< Architecturally reached a node the analysis
                        ///< deemed unreachable.
  MustStateNotContained,///< A MUST entry (resident, age<=k) failed
                        ///< concretely at a committed access.
  MayStateUnderApprox,  ///< A concretely resident block is not admitted by
                        ///< the MAY (shadow) state.
  MustHitMissed,        ///< A MustHit-classified access missed.
  MustMissHit,          ///< A MustMiss-classified access hit.
  SpecStateMissing,     ///< Speculatively reached a node with bottom
                        ///< speculative state.
  SpecStateNotContained,///< A speculative-state MUST entry failed inside a
                        ///< window.
  SpecMissUnflagged,    ///< A concrete speculative load miss at a node not
                        ///< flagged SpecPossibleMiss.
  ArchResultDiverged,   ///< Speculation changed the architectural result.
  ArchTraceDiverged,    ///< Speculation changed the committed access trace.
  WcetBoundExceeded,    ///< A concrete run committed more cycles than
                        ///< estimateWcet's bound for the matching
                        ///< loop-bound/timing options.
  LeakFreeSiteVaried,   ///< The attacker-visible hit/miss behavior varied
                        ///< at a site the speculative report proved
                        ///< leak-free.
  NonSpecLeakFreeSiteVaried, ///< Same, for the non-speculative report
                             ///< under non-speculative runs.
  SpecOnlyLabelInconsistent, ///< SpeculationOnly diff labeling contradicts
                             ///< the speculative/non-speculative reports.
  LoweringMustHitConflict,      ///< One lowering proves a source location
                                ///< must-hit while the other proves the
                                ///< same location must-miss: at most one
                                ///< can be sound.
  LoweringWcetUndercut,         ///< A cycle-charged concrete run committed
                                ///< more cycles than one lowering's
                                ///< estimateWcet bound for the observed
                                ///< loop iteration count.
  LoweringConcreteMustHitMissed,///< A concrete (unrolled) run missed at a
                                ///< location the summarize analysis
                                ///< claims must-hit.
  RepairIncomplete,     ///< The synthesizer reported success but left a
                        ///< reported leak site unmitigated, or failed on
                        ///< a program the menu demonstrably covers.
  RepairLeakRemains,    ///< An independent re-analysis of the *emitted*
                        ///< patched program (under the emitted clamps)
                        ///< still reports a leak.
  RepairSemanticsChanged,///< The patched program diverges architecturally
                        ///< from the original (return value or final
                        ///< memory/hoisted-register state).
  RepairReplayLeak,     ///< A secret-variant attacker family observed
                        ///< non-uniform hit/miss outcomes on the patched
                        ///< program under the emitted clamps.
  RepairCostClaim,      ///< The reported WcetAfter undercuts an
                        ///< independent estimateWcet of the emitted
                        ///< artifacts.
  RepairCostExceeded,   ///< A concrete run of the patched program
                        ///< committed more cycles than the reported
                        ///< WcetAfter bound for its observed loop count.
};

/// Which oracle a violation kind belongs to (OracleCache/Wcet/Leak), or 0
/// for infrastructure failures (compile errors, divergence, stuck runs)
/// that are no oracle's soundness claim.
unsigned oracleOfViolation(ViolationKind K);

const char *violationKindName(ViolationKind K);

/// One fully concrete scenario: enough to replay a run bit-for-bit.
struct RunSpec {
  /// Branch-prediction decisions (taken = true); not-taken beyond the end.
  std::vector<bool> Script;
  bool Fallback = false;
  /// When set, use this standard predictor instead of the script.
  std::string PredictorName;
  /// Values of the input scalars (parallel to the oracle's InputScalars).
  std::vector<int64_t> ScalarValues;
  /// Initial contents of the input arrays (parallel to InputArrays).
  std::vector<std::vector<int64_t>> ArrayValues;
  /// Concrete speculation window per plan site.
  std::vector<uint32_t> SiteWindows;
  /// Leak-attacker families only: SecretVariants[v][s] holds the contents
  /// of the s-th *secret* input array (in the oracle's secret-array
  /// order) for variant v; publics, script, and windows stay fixed across
  /// variants. Non-empty marks this spec as a family rather than a single
  /// containment/WCET run.
  std::vector<std::vector<std::vector<int64_t>>> SecretVariants;
};

/// One soundness violation, pinned to the (strategy, bounding) report it
/// contradicts and the scenario that exhibits it.
struct Violation {
  ViolationKind Kind = ViolationKind::AnalysisDiverged;
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  BoundingMode Bounding = BoundingMode::Fixed;
  NodeId Node = InvalidNode;
  std::string Detail;
  RunSpec Run;

  /// Human-readable one-paragraph rendering ("<kind> at node N (bbX[i],
  /// <inst>) under <strategy>/<bounding>: <detail>").
  std::string str(const CompiledProgram &CP) const;
};

/// Coverage counters of one oracle invocation.
struct OracleStats {
  uint64_t Analyses = 0;
  uint64_t ConcreteRuns = 0;
  uint64_t SpeculativeWindows = 0;
  uint64_t CommittedChecks = 0;
  uint64_t SpeculativeChecks = 0;
  /// Per-run, per-report WCET verdict comparisons.
  uint64_t WcetChecks = 0;
  /// Leak-attacker families (fixed publics/script, varied secrets).
  uint64_t LeakFamilies = 0;
  /// Concrete attacker runs across all families (spec + non-spec).
  uint64_t LeakRuns = 0;
  /// Per-family, per-report proven-leak-free site validations.
  uint64_t LeakSiteChecks = 0;
  /// Lowering oracle: (strategy, bounding) report pairs diffed between
  /// the two lowerings (0 unless OracleLowering is selected).
  uint64_t LoweringDiffs = 0;
  /// Lowering oracle: per-location containment checks (must-hit and
  /// leak-free locations validated against the unrolled report).
  uint64_t LoweringLocChecks = 0;
  /// Lowering oracle: summarize-vs-unrolled WCET bound comparisons.
  uint64_t LoweringWcetChecks = 0;
  /// Lowering oracle: concrete accesses checked against summarize
  /// must-hit locations.
  uint64_t LoweringConcreteChecks = 0;
  // Precision deltas between the two lowerings. These are *not*
  // violations: summaries can out-prove inline flows (an inlined rolled
  // loop re-ages the caller's MUST entries once per lap inside a
  // speculative window, while the summary's pressure transfer is
  // idempotent), and vice versa for fully constant-folded unrolled
  // indices. The bench harness aggregates them into BENCH_lowering.json.
  /// Locations must-hit under summarize only.
  uint64_t LoweringSumOnlyMustHits = 0;
  /// Locations must-hit under inline-unroll only.
  uint64_t LoweringUnrolledOnlyMustHits = 0;
  /// Report pairs where the summarize WCET bound is strictly tighter.
  uint64_t LoweringWcetTighter = 0;
  /// Report pairs where the summarize bound is strictly looser.
  uint64_t LoweringWcetLooser = 0;
  /// Secret-indexed locations whose leak-free status differs.
  uint64_t LoweringLeakDeltas = 0;
  /// Repair oracle: programs pushed through synthesize-and-revalidate
  /// (0 unless OracleRepair is selected).
  uint64_t RepairChecks = 0;
  /// Repair oracle: programs whose initial report had >= 1 leak site.
  uint64_t RepairLeakyPrograms = 0;
  /// Repair oracle: leaky programs the synthesizer proved repaired.
  uint64_t RepairRepaired = 0;
  /// Repair oracle: mitigations applied across all repairs.
  uint64_t RepairMitigations = 0;
  /// Repair oracle: sum of reported repair costs (WcetAfter - WcetBefore,
  /// floored at 0) across repaired programs.
  uint64_t RepairCostTotal = 0;
  /// Repair oracle: full re-analyses the searches performed.
  uint64_t RepairReanalyses = 0;
  /// Repair oracle: concrete runs of patched programs (attacker variants
  /// and equivalence/WCET replays).
  uint64_t RepairReplayRuns = 0;
  /// Repair oracle: per-run WcetAfter cycle cross-checks.
  uint64_t RepairCostChecks = 0;

  OracleStats &operator+=(const OracleStats &RHS) {
    Analyses += RHS.Analyses;
    ConcreteRuns += RHS.ConcreteRuns;
    SpeculativeWindows += RHS.SpeculativeWindows;
    CommittedChecks += RHS.CommittedChecks;
    SpeculativeChecks += RHS.SpeculativeChecks;
    WcetChecks += RHS.WcetChecks;
    LeakFamilies += RHS.LeakFamilies;
    LeakRuns += RHS.LeakRuns;
    LeakSiteChecks += RHS.LeakSiteChecks;
    LoweringDiffs += RHS.LoweringDiffs;
    LoweringLocChecks += RHS.LoweringLocChecks;
    LoweringWcetChecks += RHS.LoweringWcetChecks;
    LoweringConcreteChecks += RHS.LoweringConcreteChecks;
    LoweringSumOnlyMustHits += RHS.LoweringSumOnlyMustHits;
    LoweringUnrolledOnlyMustHits += RHS.LoweringUnrolledOnlyMustHits;
    LoweringWcetTighter += RHS.LoweringWcetTighter;
    LoweringWcetLooser += RHS.LoweringWcetLooser;
    LoweringLeakDeltas += RHS.LoweringLeakDeltas;
    RepairChecks += RHS.RepairChecks;
    RepairLeakyPrograms += RHS.RepairLeakyPrograms;
    RepairRepaired += RHS.RepairRepaired;
    RepairMitigations += RHS.RepairMitigations;
    RepairCostTotal += RHS.RepairCostTotal;
    RepairReanalyses += RHS.RepairReanalyses;
    RepairReplayRuns += RHS.RepairReplayRuns;
    RepairCostChecks += RHS.RepairCostChecks;
    return *this;
  }
};

/// Outcome of checking one program.
struct OracleResult {
  /// First violation found per concrete run (empty means sound). The
  /// campaign keeps only the first per program and minimizes it.
  std::vector<Violation> Violations;
  OracleStats Stats;

  bool ok() const { return Violations.empty(); }
};

/// The oracle for one compiled program. The CompiledProgram must outlive
/// the oracle.
class SoundnessOracle {
public:
  SoundnessOracle(const CompiledProgram &CP,
                  std::vector<std::string> InputScalars,
                  std::vector<std::pair<std::string, unsigned>> InputArrays,
                  SoundnessOracleOptions Options = {});
  ~SoundnessOracle();

  SoundnessOracle(const SoundnessOracle &) = delete;
  SoundnessOracle &operator=(const SoundnessOracle &) = delete;

  /// Runs the full scenario sweep, deterministically from \p Seed.
  OracleResult run(uint64_t Seed);

  /// Checks one concrete scenario against every compatible report; returns
  /// the first violation. Used for counterexample replay and minimization.
  std::optional<Violation> checkRun(const RunSpec &Spec);

  const SoundnessOracleOptions &options() const { return Options; }

private:
  struct ReportCtx;

  /// Per-site window bound the analysis assumed in report \p RC.
  static std::vector<uint32_t> siteDepths(const CompiledProgram &CP,
                                          const MustHitReport &R,
                                          const MustHitOptions &O);

  /// \p DecisionsUsed, when non-null, receives the number of predictor
  /// decisions the run consumed (drives the exhaustive script DFS).
  std::optional<Violation> runScenario(const RunSpec &Spec,
                                       OracleStats &Stats,
                                       size_t *DecisionsUsed = nullptr);
  /// Runs one leak-attacker family (\p Spec with SecretVariants): replays
  /// the program per secret with and without speculation, pools the
  /// attacker-visible hit/miss outcomes per secret-indexed site, and
  /// checks every report's leak verdicts against them.
  std::optional<Violation> runLeakFamily(const RunSpec &Spec,
                                         OracleStats &Stats);
  /// WCET bound of report \p RC for \p LoopBound total header executions,
  /// memoized (the adaptive bound revisits few distinct values).
  uint64_t wcetBoundFor(ReportCtx &RC, uint32_t LoopBound);
  /// Reports whose speculation envelope covers \p Spec's windows: a
  /// concrete window never longer than the depth the analysis assumed
  /// for the site. (Shorter is fine — the engine models a rollback after
  /// every prefix of the window.)
  std::vector<ReportCtx *> compatibleReports(const RunSpec &Spec);
  /// Pins every branch's window and loads \p Spec's inputs into \p Cpu —
  /// the one machine configuration every oracle validates against (plan
  /// sites get the scenario's window and stop at their reconvergence
  /// point; branches outside the plan get window 0).
  void pinWindowsAndInputs(SpeculativeCpu &Cpu, const RunSpec &Spec);
  /// Reference (non-speculative) run for the transparency check; memoized
  /// per input vector.
  struct Reference;
  const Reference &referenceFor(const RunSpec &Spec);

  const CompiledProgram &CP;
  std::vector<std::string> InputScalars;
  std::vector<std::pair<std::string, unsigned>> InputArrays;
  SoundnessOracleOptions Options;
  std::vector<ReportCtx> Reports;
  std::vector<Reference> References;
  /// Minimal per-site windows compatible with every report.
  std::vector<uint32_t> MinSiteDepths;
  /// Per-report full-depth window vectors, deduplicated.
  std::vector<std::vector<uint32_t>> FullWindowMaps;
  /// Indices into InputArrays of the `secret`-qualified arrays (the leak
  /// attacker varies exactly these).
  std::vector<size_t> SecretArrays;
  /// Non-speculative analysis + its leak report (leak oracle only): the
  /// baseline side of the SpeculationOnly diff and the verdict checked
  /// against non-speculative attacker runs.
  std::unique_ptr<MustHitReport> NonSpecReport;
  SideChannelReport NonSpecLeak;
  /// Scratch per-node committed execution counts (WCET loop coverage).
  std::vector<uint64_t> ExecCounts;
};

} // namespace specai

#endif // SPECAI_FUZZ_SOUNDNESSORACLE_H
