//===- LoweringOracle.h - Differential lowering oracle ----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential *lowering* oracle behind `specai-fuzz --oracle
/// lowering`: compiles one source program under both lowerings —
/// `LoweringMode::InlineUnroll` (the reference: every call inlined, every
/// counted loop unrolled) and `LoweringMode::Summarize` (loops kept rolled
/// under widening, calls replaced by per-function speculative summaries;
/// DESIGN.md §4) — analyzes both, and cross-checks them.
///
/// Neither lowering's abstract results are pointwise contained in the
/// other's, so the oracle does *not* assert "summarize must-hit implies
/// unrolled must-hit" or "summarize WCET >= unrolled WCET" — both fail on
/// healthy programs. Inlining a callee whose rolled `while` loop sits
/// inside a speculative window re-ages the caller's MUST entries once per
/// abstract lap (the header's MUST-intersection join drops the loop-body
/// block each round, so its access keeps charging age), evicting caller
/// blocks the idempotent summary pressure transfer (one aging of
/// #distinct-callee-lines per set) retains; conversely, unrolling
/// constant-folds counted-loop indices into immediate accesses the rolled
/// widened loop can only see as wild. Both directions are legitimate
/// precision differences; they are *counted* (OracleStats::
/// LoweringSumOnlyMustHits / LoweringUnrolledOnlyMustHits /
/// LoweringWcetTighter / LoweringWcetLooser / LoweringLeakDeltas, fed to
/// `bench_lowering_diff`), not flagged.
///
/// What *is* checked — genuine contradictions at most one side can be
/// right about, plus ground truth:
///
///  1. **Classification conflict.** A source location every reachable
///     summarize instance proves must-hit while every reachable unrolled
///     instance proves must-miss (or vice versa) is a contradiction: the
///     instances denote the same committed accesses, which either can hit
///     or cannot.
///  2. **Concrete must-hit containment.** Committed runs of the *unrolled*
///     program (the executable semantics both lowerings share) must hit at
///     every access whose location the summarize analysis claims must-hit.
///  3. **Concrete WCET undercut.** Each run's committed cycle count must
///     respect `estimateWcet` of *both* lowerings, with the loop iteration
///     bound set to the run's observed worst header-execution count
///     (mirroring the single-lowering WCET oracle). This is what retires
///     the "summarize bound must dominate" claim soundly: both bounds must
///     dominate *reality*, not each other.
///
/// `Opts.LFault` injects a deliberate Summarize-lowering fault
/// (drop-widen / stale-summary / skip-backedge) into the summarize side
/// only; `specai-fuzz --selftest lowering` proves each one is caught.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_FUZZ_LOWERINGORACLE_H
#define SPECAI_FUZZ_LOWERINGORACLE_H

#include "fuzz/SoundnessOracle.h"

#include <optional>
#include <string>
#include <vector>

namespace specai {

/// Runs the differential lowering diff on \p Source: one comparison per
/// (strategy, bounding) pair in \p Opts, then \p Opts.InputRounds concrete
/// runs seeded from \p Seed (inputs are derived deterministically from the
/// seed, so `--replay` needs only the recorded `// replay-seed`). Returns
/// the first violation; \p Stats accumulates coverage either way. Node ids
/// in the returned violation refer to the *unrolled* program (what
/// `compileSource` with default options produces), so campaign rendering
/// and replay work unchanged.
std::optional<Violation>
checkLoweringDiff(const std::string &Source,
                  const std::vector<std::string> &InputScalars,
                  const std::vector<std::pair<std::string, unsigned>> &InputArrays,
                  uint64_t Seed, const SoundnessOracleOptions &Opts,
                  OracleStats &Stats);

} // namespace specai

#endif // SPECAI_FUZZ_LOWERINGORACLE_H
