//===- StateDigest.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/StateDigest.h"

#include <algorithm>

using namespace specai;

namespace {

constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t mix(uint64_t H, uint64_t Value) {
  // Hash the value byte-wise so ordering and width are pinned regardless
  // of host endianness assumptions in future refactors.
  for (unsigned I = 0; I != 8; ++I) {
    H ^= (Value >> (I * 8)) & 0xFF;
    H *= FnvPrime;
  }
  return H;
}

uint64_t mixState(uint64_t H, const CacheAbsState &S) {
  if (S.isBottom())
    return mix(H, 0xB0770B0770ULL);
  // mustEntries()/mayEntries() materialize the canonical block-sorted
  // order of the original flat representation, so digests stay bit-stable
  // across the per-set partitioning of CacheAbsState. This is cold code
  // (once per analysis); do not switch it to partitions(), whose order is
  // set-major and would move every pinned golden digest.
  std::vector<AgedBlock> Must = S.mustEntries();
  std::vector<AgedBlock> May = S.mayEntries();
  H = mix(H, Must.size());
  for (const AgedBlock &E : Must) {
    H = mix(H, E.Block);
    H = mix(H, E.Age);
  }
  H = mix(H, May.size());
  for (const AgedBlock &E : May) {
    H = mix(H, E.Block);
    H = mix(H, E.Age);
  }
  return H;
}

} // namespace

uint64_t specai::fnv1a(const std::string &Bytes, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= FnvPrime;
  }
  return H;
}

uint64_t specai::digestMustHitReport(const CompiledProgram &CP,
                                     const MustHitReport &R) {
  uint64_t H = 0xcbf29ce484222325ULL;
  size_t N = CP.G.size();
  H = mix(H, N);
  for (NodeId Node = 0; Node != N; ++Node) {
    H = mix(H, Node);
    H = mix(H, R.Reachable[Node] ? 1 : 0);
    H = mix(H, R.MustHit[Node] ? 3 : 0);
    H = mix(H, R.SpecPossibleMiss[Node] ? 5 : 0);
    H = mix(H, static_cast<uint64_t>(R.Classes[Node]));
    H = mixState(H, R.States.Normal[Node]);
    H = mixState(H, R.States.PostRollback[Node]);
    H = mixState(H, R.States.Speculative[Node]);
  }
  H = mix(H, R.AccessNodes);
  H = mix(H, R.MissCount);
  H = mix(H, R.SpMissCount);
  H = mix(H, R.BranchCount);
  return H;
}

uint64_t specai::digestModuleReport(const CompiledProgram &CP,
                                    const MustHitReport &R) {
  uint64_t H = digestMustHitReport(CP, R);
  size_t NumCallees = std::min(CP.Callees.size(), R.CalleeReports.size());
  H = mix(H, NumCallees);
  for (size_t I = 0; I != NumCallees; ++I)
    H = mix(H, digestMustHitReport(*CP.Callees[I], *R.CalleeReports[I]));
  H = mix(H, R.Summaries.size());
  for (const CallSummary &S : R.Summaries) {
    H = mix(H, S.MayBlocks.size());
    for (BlockAddr B : S.MayBlocks)
      H = mix(H, B);
    H = mix(H, S.SetPressure.size());
    for (uint32_t P : S.SetPressure)
      H = mix(H, P);
    H = mix(H, S.ExitMust.size());
    for (const AgedBlock &E : S.ExitMust) {
      H = mix(H, E.Block);
      H = mix(H, E.Age);
    }
  }
  return H;
}
