//===- StateDigest.h - Canonical digests of analysis results ----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable 64-bit digest over everything a MustHitReport asserts: per-node
/// reachability, classification, and the full MUST/MAY contents of the
/// Normal, PostRollback and Speculative states. The fuzz regression corpus
/// pins digests of generated programs, so *any* drift — in the generator,
/// the frontend, the engine, or the domain — fails deterministically in CI
/// with a pointer to the seed that moved.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_FUZZ_STATEDIGEST_H
#define SPECAI_FUZZ_STATEDIGEST_H

#include "analysis/AnalysisPipeline.h"

#include <cstdint>
#include <string>

namespace specai {

/// FNV-1a over a canonical serialization of \p R's per-node results.
uint64_t digestMustHitReport(const CompiledProgram &CP,
                             const MustHitReport &R);

/// Module-level digest for Summarize-mode reports: the entry digest plus
/// every callee report (CompiledProgram::Callees order) and every call
/// summary (MayBlocks, SetPressure, ExitMust). Equals
/// digestMustHitReport(CP, R) mixed with empty callee/summary tables
/// under InlineUnroll, so it is safe on any report.
uint64_t digestModuleReport(const CompiledProgram &CP,
                            const MustHitReport &R);

/// FNV-1a over raw bytes; exposed so the regression corpus can also pin
/// generated source text.
uint64_t fnv1a(const std::string &Bytes, uint64_t Seed = 0xcbf29ce484222325ULL);

} // namespace specai

#endif // SPECAI_FUZZ_STATEDIGEST_H
