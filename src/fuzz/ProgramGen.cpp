//===- ProgramGen.cpp -----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGen.h"

#include <algorithm>

using namespace specai;

std::string GeneratedProgram::source() const {
  std::string Out = Decls;
  Out += "int main() {\n  reg int t;\n  t = 0;\n";
  for (const std::string &S : Stmts)
    Out += S;
  Out += "  return t;\n}\n";
  return Out;
}

ProgramGen::ProgramGen(uint64_t Seed, ProgramGenOptions Options)
    : Seed(Seed), Options(Options), R(Seed * 0x9E3779B97F4A7C15ULL + 1) {}

std::string ProgramGen::randomIndex(
    const std::pair<std::string, unsigned> &Array) {
  // Constant in-bounds index, constant out-of-bounds index (wraps modulo
  // the length, total semantics), or a data-dependent wild index.
  switch (R.nextBelow(Options.WildIndexing ? 4 : 2)) {
  case 0:
  case 1:
    return std::to_string(R.nextBelow(Array.second));
  case 2:
    return "(t & " + std::to_string(63 + 64 * R.nextBelow(4)) + ")";
  default:
    if (Options.SecretData && R.chance(1, 2))
      return "key[" + std::to_string(R.nextBelow(64)) + "]";
    return P.InputScalars[R.nextBelow(P.InputScalars.size())] + " & 255";
  }
}

std::string ProgramGen::randomExpr(unsigned Depth) {
  switch (R.nextBelow(Depth > 0 ? 5 : 4)) {
  case 0:
    return std::to_string(R.nextRange(0, 100));
  case 1:
    return P.InputScalars[R.nextBelow(P.InputScalars.size())];
  case 2: {
    const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
    return A.first + "[" + randomIndex(A) + "]";
  }
  case 3:
    return "(t & 255)";
  default:
    return randomExpr(0) + (R.chance(1, 2) ? " + " : " ^ ") + randomExpr(0);
  }
}

std::string ProgramGen::randomCond() {
  // Mostly memory-dependent conditions (speculation sites); occasionally a
  // register-only condition, which the plan deliberately does *not* model
  // (it resolves before any speculative access can issue).
  std::string Lhs;
  if (R.chance(1, 6)) {
    Lhs = "(t & 15)";
  } else if (R.chance(1, 3)) {
    const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
    Lhs = A.first + "[" + std::to_string(R.nextBelow(A.second)) + "]";
  } else {
    Lhs = P.InputScalars[R.nextBelow(P.InputScalars.size())];
  }
  const char *Ops[] = {" > ", " < ", " == ", " != ", " >= "};
  return Lhs + Ops[R.nextBelow(5)] + std::to_string(R.nextRange(-20, 20));
}

std::string ProgramGen::helperExpr() {
  // Helper bodies accumulate into a local `r`; expressions mix constant
  // and parameter-dependent (statically unknown) array loads. The `&`
  // masks stay in bounds for every array size (all are multiples of 64).
  const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
  switch (R.nextBelow(3)) {
  case 0:
    return A.first + "[" + std::to_string(R.nextBelow(A.second)) + "]";
  case 1:
    return A.first + "[p & " + std::to_string(A.second - 1) + "]";
  default:
    return "(p & 255)";
  }
}

void ProgramGen::emitHelpers() {
  unsigned Num =
      Options.MinFunctions +
      R.nextBelow(Options.MaxFunctions - Options.MinFunctions + 1);
  for (unsigned F = 0; F != Num; ++F) {
    std::string Body;
    bool UsesW = false;
    unsigned Stmts = 1 + R.nextBelow(3);
    for (unsigned I = 0; I != Stmts; ++I) {
      // Only helpers after the first may call (strictly earlier helpers:
      // sema rejects recursion and forward references, and the bottom-up
      // summary construction relies on the acyclic call graph).
      switch (R.nextBelow(F > 0 ? 6 : 5)) {
      case 0:
        Body += "  r = r + " + helperExpr() + ";\n";
        break;
      case 1: // Global scalar load.
        Body += "  r = r + " +
                P.InputScalars[R.nextBelow(P.InputScalars.size())] + ";\n";
        break;
      case 2: { // Counted loop: unrolled vs. rolled+widened in the callee.
        const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
        std::string Iv = "i" + std::to_string(LoopId++);
        Body += "  for (reg int " + Iv + " = 0; " + Iv + " < " +
                std::to_string(A.second) + "; " + Iv + " += 64) r = r + " +
                A.first + "[" + Iv + "];\n";
        break;
      }
      case 3: { // Memory-conditioned branch: a speculation site whose
                // window the call-site summary has to cover.
        const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
        Body += "  if (" + A.first + "[" +
                std::to_string(R.nextBelow(A.second)) + "] > " +
                std::to_string(R.nextRange(-20, 20)) + ") {\n    r = r + " +
                helperExpr() + ";\n  }\n";
        break;
      }
      case 4: { // Bounded uncounted loop (p & 7 is non-negative even for
                // negative p, so it always terminates): widening must
                // stabilize inside the callee.
        UsesW = true;
        const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
        Body += "  w = p & 7;\n  while (w > 0) {\n    w = w - 1;\n"
                "    r = r + " +
                A.first + "[" + std::to_string(R.nextBelow(A.second)) +
                "];\n  }\n";
        break;
      }
      default: // Call an earlier helper: chains nest up to the helper
               // count.
        Body += "  r = r + f" + std::to_string(R.nextBelow(F)) + "(p + " +
                std::to_string(R.nextRange(0, 20)) + ");\n";
        break;
      }
    }
    P.Decls += "int f" + std::to_string(F) + "(int p) {\n  reg int r;\n";
    if (UsesW)
      P.Decls += "  reg int w;\n";
    P.Decls += "  r = 0;\n" + Body + "  return r;\n}\n";
    ++NumHelpers;
  }
}

std::string ProgramGen::stmtBlock(unsigned Count, unsigned Depth,
                                  std::string Indent) {
  std::vector<std::string> Body;
  for (unsigned I = 0; I != Count; ++I)
    emitStmt(Body, Depth, Indent);
  std::string Out;
  for (const std::string &S : Body)
    Out += S;
  return Out;
}

void ProgramGen::emitStmt(std::vector<std::string> &Out, unsigned Depth,
                          std::string Indent) {
  // Statement kinds; structured kinds are only available below MaxDepth.
  // Deep mode appends one extra kind — a helper call — *after* the
  // existing range, so seeds without it draw the identical stream.
  unsigned Kinds = Depth < Options.MaxDepth ? 9 : 6;
  bool Calls = Options.Functions && NumHelpers > 0;
  unsigned K = R.nextBelow(Calls ? Kinds + 1 : Kinds);
  if (Calls && K == Kinds) { // Helper call accumulated into `t`.
    Out.push_back(Indent + "t = t + f" +
                  std::to_string(R.nextBelow(NumHelpers)) + "(" +
                  randomExpr(0) + ");\n");
    return;
  }
  switch (K) {
  case 0: // Accumulate into the register-resident result.
    Out.push_back(Indent + "t = t + " + randomExpr(1) + ";\n");
    return;
  case 1: { // Scalar store (skips active loop bounds; see WhileLoop).
    std::vector<std::string> Eligible;
    for (const std::string &S : P.InputScalars)
      if (std::find(LoopBoundScalars.begin(), LoopBoundScalars.end(), S) ==
          LoopBoundScalars.end())
        Eligible.push_back(S);
    if (Eligible.empty()) {
      Out.push_back(Indent + "t = t + " + randomExpr(1) + ";\n");
      return;
    }
    Out.push_back(Indent + Eligible[R.nextBelow(Eligible.size())] + " = " +
                  randomExpr(1) + ";\n");
    return;
  }
  case 2: { // Array store, constant or wild index.
    const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
    Out.push_back(Indent + A.first + "[" + randomIndex(A) +
                  "] = " + randomExpr(1) + ";\n");
    return;
  }
  case 3: { // Dense load run: windows exhaust mid-run, exactly at a load.
    unsigned Run = 2 + R.nextBelow(4);
    std::string S;
    for (unsigned I = 0; I != Run; ++I) {
      const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
      S += Indent + "t = t + " + A.first + "[" +
           std::to_string(R.nextBelow(A.second)) + "];\n";
    }
    Out.push_back(S);
    return;
  }
  case 4: // Secret-indexed table lookup (when enabled).
    if (Options.SecretData) {
      const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
      Out.push_back(Indent + "t = t + " + A.first + "[key[" +
                    std::to_string(R.nextBelow(64)) + "] & " +
                    std::to_string(A.second - 1) + "];\n");
      return;
    }
    Out.push_back(Indent + "t = t + " + randomExpr(1) + ";\n");
    return;
  case 5: { // Counted reg-for over an array (fully unrolled by lowering).
    if (!Options.CountedLoops) {
      Out.push_back(Indent + "t = t + " + randomExpr(1) + ";\n");
      return;
    }
    const auto &A = P.Arrays[R.nextBelow(P.Arrays.size())];
    std::string I = "i" + std::to_string(LoopId++);
    Out.push_back(Indent + "for (reg int " + I + " = 0; " + I + " < " +
                  std::to_string(A.second) + "; " + I + " += 64) t = t + " +
                  A.first + "[" + I + "];\n");
    return;
  }
  case 6: { // if/else on a (mostly memory-dependent) condition.
    std::string S = Indent + "if (" + randomCond() + ") {\n";
    S += stmtBlock(1 + R.nextBelow(2), Depth + 1, Indent + "  ");
    S += Indent + "} else {\n";
    S += stmtBlock(1 + R.nextBelow(2), Depth + 1, Indent + "  ");
    S += Indent + "}\n";
    Out.push_back(S);
    return;
  }
  case 7: { // if without else.
    std::string S = Indent + "if (" + randomCond() + ") {\n";
    S += stmtBlock(1 + R.nextBelow(2), Depth + 1, Indent + "  ");
    S += Indent + "}\n";
    Out.push_back(S);
    return;
  }
  default: { // Data-bounded while: the back branch is a speculation site,
             // so a misprediction rolls back mid-loop.
    std::vector<std::string> Eligible;
    for (const std::string &S : P.InputScalars)
      if (std::find(LoopBoundScalars.begin(), LoopBoundScalars.end(), S) ==
          LoopBoundScalars.end())
        Eligible.push_back(S);
    if (!Options.WhileLoops || Eligible.empty()) {
      Out.push_back(Indent + "t = t + " + randomExpr(1) + ";\n");
      return;
    }
    std::string Bound = Eligible[R.nextBelow(Eligible.size())];
    LoopBoundScalars.push_back(Bound);
    std::string S = Indent + "while (" + Bound + " > 0) {\n";
    S += Indent + "  " + Bound + " = " + Bound + " - 1;\n";
    S += stmtBlock(1 + R.nextBelow(2), Depth + 1, Indent + "  ");
    S += Indent + "}\n";
    LoopBoundScalars.pop_back();
    Out.push_back(S);
    return;
  }
  }
}

GeneratedProgram ProgramGen::generate() {
  P = GeneratedProgram();
  P.Seed = Seed;
  LoopId = 0;
  NumHelpers = 0;
  LoopBoundScalars.clear();

  unsigned NumArrays =
      Options.MinArrays +
      R.nextBelow(Options.MaxArrays - Options.MinArrays + 1);
  for (unsigned I = 0; I != NumArrays; ++I) {
    // Deep mode sizes the first array past the default oracle
    // associativity (8 lines, fully associative): a helper's counted
    // sweep over it concretely evicts everything the caller had resident,
    // which is what makes a skipped call-pressure transfer (the
    // stale-summary fault) observable to the differential oracle at all.
    unsigned Lines = Options.Functions && I == 0
                         ? 9 + R.nextBelow(3)
                         : 1 + R.nextBelow(Options.MaxArrayLines);
    std::string Name = "a";
    Name += std::to_string(I);
    P.Arrays.push_back({std::move(Name), Lines * 64});
    P.Decls += "char ";
    P.Decls += P.Arrays.back().first;
    P.Decls += "[";
    P.Decls += std::to_string(P.Arrays.back().second);
    P.Decls += "];\n";
  }
  unsigned NumScalars =
      Options.MinScalars +
      R.nextBelow(Options.MaxScalars - Options.MinScalars + 1);
  for (unsigned I = 0; I != NumScalars; ++I) {
    std::string Name = "s";
    Name += std::to_string(I);
    P.InputScalars.push_back(std::move(Name));
    P.Decls += "int ";
    P.Decls += P.InputScalars.back();
    P.Decls += ";\n";
  }
  if (Options.SecretData) {
    P.Decls += "secret char key[64];\n";
    P.Arrays.push_back({"key", 64});
  }
  if (Options.Functions)
    emitHelpers();

  unsigned NumStmts =
      Options.MinStmts + R.nextBelow(Options.MaxStmts - Options.MinStmts + 1);
  // Deep mode guarantees at least one call (of the last helper, whose
  // chain is the deepest) even if the random kinds never pick one; the
  // minimizer can still drop it like any other statement chunk.
  if (Options.Functions && NumHelpers > 0)
    P.Stmts.push_back("  t = t + f" + std::to_string(NumHelpers - 1) + "(" +
                      P.InputScalars[0] + ");\n");
  for (unsigned I = 0; I != NumStmts; ++I)
    emitStmt(P.Stmts, 0, "  ");
  return P;
}
