//===- Wcet.h - Execution time estimation ------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-time estimation on top of the must-hit classification (paper
/// §2.1, §7.2). The deliverable the paper reports is the number of
/// statically detected potential cache misses (#Miss / #SpMiss, Table 5);
/// this module adds a simple worst-case cycle bound: every possibly-missing
/// access is charged the miss latency, every must-hit the hit latency, and
/// a longest-path bound is computed on the acyclic condensation of the CFG
/// (back edges contribute via the per-node worst-case latencies of their
/// loop bodies times a user-supplied iteration bound).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_ANALYSIS_WCET_H
#define SPECAI_ANALYSIS_WCET_H

#include "analysis/AnalysisPipeline.h"
#include "pipeline/SpeculativeCpu.h"

#include <cstdint>

namespace specai {

/// Worst-case execution estimate derived from a MustHitReport.
struct WcetReport {
  /// Access nodes that may miss (the paper's #Miss).
  uint64_t PossibleMissNodes = 0;
  /// Access nodes guaranteed to hit.
  uint64_t MustHitNodes = 0;
  /// Speculative-only possible misses (#SpMiss).
  uint64_t SpeculativeMissNodes = 0;
  /// Longest-path cycle bound over the acyclic structure, with loop bodies
  /// weighted by LoopIterationBound.
  uint64_t WorstCaseCycles = 0;
};

/// Options for the cycle bound.
struct WcetOptions {
  TimingModel Timing;
  /// Residual (non-unrolled) loops are assumed to iterate at most this
  /// many times for the cycle bound. The bound covers the *total* number
  /// of header executions of each loop, so nested loops need no
  /// per-level product; `estimateWcet` is monotone in it.
  uint32_t LoopIterationBound = 64;
  /// Test-only verdict fault injection for the fuzzer self-test; see
  /// VerdictFault. Never set outside tests.
  VerdictFault Fault = VerdictFault::None;
};

/// Computes the estimate from a finished analysis over \p CP.
WcetReport estimateWcet(const CompiledProgram &CP, const MustHitReport &R,
                        const WcetOptions &Options = {});

} // namespace specai

#endif // SPECAI_ANALYSIS_WCET_H
