//===- Taint.h - Secret taint tracking --------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-insensitive taint analysis seeded by `secret`-qualified variables.
/// The side-channel detector (paper §2.2, §7.3) flags memory accesses whose
/// *address* (array index) depends on a secret — e.g. `load ph[k]` with a
/// secret k, or the AES S-box lookup keyed by the round key.
/// Flow-insensitivity over-approximates, which errs toward reporting more
/// candidate accesses, never fewer: sound for leak *detection*.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_ANALYSIS_TAINT_H
#define SPECAI_ANALYSIS_TAINT_H

#include "cfg/FlatCfg.h"
#include "ir/Ir.h"

#include <vector>

namespace specai {

/// Which registers/variables carry secret-derived data, and which access
/// nodes use a secret-derived address.
struct TaintResult {
  std::vector<bool> TaintedRegs;
  std::vector<bool> TaintedVars;
  /// Access nodes (Load/Store) whose index operand is tainted.
  std::vector<NodeId> SecretIndexedAccesses;

  bool isRegTainted(RegId R) const {
    return R < TaintedRegs.size() && TaintedRegs[R];
  }
  bool isVarTainted(VarId V) const {
    return V < TaintedVars.size() && TaintedVars[V];
  }
};

/// Runs the taint closure over \p G's program.
TaintResult computeTaint(const FlatCfg &G);

/// Summarize mode: joint flow-insensitive closure over a module's CFGs.
/// \p Gs[0] is the entry program, \p Gs[1 + c] the callee with
/// Instruction::Callee index c; all share one register/variable layout, so
/// argument passing (caller stores/movs into the callee's parameter slots)
/// propagates through the ordinary closure, and a Call's result register
/// is tainted iff some Ret of its callee returns a tainted operand.
/// Returns one TaintResult per CFG, parallel to \p Gs, each with
/// SecretIndexedAccesses relative to its own CFG and the shared
/// TaintedRegs/TaintedVars.
std::vector<TaintResult> computeModuleTaint(const std::vector<const FlatCfg *> &Gs);

} // namespace specai

#endif // SPECAI_ANALYSIS_TAINT_H
