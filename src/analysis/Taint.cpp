//===- Taint.cpp ----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"

using namespace specai;

TaintResult specai::computeTaint(const FlatCfg &G) {
  const Program &P = G.program();
  TaintResult R;
  R.TaintedRegs.assign(P.NumRegs, false);
  R.TaintedVars.assign(P.Vars.size(), false);

  for (VarId V = 0; V != P.Vars.size(); ++V)
    if (P.Vars[V].IsSecret)
      R.TaintedVars[V] = true;
  for (const RegGlobal &RG : P.RegGlobals)
    if (RG.IsSecret && RG.Reg < R.TaintedRegs.size())
      R.TaintedRegs[RG.Reg] = true;

  // Flow-insensitive closure over loads, moves, ALU ops and stores.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N = 0; N != G.size(); ++N) {
      const Instruction &I = G.inst(N);
      auto OperandTainted = [&](const Operand &Op) {
        return Op.isReg() && R.TaintedRegs[Op.Reg];
      };
      switch (I.Op) {
      case Opcode::Load:
        if (R.TaintedVars[I.Var] && !R.TaintedRegs[I.Dst]) {
          R.TaintedRegs[I.Dst] = true;
          Changed = true;
        }
        break;
      case Opcode::Mov:
        if (OperandTainted(I.A) && !R.TaintedRegs[I.Dst]) {
          R.TaintedRegs[I.Dst] = true;
          Changed = true;
        }
        break;
      case Opcode::Bin:
        if ((OperandTainted(I.A) || OperandTainted(I.B)) &&
            !R.TaintedRegs[I.Dst]) {
          R.TaintedRegs[I.Dst] = true;
          Changed = true;
        }
        break;
      case Opcode::Store:
        if (OperandTainted(I.A) && !R.TaintedVars[I.Var]) {
          R.TaintedVars[I.Var] = true;
          Changed = true;
        }
        break;
      default:
        break;
      }
    }
  }

  std::vector<bool> Reach = G.reachable();
  for (NodeId N = 0; N != G.size(); ++N) {
    if (!Reach[N])
      continue;
    const Instruction &I = G.inst(N);
    if (!I.accessesMemory())
      continue;
    if (I.Index.isReg() && R.TaintedRegs[I.Index.Reg])
      R.SecretIndexedAccesses.push_back(N);
  }
  return R;
}
