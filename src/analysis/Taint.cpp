//===- Taint.cpp ----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Taint.h"

using namespace specai;

namespace {

/// One flow-insensitive propagation pass over \p G; true iff anything new
/// was tainted. \p Module (when non-null) maps Instruction::Callee c to
/// (*Module)[1 + c] for the Call rule; InlineUnroll programs contain no
/// Call nodes, so passing null is safe there.
bool closurePass(const FlatCfg &G, std::vector<bool> &TaintedRegs,
                 std::vector<bool> &TaintedVars,
                 const std::vector<const FlatCfg *> *Module) {
  bool Changed = false;
  for (NodeId N = 0; N != G.size(); ++N) {
    const Instruction &I = G.inst(N);
    auto OperandTainted = [&](const Operand &Op) {
      return Op.isReg() && TaintedRegs[Op.Reg];
    };
    switch (I.Op) {
    case Opcode::Load:
      if (TaintedVars[I.Var] && !TaintedRegs[I.Dst]) {
        TaintedRegs[I.Dst] = true;
        Changed = true;
      }
      break;
    case Opcode::Mov:
      if (OperandTainted(I.A) && !TaintedRegs[I.Dst]) {
        TaintedRegs[I.Dst] = true;
        Changed = true;
      }
      break;
    case Opcode::Bin:
      if ((OperandTainted(I.A) || OperandTainted(I.B)) &&
          !TaintedRegs[I.Dst]) {
        TaintedRegs[I.Dst] = true;
        Changed = true;
      }
      break;
    case Opcode::Store:
      if (OperandTainted(I.A) && !TaintedVars[I.Var]) {
        TaintedVars[I.Var] = true;
        Changed = true;
      }
      break;
    case Opcode::Call: {
      // The call's result is tainted iff the callee can return tainted
      // data. Argument-to-parameter flow needs no rule here: call sites
      // mov/store into the shared parameter slots before the Call.
      if (!Module || 1 + I.Callee >= Module->size())
        break;
      const FlatCfg &Callee = *(*Module)[1 + I.Callee];
      bool RetTainted = false;
      for (NodeId M = 0; M != Callee.size() && !RetTainted; ++M) {
        const Instruction &RI = Callee.inst(M);
        if (RI.Op == Opcode::Ret && RI.A.isReg() && TaintedRegs[RI.A.Reg])
          RetTainted = true;
      }
      if (RetTainted && !TaintedRegs[I.Dst]) {
        TaintedRegs[I.Dst] = true;
        Changed = true;
      }
      break;
    }
    default:
      break;
    }
  }
  return Changed;
}

/// Seeds the shared taint sets from the layout's secret qualifiers.
void seedSecrets(const Program &P, std::vector<bool> &TaintedRegs,
                 std::vector<bool> &TaintedVars) {
  for (VarId V = 0; V != P.Vars.size(); ++V)
    if (P.Vars[V].IsSecret)
      TaintedVars[V] = true;
  for (const RegGlobal &RG : P.RegGlobals)
    if (RG.IsSecret && RG.Reg < TaintedRegs.size())
      TaintedRegs[RG.Reg] = true;
}

/// Reachable accesses of \p G whose index register is tainted.
std::vector<NodeId> secretIndexed(const FlatCfg &G,
                                  const std::vector<bool> &TaintedRegs) {
  std::vector<NodeId> Out;
  std::vector<bool> Reach = G.reachable();
  for (NodeId N = 0; N != G.size(); ++N) {
    if (!Reach[N])
      continue;
    const Instruction &I = G.inst(N);
    if (!I.accessesMemory())
      continue;
    if (I.Index.isReg() && TaintedRegs[I.Index.Reg])
      Out.push_back(N);
  }
  return Out;
}

} // namespace

TaintResult specai::computeTaint(const FlatCfg &G) {
  const Program &P = G.program();
  TaintResult R;
  R.TaintedRegs.assign(P.NumRegs, false);
  R.TaintedVars.assign(P.Vars.size(), false);
  seedSecrets(P, R.TaintedRegs, R.TaintedVars);

  // Flow-insensitive closure over loads, moves, ALU ops and stores.
  while (closurePass(G, R.TaintedRegs, R.TaintedVars, nullptr))
    ;

  R.SecretIndexedAccesses = secretIndexed(G, R.TaintedRegs);
  return R;
}

std::vector<TaintResult>
specai::computeModuleTaint(const std::vector<const FlatCfg *> &Gs) {
  std::vector<TaintResult> Out(Gs.size());
  if (Gs.empty())
    return Out;

  // One shared layout across the module (ir/Lowering.cpp replicates the
  // final tables into every Program), so one joint reg/var taint set.
  const Program &P = Gs[0]->program();
  std::vector<bool> TaintedRegs(P.NumRegs, false);
  std::vector<bool> TaintedVars(P.Vars.size(), false);
  seedSecrets(P, TaintedRegs, TaintedVars);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const FlatCfg *G : Gs)
      Changed |= closurePass(*G, TaintedRegs, TaintedVars, &Gs);
  }

  for (size_t I = 0; I != Gs.size(); ++I) {
    Out[I].TaintedRegs = TaintedRegs;
    Out[I].TaintedVars = TaintedVars;
    Out[I].SecretIndexedAccesses = secretIndexed(*Gs[I], TaintedRegs);
  }
  return Out;
}
