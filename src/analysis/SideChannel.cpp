//===- SideChannel.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"

using namespace specai;

std::string LeakSite::str(const Program &P) const {
  std::string Out = "potential leak: secret-indexed access to '";
  Out += Var < P.Vars.size() ? P.Vars[Var].Name : "<unknown>";
  Out += "' at node " + std::to_string(Node);
  if (Loc.isValid())
    Out += " (line " + Loc.str() + ")";
  if (SpeculationOnly)
    Out += " [speculation-induced]";
  return Out;
}

namespace {

/// Scans one program's secret-indexed accesses into \p Report.
void scanProgram(const FlatCfg &G, const MustHitReport &R,
                 const TaintResult &Taint, int32_t Callee,
                 const SideChannelOptions &Options,
                 SideChannelReport &Report) {
  for (NodeId Node : Taint.SecretIndexedAccesses) {
    if (!R.Reachable[Node])
      continue;
    const Instruction &I = G.inst(Node);
    // Uniform behavior (guaranteed hit for every possible line, or
    // guaranteed miss for every possible line) cannot depend on the
    // secret; only Mixed accesses leak.
    bool Mixed = R.Classes[Node] == CacheDomain::AccessClass::Mixed;
    if (Options.Fault == VerdictFault::LeakSkipMixed)
      Mixed = false;
    if (Mixed && Options.Fault == VerdictFault::LeakDiscountSpeculation &&
        R.SpecPossibleMiss[Node])
      Mixed = false;
    if (!Mixed) {
      ++Report.ProvenLeakFree;
      Report.LeakFreeSites.push_back(Node);
      Report.LeakFreeLocs.push_back(I.Loc);
      continue;
    }
    LeakSite Site;
    Site.Node = Node;
    Site.Var = I.Var;
    Site.Callee = Callee;
    Site.Loc = I.Loc;
    Report.Leaks.push_back(Site);
  }
}

} // namespace

SideChannelReport specai::detectLeaks(const CompiledProgram &CP,
                                      const MustHitReport &R,
                                      const SideChannelOptions &Options) {
  SideChannelReport Report;
  if (CP.Callees.empty()) {
    TaintResult Taint = computeTaint(CP.G);
    scanProgram(CP.G, R, Taint, /*Callee=*/-1, Options, Report);
    return Report;
  }

  // Summarize mode: joint taint over the module, then scan the entry and
  // every callee against its own analysis report. A secret-indexed access
  // inside a callee leaks exactly like its inlined copy would.
  std::vector<const FlatCfg *> Gs;
  Gs.reserve(1 + CP.Callees.size());
  Gs.push_back(&CP.G);
  for (const std::unique_ptr<CompiledProgram> &Callee : CP.Callees)
    Gs.push_back(&Callee->G);
  std::vector<TaintResult> Taints = computeModuleTaint(Gs);

  scanProgram(CP.G, R, Taints[0], /*Callee=*/-1, Options, Report);
  for (size_t I = 0;
       I != CP.Callees.size() && I != R.CalleeReports.size(); ++I)
    scanProgram(CP.Callees[I]->G, *R.CalleeReports[I], Taints[1 + I],
                static_cast<int32_t>(I), Options, Report);
  return Report;
}

unsigned specai::annotateSpeculationOnly(SideChannelReport &Spec,
                                         const SideChannelReport &NonSpec,
                                         const SideChannelOptions &Options) {
  unsigned Flagged = 0;
  for (LeakSite &Site : Spec.Leaks) {
    bool LeaksWithoutSpeculation = false;
    for (const LeakSite &N : NonSpec.Leaks)
      if (N.Node == Site.Node && N.Callee == Site.Callee) {
        LeaksWithoutSpeculation = true;
        break;
      }
    Site.SpeculationOnly = !LeaksWithoutSpeculation &&
                           Options.Fault != VerdictFault::LeakDropSpecOnly;
    Flagged += Site.SpeculationOnly;
  }
  return Flagged;
}
