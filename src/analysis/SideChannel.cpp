//===- SideChannel.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/SideChannel.h"

using namespace specai;

std::string LeakSite::str(const Program &P) const {
  std::string Out = "potential leak: secret-indexed access to '";
  Out += Var < P.Vars.size() ? P.Vars[Var].Name : "<unknown>";
  Out += "' at node " + std::to_string(Node);
  if (Loc.isValid())
    Out += " (line " + Loc.str() + ")";
  if (SpeculationOnly)
    Out += " [speculation-induced]";
  return Out;
}

SideChannelReport specai::detectLeaks(const CompiledProgram &CP,
                                      const MustHitReport &R,
                                      const SideChannelOptions &Options) {
  SideChannelReport Report;
  TaintResult Taint = computeTaint(CP.G);

  for (NodeId Node : Taint.SecretIndexedAccesses) {
    if (!R.Reachable[Node])
      continue;
    const Instruction &I = CP.G.inst(Node);
    // Uniform behavior (guaranteed hit for every possible line, or
    // guaranteed miss for every possible line) cannot depend on the
    // secret; only Mixed accesses leak.
    bool Mixed = R.Classes[Node] == CacheDomain::AccessClass::Mixed;
    if (Options.Fault == VerdictFault::LeakSkipMixed)
      Mixed = false;
    if (Mixed && Options.Fault == VerdictFault::LeakDiscountSpeculation &&
        R.SpecPossibleMiss[Node])
      Mixed = false;
    if (!Mixed) {
      ++Report.ProvenLeakFree;
      Report.LeakFreeSites.push_back(Node);
      continue;
    }
    LeakSite Site;
    Site.Node = Node;
    Site.Var = I.Var;
    Site.Loc = I.Loc;
    Report.Leaks.push_back(Site);
  }
  return Report;
}

unsigned specai::annotateSpeculationOnly(SideChannelReport &Spec,
                                         const SideChannelReport &NonSpec,
                                         const SideChannelOptions &Options) {
  unsigned Flagged = 0;
  for (LeakSite &Site : Spec.Leaks) {
    bool LeaksWithoutSpeculation = false;
    for (const LeakSite &N : NonSpec.Leaks)
      if (N.Node == Site.Node) {
        LeaksWithoutSpeculation = true;
        break;
      }
    Site.SpeculationOnly = !LeaksWithoutSpeculation &&
                           Options.Fault != VerdictFault::LeakDropSpecOnly;
    Flagged += Site.SpeculationOnly;
  }
  return Flagged;
}
