//===- Wcet.cpp -----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Wcet.h"

#include <algorithm>

using namespace specai;

WcetReport specai::estimateWcet(const CompiledProgram &CP,
                                const MustHitReport &R,
                                const WcetOptions &Options) {
  WcetReport Out;
  const FlatCfg &G = CP.G;
  size_t N = G.size();

  // Per-node worst-case latency.
  std::vector<uint64_t> Latency(N, 0);
  for (NodeId Node = 0; Node != N; ++Node) {
    if (!R.Reachable[Node])
      continue;
    const Instruction &I = G.inst(Node);
    if (I.accessesMemory()) {
      if (R.MustHit[Node]) {
        ++Out.MustHitNodes;
        Latency[Node] = Options.Timing.HitLatency;
      } else {
        ++Out.PossibleMissNodes;
        Latency[Node] = Options.Timing.MissLatency;
      }
    } else if (I.Op == Opcode::Br) {
      Latency[Node] = Options.Timing.BranchResolveLatency;
    } else {
      Latency[Node] = Options.Timing.AluLatency;
    }
    if (R.SpecPossibleMiss[Node])
      ++Out.SpeculativeMissNodes;
  }

  // Longest path over the DAG obtained by charging each loop's body once
  // and scaling nodes inside loops by the iteration bound. This is a crude
  // but monotone bound: misses dominate, which is what the experiments
  // compare.
  std::vector<uint64_t> Weight(N, 0);
  for (NodeId Node = 0; Node != N; ++Node) {
    uint64_t Scale = CP.LI.inAnyLoop(Node) ? Options.LoopIterationBound : 1;
    Weight[Node] = Latency[Node] * Scale;
  }

  // Longest path on the DAG of non-back edges in reverse post-order.
  std::vector<NodeId> Rpo = G.reversePostOrder();
  std::vector<uint32_t> RpoIndex(N, 0);
  for (uint32_t I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
  std::vector<uint64_t> Dist(N, 0);
  uint64_t Best = 0;
  for (NodeId Node : Rpo) {
    uint64_t Here = Dist[Node] + Weight[Node];
    Best = std::max(Best, Here);
    for (NodeId Succ : G.successors(Node)) {
      if (RpoIndex[Succ] <= RpoIndex[Node])
        continue; // Back or cross edge into processed region: skip.
      Dist[Succ] = std::max(Dist[Succ], Here);
    }
  }
  Out.WorstCaseCycles = Best;
  return Out;
}
