//===- Wcet.cpp -----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Wcet.h"

#include <algorithm>

using namespace specai;

namespace {

/// Saturating multiply: the loop-trip products of deeply nested summarize
/// programs must not wrap a cycle bound around to something small.
uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > UINT64_MAX / B)
    return UINT64_MAX;
  return A * B;
}

/// The estimate over one Program. \p CalleeCycles holds the (bottom-up
/// precomputed) worst-case cycle bounds per Instruction::Callee; empty
/// under InlineUnroll, where no Call nodes exist.
WcetReport estimateOne(const CompiledProgram &CP, const MustHitReport &R,
                       const WcetOptions &Options,
                       const std::vector<uint64_t> &CalleeCycles) {
  WcetReport Out;
  const FlatCfg &G = CP.G;
  size_t N = G.size();

  // Per-node worst-case latency.
  std::vector<uint64_t> Latency(N, 0);
  for (NodeId Node = 0; Node != N; ++Node) {
    if (!R.Reachable[Node])
      continue;
    const Instruction &I = G.inst(Node);
    if (I.Op == Opcode::Call) {
      // Summarize mode: one call costs at most the callee's own bound
      // (computed bottom-up, so it is already final) plus one ALU cycle
      // for the return-value binding — inlining materializes that binding
      // as a `mov` into the caller's Dst register, which the callee's own
      // bound does not cover (found by the differential lowering oracle:
      // without it the summarize bound undercuts the unrolled bound by
      // exactly one cycle per executed call).
      Latency[Node] = Options.Timing.AluLatency +
                      (I.Callee < CalleeCycles.size() ? CalleeCycles[I.Callee]
                                                      : 0);
    } else if (I.accessesMemory()) {
      if (R.MustHit[Node]) {
        ++Out.MustHitNodes;
        Latency[Node] = Options.Timing.HitLatency;
      } else {
        ++Out.PossibleMissNodes;
        Latency[Node] = Options.Fault == VerdictFault::WcetHitForMiss
                            ? Options.Timing.HitLatency
                            : Options.Timing.MissLatency;
      }
    } else if (I.Op == Opcode::Br) {
      Latency[Node] = Options.Timing.BranchResolveLatency;
    } else {
      Latency[Node] = Options.Timing.AluLatency;
    }
    if (R.SpecPossibleMiss[Node])
      ++Out.SpeculativeMissNodes;
  }

  // Longest path over the loop-augmented DAG: back edges (loop-body ->
  // header, identified via LoopInfo) are dropped, and in their place each
  // back-edge source forwards its accumulated distance to the loop's exit
  // nodes. The redirection is what makes the bound survive code *after* a
  // loop: skipping back edges outright (the original formulation) left
  // the body's scaled weight dead-ended at the back-edge source, so a
  // program of the form `while (...) {...}; tail` was bounded as if the
  // tail followed the loop *header* — the fuzzer's differential WCET
  // oracle exhibits concrete runs beating that bound once the loop
  // iterates close to LoopIterationBound.
  const std::vector<Loop> &Loops = CP.LI.loops();
  std::vector<int> LoopOfHeader(N, -1);
  for (size_t L = 0; L != Loops.size(); ++L)
    LoopOfHeader[Loops[L].Header] = static_cast<int>(L);
  std::vector<std::vector<bool>> InBody(Loops.size(),
                                        std::vector<bool>(N, false));
  std::vector<std::vector<NodeId>> Exits(Loops.size());
  for (size_t L = 0; L != Loops.size(); ++L) {
    for (NodeId B : Loops[L].Body)
      InBody[L][B] = true;
    for (NodeId B : Loops[L].Body)
      for (NodeId S : G.successors(B))
        if (!InBody[L][S])
          Exits[L].push_back(S);
  }

  // Per-loop header-execution bounds. Summarize mode keeps counted loops
  // rolled and records their exact trip counts (Program::LoopTrips); a
  // loop without a record is uncounted and falls back to the user-supplied
  // iteration bound. Under InlineUnroll no records exist, reproducing the
  // pre-summarize flat bound exactly.
  std::vector<uint64_t> TripOf(Loops.size(), 0); // 0 = uncounted.
  for (const LoopTripRecord &Rec : CP.P->LoopTrips) {
    NodeId Header = G.blockStart(Rec.Header);
    for (size_t L = 0; L != Loops.size(); ++L)
      if (Loops[L].Header == Header)
        TripOf[L] = Rec.HeaderExecutions;
  }

  // Scale each node by the product of its enclosing counted loops' header
  // executions, times one flat LoopIterationBound when any enclosing loop
  // is uncounted (the existing bound covers the *total* header executions
  // of such a nest). This is a crude but monotone bound: misses dominate,
  // which is what the experiments compare.
  std::vector<uint64_t> Weight(N, 0);
  for (NodeId Node = 0; Node != N; ++Node) {
    uint64_t Scale = 1;
    if (Options.Fault != VerdictFault::WcetDropLoopScale) {
      bool InUncounted = false;
      for (size_t L = 0; L != Loops.size(); ++L) {
        if (!InBody[L][Node])
          continue;
        if (TripOf[L])
          Scale = satMul(Scale, TripOf[L]);
        else
          InUncounted = true;
      }
      if (InUncounted)
        Scale = satMul(Scale, Options.LoopIterationBound);
    }
    Weight[Node] = satMul(Latency[Node], Scale);
  }

  auto ForEachDagSucc = [&](NodeId Node, auto &&Fn) {
    for (NodeId Succ : G.successors(Node)) {
      int L = LoopOfHeader[Succ];
      if (L >= 0 && InBody[static_cast<size_t>(L)][Node]) {
        // Back edge: the path leaves the (bounded) loop instead.
        for (NodeId E : Exits[static_cast<size_t>(L)])
          Fn(E);
      } else {
        Fn(Succ);
      }
    }
  };

  // Kahn topological order over the augmented edges; structured-reducible
  // CFGs (all this frontend emits) stay acyclic under the redirection.
  std::vector<uint32_t> InDegree(N, 0);
  for (NodeId Node = 0; Node != N; ++Node)
    ForEachDagSucc(Node, [&](NodeId Succ) { ++InDegree[Succ]; });
  std::vector<NodeId> Queue;
  Queue.reserve(N);
  for (NodeId Node = 0; Node != N; ++Node)
    if (InDegree[Node] == 0)
      Queue.push_back(Node);
  std::vector<uint64_t> Dist(N, 0);
  std::vector<bool> Done(N, false);
  uint64_t Best = 0;
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    NodeId Node = Queue[Head];
    Done[Node] = true;
    uint64_t Here = Dist[Node] + Weight[Node];
    Best = std::max(Best, Here);
    ForEachDagSucc(Node, [&](NodeId Succ) {
      Dist[Succ] = std::max(Dist[Succ], Here);
      if (--InDegree[Succ] == 0)
        Queue.push_back(Succ);
    });
  }
  if (Queue.size() != N) {
    // Defensive fallback for an unexpectedly cyclic augmentation (an
    // irreducible CFG would need one): one reverse-post-order relaxation
    // pass over the leftover nodes keeps the bound finite and at least as
    // strong as the pre-redirection formulation.
    for (NodeId Node : G.reversePostOrder()) {
      if (Done[Node])
        continue;
      uint64_t Here = Dist[Node] + Weight[Node];
      Best = std::max(Best, Here);
      ForEachDagSucc(Node, [&](NodeId Succ) {
        if (!Done[Succ])
          Dist[Succ] = std::max(Dist[Succ], Here);
      });
    }
  }
  Out.WorstCaseCycles = Best;
  return Out;
}

} // namespace

WcetReport specai::estimateWcet(const CompiledProgram &CP,
                                const MustHitReport &R,
                                const WcetOptions &Options) {
  // Summarize mode: bound every callee bottom-up first, so a Call node's
  // latency is its callee's (final) worst-case bound; nested calls resolve
  // because CompiledProgram::Callees is in bottom-up order.
  std::vector<uint64_t> CalleeCycles;
  size_t NumCallees = std::min(CP.Callees.size(), R.CalleeReports.size());
  CalleeCycles.reserve(NumCallees);
  for (size_t I = 0; I != NumCallees; ++I) {
    WcetReport CalleeOut =
        estimateOne(*CP.Callees[I], *R.CalleeReports[I], Options, CalleeCycles);
    CalleeCycles.push_back(CalleeOut.WorstCaseCycles);
  }
  return estimateOne(CP, R, Options, CalleeCycles);
}
