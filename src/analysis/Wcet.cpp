//===- Wcet.cpp -----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/Wcet.h"

#include <algorithm>

using namespace specai;

WcetReport specai::estimateWcet(const CompiledProgram &CP,
                                const MustHitReport &R,
                                const WcetOptions &Options) {
  WcetReport Out;
  const FlatCfg &G = CP.G;
  size_t N = G.size();

  // Per-node worst-case latency.
  std::vector<uint64_t> Latency(N, 0);
  for (NodeId Node = 0; Node != N; ++Node) {
    if (!R.Reachable[Node])
      continue;
    const Instruction &I = G.inst(Node);
    if (I.accessesMemory()) {
      if (R.MustHit[Node]) {
        ++Out.MustHitNodes;
        Latency[Node] = Options.Timing.HitLatency;
      } else {
        ++Out.PossibleMissNodes;
        Latency[Node] = Options.Fault == VerdictFault::WcetHitForMiss
                            ? Options.Timing.HitLatency
                            : Options.Timing.MissLatency;
      }
    } else if (I.Op == Opcode::Br) {
      Latency[Node] = Options.Timing.BranchResolveLatency;
    } else {
      Latency[Node] = Options.Timing.AluLatency;
    }
    if (R.SpecPossibleMiss[Node])
      ++Out.SpeculativeMissNodes;
  }

  // Longest path over the DAG obtained by charging each loop's body once
  // and scaling nodes inside loops by the iteration bound. This is a crude
  // but monotone bound: misses dominate, which is what the experiments
  // compare.
  std::vector<uint64_t> Weight(N, 0);
  for (NodeId Node = 0; Node != N; ++Node) {
    uint64_t Scale = CP.LI.inAnyLoop(Node) &&
                             Options.Fault != VerdictFault::WcetDropLoopScale
                         ? Options.LoopIterationBound
                         : 1;
    Weight[Node] = Latency[Node] * Scale;
  }

  // Longest path over the loop-augmented DAG: back edges (loop-body ->
  // header, identified via LoopInfo) are dropped, and in their place each
  // back-edge source forwards its accumulated distance to the loop's exit
  // nodes. The redirection is what makes the bound survive code *after* a
  // loop: skipping back edges outright (the original formulation) left
  // the body's scaled weight dead-ended at the back-edge source, so a
  // program of the form `while (...) {...}; tail` was bounded as if the
  // tail followed the loop *header* — the fuzzer's differential WCET
  // oracle exhibits concrete runs beating that bound once the loop
  // iterates close to LoopIterationBound.
  const std::vector<Loop> &Loops = CP.LI.loops();
  std::vector<int> LoopOfHeader(N, -1);
  for (size_t L = 0; L != Loops.size(); ++L)
    LoopOfHeader[Loops[L].Header] = static_cast<int>(L);
  std::vector<std::vector<bool>> InBody(Loops.size(),
                                        std::vector<bool>(N, false));
  std::vector<std::vector<NodeId>> Exits(Loops.size());
  for (size_t L = 0; L != Loops.size(); ++L) {
    for (NodeId B : Loops[L].Body)
      InBody[L][B] = true;
    for (NodeId B : Loops[L].Body)
      for (NodeId S : G.successors(B))
        if (!InBody[L][S])
          Exits[L].push_back(S);
  }

  auto ForEachDagSucc = [&](NodeId Node, auto &&Fn) {
    for (NodeId Succ : G.successors(Node)) {
      int L = LoopOfHeader[Succ];
      if (L >= 0 && InBody[static_cast<size_t>(L)][Node]) {
        // Back edge: the path leaves the (bounded) loop instead.
        for (NodeId E : Exits[static_cast<size_t>(L)])
          Fn(E);
      } else {
        Fn(Succ);
      }
    }
  };

  // Kahn topological order over the augmented edges; structured-reducible
  // CFGs (all this frontend emits) stay acyclic under the redirection.
  std::vector<uint32_t> InDegree(N, 0);
  for (NodeId Node = 0; Node != N; ++Node)
    ForEachDagSucc(Node, [&](NodeId Succ) { ++InDegree[Succ]; });
  std::vector<NodeId> Queue;
  Queue.reserve(N);
  for (NodeId Node = 0; Node != N; ++Node)
    if (InDegree[Node] == 0)
      Queue.push_back(Node);
  std::vector<uint64_t> Dist(N, 0);
  std::vector<bool> Done(N, false);
  uint64_t Best = 0;
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    NodeId Node = Queue[Head];
    Done[Node] = true;
    uint64_t Here = Dist[Node] + Weight[Node];
    Best = std::max(Best, Here);
    ForEachDagSucc(Node, [&](NodeId Succ) {
      Dist[Succ] = std::max(Dist[Succ], Here);
      if (--InDegree[Succ] == 0)
        Queue.push_back(Succ);
    });
  }
  if (Queue.size() != N) {
    // Defensive fallback for an unexpectedly cyclic augmentation (an
    // irreducible CFG would need one): one reverse-post-order relaxation
    // pass over the leftover nodes keeps the bound finite and at least as
    // strong as the pre-redirection formulation.
    for (NodeId Node : G.reversePostOrder()) {
      if (Done[Node])
        continue;
      uint64_t Here = Dist[Node] + Weight[Node];
      Best = std::max(Best, Here);
      ForEachDagSucc(Node, [&](NodeId Succ) {
        if (!Done[Succ])
          Dist[Succ] = std::max(Dist[Succ], Here);
      });
    }
  }
  Out.WorstCaseCycles = Best;
  return Out;
}
