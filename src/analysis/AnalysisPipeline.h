//===- AnalysisPipeline.h - Source-to-report drivers ------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end drivers tying the whole stack together, mirroring the
/// paper's Figure 1 pipeline:
///
///   input program -> control flow analysis -> virtual speculative CFG ->
///   speculative abstract interpretation -> analysis report
///
/// `compileSource` runs lexer/parser/sema/lowering and the CFG analyses;
/// `runMustHitAnalysis` runs the static cache analysis, either the
/// non-speculative baseline (Algorithm 1) or the speculative lifting
/// (Algorithms 2/3), including the §6.2 iterative depth refinement.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_ANALYSIS_ANALYSISPIPELINE_H
#define SPECAI_ANALYSIS_ANALYSISPIPELINE_H

#include "ai/SpeculativeEngine.h"
#include "ai/Vcfg.h"
#include "cfg/Dominators.h"
#include "cfg/FlatCfg.h"
#include "cfg/LoopInfo.h"
#include "domain/CacheDomain.h"
#include "ir/Lowering.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>

namespace specai {

/// A compiled program with its CFG analyses; owns the Program so the
/// pointer-holding analyses stay valid.
struct CompiledProgram {
  std::unique_ptr<Program> P;
  FlatCfg G;
  DominatorTree Dom;
  DominatorTree Pdom;
  LoopInfo LI;
  SpecPlan Plan;
  /// Lowering mode this program came from (DESIGN.md §4).
  LoweringMode Mode = LoweringMode::InlineUnroll;
  /// Summarize mode: the reachable non-entry functions, each compiled like
  /// the entry, in the bottom-up order of Program::CalleeNames (so
  /// Instruction::Callee indexes this vector). Callee entries have empty
  /// Callees of their own: the call graph is flattened here, and every
  /// Program shares one variable/register layout. Empty under InlineUnroll.
  std::vector<std::unique_ptr<CompiledProgram>> Callees;
};

/// Compiles mini-C source through sema, lowering (inline-and-unroll or
/// summarize mode per \p Options.Mode) and the CFG analyses. Returns
/// nullptr and fills \p Diags on error.
std::unique_ptr<CompiledProgram>
compileSource(const std::string &Source, DiagnosticEngine &Diags,
              const LoweringOptions &Options = {});

/// Wraps an already-lowered single-function Program with its CFG analyses
/// (FlatCfg, dominators, loops, speculation plan) — the entry point for
/// consumers that rewrite IR rather than source, like the mitigation
/// synthesizer (docs/MITIGATION.md) re-analyzing a patched program. The
/// caller is responsible for handing in verifier-clean IR; InlineUnroll
/// programs only (no Callees are built).
std::unique_ptr<CompiledProgram> compileProgram(Program Prog);

/// Deliberate, test-only faults in the *verdict* layer — the modules that
/// turn a MustHitReport into the user-facing deliverables (execution-time
/// bounds, leak-freedom proofs). The differential fuzzer's verdict oracles
/// (`specai-fuzz --oracle wcet|leak --selftest`) inject one of these and
/// demand a concrete counterexample, mirroring EngineFault one level up
/// the stack: an oracle that cannot see a broken verdict proves nothing.
/// Never set outside tests.
enum class VerdictFault : uint8_t {
  None,
  /// estimateWcet charges the hit latency for possibly-missing accesses —
  /// the classic undercharged-miss WCET shortcut.
  WcetHitForMiss,
  /// estimateWcet ignores LoopIterationBound: loop bodies are charged as
  /// if they executed once.
  WcetDropLoopScale,
  /// detectLeaks skips the Mixed check and reports every secret-indexed
  /// access leak-free.
  LeakSkipMixed,
  /// detectLeaks assumes speculative misses are invisible to the attacker
  /// and proves a Mixed access leak-free whenever the speculative analysis
  /// flagged it SpecPossibleMiss — the exact wrong argument the paper
  /// refutes (§2.2): squashed loads still displace attacker-visible lines.
  LeakDiscountSpeculation,
  /// annotateSpeculationOnly never sets the SpeculationOnly flag.
  LeakDropSpecOnly,
};

const char *verdictFaultName(VerdictFault F);
/// Parses a verdict fault name; returns false on unknown names.
bool parseVerdictFault(const std::string &Name, VerdictFault &Out);

/// Deliberate, test-only faults in the *Summarize lowering* layer — the
/// widened-loop fixpoint and the interprocedural summary application. The
/// differential lowering oracle's self-test (`specai-fuzz --selftest
/// lowering`) injects one of these and demands a concrete counterexample,
/// completing the EngineFault/VerdictFault ladder: an oracle that cannot
/// see a broken lowering proves nothing. Never set outside tests.
enum class LoweringFault : uint8_t {
  None,
  /// After widening fires at a loop header, the header is not re-queued:
  /// the widened state never reaches the loop body (EngineOptions::
  /// DropWidenPush).
  DropWiden,
  /// Call transfers skip the callee's aging pressure, leaving stale MUST
  /// bounds in place (CacheDomainOptions::StaleSummaryFault).
  StaleSummary,
  /// Joins along loop back edges are dropped: loop-carried cache effects
  /// never reach the header (EngineOptions::SkipBackedges).
  SkipBackedge,
};

const char *loweringFaultName(LoweringFault F);
/// Parses a lowering fault name; returns false on unknown names.
bool parseLoweringFault(const std::string &Name, LoweringFault &Out);

/// Configuration of one static cache analysis run.
struct MustHitOptions {
  CacheConfig Cache = CacheConfig::paperDefault();
  /// Model speculative execution (the paper's contribution); false gives
  /// the unsound-under-speculation baseline the evaluation compares with.
  bool Speculative = true;
  /// Appendix B shadow variables.
  bool UseShadow = true;
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  uint32_t DepthMiss = 200;
  uint32_t DepthHit = 20;
  BoundingMode Bounding = BoundingMode::Dynamic;
  /// Per-site speculation depth clamps (docs/MITIGATION.md): entry i caps
  /// the window of SpecPlan site i, on top of bounding and refinement
  /// (element-wise min, so a clamp can only shrink a window). Empty means
  /// none; UINT32_MAX entries leave their site unclamped. The repair
  /// synthesizer emits these; the concrete counterpart is a
  /// SpeculativeCpu window override of the same depth at the site branch.
  std::vector<uint32_t> SiteDepthClamp;
  /// Outer refinement (§6.2): re-run with per-site bounds derived from the
  /// previous sound fixpoint until stable.
  bool IterativeDepthRefinement = false;
  unsigned MaxRefinementRounds = 4;
  bool UseWidening = false;
  uint32_t WideningDelay = 8;
  uint64_t MaxIterations = 200000000;
  /// Worklist pop discipline (WorklistEngine.h). Unset picks the engine
  /// default: Rpo for the baseline engine (fewer pops; bit-identical
  /// fixpoints on every paper kernel, enforced by bench_table6_merging
  /// and state_repr_test), Fifo for the speculative engine, whose
  /// symbolic-instance transfer sequence is order-observable and pinned
  /// by the fuzz corpus's golden digests. Caveat: baseline runs over
  /// programs with statically *unknown* indices draw symbolic instances
  /// in pop order too, so their states can differ between orders (both
  /// remain sound); pass Fifo explicitly to reproduce pre-RPO baseline
  /// states on such programs.
  std::optional<WorklistOrder> Order;
  /// When set, engine counters (worklist pops/pushes/dedup, transfer-memo
  /// and interner hits) accumulate here across the run's engine
  /// invocations.
  StatisticSet *Stats = nullptr;
  /// Test-only engine fault injection for the fuzzer self-test; see
  /// EngineFault. Never set outside tests.
  EngineFault Fault = EngineFault::None;
  /// Test-only Summarize-lowering fault injection for the differential
  /// lowering oracle's self-test; see LoweringFault. Never set outside
  /// tests.
  LoweringFault LFault = LoweringFault::None;
  /// Cooperative cancellation budget (docs/SERVICE.md, "Deadlines and
  /// budgets"), threaded into every engine invocation this run makes —
  /// refinement rounds and Summarize callee fixpoints included. A tripped
  /// budget aborts the run with MustHitReport::BudgetExceeded; the report's
  /// classification vectors may then be empty and must not be consumed.
  ExecBudget *Budget = nullptr;
  /// Intra-analysis parallelism (`--intra-jobs`): worker threads for
  /// per-set partition joins and the engines' independent batch work.
  /// 0 = hardware concurrency, 1 = serial. Results are bit-identical at
  /// any value (pinned by the jobs-invariance tests), so this is a
  /// performance knob only — deliberately EXCLUDED from verdict-cache
  /// keys (service/VerdictCache semanticsKey).
  unsigned IntraJobs = 1;
};

/// Classification outcome of the static cache analysis.
struct MustHitReport {
  /// Cache model used (block naming, geometry).
  std::unique_ptr<MemoryModel> MM;
  /// Per-node fixpoint states.
  SpecResult<CacheDomain> States;
  /// Per node: reachable in some architectural (normal or post-rollback)
  /// execution.
  std::vector<bool> Reachable;
  /// Per node: memory access guaranteed to hit in every architectural
  /// execution (only meaningful for access nodes).
  std::vector<bool> MustHit;
  /// Per node: executed speculatively on some path and not guaranteed to
  /// hit there (the paper's speculative misses, masked by the pipeline).
  std::vector<bool> SpecPossibleMiss;
  /// Per node: three-way timing classification of the access (MustHit /
  /// MustMiss / Mixed); only meaningful for reachable access nodes. Used
  /// by the side-channel detector: only Mixed accesses can leak.
  std::vector<CacheDomain::AccessClass> Classes;

  // Paper Table 5 counters.
  uint64_t AccessNodes = 0;
  uint64_t MissCount = 0;    // #Miss: access nodes that may miss.
  uint64_t SpMissCount = 0;  // #SpMiss: speculative-only access misses.
  uint64_t BranchCount = 0;  // #Branch: speculatable branches.
  uint64_t Iterations = 0;   // Worklist iterations.
  unsigned RefinementRounds = 1;
  bool Converged = true;
  /// The run's ExecBudget tripped (deadline, step cap, or cancel). The
  /// per-node vectors may be partial or empty; callers must treat the
  /// whole report as void — the service answers `status: timeout` and
  /// never caches it.
  bool BudgetExceeded = false;

  /// Summarize mode: per-callee analysis reports, in CompiledProgram::
  /// Callees order (their per-node vectors index the callee's own CFG).
  /// The WCET estimator charges Call nodes from these; the lowering
  /// oracle compares their must-hits against the inlined copies. Empty
  /// under InlineUnroll.
  std::vector<std::unique_ptr<MustHitReport>> CalleeReports;
  /// Summarize mode: the call summaries the main run was analyzed with,
  /// indexed by Instruction::Callee. Empty under InlineUnroll.
  std::vector<CallSummary> Summaries;
};

/// Runs the static cache analysis over \p CP.
MustHitReport runMustHitAnalysis(const CompiledProgram &CP,
                                 const MustHitOptions &Options = {});

} // namespace specai

#endif // SPECAI_ANALYSIS_ANALYSISPIPELINE_H
