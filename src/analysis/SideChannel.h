//===- SideChannel.h - Cache timing side channel detection ------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache timing side channel detection (paper §2.2, §7.3). An access whose
/// address depends on secret data is *leak-free* when its cache behavior is
/// independent of the secret — which the MUST analysis certifies by proving
/// every line the access could touch resident (then the access hits for
/// every secret value). Otherwise the secret selects between hit and miss,
/// and an attacker timing the program learns about it — the paper's Figure
/// 2/10 scenario, where speculative execution evicts part of a preloaded
/// table.
///
/// The detector reports a leak when some secret-indexed access is reachable
/// and not fully must-hit. Run it once over a non-speculative report and
/// once over a speculative report to reproduce Table 7's contrast.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_ANALYSIS_SIDECHANNEL_H
#define SPECAI_ANALYSIS_SIDECHANNEL_H

#include "analysis/AnalysisPipeline.h"
#include "analysis/Taint.h"

#include <string>
#include <vector>

namespace specai {

/// One potential leak site.
struct LeakSite {
  NodeId Node = InvalidNode;
  /// Array being indexed by secret data.
  VarId Var = InvalidVar;
  /// Leak visible only when speculation is modeled (set by callers that
  /// diff speculative vs non-speculative reports).
  bool SpeculationOnly = false;
  /// Summarize mode: CompiledProgram::Callees index of the CFG holding
  /// Node, or -1 for the entry program (always -1 under InlineUnroll).
  int32_t Callee = -1;
  SourceLoc Loc;
  std::string str(const Program &P) const;
};

/// Result of leak detection over one analysis report.
struct SideChannelReport {
  std::vector<LeakSite> Leaks;
  /// Number of secret-indexed accesses that were proven leak-free
  /// (== LeakFreeSites.size()).
  uint64_t ProvenLeakFree = 0;
  /// The reachable secret-indexed access nodes proven leak-free. The
  /// fuzzer's concrete timing attacker checks these: their attacker-
  /// visible hit/miss behavior must be independent of the secret.
  /// Summarize mode: node ids of callee sites are relative to their own
  /// CFG (disambiguate via LeakFreeLocs, which is what the lowering
  /// oracle compares).
  std::vector<NodeId> LeakFreeSites;
  /// Source location of each LeakFreeSites entry (parallel vector).
  std::vector<SourceLoc> LeakFreeLocs;
  bool leakDetected() const { return !Leaks.empty(); }
};

/// Options of the leak detector.
struct SideChannelOptions {
  /// Test-only verdict fault injection for the fuzzer self-test; see
  /// VerdictFault. Never set outside tests.
  VerdictFault Fault = VerdictFault::None;
};

/// Scans \p R's classification for secret-indexed accesses that are not
/// guaranteed hits.
SideChannelReport detectLeaks(const CompiledProgram &CP,
                              const MustHitReport &R,
                              const SideChannelOptions &Options = {});

/// Diffs a speculative-analysis leak report against a non-speculative one
/// (the paper's Table 7 contrast): every leak of \p Spec at a site the
/// non-speculative analysis did *not* flag is marked SpeculationOnly —
/// visible to a timing attacker only because speculative execution
/// perturbs the cache. Returns the number of sites flagged.
unsigned annotateSpeculationOnly(SideChannelReport &Spec,
                                 const SideChannelReport &NonSpec,
                                 const SideChannelOptions &Options = {});

} // namespace specai

#endif // SPECAI_ANALYSIS_SIDECHANNEL_H
