//===- AnalysisPipeline.cpp -----------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"

#include "ir/Verifier.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

using namespace specai;

const char *specai::verdictFaultName(VerdictFault F) {
  switch (F) {
  case VerdictFault::None:
    return "none";
  case VerdictFault::WcetHitForMiss:
    return "wcet-hit-for-miss";
  case VerdictFault::WcetDropLoopScale:
    return "wcet-drop-loop-scale";
  case VerdictFault::LeakSkipMixed:
    return "leak-skip-mixed";
  case VerdictFault::LeakDiscountSpeculation:
    return "leak-discount-spec";
  case VerdictFault::LeakDropSpecOnly:
    return "leak-drop-spec-only";
  }
  return "?";
}

bool specai::parseVerdictFault(const std::string &Name, VerdictFault &Out) {
  for (VerdictFault F :
       {VerdictFault::None, VerdictFault::WcetHitForMiss,
        VerdictFault::WcetDropLoopScale, VerdictFault::LeakSkipMixed,
        VerdictFault::LeakDiscountSpeculation,
        VerdictFault::LeakDropSpecOnly}) {
    if (Name == verdictFaultName(F)) {
      Out = F;
      return true;
    }
  }
  return false;
}

std::unique_ptr<CompiledProgram>
specai::compileSource(const std::string &Source, DiagnosticEngine &Diags,
                      const LoweringOptions &Options) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;

  AstContext Context;
  Parser Parse(std::move(Tokens), Context, Diags);
  TranslationUnit Unit = Parse.parseTranslationUnit();
  if (Diags.hasErrors())
    return nullptr;

  Sema Analysis(Diags);
  if (!Analysis.run(Unit))
    return nullptr;

  std::optional<Program> Lowered = lowerProgram(Unit, Options, Diags);
  if (!Lowered)
    return nullptr;

  for (const std::string &Issue : verifyProgram(*Lowered)) {
    Diags.error(SourceLoc(), "internal: IR verifier: " + Issue);
  }
  if (Diags.hasErrors())
    return nullptr;

  auto CP = std::make_unique<CompiledProgram>();
  CP->P = std::make_unique<Program>(std::move(*Lowered));
  CP->G = FlatCfg::build(*CP->P);
  CP->Dom = DominatorTree::compute(CP->G);
  CP->Pdom = DominatorTree::computePost(CP->G);
  CP->LI = LoopInfo::compute(CP->G, CP->Dom);
  CP->Plan = SpecPlan::compute(CP->G, CP->Pdom);
  return CP;
}

namespace {

/// Converts MustHitOptions into engine options (site overrides installed by
/// the refinement loop).
SpecEngineOptions makeEngineOptions(const MustHitOptions &O,
                                    std::vector<uint32_t> SiteOverrides) {
  SpecEngineOptions E;
  E.Strategy = O.Strategy;
  E.DepthMiss = O.DepthMiss;
  E.DepthHit = O.DepthHit;
  E.Bounding = O.Bounding;
  E.SiteDepthOverride = std::move(SiteOverrides);
  E.UseWidening = O.UseWidening;
  E.WideningDelay = O.WideningDelay;
  E.MaxIterations = O.MaxIterations;
  // SpecEngineOptions already defaulted Order to the speculative engine's
  // digest-stable Fifo; only an explicit request overrides it.
  if (O.Order)
    E.Order = *O.Order;
  E.Stats = O.Stats;
  E.Fault = O.Fault;
  return E;
}

/// Classifies the access nodes of a finished run into the report fields.
void classify(const CompiledProgram &CP, CacheDomain &D,
              MustHitReport &Report) {
  const FlatCfg &G = CP.G;
  size_t N = G.size();
  Report.Reachable.assign(N, false);
  Report.MustHit.assign(N, false);
  Report.SpecPossibleMiss.assign(N, false);
  Report.Classes.assign(N, CacheDomain::AccessClass::Mixed);
  Report.AccessNodes = 0;
  Report.MissCount = 0;
  Report.SpMissCount = 0;

  for (NodeId Node = 0; Node != N; ++Node) {
    CacheAbsState Observable = Report.States.observable(D, Node);
    bool Reach = !Observable.isBottom();
    Report.Reachable[Node] = Reach;
    if (!G.inst(Node).accessesMemory())
      continue;
    if (Reach) {
      ++Report.AccessNodes;
      Report.Classes[Node] = D.classifyAccess(Observable, Node);
      bool Hit =
          Report.Classes[Node] == CacheDomain::AccessClass::MustHit;
      Report.MustHit[Node] = Hit;
      if (!Hit)
        ++Report.MissCount;
    }
    const CacheAbsState &Spec = Report.States.Speculative[Node];
    if (!Spec.isBottom() && !D.isMustHit(Spec, Node)) {
      Report.SpecPossibleMiss[Node] = true;
      ++Report.SpMissCount;
    }
  }
}

} // namespace

MustHitReport specai::runMustHitAnalysis(const CompiledProgram &CP,
                                         const MustHitOptions &Options) {
  MustHitReport Report;
  Report.MM = std::make_unique<MemoryModel>(*CP.P, Options.Cache);
  Report.BranchCount = CP.Plan.siteCount();

  CacheDomainOptions DomOpts;
  DomOpts.UseShadow = Options.UseShadow;

  if (!Options.Speculative) {
    // Baseline Algorithm 1: no virtual control flow at all.
    CacheDomain D(CP.G, *Report.MM, DomOpts);
    EngineOptions E;
    E.UseWidening = Options.UseWidening;
    E.WideningDelay = Options.WideningDelay;
    E.MaxIterations = Options.MaxIterations;
    E.Order = Options.Order.value_or(WorklistOrder::Rpo);
    E.Stats = Options.Stats;
    FixpointResult<CacheDomain> F = runFixpoint(D, CP.G, E, &CP.LI);
    Report.States.Normal = std::move(F.In);
    Report.States.PostRollback.assign(CP.G.size(), CacheAbsState::bottom());
    Report.States.Speculative.assign(CP.G.size(), CacheAbsState::bottom());
    Report.Iterations = F.Iterations;
    Report.Converged = F.Converged;
    classify(CP, D, Report);
    return Report;
  }

  // Speculative analysis, optionally with the §6.2 outer refinement:
  // bounds start at b_miss and shrink to b_hit for sites whose condition
  // loads are must-hits under the previous (sound) fixpoint.
  std::vector<uint32_t> Overrides;
  unsigned Round = 0;
  while (true) {
    ++Round;
    CacheDomain D(CP.G, *Report.MM, DomOpts);
    SpecEngineOptions E = makeEngineOptions(Options, Overrides);
    if (Options.IterativeDepthRefinement)
      E.Bounding = BoundingMode::Fixed; // Bounds come from Overrides.
    Report.States =
        runSpeculativeFixpoint(D, CP.G, CP.Plan, E, &CP.LI);
    Report.Iterations += Report.States.Iterations;
    Report.Converged = Report.States.Converged;
    classify(CP, D, Report);

    if (!Options.IterativeDepthRefinement ||
        Round >= Options.MaxRefinementRounds)
      break;

    // Derive per-site bounds from this round's classification.
    std::vector<uint32_t> Next(CP.Plan.siteCount(), Options.DepthMiss);
    for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
      const SpecSite &S = CP.Plan.sites()[Site];
      bool AllHit = !S.CondLoads.empty();
      for (NodeId Load : S.CondLoads) {
        if (!Report.Reachable[Load])
          continue; // Unreachable loads do not widen the window.
        if (!Report.MustHit[Load]) {
          AllHit = false;
          break;
        }
      }
      if (AllHit)
        Next[Site] = Options.DepthHit;
    }
    if (Next == Overrides)
      break;
    Overrides = std::move(Next);
  }
  Report.RefinementRounds = Round;
  return Report;
}
