//===- AnalysisPipeline.cpp -----------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisPipeline.h"

#include "ir/Verifier.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Parallel.h"

using namespace specai;

const char *specai::verdictFaultName(VerdictFault F) {
  switch (F) {
  case VerdictFault::None:
    return "none";
  case VerdictFault::WcetHitForMiss:
    return "wcet-hit-for-miss";
  case VerdictFault::WcetDropLoopScale:
    return "wcet-drop-loop-scale";
  case VerdictFault::LeakSkipMixed:
    return "leak-skip-mixed";
  case VerdictFault::LeakDiscountSpeculation:
    return "leak-discount-spec";
  case VerdictFault::LeakDropSpecOnly:
    return "leak-drop-spec-only";
  }
  return "?";
}

bool specai::parseVerdictFault(const std::string &Name, VerdictFault &Out) {
  for (VerdictFault F :
       {VerdictFault::None, VerdictFault::WcetHitForMiss,
        VerdictFault::WcetDropLoopScale, VerdictFault::LeakSkipMixed,
        VerdictFault::LeakDiscountSpeculation,
        VerdictFault::LeakDropSpecOnly}) {
    if (Name == verdictFaultName(F)) {
      Out = F;
      return true;
    }
  }
  return false;
}

const char *specai::loweringFaultName(LoweringFault F) {
  switch (F) {
  case LoweringFault::None:
    return "none";
  case LoweringFault::DropWiden:
    return "drop-widen";
  case LoweringFault::StaleSummary:
    return "stale-summary";
  case LoweringFault::SkipBackedge:
    return "skip-backedge";
  }
  return "?";
}

bool specai::parseLoweringFault(const std::string &Name, LoweringFault &Out) {
  for (LoweringFault F :
       {LoweringFault::None, LoweringFault::DropWiden,
        LoweringFault::StaleSummary, LoweringFault::SkipBackedge}) {
    if (Name == loweringFaultName(F)) {
      Out = F;
      return true;
    }
  }
  return false;
}

namespace {

/// Wraps one lowered Program with its CFG analyses.
std::unique_ptr<CompiledProgram> buildAnalyses(Program &&Prog,
                                               LoweringMode Mode) {
  auto CP = std::make_unique<CompiledProgram>();
  CP->P = std::make_unique<Program>(std::move(Prog));
  CP->G = FlatCfg::build(*CP->P);
  CP->Dom = DominatorTree::compute(CP->G);
  CP->Pdom = DominatorTree::computePost(CP->G);
  CP->LI = LoopInfo::compute(CP->G, CP->Dom);
  CP->Plan = SpecPlan::compute(CP->G, CP->Pdom);
  CP->Mode = Mode;
  return CP;
}

} // namespace

std::unique_ptr<CompiledProgram> specai::compileProgram(Program Prog) {
  return buildAnalyses(std::move(Prog), LoweringMode::InlineUnroll);
}

std::unique_ptr<CompiledProgram>
specai::compileSource(const std::string &Source, DiagnosticEngine &Diags,
                      const LoweringOptions &Options) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;

  AstContext Context;
  Parser Parse(std::move(Tokens), Context, Diags);
  TranslationUnit Unit = Parse.parseTranslationUnit();
  if (Diags.hasErrors())
    return nullptr;

  Sema Analysis(Diags);
  if (!Analysis.run(Unit))
    return nullptr;

  std::optional<LoweredModule> Lowered = lowerModule(Unit, Options, Diags);
  if (!Lowered)
    return nullptr;

  for (const std::string &Issue : verifyProgram(Lowered->Entry)) {
    Diags.error(SourceLoc(), "internal: IR verifier: " + Issue);
  }
  for (const Program &FP : Lowered->Callees)
    for (const std::string &Issue : verifyProgram(FP))
      Diags.error(SourceLoc(), "internal: IR verifier (" + FP.EntryName +
                                   "): " + Issue);
  if (Diags.hasErrors())
    return nullptr;

  auto CP = buildAnalyses(std::move(Lowered->Entry), Options.Mode);
  for (Program &FP : Lowered->Callees)
    CP->Callees.push_back(buildAnalyses(std::move(FP), Options.Mode));
  return CP;
}

namespace {

/// Converts MustHitOptions into engine options (site overrides installed by
/// the refinement loop).
SpecEngineOptions makeEngineOptions(const MustHitOptions &O,
                                    std::vector<uint32_t> SiteOverrides) {
  SpecEngineOptions E;
  E.Strategy = O.Strategy;
  E.DepthMiss = O.DepthMiss;
  E.DepthHit = O.DepthHit;
  E.Bounding = O.Bounding;
  E.SiteDepthOverride = std::move(SiteOverrides);
  E.SiteDepthClamp = O.SiteDepthClamp;
  E.UseWidening = O.UseWidening;
  E.WideningDelay = O.WideningDelay;
  E.MaxIterations = O.MaxIterations;
  // SpecEngineOptions already defaulted Order to the speculative engine's
  // digest-stable Fifo; only an explicit request overrides it.
  if (O.Order)
    E.Order = *O.Order;
  E.Stats = O.Stats;
  E.Budget = O.Budget;
  E.Fault = O.Fault;
  E.DropWidenPush = O.LFault == LoweringFault::DropWiden;
  E.SkipBackedges = O.LFault == LoweringFault::SkipBackedge;
  return E;
}

/// Classifies the access nodes of a finished run into the report fields.
void classify(const CompiledProgram &CP, CacheDomain &D,
              MustHitReport &Report) {
  const FlatCfg &G = CP.G;
  size_t N = G.size();
  Report.Reachable.assign(N, false);
  Report.MustHit.assign(N, false);
  Report.SpecPossibleMiss.assign(N, false);
  Report.Classes.assign(N, CacheDomain::AccessClass::Mixed);
  Report.AccessNodes = 0;
  Report.MissCount = 0;
  Report.SpMissCount = 0;

  for (NodeId Node = 0; Node != N; ++Node) {
    CacheAbsState Observable = Report.States.observable(D, Node);
    bool Reach = !Observable.isBottom();
    Report.Reachable[Node] = Reach;
    if (!G.inst(Node).accessesMemory())
      continue;
    if (Reach) {
      ++Report.AccessNodes;
      Report.Classes[Node] = D.classifyAccess(Observable, Node);
      bool Hit =
          Report.Classes[Node] == CacheDomain::AccessClass::MustHit;
      Report.MustHit[Node] = Hit;
      if (!Hit)
        ++Report.MissCount;
    }
    const CacheAbsState &Spec = Report.States.Speculative[Node];
    if (!Spec.isBottom() && !D.isMustHit(Spec, Node)) {
      Report.SpecPossibleMiss[Node] = true;
      ++Report.SpMissCount;
    }
  }
}

/// Runs the engines over one Program (the pre-Summarize runMustHitAnalysis
/// body); \p DomOpts carries the summary table in Summarize mode.
MustHitReport runEngines(const CompiledProgram &CP,
                         const MustHitOptions &Options,
                         const CacheDomainOptions &DomOpts) {
  MustHitReport Report;
  Report.MM = std::make_unique<MemoryModel>(*CP.P, Options.Cache);
  Report.BranchCount = CP.Plan.siteCount();

  if (!Options.Speculative) {
    // Baseline Algorithm 1: no virtual control flow at all.
    CacheDomain D(CP.G, *Report.MM, DomOpts);
    EngineOptions E;
    E.UseWidening = Options.UseWidening;
    E.WideningDelay = Options.WideningDelay;
    E.MaxIterations = Options.MaxIterations;
    E.Order = Options.Order.value_or(WorklistOrder::Rpo);
    E.Stats = Options.Stats;
    E.Budget = Options.Budget;
    E.DropWidenPush = Options.LFault == LoweringFault::DropWiden;
    E.SkipBackedges = Options.LFault == LoweringFault::SkipBackedge;
    FixpointResult<CacheDomain> F = runFixpoint(D, CP.G, E, &CP.LI);
    Report.States.Normal = std::move(F.In);
    Report.States.PostRollback.assign(CP.G.size(), CacheAbsState::bottom());
    Report.States.Speculative.assign(CP.G.size(), CacheAbsState::bottom());
    Report.Iterations = F.Iterations;
    Report.Converged = F.Converged;
    Report.BudgetExceeded = F.BudgetExceeded;
    if (Report.BudgetExceeded)
      return Report; // Partial states: the report is void, skip classify.
    classify(CP, D, Report);
    return Report;
  }

  // Speculative analysis, optionally with the §6.2 outer refinement:
  // bounds start at b_miss and shrink to b_hit for sites whose condition
  // loads are must-hits under the previous (sound) fixpoint.
  std::vector<uint32_t> Overrides;
  unsigned Round = 0;
  while (true) {
    ++Round;
    CacheDomain D(CP.G, *Report.MM, DomOpts);
    SpecEngineOptions E = makeEngineOptions(Options, Overrides);
    if (Options.IterativeDepthRefinement)
      E.Bounding = BoundingMode::Fixed; // Bounds come from Overrides.
    Report.States =
        runSpeculativeFixpoint(D, CP.G, CP.Plan, E, &CP.LI);
    Report.Iterations += Report.States.Iterations;
    Report.Converged = Report.States.Converged;
    Report.BudgetExceeded = Report.States.BudgetExceeded;
    if (Report.BudgetExceeded)
      break; // Dead budget: no classification, no further rounds.
    classify(CP, D, Report);

    if (!Options.IterativeDepthRefinement ||
        Round >= Options.MaxRefinementRounds)
      break;

    // Derive per-site bounds from this round's classification.
    std::vector<uint32_t> Next(CP.Plan.siteCount(), Options.DepthMiss);
    for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
      const SpecSite &S = CP.Plan.sites()[Site];
      bool AllHit = !S.CondLoads.empty();
      for (NodeId Load : S.CondLoads) {
        if (!Report.Reachable[Load])
          continue; // Unreachable loads do not widen the window.
        if (!Report.MustHit[Load]) {
          AllHit = false;
          break;
        }
      }
      if (AllHit)
        Next[Site] = Options.DepthHit;
    }
    if (Next == Overrides)
      break;
    Overrides = std::move(Next);
  }
  Report.RefinementRounds = Round;
  return Report;
}

/// Wraps a constant element index like the concrete machine and the cache
/// domain do (modulo the element count, total semantics).
uint64_t wrapElement(int64_t Index, uint64_t NumElements) {
  if (NumElements == 0)
    return 0;
  int64_t M = Index % static_cast<int64_t>(NumElements);
  if (M < 0)
    M += static_cast<int64_t>(NumElements);
  return static_cast<uint64_t>(M);
}

/// Builds the call summary of one analyzed callee (DESIGN.md §4).
/// \p Earlier holds the summaries of the callee's own (bottom-up earlier)
/// callees, so MayBlocks closes transitively.
CallSummary buildSummary(const CompiledProgram &CP, const MustHitReport &R,
                         const std::vector<CallSummary> &Earlier) {
  CallSummary Sum;
  const MemoryModel &MM = *R.MM;
  const Program &P = *CP.P;

  // MayBlocks: syntactic sweep over the callee's accesses. Unknown-index
  // array accesses may touch any line of the array; Call instructions pull
  // in the (already summarized) transitive callee's lines.
  for (const BasicBlock &B : P.Blocks) {
    for (const Instruction &I : B.Insts) {
      if (I.Op == Opcode::Call) {
        const CallSummary &CS = Earlier[I.Callee];
        Sum.MayBlocks.insert(Sum.MayBlocks.end(), CS.MayBlocks.begin(),
                             CS.MayBlocks.end());
        continue;
      }
      if (!I.accessesMemory())
        continue;
      const MemVar &Var = P.Vars[I.Var];
      if (Var.NumElements == 1 || I.Index.isImm()) {
        uint64_t Elem =
            I.Index.isImm() ? wrapElement(I.Index.Imm, Var.NumElements) : 0;
        Sum.MayBlocks.push_back(MM.blockOf(I.Var, Elem));
      } else {
        std::vector<BlockAddr> All = MM.blocksOf(I.Var);
        Sum.MayBlocks.insert(Sum.MayBlocks.end(), All.begin(), All.end());
      }
    }
  }
  std::sort(Sum.MayBlocks.begin(), Sum.MayBlocks.end());
  Sum.MayBlocks.erase(std::unique(Sum.MayBlocks.begin(), Sum.MayBlocks.end()),
                      Sum.MayBlocks.end());

  Sum.SetPressure.assign(MM.config().numSets(), 0);
  for (BlockAddr Block : Sum.MayBlocks)
    ++Sum.SetPressure[MM.setOf(Block)];

  // ExitMust: join of the architectural states at every reachable Ret.
  // The callee was analyzed from the unknown entry state (MUST top), so
  // these bounds hold in every call context. Symbolic instance blocks name
  // no concrete line in the caller and are dropped.
  CacheAbsState Exit = CacheAbsState::bottom();
  for (NodeId Node = 0; Node != CP.G.size(); ++Node) {
    if (CP.G.inst(Node).Op != Opcode::Ret)
      continue;
    CacheAbsState Obs = R.States.Normal[Node];
    Obs.joinInto(R.States.PostRollback[Node], /*UseShadow=*/false);
    Exit.joinInto(Obs, /*UseShadow=*/false);
  }
  if (!Exit.isBottom())
    for (const AgedBlock &E : Exit.mustEntries())
      if (!MM.isSymbolic(E.Block))
        Sum.ExitMust.push_back(E);
  return Sum;
}

} // namespace

MustHitReport specai::runMustHitAnalysis(const CompiledProgram &CP,
                                         const MustHitOptions &Options) {
  // Payload recycling for the whole run: every COW clone and join rebuild
  // below draws from (and retires to) this arena, so steady-state
  // transfers allocate nothing (docs/PERFORMANCE.md, "Arena lifetime").
  // States that escape in the returned report are plain heap objects and
  // stay valid after the scope unwinds.
  CacheStateArenaScope Arena;

  // Optional intra-analysis worker pool (`--intra-jobs`). Workers get
  // their own arena so payloads they retire recycle thread-locally.
  std::unique_ptr<IntraPool> Pool;
  std::optional<IntraPool::Scope> PoolScope;
  unsigned Jobs = IntraPool::resolveJobs(Options.IntraJobs);
  if (Jobs > 1 && !IntraPool::activePool()) {
    Pool = std::make_unique<IntraPool>(
        Jobs, [] { return std::make_shared<CacheStateArenaScope>(); });
    PoolScope.emplace(Pool.get());
  }

  CacheDomainOptions DomOpts;
  DomOpts.UseShadow = Options.UseShadow;

  if (CP.Callees.empty() && CP.Mode == LoweringMode::InlineUnroll)
    return runEngines(CP, Options, DomOpts);

  // Summarize mode. Loops are rolled, so the fixpoints need widening at
  // the LoopInfo headers; delay 1 keeps convergence fast (the cache
  // domain's per-block ladders make longer delays pure extra iterations).
  MustHitOptions SumOpts = Options;
  SumOpts.UseWidening = true;
  SumOpts.WideningDelay = 1;

  // Analyze callees bottom-up and summarize each. Callees run *without*
  // the shadow refinement: MAY lower bounds seeded from the empty cache
  // would be unsound claims about an unknown call context. The summary
  // table grows as we go; bottom-up order guarantees any Callee index a
  // function references is already present.
  std::vector<CallSummary> Summaries;
  Summaries.reserve(CP.Callees.size());
  std::vector<std::unique_ptr<MustHitReport>> CalleeReports;
  for (const std::unique_ptr<CompiledProgram> &CalleeCP : CP.Callees) {
    MustHitOptions CalleeOpts = SumOpts;
    CalleeOpts.UseShadow = false;
    CacheDomainOptions CalleeDom;
    CalleeDom.UseShadow = false;
    CalleeDom.Summaries = &Summaries;
    CalleeDom.StaleSummaryFault =
        Options.LFault == LoweringFault::StaleSummary;
    auto R = std::make_unique<MustHitReport>(
        runEngines(*CalleeCP, CalleeOpts, CalleeDom));
    if (R->BudgetExceeded) {
      // A budget that dies in a callee voids the whole module run: its
      // summary would be built from partial states.
      MustHitReport Aborted;
      Aborted.MM = std::make_unique<MemoryModel>(*CP.P, Options.Cache);
      Aborted.BudgetExceeded = true;
      Aborted.Converged = false;
      return Aborted;
    }
    Summaries.push_back(buildSummary(*CalleeCP, *R, Summaries));
    CalleeReports.push_back(std::move(R));
  }

  CacheDomainOptions MainDom;
  MainDom.UseShadow = Options.UseShadow;
  MainDom.Summaries = &Summaries;
  MainDom.StaleSummaryFault = Options.LFault == LoweringFault::StaleSummary;
  MustHitReport Report = runEngines(CP, SumOpts, MainDom);
  Report.Summaries = std::move(Summaries);
  Report.CalleeReports = std::move(CalleeReports);
  return Report;
}
