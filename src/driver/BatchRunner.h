//===- BatchRunner.h - Parallel multi-configuration sweeps ------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-pool driver fanning one compiled program out across analysis
/// configurations — merge strategies (Figure 6), cache geometries, depth
/// bounding modes (§6.2), and replacement policies (docs/DOMAINS.md) —
/// and aggregating the per-run MustHitReport/SideChannelReport counters
/// into table rows.
///
/// `runMustHitAnalysis` is pure with respect to its `const
/// CompiledProgram &` input, so the variants of a sweep are embarrassingly
/// parallel: the runner compiles once, hands each worker thread its own
/// MustHitOptions, and writes each result into the slot reserved for its
/// variant. Rows therefore come back in variant order and are bit-for-bit
/// identical whatever the thread count — only the wall-clock timings vary.
///
/// This is the substrate behind `specai-cli --batch` and the Table 6 /
/// ablation benches.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DRIVER_BATCHRUNNER_H
#define SPECAI_DRIVER_BATCHRUNNER_H

#include "analysis/AnalysisPipeline.h"
#include "analysis/SideChannel.h"
#include "repair/MitigationSynth.h"
#include "support/Table.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace specai {

/// Runs Fn(0..Count-1) across up to \p Jobs worker threads (0 = hardware
/// concurrency), work-stealing indices off a shared counter. Never spawns
/// more threads than work items; Jobs <= 1 runs inline. Callers get
/// jobs-invariant results by writing into index-addressed slots, the same
/// discipline BatchRunner::run uses for its rows — the fuzz campaign fans
/// whole programs out through this as well.
///
/// Exception safety: an exception thrown by \p Fn does not escape a worker
/// thread (which would std::terminate the whole process — fatal for the
/// long-lived specaid daemon, docs/SERVICE.md). The first exception is
/// captured, the remaining workers stop claiming new indices and are
/// joined, and the exception is rethrown on the calling thread. Indices
/// already claimed by other workers may still run to completion.
void parallelFor(unsigned Jobs, size_t Count,
                 const std::function<void(size_t)> &Fn);

/// One analysis configuration of a sweep.
struct BatchVariant {
  /// Row label, e.g. "just-in-time/512Lx512W/dynamic".
  std::string Label;
  MustHitOptions Options;
  /// Also run the side-channel detector over the finished report.
  bool DetectLeaks = true;

  /// Canonical "strategy/geometry/bounding" label derived from \p Options.
  static std::string describe(const MustHitOptions &Options);
};

/// Aggregated outcome of one variant. Only scalar counters are kept (the
/// per-node state vectors of MustHitReport stay on the worker's stack), so
/// a row is cheap to collect and compare.
struct BatchRow {
  std::string Label;

  // Configuration echo, so tables are self-describing.
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  BoundingMode Bounding = BoundingMode::Dynamic;
  CacheConfig Cache;
  bool Speculative = true;

  // MustHitReport counters (Table 5/6 columns).
  uint64_t AccessNodes = 0;
  uint64_t MissCount = 0;
  uint64_t SpMissCount = 0;
  uint64_t BranchCount = 0;
  uint64_t Iterations = 0;
  unsigned RefinementRounds = 1;
  bool Converged = true;
  /// The run's ExecBudget tripped; every other field of this row is void
  /// (the leak scan is skipped too). Excluded from sameResults like
  /// Seconds — a timed-out row asserts nothing about the program.
  bool BudgetExceeded = false;

  // SideChannelReport counters (Table 7 columns); only meaningful when
  // LeaksChecked (the variant ran with DetectLeaks = true). LeakSites
  // holds the rendered per-site diagnostics so batch consumers can report
  // what leaked without re-running the analysis.
  bool LeaksChecked = false;
  uint64_t LeakCount = 0;
  uint64_t ProvenLeakFree = 0;
  std::vector<std::string> LeakSites;

  /// Wall time of this variant's analysis. Informational only: timings
  /// depend on scheduling and are excluded from row equality.
  double Seconds = 0;

  /// Analysis-result equality (label, configuration, and every counter —
  /// not the timing). The determinism tests and the --jobs invariance
  /// check compare rows with this.
  bool sameResults(const BatchRow &RHS) const;
};

/// Result of one sweep.
struct BatchReport {
  /// One row per variant, in variant order regardless of which worker
  /// finished first.
  std::vector<BatchRow> Rows;
  /// Wall time of the whole sweep.
  double TotalSeconds = 0;
  /// Worker threads the sweep actually used.
  unsigned JobsUsed = 1;

  /// Renders the rows as one aligned ASCII table.
  TableWriter toTable() const;

  /// The row labeled \p Label, or nullptr. Consumers that unpack specific
  /// variants should use this rather than positional indexing, so a
  /// reordered sweep fails loudly instead of mislabeling columns.
  const BatchRow *findRow(const std::string &Label) const;

  /// Like findRow, but throws std::out_of_range when the row is missing —
  /// for consumers whose table columns hard-code variant labels. Benches
  /// keep their fail-fast behavior by catching at the call site (or not at
  /// all); library code hosting a daemon must never exit() on a malformed
  /// sweep, so this reports instead of killing the process.
  const BatchRow &requireRow(const std::string &Label) const;

  /// True when both reports hold the same rows (timings ignored).
  bool sameResults(const BatchReport &RHS) const;
};

/// Fans analysis variants out over a pool of worker threads.
class BatchRunner {
public:
  /// \p Jobs worker threads; 0 picks the hardware concurrency.
  explicit BatchRunner(unsigned Jobs = 0);

  /// Threads the next run() will use (never 0).
  unsigned jobCount() const { return Jobs; }

  /// Runs every variant over \p CP and collects the rows. The pool never
  /// spawns more threads than variants.
  BatchReport run(const CompiledProgram &CP,
                  const std::vector<BatchVariant> &Variants) const;

  /// Compiles \p Source once, then sweeps. On compile error returns an
  /// empty report and leaves the details in \p Diags.
  BatchReport runSource(const std::string &Source,
                        const std::vector<BatchVariant> &Variants,
                        DiagnosticEngine &Diags,
                        const LoweringOptions &Lowering = {}) const;

  /// The Figure 6 / Table 6 sweep: \p Base under all four merge
  /// strategies.
  static std::vector<BatchVariant>
  mergeStrategySweep(const MustHitOptions &Base);

  /// The §6.2 ablation: fixed vs dynamic bounding vs the iterative outer
  /// refinement.
  static std::vector<BatchVariant>
  boundingModeSweep(const MustHitOptions &Base);

  /// Full cross product: strategies x cache geometries x bounding modes x
  /// replacement policies. Variant order is the nesting order of the
  /// arguments (strategy outermost), so rows group by strategy.
  /// Policy/geometry combinations that are invalid (PLRU over a
  /// non-power-of-two associativity) are skipped rather than run.
  static std::vector<BatchVariant>
  crossProductSweep(const MustHitOptions &Base,
                    const std::vector<MergeStrategy> &Strategies,
                    const std::vector<CacheConfig> &Configs,
                    const std::vector<BoundingMode> &Boundings,
                    const std::vector<ReplacementPolicy> &Policies = {
                        ReplacementPolicy::Lru});

  /// \p Base under each replacement policy (invalid combinations skipped),
  /// labeled by policy name — the sweep behind `specai-cli --batch` when a
  /// policy comparison is wanted and `bench_policy_matrix`.
  static std::vector<BatchVariant>
  policySweep(const MustHitOptions &Base,
              const std::vector<ReplacementPolicy> &Policies = {
                  ReplacementPolicy::Lru, ReplacementPolicy::Fifo,
                  ReplacementPolicy::Plru});

private:
  unsigned Jobs;
};

/// One self-contained analysis request: source text plus every knob that
/// can change the verdict. This is the unit the specaid service caches by
/// content digest (docs/SERVICE.md); single-shot consumers can use it too.
struct RunRequest {
  std::string Source;
  LoweringOptions Lowering;
  MustHitOptions Options;
  /// Also run the side-channel detector (like BatchVariant::DetectLeaks).
  bool DetectLeaks = true;
};

/// Outcome of runRequest. Unlike the CLI front ends this never exits and
/// never prints: compile failures come back as Ok = false with the
/// rendered diagnostics, so a daemon can turn them into error responses.
struct RunOutcome {
  bool Ok = false;
  /// Rendered DiagnosticEngine output when !Ok.
  std::string Error;
  /// FNV-1a over the lowered IR of the entry and (Summarize mode) every
  /// callee — the content-addressed "program" half of a verdict-cache key.
  /// Two sources that lower to identical IR share a digest; any change to
  /// lowering mode, entry, or unroll limits that alters the IR splits it.
  uint64_t ProgramDigest = 0;
  /// The condensed verdict, identical to what a BatchRunner sweep of this
  /// one variant would produce (bit-identical counters, leak sites).
  BatchRow Row;
};

/// Compiles and analyzes one request. Pure library code: reports errors
/// through the outcome instead of printf/exit, safe to call from daemon
/// worker threads. The verdict is bit-identical to `specai-cli` on the
/// same source and options.
RunOutcome runRequest(const RunRequest &Req);

/// Outcome of runRepairRequest: the repair-verb analogue of RunOutcome.
/// Ok means the source compiled; whether a repair was found is
/// Result.Repaired (LeaksBefore == 0 means there was nothing to fix).
struct RepairRunOutcome {
  bool Ok = false;
  /// Rendered DiagnosticEngine output when !Ok.
  std::string Error;
  /// Same content-addressed program digest runRequest computes, so repair
  /// verdicts share the service's source memo and cache-key discipline.
  uint64_t ProgramDigest = 0;
  RepairResult Result;
};

/// Compiles \p Req.Source and synthesizes a minimum-cost repair under
/// \p Req.Options (repair/MitigationSynth.h). Pure library code like
/// runRequest — the substrate of the specaid `repair` verb and
/// `specai-cli --repair`. \p Req.DetectLeaks is ignored: repair always
/// runs the leak detector (there is nothing to repair without it).
RepairRunOutcome runRepairRequest(const RunRequest &Req);

/// Parses a bench-style command line that accepts only `--jobs N`.
/// Returns 0 (all cores) when the flag is absent; returns nullopt and
/// fills \p Error on a valueless --jobs, a non-numeric N, or any unknown
/// argument — a silently dropped flag would report contended timings the
/// user believes are serial. Benches fail fast at the call site (print to
/// stderr, exit nonzero); library code must not, so this never exits.
std::optional<unsigned> parseJobsFlag(int Argc, char **Argv,
                                      std::string &Error);

} // namespace specai

#endif // SPECAI_DRIVER_BATCHRUNNER_H
