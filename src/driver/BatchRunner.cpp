//===- BatchRunner.cpp - Parallel multi-configuration sweeps --------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "driver/BatchRunner.h"

#include "fuzz/StateDigest.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace specai;

namespace {

const char *boundingModeName(BoundingMode Mode) {
  switch (Mode) {
  case BoundingMode::Fixed:
    return "fixed";
  case BoundingMode::Dynamic:
    return "dynamic";
  }
  return "?";
}

/// Runs one variant and condenses the reports into a row. Everything here
/// is confined to the calling worker thread; only the returned row crosses
/// threads.
BatchRow runVariant(const CompiledProgram &CP, const BatchVariant &V) {
  BatchRow Row;
  Row.Label = V.Label.empty() ? BatchVariant::describe(V.Options) : V.Label;
  Row.Strategy = V.Options.Strategy;
  Row.Bounding = V.Options.Bounding;
  Row.Cache = V.Options.Cache;
  Row.Speculative = V.Options.Speculative;

  Timer T;
  MustHitReport R = runMustHitAnalysis(CP, V.Options);
  Row.Seconds = T.seconds(); // Analysis only, excluding the leak scan.
  Row.AccessNodes = R.AccessNodes;
  Row.MissCount = R.MissCount;
  Row.SpMissCount = R.SpMissCount;
  Row.BranchCount = R.BranchCount;
  Row.Iterations = R.Iterations;
  Row.RefinementRounds = R.RefinementRounds;
  Row.Converged = R.Converged;
  Row.BudgetExceeded = R.BudgetExceeded;
  if (Row.BudgetExceeded)
    return Row; // Void report: classification vectors may be empty.
  if (V.DetectLeaks) {
    SideChannelReport SC = detectLeaks(CP, R);
    Row.LeaksChecked = true;
    Row.LeakCount = SC.Leaks.size();
    Row.ProvenLeakFree = SC.ProvenLeakFree;
    for (const LeakSite &L : SC.Leaks)
      Row.LeakSites.push_back(L.str(*CP.P));
  }
  return Row;
}

} // namespace

void specai::parallelFor(unsigned Jobs, size_t Count,
                         const std::function<void(size_t)> &Fn) {
  if (Count == 0)
    return;
  if (Jobs == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Jobs = HW == 0 ? 1 : HW;
  }
  unsigned Workers = static_cast<unsigned>(std::min<size_t>(Jobs, Count));

  // An exception escaping a std::thread calls std::terminate, which would
  // take down not just this sweep but the whole process hosting it — fatal
  // for the specaid daemon, where one bad request must not kill the
  // server. Capture the first exception, let every worker quiesce, and
  // rethrow on the caller once all threads are joined.
  std::atomic<size_t> NextIndex{0};
  std::atomic<bool> Abort{false};
  std::exception_ptr FirstError;
  std::mutex ErrorLock;
  auto Work = [&]() {
    while (!Abort.load(std::memory_order_relaxed)) {
      size_t I = NextIndex.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      try {
        Fn(I);
      } catch (...) {
        {
          std::lock_guard<std::mutex> Guard(ErrorLock);
          if (!FirstError)
            FirstError = std::current_exception();
        }
        Abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (Workers <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}

std::optional<unsigned> specai::parseJobsFlag(int Argc, char **Argv,
                                              std::string &Error) {
  unsigned Jobs = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") != 0) {
      Error = std::string("error: unknown argument '") + Argv[I] +
              "' (only --jobs N)";
      return std::nullopt;
    }
    if (I + 1 >= Argc) {
      Error = "error: --jobs needs a value";
      return std::nullopt;
    }
    std::optional<unsigned> Value = parseUnsigned(Argv[++I]);
    if (!Value) {
      Error = std::string("error: --jobs needs a non-negative number, "
                          "got '") +
              Argv[I] + "'";
      return std::nullopt;
    }
    Jobs = *Value;
  }
  return Jobs;
}

RunOutcome specai::runRequest(const RunRequest &Req) {
  RunOutcome Out;
  DiagnosticEngine Diags;
  auto CP = compileSource(Req.Source, Diags, Req.Lowering);
  if (!CP) {
    Out.Error = Diags.str();
    return Out;
  }
  // Content digest of the lowered module: entry IR first, then every
  // callee in CompiledProgram::Callees order (deterministic — bottom-up
  // call-graph order fixed by the lowering).
  Out.ProgramDigest = fnv1a(CP->P->str());
  for (const std::unique_ptr<CompiledProgram> &Callee : CP->Callees)
    Out.ProgramDigest = fnv1a(Callee->P->str(), Out.ProgramDigest);

  BatchVariant V;
  V.Options = Req.Options;
  V.DetectLeaks = Req.DetectLeaks;
  Out.Row = runVariant(*CP, V);
  Out.Ok = true;
  return Out;
}

RepairRunOutcome specai::runRepairRequest(const RunRequest &Req) {
  RepairRunOutcome Out;
  DiagnosticEngine Diags;
  auto CP = compileSource(Req.Source, Diags, Req.Lowering);
  if (!CP) {
    Out.Error = Diags.str();
    return Out;
  }
  Out.ProgramDigest = fnv1a(CP->P->str());
  for (const std::unique_ptr<CompiledProgram> &Callee : CP->Callees)
    Out.ProgramDigest = fnv1a(Callee->P->str(), Out.ProgramDigest);

  RepairOptions RO;
  RO.Analysis = Req.Options;
  Out.Result = synthesizeRepairs(*CP, RO);
  Out.Ok = true;
  return Out;
}

std::string BatchVariant::describe(const MustHitOptions &Options) {
  std::string S = Options.Speculative ? mergeStrategyName(Options.Strategy)
                                      : "non-speculative";
  S += "/";
  S += std::to_string(Options.Cache.NumLines);
  S += "Lx";
  S += std::to_string(Options.Cache.Associativity);
  S += "W/";
  if (Options.IterativeDepthRefinement)
    S += "refine";
  else
    S += boundingModeName(Options.Bounding);
  // The policy segment appears only for non-LRU rows, so every label (and
  // with it the benches' requireRow lookups) predating the policy
  // dimension is unchanged.
  if (Options.Cache.Policy != ReplacementPolicy::Lru) {
    S += "/";
    S += replacementPolicyName(Options.Cache.Policy);
  }
  return S;
}

bool BatchRow::sameResults(const BatchRow &RHS) const {
  return Label == RHS.Label && Strategy == RHS.Strategy &&
         Bounding == RHS.Bounding &&
         Cache.NumLines == RHS.Cache.NumLines &&
         Cache.LineSize == RHS.Cache.LineSize &&
         Cache.Associativity == RHS.Cache.Associativity &&
         Cache.Policy == RHS.Cache.Policy &&
         Speculative == RHS.Speculative && AccessNodes == RHS.AccessNodes &&
         MissCount == RHS.MissCount && SpMissCount == RHS.SpMissCount &&
         BranchCount == RHS.BranchCount && Iterations == RHS.Iterations &&
         RefinementRounds == RHS.RefinementRounds &&
         Converged == RHS.Converged && LeaksChecked == RHS.LeaksChecked &&
         LeakCount == RHS.LeakCount &&
         ProvenLeakFree == RHS.ProvenLeakFree && LeakSites == RHS.LeakSites;
}

const BatchRow *BatchReport::findRow(const std::string &Label) const {
  for (const BatchRow &Row : Rows)
    if (Row.Label == Label)
      return &Row;
  return nullptr;
}

const BatchRow &BatchReport::requireRow(const std::string &Label) const {
  if (const BatchRow *Row = findRow(Label))
    return *Row;
  // Throwing (instead of the historical printf + exit(1)) keeps a daemon
  // hosting this library alive on a malformed sweep; fail-fast consumers
  // like the benches catch at the call site and exit themselves.
  throw std::out_of_range("no '" + Label + "' row in sweep");
}

bool BatchReport::sameResults(const BatchReport &RHS) const {
  if (Rows.size() != RHS.Rows.size())
    return false;
  for (size_t I = 0; I != Rows.size(); ++I)
    if (!Rows[I].sameResults(RHS.Rows[I]))
      return false;
  return true;
}

TableWriter BatchReport::toTable() const {
  TableWriter T({"Config", "Cache", "#Access", "#Miss", "#SpMiss", "#Branch",
                 "#Ite", "Leaks", "Time(s)"});
  for (const BatchRow &R : Rows) {
    std::string Cache = std::to_string(R.Cache.NumLines) + "x" +
                        std::to_string(R.Cache.LineSize) + "B/" +
                        std::to_string(R.Cache.Associativity) + "w";
    if (R.Cache.Policy != ReplacementPolicy::Lru) {
      Cache += "/";
      Cache += replacementPolicyName(R.Cache.Policy);
    }
    std::string Leaks = "-";
    if (R.LeaksChecked) {
      Leaks = std::to_string(R.LeakCount);
      Leaks += "/";
      Leaks += std::to_string(R.LeakCount + R.ProvenLeakFree);
    }
    T.addRow({R.Label, Cache, std::to_string(R.AccessNodes),
              std::to_string(R.MissCount), std::to_string(R.SpMissCount),
              std::to_string(R.BranchCount), std::to_string(R.Iterations),
              Leaks, formatDouble(R.Seconds, 3)});
  }
  return T;
}

BatchRunner::BatchRunner(unsigned Jobs) : Jobs(Jobs) {
  if (this->Jobs == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    this->Jobs = HW == 0 ? 1 : HW;
  }
}

BatchReport BatchRunner::run(const CompiledProgram &CP,
                             const std::vector<BatchVariant> &Variants) const {
  BatchReport Report;
  Report.Rows.resize(Variants.size());
  unsigned Workers =
      static_cast<unsigned>(std::min<size_t>(Jobs, Variants.size()));
  Report.JobsUsed = Workers == 0 ? 1 : Workers;
  if (Variants.empty())
    return Report;

  Timer Total;
  // Work stealing off a shared counter: each worker claims the next
  // unclaimed variant and writes the row into that variant's slot, so row
  // order is the variant order no matter which worker finished first.
  parallelFor(Workers, Variants.size(), [&](size_t I) {
    Report.Rows[I] = runVariant(CP, Variants[I]);
  });
  Report.TotalSeconds = Total.seconds();
  return Report;
}

BatchReport BatchRunner::runSource(const std::string &Source,
                                   const std::vector<BatchVariant> &Variants,
                                   DiagnosticEngine &Diags,
                                   const LoweringOptions &Lowering) const {
  auto CP = compileSource(Source, Diags, Lowering);
  if (!CP)
    return BatchReport{};
  return run(*CP, Variants);
}

std::vector<BatchVariant>
BatchRunner::mergeStrategySweep(const MustHitOptions &Base) {
  std::vector<BatchVariant> Variants;
  for (MergeStrategy S :
       {MergeStrategy::NoMerge, MergeStrategy::MergeAtExit,
        MergeStrategy::JustInTime, MergeStrategy::MergeAtRollback}) {
    BatchVariant V;
    V.Options = Base;
    V.Options.Speculative = true;
    V.Options.Strategy = S;
    V.Label = mergeStrategyName(S);
    Variants.push_back(std::move(V));
  }
  return Variants;
}

std::vector<BatchVariant>
BatchRunner::boundingModeSweep(const MustHitOptions &Base) {
  std::vector<BatchVariant> Variants;
  auto Add = [&](const char *Label, BoundingMode Mode, bool Refine) {
    BatchVariant V;
    V.Options = Base;
    V.Options.Speculative = true;
    V.Options.Bounding = Mode;
    V.Options.IterativeDepthRefinement = Refine;
    V.Label = Label;
    Variants.push_back(std::move(V));
  };
  Add("fixed", BoundingMode::Fixed, false);
  Add("dynamic", BoundingMode::Dynamic, false);
  Add("refine", BoundingMode::Fixed, true);
  return Variants;
}

std::vector<BatchVariant>
BatchRunner::crossProductSweep(const MustHitOptions &Base,
                               const std::vector<MergeStrategy> &Strategies,
                               const std::vector<CacheConfig> &Configs,
                               const std::vector<BoundingMode> &Boundings,
                               const std::vector<ReplacementPolicy> &Policies) {
  std::vector<BatchVariant> Variants;
  for (MergeStrategy S : Strategies)
    for (const CacheConfig &C : Configs)
      for (BoundingMode B : Boundings)
        for (ReplacementPolicy P : Policies) {
          BatchVariant V;
          V.Options = Base;
          V.Options.Speculative = true;
          V.Options.Strategy = S;
          V.Options.Cache = C.withPolicy(P);
          if (!V.Options.Cache.isValid())
            continue; // E.g. PLRU over a non-power-of-two associativity.
          V.Options.Bounding = B;
          V.Label = BatchVariant::describe(V.Options);
          Variants.push_back(std::move(V));
        }
  return Variants;
}

std::vector<BatchVariant>
BatchRunner::policySweep(const MustHitOptions &Base,
                         const std::vector<ReplacementPolicy> &Policies) {
  std::vector<BatchVariant> Variants;
  for (ReplacementPolicy P : Policies) {
    BatchVariant V;
    V.Options = Base;
    V.Options.Cache = Base.Cache.withPolicy(P);
    if (!V.Options.Cache.isValid())
      continue;
    V.Label = replacementPolicyName(P);
    Variants.push_back(std::move(V));
  }
  return Variants;
}
