//===- WorklistEngine.h - Baseline fixed-point engine -----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1: a standard worklist fixed-point over the flat
/// CFG, generic over the abstract domain. This is the *non-speculative*
/// baseline the evaluation compares against (the "state-of-the-art,
/// non-speculative static cache analysis"). The speculative lifting lives
/// in SpeculativeEngine.h.
///
/// Domain concept:
///   using State;
///   State  bottom() const;            // join identity / unreachable
///   State  entry() const;             // state at the program entry
///   bool   isBottom(const State&) const;
///   void   transfer(State&, NodeId);  // may be stateful (instance picks)
///   bool   joinInto(State &Into, const State &From) const; // true if grew
///   void   widen(State &Cur, const State &Prev) const;
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_AI_WORKLISTENGINE_H
#define SPECAI_AI_WORKLISTENGINE_H

#include "cfg/FlatCfg.h"
#include "cfg/LoopInfo.h"
#include "support/Statistics.h"

#include <deque>
#include <vector>

namespace specai {

/// Options shared by the baseline and speculative engines.
struct EngineOptions {
  /// Apply the widening operator at loop headers once a node has been
  /// re-joined more than WideningDelay times (paper §6.3). The cache
  /// domain's lattice is finite so this is an accelerator; for unbounded
  /// domains (intervals) it is required for termination.
  bool UseWidening = false;
  uint32_t WideningDelay = 8;
  /// Safety valve: abort (with Converged=false) after this many worklist
  /// pops.
  uint64_t MaxIterations = 200000000;
};

/// Result of a baseline run: per-node input states.
template <typename DomainT> struct FixpointResult {
  using State = typename DomainT::State;
  /// In[n]: join over all edges into n (state before executing n).
  std::vector<State> In;
  /// Worklist pops until convergence.
  uint64_t Iterations = 0;
  bool Converged = true;
};

/// Runs Algorithm 1: initializes the entry to Domain::entry() and every
/// other node to bottom, then iterates transfer/join to a fixed point.
/// \p LI may be null when widening is disabled.
template <typename DomainT>
FixpointResult<DomainT> runFixpoint(DomainT &D, const FlatCfg &G,
                                    const EngineOptions &Options = {},
                                    const LoopInfo *LI = nullptr) {
  using State = typename DomainT::State;
  FixpointResult<DomainT> R;
  size_t N = G.size();
  R.In.assign(N, D.bottom());
  if (N == 0)
    return R;

  R.In[G.entry()] = D.entry();

  std::vector<uint32_t> JoinCounts(N, 0);
  std::deque<NodeId> Worklist;
  std::vector<bool> InList(N, false);
  auto Enqueue = [&](NodeId Node) {
    if (!InList[Node]) {
      InList[Node] = true;
      Worklist.push_back(Node);
    }
  };
  Enqueue(G.entry());

  while (!Worklist.empty()) {
    if (++R.Iterations > Options.MaxIterations) {
      R.Converged = false;
      break;
    }
    NodeId Node = Worklist.front();
    Worklist.pop_front();
    InList[Node] = false;

    if (D.isBottom(R.In[Node]))
      continue;
    State Out = R.In[Node];
    D.transfer(Out, Node);

    for (NodeId Succ : G.successors(Node)) {
      bool UseWiden = Options.UseWidening && LI && LI->isHeader(Succ) &&
                      JoinCounts[Succ] >= Options.WideningDelay;
      if (UseWiden) {
        State Prev = R.In[Succ];
        if (D.joinInto(R.In[Succ], Out)) {
          D.widen(R.In[Succ], Prev);
          ++JoinCounts[Succ];
          Enqueue(Succ);
        }
      } else if (D.joinInto(R.In[Succ], Out)) {
        ++JoinCounts[Succ];
        Enqueue(Succ);
      }
    }
  }
  return R;
}

} // namespace specai

#endif // SPECAI_AI_WORKLISTENGINE_H
