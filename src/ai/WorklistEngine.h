//===- WorklistEngine.h - Baseline fixed-point engine -----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1: a standard worklist fixed-point over the flat
/// CFG, generic over the abstract domain. This is the *non-speculative*
/// baseline the evaluation compares against (the "state-of-the-art,
/// non-speculative static cache analysis"). The speculative lifting lives
/// in SpeculativeEngine.h.
///
/// Domain concept:
///   using State;
///   State  bottom() const;            // join identity / unreachable
///   State  entry() const;             // state at the program entry
///   bool   isBottom(const State&) const;
///   void   transfer(State&, NodeId);  // may be stateful (instance picks)
///   bool   joinInto(State &Into, const State &From) const; // true if grew
///   void   widen(State &Cur, const State &Prev) const;
///
/// Optional hot-path hooks (detected via requires-expressions; the cache
/// domain provides them, the interval domain runs without):
///   bool     isTransferIdentity(NodeId, bool Speculative) const;
///   bool     isTransferPure(NodeId, bool Speculative) const;
///   uint64_t stateHash(const State&) const;
///
/// The worklist pops in reverse post-order by default (predecessors before
/// successors, so a node's inputs settle before it is processed) with an
/// on-worklist bitmap that dedupes pushes; `WorklistOrder::Fifo` restores
/// the legacy queue for A/B comparisons. Push/pop/dedup counters land in
/// EngineOptions::Stats when provided.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_AI_WORKLISTENGINE_H
#define SPECAI_AI_WORKLISTENGINE_H

#include "cfg/FlatCfg.h"
#include "cfg/LoopInfo.h"
#include "support/ExecBudget.h"
#include "support/Statistics.h"

#include <deque>
#include <queue>
#include <string>
#include <vector>

namespace specai {

/// Pop discipline of the fixed-point worklists.
enum class WorklistOrder {
  /// Legacy FIFO queue (the pre-RPO engines' order).
  Fifo,
  /// Reverse post-order priority: among pending nodes, the earliest in RPO
  /// pops first, so loop bodies settle before their exits re-enter.
  Rpo,
};

/// Options shared by the baseline and speculative engines.
struct EngineOptions {
  /// Apply the widening operator at loop headers once a node has been
  /// re-joined more than WideningDelay times (paper §6.3). The cache
  /// domain's lattice is finite so this is an accelerator; for unbounded
  /// domains (intervals) it is required for termination.
  bool UseWidening = false;
  uint32_t WideningDelay = 8;
  /// Safety valve: abort (with Converged=false) after this many worklist
  /// pops.
  uint64_t MaxIterations = 200000000;
  /// Worklist pop discipline; Rpo minimizes re-processing.
  WorklistOrder Order = WorklistOrder::Rpo;
  /// Fault injection (drop-widen): after widening fires at a loop header,
  /// the header is *not* re-queued, so the widened state never propagates
  /// into the loop body. Terminates (widening is still applied) but is
  /// deliberately unsound; only the lowering self-test sets this
  /// (specai-fuzz --selftest lowering).
  bool DropWidenPush = false;
  /// Fault injection (skip-backedge): joins along loop back edges (an edge
  /// into a loop header from inside that loop's body) are skipped entirely,
  /// so loop-carried cache effects never reach the header. Deliberately
  /// unsound; only the lowering self-test sets this.
  bool SkipBackedges = false;
  /// When set, the engine reports worklist/memo counters here (prefixed
  /// "worklist." for the baseline, "spec." for the speculative engine).
  StatisticSet *Stats = nullptr;
  /// Cooperative cancellation: when set, every worklist pop charges one
  /// step and an exhausted budget aborts the fixpoint with Converged=false
  /// and BudgetExceeded=true. Unlike MaxIterations (a per-fixpoint safety
  /// valve whose trip still yields an Ok verdict), a tripped budget means
  /// the *request* is over — the service answers `status: timeout` and
  /// never caches the partial result. Not part of any cache key.
  ExecBudget *Budget = nullptr;
};

/// Work queue over CFG nodes with an on-worklist bitmap: a node is never
/// queued twice, so every push past the first is deduped rather than
/// producing a duplicate pop later.
class NodeWorklist {
public:
  NodeWorklist(const FlatCfg &G, WorklistOrder Order) : Order(Order) {
    size_t N = G.size();
    InList.assign(N, false);
    if (Order == WorklistOrder::Rpo) {
      Rank.resize(N);
      NodeOf.resize(N);
      std::vector<bool> Ranked(N, false);
      uint32_t R = 0;
      for (NodeId Node : G.reversePostOrder()) {
        Rank[Node] = R;
        NodeOf[R] = Node;
        Ranked[Node] = true;
        ++R;
      }
      // Unreachable nodes rank after every reachable one, in id order.
      for (NodeId Node = 0; Node != N; ++Node)
        if (!Ranked[Node]) {
          Rank[Node] = R;
          NodeOf[R] = Node;
          ++R;
        }
    }
  }

  void push(NodeId Node) {
    ++PushCount;
    if (InList[Node]) {
      ++DedupCount;
      return;
    }
    InList[Node] = true;
    if (Order == WorklistOrder::Rpo)
      Heap.push(Rank[Node]);
    else
      Fifo.push_back(Node);
  }

  bool empty() const {
    return Order == WorklistOrder::Rpo ? Heap.empty() : Fifo.empty();
  }

  NodeId pop() {
    ++PopCount;
    NodeId Node;
    if (Order == WorklistOrder::Rpo) {
      Node = NodeOf[Heap.top()];
      Heap.pop();
    } else {
      Node = Fifo.front();
      Fifo.pop_front();
    }
    InList[Node] = false;
    return Node;
  }

  uint64_t pushes() const { return PushCount; }
  uint64_t deduped() const { return DedupCount; }
  uint64_t pops() const { return PopCount; }

  /// Accumulates "<prefix>.pops" / "<prefix>.pushes" /
  /// "<prefix>.pushes.deduped" into \p Stats (no-op when null).
  void report(StatisticSet *Stats, const std::string &Prefix) const {
    if (!Stats)
      return;
    Stats->increment(Prefix + ".pops", PopCount);
    Stats->increment(Prefix + ".pushes", PushCount);
    Stats->increment(Prefix + ".pushes.deduped", DedupCount);
  }

private:
  WorklistOrder Order;
  std::vector<bool> InList;
  /// RPO rank per node and its inverse (identity-sized; unreachable nodes
  /// rank last).
  std::vector<uint32_t> Rank;
  std::vector<NodeId> NodeOf;
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<uint32_t>>
      Heap;
  std::deque<NodeId> Fifo;
  uint64_t PushCount = 0;
  uint64_t DedupCount = 0;
  uint64_t PopCount = 0;
};

/// Result of a baseline run: per-node input states.
template <typename DomainT> struct FixpointResult {
  using State = typename DomainT::State;
  /// In[n]: join over all edges into n (state before executing n).
  std::vector<State> In;
  /// Worklist pops until convergence.
  uint64_t Iterations = 0;
  bool Converged = true;
  /// True iff the run was cut short by an exhausted ExecBudget (deadline,
  /// step cap, or external cancel) rather than by convergence or the
  /// MaxIterations safety valve.
  bool BudgetExceeded = false;
};

/// Runs Algorithm 1: initializes the entry to Domain::entry() and every
/// other node to bottom, then iterates transfer/join to a fixed point.
/// \p LI may be null when widening is disabled.
template <typename DomainT>
FixpointResult<DomainT> runFixpoint(DomainT &D, const FlatCfg &G,
                                    const EngineOptions &Options = {},
                                    const LoopInfo *LI = nullptr) {
  using State = typename DomainT::State;
  FixpointResult<DomainT> R;
  size_t N = G.size();
  R.In.assign(N, D.bottom());
  if (N == 0)
    return R;

  R.In[G.entry()] = D.entry();

  std::vector<uint32_t> JoinCounts(N, 0);
  NodeWorklist Worklist(G, Options.Order);
  Worklist.push(G.entry());

  // Fault injection only (SkipBackedges): true iff From->To is a back edge,
  // i.e. To heads a loop whose body contains From. Loops sharing a header
  // are merged by LoopInfo, so at most one loop matches.
  auto IsBackEdge = [&](NodeId From, NodeId To) {
    if (!LI || !LI->isHeader(To))
      return false;
    for (const Loop &L : LI->loops())
      if (L.Header == To)
        for (NodeId B : L.Body)
          if (B == From)
            return true;
    return false;
  };

  while (!Worklist.empty()) {
    if (++R.Iterations > Options.MaxIterations) {
      R.Converged = false;
      break;
    }
    if (Options.Budget && Options.Budget->chargeStep()) {
      R.Converged = false;
      R.BudgetExceeded = true;
      break;
    }
    NodeId Node = Worklist.pop();

    if (D.isBottom(R.In[Node]))
      continue;
    State Out = R.In[Node];
    D.transfer(Out, Node);

    for (NodeId Succ : G.successors(Node)) {
      if (Options.SkipBackedges && IsBackEdge(Node, Succ))
        continue;
      bool UseWiden = Options.UseWidening && LI && LI->isHeader(Succ) &&
                      JoinCounts[Succ] >= Options.WideningDelay;
      if (UseWiden) {
        State Prev = R.In[Succ];
        if (D.joinInto(R.In[Succ], Out)) {
          D.widen(R.In[Succ], Prev);
          ++JoinCounts[Succ];
          if (!Options.DropWidenPush)
            Worklist.push(Succ);
        }
      } else if (D.joinInto(R.In[Succ], Out)) {
        ++JoinCounts[Succ];
        Worklist.push(Succ);
      }
    }
  }
  Worklist.report(Options.Stats, "worklist");
  return R;
}

} // namespace specai

#endif // SPECAI_AI_WORKLISTENGINE_H
