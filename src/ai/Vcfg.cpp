//===- Vcfg.cpp -----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ai/Vcfg.h"

#include <algorithm>

using namespace specai;

std::vector<bool> specai::computeMemoryDependentRegs(const Program &P) {
  std::vector<bool> MemDep(P.NumRegs, false);
  bool Changed = true;
  // Flow-insensitive closure: a register is memory dependent if any of its
  // definitions loads from memory or reads a memory-dependent register.
  while (Changed) {
    Changed = false;
    for (const BasicBlock &Block : P.Blocks) {
      for (const Instruction &I : Block.Insts) {
        auto OperandDep = [&](const Operand &Op) {
          return Op.isReg() && MemDep[Op.Reg];
        };
        bool NewDep = false;
        switch (I.Op) {
        case Opcode::Load:
          NewDep = true;
          break;
        case Opcode::Mov:
          NewDep = OperandDep(I.A);
          break;
        case Opcode::Bin:
          NewDep = OperandDep(I.A) || OperandDep(I.B);
          break;
        default:
          continue;
        }
        if (NewDep && I.Dst != InvalidReg && !MemDep[I.Dst]) {
          MemDep[I.Dst] = true;
          Changed = true;
        }
      }
    }
  }
  return MemDep;
}

/// Collects Load nodes that (transitively, flow-insensitively) feed
/// register \p Root.
static std::vector<NodeId> collectFeedingLoads(const FlatCfg &G, RegId Root) {
  const Program &P = G.program();
  std::vector<NodeId> Loads;
  if (Root == InvalidReg)
    return Loads;

  // def map: register -> defining nodes.
  std::vector<std::vector<NodeId>> Defs(P.NumRegs);
  for (NodeId N = 0; N != G.size(); ++N) {
    const Instruction &I = G.inst(N);
    if ((I.Op == Opcode::Mov || I.Op == Opcode::Bin ||
         I.Op == Opcode::Load) &&
        I.Dst != InvalidReg)
      Defs[I.Dst].push_back(N);
  }

  std::vector<bool> SeenReg(P.NumRegs, false);
  std::vector<RegId> Stack{Root};
  SeenReg[Root] = true;
  while (!Stack.empty()) {
    RegId R = Stack.back();
    Stack.pop_back();
    for (NodeId Def : Defs[R]) {
      const Instruction &I = G.inst(Def);
      if (I.Op == Opcode::Load) {
        Loads.push_back(Def);
        continue;
      }
      auto Visit = [&](const Operand &Op) {
        if (Op.isReg() && !SeenReg[Op.Reg]) {
          SeenReg[Op.Reg] = true;
          Stack.push_back(Op.Reg);
        }
      };
      Visit(I.A);
      if (I.Op == Opcode::Bin)
        Visit(I.B);
    }
  }
  std::sort(Loads.begin(), Loads.end());
  Loads.erase(std::unique(Loads.begin(), Loads.end()), Loads.end());
  return Loads;
}

SpecPlan SpecPlan::compute(const FlatCfg &G, const DominatorTree &Pdom,
                           bool OnlyMemoryDependent) {
  SpecPlan Plan;
  std::vector<bool> MemDep;
  if (OnlyMemoryDependent)
    MemDep = computeMemoryDependentRegs(G.program());
  std::vector<bool> Reach = G.reachable();

  for (NodeId N = 0; N != G.size(); ++N) {
    if (!Reach[N])
      continue;
    const Instruction &I = G.inst(N);
    if (I.Op != Opcode::Br || I.TrueTarget == I.FalseTarget)
      continue;
    if (OnlyMemoryDependent &&
        !(I.A.isReg() && I.A.Reg < MemDep.size() && MemDep[I.A.Reg]))
      continue;

    SpecSite Site;
    Site.Branch = N;
    Site.TakenEntry = G.blockStart(I.TrueTarget);
    Site.FallEntry = G.blockStart(I.FalseTarget);
    Site.Ipdom = Pdom.idom(N);
    Site.CondLoads = I.A.isReg() ? collectFeedingLoads(G, I.A.Reg)
                                 : std::vector<NodeId>{};

    uint32_t SiteIdx = static_cast<uint32_t>(Plan.Sites.size());
    Plan.Sites.push_back(std::move(Site));
    Plan.Colors.push_back({SiteIdx, /*WrongIsTaken=*/true});
    Plan.Colors.push_back({SiteIdx, /*WrongIsTaken=*/false});
  }
  return Plan;
}

std::vector<ColorId> SpecPlan::colorsAtBranch(NodeId N) const {
  std::vector<ColorId> Out;
  for (ColorId C = 0; C != Colors.size(); ++C)
    if (Sites[Colors[C].Site].Branch == N)
      Out.push_back(C);
  return Out;
}
