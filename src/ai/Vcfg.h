//===- Vcfg.h - Virtual control flow planning -------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discovers the program's speculation sites and colors (paper §5.1, §6.4).
/// A *site* is a conditional branch whose condition depends on memory (the
/// paper: "a virtual control flow occurs at every if-else statement where
/// the branching condition depends on some variables stored in memory").
/// Each site yields two *colors*, one per mispredicted direction: color
/// (site, wrong=T) models speculatively executing the taken side while the
/// actual execution proceeds to the fall-through side, and vice versa.
///
/// The plan also records, per site:
///  - the immediate post-dominator (the control-flow join below the branch,
///    where just-in-time merging folds post-rollback states back into the
///    normal flow, Figure 7's bb4), and
///  - the Load nodes feeding the branch condition (used by the §6.2 dynamic
///    depth bounding: when those loads are must-hits, the condition
///    resolves fast and the speculation window shrinks from b_miss to
///    b_hit).
///
/// The engine never materializes vn_start/vn_stop nodes: the virtual
/// control flow is realized as separate per-color state slots flowing over
/// the original nodes, with the seeding edge (n -> vn_start) at the branch
/// and the conversion edge (vn_stop -> n) at the rollback target. This is
/// the "generalized worklist" formulation the paper sketches at the end of
/// §6.4 ("the special merge nodes ... can be viewed as merely optimization
/// hints").
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_AI_VCFG_H
#define SPECAI_AI_VCFG_H

#include "cfg/Dominators.h"
#include "cfg/FlatCfg.h"

#include <cstdint>
#include <vector>

namespace specai {

/// Index of a speculation color (two per site).
using ColorId = uint32_t;

/// One speculatable branch.
struct SpecSite {
  /// The Br node.
  NodeId Branch = InvalidNode;
  /// Entry node of the taken (true) side.
  NodeId TakenEntry = InvalidNode;
  /// Entry node of the fall-through (false) side.
  NodeId FallEntry = InvalidNode;
  /// Immediate post-dominator of the branch; InvalidNode when the sides
  /// never rejoin (e.g. both return).
  NodeId Ipdom = InvalidNode;
  /// Load nodes feeding the branch condition (flow-insensitive backward
  /// slice through registers).
  std::vector<NodeId> CondLoads;
};

/// One speculative execution color: a site plus the mispredicted side.
struct SpecColor {
  uint32_t Site = 0;
  /// True when the speculated (wrong) side is the taken target.
  bool WrongIsTaken = true;
};

/// The speculation plan of a program: all sites and colors.
class SpecPlan {
public:
  /// Computes the plan. \p Pdom must be the post-dominator tree of \p G.
  /// When \p OnlyMemoryDependent is set (the paper's rule), branches whose
  /// condition never touches memory are skipped.
  static SpecPlan compute(const FlatCfg &G, const DominatorTree &Pdom,
                          bool OnlyMemoryDependent = true);

  const std::vector<SpecSite> &sites() const { return Sites; }
  const std::vector<SpecColor> &colors() const { return Colors; }

  size_t siteCount() const { return Sites.size(); }
  size_t colorCount() const { return Colors.size(); }

  const SpecSite &siteOf(ColorId C) const { return Sites[Colors[C].Site]; }

  /// Entry node of the speculated (mispredicted) side of color \p C.
  NodeId wrongEntry(ColorId C) const {
    const SpecSite &S = siteOf(C);
    return Colors[C].WrongIsTaken ? S.TakenEntry : S.FallEntry;
  }
  /// Entry node of the architecturally correct side (the rollback target).
  NodeId correctEntry(ColorId C) const {
    const SpecSite &S = siteOf(C);
    return Colors[C].WrongIsTaken ? S.FallEntry : S.TakenEntry;
  }

  /// Colors seeded at branch node \p N (empty for non-sites).
  std::vector<ColorId> colorsAtBranch(NodeId N) const;

private:
  std::vector<SpecSite> Sites;
  std::vector<SpecColor> Colors;
};

/// Flow-insensitive set of registers whose value (transitively) depends on
/// memory. Exposed for testing.
std::vector<bool> computeMemoryDependentRegs(const Program &P);

} // namespace specai

#endif // SPECAI_AI_VCFG_H
