//===- SpeculativeEngine.h - AI under speculative execution -----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution, Algorithms 2 and 3: abstract
/// interpretation made sound under speculative execution.
///
/// Per node n the engine maintains three families of states:
///
///  - S[n]     the normal (architectural) state, as in Algorithm 1;
///  - SS[n][c] the in-flight speculative state of color c (Algorithm 3's
///             per-color vector), carrying the maximum remaining
///             speculation depth. Seeded at the branch (the n->vn_start
///             edge): SS[wrongEntry(c)] := S[branch]. It flows over the
///             ordinary CFG edges — through joins, nested branches (both
///             ways; the prediction of a nested branch is unknown), and
///             past the sides' join — until the depth is exhausted. SS
///             flows use the domain's transferSpeculative: in-flight
///             stores live in the store buffer and never touch the cache,
///             so Store nodes are no-ops there (squashed on rollback);
///  - PR[n][k] post-rollback states: after executing any prefix of the
///             speculated side, the processor may roll back and resume at
///             the correct side's entry (the vn_stop -> n edge). These are
///             architecturally real states whose only difference from S is
///             a polluted cache; keeping them separate until the branch's
///             post-dominator is the paper's just-in-time merging (§5.2).
///
/// Merge strategies (Figure 6) control the PR bookkeeping:
///  - MergeAtRollback (6d): rolled-back states join S[correctEntry]
///    immediately (coarsest, cheapest);
///  - JustInTime (6c, default): all rollback states of one color join in a
///    collector at the correct side's entry and flow as one PR state;
///  - NoMerge (6a): one PR slot per (color, rollback point), everything
///    kept apart until the post-dominator (finest, most expensive);
///  - MergeAtExit (6b): like NoMerge in this engine — because the abstract
///    join is associative and every separate flow is joined at the
///    post-dominator anyway, merging "right before the exit of the other
///    branch" computes the same states as 6a while the original paper's
///    distinction is about intermediate state counts.
///
/// Depth bounding (§6.2): each site gets a window of b_miss instructions,
/// shrunk to b_hit when every load feeding its condition is a must-hit.
/// `BoundingMode::Dynamic` re-evaluates the bound each time the branch is
/// reprocessed (remaining sound because joined depths take the maximum);
/// the analysis driver additionally offers an iterative outer refinement
/// that re-runs with bounds derived from the previous sound fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_AI_SPECULATIVEENGINE_H
#define SPECAI_AI_SPECULATIVEENGINE_H

#include "ai/Vcfg.h"
#include "ai/WorklistEngine.h"
#include "cfg/LoopInfo.h"

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace specai {

/// Figure 6's four strategies for merging speculative flows.
enum class MergeStrategy {
  NoMerge,         // 6a
  MergeAtExit,     // 6b
  JustInTime,      // 6c (default; best cost/precision in the paper)
  MergeAtRollback, // 6d
};

/// Printable name, e.g. "just-in-time".
const char *mergeStrategyName(MergeStrategy S);

/// How speculation windows are bounded (§6.2).
enum class BoundingMode {
  /// Always use DepthMiss.
  Fixed,
  /// Use DepthHit whenever the condition's loads are must-hits in the
  /// current states; sound because re-seeding takes the max depth.
  Dynamic,
};

/// Deliberate, test-only engine faults. The differential fuzzer's
/// self-test (`specai-fuzz --selftest`) injects one of these and demands
/// that the soundness oracle catches the resulting under-approximation
/// with a concrete counterexample; a fuzzer that cannot see a broken
/// engine proves nothing. Never set outside tests.
enum class EngineFault : uint8_t {
  None,
  /// Skip the SS seed at wrongEntry(c): speculative flows never start, so
  /// post-rollback cache pollution goes unmodeled.
  SkipSpecSeed,
  /// Drop the vn_stop -> n rollback edges: speculation is modeled but its
  /// architectural aftermath is not.
  SkipRollback,
};

/// Options of the speculative engine.
struct SpecEngineOptions : EngineOptions {
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  /// Speculation window (instructions) when the branch condition misses in
  /// the cache. The paper derives 200 from GEM5 traces of the Alpha-like
  /// O3 CPU; our pipeline substrate reproduces the calibration.
  uint32_t DepthMiss = 200;
  /// Window when the condition is a cache hit (paper: 20).
  uint32_t DepthHit = 20;
  BoundingMode Bounding = BoundingMode::Dynamic;
  /// Per-site depth overrides (from the driver's iterative refinement);
  /// empty means none. Indexed by site.
  std::vector<uint32_t> SiteDepthOverride;
  /// Test-only fault injection; see EngineFault.
  EngineFault Fault = EngineFault::None;
};

/// Result of a speculative run.
template <typename DomainT> struct SpecResult {
  using State = typename DomainT::State;
  /// Normal input states (architectural, prediction-correct executions).
  std::vector<State> Normal;
  /// Join of all post-rollback input states per node (architectural,
  /// mispredicted executions after rollback). Bottom where no rollback
  /// flow passes.
  std::vector<State> PostRollback;
  /// Join of all in-flight speculative input states per node. Bottom where
  /// never speculatively executed.
  std::vector<State> Speculative;
  uint64_t Iterations = 0;
  bool Converged = true;

  /// The observable (architectural) input state at \p N: Normal joined
  /// with PostRollback. Classification of real cache behavior must use
  /// this.
  State observable(const DomainT &D, NodeId N) const {
    State S = Normal[N];
    D.joinInto(S, PostRollback[N]);
    return S;
  }
};

namespace detail {
/// Key of a post-rollback slot: the color, plus the rollback point for the
/// NoMerge/MergeAtExit strategies (InvalidNode under JustInTime).
struct PrKey {
  ColorId Color;
  NodeId Source;
  bool operator<(const PrKey &RHS) const {
    return Color != RHS.Color ? Color < RHS.Color : Source < RHS.Source;
  }
};
} // namespace detail

/// Runs Algorithms 2/3 over \p G with speculation plan \p Plan.
template <typename DomainT>
SpecResult<DomainT> runSpeculativeFixpoint(DomainT &D, const FlatCfg &G,
                                           const SpecPlan &Plan,
                                           const SpecEngineOptions &Options,
                                           const LoopInfo *LI = nullptr) {
  using State = typename DomainT::State;
  using detail::PrKey;

  struct SpecSlot {
    State St;
    uint32_t Depth = 0;
  };

  SpecResult<DomainT> R;
  size_t N = G.size();
  R.Normal.assign(N, D.bottom());
  R.PostRollback.assign(N, D.bottom());
  R.Speculative.assign(N, D.bottom());
  if (N == 0)
    return R;

  // Per-node slot maps. SS/PR are sparse: most nodes never see a given
  // color.
  std::vector<std::map<ColorId, SpecSlot>> SS(N);
  std::vector<std::map<PrKey, State>> PR(N);

  // Branch node -> colors seeded there.
  std::map<NodeId, std::vector<ColorId>> SeedColors;
  for (ColorId C = 0; C != Plan.colorCount(); ++C)
    SeedColors[Plan.siteOf(C).Branch].push_back(C);

  // Ipdom per color for PR termination.
  auto IpdomOf = [&](ColorId C) { return Plan.siteOf(C).Ipdom; };

  std::vector<uint32_t> JoinCounts(N, 0);
  std::deque<NodeId> Worklist;
  std::vector<bool> InList(N, false);
  auto Enqueue = [&](NodeId Node) {
    if (!InList[Node]) {
      InList[Node] = true;
      Worklist.push_back(Node);
    }
  };

  auto JoinNormal = [&](NodeId Node, const State &From) {
    bool UseWiden = Options.UseWidening && LI && LI->isHeader(Node) &&
                    JoinCounts[Node] >= Options.WideningDelay;
    if (UseWiden) {
      State Prev = R.Normal[Node];
      if (D.joinInto(R.Normal[Node], From)) {
        D.widen(R.Normal[Node], Prev);
        ++JoinCounts[Node];
        Enqueue(Node);
      }
      return;
    }
    if (D.joinInto(R.Normal[Node], From)) {
      ++JoinCounts[Node];
      Enqueue(Node);
    }
  };

  auto JoinPr = [&](NodeId Node, PrKey Key, const State &From) {
    auto [It, Inserted] = PR[Node].try_emplace(Key, D.bottom());
    bool UseWiden = Options.UseWidening && LI && LI->isHeader(Node) &&
                    JoinCounts[Node] >= Options.WideningDelay;
    State Prev = UseWiden ? It->second : D.bottom();
    bool Changed = D.joinInto(It->second, From);
    if (Changed) {
      if (UseWiden)
        D.widen(It->second, Prev);
      ++JoinCounts[Node];
      Enqueue(Node);
    } else if (Inserted) {
      Enqueue(Node);
    }
    // Keep the folded per-node join current while iterating: the §6.2
    // dynamic depth bound reads it, and a bound computed without the
    // rollback pollution at the condition loads would under-size windows
    // (found by specai-fuzz). Slots grow monotonically, so folding on
    // change equals folding everything at the end.
    if (Changed || Inserted)
      D.joinInto(R.PostRollback[Node], It->second);
  };

  auto JoinSpec = [&](NodeId Node, ColorId Color, const State &From,
                      uint32_t Depth) {
    auto [It, Inserted] = SS[Node].try_emplace(Color, SpecSlot{D.bottom(), 0});
    bool Changed = D.joinInto(It->second.St, From);
    if (Depth > It->second.Depth) {
      It->second.Depth = Depth;
      Changed = true;
    }
    if (Changed || Inserted)
      Enqueue(Node);
  };

  // Depth of a site's window given current classification knowledge.
  auto SiteDepth = [&](uint32_t Site) -> uint32_t {
    if (Site < Options.SiteDepthOverride.size())
      return Options.SiteDepthOverride[Site];
    if (Options.Bounding == BoundingMode::Dynamic) {
      const SpecSite &SS_ = Plan.sites()[Site];
      bool AllHit = !SS_.CondLoads.empty();
      for (NodeId Load : SS_.CondLoads) {
        State Obs = R.Normal[Load];
        D.joinInto(Obs, R.PostRollback[Load]);
        if (D.isBottom(Obs) || !D.isMustHit(Obs, Load)) {
          AllHit = false;
          break;
        }
      }
      if (AllHit)
        return Options.DepthHit;
    }
    return Options.DepthMiss;
  };

  // Deepest window each site was ever seeded with; the envelope keeps the
  // max, so a site is covered up to this depth.
  std::vector<uint32_t> MaxSeeded(Plan.siteCount(), 0);

  // Seeds speculation colors of branch node `Node` from architectural
  // state `Out` (the state after the branch resolves its inputs).
  auto SeedSpeculation = [&](NodeId Node, const State &Out) {
    if (Options.Fault == EngineFault::SkipSpecSeed)
      return; // Injected fault: pretend speculation never starts.
    auto It = SeedColors.find(Node);
    if (It == SeedColors.end())
      return;
    for (ColorId C : It->second) {
      uint32_t Site = Plan.colors()[C].Site;
      uint32_t Depth = SiteDepth(Site);
      if (Depth == 0)
        continue; // b_hit == 0 disables speculation entirely (§6.2).
      MaxSeeded[Site] = std::max(MaxSeeded[Site], Depth);
      JoinSpec(Plan.wrongEntry(C), C, Out, Depth);
    }
  };

  // Routes a rolled-back state (after executing `Source` speculatively
  // under color C) to the correct side per the merge strategy.
  auto Rollback = [&](ColorId C, NodeId Source, const State &Out) {
    if (Options.Fault == EngineFault::SkipRollback)
      return; // Injected fault: drop the vn_stop -> n edges.
    NodeId Target = Plan.correctEntry(C);
    switch (Options.Strategy) {
    case MergeStrategy::MergeAtRollback:
      JoinNormal(Target, Out);
      return;
    case MergeStrategy::JustInTime:
      JoinPr(Target, PrKey{C, InvalidNode}, Out);
      return;
    case MergeStrategy::NoMerge:
    case MergeStrategy::MergeAtExit:
      JoinPr(Target, PrKey{C, Source}, Out);
      return;
    }
  };

  auto DrainWorklist = [&]() {
    while (!Worklist.empty()) {
      if (++R.Iterations > Options.MaxIterations) {
        R.Converged = false;
        return;
      }
      NodeId Node = Worklist.front();
      Worklist.pop_front();
      InList[Node] = false;

      // --- Normal flow (Algorithm 2 lines 8, 14-19). ---
      if (!D.isBottom(R.Normal[Node])) {
        State Out = R.Normal[Node];
        D.transfer(Out, Node);
        for (NodeId Succ : G.successors(Node))
          JoinNormal(Succ, Out);
        // n -> vn_start edges (line 11).
        SeedSpeculation(Node, Out);
      }

      // --- Speculative flows, one per live color (Algorithm 3 line 9).
      // These use the speculative transfer: stores are squashed (store
      // buffer), so only loads touch the abstract cache here.
      for (auto &[Color, Slot] : SS[Node]) {
        if (D.isBottom(Slot.St) || Slot.Depth == 0)
          continue;
        State Out = Slot.St;
        D.transferSpeculative(Out, Node);
        // The rollback may happen right after this instruction: vn_stop.
        Rollback(Color, Node, Out);
        // Continue speculating while the window allows. The flow is
        // confined to the mispredicted side: it stops at the branch's
        // post-dominator (the paper's Figure 6 draws rollback edges from
        // the branch body only, and Figure 7's states require it).
        if (Slot.Depth > 1) {
          NodeId Ipdom = IpdomOf(Color);
          for (NodeId Succ : G.successors(Node))
            if (Succ != Ipdom)
              JoinSpec(Succ, Color, Out, Slot.Depth - 1);
        }
      }

      // --- Post-rollback flows (architectural; JIT keeps them apart
      // --- until the branch's post-dominator).
      for (auto &[Key, St] : PR[Node]) {
        if (D.isBottom(St))
          continue;
        State Out = St;
        D.transfer(Out, Node);
        NodeId Ipdom = IpdomOf(Key.Color);
        for (NodeId Succ : G.successors(Node)) {
          if (Succ == Ipdom)
            JoinNormal(Succ, Out);
          else
            JoinPr(Succ, Key, Out);
        }
        // Real execution in a post-rollback context can speculate again.
        SeedSpeculation(Node, Out);
      }
    }
  };

  // Re-validates the §6.2 dynamic depth bounds against the drained
  // states. A site seeded with b_hit while its condition loads still
  // looked like must-hits can be stale — later joins may have degraded
  // those loads to may-miss without reprocessing the branch, yet a real
  // miss means the hardware speculates b_miss deep. Stale sites are
  // re-seeded at the larger bound from the current architectural states;
  // returns true when another drain is needed. Bounds only escalate (and
  // MaxSeeded latches), so the loop below terminates. Found by the
  // differential fuzzer (specai-fuzz).
  auto ReseedStaleSites = [&]() {
    bool Reseeded = false;
    for (uint32_t Site = 0; Site != Plan.siteCount(); ++Site) {
      uint32_t Want = SiteDepth(Site);
      if (Want <= MaxSeeded[Site])
        continue;
      NodeId Branch = Plan.sites()[Site].Branch;
      if (!D.isBottom(R.Normal[Branch])) {
        State Out = R.Normal[Branch];
        D.transfer(Out, Branch);
        SeedSpeculation(Branch, Out);
      }
      for (auto &[Key, St] : PR[Branch]) {
        if (D.isBottom(St))
          continue;
        State Out = St;
        D.transfer(Out, Branch);
        SeedSpeculation(Branch, Out);
      }
      // Latch even when nothing seeded (unreachable branch, injected
      // fault) so the revalidation loop cannot spin.
      MaxSeeded[Site] = std::max(MaxSeeded[Site], Want);
      Reseeded = true;
    }
    return Reseeded;
  };

  R.Normal[G.entry()] = D.entry();
  Enqueue(G.entry());
  do {
    DrainWorklist();
  } while (R.Converged && ReseedStaleSites());

  // Fold the sparse slot maps into per-node joins for classification.
  for (NodeId Node = 0; Node != N; ++Node) {
    for (const auto &[Color, Slot] : SS[Node])
      D.joinInto(R.Speculative[Node], Slot.St);
    for (const auto &[Key, St] : PR[Node])
      D.joinInto(R.PostRollback[Node], St);
  }
  return R;
}

} // namespace specai

#endif // SPECAI_AI_SPECULATIVEENGINE_H
