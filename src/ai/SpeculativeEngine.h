//===- SpeculativeEngine.h - AI under speculative execution -----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution, Algorithms 2 and 3: abstract
/// interpretation made sound under speculative execution.
///
/// Per node n the engine maintains three families of states:
///
///  - S[n]     the normal (architectural) state, as in Algorithm 1;
///  - SS[n][c] the in-flight speculative state of color c (Algorithm 3's
///             per-color vector), carrying the maximum remaining
///             speculation depth. Seeded at the branch (the n->vn_start
///             edge): SS[wrongEntry(c)] := S[branch]. It flows over the
///             ordinary CFG edges — through joins, nested branches (both
///             ways; the prediction of a nested branch is unknown), and
///             past the sides' join — until the depth is exhausted. SS
///             flows use the domain's transferSpeculative: in-flight
///             stores live in the store buffer and never touch the cache,
///             so Store nodes are no-ops there (squashed on rollback);
///  - PR[n][k] post-rollback states: after executing any prefix of the
///             speculated side, the processor may roll back and resume at
///             the correct side's entry (the vn_stop -> n edge). These are
///             architecturally real states whose only difference from S is
///             a polluted cache; keeping them separate until the branch's
///             post-dominator is the paper's just-in-time merging (§5.2).
///
/// Merge strategies (Figure 6) control the PR bookkeeping:
///  - MergeAtRollback (6d): rolled-back states join S[correctEntry]
///    immediately (coarsest, cheapest);
///  - JustInTime (6c, default): all rollback states of one color join in a
///    collector at the correct side's entry and flow as one PR state;
///  - NoMerge (6a): one PR slot per (color, rollback point), everything
///    kept apart until the post-dominator (finest, most expensive);
///  - MergeAtExit (6b): like NoMerge in this engine — because the abstract
///    join is associative and every separate flow is joined at the
///    post-dominator anyway, merging "right before the exit of the other
///    branch" computes the same states as 6a while the original paper's
///    distinction is about intermediate state counts.
///
/// Depth bounding (§6.2): each site gets a window of b_miss instructions,
/// shrunk to b_hit when every load feeding its condition is a must-hit.
/// `BoundingMode::Dynamic` re-evaluates the bound each time the branch is
/// reprocessed (remaining sound because joined depths take the maximum);
/// the analysis driver additionally offers an iterative outer refinement
/// that re-runs with bounds derived from the previous sound fixpoint.
///
/// Hot-path machinery (docs/PERFORMANCE.md): the worklist pops in reverse
/// post-order with an on-worklist bitmap; SS/PR slots live in sorted flat
/// vectors (same iteration order as the former std::maps, no per-slot node
/// allocations); window transfers are memoized per (node, in-state-hash)
/// for pure nodes, so re-drains across colors and re-seeding rounds reuse
/// results; and seeded/rolled-back states are interned through a
/// StateInterner, which makes the repeated slot joins hit the domain's
/// shared-storage fast path. All of it is gated on the optional domain
/// hooks (isTransferIdentity/isTransferPure/stateHash) and changes no
/// result: identity and pure transfers are replayed bit-identically, and
/// stateful (symbolic-instance) transfers are never memoized.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_AI_SPECULATIVEENGINE_H
#define SPECAI_AI_SPECULATIVEENGINE_H

#include "ai/Vcfg.h"
#include "ai/WorklistEngine.h"
#include "cfg/LoopInfo.h"
#include "support/Parallel.h"
#include "support/StateInterner.h"

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

namespace specai {

#ifdef SPECAI_DEBUG_PR
/// Debug-build-only trace hook: called on every PR-slot join with
/// (node, color, source, joined-from state). Never compiled into the
/// library; a diagnostics TU defines the pointer and instantiates the
/// engine template itself.
inline void (*SpecaiPrTraceHook)(NodeId, uint32_t, NodeId,
                                 const void *) = nullptr;
#endif

/// Figure 6's four strategies for merging speculative flows.
enum class MergeStrategy {
  NoMerge,         // 6a
  MergeAtExit,     // 6b
  JustInTime,      // 6c (default; best cost/precision in the paper)
  MergeAtRollback, // 6d
};

/// Printable name, e.g. "just-in-time".
const char *mergeStrategyName(MergeStrategy S);

/// How speculation windows are bounded (§6.2).
enum class BoundingMode {
  /// Always use DepthMiss.
  Fixed,
  /// Use DepthHit whenever the condition's loads are must-hits in the
  /// current states; sound because re-seeding takes the max depth.
  Dynamic,
};

/// Deliberate, test-only engine faults. The differential fuzzer's
/// self-test (`specai-fuzz --selftest`) injects one of these and demands
/// that the soundness oracle catches the resulting under-approximation
/// with a concrete counterexample; a fuzzer that cannot see a broken
/// engine proves nothing. Never set outside tests.
enum class EngineFault : uint8_t {
  None,
  /// Skip the SS seed at wrongEntry(c): speculative flows never start, so
  /// post-rollback cache pollution goes unmodeled.
  SkipSpecSeed,
  /// Drop the vn_stop -> n rollback edges: speculation is modeled but its
  /// architectural aftermath is not.
  SkipRollback,
};

/// Options of the speculative engine.
struct SpecEngineOptions : EngineOptions {
  /// The speculative engine defaults to the legacy FIFO drain order, not
  /// Rpo: with statically unknown indices the domain's transfer is
  /// stateful (each application draws the next symbolic instance), so the
  /// pop order is observable in the fixpoint, and the pinned golden
  /// digests of the fuzz corpus encode the FIFO sequence. Rpo remains
  /// available and computes an equally sound envelope in fewer pops;
  /// programs without unknown-index accesses get bit-identical results
  /// either way (see state_repr_test).
  SpecEngineOptions() { Order = WorklistOrder::Fifo; }

  MergeStrategy Strategy = MergeStrategy::JustInTime;
  /// Speculation window (instructions) when the branch condition misses in
  /// the cache. The paper derives 200 from GEM5 traces of the Alpha-like
  /// O3 CPU; our pipeline substrate reproduces the calibration.
  uint32_t DepthMiss = 200;
  /// Window when the condition is a cache hit (paper: 20).
  uint32_t DepthHit = 20;
  BoundingMode Bounding = BoundingMode::Dynamic;
  /// Per-site depth overrides (from the driver's iterative refinement);
  /// empty means none. Indexed by site.
  std::vector<uint32_t> SiteDepthOverride;
  /// Per-site depth *clamps* (docs/MITIGATION.md repair mitigations),
  /// applied as an upper bound after overrides and dynamic bounding —
  /// unlike SiteDepthOverride they can only shrink a window, never grow
  /// it. Empty means none; UINT32_MAX entries leave their site unclamped.
  std::vector<uint32_t> SiteDepthClamp;
  /// Test-only fault injection; see EngineFault.
  EngineFault Fault = EngineFault::None;
};

/// Result of a speculative run.
template <typename DomainT> struct SpecResult {
  using State = typename DomainT::State;
  /// Normal input states (architectural, prediction-correct executions).
  std::vector<State> Normal;
  /// Join of all post-rollback input states per node (architectural,
  /// mispredicted executions after rollback). Bottom where no rollback
  /// flow passes.
  std::vector<State> PostRollback;
  /// Join of all in-flight speculative input states per node. Bottom where
  /// never speculatively executed.
  std::vector<State> Speculative;
  uint64_t Iterations = 0;
  bool Converged = true;
  /// True iff an ExecBudget cut the run short (see EngineOptions::Budget);
  /// distinct from a MaxIterations trip, which only clears Converged.
  bool BudgetExceeded = false;

  /// The observable (architectural) input state at \p N: Normal joined
  /// with PostRollback. Classification of real cache behavior must use
  /// this.
  State observable(const DomainT &D, NodeId N) const {
    State S = Normal[N];
    D.joinInto(S, PostRollback[N]);
    return S;
  }
};

namespace detail {
/// Key of a post-rollback slot: the color, plus the rollback point for the
/// NoMerge/MergeAtExit strategies (InvalidNode under JustInTime).
struct PrKey {
  ColorId Color;
  NodeId Source;
  bool operator<(const PrKey &RHS) const {
    return Color != RHS.Color ? Color < RHS.Color : Source < RHS.Source;
  }
  bool operator==(const PrKey &RHS) const = default;
};

/// A sorted flat map from K to V: the per-node SS/PR slot containers.
/// Iteration order matches std::map (ascending keys) so drain order — and
/// therefore every stateful-transfer sequence — is unchanged; lookups are
/// a binary search with no per-entry node allocation.
template <typename K, typename V> class FlatSlotMap {
public:
  using Entry = std::pair<K, V>;

  /// std::map::try_emplace equivalent: returns (entry, inserted).
  std::pair<Entry *, bool> tryEmplace(const K &Key, V Default) {
    auto It = std::lower_bound(
        Data.begin(), Data.end(), Key,
        [](const Entry &E, const K &Want) { return E.first < Want; });
    if (It != Data.end() && It->first == Key)
      return {&*It, false};
    It = Data.insert(It, Entry{Key, std::move(Default)});
    return {&*It, true};
  }

  auto begin() { return Data.begin(); }
  auto end() { return Data.end(); }
  auto begin() const { return Data.begin(); }
  auto end() const { return Data.end(); }
  bool empty() const { return Data.empty(); }

  /// Value-snapshot of the entries, for iteration that stays valid while
  /// the map is mutated (state copies are copy-on-write refcount bumps).
  std::vector<Entry> snapshot() const { return Data; }

private:
  std::vector<Entry> Data;
};

/// Detects the optional domain hot-path hooks (transfer purity + state
/// hashing); see WorklistEngine.h's domain concept.
template <typename DomainT>
concept HasTransferMemoHooks = requires(const DomainT &D, NodeId N,
                                        const typename DomainT::State &S) {
  { D.isTransferIdentity(N, true) } -> std::convertible_to<bool>;
  { D.isTransferPure(N, true) } -> std::convertible_to<bool>;
  { D.stateHash(S) } -> std::convertible_to<uint64_t>;
};
} // namespace detail

/// Runs Algorithms 2/3 over \p G with speculation plan \p Plan.
template <typename DomainT>
SpecResult<DomainT> runSpeculativeFixpoint(DomainT &D, const FlatCfg &G,
                                           const SpecPlan &Plan,
                                           const SpecEngineOptions &Options,
                                           const LoopInfo *LI = nullptr) {
  using State = typename DomainT::State;
  using detail::PrKey;
  constexpr bool HasMemoHooks = detail::HasTransferMemoHooks<DomainT>;

  struct SpecSlot {
    State St;
    uint32_t Depth = 0;
    /// Set when the slot changed since it was last drained; see the
    /// clean-flow skip below.
    bool Dirty = true;
  };
  struct PrSlot {
    State St;
    bool Dirty = true;
  };

  SpecResult<DomainT> R;
  size_t N = G.size();
  R.Normal.assign(N, D.bottom());
  R.PostRollback.assign(N, D.bottom());
  R.Speculative.assign(N, D.bottom());
  if (N == 0)
    return R;

  // Per-node slot maps. SS/PR are sparse: most nodes never see a given
  // color.
  std::vector<detail::FlatSlotMap<ColorId, SpecSlot>> SS(N);
  std::vector<detail::FlatSlotMap<PrKey, PrSlot>> PR(N);

  // Branch node -> colors seeded there.
  std::vector<std::vector<ColorId>> SeedColors(N);
  for (ColorId C = 0; C != Plan.colorCount(); ++C)
    SeedColors[Plan.siteOf(C).Branch].push_back(C);

  // Clean-flow skip: a pop reprocesses every flow family at the node, but
  // a flow whose input state did not change since its last drain re-joins
  // the exact same Out into targets that already absorbed it (slots only
  // move up the lattice), so skipping it is result-identical — *provided*
  // the node's transfer is pure. Stateful (symbolic-instance) transfers
  // and seed branches (whose §6.2 dynamic depth is re-read per pop) are
  // always reprocessed, keeping the pinned digest trajectories intact.
  std::vector<char> NormalDirty(N, 1);
  std::vector<char> SkippableCommitted(N, 0), SkippableSpec(N, 0);
  if constexpr (HasMemoHooks) {
    for (NodeId Node = 0; Node != N; ++Node) {
      SkippableCommitted[Node] =
          D.isTransferPure(Node, false) && SeedColors[Node].empty();
      SkippableSpec[Node] = D.isTransferPure(Node, true);
    }
  }

  // Ipdom per color for PR termination.
  auto IpdomOf = [&](ColorId C) { return Plan.siteOf(C).Ipdom; };

  // Per-(node, in-state-hash) transfer memo for pure nodes: one table for
  // the committed transfer (S/PR flows) and one for the speculative window
  // transfer (SS flows, where stores are squashed). Entries verify the
  // stored input structurally, so a hash collision recomputes instead of
  // corrupting the run.
  struct MemoEntry {
    State In;
    State Out;
    uint64_t Hash;
  };
  [[maybe_unused]] constexpr size_t MemoPerNode = 8;
  std::vector<std::vector<MemoEntry>> CommitMemo, SpecMemo;
  if constexpr (HasMemoHooks) {
    CommitMemo.resize(N);
    SpecMemo.resize(N);
  }
  uint64_t MemoHits = 0, MemoMisses = 0;

  // Hash-consing pool behind the SS/PR slot seeds: both colors of a site
  // and every re-drain seed from the same branch output share one payload,
  // so the slot joins below short-circuit on shared storage.
  StateInterner<State> Interner;
  auto Canon = [&](const State &S) -> State {
    if constexpr (HasMemoHooks)
      return Interner.intern(S);
    else
      return S;
  };

  /// Out-state of \p Node given input \p In. Identity transfers alias the
  /// input (copy-on-write), pure transfers go through the memo, and
  /// stateful transfers always recompute (they consume a fresh symbolic
  /// instance; replaying one would change the analysis). \p Precomputed,
  /// when set, carries this pure transfer's output computed ahead of time
  /// (the batched drains below); the memo replay — probe order, hit/miss
  /// counters, FIFO eviction — is byte-identical either way, the hint only
  /// replaces the recompute on a miss.
  auto ApplyTransfer = [&](NodeId Node, const State &In, bool Speculative,
                           const State *Precomputed = nullptr) -> State {
    if constexpr (HasMemoHooks) {
      if (D.isTransferIdentity(Node, Speculative))
        return In;
      if (D.isTransferPure(Node, Speculative)) {
        std::vector<MemoEntry> &Table =
            Speculative ? SpecMemo[Node] : CommitMemo[Node];
        uint64_t H = D.stateHash(In);
        for (const MemoEntry &E : Table)
          if (E.Hash == H && E.In == In) {
            ++MemoHits;
            return E.Out;
          }
        State Out = Precomputed ? *Precomputed : In;
        if (!Precomputed) {
          if (Speculative)
            D.transferSpeculative(Out, Node);
          else
            D.transfer(Out, Node);
        }
        ++MemoMisses;
        if (Table.size() >= MemoPerNode)
          Table.erase(Table.begin());
        Table.push_back(MemoEntry{In, Out, H});
        return Out;
      }
    }
    State Out = In;
    if (Speculative)
      D.transferSpeculative(Out, Node);
    else
      D.transfer(Out, Node);
    return Out;
  };

  std::vector<uint32_t> JoinCounts(N, 0);
  NodeWorklist Worklist(G, Options.Order);

  // Fault injection only (SkipBackedges): true iff From->To is a back edge
  // (To heads a loop whose body contains From); mirrors the baseline
  // engine's check in WorklistEngine.h.
  auto IsBackEdge = [&](NodeId From, NodeId To) {
    if (!LI || !LI->isHeader(To))
      return false;
    for (const Loop &L : LI->loops())
      if (L.Header == To)
        for (NodeId B : L.Body)
          if (B == From)
            return true;
    return false;
  };

  auto JoinNormal = [&](NodeId Node, const State &From) {
    bool UseWiden = Options.UseWidening && LI && LI->isHeader(Node) &&
                    JoinCounts[Node] >= Options.WideningDelay;
    if (UseWiden) {
      State Prev = R.Normal[Node];
      if (D.joinInto(R.Normal[Node], From)) {
        D.widen(R.Normal[Node], Prev);
        ++JoinCounts[Node];
        NormalDirty[Node] = 1;
        if (!Options.DropWidenPush)
          Worklist.push(Node);
      }
      return;
    }
    if (D.joinInto(R.Normal[Node], From)) {
      ++JoinCounts[Node];
      NormalDirty[Node] = 1;
      Worklist.push(Node);
    }
  };

  auto JoinPr = [&](NodeId Node, PrKey Key, const State &From) {
#ifdef SPECAI_DEBUG_PR
    if (SpecaiPrTraceHook)
      SpecaiPrTraceHook(Node, Key.Color, Key.Source, &From);
#endif
    auto [Slot, Inserted] = PR[Node].tryEmplace(Key, PrSlot{D.bottom(), true});
    bool UseWiden = Options.UseWidening && LI && LI->isHeader(Node) &&
                    JoinCounts[Node] >= Options.WideningDelay;
    State Prev = UseWiden ? Slot->second.St : D.bottom();
    bool Changed = D.joinInto(Slot->second.St, From);
    if (Changed) {
      if (UseWiden)
        D.widen(Slot->second.St, Prev);
      ++JoinCounts[Node];
      if (!(UseWiden && Options.DropWidenPush))
        Worklist.push(Node);
    } else if (Inserted) {
      Worklist.push(Node);
    }
    // Keep the folded per-node join current while iterating: the §6.2
    // dynamic depth bound reads it, and a bound computed without the
    // rollback pollution at the condition loads would under-size windows
    // (found by specai-fuzz). Slots grow monotonically, so folding on
    // change equals folding everything at the end.
    if (Changed || Inserted) {
      Slot->second.Dirty = true;
      D.joinInto(R.PostRollback[Node], Slot->second.St);
    }
  };

  auto JoinSpec = [&](NodeId Node, ColorId Color, const State &From,
                      uint32_t Depth) {
    auto [Slot, Inserted] =
        SS[Node].tryEmplace(Color, SpecSlot{D.bottom(), 0, true});
    bool Changed = D.joinInto(Slot->second.St, From);
    if (Depth > Slot->second.Depth) {
      Slot->second.Depth = Depth;
      Changed = true;
    }
    if (Changed || Inserted) {
      Slot->second.Dirty = true;
      Worklist.push(Node);
    }
  };

  // Depth of a site's window given current classification knowledge.
  auto SiteDepth = [&](uint32_t Site) -> uint32_t {
    uint32_t Depth = Options.DepthMiss;
    if (Site < Options.SiteDepthOverride.size()) {
      Depth = Options.SiteDepthOverride[Site];
    } else if (Options.Bounding == BoundingMode::Dynamic) {
      const SpecSite &SS_ = Plan.sites()[Site];
      bool AllHit = !SS_.CondLoads.empty();
      for (NodeId Load : SS_.CondLoads) {
        State Obs = R.Normal[Load];
        D.joinInto(Obs, R.PostRollback[Load]);
        if (D.isBottom(Obs) || !D.isMustHit(Obs, Load)) {
          AllHit = false;
          break;
        }
      }
      if (AllHit)
        Depth = Options.DepthHit;
    }
    // A repair clamp caps whatever the engine derived, refinement
    // overrides included: the mitigated hardware stops fetching at the
    // clamped depth no matter how slowly the condition resolves.
    if (Site < Options.SiteDepthClamp.size())
      Depth = std::min(Depth, Options.SiteDepthClamp[Site]);
    return Depth;
  };

  // Deepest window each site was ever seeded with; the envelope keeps the
  // max, so a site is covered up to this depth.
  std::vector<uint32_t> MaxSeeded(Plan.siteCount(), 0);

  // Seeds speculation colors of branch node `Node` from architectural
  // state `Out` (the state after the branch resolves its inputs).
  auto SeedSpeculation = [&](NodeId Node, const State &Out) {
    if (Options.Fault == EngineFault::SkipSpecSeed)
      return; // Injected fault: pretend speculation never starts.
    if (SeedColors[Node].empty())
      return;
    // Window boundary: opening a new speculation window on an exhausted
    // budget only generates work the drain loop will abandon anyway.
    if (Options.Budget && Options.Budget->exhausted())
      return;
    State CanonOut = Canon(Out);
    for (ColorId C : SeedColors[Node]) {
      uint32_t Site = Plan.colors()[C].Site;
      uint32_t Depth = SiteDepth(Site);
      if (Depth == 0)
        continue; // b_hit == 0 disables speculation entirely (§6.2).
      MaxSeeded[Site] = std::max(MaxSeeded[Site], Depth);
      JoinSpec(Plan.wrongEntry(C), C, CanonOut, Depth);
    }
  };

  // Routes a rolled-back state (after executing `Source` speculatively
  // under color C) to the correct side per the merge strategy.
  auto Rollback = [&](ColorId C, NodeId Source, const State &Out) {
    if (Options.Fault == EngineFault::SkipRollback)
      return; // Injected fault: drop the vn_stop -> n edges.
    NodeId Target = Plan.correctEntry(C);
    switch (Options.Strategy) {
    case MergeStrategy::MergeAtRollback:
      JoinNormal(Target, Out);
      return;
    case MergeStrategy::JustInTime:
      JoinPr(Target, PrKey{C, InvalidNode}, Canon(Out));
      return;
    case MergeStrategy::NoMerge:
    case MergeStrategy::MergeAtExit:
      JoinPr(Target, PrKey{C, Source}, Canon(Out));
      return;
    }
  };

  // Batched pure drains (--intra-jobs): before a pop's serial slot
  // replay, fan the transfer computes the replay will memo-miss out on
  // the pool. Phase A probes the memo read-only to predict the misses;
  // phase B (the unchanged serial loops below) replays joins, seeds, and
  // memo updates in slot order, so results, counters, and digests are
  // bit-identical at any job count. A replay-time divergence from the
  // prediction (an intra-batch insert evicting a predicted hit, or a
  // duplicate input among the predicted misses) recomputes inline or
  // wastes one precompute — exactness never depends on the prediction.
  auto PrecomputePure = [&](NodeId Node, bool Speculative,
                            const auto &Slots, auto IsLive,
                            std::vector<State> &PreOut,
                            std::vector<char> &PreHave) {
    if constexpr (HasMemoHooks) {
      IntraPool *Pool = IntraPool::activePool();
      if (!Pool || Slots.size() < 2 ||
          !D.isTransferPure(Node, Speculative) ||
          D.isTransferIdentity(Node, Speculative))
        return;
      const std::vector<MemoEntry> &Table =
          Speculative ? SpecMemo[Node] : CommitMemo[Node];
      std::vector<size_t> Miss;
      for (size_t I = 0; I != Slots.size(); ++I) {
        if (!IsLive(Slots[I]))
          continue;
        const State &In = Slots[I].second.St;
        uint64_t H = D.stateHash(In);
        bool Hit = false;
        for (const MemoEntry &E : Table)
          if (E.Hash == H && E.In == In) {
            Hit = true;
            break;
          }
        if (!Hit)
          Miss.push_back(I);
      }
      if (Miss.size() < 2)
        return; // Nothing to overlap.
      PreOut.assign(Slots.size(), D.bottom());
      PreHave.assign(Slots.size(), 0);
      Pool->run(Miss.size(), [&](size_t K) {
        size_t I = Miss[K];
        State O = Slots[I].second.St;
        if (Speculative)
          D.transferSpeculative(O, Node);
        else
          D.transfer(O, Node);
        PreOut[I] = std::move(O);
      });
      for (size_t I : Miss)
        PreHave[I] = 1;
    }
  };

  auto DrainWorklist = [&]() {
    while (!Worklist.empty()) {
      if (++R.Iterations > Options.MaxIterations) {
        R.Converged = false;
        return;
      }
      if (Options.Budget && Options.Budget->chargeStep()) {
        R.Converged = false;
        R.BudgetExceeded = true;
        return;
      }
      NodeId Node = Worklist.pop();

      // --- Normal flow (Algorithm 2 lines 8, 14-19). ---
      if (!D.isBottom(R.Normal[Node]) &&
          (NormalDirty[Node] || !SkippableCommitted[Node])) {
        NormalDirty[Node] = 0;
        State Out = ApplyTransfer(Node, R.Normal[Node], /*Speculative=*/false);
        for (NodeId Succ : G.successors(Node))
          if (!(Options.SkipBackedges && IsBackEdge(Node, Succ)))
            JoinNormal(Succ, Out);
        // n -> vn_start edges (line 11).
        SeedSpeculation(Node, Out);
      }

      // --- Speculative flows, one per live color (Algorithm 3 line 9).
      // These use the speculative transfer: stores are squashed (store
      // buffer), so only loads touch the abstract cache here. The slot
      // list is snapshotted (cheap copy-on-write copies) so joins into
      // this node's own slots — self-edges — cannot invalidate iteration.
      if (!SS[Node].empty()) {
        auto Slots = SS[Node].snapshot();
        for (auto &Entry : SS[Node])
          Entry.second.Dirty = false;
        std::vector<State> PreOut;
        std::vector<char> PreHave;
        PrecomputePure(
            Node, /*Speculative=*/true, Slots,
            [&](const auto &E) {
              return !D.isBottom(E.second.St) && E.second.Depth != 0 &&
                     (E.second.Dirty || !SkippableSpec[Node]);
            },
            PreOut, PreHave);
        size_t SlotIdx = 0;
        for (const auto &[Color, Slot] : Slots) {
          size_t I = SlotIdx++;
          if (D.isBottom(Slot.St) || Slot.Depth == 0)
            continue;
          if (!Slot.Dirty && SkippableSpec[Node])
            continue; // Clean pure flow: every join below would no-op.
          State Out =
              ApplyTransfer(Node, Slot.St, /*Speculative=*/true,
                            !PreHave.empty() && PreHave[I] ? &PreOut[I]
                                                          : nullptr);
          // The rollback may happen right after this instruction: vn_stop.
          Rollback(Color, Node, Out);
          // A fence drains the speculative flow: the front end cannot
          // fetch past it while a branch is unresolved, so the window ends
          // here (the transfer above was identity — identity-plus-drain)
          // and only the rollback edge leaves the node. Mirrors
          // SpeculativeCpu::speculate() stopping at a fence.
          if (G.inst(Node).Op == Opcode::Fence)
            continue;
          // Continue speculating while the window allows. The flow is
          // confined to the mispredicted side: it stops at the branch's
          // post-dominator (the paper's Figure 6 draws rollback edges from
          // the branch body only, and Figure 7's states require it).
          if (Slot.Depth > 1) {
            NodeId Ipdom = IpdomOf(Color);
            for (NodeId Succ : G.successors(Node))
              if (Succ != Ipdom &&
                  !(Options.SkipBackedges && IsBackEdge(Node, Succ)))
                JoinSpec(Succ, Color, Out, Slot.Depth - 1);
          }
        }
      }

      // --- Post-rollback flows (architectural; JIT keeps them apart
      // --- until the branch's post-dominator).
      if (!PR[Node].empty()) {
        auto Slots = PR[Node].snapshot();
        for (auto &Entry : PR[Node])
          Entry.second.Dirty = false;
        std::vector<State> PreOut;
        std::vector<char> PreHave;
        PrecomputePure(
            Node, /*Speculative=*/false, Slots,
            [&](const auto &E) {
              return !D.isBottom(E.second.St) &&
                     (E.second.Dirty || !SkippableCommitted[Node]);
            },
            PreOut, PreHave);
        size_t SlotIdx = 0;
        for (const auto &[Key, Slot] : Slots) {
          size_t I = SlotIdx++;
          if (D.isBottom(Slot.St))
            continue;
          if (!Slot.Dirty && SkippableCommitted[Node])
            continue; // Clean pure flow at a non-seed node.
          State Out =
              ApplyTransfer(Node, Slot.St, /*Speculative=*/false,
                            !PreHave.empty() && PreHave[I] ? &PreOut[I]
                                                          : nullptr);
          NodeId Ipdom = IpdomOf(Key.Color);
          for (NodeId Succ : G.successors(Node)) {
            if (Options.SkipBackedges && IsBackEdge(Node, Succ))
              continue;
            if (Succ == Ipdom)
              JoinNormal(Succ, Out);
            else
              JoinPr(Succ, Key, Out);
          }
          // Real execution in a post-rollback context can speculate again.
          SeedSpeculation(Node, Out);
        }
      }
    }
  };

  // Re-validates the §6.2 dynamic depth bounds against the drained
  // states. A site seeded with b_hit while its condition loads still
  // looked like must-hits can be stale — later joins may have degraded
  // those loads to may-miss without reprocessing the branch, yet a real
  // miss means the hardware speculates b_miss deep. Stale sites are
  // re-seeded at the larger bound from the current architectural states;
  // returns true when another drain is needed. Bounds only escalate (and
  // MaxSeeded latches), so the loop below terminates. Found by the
  // differential fuzzer (specai-fuzz).
  auto ReseedStaleSites = [&]() {
    bool Reseeded = false;
    if (Options.Budget && Options.Budget->exhausted())
      return false; // Window boundary: no new rounds on a dead budget.
    for (uint32_t Site = 0; Site != Plan.siteCount(); ++Site) {
      uint32_t Want = SiteDepth(Site);
      if (Want <= MaxSeeded[Site])
        continue;
      NodeId Branch = Plan.sites()[Site].Branch;
      if (!D.isBottom(R.Normal[Branch])) {
        State Out = ApplyTransfer(Branch, R.Normal[Branch], false);
        SeedSpeculation(Branch, Out);
      }
      for (const auto &[Key, Slot] : PR[Branch].snapshot()) {
        if (D.isBottom(Slot.St))
          continue;
        State Out = ApplyTransfer(Branch, Slot.St, false);
        SeedSpeculation(Branch, Out);
      }
      // Latch even when nothing seeded (unreachable branch, injected
      // fault) so the revalidation loop cannot spin.
      MaxSeeded[Site] = std::max(MaxSeeded[Site], Want);
      Reseeded = true;
    }
    return Reseeded;
  };

  R.Normal[G.entry()] = D.entry();
  Worklist.push(G.entry());
  do {
    DrainWorklist();
  } while (R.Converged && ReseedStaleSites());

  // Fold the sparse slot maps into per-node joins for classification.
  // Nodes are independent (each writes only its own R entries, slot joins
  // run in map order), so the fold fans out per node when a pool is
  // installed — same values at any job count.
  auto FoldNode = [&](size_t Node) {
    for (const auto &[Color, Slot] : SS[Node])
      D.joinInto(R.Speculative[Node], Slot.St);
    for (const auto &[Key, Slot] : PR[Node])
      D.joinInto(R.PostRollback[Node], Slot.St);
  };
  if (IntraPool *Pool = IntraPool::activePool(); Pool && N > 1) {
    Pool->run(N, FoldNode);
  } else {
    for (NodeId Node = 0; Node != N; ++Node)
      FoldNode(Node);
  }

  Worklist.report(Options.Stats, "spec.worklist");
  if (Options.Stats) {
    Options.Stats->increment("spec.memo.hits", MemoHits);
    Options.Stats->increment("spec.memo.misses", MemoMisses);
    if constexpr (HasMemoHooks) {
      Options.Stats->increment("spec.interner.hits", Interner.hits());
      Options.Stats->increment("spec.interner.states", Interner.size());
    }
  }
  return R;
}

} // namespace specai

#endif // SPECAI_AI_SPECULATIVEENGINE_H
