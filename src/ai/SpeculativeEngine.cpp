//===- SpeculativeEngine.cpp ----------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ai/SpeculativeEngine.h"

using namespace specai;

const char *specai::mergeStrategyName(MergeStrategy S) {
  switch (S) {
  case MergeStrategy::NoMerge:
    return "no-merge";
  case MergeStrategy::MergeAtExit:
    return "merge-at-exit";
  case MergeStrategy::JustInTime:
    return "just-in-time";
  case MergeStrategy::MergeAtRollback:
    return "merge-at-rollback";
  }
  return "<invalid>";
}
