//===- CacheState.cpp -----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
//
// Packed-representation implementation. Transfer semantics are documented
// in CacheState.h and preserved entry-for-entry from the reference
// implementation (RefCacheState.cpp); the differential harness
// (tests/packed_state_test.cpp) holds the two in lock-step.
//
//===----------------------------------------------------------------------===//

#include "domain/CacheState.h"

#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <map>

using namespace specai;

//===----------------------------------------------------------------------===//
// SWAR lane algebra
//===----------------------------------------------------------------------===//

namespace {

/// \p V replicated into every L-bit lane.
constexpr uint64_t repeatLane(unsigned L, uint64_t V) {
  uint64_t W = 0;
  for (unsigned S = 0; S < 64; S += L)
    W |= V << S;
  return W;
}

/// Per-width lane masks. `Ones` has each lane's LSB set, `High` each
/// lane's MSB, `Low` everything else. 64 % L == 0 for all three widths, so
/// the masks cover the word exactly.
struct LaneOps {
  uint64_t Ones, High, Low;
};

constexpr LaneOps LaneTab[3] = {
    {repeatLane(4, 1), repeatLane(4, 8), ~repeatLane(4, 8)},
    {repeatLane(8, 1), repeatLane(8, 128), ~repeatLane(8, 128)},
    {repeatLane(16, 1), repeatLane(16, 32768), ~repeatLane(16, 32768)},
};

const LaneOps &opsFor(unsigned LaneBits) {
  assert(LaneBits == 4 || LaneBits == 8 || LaneBits == 16);
  return LaneTab[LaneBits == 4 ? 0 : LaneBits == 8 ? 1 : 2];
}

/// High-bit mask of lanes with a nonzero value. Adding Low to each lane's
/// low bits carries into the MSB exactly when the low bits are nonzero;
/// OR-ing the word itself catches set MSBs. No cross-lane carries: each
/// lane sum is < 2^L.
uint64_t laneNonzero(uint64_t W, const LaneOps &O) {
  return (((W & O.Low) + O.Low) | W) & O.High;
}

/// High-bit mask of lanes where A >= B (unsigned). Classic SWAR compare:
/// the borrow-free subtraction (A|High) - (B&Low) decides lanes whose MSBs
/// match; MSB-differing lanes are decided by A's MSB alone.
uint64_t laneGE(uint64_t A, uint64_t B, const LaneOps &O) {
  uint64_t T = (A | O.High) - (B & O.Low);
  return ((A & ~B) | (~(A ^ B) & T)) & O.High;
}

} // namespace

//===----------------------------------------------------------------------===//
// PackedAges
//===----------------------------------------------------------------------===//

size_t PackedAges::find(BlockAddr Block) const {
  auto It = std::lower_bound(Blks.begin(), Blks.end(), Block);
  if (It != Blks.end() && *It == Block)
    return static_cast<size_t>(It - Blks.begin());
  return npos;
}

void PackedAges::installLaneBits(unsigned LaneBits) {
  assert(LaneBits == 4 || LaneBits == 8 || LaneBits == 16);
  LaneLog = LaneBits == 4 ? 2 : LaneBits == 8 ? 3 : 4;
}

void PackedAges::retruncate() {
  if (Blks.empty()) {
    Words.clear();
    LaneLog = 0;
    return;
  }
  Words.resize(wordsFor(Blks.size()));
  // Zero the tail lanes of the last word so bulk ops stay unmasked.
  size_t Rem = Blks.size() & ((size_t(1) << lanesPerWordLog()) - 1);
  if (Rem) {
    unsigned UsedBits = static_cast<unsigned>(Rem << LaneLog);
    Words.back() &= (uint64_t(1) << UsedBits) - 1;
  }
}

void PackedAges::set(BlockAddr Block, uint16_t Age, unsigned LaneBits) {
  size_t Pos = static_cast<size_t>(
      std::lower_bound(Blks.begin(), Blks.end(), Block) - Blks.begin());
  if (Pos != Blks.size() && Blks[Pos] == Block) {
    setAgeAt(Pos, Age);
    return;
  }
  if (Blks.empty())
    installLaneBits(LaneBits);
  assert(laneBits() == LaneBits && "mixed lane widths in one entry list");
  Blks.insert(Blks.begin() + static_cast<ptrdiff_t>(Pos), Block);
  if (Words.size() < wordsFor(Blks.size()))
    Words.push_back(0);
  for (size_t I = Blks.size() - 1; I > Pos; --I)
    setAgeAt(I, ageAt(I - 1));
  setAgeAt(Pos, Age);
}

void PackedAges::append(BlockAddr Block, uint16_t Age, unsigned LaneBits) {
  if (Blks.empty())
    installLaneBits(LaneBits);
  assert(laneBits() == LaneBits && "mixed lane widths in one entry list");
  assert((Blks.empty() || Blks.back() < Block) && "append must keep order");
  size_t I = Blks.size();
  Blks.push_back(Block);
  if (Words.size() < wordsFor(Blks.size()))
    Words.push_back(0);
  setAgeAt(I, Age);
}

void PackedAges::eraseAt(size_t I) {
  size_t N = Blks.size();
  for (size_t K = I; K + 1 < N; ++K)
    setAgeAt(K, ageAt(K + 1));
  Blks.erase(Blks.begin() + static_cast<ptrdiff_t>(I));
  retruncate();
}

void PackedAges::clear() {
  Blks.clear();
  Words.clear();
  LaneLog = 0;
}

void PackedAges::compactAgesAbove(uint32_t Cap) {
  size_t OutN = 0, N = Blks.size();
  for (size_t I = 0; I != N; ++I) {
    uint16_t Age = ageAt(I);
    if (Age > Cap)
      continue;
    if (OutN != I) {
      Blks[OutN] = Blks[I];
      setAgeAt(OutN, Age);
    }
    ++OutN;
  }
  if (OutN != N) {
    Blks.resize(OutN);
    retruncate();
  }
}

void PackedAges::removeFlagged(const std::vector<char> &Remove) {
  assert(Remove.size() == Blks.size());
  size_t OutN = 0, N = Blks.size();
  for (size_t I = 0; I != N; ++I) {
    if (Remove[I])
      continue;
    if (OutN != I) {
      Blks[OutN] = Blks[I];
      setAgeAt(OutN, ageAt(I));
    }
    ++OutN;
  }
  if (OutN != N) {
    Blks.resize(OutN);
    retruncate();
  }
}

void PackedAges::agePredLE(uint32_t MaxOldAge, size_t Skip, uint32_t Cap) {
  if (Blks.empty() || MaxOldAge == 0)
    return;
  const LaneOps &O = opsFor(laneBits());
  assert(uint64_t(Cap) + 1 <= laneMask() && "cap+1 must fit a lane");
  uint64_t BV = O.Ones * std::min<uint64_t>(MaxOldAge, laneMask());
  uint64_t BCap1 = O.Ones * (uint64_t(Cap) + 1);
  unsigned MsbShift = laneBits() - 1;
  size_t SkipWord = Skip == npos ? npos : wordOf(Skip);
  uint64_t SkipBit =
      Skip == npos ? 0 : uint64_t(1) << (shiftOf(Skip) + MsbShift);
  bool AnyEvict = false;
  for (size_t W = 0; W != Words.size(); ++W) {
    uint64_t A = Words[W];
    // Lanes holding a real entry (age >= 1) at age <= MaxOldAge.
    uint64_t M = laneNonzero(A, O) & laneGE(BV, A, O);
    if (W == SkipWord)
      M &= ~SkipBit;
    if (!M)
      continue;
    A += M >> MsbShift; // Masked +1; ages stay <= cap+1, no lane overflow.
    if (O.High & ~laneNonzero(A ^ BCap1, O))
      AnyEvict = true; // Some lane just aged to cap+1.
    Words[W] = A;
  }
  if (AnyEvict)
    compactAgesAbove(Cap);
}

bool PackedAges::anyAgeLT(uint32_t V) const {
  if (Blks.empty() || V <= 1)
    return false;
  const LaneOps &O = opsFor(laneBits());
  uint64_t BV = O.Ones * std::min<uint64_t>(V, laneMask());
  for (uint64_t A : Words)
    if (laneNonzero(A, O) & ~laneGE(A, BV, O))
      return true;
  return false;
}

void PackedAges::addPressure(uint32_t K, uint32_t Cap) {
  if (Blks.empty() || K == 0)
    return;
  if (K > Cap) {
    clear();
    return;
  }
  // Age + K > Cap evicts, i.e. everything above Cap - K goes; survivors
  // take the un-masked add (their lanes stay <= Cap).
  compactAgesAbove(Cap - K);
  if (Blks.empty())
    return;
  const LaneOps &O = opsFor(laneBits());
  unsigned MsbShift = laneBits() - 1;
  for (uint64_t &W : Words)
    W += (laneNonzero(W, O) >> MsbShift) * K;
}

bool PackedAges::allLanesGE(const PackedAges &RHS) const {
  assert(sameBlocks(RHS) && "allLanesGE requires identical block lists");
  if (empty())
    return true;
  assert(LaneLog == RHS.LaneLog);
  const LaneOps &O = opsFor(laneBits());
  for (size_t W = 0; W != Words.size(); ++W)
    if (laneGE(Words[W], RHS.Words[W], O) != O.High)
      return false; // Tail lanes are 0 on both sides and compare GE.
  return true;
}

void PackedAges::assignMustMerge(const PackedAges &A, const PackedAges &B) {
  assert(this != &A && this != &B);
  if (A.empty() || B.empty()) {
    clear();
    return;
  }
  assert(A.LaneLog == B.LaneLog);
  if (A.sameBlocks(B)) {
    Blks = A.Blks;
    LaneLog = A.LaneLog;
    Words.resize(A.Words.size());
    const LaneOps &O = opsFor(A.laneBits());
    unsigned MsbShift = A.laneBits() - 1;
    uint64_t LM = A.laneMask();
    for (size_t W = 0; W != Words.size(); ++W) {
      uint64_t X = A.Words[W], Y = B.Words[W];
      uint64_t Exp = (laneGE(X, Y, O) >> MsbShift) * LM;
      Words[W] = Y ^ ((X ^ Y) & Exp); // Lanewise max.
    }
    return;
  }
  clear();
  unsigned LB = A.laneBits();
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    BlockAddr BA = A.blockAt(I), BB = B.blockAt(J);
    if (BA < BB)
      ++I;
    else if (BA > BB)
      ++J;
    else {
      append(BA, std::max(A.ageAt(I), B.ageAt(J)), LB);
      ++I;
      ++J;
    }
  }
}

void PackedAges::assignMayMerge(const PackedAges &A, const PackedAges &B) {
  assert(this != &A && this != &B);
  if (B.empty()) {
    *this = A;
    return;
  }
  if (A.empty()) {
    *this = B;
    return;
  }
  assert(A.LaneLog == B.LaneLog);
  if (A.sameBlocks(B)) {
    Blks = A.Blks;
    LaneLog = A.LaneLog;
    Words.resize(A.Words.size());
    const LaneOps &O = opsFor(A.laneBits());
    unsigned MsbShift = A.laneBits() - 1;
    uint64_t LM = A.laneMask();
    for (size_t W = 0; W != Words.size(); ++W) {
      uint64_t X = A.Words[W], Y = B.Words[W];
      uint64_t Exp = (laneGE(X, Y, O) >> MsbShift) * LM;
      Words[W] = X ^ ((X ^ Y) & Exp); // Lanewise min.
    }
    return;
  }
  clear();
  unsigned LB = A.laneBits();
  size_t I = 0, J = 0;
  while (I != A.size() || J != B.size()) {
    if (J == B.size() || (I != A.size() && A.blockAt(I) < B.blockAt(J))) {
      append(A.blockAt(I), A.ageAt(I), LB);
      ++I;
    } else if (I == A.size() || A.blockAt(I) > B.blockAt(J)) {
      append(B.blockAt(J), B.ageAt(J), LB);
      ++J;
    } else {
      append(A.blockAt(I), std::min(A.ageAt(I), B.ageAt(J)), LB);
      ++I;
      ++J;
    }
  }
}

void PackedAges::mustMergeInPlace(const PackedAges &From,
                                  PackedAges &Scratch) {
  if (empty())
    return;
  if (From.empty()) {
    clear();
    return;
  }
  assert(LaneLog == From.LaneLog);
  if (sameBlocks(From)) {
    const LaneOps &O = opsFor(laneBits());
    unsigned MsbShift = laneBits() - 1;
    uint64_t LM = laneMask();
    for (size_t W = 0; W != Words.size(); ++W) {
      uint64_t X = Words[W], Y = From.Words[W];
      uint64_t Exp = (laneGE(X, Y, O) >> MsbShift) * LM;
      Words[W] = Y ^ ((X ^ Y) & Exp); // Lanewise max.
    }
    return;
  }
  Scratch.assignMustMerge(*this, From);
  std::swap(Blks, Scratch.Blks);
  std::swap(Words, Scratch.Words);
  std::swap(LaneLog, Scratch.LaneLog);
}

void PackedAges::mayMergeInPlace(const PackedAges &From,
                                 PackedAges &Scratch) {
  if (From.empty())
    return;
  if (empty()) {
    *this = From;
    return;
  }
  assert(LaneLog == From.LaneLog);
  if (sameBlocks(From)) {
    const LaneOps &O = opsFor(laneBits());
    unsigned MsbShift = laneBits() - 1;
    uint64_t LM = laneMask();
    for (size_t W = 0; W != Words.size(); ++W) {
      uint64_t X = Words[W], Y = From.Words[W];
      uint64_t Exp = (laneGE(X, Y, O) >> MsbShift) * LM;
      Words[W] = X ^ ((X ^ Y) & Exp); // Lanewise min.
    }
    return;
  }
  Scratch.assignMayMerge(*this, From);
  std::swap(Blks, Scratch.Blks);
  std::swap(Words, Scratch.Words);
  std::swap(LaneLog, Scratch.LaneLog);
}

bool PackedAges::mustJoinWouldChange(const PackedAges &From) const {
  if (empty())
    return false; // Intersection stays empty.
  if (From.empty())
    return true; // Every entry leaves the intersection.
  if (sameBlocks(From))
    return !allLanesGE(From); // Change iff some From age exceeds ours.
  size_t I = 0, J = 0;
  while (I != size()) {
    if (J == From.size() || blockAt(I) < From.blockAt(J))
      return true; // Dropped from the intersection.
    if (blockAt(I) > From.blockAt(J)) {
      ++J;
      continue;
    }
    if (From.ageAt(J) > ageAt(I))
      return true; // Age grows to the max.
    ++I;
    ++J;
  }
  return false;
}

bool PackedAges::mayJoinWouldChange(const PackedAges &From) const {
  if (From.empty())
    return false;
  if (empty())
    return true; // New shadow entries enter the union.
  if (sameBlocks(From))
    return !From.allLanesGE(*this); // Change iff some From age undercuts.
  size_t I = 0, J = 0;
  while (J != From.size()) {
    if (I == size() || blockAt(I) > From.blockAt(J))
      return true; // New shadow entry.
    if (blockAt(I) < From.blockAt(J)) {
      ++I;
      continue;
    }
    if (From.ageAt(J) < ageAt(I))
      return true; // Age shrinks to the min.
    ++I;
    ++J;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// CacheAbsState: payload plumbing
//===----------------------------------------------------------------------===//

namespace {

/// Partition lookup in a set-sorted partition vector.
std::vector<CacheSetPartition>::const_iterator
findPartIn(const std::vector<CacheSetPartition> &Parts, uint32_t Set) {
  auto It = std::lower_bound(
      Parts.begin(), Parts.end(), Set,
      [](const CacheSetPartition &P, uint32_t S) { return P.Set < S; });
  if (It != Parts.end() && It->Set == Set)
    return It;
  return Parts.end();
}

/// Find-or-insert the partition of \p Set, keeping the vector set-sorted.
/// Returns an index (not a reference: the insert may reallocate).
size_t ensurePart(std::vector<CacheSetPartition> &Parts, uint32_t Set) {
  auto It = std::lower_bound(
      Parts.begin(), Parts.end(), Set,
      [](const CacheSetPartition &P, uint32_t S) { return P.Set < S; });
  if (It == Parts.end() || It->Set != Set)
    It = Parts.insert(It, CacheSetPartition{Set, {}, {}});
  return static_cast<size_t>(It - Parts.begin());
}

uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// MUST lane width for \p MM's policy (from the policy age cap).
unsigned mustLanesOf(const MemoryModel &MM) {
  return CacheAbsState::packedLaneBits(MM.config().mustAgeCap());
}

/// MAY lane width: shadow ages are bounded by the associativity under
/// every policy.
unsigned mayLanesOf(const MemoryModel &MM) {
  return CacheAbsState::packedLaneBits(MM.config().Associativity);
}

} // namespace

const std::vector<CacheSetPartition> &CacheAbsState::emptyParts() {
  static const std::vector<CacheSetPartition> Empty;
  return Empty;
}

CacheAbsState::Payload *CacheAbsState::allocPayload() {
  Payload *PL = RecyclingArena<Payload>::allocateFromActive();
  PL->RefCount.store(1, std::memory_order_relaxed);
  PL->HashKnown.store(false, std::memory_order_relaxed);
  return PL;
}

CacheAbsState::Payload &CacheAbsState::mut() {
  if (!P) {
    P = allocPayload();
    P->Parts.clear();
  } else if (P->RefCount.load(std::memory_order_acquire) > 1) {
    Payload *N = allocPayload();
    // Element-wise vector copy-assignment reuses the recycled partition
    // buffers — the fixpoint's clone-transfer-join steady state allocates
    // nothing once the arena is warm.
    N->Parts = P->Parts;
    release(P);
    P = N;
  }
  P->HashKnown.store(false, std::memory_order_relaxed);
  return *P;
}

void CacheAbsState::normalize() {
  if (!P)
    return;
  // A shared payload is never mutated here: partitions only need scrubbing
  // after a mutator, which already unshared.
  std::vector<CacheSetPartition> &Parts = P->Parts;
  Parts.erase(std::remove_if(Parts.begin(), Parts.end(),
                             [](const CacheSetPartition &Part) {
                               return Part.Must.empty() && Part.May.empty();
                             }),
              Parts.end());
  if (Parts.empty()) {
    release(P);
    P = nullptr;
  }
}

const CacheSetPartition *CacheAbsState::findPart(uint32_t Set) const {
  if (!P)
    return nullptr;
  auto It = findPartIn(P->Parts, Set);
  return It == P->Parts.end() ? nullptr : &*It;
}

uint32_t CacheAbsState::mustAge(BlockAddr Block, uint32_t Assoc) const {
  // The block's set is unknown here (no MemoryModel); a block lives in
  // exactly one partition, so probe each. Partition counts are tiny (one
  // for fully associative geometries).
  for (const CacheSetPartition &Part : partitions()) {
    size_t I = Part.Must.find(Block);
    if (I != PackedAges::npos)
      return Part.Must.ageAt(I);
  }
  return Assoc + 1;
}

uint32_t CacheAbsState::mayAge(BlockAddr Block, uint32_t Assoc) const {
  for (const CacheSetPartition &Part : partitions()) {
    size_t I = Part.May.find(Block);
    if (I != PackedAges::npos)
      return Part.May.ageAt(I);
  }
  return Assoc + 1;
}

bool CacheAbsState::isMustCached(BlockAddr Block) const {
  for (const CacheSetPartition &Part : partitions())
    if (Part.Must.find(Block) != PackedAges::npos)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Access transfers
//===----------------------------------------------------------------------===//

void CacheAbsState::accessBlock(BlockAddr Block, const MemoryModel &MM,
                                bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  switch (MM.config().Policy) {
  case ReplacementPolicy::Lru:
    return accessBlockLru(Block, MM, UseShadow);
  case ReplacementPolicy::Fifo:
    return accessBlockFifo(Block, MM, UseShadow);
  case ReplacementPolicy::Plru:
    return accessBlockPlru(Block, MM, UseShadow);
  }
}

namespace {

/// The refined MUST aging of Appendix B under LRU: u ages only when at
/// least Age(u) shadow blocks other than u are at least as young as u.
/// NYoung(u) comes from a histogram of the (already updated) MAY ages —
/// LeqCnt[a] counts shadow entries with age <= a — plus a sorted merge
/// walk to subtract u's own shadow entry, making the whole pass
/// O(n + assoc) instead of the reference's O(n^2).
void ageMustShadowLru(PackedAges &Must, const PackedAges &May,
                      BlockAddr Touched, uint32_t VMustOld, uint32_t Assoc) {
  if (Must.empty())
    return;
  size_t MustN = Must.size(), MayN = May.size();
  bool AnyEvict = false;

  if (MustN * MayN <= 256) {
    // Tiny states (the fuzz corpus's common case): the direct O(n*m)
    // count beats building a histogram sized by the associativity.
    for (size_t I = 0; I != MustN; ++I) {
      BlockAddr B = Must.blockAt(I);
      uint16_t Age = Must.ageAt(I);
      if (B == Touched || Age >= VMustOld)
        continue;
      uint32_t NYoung = 0;
      for (size_t J = 0; J != MayN; ++J)
        if (May.blockAt(J) != B && May.ageAt(J) <= Age)
          ++NYoung;
      if (NYoung >= Age) {
        Must.setAgeAt(I, static_cast<uint16_t>(Age + 1));
        if (Age + 1u > Assoc)
          AnyEvict = true;
      }
    }
    if (AnyEvict)
      Must.compactAgesAbove(Assoc);
    return;
  }

  // Dense states: LeqCnt[a] = #shadow entries with age <= a, built once in
  // O(m + assoc); a sorted merge walk subtracts u's own shadow entry.
  constexpr uint32_t StackCap = 2048;
  uint32_t StackBuf[StackCap + 2];
  std::vector<uint32_t> HeapBuf;
  uint32_t *LeqCnt;
  if (Assoc <= StackCap) {
    LeqCnt = StackBuf;
  } else {
    HeapBuf.resize(size_t(Assoc) + 2);
    LeqCnt = HeapBuf.data();
  }
  std::fill(LeqCnt, LeqCnt + Assoc + 2, 0u);
  for (size_t I = 0; I != MayN; ++I)
    ++LeqCnt[May.ageAt(I)]; // MAY ages are in [1, Assoc].
  for (uint32_t A = 1; A <= Assoc + 1; ++A)
    LeqCnt[A] += LeqCnt[A - 1];

  size_t J = 0;
  for (size_t I = 0; I != MustN; ++I) {
    BlockAddr B = Must.blockAt(I);
    uint16_t Age = Must.ageAt(I);
    while (J != MayN && May.blockAt(J) < B)
      ++J;
    if (B == Touched || Age >= VMustOld)
      continue;
    uint32_t NYoung = LeqCnt[Age];
    if (J != MayN && May.blockAt(J) == B && May.ageAt(J) <= Age)
      --NYoung; // u's own shadow entry does not count.
    if (NYoung >= Age) {
      Must.setAgeAt(I, static_cast<uint16_t>(Age + 1));
      if (Age + 1u > Assoc)
        AnyEvict = true;
    }
  }
  if (AnyEvict)
    Must.compactAgesAbove(Assoc);
}

} // namespace

void CacheAbsState::accessBlockLru(BlockAddr Block, const MemoryModel &MM,
                                   bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  unsigned Lanes = mustLanesOf(MM); // == mayLanesOf: LRU cap is the assoc.
  uint32_t Set = MM.setOf(Block);

  // Previous ages, read before any update. Only the accessed set's
  // partition can hold the block. The found positions stay valid across
  // mut(): cloning copies entry lists verbatim and ensurePart only ever
  // inserts whole partitions.
  const CacheSetPartition *Old = findPart(Set);
  size_t MustPos = Old ? Old->Must.find(Block) : PackedAges::npos;
  size_t MayPos = Old ? Old->May.find(Block) : PackedAges::npos;
  uint32_t VMustOld =
      MustPos == PackedAges::npos ? Assoc + 1 : Old->Must.ageAt(MustPos);
  uint32_t VMayOld =
      MayPos == PackedAges::npos ? Assoc + 1 : Old->May.ageAt(MayPos);

  Payload &PL = mut();
  CacheSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  if (UseShadow) {
    // MAY (shadow) update first, Appendix B: ∃u with Age(∃u) <= Age(∃v)
    // ages by one; older shadows keep their age. The partition holds only
    // this set's entries, so no per-entry set check is needed.
    Part.May.agePredLE(VMayOld, MayPos, Assoc);
    Part.May.set(Block, 1, Lanes);
  }

  // MUST update; the refined NYoung rule reads the updated MAY side.
  if (UseShadow)
    ageMustShadowLru(Part.Must, Part.May, Block, VMustOld, Assoc);
  else
    Part.Must.agePredLE(VMustOld - 1, MustPos, Assoc);
  Part.Must.set(Block, 1, Lanes);
}

void CacheAbsState::accessBlockFifo(BlockAddr Block, const MemoryModel &MM,
                                    bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  unsigned Lanes = mustLanesOf(MM); // FIFO cap is the assoc; MAY matches.
  uint32_t Set = MM.setOf(Block);

  const CacheSetPartition *Old = findPart(Set);
  uint32_t VMustOld = Old ? Old->Must.ageOf(Block, Assoc + 1) : Assoc + 1;
  // A provably resident block hits on every path, and a FIFO hit leaves
  // the whole set untouched (no rejuvenation): the transfer is exactly the
  // identity. This is also what makes repeated accesses must-hits.
  if (VMustOld <= Assoc)
    return;

  // Possible miss. With shadows, a block absent from MAY is not cached on
  // any path, so the access is a *definite* miss: it lands at insertion
  // position 1 and pushes every other line of the set one position deeper.
  // Without that proof the touched block still ends resident either way
  // (hit: it already was; miss: it is inserted), but only at the weakest
  // bound — position <= associativity.
  uint32_t VMayOld = Old ? Old->May.ageOf(Block, Assoc + 1) : Assoc + 1;
  bool DefiniteMiss = UseShadow && VMayOld > Assoc;

  Payload &PL = mut();
  CacheSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  if (UseShadow) {
    if (DefiniteMiss)
      // Every path misses, so every other line's insertion position (and
      // with it its MAY lower bound) advances by one.
      Part.May.agePredLE(Assoc, Part.May.find(Block), Assoc);
    Part.May.set(Block, 1, Lanes);
  }

  // MUST: the access may miss, displacing every tracked line of the set
  // one insertion position.
  Part.Must.agePredLE(Assoc, Part.Must.find(Block), Assoc);
  if (DefiniteMiss)
    Part.Must.set(Block, 1, Lanes);
  else if (Assoc <= UINT16_MAX)
    // Resident either way, but only at the weakest bound. Geometries
    // whose associativity does not fit the age field simply leave the
    // block untracked (sound: untracked = not provably resident).
    Part.Must.set(Block, static_cast<uint16_t>(Assoc), Lanes);
  normalize();
}

void CacheAbsState::accessBlockPlru(BlockAddr Block, const MemoryModel &MM,
                                    bool UseShadow) {
  // The sound tree bound (docs/DOMAINS.md): a k-way tree-PLRU evicts a
  // block only once every direction bit on its root path points toward it,
  // and one access to another line flips at most one of those log2(k)
  // bits. Ages therefore live in [1, log2(k) + 1], every access ages
  // every other tracked block of the set by one (hit or miss — hits flip
  // tree bits too, so the LRU relative-age refinement does not apply, and
  // neither does the recency-based shadow NYoung rule), and the touched
  // block is fully protected at age 1 afterwards.
  uint32_t Cap = MM.config().mustAgeCap();
  uint32_t Set = MM.setOf(Block);

  Payload &PL = mut();
  CacheSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  Part.Must.agePredLE(Cap, Part.Must.find(Block), Cap);
  Part.Must.set(Block, 1, mustLanesOf(MM));
  // MAY: the touched block may be the youngest; other lower bounds stay
  // valid because no access is guaranteed to flip a bit toward a
  // particular block (tree ages are not monotone across paths).
  if (UseShadow)
    Part.May.set(Block, 1, mayLanesOf(MM));
  normalize();
}

void CacheAbsState::accessUnknown(VarId Var, uint64_t InstanceK,
                                  const MemoryModel &MM, bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  switch (MM.config().Policy) {
  case ReplacementPolicy::Lru:
    return accessUnknownLru(Var, InstanceK, MM, UseShadow);
  case ReplacementPolicy::Fifo:
    return accessUnknownFifo(Var, MM, UseShadow);
  case ReplacementPolicy::Plru:
    return accessUnknownPlru(Var, InstanceK, MM, UseShadow);
  }
}

void CacheAbsState::accessUnknownLru(VarId Var, uint64_t InstanceK,
                                     const MemoryModel &MM, bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // Guaranteed-hit refinement (paper §2.2's ph[k]): when every line of the
  // array is provably resident, the access hits some line of age at most
  // MaxAge; only strictly younger blocks can age, and nothing is evicted.
  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  uint32_t MaxAge = 0;
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks) {
    uint32_t Age = mustAge(Block, Assoc);
    if (Age > Assoc) {
      AllCached = false;
      break;
    }
    MaxAge = std::max(MaxAge, Age);
  }

  if (AllCached) {
    // Pure aging with no eviction and no insertion: skip the payload clone
    // when nothing moves and the MAY side will not be touched either.
    bool AnyAging = false;
    for (const CacheSetPartition &Part : partitions())
      if (IsCandidateSet(Part.Set) && Part.Must.anyAgeLT(MaxAge)) {
        AnyAging = true;
        break;
      }
    if (AnyAging) {
      Payload &PL = mut();
      for (CacheSetPartition &Part : PL.Parts)
        if (IsCandidateSet(Part.Set))
          // Aged lanes stay <= MaxAge <= Assoc: a hit evicts nothing.
          Part.Must.agePredLE(MaxAge - 1, PackedAges::npos, Assoc);
    } else if (!UseShadow) {
      return;
    }
  } else {
    // Conservative MUST aging: the unknown line may be a miss in any
    // candidate set, displacing one position everywhere.
    Payload &PL = mut();
    for (CacheSetPartition &Part : PL.Parts)
      if (IsCandidateSet(Part.Set))
        Part.Must.agePredLE(Assoc, PackedAges::npos, Assoc);
    // The nondeterministically picked fresh line (decis_levl[k*]).
    BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
    size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
    PL.Parts[Idx].Must.set(Instance, 1, mustLanesOf(MM));
  }

  if (UseShadow) {
    // Any line of the array may now be the youngest in its set.
    Payload &PL = mut();
    unsigned MayL = mayLanesOf(MM);
    for (BlockAddr Block : ArrayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      PL.Parts[Idx].May.set(Block, 1, MayL);
    }
    if (!AllCached) {
      BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
      PL.Parts[Idx].May.set(Instance, 1, MayL);
    }
  }
  normalize();
}

void CacheAbsState::accessUnknownFifo(VarId Var, const MemoryModel &MM,
                                      bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // When every line of the array is provably resident the access hits
  // whichever line it touches, and a FIFO hit is the identity.
  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks)
    if (mustAge(Block, Assoc) > Assoc) {
      AllCached = false;
      break;
    }
  if (AllCached)
    return;

  // Possible miss in any candidate set: every tracked line there may be
  // displaced one insertion position. The touched line ends resident, but
  // which line it is is unknown, so no MUST entry can claim it (a symbolic
  // instance at the weakest bound would be evicted by the next possible
  // miss anyway).
  Payload &PL = mut();
  for (CacheSetPartition &Part : PL.Parts)
    if (IsCandidateSet(Part.Set))
      Part.Must.agePredLE(Assoc, PackedAges::npos, Assoc);
  if (UseShadow) {
    // Any line of the array may now sit at insertion position 1.
    unsigned MayL = mayLanesOf(MM);
    for (BlockAddr Block : ArrayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      PL.Parts[Idx].May.set(Block, 1, MayL);
    }
  }
  normalize();
}

void CacheAbsState::accessUnknownPlru(VarId Var, uint64_t InstanceK,
                                      const MemoryModel &MM, bool UseShadow) {
  uint32_t Cap = MM.config().mustAgeCap();
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // Hit or miss, the access flips tree bits in whichever candidate set it
  // lands in, so every tracked block there ages one step toward the tree
  // bound; the touched line itself ends fully protected, represented by
  // the fresh symbolic instance at age 1 (its concrete age is 1 whether
  // the access hit or filled).
  Payload &PL = mut();
  for (CacheSetPartition &Part : PL.Parts)
    if (IsCandidateSet(Part.Set))
      Part.Must.agePredLE(Cap, PackedAges::npos, Cap);
  BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
  size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
  PL.Parts[Idx].Must.set(Instance, 1, mustLanesOf(MM));

  if (UseShadow) {
    unsigned MayL = mayLanesOf(MM);
    std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
    for (BlockAddr Block : ArrayBlocks) {
      size_t I = ensurePart(PL.Parts, MM.setOf(Block));
      PL.Parts[I].May.set(Block, 1, MayL);
    }
    size_t I = ensurePart(PL.Parts, MM.setOf(Instance));
    PL.Parts[I].May.set(Instance, 1, MayL);
  }
  normalize();
}

void CacheAbsState::applyCallEffect(const std::vector<uint32_t> &SetPressure,
                                    const std::vector<AgedBlock> &ExitMust,
                                    const std::vector<BlockAddr> &MayBlocks,
                                    const MemoryModel &MM, bool UseShadow,
                                    bool InsertExitMust, bool ApplyPressure) {
  if (Bottom)
    return;
  uint32_t Assoc = MM.config().Associativity;
  bool IsLru = MM.config().Policy == ReplacementPolicy::Lru;

  if (ApplyPressure) {
    // Probe first so the no-op case (nothing tracked in any pressured set)
    // never clones the payload.
    bool AnyWork = false;
    for (const CacheSetPartition &Part : partitions())
      if (Part.Set < SetPressure.size() && SetPressure[Part.Set] > 0 &&
          !Part.Must.empty()) {
        AnyWork = true;
        break;
      }
    if (AnyWork) {
      Payload &PL = mut();
      for (CacheSetPartition &Part : PL.Parts) {
        uint32_t K =
            Part.Set < SetPressure.size() ? SetPressure[Part.Set] : 0;
        if (K == 0 || Part.Must.empty())
          continue;
        if (!IsLru) {
          Part.Must.clear();
          continue;
        }
        Part.Must.addPressure(K, Assoc);
      }
    }
  }

  if (InsertExitMust && !ExitMust.empty()) {
    Payload &PL = mut();
    unsigned MustL = mustLanesOf(MM);
    for (const AgedBlock &E : ExitMust) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(E.Block));
      PackedAges &Must = PL.Parts[Idx].Must;
      // Both the surviving caller bound and the callee exit bound are valid
      // age upper bounds; keep the tighter one.
      size_t Pos = Must.find(E.Block);
      if (Pos != PackedAges::npos)
        Must.setAgeAt(Pos, std::min(Must.ageAt(Pos), E.Age));
      else
        Must.set(E.Block, E.Age, MustL);
    }
  }

  if (UseShadow && !MayBlocks.empty()) {
    Payload &PL = mut();
    unsigned MayL = mayLanesOf(MM);
    for (BlockAddr Block : MayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      PL.Parts[Idx].May.set(Block, 1, MayL);
    }
  }
  normalize();
}

//===----------------------------------------------------------------------===//
// Join / order / widening
//===----------------------------------------------------------------------===//

namespace {

/// Would `Into ⊔= From` change Into? A pure read-only merge walk: MUST is
/// intersection/max (change = a dropped entry or a grown age), MAY is
/// union/min (change = a new entry or a shrunk age). Peer partitions with
/// identical block lists compare a word at a time.
bool joinWouldChange(const std::vector<CacheSetPartition> &Into,
                     const std::vector<CacheSetPartition> &From,
                     bool UseShadow) {
  size_t I = 0, J = 0;
  while (I != Into.size() || J != From.size()) {
    if (J == From.size() ||
        (I != Into.size() && Into[I].Set < From[J].Set)) {
      if (!Into[I].Must.empty())
        return true; // Whole partition leaves the MUST intersection.
      ++I;
      continue;
    }
    if (I == Into.size() || Into[I].Set > From[J].Set) {
      if (UseShadow && !From[J].May.empty())
        return true; // New MAY partition enters the union.
      ++J;
      continue;
    }
    if (Into[I].Must.mustJoinWouldChange(From[J].Must))
      return true;
    if (UseShadow && Into[I].May.mayJoinWouldChange(From[J].May))
      return true;
    ++I;
    ++J;
  }
  return false;
}

/// One output partition of a join: indices into Into/Src (npos = absent).
struct JoinPlanItem {
  uint32_t Set;
  size_t I, J;
};

/// Fills \p Part with the join of Into[Item.I] and Src[Item.J]; partitions
/// are independent, so this is the unit of intra-join parallelism.
void fillJoinedPartition(CacheSetPartition &Part, const JoinPlanItem &Item,
                         const std::vector<CacheSetPartition> &Into,
                         const std::vector<CacheSetPartition> &Src,
                         bool UseShadow) {
  Part.Set = Item.Set;
  if (Item.J == PackedAges::npos) {
    // Our set only: MUST intersection is empty, MAY keeps our entries
    // (untouched when shadows are off, matching the flat representation).
    Part.Must.clear();
    Part.May = Into[Item.I].May;
  } else if (Item.I == PackedAges::npos) {
    // Their set only: nothing joins MUST; MAY union adopts theirs.
    Part.Must.clear();
    if (UseShadow)
      Part.May = Src[Item.J].May;
    else
      Part.May.clear();
  } else {
    Part.Must.assignMustMerge(Into[Item.I].Must, Src[Item.J].Must);
    if (UseShadow)
      Part.May.assignMayMerge(Into[Item.I].May, Src[Item.J].May);
    else
      Part.May = Into[Item.I].May;
  }
}

/// Below this many output partitions a parallel join costs more than it
/// saves; measured on the 512-set fuzz geometries (docs/PERFORMANCE.md).
constexpr size_t ParallelJoinThreshold = 64;

} // namespace

bool CacheAbsState::joinInto(const CacheAbsState &From, bool UseShadow) {
  if (From.Bottom)
    return false;
  if (Bottom) {
    Bottom = false;
    assert(!P && "bottom states own no payload");
    P = From.P; // Copy-on-write: a refcount bump, not an entry copy.
    if (P)
      P->RefCount.fetch_add(1, std::memory_order_relaxed);
    if (!UseShadow && P) {
      bool AnyMay = false;
      for (const CacheSetPartition &Part : P->Parts)
        if (!Part.May.empty()) {
          AnyMay = true;
          break;
        }
      if (AnyMay) {
        Payload &PL = mut();
        for (CacheSetPartition &Part : PL.Parts)
          Part.May.clear();
        normalize();
      }
    }
    return true;
  }
  if (P == From.P)
    return false; // Shared storage: identical states, join is a no-op.
  // Hash-equality early exit: equal structures join to themselves.
  if (P && From.P && P->HashKnown.load(std::memory_order_acquire) &&
      From.P->HashKnown.load(std::memory_order_acquire) &&
      P->Hash.load(std::memory_order_relaxed) ==
          From.P->Hash.load(std::memory_order_relaxed) &&
      P->Parts == From.P->Parts)
    return false;

  const std::vector<CacheSetPartition> &Into = partitions();
  const std::vector<CacheSetPartition> &Src = From.partitions();
  if (!joinWouldChange(Into, Src, UseShadow))
    return false;

  // Uniquely-owned destination (the engines' slot accumulators after
  // their first rebuild): merge in place — sameBlocks partitions update
  // word-at-a-time with zero allocation, others swap through a reused
  // scratch — instead of cloning every partition into a fresh payload.
  if (P && P->RefCount.load(std::memory_order_relaxed) == 1) {
    std::vector<CacheSetPartition> &Dst = P->Parts;
    PackedAges ScratchMust, ScratchMay;
    size_t I = 0, J = 0;
    while (I != Dst.size() || J != Src.size()) {
      if (J == Src.size() || (I != Dst.size() && Dst[I].Set < Src[J].Set)) {
        Dst[I].Must.clear(); // Whole partition leaves the intersection.
        ++I;
      } else if (I == Dst.size() || Dst[I].Set > Src[J].Set) {
        if (UseShadow && !Src[J].May.empty()) {
          Dst.insert(Dst.begin() + static_cast<ptrdiff_t>(I),
                     CacheSetPartition{Src[J].Set, {}, Src[J].May});
          ++I;
        }
        ++J;
      } else {
        Dst[I].Must.mustMergeInPlace(Src[J].Must, ScratchMust);
        if (UseShadow)
          Dst[I].May.mayMergeInPlace(Src[J].May, ScratchMay);
        ++I;
        ++J;
      }
    }
    size_t Kept = 0;
    for (size_t K = 0; K != Dst.size(); ++K) {
      if (Dst[K].Must.empty() && Dst[K].May.empty())
        continue;
      if (Kept != K)
        Dst[Kept] = std::move(Dst[K]);
      ++Kept;
    }
    Dst.resize(Kept);
    P->HashKnown.store(false, std::memory_order_relaxed);
    if (Dst.empty()) {
      release(P);
      P = nullptr;
    }
    return true;
  }

  // Build the merged payload fresh; the no-change path above keeps this
  // allocation off the fixed-point steady state, and the arena recycles
  // the partition buffers of the payload this replaces.
  Payload *NewP = allocPayload();
  std::vector<CacheSetPartition> &Out = NewP->Parts;
  size_t OutN = 0;

  IntraPool *Pool = IntraPool::activePool();
  if (Pool && Into.size() + Src.size() >= ParallelJoinThreshold) {
    // Plan the merged set walk, fan the independent per-set merges across
    // the pool, then compact empties serially. Identical output order at
    // any job count.
    std::vector<JoinPlanItem> Plan;
    Plan.reserve(Into.size() + Src.size());
    size_t I = 0, J = 0;
    while (I != Into.size() || J != Src.size()) {
      if (J == Src.size() ||
          (I != Into.size() && Into[I].Set < Src[J].Set)) {
        Plan.push_back({Into[I].Set, I, PackedAges::npos});
        ++I;
      } else if (I == Into.size() || Into[I].Set > Src[J].Set) {
        Plan.push_back({Src[J].Set, PackedAges::npos, J});
        ++J;
      } else {
        Plan.push_back({Into[I].Set, I, J});
        ++I;
        ++J;
      }
    }
    Out.resize(Plan.size());
    Pool->run(Plan.size(), [&](size_t K) {
      fillJoinedPartition(Out[K], Plan[K], Into, Src, UseShadow);
    });
    for (size_t K = 0; K != Out.size(); ++K) {
      if (Out[K].Must.empty() && Out[K].May.empty())
        continue;
      if (OutN != K)
        Out[OutN] = std::move(Out[K]);
      ++OutN;
    }
  } else {
    if (Out.capacity() < std::max(Into.size(), Src.size()))
      Out.reserve(std::max(Into.size(), Src.size()));
    size_t I = 0, J = 0;
    while (I != Into.size() || J != Src.size()) {
      JoinPlanItem Item;
      if (J == Src.size() ||
          (I != Into.size() && Into[I].Set < Src[J].Set)) {
        Item = {Into[I].Set, I, PackedAges::npos};
        ++I;
      } else if (I == Into.size() || Into[I].Set > Src[J].Set) {
        Item = {Src[J].Set, PackedAges::npos, J};
        ++J;
      } else {
        Item = {Into[I].Set, I, J};
        ++I;
        ++J;
      }
      // Recycled payloads carry leftover partitions; reuse them as output
      // slots so a warm join allocates nothing.
      if (OutN == Out.size())
        Out.emplace_back();
      CacheSetPartition &Part = Out[OutN];
      fillJoinedPartition(Part, Item, Into, Src, UseShadow);
      if (!Part.Must.empty() || !Part.May.empty())
        ++OutN;
    }
  }
  Out.resize(OutN);

  if (OutN == 0) {
    release(NewP);
    if (P)
      release(P);
    P = nullptr;
  } else {
    if (P)
      release(P);
    P = NewP;
  }
  return true;
}

bool CacheAbsState::leq(const CacheAbsState &RHS, uint32_t Assoc) const {
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  // MUST ages are upper bounds and join takes max, so larger ages sit
  // higher in the lattice: S ⊑ S' iff ∀b mustAge_S(b) <= mustAge_S'(b).
  // Blocks RHS does not track have age Assoc+1 there, which dominates
  // everything, so only RHS's tracked blocks need checking.
  for (const CacheSetPartition &RPart : RHS.partitions()) {
    const CacheSetPartition *LPart = findPart(RPart.Set);
    if (!LPart) {
      if (!RPart.Must.empty())
        return false;
      continue;
    }
    if (LPart->Must.sameBlocks(RPart.Must)) {
      // Identical tracked blocks: one subtract-and-test per word.
      if (!RPart.Must.allLanesGE(LPart->Must))
        return false;
      continue;
    }
    for (size_t K = 0, N = RPart.Must.size(); K != N; ++K) {
      uint32_t Mine =
          LPart->Must.ageOf(RPart.Must.blockAt(K), Assoc + 1);
      if (Mine > RPart.Must.ageAt(K))
        return false;
    }
  }
  // MAY ages are lower bounds with min-join: S ⊑ S' iff
  // ∀b mayAge_S(b) >= mayAge_S'(b); untracked blocks on our side are
  // Assoc+1 and dominate.
  for (const CacheSetPartition &LPart : partitions()) {
    const CacheSetPartition *RPart = RHS.findPart(LPart.Set);
    if (!RPart) {
      if (!LPart.May.empty())
        return false;
      continue;
    }
    if (LPart.May.sameBlocks(RPart->May)) {
      if (!LPart.May.allLanesGE(RPart->May))
        return false;
      continue;
    }
    for (size_t K = 0, N = LPart.May.size(); K != N; ++K) {
      uint32_t Theirs = RPart->May.ageOf(LPart.May.blockAt(K), Assoc + 1);
      if (LPart.May.ageAt(K) < Theirs)
        return false;
    }
  }
  return true;
}

void CacheAbsState::widenFrom(const CacheAbsState &Prev, uint32_t Assoc) {
  if (Bottom || Prev.Bottom)
    return;
  // Evict MUST entries whose age grew since the previous iterate. Probe
  // first so the stable case never clones the payload.
  auto Grew = [&](uint32_t Set, BlockAddr Block, uint16_t Age) {
    const CacheSetPartition *PPart = Prev.findPart(Set);
    uint32_t PrevAge =
        PPart ? PPart->Must.ageOf(Block, Assoc + 1) : Assoc + 1;
    return PrevAge <= Assoc && Age > PrevAge;
  };
  bool AnyGrew = false;
  for (const CacheSetPartition &Part : partitions()) {
    for (size_t I = 0, N = Part.Must.size(); I != N && !AnyGrew; ++I)
      AnyGrew = Grew(Part.Set, Part.Must.blockAt(I), Part.Must.ageAt(I));
    if (AnyGrew)
      break;
  }
  if (!AnyGrew)
    return;
  Payload &PL = mut();
  std::vector<char> Remove;
  for (CacheSetPartition &Part : PL.Parts) {
    size_t N = Part.Must.size();
    Remove.assign(N, 0);
    bool Any = false;
    for (size_t I = 0; I != N; ++I)
      if (Grew(Part.Set, Part.Must.blockAt(I), Part.Must.ageAt(I))) {
        Remove[I] = 1;
        Any = true;
      }
    if (Any)
      Part.Must.removeFlagged(Remove);
  }
  normalize();
  // MAY ages descend toward 1 on a finite ladder; no acceleration needed.
}

bool CacheAbsState::operator==(const CacheAbsState &RHS) const {
  if (Bottom != RHS.Bottom)
    return false;
  if (Bottom)
    return true;
  if (P == RHS.P)
    return true; // Shared storage (or both empty).
  // Canonical form: a live payload always has at least one partition, so
  // an empty state never equals a non-empty one here.
  if (P && RHS.P && P->HashKnown.load(std::memory_order_acquire) &&
      RHS.P->HashKnown.load(std::memory_order_acquire) &&
      P->Hash.load(std::memory_order_relaxed) !=
          RHS.P->Hash.load(std::memory_order_relaxed))
    return false;
  return partitions() == RHS.partitions();
}

//===----------------------------------------------------------------------===//
// Canonical views, hashing, rendering
//===----------------------------------------------------------------------===//

std::vector<AgedBlock> CacheAbsState::mustEntries() const {
  std::vector<AgedBlock> Out;
  for (const CacheSetPartition &Part : partitions())
    for (const AgedBlock E : Part.Must)
      Out.push_back(E);
  std::sort(Out.begin(), Out.end(),
            [](const AgedBlock &A, const AgedBlock &B) {
              return A.Block < B.Block;
            });
  return Out;
}

std::vector<AgedBlock> CacheAbsState::mayEntries() const {
  std::vector<AgedBlock> Out;
  for (const CacheSetPartition &Part : partitions())
    for (const AgedBlock E : Part.May)
      Out.push_back(E);
  std::sort(Out.begin(), Out.end(),
            [](const AgedBlock &A, const AgedBlock &B) {
              return A.Block < B.Block;
            });
  return Out;
}

uint64_t CacheAbsState::structuralHash() const {
  if (Bottom)
    return 0xB0770B0770ULL;
  if (!P)
    return 0x9E3779B97F4A7C15ULL; // The empty (entry) state.
  if (P->HashKnown.load(std::memory_order_acquire))
    return P->Hash.load(std::memory_order_relaxed);
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H = (H ^ splitmix64(V)) * 0x100000001b3ULL;
  };
  Mix(P->Parts.size());
  for (const CacheSetPartition &Part : P->Parts) {
    Mix(Part.Set);
    Mix(Part.Must.size());
    for (const AgedBlock E : Part.Must) {
      Mix(E.Block);
      Mix(E.Age);
    }
    Mix(Part.May.size());
    for (const AgedBlock E : Part.May) {
      Mix(E.Block);
      Mix(E.Age);
    }
  }
  // Racing readers of a shared payload compute the same value; the
  // release/acquire pair orders the value before the flag.
  P->Hash.store(H, std::memory_order_relaxed);
  P->HashKnown.store(true, std::memory_order_release);
  return H;
}

std::string CacheAbsState::str(const MemoryModel &MM) const {
  if (Bottom)
    return "⊥";
  // Group by age, youngest first, like the paper's tables.
  std::map<uint32_t, std::vector<std::string>> ByAge;
  for (const CacheSetPartition &Part : partitions()) {
    for (const AgedBlock E : Part.Must)
      ByAge[E.Age].push_back(MM.blockName(E.Block));
    for (const AgedBlock E : Part.May)
      ByAge[E.Age].push_back("∃" + MM.blockName(E.Block));
  }
  std::string Out = "{";
  bool FirstGroup = true;
  for (auto &[Age, Names] : ByAge) {
    std::sort(Names.begin(), Names.end());
    for (const std::string &Name : Names) {
      if (!FirstGroup)
        Out += ", ";
      FirstGroup = false;
      Out += Name + "@" + std::to_string(Age);
    }
  }
  Out += "}";
  return Out;
}
